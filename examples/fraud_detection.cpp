// Financial fraud detection (Section IV-B5, application FD).
//
// A graph-based first-party-fraud pipeline over a Bitcoin-like transaction
// graph: (1) connected components group accounts into candidate rings,
// (2) shortest-path tracing follows laundering chains inside suspicious
// rings, (3) degree centrality flags mule/hub accounts. Every stage runs
// through the simulator under Baseline and GraphPIM.
//
//   ./fraud_detection [--vertices=16384] [--full=0]
#include <algorithm>
#include <cstdio>
#include <map>

#include "common/config.h"
#include "core/runner.h"
#include "workloads/ccomp.h"
#include "workloads/dc.h"
#include "workloads/sssp.h"

using namespace graphpim;

int main(int argc, char** argv) {
  Config cfg = Config::FromArgs(argc, argv);
  const auto vertices = static_cast<VertexId>(cfg.GetUint("vertices", 16 * 1024));
  const bool full = cfg.GetBool("full", false);

  std::printf("Fraud detection on a Bitcoin-like transaction graph "
              "(%u accounts)\n\n", vertices);

  core::Experiment::Options opts;
  opts.op_cap = 6'000'000;
  auto machine = [&](core::Mode m) {
    return full ? core::SimConfig::Paper(m) : core::SimConfig::Scaled(m);
  };

  double base_total = 0;
  double pim_total = 0;
  const char* stages[] = {"ccomp", "sssp", "dc"};
  const char* what[] = {"ring grouping (connected components)",
                        "laundering-chain tracing (shortest path)",
                        "mule-account flagging (degree centrality)"};
  core::Experiment* last = nullptr;
  std::unique_ptr<core::Experiment> keep;
  for (int i = 0; i < 3; ++i) {
    auto exp = std::make_unique<core::Experiment>("bitcoin", vertices, stages[i], opts);
    core::SimResults base = exp->Run(machine(core::Mode::kBaseline));
    core::SimResults pim = exp->Run(machine(core::Mode::kGraphPim));
    base_total += static_cast<double>(base.cycles);
    pim_total += static_cast<double>(pim.cycles);
    std::printf("stage %d: %-45s %6.2fx speedup\n", i + 1, what[i],
                core::Speedup(base, pim));
    if (i == 0) keep = std::move(exp);
  }
  (void)last;
  std::printf("\npipeline speedup (graph stages): %.2fx\n", base_total / pim_total);

  // Analyst-facing output: candidate fraud rings from the component stage.
  {
    graph::EdgeList el = graph::GenerateProfile("bitcoin", vertices, 1);
    graph::AddressSpace space;
    graph::CsrGraph g(el, space);
    workloads::CcompWorkload cc;
    workloads::TraceBuilder tb(4, &space);
    tb.SetOpCap(1);  // functional only
    cc.Generate(g, space, tb);
    std::map<std::int64_t, int> sizes;
    for (std::int64_t l : cc.labels()) ++sizes[l];
    std::vector<std::pair<int, std::int64_t>> rings;
    for (auto& [label, n] : sizes) {
      if (n >= 3) rings.push_back({n, label});
    }
    std::sort(rings.rbegin(), rings.rend());
    std::printf("\ncandidate rings (>= 3 linked accounts): %zu\n", rings.size());
    for (std::size_t i = 0; i < std::min<std::size_t>(5, rings.size()); ++i) {
      std::printf("  ring led by account %lld: %d accounts\n",
                  static_cast<long long>(rings[i].second), rings[i].first);
    }
  }
  std::printf("\npaper (Fig 17): FD achieves ~1.5x with GraphPIM; non-graph\n"
              "components dilute the end-to-end benefit\n");
  return 0;
}
