// Recommender system (Section IV-B5, application RS).
//
// Item-to-item collaborative filtering over a Twitter-like follower graph
// (the paper's RS, after Linden et al. [2]): co-follow intersections score
// item similarity (the triangle-count kernel) and degree centrality ranks
// popular accounts; recommendations combine both. The graph kernels run
// through the simulator under Baseline and GraphPIM.
//
//   ./recommender [--vertices=16384] [--user=42] [--full=0]
#include <algorithm>
#include <cstdio>
#include <map>
#include <vector>

#include "common/config.h"
#include "core/runner.h"
#include "workloads/dc.h"

using namespace graphpim;

namespace {

// Functional item-to-item scores for one user: rank accounts co-followed
// with the user's follows (set intersection over sorted adjacency).
std::vector<std::pair<double, VertexId>> Recommend(const graph::CsrGraph& g,
                                                   VertexId user,
                                                   const std::vector<std::int64_t>& pop) {
  std::map<VertexId, int> co;
  for (VertexId item : g.Neighbors(user)) {
    // Users who follow `item` also follow...
    for (VertexId other : g.Neighbors(item)) {
      if (other != user) ++co[other];
    }
  }
  std::vector<std::pair<double, VertexId>> scored;
  for (auto [cand, overlap] : co) {
    bool already = false;
    for (VertexId item : g.Neighbors(user)) {
      if (item == cand) already = true;
    }
    if (already) continue;
    double score = overlap + 0.01 * static_cast<double>(pop[cand]);
    scored.push_back({score, cand});
  }
  std::sort(scored.rbegin(), scored.rend());
  return scored;
}

}  // namespace

int main(int argc, char** argv) {
  Config cfg = Config::FromArgs(argc, argv);
  const auto vertices = static_cast<VertexId>(cfg.GetUint("vertices", 16 * 1024));
  const auto user = static_cast<VertexId>(cfg.GetUint("user", 42));
  const bool full = cfg.GetBool("full", false);

  std::printf("Recommender system on a Twitter-like follower graph "
              "(%u accounts)\n\n", vertices);

  core::Experiment::Options opts;
  opts.op_cap = 6'000'000;
  auto machine = [&](core::Mode m) {
    return full ? core::SimConfig::Paper(m) : core::SimConfig::Scaled(m);
  };

  double base_total = 0;
  double pim_total = 0;
  const char* stages[] = {"tc", "dc"};
  const char* what[] = {"co-follow similarity (neighbor intersection)",
                        "popularity scoring (degree centrality)"};
  for (int i = 0; i < 2; ++i) {
    core::Experiment exp("twitter", vertices, stages[i], opts);
    core::SimResults base = exp.Run(machine(core::Mode::kBaseline));
    core::SimResults pim = exp.Run(machine(core::Mode::kGraphPim));
    base_total += static_cast<double>(base.cycles);
    pim_total += static_cast<double>(pim.cycles);
    std::printf("stage %d: %-46s %6.2fx speedup\n", i + 1, what[i],
                core::Speedup(base, pim));
  }
  std::printf("\npipeline speedup (graph stages): %.2fx\n\n", base_total / pim_total);

  // Functional recommendations for one user.
  graph::EdgeList el = graph::GenerateProfile("twitter", vertices, 1);
  graph::AddressSpace space;
  graph::CsrGraph g(el, space);
  workloads::DcWorkload dc;
  workloads::TraceBuilder tb(4, &space);
  tb.SetOpCap(1);  // functional only
  dc.Generate(g, space, tb);

  VertexId u = user % g.num_vertices();
  auto recs = Recommend(g, u, dc.centrality());
  std::printf("top recommendations for account %u (follows %u accounts):\n", u,
              g.OutDegree(u));
  for (std::size_t i = 0; i < std::min<std::size_t>(5, recs.size()); ++i) {
    std::printf("  account %-8u score %.2f\n", recs[i].second, recs[i].first);
  }
  if (recs.empty()) std::printf("  (account has no co-follow neighborhood)\n");

  std::printf("\npaper (Fig 17): RS achieves ~1.9x with GraphPIM\n");
  return 0;
}
