// Writing a new workload against the GraphPIM framework API.
//
// This example implements "label histogram": every vertex atomically
// bumps a shared per-label counter — the counters live in the PMR (via
// pmr_malloc), so GraphPIM offloads the increments as HMC signed-add
// atomics with no application-level changes beyond using the framework's
// property allocator. It demonstrates:
//
//   * allocating offloadable state with AddressSpace::PmrMalloc
//   * emitting a trace with TraceBuilder while computing functionally
//   * pairing Baseline vs GraphPIM runs with RunSimulation
//
//   ./custom_workload [--vertices=16384] [--labels=64]
#include <cstdio>
#include <vector>

#include "common/config.h"
#include "core/runner.h"
#include "graph/generator.h"
#include "graph/property.h"
#include "workloads/workload.h"

using namespace graphpim;

namespace {

class LabelHistogramWorkload : public workloads::Workload {
 public:
  explicit LabelHistogramWorkload(std::uint32_t num_labels)
      : num_labels_(num_labels) {}

  const workloads::WorkloadInfo& info() const override {
    static const workloads::WorkloadInfo kInfo{
        "labelhist",   "Label Histogram",          WorkloadCategory::kGraphTraversal,
        true,          "",                         "lock add",
        "Signed add",  /*needs_fp_extension=*/false};
    return kInfo;
  }

  void Generate(const graph::CsrGraph& g, graph::AddressSpace& space,
                workloads::TraceBuilder& tb) override {
    const VertexId n = g.num_vertices();
    // Shared histogram in the PIM memory region: this is the pmr_malloc
    // call the paper adds to the graph framework (Section III-A).
    graph::PropertyArray<std::int64_t> hist(space.pmr(), num_labels_, 0);

    counts_.assign(num_labels_, 0);
    for (int t = 0; t < tb.num_threads(); ++t) {
      auto [begin, end] = workloads::ThreadChunk(n, t, tb.num_threads());
      for (std::size_t v = begin; v < end; ++v) {
        // Label = out-degree bucket (any vertex function works).
        std::uint32_t label = g.OutDegree(static_cast<VertexId>(v)) % num_labels_;
        tb.Load(t, g.OffsetAddr(static_cast<VertexId>(v)), 8);
        tb.Compute(t, 1, /*dep=*/true);
        tb.Atomic(t, hist.AddrOf(label), hmc::AtomicOp::kDualAdd8, 8,
                  /*want_return=*/false, /*dep=*/true);
        hist[label] += 1;
        counts_[label] += 1;
      }
    }
    tb.Barrier();
  }

  const std::vector<std::int64_t>& counts() const { return counts_; }

 private:
  std::uint32_t num_labels_;
  std::vector<std::int64_t> counts_;
};

}  // namespace

int main(int argc, char** argv) {
  Config cfg = Config::FromArgs(argc, argv);
  const auto vertices = static_cast<VertexId>(cfg.GetUint("vertices", 16 * 1024));
  const auto labels = static_cast<std::uint32_t>(cfg.GetUint("labels", 64));

  std::printf("Custom workload demo: label histogram (%u labels)\n\n", labels);

  graph::EdgeList el = graph::GenerateProfile("ldbc", vertices, 1);
  graph::AddressSpace space;
  graph::CsrGraph g(el, space);

  LabelHistogramWorkload wl(labels);
  workloads::TraceBuilder tb(16, &space);
  wl.Generate(g, space, tb);
  workloads::Trace trace = tb.Take();
  std::printf("trace: %llu micro-ops over %d threads\n",
              static_cast<unsigned long long>(trace.TotalOps()), tb.num_threads());

  core::SimResults base = core::RunSimulation(
      trace, core::SimConfig::Scaled(core::Mode::kBaseline), space.pmr_base(),
      space.pmr_end(), core::RunOptions{});
  core::SimResults pim = core::RunSimulation(
      trace, core::SimConfig::Scaled(core::Mode::kGraphPim), space.pmr_base(),
      space.pmr_end(), core::RunOptions{});

  std::printf("baseline: %llu cycles | GraphPIM: %llu cycles | speedup %.2fx\n",
              static_cast<unsigned long long>(base.cycles),
              static_cast<unsigned long long>(pim.cycles),
              core::Speedup(base, pim));
  std::printf("offloaded atomics: %llu / %llu\n\n",
              static_cast<unsigned long long>(pim.offloaded_atomics),
              static_cast<unsigned long long>(pim.atomics));

  std::printf("histogram (degree buckets, first 8 labels):\n");
  for (std::uint32_t l = 0; l < 8 && l < labels; ++l) {
    std::printf("  label %2u: %lld vertices\n", l,
                static_cast<long long>(wl.counts()[l]));
  }
  return 0;
}
