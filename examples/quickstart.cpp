// Quickstart: run BFS on a synthetic LDBC-like social graph under the
// three machine configurations of the paper and print the speedups.
//
//   ./quickstart [--vertices=16384] [--workload=bfs] [--full=0]
#include <cstdio>

#include "common/config.h"
#include "core/runner.h"

using namespace graphpim;

int main(int argc, char** argv) {
  Config cfg = Config::FromArgs(argc, argv);
  const auto vertices =
      static_cast<VertexId>(cfg.GetUint("vertices", 16 * 1024));
  const std::string workload = cfg.GetString("workload", "bfs");
  const bool full = cfg.GetBool("full", false);

  std::printf("GraphPIM quickstart: %s on an LDBC-like graph (%u vertices)\n",
              workload.c_str(), vertices);

  core::Experiment exp("ldbc", vertices, workload);
  std::printf("graph: %u vertices, %llu edges | trace: %llu micro-ops\n",
              exp.graph().num_vertices(),
              static_cast<unsigned long long>(exp.graph().num_edges()),
              static_cast<unsigned long long>(exp.trace().TotalOps()));

  auto make = [&](core::Mode m) {
    return full ? core::SimConfig::Paper(m) : core::SimConfig::Scaled(m);
  };

  core::SimResults base = exp.Run(make(core::Mode::kBaseline));
  core::SimResults upei = exp.Run(make(core::Mode::kUPei));
  core::SimResults pim = exp.Run(make(core::Mode::kGraphPim));

  std::printf("\n%-10s %12s %8s %10s %10s %9s\n", "config", "cycles", "IPC",
              "L3 MPKI", "atomics", "speedup");
  for (const core::SimResults* r : {&base, &upei, &pim}) {
    std::printf("%-10s %12llu %8.3f %10.1f %10llu %8.2fx\n", r->mode.c_str(),
                static_cast<unsigned long long>(r->cycles), r->ipc, r->l3_mpki,
                static_cast<unsigned long long>(r->atomics),
                core::Speedup(base, *r));
  }
  std::printf("\noffloaded atomics under GraphPIM: %llu / %llu\n",
              static_cast<unsigned long long>(pim.offloaded_atomics),
              static_cast<unsigned long long>(pim.atomics));
  std::printf("uncore energy (normalized to baseline): %.2f\n",
              pim.energy.Total() / base.energy.Total());
  return 0;
}
