// Ablation (DESIGN.md §9): GraphPIM speedup vs. link bit error rate.
//
// The paper's evaluation assumes lossless SerDes lanes. Real HMC 2.0
// links carry a per-packet CRC and recover detected errors from a retry
// buffer, so every error costs a replay latency plus retransmitted FLITs.
// GraphPIM's offloading *increases* link packet counts (every offloaded
// atomic crosses the link), so the interesting question is whether the
// speedup survives a degraded link — this bench sweeps the BER from
// spec-grade (1e-12) to pathological (1e-6) and reports speedup, retries,
// and poisoned responses per rate.
#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "core/report.h"
#include "fault/fault.h"

using namespace graphpim;
using namespace graphpim::bench;

int main(int argc, char** argv) {
  BenchContext ctx = ParseBench(argc, argv, 16 * 1024, 4'000'000);
  PrintHeader("Ablation: link bit error rate (DESIGN.md §9)", ctx);

  const std::vector<double> bers = {0.0, 1e-12, 1e-9, 1e-8, 1e-7, 1e-6};
  auto exp = ctx.MakeExperiment("prank");

  std::vector<core::SimConfig> cfgs;
  for (double ber : bers) {
    for (core::Mode m : {core::Mode::kBaseline, core::Mode::kGraphPim}) {
      core::SimConfig c = ctx.MakeConfig(m);
      c.hmc.fault.link_ber = ber;
      // Same discipline as the sweep runner: decorrelated stream per
      // config, reproducible for a fixed --seed.
      c.hmc.fault.seed = fault::DeriveFaultSeed(ctx.seed, cfgs.size());
      cfgs.push_back(c);
    }
  }
  const std::vector<core::SimResults> rows = RunGrid(*exp, cfgs, ctx);

  std::printf("%-10s %14s %14s %9s %10s %10s\n", "link BER", "baseline",
              "GraphPIM", "speedup", "retries", "poisoned");
  for (std::size_t i = 0; i < bers.size(); ++i) {
    const core::SimResults& base = rows[2 * i];
    const core::SimResults& pim = rows[2 * i + 1];
    std::printf("%-10.0e %14llu %14llu %8.2fx %10llu %10llu\n", bers[i],
                static_cast<unsigned long long>(base.cycles),
                static_cast<unsigned long long>(pim.cycles),
                core::Speedup(base, pim),
                static_cast<unsigned long long>(base.link_retries +
                                                pim.link_retries),
                static_cast<unsigned long long>(base.poisoned_ops +
                                                pim.poisoned_ops));
  }
  std::printf("\nexpected: spec-grade BERs (<=1e-12) are invisible; retries\n"
              "grow with BER and GraphPIM degrades faster than baseline\n"
              "(offloading puts more packets on the link), but keeps its\n"
              "advantage until errors dominate the replay budget\n");
  return 0;
}
