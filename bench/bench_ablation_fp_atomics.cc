// Ablation (Section III-C): the floating-point add/sub extension to the
// HMC atomic set. Without it, BC and PRank cannot offload (Table III) and
// their FP atomics fall back to the host — with an uncacheable PMR this
// degrades to bus locking, the hazard Section III-B warns about.
#include <cstdio>

#include "bench_util.h"
#include "workloads/workload.h"

using namespace graphpim;
using namespace graphpim::bench;

int main(int argc, char** argv) {
  BenchContext ctx = ParseBench(argc, argv, 16 * 1024, 4'000'000);
  PrintHeader("Ablation: FP atomic extension (Section III-C)", ctx);

  std::printf("%-8s %14s %14s %16s\n", "workload", "GraphPIM+FP", "GraphPIM-noFP",
              "offloaded (+FP)");
  const std::vector<std::string> names = {"prank", "bc", "bfs", "dc"};
  const auto rows = ParallelMap(names, ctx, [&](const std::string& name) {
    auto exp = ctx.MakeExperiment(name);
    core::SimConfig without = ctx.MakeConfig(core::Mode::kGraphPim);
    without.hmc.enable_fp_atomics = false;
    return RunGrid(*exp,
                   {ctx.MakeConfig(core::Mode::kBaseline),
                    ctx.MakeConfig(core::Mode::kGraphPim), without},
                   ctx);
  });
  for (std::size_t i = 0; i < names.size(); ++i) {
    const core::SimResults& base = rows[i][0];
    const core::SimResults& rw = rows[i][1];
    const core::SimResults& ro = rows[i][2];
    std::printf("%-8s %13.2fx %13.2fx %11llu/%llu\n", names[i].c_str(),
                core::Speedup(base, rw), core::Speedup(base, ro),
                static_cast<unsigned long long>(rw.offloaded_atomics),
                static_cast<unsigned long long>(rw.atomics));
  }
  std::printf("\nexpected: FP workloads (prank, bc) lose their benefit without\n"
              "the extension; integer workloads (bfs, dc) are unaffected\n");
  return 0;
}
