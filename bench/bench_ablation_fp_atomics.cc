// Ablation (Section III-C): the floating-point add/sub extension to the
// HMC atomic set. Without it, BC and PRank cannot offload (Table III) and
// their FP atomics fall back to the host — with an uncacheable PMR this
// degrades to bus locking, the hazard Section III-B warns about.
#include <cstdio>

#include "bench_util.h"
#include "workloads/workload.h"

using namespace graphpim;
using namespace graphpim::bench;

int main(int argc, char** argv) {
  BenchContext ctx = ParseBench(argc, argv, 16 * 1024, 4'000'000);
  PrintHeader("Ablation: FP atomic extension (Section III-C)", ctx);

  std::printf("%-8s %14s %14s %16s\n", "workload", "GraphPIM+FP", "GraphPIM-noFP",
              "offloaded (+FP)");
  for (const auto& name : {"prank", "bc", "bfs", "dc"}) {
    auto exp = ctx.MakeExperiment(name);
    core::SimResults base = exp->Run(ctx.MakeConfig(core::Mode::kBaseline));
    core::SimConfig with = ctx.MakeConfig(core::Mode::kGraphPim);
    core::SimConfig without = ctx.MakeConfig(core::Mode::kGraphPim);
    without.hmc.enable_fp_atomics = false;
    core::SimResults rw = exp->Run(with);
    core::SimResults ro = exp->Run(without);
    std::printf("%-8s %13.2fx %13.2fx %11llu/%llu\n", name,
                core::Speedup(base, rw), core::Speedup(base, ro),
                static_cast<unsigned long long>(rw.offloaded_atomics),
                static_cast<unsigned long long>(rw.atomics));
  }
  std::printf("\nexpected: FP workloads (prank, bc) lose their benefit without\n"
              "the extension; integer workloads (bfs, dc) are unaffected\n");
  return 0;
}
