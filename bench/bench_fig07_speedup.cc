// Figure 7: speedups over the baseline system.
//
// Paper shape: GraphPIM up to 2.4x (PRank), >2x for BFS/CComp/DC, ~1 for
// kCore/TC, ~1.1 for BC; GraphPIM beats the idealized U-PEI by ~20% on
// average; average GraphPIM speedup ~1.6x.
#include <cstdio>

#include "bench_util.h"
#include "workloads/workload.h"

using namespace graphpim;
using namespace graphpim::bench;

int main(int argc, char** argv) {
  BenchContext ctx = ParseBench(argc, argv);
  PrintHeader("Fig 7: speedup over baseline (Baseline / U-PEI / GraphPIM)", ctx);

  std::printf("%-8s %8s %8s %10s\n", "workload", "U-PEI", "GraphPIM", "(cycles,B)");
  double sum_upei = 0;
  double sum_pim = 0;
  auto names = workloads::EvalWorkloadNames();
  const auto rows = ParallelMap(names, ctx, [&](const std::string& name) {
    auto exp = ctx.MakeExperiment(name);
    return RunPaired(
        *exp, {core::Mode::kBaseline, core::Mode::kUPei, core::Mode::kGraphPim},
        ctx);
  });
  for (std::size_t i = 0; i < names.size(); ++i) {
    const core::SimResults& base = rows[i][0];
    double su = core::Speedup(base, rows[i][1]);
    double sp = core::Speedup(base, rows[i][2]);
    sum_upei += su;
    sum_pim += sp;
    std::printf("%-8s %7.2fx %7.2fx %10.3f  |%s\n", names[i].c_str(), su, sp,
                static_cast<double>(base.cycles) / 1e9, Bar(sp / 2.5).c_str());
  }
  std::printf("%-8s %7.2fx %7.2fx\n", "average",
              sum_upei / static_cast<double>(names.size()),
              sum_pim / static_cast<double>(names.size()));
  std::printf("\npaper: GraphPIM avg 1.6x, max 2.4x (PRank); >2x BFS/CComp/DC;\n"
              "       ~1x kCore/TC; GraphPIM > U-PEI by ~20%% on average\n");
  return 0;
}
