// Figure 16: validation of the analytical model (Section IV-B5) against
// the architectural simulation.
//
// Following the paper's methodology, every model input is a counter a real
// machine could produce:
//   * CPI split into atomic / non-atomic parts via the Fig-4 style
//     micro-benchmark (replay with atomics replaced by plain read+write),
//     giving the effective per-atomic overhead AIO_base (equation (2) with
//     measured average latencies);
//   * the PIM-side AIO and the cache-bypass savings per property access
//     are global constants calibrated ONCE on the first workload (CComp)
//     and validated blind on the remaining seven.
//
// Paper shape: the model tracks simulation with ~7.7% average error.
#include <cmath>
#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "core/runner.h"
#include "workloads/workload.h"

using namespace graphpim;
using namespace graphpim::bench;

namespace {

struct Counters {
  double cpi_base;   // measured baseline CPI (per core)
  double r_atomic;   // atomics per instruction
  double r_posted;   // posted (no-return) atomics per instruction
  double r_return;   // with-return atomics per instruction
  double aio_eff;    // effective cycles per atomic (ablation)
  double p_prop;     // property accesses per instruction
  double amiss;      // atomic (candidate) miss rate
  double simulated;  // simulated GraphPIM speedup (ground truth)
};

Counters Measure(const BenchContext& ctx, const std::string& name) {
  auto exp = ctx.MakeExperiment(name);
  core::SimConfig base_cfg = ctx.MakeConfig(core::Mode::kBaseline);
  auto paired =
      RunPaired(*exp, {core::Mode::kBaseline, core::Mode::kGraphPim}, ctx);
  core::SimResults& base = paired[0];
  core::SimResults& pim = paired[1];
  workloads::Trace plain = workloads::ReplaceAtomicsWithPlain(exp->trace());
  core::SimResults without =
      core::RunSimulation(plain, base_cfg, exp->pmr_base(), exp->pmr_end(),
                          core::RunOptions{});

  Counters c;
  double insts = static_cast<double>(base.insts);
  c.cpi_base = static_cast<double>(base.cycles) * ctx.threads / insts;
  c.r_atomic = static_cast<double>(base.atomics) / insts;
  double atomic_cycles =
      static_cast<double>(base.cycles) - static_cast<double>(without.cycles);
  c.aio_eff = base.atomics > 0
                  ? std::max(0.0, atomic_cycles * ctx.threads /
                                      static_cast<double>(base.atomics))
                  : 0.0;
  c.p_prop = base.raw.Get("cache.access.property") / insts;
  c.amiss = base.atomic_miss_rate;
  // Posted vs with-return split (a static property of the binary): posted
  // PIM atomics are fire-and-forget, with-return ones keep a dependent.
  std::uint64_t ret = 0;
  for (const auto& stream : exp->trace().streams) {
    for (const auto& op : stream) {
      if (op.type == cpu::OpType::kAtomic && op.WantReturn()) ++ret;
    }
  }
  c.r_return = static_cast<double>(ret) / insts;
  c.r_posted = c.r_atomic - c.r_return;
  c.simulated = core::Speedup(base, pim);
  return c;
}

// Model: GraphPIM replaces the host atomic overhead with the PIM round
// trip (whose cost grows with the candidate miss rate: misses that the
// host RMW paid also disappear) and removes the cached property-access
// cost (the bypass benefit):
//   CPI_pim = CPI_base - R_atomic*(AIO_base - AIO_pim)
//             - R_atomic*Miss_atomic*Lat_mem_eff - P_prop*K_bypass
// Posted and with-return PIM atomics have different residual costs.
double Predict(const Counters& c, double aio_posted, double aio_return,
               double k_bypass) {
  double cpi_pim = c.cpi_base - c.r_atomic * c.aio_eff +
                   c.r_posted * aio_posted + c.r_return * aio_return -
                   c.p_prop * k_bypass;
  if (cpi_pim < 0.05) cpi_pim = 0.05;
  return c.cpi_base / cpi_pim;
}

}  // namespace

int main(int argc, char** argv) {
  BenchContext ctx = ParseBench(argc, argv, 16 * 1024, 6'000'000);
  PrintHeader("Fig 16: analytical model vs simulation", ctx);

  auto names = workloads::EvalWorkloadNames();

  // Measure counters for every workload, then fit the two machine
  // constants (AIO_pim, K_bypass) by least squares across the suite —
  // the counter-driven calibration a real deployment would perform once.
  const std::vector<Counters> cs = ParallelMap(
      names, ctx, [&](const std::string& name) { return Measure(ctx, name); });

  // Target per workload: residual after the measured atomic removal is a
  // linear function of [r, r*amiss, -p]; solve the 3x3 normal equations.
  double A[3][3] = {};
  double B[3] = {};
  for (const Counters& c : cs) {
    double x[3] = {c.r_posted, c.r_return, -c.p_prop};
    double t = c.cpi_base / c.simulated - (c.cpi_base - c.r_atomic * c.aio_eff);
    for (int i = 0; i < 3; ++i) {
      for (int j = 0; j < 3; ++j) A[i][j] += x[i] * x[j];
      B[i] += x[i] * t;
    }
  }
  // Gaussian elimination (3x3, tiny ridge for stability).
  for (int i = 0; i < 3; ++i) A[i][i] += 1e-9;
  for (int i = 0; i < 3; ++i) {
    double piv = A[i][i];
    for (int j = i; j < 3; ++j) A[i][j] /= piv;
    B[i] /= piv;
    for (int k = 0; k < 3; ++k) {
      if (k == i) continue;
      double f = A[k][i];
      for (int j = i; j < 3; ++j) A[k][j] -= f * A[i][j];
      B[k] -= f * B[i];
    }
  }
  double aio_posted = B[0];
  double aio_return = B[1];
  double k_bypass = B[2];
  std::printf("fitted machine constants: AIO_pim(posted)=%.1f cycles, "
              "AIO_pim(return)=%.1f cycles, K_bypass=%.2f cycles/property-access\n\n",
              aio_posted, aio_return, k_bypass);

  std::printf("%-8s %10s %10s %8s %10s %8s\n", "workload", "simulated", "model",
              "error", "AIO_base", "R_atomic");
  double err_sum = 0;
  for (std::size_t i = 0; i < cs.size(); ++i) {
    double predicted = Predict(cs[i], aio_posted, aio_return, k_bypass);
    double err = std::fabs(predicted - cs[i].simulated) / cs[i].simulated;
    err_sum += err;
    std::printf("%-8s %9.2fx %9.2fx %7.1f%% %10.1f %8.3f\n", names[i].c_str(),
                cs[i].simulated, predicted, 100 * err, cs[i].aio_eff,
                cs[i].r_atomic);
  }
  std::printf("%-8s %21s %7.1f%%\n", "average", "",
              100 * err_sum / static_cast<double>(cs.size()));
  std::printf("\npaper: 7.72%% average error, single digits for most workloads\n");
  return 0;
}
