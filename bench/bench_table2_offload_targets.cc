// Table II: PIM offloading targets — the host atomic instruction each
// workload uses and the PIM-atomic it maps to, verified against the ops
// actually observed offloading in a GraphPIM run.
#include <cstdio>
#include <map>

#include "bench_util.h"
#include "workloads/workload.h"

using namespace graphpim;
using namespace graphpim::bench;

int main(int argc, char** argv) {
  BenchContext ctx = ParseBench(argc, argv, 8 * 1024, 2'000'000);
  PrintHeader("Table II: summary of PIM offloading targets", ctx);

  std::printf("%-26s %-28s %-18s %10s\n", "workload", "offloading target",
              "PIM-atomic type", "offloaded");
  for (const auto& name : {"bfs", "dc", "sssp", "kcore", "ccomp", "tc"}) {
    auto wl = workloads::CreateWorkload(name);
    auto exp = ctx.MakeExperiment(name);
    core::SimResults pim = exp->Run(ctx.MakeConfig(core::Mode::kGraphPim));
    double pct = pim.atomics > 0 ? 100.0 * pim.offloaded_atomics / pim.atomics : 0.0;
    std::printf("%-26s %-28s %-18s %9.1f%%\n", wl->info().display.c_str(),
                wl->info().host_instr.c_str(), wl->info().pim_op.c_str(), pct);
  }
  std::printf("\nWith the Section III-C FP extension:\n");
  for (const auto& name : {"bc", "prank"}) {
    auto wl = workloads::CreateWorkload(name);
    auto exp = ctx.MakeExperiment(name);
    core::SimResults pim = exp->Run(ctx.MakeConfig(core::Mode::kGraphPim));
    double pct = pim.atomics > 0 ? 100.0 * pim.offloaded_atomics / pim.atomics : 0.0;
    std::printf("%-26s %-28s %-18s %9.1f%%\n", wl->info().display.c_str(),
                wl->info().host_instr.c_str(), wl->info().pim_op.c_str(), pct);
  }
  return 0;
}
