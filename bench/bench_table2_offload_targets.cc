// Table II: PIM offloading targets — the host atomic instruction each
// workload uses and the PIM-atomic it maps to, verified against the ops
// actually observed offloading in a GraphPIM run.
#include <cstdio>
#include <map>

#include "bench_util.h"
#include "workloads/workload.h"

using namespace graphpim;
using namespace graphpim::bench;

int main(int argc, char** argv) {
  BenchContext ctx = ParseBench(argc, argv, 8 * 1024, 2'000'000);
  PrintHeader("Table II: summary of PIM offloading targets", ctx);

  std::printf("%-26s %-28s %-18s %10s\n", "workload", "offloading target",
              "PIM-atomic type", "offloaded");
  const core::SimConfig cfg = ctx.MakeConfig(core::Mode::kGraphPim);
  auto run_all = [&](const std::vector<std::string>& names) {
    const auto rows = ParallelMap(names, ctx, [&](const std::string& name) {
      return ctx.MakeExperiment(name)->Run(cfg);
    });
    for (std::size_t i = 0; i < names.size(); ++i) {
      auto wl = workloads::CreateWorkload(names[i]);
      const core::SimResults& pim = rows[i];
      double pct =
          pim.atomics > 0 ? 100.0 * pim.offloaded_atomics / pim.atomics : 0.0;
      std::printf("%-26s %-28s %-18s %9.1f%%\n", wl->info().display.c_str(),
                  wl->info().host_instr.c_str(), wl->info().pim_op.c_str(), pct);
    }
  };
  run_all({"bfs", "dc", "sssp", "kcore", "ccomp", "tc"});
  std::printf("\nWith the Section III-C FP extension:\n");
  run_all({"bc", "prank"});
  return 0;
}
