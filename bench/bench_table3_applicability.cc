// Table III: PIM-atomic applicability across the GraphBIG-style workloads.
#include <cstdio>

#include "bench_util.h"
#include "workloads/workload.h"

using namespace graphpim;
using namespace graphpim::bench;

int main(int argc, char** argv) {
  BenchContext ctx = ParseBench(argc, argv);
  PrintHeader("Table III: PIM-atomic applicability (GraphBIG workloads)", ctx);

  std::printf("%-16s %-26s %-12s %s\n", "category", "workload", "applicable?",
              "(missing operation)");
  for (const auto& name : workloads::AllWorkloadNames()) {
    auto wl = workloads::CreateWorkload(name);
    const auto& info = wl->info();
    const char* cat = "";
    switch (info.category) {
      case WorkloadCategory::kGraphTraversal: cat = "Graph Traversal"; break;
      case WorkloadCategory::kDynamicGraph: cat = "Dynamic Graph"; break;
      case WorkloadCategory::kRichProperty: cat = "Rich Property"; break;
    }
    std::printf("%-16s %-26s %-12s %s\n", cat, info.display.c_str(),
                info.pim_applicable ? "yes" : "no",
                info.missing_op.empty() ? "" : ("(" + info.missing_op + ")").c_str());
  }
  std::printf("\nFP add/sub extension (Section III-C) additionally enables\n"
              "Betweenness Centrality and Page Rank.\n");
  return 0;
}
