// Figure 12: normalized HMC link bandwidth consumption with the
// request/response breakdown.
//
// Paper shape: GraphPIM cuts total traffic by ~30% for BFS/CComp/DC/SSSP/
// PRank (mostly on the response side); negligible change for kCore/TC;
// U-PEI saves less than GraphPIM (no cache bypass).
#include <cstdio>

#include "bench_util.h"
#include "workloads/workload.h"

using namespace graphpim;
using namespace graphpim::bench;

int main(int argc, char** argv) {
  BenchContext ctx = ParseBench(argc, argv);
  PrintHeader("Fig 12: normalized bandwidth (request/response FLITs)", ctx);

  std::printf("%-8s %-9s %9s %9s %9s\n", "workload", "config", "request",
              "response", "total");
  const auto names = workloads::EvalWorkloadNames();
  const auto rows = ParallelMap(names, ctx, [&](const std::string& name) {
    auto exp = ctx.MakeExperiment(name);
    return RunPaired(
        *exp, {core::Mode::kBaseline, core::Mode::kUPei, core::Mode::kGraphPim},
        ctx);
  });
  for (std::size_t i = 0; i < names.size(); ++i) {
    const core::SimResults& base = rows[i][0];
    double norm = base.req_flits + base.resp_flits;
    for (const core::SimResults& r : rows[i]) {
      std::printf("%-8s %-9s %9.3f %9.3f %9.3f\n", names[i].c_str(),
                  r.mode.c_str(), r.req_flits / norm, r.resp_flits / norm,
                  (r.req_flits + r.resp_flits) / norm);
    }
  }
  std::printf("\npaper: ~30%% reduction for the atomic-heavy workloads,\n"
              "mostly from the response side\n");
  return 0;
}
