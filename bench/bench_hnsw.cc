// Graph-ANN on the PMR (DESIGN.md §16): HNSW build/search cost and the
// instruction-level offload win on the k-NN search phase.
//
// Two parts:
//   1. Host-side min-of-3 wall timing of the deterministic index build
//      and the batched searches (the functional layer the simulator
//      replays), plus the brute-force recall self-check.
//   2. The paired simulation: the hnsw workload's micro-op trace replayed
//      under Baseline / U-PEI / GraphPIM, reporting the speedup the POU
//      offload buys on the visited-set CAS and beam min-swap traffic.
//
// Accepts the shared bench flags plus every ann.* machine knob
// (--ann-dim, --ann-m, --ann-ef-search, --ann-k, --ann-queries).
#include <chrono>
#include <cstdio>
#include <memory>

#include "bench_util.h"
#include "graph/hnsw_index.h"
#include "graph/vectors.h"
#include "workloads/hnsw.h"

using namespace graphpim;
using namespace graphpim::bench;

namespace {

double MsSince(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - t0)
      .count();
}

}  // namespace

int main(int argc, char** argv) {
  BenchContext ctx = ParseBench(argc, argv, /*default_vertices=*/8192,
                                /*default_op_cap=*/2'000'000);
  PrintHeader("HNSW k-NN on the PMR: build/search timing + offload speedup",
              ctx);
  const workloads::AnnParams ann = ctx.MakeConfig(core::Mode::kGraphPim).ann;
  std::printf("ann: dim=%d m=%d ef_search=%d k=%d queries=%d\n\n", ann.dim,
              ann.m, ann.ef_search, ann.k, ann.queries);

  // --- part 1: host wall timing, min of 3 (build is deterministic, so
  // repetitions only shed scheduler noise) ------------------------------
  graph::VectorSetParams vp;
  vp.count = ctx.vertices;
  vp.dim = ann.dim;
  vp.clusters = ctx.vertices >= 512 ? 16 : 4;
  vp.seed = ctx.seed;
  graph::HnswParams hp;
  hp.m = ann.m;
  hp.ef_construction = 2 * ann.ef_search;

  double build_ms = 0.0;
  double search_ms = 0.0;
  std::unique_ptr<graph::VectorSet> vs;
  std::unique_ptr<graph::HnswIndex> ix;
  for (int rep = 0; rep < 3; ++rep) {
    auto t0 = std::chrono::steady_clock::now();
    auto v = std::make_unique<graph::VectorSet>(vp);
    auto i = std::make_unique<graph::HnswIndex>(*v, hp);
    const double bm = MsSince(t0);
    if (rep == 0 || bm < build_ms) build_ms = bm;

    t0 = std::chrono::steady_clock::now();
    for (int q = 0; q < ann.queries; ++q) {
      const std::vector<float> query = v->Query(static_cast<std::uint64_t>(q));
      (void)i->Search(query.data(), ann.k, ann.ef_search);
    }
    const double sm = MsSince(t0);
    if (rep == 0 || sm < search_ms) search_ms = sm;
    vs = std::move(v);
    ix = std::move(i);
  }
  const double recall =
      graph::SelfCheckRecall(*vs, *ix, ann.k, ann.ef_search, ann.queries);
  std::printf("%-28s %10.2f ms  (min of 3, %u vectors)\n",
              "index build (host)", build_ms, vs->size());
  std::printf("%-28s %10.2f ms  (min of 3, %d searches, %.3f ms/query)\n",
              "k-NN search (host)", search_ms, ann.queries,
              ann.queries > 0 ? search_ms / ann.queries : 0.0);
  std::printf("%-28s %10.4f     (recall@%d vs brute force, %d probes)\n\n",
              "self-check", recall, ann.k, ann.queries);

  // --- part 2: the simulated offload win --------------------------------
  core::Experiment::Options eo;
  eo.num_threads = ctx.threads;
  eo.seed = ctx.seed;
  eo.op_cap = ctx.op_cap;
  eo.params.ann = ann;
  const core::Experiment exp(ctx.profile, ctx.vertices, "hnsw", eo);
  const auto rows = RunPaired(
      exp, {core::Mode::kBaseline, core::Mode::kUPei, core::Mode::kGraphPim},
      ctx);
  const core::SimResults& base = rows[0];
  std::printf("%-10s %12s %10s %12s %10s\n", "machine", "cycles", "speedup",
              "atomics", "offloaded");
  for (std::size_t i = 0; i < rows.size(); ++i) {
    static const char* kNames[] = {"Baseline", "U-PEI", "GraphPIM"};
    const core::SimResults& r = rows[i];
    std::printf("%-10s %12llu %9.2fx %12llu %10llu  |%s\n", kNames[i],
                static_cast<unsigned long long>(r.cycles),
                core::Speedup(base, r),
                static_cast<unsigned long long>(r.atomics),
                static_cast<unsigned long long>(r.offloaded_atomics),
                Bar(core::Speedup(base, r) / 2.5).c_str());
  }
  const auto* hw = dynamic_cast<const workloads::HnswWorkload*>(&exp.workload());
  if (hw != nullptr) {
    std::printf("\nworkload recall@%d = %.4f over %d queries\n", ann.k,
                hw->recall(), ann.queries);
  }
  return 0;
}
