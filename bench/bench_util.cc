#include "bench_util.h"

#include <algorithm>
#include <cstdio>

namespace graphpim::bench {

BenchContext ParseBench(int argc, char** argv, VertexId default_vertices,
                        std::uint64_t default_op_cap) {
  BenchContext ctx;
  ctx.cfg = Config::FromArgs(argc, argv);
  ctx.vertices =
      static_cast<VertexId>(ctx.cfg.GetUint("vertices", default_vertices));
  ctx.full = ctx.cfg.GetBool("full", false);
  ctx.op_cap = ctx.cfg.GetUint("opcap", default_op_cap);
  ctx.threads = static_cast<int>(ctx.cfg.GetInt("threads", 16));
  ctx.seed = ctx.cfg.GetUint("seed", 1);
  ctx.profile = ctx.cfg.GetString("profile", "ldbc");
  return ctx;
}

void PrintHeader(const std::string& title, const BenchContext& ctx) {
  std::printf("==============================================================\n");
  std::printf("GraphPIM reproduction | %s\n", title.c_str());
  std::printf("machine: %s\n",
              ctx.MakeConfig(core::Mode::kGraphPim).Describe().c_str());
  std::printf("dataset: %s-like synthetic graph, %u vertices (op cap %llu)\n",
              ctx.profile.c_str(), ctx.vertices,
              static_cast<unsigned long long>(ctx.op_cap));
  std::printf("==============================================================\n");
}

std::string Bar(double frac, int width) {
  double clamped = std::clamp(frac, 0.0, 1.5);
  int n = static_cast<int>(clamped / 1.5 * width + 0.5);
  std::string out(static_cast<std::size_t>(n), '#');
  return out;
}

}  // namespace graphpim::bench
