#include "bench_util.h"

#include <algorithm>
#include <cstdio>

namespace graphpim::bench {

BenchContext ParseBench(int argc, char** argv, VertexId default_vertices,
                        std::uint64_t default_op_cap) {
  BenchContext ctx;
  ctx.cfg = Config::FromArgs(argc, argv);
  ctx.vertices =
      static_cast<VertexId>(ctx.cfg.GetUint("vertices", default_vertices));
  ctx.full = ctx.cfg.GetBool("full", false);
  ctx.op_cap = ctx.cfg.GetUint("opcap", default_op_cap);
  ctx.threads = static_cast<int>(ctx.cfg.GetInt("threads", 16));
  ctx.seed = ctx.cfg.GetUint("seed", 1);
  ctx.profile = ctx.cfg.GetString("profile", "ldbc");
  ctx.jobs = static_cast<int>(ctx.cfg.GetInt("jobs", 0));
  return ctx;
}

exec::ThreadPool& BenchContext::Pool() const {
  if (pool_ == nullptr) pool_ = std::make_shared<exec::ThreadPool>(jobs);
  return *pool_;
}

std::vector<core::SimResults> RunGrid(const core::Experiment& exp,
                                      const std::vector<core::SimConfig>& cfgs,
                                      const BenchContext& ctx) {
  exec::ThreadPool& pool = ctx.Pool();
  if (pool.OnWorkerThread()) {
    // Nested use (e.g. inside ParallelMap): run inline; blocking on the
    // pool from a worker could starve it. Results are identical either way.
    std::vector<core::SimResults> out;
    out.reserve(cfgs.size());
    for (const core::SimConfig& cfg : cfgs) out.push_back(exp.Run(cfg));
    return out;
  }
  std::vector<exec::TaskFuture<core::SimResults>> futs;
  futs.reserve(cfgs.size());
  for (const core::SimConfig& cfg : cfgs) {
    futs.push_back(pool.Submit([&exp, cfg] { return exp.Run(cfg); }));
  }
  std::vector<core::SimResults> out;
  out.reserve(cfgs.size());
  for (auto& f : futs) out.push_back(*f.Get());
  return out;
}

std::vector<core::SimResults> RunPaired(const core::Experiment& exp,
                                        const std::vector<core::Mode>& modes,
                                        const BenchContext& ctx) {
  std::vector<core::SimConfig> cfgs;
  cfgs.reserve(modes.size());
  for (core::Mode m : modes) cfgs.push_back(ctx.MakeConfig(m));
  return RunGrid(exp, cfgs, ctx);
}

void PrintHeader(const std::string& title, const BenchContext& ctx) {
  std::printf("==============================================================\n");
  std::printf("GraphPIM reproduction | %s\n", title.c_str());
  std::printf("machine: %s\n",
              ctx.MakeConfig(core::Mode::kGraphPim).Describe().c_str());
  std::printf("dataset: %s-like synthetic graph, %u vertices (op cap %llu)\n",
              ctx.profile.c_str(), ctx.vertices,
              static_cast<unsigned long long>(ctx.op_cap));
  std::printf("==============================================================\n");
}

std::string Bar(double frac, int width) {
  double clamped = std::clamp(frac, 0.0, 1.5);
  int n = static_cast<int>(clamped / 1.5 * width + 0.5);
  std::string out(static_cast<std::size_t>(n), '#');
  return out;
}

}  // namespace graphpim::bench
