// Tables VII/VIII and Figure 17: real-world applications.
//
//   FD — financial fraud detection: graph-traversal pipeline (connected
//        components + path tracing) over a Bitcoin-like transaction graph,
//        plus non-graph components that dilute the benefit.
//   RS — recommender system: item-to-item collaborative filtering
//        (co-neighbor intersection + degree scoring) over a Twitter-like
//        follower graph.
//
// As in the paper, the applications exceed architectural-simulation scale:
// counters are collected from scaled-down pipeline runs (substituting the
// paper's Xeon performance counters) and fed to the Section IV-B5
// analytical model.
//
// Paper shape (Fig 17): FD ~1.5x speedup / 32% energy reduction; RS ~1.9x
// speedup / 48% energy reduction; Table VIII: IPC ~0.1, LLC hit rates low,
// backend-stall >80%, PIM-atomic share 1.3% / 2.9%.
#include <cstdio>
#include <vector>

#include "analytic/model.h"
#include "bench_util.h"
#include "core/runner.h"

using namespace graphpim;
using namespace graphpim::bench;

namespace {

struct AppSpec {
  const char* name;
  const char* profile;
  std::vector<const char*> stages;
  std::vector<double> weights;  // share of graph time per stage
  double non_graph_fraction;    // pipeline time outside graph kernels
};

}  // namespace

int main(int argc, char** argv) {
  BenchContext ctx = ParseBench(argc, argv, 16 * 1024, 5'000'000);
  PrintHeader("Fig 17 + Tables VII/VIII: real-world applications", ctx);

  std::printf("Table VII (substituted datasets):\n");
  std::printf("  FD: Bitcoin-like transaction graph (paper: 71.7M vertices,\n"
              "      181.8M edges, ~10GB) — scaled to %u vertices\n", ctx.vertices);
  std::printf("  RS: Twitter-like follower graph (paper: 11M vertices,\n"
              "      85M edges, ~5GB) — scaled to %u vertices\n\n", ctx.vertices);

  const std::vector<AppSpec> apps = {
      {"FD", "bitcoin", {"ccomp", "sssp"}, {0.5, 0.5}, 0.35},
      {"RS", "twitter", {"tc", "dc"}, {0.25, 0.75}, 0.15},
  };

  std::printf("Table VIII analog (measured counters from scaled runs):\n");
  std::printf("%-4s %8s %10s %10s %10s %12s\n", "app", "IPC", "LLC MPKI",
              "LLC hit", "backend", "%PIM-atomic");

  struct AppResult {
    double speedup;
    double energy;
  };
  std::vector<AppResult> results;
  struct StagePair {
    core::SimResults base;
    core::SimResults pim;
  };
  // One pool job per (app, stage) pair: flatten, replay, then regroup.
  std::vector<std::pair<std::size_t, std::size_t>> stage_keys;
  for (std::size_t ai = 0; ai < apps.size(); ++ai) {
    for (std::size_t si = 0; si < apps[ai].stages.size(); ++si) {
      stage_keys.emplace_back(ai, si);
    }
  }
  const auto stage_rows = ParallelMap(
      stage_keys, ctx, [&](const std::pair<std::size_t, std::size_t>& key) {
        const AppSpec& app = apps[key.first];
        BenchContext local = ctx;
        local.profile = app.profile;
        auto exp = local.MakeExperiment(app.stages[key.second]);
        auto rs = RunPaired(
            *exp, {core::Mode::kBaseline, core::Mode::kGraphPim}, ctx);
        return StagePair{std::move(rs[0]), std::move(rs[1])};
      });
  std::size_t flat = 0;
  for (const AppSpec& app : apps) {
    double ipc = 0;
    double mpki = 0;
    double hit = 0;
    double backend = 0;
    double atomic_pct = 0;
    double inv_speedup = 0;  // graph-time share after GraphPIM
    for (std::size_t si = 0; si < app.stages.size(); ++si) {
      const core::SimResults& base = stage_rows[flat].base;
      const core::SimResults& pim = stage_rows[flat].pim;
      ++flat;
      double w = app.weights[si];
      ipc += w * base.ipc;
      mpki += w * base.l3_mpki;
      double l3_acc = base.raw.Get("cache.l3_hits") + base.raw.Get("cache.l3_misses");
      hit += w * (l3_acc > 0 ? base.raw.Get("cache.l3_hits") / l3_acc : 0.0);
      backend += w * base.frac_backend;
      atomic_pct += w * static_cast<double>(base.atomics) /
                    static_cast<double>(base.insts);
      inv_speedup += w / core::Speedup(base, pim);
    }
    // Amdahl combination with the non-graph pipeline components.
    double g = 1.0 - app.non_graph_fraction;
    double speedup = 1.0 / (app.non_graph_fraction + g * inv_speedup);
    // The analytical model supplies the energy estimate from the same
    // counters (Section IV-B5).
    analytic::RealWorldApp in;
    in.name = app.name;
    in.ipc = ipc;
    in.llc_mpki = mpki;
    in.llc_hit_rate = hit;
    in.uncore_time = backend * g;
    in.backend_stall = backend;
    in.pim_atomic_pct = atomic_pct * g;
    in.host_overhead = 1.0 - 1.0 / speedup;
    in.cache_checking = 0.3 * in.host_overhead;
    std::printf("%-4s %8.2f %10.1f %9.1f%% %9.1f%% %11.1f%%\n", app.name, in.ipc,
                in.llc_mpki, 100 * in.llc_hit_rate, 100 * in.backend_stall,
                100 * in.pim_atomic_pct);
    results.push_back({speedup, analytic::EstimateRealWorld(in).energy_norm});
  }

  std::printf("\nFig 17 (counter-driven model estimates):\n");
  std::printf("%-4s %10s %18s\n", "app", "speedup", "norm. uncore energy");
  for (std::size_t i = 0; i < results.size(); ++i) {
    std::printf("%-4s %9.2fx %18.2f\n", apps[i].name, results[i].speedup,
                results[i].energy);
  }
  std::printf("\npaper: FD 1.5x / 0.68 energy; RS 1.9x / 0.52 energy\n");
  return 0;
}
