// Ablation (Section III-B): hybrid HMC + DRAM systems.
//
// "GraphPIM can be applied on systems equipped with both HMCs and DRAMs.
// In this case, the graph property data allocated in DRAMs will be
// processed in the conventional way, while the graph data in HMCs can
// still receive the same benefit from PIM-Atomic." The sweep places a
// fraction of the property pages in the HMC.
#include <cstdio>

#include "bench_util.h"
#include "workloads/workload.h"

using namespace graphpim;
using namespace graphpim::bench;

int main(int argc, char** argv) {
  BenchContext ctx = ParseBench(argc, argv, 16 * 1024, 4'000'000);
  PrintHeader("Ablation: hybrid HMC+DRAM property placement", ctx);

  const double fractions[] = {0.0, 0.25, 0.5, 0.75, 1.0};
  std::printf("%-8s", "workload");
  for (double f : fractions) std::printf("  HMC=%.0f%%", 100 * f);
  std::printf("\n");
  const std::vector<std::string> names = {"dc", "bfs", "prank"};
  const auto rows = ParallelMap(names, ctx, [&](const std::string& name) {
    auto exp = ctx.MakeExperiment(name);
    std::vector<core::SimConfig> cfgs = {ctx.MakeConfig(core::Mode::kBaseline)};
    for (double f : fractions) {
      core::SimConfig cfg = ctx.MakeConfig(core::Mode::kGraphPim);
      cfg.pmr_hmc_fraction = f;
      cfgs.push_back(cfg);
    }
    return RunGrid(*exp, cfgs, ctx);
  });
  for (std::size_t i = 0; i < names.size(); ++i) {
    const core::SimResults& base = rows[i][0];
    std::printf("%-8s", names[i].c_str());
    for (std::size_t k = 1; k < rows[i].size(); ++k) {
      std::printf(" %7.2fx", core::Speedup(base, rows[i][k]));
    }
    std::printf("\n");
  }
  std::printf("\nexpected: benefit scales with the HMC-resident fraction;\n"
              "0%% degenerates to the baseline (conventional processing)\n");
  return 0;
}
