// google-benchmark microbenchmarks of the simulation substrates: cache
// lookups, HMC accesses, graph generation, CSR construction, and end-to-end
// trace replay throughput.
#include <benchmark/benchmark.h>

#include "core/runner.h"
#include "graph/generator.h"
#include "hmc/cube.h"
#include "mem/cache.h"
#include "mem/hierarchy.h"

namespace {

using namespace graphpim;

void BM_CacheLookup(benchmark::State& state) {
  mem::CacheArray cache(static_cast<std::uint64_t>(state.range(0)) * kKiB, 8, 64);
  Rng rng(1);
  for (Addr a = 0; a < cache.size_bytes(); a += 64) cache.Insert(a, false);
  for (auto _ : state) {
    benchmark::DoNotOptimize(cache.Lookup(rng.NextBounded(cache.size_bytes())));
  }
}
BENCHMARK(BM_CacheLookup)->Arg(32)->Arg(256)->Arg(16384);

void BM_HierarchyAccess(benchmark::State& state) {
  hmc::HmcParams hp;
  hmc::HmcNetwork net(hp, nullptr, 0, 0);
  mem::CacheParams cp;
  mem::CacheHierarchy hier(16, cp, &net);
  Rng rng(2);
  Tick t = 0;
  for (auto _ : state) {
    t += 500;
    benchmark::DoNotOptimize(hier.Access(static_cast<int>(rng.NextBounded(16)),
                                         mem::AccessType::kRead,
                                         rng.NextBounded(1 << 26), t));
  }
}
BENCHMARK(BM_HierarchyAccess);

void BM_HmcRead(benchmark::State& state) {
  hmc::HmcParams hp;
  hmc::HmcCube cube(hp);
  Rng rng(3);
  Tick t = 0;
  for (auto _ : state) {
    t += 100;
    benchmark::DoNotOptimize(cube.Read(rng.NextBounded(1 << 28), 64, t));
  }
}
BENCHMARK(BM_HmcRead);

void BM_HmcAtomic(benchmark::State& state) {
  hmc::HmcParams hp;
  hmc::HmcCube cube(hp);
  Rng rng(4);
  Tick t = 0;
  for (auto _ : state) {
    t += 100;
    benchmark::DoNotOptimize(cube.Atomic(rng.NextBounded(1 << 28),
                                         hmc::AtomicOp::kDualAdd8, hmc::Value16{},
                                         false, t));
  }
}
BENCHMARK(BM_HmcAtomic);

void BM_RmatGenerate(benchmark::State& state) {
  graph::RmatParams p;
  p.num_vertices = static_cast<VertexId>(state.range(0));
  p.avg_degree = 16;
  for (auto _ : state) {
    benchmark::DoNotOptimize(graph::GenerateRmat(p));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(p.num_vertices * 16));
}
BENCHMARK(BM_RmatGenerate)->Arg(1024)->Arg(16 * 1024);

void BM_CsrBuild(benchmark::State& state) {
  graph::EdgeList el = graph::GenerateUniform(16 * 1024, 16, 5);
  for (auto _ : state) {
    graph::AddressSpace space;
    graph::CsrGraph g(el, space);
    benchmark::DoNotOptimize(g.num_edges());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(el.edges.size()));
}
BENCHMARK(BM_CsrBuild);

void BM_TraceReplay(benchmark::State& state) {
  core::Experiment::Options o;
  o.num_threads = 16;
  o.op_cap = 400'000;
  core::Experiment exp("ldbc", 4 * 1024, "bfs", o);
  core::SimConfig cfg = core::SimConfig::Scaled(core::Mode::kGraphPim);
  for (auto _ : state) {
    benchmark::DoNotOptimize(exp.Run(cfg));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(exp.trace().TotalOps()));
}
BENCHMARK(BM_TraceReplay)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
