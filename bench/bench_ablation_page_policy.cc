// Ablation: HMC DRAM row-buffer policy (open vs closed page) under both
// machines. Scattered PIM atomics conflict in open-page mode (precharge +
// activate on almost every access), so closed-page can help atomic-heavy
// GraphPIM workloads while costing the baseline's streaming fills.
#include <cstdio>

#include "bench_util.h"
#include "workloads/workload.h"

using namespace graphpim;
using namespace graphpim::bench;

int main(int argc, char** argv) {
  BenchContext ctx = ParseBench(argc, argv, 16 * 1024, 4'000'000);
  PrintHeader("Ablation: HMC row-buffer policy (open vs closed page)", ctx);

  std::printf("%-8s | %-21s | %-21s\n", "", "Baseline cycles", "GraphPIM speedup");
  std::printf("%-8s   %10s %10s   %10s %10s\n", "workload", "open", "closed",
              "open", "closed");
  for (const auto& name : {"dc", "bfs", "kcore", "prank"}) {
    auto exp = ctx.MakeExperiment(name);
    double base_cycles[2];
    double pim_speedup[2];
    int i = 0;
    for (bool closed : {false, true}) {
      core::SimConfig bcfg = ctx.MakeConfig(core::Mode::kBaseline);
      bcfg.hmc.closed_page = closed;
      core::SimConfig pcfg = ctx.MakeConfig(core::Mode::kGraphPim);
      pcfg.hmc.closed_page = closed;
      core::SimResults b = exp->Run(bcfg);
      core::SimResults p = exp->Run(pcfg);
      base_cycles[i] = static_cast<double>(b.cycles);
      pim_speedup[i] = core::Speedup(b, p);
      ++i;
    }
    std::printf("%-8s   %10.0f %10.0f   %9.2fx %9.2fx\n", name, base_cycles[0],
                base_cycles[1], pim_speedup[0], pim_speedup[1]);
  }
  std::printf("\nexpected: policies within a few percent of each other —\n"
              "scattered property traffic defeats the row buffer either way\n");
  return 0;
}
