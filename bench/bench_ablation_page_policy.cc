// Ablation: HMC DRAM row-buffer policy (open vs closed page) under both
// machines. Scattered PIM atomics conflict in open-page mode (precharge +
// activate on almost every access), so closed-page can help atomic-heavy
// GraphPIM workloads while costing the baseline's streaming fills.
#include <cstdio>

#include "bench_util.h"
#include "workloads/workload.h"

using namespace graphpim;
using namespace graphpim::bench;

int main(int argc, char** argv) {
  BenchContext ctx = ParseBench(argc, argv, 16 * 1024, 4'000'000);
  PrintHeader("Ablation: HMC row-buffer policy (open vs closed page)", ctx);

  std::printf("%-8s | %-21s | %-21s\n", "", "Baseline cycles", "GraphPIM speedup");
  std::printf("%-8s   %10s %10s   %10s %10s\n", "workload", "open", "closed",
              "open", "closed");
  const std::vector<std::string> names = {"dc", "bfs", "kcore", "prank"};
  const auto rows = ParallelMap(names, ctx, [&](const std::string& name) {
    auto exp = ctx.MakeExperiment(name);
    std::vector<core::SimConfig> cfgs;
    for (bool closed : {false, true}) {
      core::SimConfig bcfg = ctx.MakeConfig(core::Mode::kBaseline);
      bcfg.hmc.closed_page = closed;
      core::SimConfig pcfg = ctx.MakeConfig(core::Mode::kGraphPim);
      pcfg.hmc.closed_page = closed;
      cfgs.push_back(bcfg);
      cfgs.push_back(pcfg);
    }
    return RunGrid(*exp, cfgs, ctx);
  });
  for (std::size_t i = 0; i < names.size(); ++i) {
    // Order per workload: base/open, pim/open, base/closed, pim/closed.
    const auto& rs = rows[i];
    std::printf("%-8s   %10.0f %10.0f   %9.2fx %9.2fx\n", names[i].c_str(),
                static_cast<double>(rs[0].cycles),
                static_cast<double>(rs[2].cycles), core::Speedup(rs[0], rs[1]),
                core::Speedup(rs[2], rs[3]));
  }
  std::printf("\nexpected: policies within a few percent of each other —\n"
              "scattered property traffic defeats the row buffer either way\n");
  return 0;
}
