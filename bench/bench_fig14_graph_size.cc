// Figure 14 (+ Table VI): sensitivity to input graph size.
//
//   (a) GraphPIM improvement over U-PEI: positive for large graphs,
//       shrinking (even negative for BC) as the graph starts fitting in the
//       LLC and cache bypass loses value.
//   (b) GraphPIM speedup over baseline: stays high across sizes (avoided
//       atomic overhead is size-insensitive).
//
// Sizes scale the LDBC family of Table VI against the scaled machine; pass
// --full=1 with larger --vertices to sweep against Table IV capacities.
#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "workloads/workload.h"

using namespace graphpim;
using namespace graphpim::bench;

int main(int argc, char** argv) {
  BenchContext ctx = ParseBench(argc, argv, 0, 8'000'000);
  PrintHeader("Fig 14: sensitivity to graph size (Table VI family)", ctx);

  struct Size {
    const char* label;
    VertexId n;
  };
  const std::vector<Size> sizes = {{"ldbc-1k", 1024},
                                   {"ldbc-4k", 4 * 1024},
                                   {"ldbc-16k", 16 * 1024},
                                   {"ldbc-64k", 64 * 1024}};

  std::printf("Table VI (scaled family):\n");
  for (const Size& s : sizes) {
    std::printf("  %-9s %7u vertices, ~%.1fM edges\n", s.label, s.n,
                28.8 * s.n / 1e6);
  }

  std::printf("\n(a) GraphPIM improvement over U-PEI   (b) speedup over baseline\n");
  std::printf("%-8s", "workload");
  for (const Size& s : sizes) std::printf(" %9s", s.label);
  std::printf("  |");
  for (const Size& s : sizes) std::printf(" %9s", s.label);
  std::printf("\n");

  const auto names = workloads::EvalWorkloadNames();
  struct Row {
    std::vector<double> vs_upei;
    std::vector<double> vs_base;
  };
  const auto rows = ParallelMap(names, ctx, [&](const std::string& name) {
    Row row;
    for (const Size& s : sizes) {
      BenchContext local = ctx;
      local.vertices = s.n;
      auto exp = local.MakeExperiment(name);
      auto rs = RunPaired(
          *exp,
          {core::Mode::kBaseline, core::Mode::kUPei, core::Mode::kGraphPim},
          ctx);
      const core::SimResults& base = rs[0];
      const core::SimResults& upei = rs[1];
      const core::SimResults& pim = rs[2];
      row.vs_upei.push_back(100.0 * (static_cast<double>(upei.cycles) /
                                         static_cast<double>(pim.cycles) -
                                     1.0));
      row.vs_base.push_back(core::Speedup(base, pim));
    }
    return row;
  });
  for (std::size_t i = 0; i < names.size(); ++i) {
    std::printf("%-8s", names[i].c_str());
    for (double v : rows[i].vs_upei) std::printf(" %8.1f%%", v);
    std::printf("  |");
    for (double v : rows[i].vs_base) std::printf(" %8.2fx", v);
    std::printf("\n");
  }
  std::printf("\npaper: (a) shrinks (negative for BC / small graphs) as data\n"
              "fits the LLC; (b) stays within the large-graph range\n");
  return 0;
}
