// Table V: HMC memory-transaction bandwidth requirement in FLITs.
#include <cstdio>

#include "bench_util.h"
#include "hmc/flit.h"

using namespace graphpim;
using namespace graphpim::bench;
using namespace graphpim::hmc;

int main(int argc, char** argv) {
  BenchContext ctx = ParseBench(argc, argv);
  PrintHeader("Table V: HMC transaction sizes (FLIT = 128 bit)", ctx);

  std::printf("%-24s %10s %10s\n", "type", "request", "response");
  std::printf("%-24s %7u FLITs %6u FLITs\n", "64-byte READ", ReadRequestFlits(64),
              ReadResponseFlits(64));
  std::printf("%-24s %7u FLITs %6u FLITs\n", "64-byte WRITE", WriteRequestFlits(64),
              WriteResponseFlits(64));
  std::printf("%-24s %7u FLITs %6u FLITs\n", "add without return",
              AtomicRequestFlits(AtomicOp::kAdd16),
              AtomicResponseFlits(AtomicOp::kAdd16, false));
  std::printf("%-24s %7u FLITs %6u FLITs\n", "add with return",
              AtomicRequestFlits(AtomicOp::kAdd16Ret),
              AtomicResponseFlits(AtomicOp::kAdd16Ret, true));
  std::printf("%-24s %7u FLITs %6u FLITs\n", "boolean/bitwise/CAS",
              AtomicRequestFlits(AtomicOp::kCasEqual8),
              AtomicResponseFlits(AtomicOp::kCasEqual8, true));
  std::printf("%-24s %7u FLITs %6u FLITs\n", "compare if equal",
              AtomicRequestFlits(AtomicOp::kCompareEqual16),
              AtomicResponseFlits(AtomicOp::kCompareEqual16, true));
  std::printf("\nGraphPIM sub-line UC accesses (8 bytes): read %u+%u, write %u+%u\n",
              ReadRequestFlits(8), ReadResponseFlits(8), WriteRequestFlits(8),
              WriteResponseFlits(8));
  return 0;
}
