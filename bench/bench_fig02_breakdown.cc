// Figure 2: execution-cycle breakdown (top-down style) and cache MPKI of
// graph workloads on the baseline machine.
//
// Paper shape: Backend dominates (up to >90%); L2/L3 provide little help;
// L3 MPKI up to ~145 (DCentr).
#include <cstdio>

#include "bench_util.h"
#include "workloads/workload.h"

using namespace graphpim;
using namespace graphpim::bench;

int main(int argc, char** argv) {
  BenchContext ctx = ParseBench(argc, argv, 16 * 1024, 6'000'000);
  PrintHeader("Fig 2: cycle breakdown + MPKI (baseline machine)", ctx);

  std::printf("%-8s %8s %9s %8s %8s | %8s %8s %8s\n", "workload", "backend",
              "frontend", "badspec", "retire", "L1D-MPKI", "L2-MPKI", "L3-MPKI");
  const auto names = workloads::AllWorkloadNames();
  const core::SimConfig cfg = ctx.MakeConfig(core::Mode::kBaseline);
  const auto rows = ParallelMap(names, ctx, [&](const std::string& name) {
    return ctx.MakeExperiment(name)->Run(cfg);
  });
  for (std::size_t i = 0; i < names.size(); ++i) {
    const core::SimResults& r = rows[i];
    std::printf("%-8s %7.1f%% %8.1f%% %7.1f%% %7.1f%% | %8.1f %8.1f %8.1f\n",
                names[i].c_str(), 100 * r.frac_backend, 100 * r.frac_frontend,
                100 * r.frac_badspec, 100 * r.frac_retiring, r.l1_mpki, r.l2_mpki,
                r.l3_mpki);
  }
  std::printf("\npaper: backend-caused stalls dominate (>90%% for some GT\n"
              "workloads); caches provide little benefit for GT/DG\n");
  return 0;
}
