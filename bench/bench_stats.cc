// google-benchmark microbenchmarks of the stats substrate: string-keyed
// map updates (the pre-refactor StatSet design, replicated here) against
// interned StatId updates (StatRegistry), plus an end-to-end paired
// simulation to show the refactor's wall-time effect on a real run.
#include <benchmark/benchmark.h>

#include <string>
#include <unordered_map>

#include "common/stats.h"
#include "core/runner.h"

namespace {

using namespace graphpim;

// Faithful replica of the retired string-keyed StatSet hot path: every
// update builds/hashes the name and walks an unordered_map.
class StringKeyedStats {
 public:
  void Add(const std::string& name, double v) { values_[name] += v; }
  void Inc(const std::string& name) { Add(name, 1.0); }
  double Get(const std::string& name) const {
    auto it = values_.find(name);
    return it == values_.end() ? 0.0 : it->second;
  }

 private:
  std::unordered_map<std::string, double> values_;
};

constexpr const char* kNames[8] = {
    "hmc.reads",        "hmc.writes",       "hmc.atomics",
    "hmc.req_flits",    "cache.l1_hits",    "cache.l1_misses",
    "cache.atomic_reqs", "fault.link_retries"};

void BM_StatSetStringKeyed(benchmark::State& state) {
  StringKeyedStats s;
  int i = 0;
  for (auto _ : state) {
    // The old call sites passed string literals: each update constructs a
    // std::string and hashes it.
    s.Inc(kNames[i & 7]);
    ++i;
  }
  benchmark::DoNotOptimize(s.Get("hmc.reads"));
}
BENCHMARK(BM_StatSetStringKeyed);

void BM_StatRegistryInterned(benchmark::State& state) {
  StatRegistry reg;
  StatId ids[8];
  for (int i = 0; i < 8; ++i) ids[i] = reg.Intern(kNames[i]);
  int i = 0;
  for (auto _ : state) {
    reg.Inc(ids[i & 7]);
    ++i;
  }
  benchmark::DoNotOptimize(reg.Get(ids[0]));
}
BENCHMARK(BM_StatRegistryInterned);

void BM_StatScopeGuarded(benchmark::State& state) {
  // The component-facing path: scope update with its null-registry branch.
  StatRegistry reg;
  StatScope scope(&reg, "hmc");
  StatId ids[8];
  for (int i = 0; i < 8; ++i) ids[i] = scope.Counter(kNames[i]);
  int i = 0;
  for (auto _ : state) {
    scope.Inc(ids[i & 7]);
    ++i;
  }
  benchmark::DoNotOptimize(reg.Get(ids[0]));
}
BENCHMARK(BM_StatScopeGuarded);

void BM_StatRegistryMerge(benchmark::State& state) {
  StatRegistry src;
  for (int i = 0; i < 64; ++i) src.Add("counter." + std::to_string(i), 1.0);
  for (auto _ : state) {
    StatRegistry dst;
    dst.Merge(src);
    benchmark::DoNotOptimize(dst.NumRegistered());
  }
}
BENCHMARK(BM_StatRegistryMerge);

// End to end: one baseline+GraphPIM pair on a small graph, the shape the
// counter hot path actually runs under. Before/after wall time of this
// benchmark is the PR's headline perf number.
void BM_RunPairedSim(benchmark::State& state) {
  core::Experiment::Options eo;
  eo.num_threads = 8;
  eo.seed = 1;
  eo.op_cap = 150'000;
  core::Experiment exp("ldbc", 2048, "bfs", eo);
  core::SimConfig base = core::SimConfig::Scaled(core::Mode::kBaseline);
  core::SimConfig pim = core::SimConfig::Scaled(core::Mode::kGraphPim);
  base.num_cores = pim.num_cores = 8;
  for (auto _ : state) {
    core::SimResults rb = exp.Run(base);
    core::SimResults rp = exp.Run(pim);
    benchmark::DoNotOptimize(rb.cycles);
    benchmark::DoNotOptimize(rp.cycles);
  }
}
BENCHMARK(BM_RunPairedSim)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
