// Figure 11: GraphPIM speedup with different numbers of PIM functional
// units per HMC vault.
//
// Paper shape: essentially flat — even one FU per vault sustains the
// atomic throughput, because vault interleaving and dependent instructions
// keep PIM-atomics sparse in the request stream.
#include <cstdio>

#include "bench_util.h"
#include "workloads/workload.h"

using namespace graphpim;
using namespace graphpim::bench;

int main(int argc, char** argv) {
  BenchContext ctx = ParseBench(argc, argv, 16 * 1024, 6'000'000);
  PrintHeader("Fig 11: speedup vs PIM FUs per vault (GraphPIM)", ctx);

  const std::uint32_t fus[] = {16, 8, 4, 2, 1};
  std::printf("%-8s", "workload");
  for (std::uint32_t f : fus) std::printf("   FU=%-2u", f);
  std::printf("\n");
  const auto names = workloads::EvalWorkloadNames();
  const auto rows = ParallelMap(names, ctx, [&](const std::string& name) {
    auto exp = ctx.MakeExperiment(name);
    std::vector<core::SimConfig> cfgs = {ctx.MakeConfig(core::Mode::kBaseline)};
    for (std::uint32_t f : fus) {
      core::SimConfig cfg = ctx.MakeConfig(core::Mode::kGraphPim);
      cfg.hmc.fus_per_vault = f;
      cfgs.push_back(cfg);
    }
    return RunGrid(*exp, cfgs, ctx);
  });
  for (std::size_t i = 0; i < names.size(); ++i) {
    const core::SimResults& base = rows[i][0];
    std::printf("%-8s", names[i].c_str());
    for (std::size_t k = 1; k < rows[i].size(); ++k) {
      std::printf(" %6.2fx", core::Speedup(base, rows[i][k]));
    }
    std::printf("\n");
  }
  std::printf("\npaper: no noticeable impact down to one FU per vault\n");
  return 0;
}
