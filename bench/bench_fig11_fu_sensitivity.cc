// Figure 11: GraphPIM speedup with different numbers of PIM functional
// units per HMC vault.
//
// Paper shape: essentially flat — even one FU per vault sustains the
// atomic throughput, because vault interleaving and dependent instructions
// keep PIM-atomics sparse in the request stream.
#include <cstdio>

#include "bench_util.h"
#include "workloads/workload.h"

using namespace graphpim;
using namespace graphpim::bench;

int main(int argc, char** argv) {
  BenchContext ctx = ParseBench(argc, argv, 16 * 1024, 6'000'000);
  PrintHeader("Fig 11: speedup vs PIM FUs per vault (GraphPIM)", ctx);

  const std::uint32_t fus[] = {16, 8, 4, 2, 1};
  std::printf("%-8s", "workload");
  for (std::uint32_t f : fus) std::printf("   FU=%-2u", f);
  std::printf("\n");
  for (const auto& name : workloads::EvalWorkloadNames()) {
    auto exp = ctx.MakeExperiment(name);
    core::SimResults base = exp->Run(ctx.MakeConfig(core::Mode::kBaseline));
    std::printf("%-8s", name.c_str());
    for (std::uint32_t f : fus) {
      core::SimConfig cfg = ctx.MakeConfig(core::Mode::kGraphPim);
      cfg.hmc.fus_per_vault = f;
      core::SimResults r = exp->Run(cfg);
      std::printf(" %6.2fx", core::Speedup(base, r));
    }
    std::printf("\n");
  }
  std::printf("\npaper: no noticeable impact down to one FU per vault\n");
  return 0;
}
