// Figure 9: breakdown of normalized execution time into Atomic-inCore,
// Atomic-inCache, and Other, for the baseline and GraphPIM.
//
// The total atomic share is measured by ablation (replaying the trace with
// atomics replaced by plain read+write, as in Fig 4) and split between
// in-core and in-cache using the core's attribution counters; this mirrors
// the paper's definitions (in-core: pipeline freezing + write-buffer
// draining; in-cache: cache checking + coherence traffic).
//
// Paper shape: baseline >50% atomic time for BFS/CComp/DC/PRank with
// in-core the larger part; kCore/TC small; GraphPIM bars shrink to ~1/2x
// with almost no atomic component.
#include <algorithm>
#include <cstdio>

#include "bench_util.h"
#include "core/runner.h"
#include "workloads/workload.h"

using namespace graphpim;
using namespace graphpim::bench;

int main(int argc, char** argv) {
  BenchContext ctx = ParseBench(argc, argv, 16 * 1024, 6'000'000);
  PrintHeader("Fig 9: normalized execution-time breakdown", ctx);

  std::printf("%-8s %-9s %10s %14s %15s %8s\n", "workload", "config", "norm-time",
              "atomic-inCore", "atomic-inCache", "other");
  const auto names = workloads::EvalWorkloadNames();
  struct Row {
    core::SimResults with[2];
    core::SimResults without[2];
  };
  const auto rows = ParallelMap(names, ctx, [&](const std::string& name) {
    auto exp = ctx.MakeExperiment(name);
    workloads::Trace plain = workloads::ReplaceAtomicsWithPlain(exp->trace());
    Row r;
    int i = 0;
    for (core::Mode mode : {core::Mode::kBaseline, core::Mode::kGraphPim}) {
      core::SimConfig cfg = ctx.MakeConfig(mode);
      r.with[i] = exp->Run(cfg);
      r.without[i] =
          core::RunSimulation(plain, cfg, exp->pmr_base(), exp->pmr_end(),
                              core::RunOptions{});
      ++i;
    }
    return r;
  });
  for (std::size_t wi = 0; wi < names.size(); ++wi) {
    const std::string& name = names[wi];
    double base_cycles = static_cast<double>(rows[wi].with[0].cycles);
    for (int mi = 0; mi < 2; ++mi) {
      const core::SimResults& with = rows[wi].with[mi];
      const core::SimResults& without = rows[wi].without[mi];
      double norm = static_cast<double>(with.cycles) / base_cycles;
      double atomic_share = std::max(
          0.0, 1.0 - static_cast<double>(without.cycles) /
                         static_cast<double>(with.cycles));
      // Split the ablated share by the attribution counters' ratio.
      double ic = with.frac_atomic_incore;
      double ca = with.frac_atomic_incache;
      double denom = ic + ca > 0 ? ic + ca : 1.0;
      double incore = atomic_share * ic / denom;
      double incache = atomic_share * ca / denom;
      std::printf("%-8s %-9s %10.2f %13.1f%% %14.1f%% %7.1f%%\n", name.c_str(),
                  with.mode.c_str(), norm, 100 * norm * incore,
                  100 * norm * incache, 100 * norm * (1.0 - incore - incache));
    }
  }
  std::printf("\npaper: baseline atomic share >50%% for BFS/CComp/DC/PRank\n"
              "(in-core > 30%%, in-cache up to ~20%%); GraphPIM removes it\n");
  return 0;
}
