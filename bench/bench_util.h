// Shared harness utilities for the per-figure/table bench binaries.
//
// Every bench accepts the same command-line overrides:
//   --vertices=N    LDBC-like graph size (default per bench)
//   --full=1        Table IV full-size caches (default: scaled, DESIGN.md)
//   --opcap=N       micro-op sampling cap per run
//   --threads=N     worker threads (== cores simulated)
//   --seed=N        generator seed
//   --jobs=N        host threads replaying configs in parallel
//                   (0 = hardware concurrency; results are identical for
//                   any N — see src/exec determinism contract)
#ifndef GRAPHPIM_BENCH_BENCH_UTIL_H_
#define GRAPHPIM_BENCH_BENCH_UTIL_H_

#include <memory>
#include <string>
#include <vector>

#include "common/config.h"
#include "core/runner.h"
#include "exec/thread_pool.h"

namespace graphpim::bench {

struct BenchContext {
  Config cfg;
  VertexId vertices = 32 * 1024;
  bool full = false;
  std::uint64_t op_cap = 12'000'000;
  int threads = 16;
  std::uint64_t seed = 1;
  std::string profile = "ldbc";
  int jobs = 0;  // pool width; 0 = hardware concurrency

  // Builds the machine through the shared SimConfig::FromConfig path, so a
  // bench invocation accepts every field-table knob (--full, --threads,
  // --num-cubes, --topology, fault knobs, ...) without bespoke plumbing.
  core::SimConfig MakeConfig(core::Mode mode) const {
    return core::SimConfig::FromConfig(cfg, mode);
  }

  std::unique_ptr<core::Experiment> MakeExperiment(const std::string& workload) const {
    core::Experiment::Options o;
    o.num_threads = threads;
    o.seed = seed;
    o.op_cap = op_cap;
    return std::make_unique<core::Experiment>(profile, vertices, workload, o);
  }

  // Process-wide replay pool, created on first use with `jobs` workers.
  exec::ThreadPool& Pool() const;

 private:
  mutable std::shared_ptr<exec::ThreadPool> pool_;
};

// Replays `exp` under every config on the shared pool; results come back
// in input order, bit-identical to serial exp.Run() calls.
std::vector<core::SimResults> RunGrid(const core::Experiment& exp,
                                      const std::vector<core::SimConfig>& cfgs,
                                      const BenchContext& ctx);

// Paired-run helper: replays `exp` under ctx.MakeConfig(m) for each mode,
// in parallel, keeping the paper's paired-trace methodology.
std::vector<core::SimResults> RunPaired(const core::Experiment& exp,
                                        const std::vector<core::Mode>& modes,
                                        const BenchContext& ctx);

// Runs `fn(item)` for every item on the shared pool and returns the results
// in input order (completion order does not leak out, so bench output stays
// deterministic). `fn` may itself call RunGrid/RunPaired: nested calls from
// a worker thread execute inline rather than re-entering the pool.
template <typename Item, typename F>
auto ParallelMap(const std::vector<Item>& items, const BenchContext& ctx, F fn)
    -> std::vector<std::invoke_result_t<F&, const Item&>> {
  using R = std::invoke_result_t<F&, const Item&>;
  exec::ThreadPool& pool = ctx.Pool();
  std::vector<exec::TaskFuture<R>> futs;
  futs.reserve(items.size());
  for (const Item& item : items) {
    futs.push_back(pool.Submit([&fn, &item] { return fn(item); }));
  }
  std::vector<R> out;
  out.reserve(items.size());
  for (auto& f : futs) out.push_back(std::move(*f.Get()));
  return out;
}

// Parses the common flags; `default_vertices` lets heavyweight sweeps pick
// a smaller default.
BenchContext ParseBench(int argc, char** argv, VertexId default_vertices = 32 * 1024,
                        std::uint64_t default_op_cap = 12'000'000);

// Prints the standard banner: bench title + Table IV-style machine line.
void PrintHeader(const std::string& title, const BenchContext& ctx);

// ASCII bar of length proportional to `frac` (clamped to [0, 1.5]).
std::string Bar(double frac, int width = 40);

}  // namespace graphpim::bench

#endif  // GRAPHPIM_BENCH_BENCH_UTIL_H_
