// Shared harness utilities for the per-figure/table bench binaries.
//
// Every bench accepts the same command-line overrides:
//   --vertices=N    LDBC-like graph size (default per bench)
//   --full=1        Table IV full-size caches (default: scaled, DESIGN.md)
//   --opcap=N       micro-op sampling cap per run
//   --threads=N     worker threads (== cores simulated)
//   --seed=N        generator seed
#ifndef GRAPHPIM_BENCH_BENCH_UTIL_H_
#define GRAPHPIM_BENCH_BENCH_UTIL_H_

#include <memory>
#include <string>
#include <vector>

#include "common/config.h"
#include "core/runner.h"

namespace graphpim::bench {

struct BenchContext {
  Config cfg;
  VertexId vertices = 32 * 1024;
  bool full = false;
  std::uint64_t op_cap = 12'000'000;
  int threads = 16;
  std::uint64_t seed = 1;
  std::string profile = "ldbc";

  core::SimConfig MakeConfig(core::Mode mode) const {
    core::SimConfig c =
        full ? core::SimConfig::Paper(mode) : core::SimConfig::Scaled(mode);
    c.num_cores = threads;
    return c;
  }

  std::unique_ptr<core::Experiment> MakeExperiment(const std::string& workload) const {
    core::Experiment::Options o;
    o.num_threads = threads;
    o.seed = seed;
    o.op_cap = op_cap;
    return std::make_unique<core::Experiment>(profile, vertices, workload, o);
  }
};

// Parses the common flags; `default_vertices` lets heavyweight sweeps pick
// a smaller default.
BenchContext ParseBench(int argc, char** argv, VertexId default_vertices = 32 * 1024,
                        std::uint64_t default_op_cap = 12'000'000);

// Prints the standard banner: bench title + Table IV-style machine line.
void PrintHeader(const std::string& title, const BenchContext& ctx);

// ASCII bar of length proportional to `frac` (clamped to [0, 1.5]).
std::string Bar(double frac, int width = 40);

}  // namespace graphpim::bench

#endif  // GRAPHPIM_BENCH_BENCH_UTIL_H_
