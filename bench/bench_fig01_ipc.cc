// Figure 1: instructions per cycle (IPC) of graph workloads on the
// conventional (baseline) machine, grouped by category.
//
// Paper shape: most workloads far below IPC 1; GT lowest (often < 0.1),
// DG a bit higher, RP highest.
#include <cstdio>

#include "bench_util.h"
#include "workloads/workload.h"

using namespace graphpim;
using namespace graphpim::bench;

int main(int argc, char** argv) {
  BenchContext ctx = ParseBench(argc, argv, /*default_vertices=*/16 * 1024,
                                /*default_op_cap=*/6'000'000);
  PrintHeader("Fig 1: IPC of graph workloads (baseline machine)", ctx);

  std::printf("%-8s %-4s %8s\n", "workload", "cat", "IPC");
  for (const auto& name : workloads::AllWorkloadNames()) {
    auto wl = workloads::CreateWorkload(name);
    WorkloadCategory cat = wl->info().category;
    auto exp = ctx.MakeExperiment(name);
    core::SimResults base = exp->Run(ctx.MakeConfig(core::Mode::kBaseline));
    std::printf("%-8s %-4s %8.3f  |%s\n", name.c_str(), ToString(cat), base.ipc,
                Bar(base.ipc / 0.7).c_str());
  }
  std::printf("\npaper: GT workloads often below 0.1 IPC; all well below 1\n");
  return 0;
}
