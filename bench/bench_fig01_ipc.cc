// Figure 1: instructions per cycle (IPC) of graph workloads on the
// conventional (baseline) machine, grouped by category.
//
// Paper shape: most workloads far below IPC 1; GT lowest (often < 0.1),
// DG a bit higher, RP highest.
#include <cstdio>

#include "bench_util.h"
#include "workloads/workload.h"

using namespace graphpim;
using namespace graphpim::bench;

int main(int argc, char** argv) {
  BenchContext ctx = ParseBench(argc, argv, /*default_vertices=*/16 * 1024,
                                /*default_op_cap=*/6'000'000);
  PrintHeader("Fig 1: IPC of graph workloads (baseline machine)", ctx);

  std::printf("%-8s %-4s %8s\n", "workload", "cat", "IPC");
  const auto names = workloads::AllWorkloadNames();
  const core::SimConfig cfg = ctx.MakeConfig(core::Mode::kBaseline);
  const auto rows = ParallelMap(names, ctx, [&](const std::string& name) {
    return ctx.MakeExperiment(name)->Run(cfg);
  });
  for (std::size_t i = 0; i < names.size(); ++i) {
    auto wl = workloads::CreateWorkload(names[i]);
    WorkloadCategory cat = wl->info().category;
    const core::SimResults& base = rows[i];
    std::printf("%-8s %-4s %8.3f  |%s\n", names[i].c_str(), ToString(cat),
                base.ipc, Bar(base.ipc / 0.7).c_str());
  }
  std::printf("\npaper: GT workloads often below 0.1 IPC; all well below 1\n");
  return 0;
}
