// Figure 15: uncore energy breakdown normalized to the baseline.
//
// Paper shape: GraphPIM reduces uncore energy by ~37% on average; savings
// come from caches, HMC links and the logic layer; FU energy negligible
// except the FP workloads (BC, PRank); never worse than the baseline.
#include <cstdio>

#include "bench_util.h"
#include "workloads/workload.h"

using namespace graphpim;
using namespace graphpim::bench;

int main(int argc, char** argv) {
  BenchContext ctx = ParseBench(argc, argv);
  PrintHeader("Fig 15: uncore energy breakdown (normalized to baseline)", ctx);

  std::printf("%-8s %-9s %8s %8s %8s %8s %8s %8s\n", "workload", "config",
              "caches", "link", "FU", "logic", "DRAM", "total");
  double sum = 0;
  int n = 0;
  const auto names = workloads::EvalWorkloadNames();
  const auto rows = ParallelMap(names, ctx, [&](const std::string& name) {
    auto exp = ctx.MakeExperiment(name);
    return RunPaired(*exp, {core::Mode::kBaseline, core::Mode::kGraphPim}, ctx);
  });
  for (std::size_t i = 0; i < names.size(); ++i) {
    const std::string& name = names[i];
    const core::SimResults& base = rows[i][0];
    const core::SimResults& pim = rows[i][1];
    double norm = base.energy.Total();
    for (const core::SimResults* r : {&base, &pim}) {
      std::printf("%-8s %-9s %8.3f %8.3f %8.3f %8.3f %8.3f %8.3f\n", name.c_str(),
                  r->mode.c_str(), r->energy.caches_j / norm, r->energy.link_j / norm,
                  r->energy.fu_j / norm, r->energy.logic_j / norm,
                  r->energy.dram_j / norm, r->energy.Total() / norm);
    }
    sum += pim.energy.Total() / norm;
    ++n;
  }
  std::printf("%-8s %-9s %48s %8.3f\n", "average", "GraphPIM", "", sum / n);
  std::printf("\npaper: ~37%% average uncore energy reduction; links + logic\n"
              "layer dominate HMC energy; FP FU visible only for BC/PRank\n");
  return 0;
}
