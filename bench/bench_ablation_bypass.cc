// Ablation (Section III-B discussion): the cache-bypass policy.
//
//   Baseline   — cacheable property, host atomics
//   UC-NoPIM   — uncacheable property WITHOUT PIM atomics: host atomics
//                degrade to bus locking ("huge performance degradation")
//   GraphPIM   — uncacheable property WITH PIM atomics
//
// This isolates the paper's claim that bypassing the cache only pays off
// when combined with PIM-atomic offloading.
#include <cstdio>

#include "bench_util.h"
#include "workloads/workload.h"

using namespace graphpim;
using namespace graphpim::bench;

int main(int argc, char** argv) {
  BenchContext ctx = ParseBench(argc, argv, 16 * 1024, 3'000'000);
  PrintHeader("Ablation: cache bypass with/without PIM atomics", ctx);

  std::printf("%-8s %12s %12s %12s\n", "workload", "Baseline", "UC-NoPIM",
              "GraphPIM");
  const std::vector<std::string> names = {"bfs", "dc", "ccomp", "kcore"};
  const auto rows = ParallelMap(names, ctx, [&](const std::string& name) {
    auto exp = ctx.MakeExperiment(name);
    return RunPaired(*exp,
                     {core::Mode::kBaseline, core::Mode::kUncacheNoPim,
                      core::Mode::kGraphPim},
                     ctx);
  });
  for (std::size_t i = 0; i < names.size(); ++i) {
    const core::SimResults& base = rows[i][0];
    std::printf("%-8s %11.2fx %11.2fx %11.2fx\n", names[i].c_str(), 1.0,
                core::Speedup(base, rows[i][1]), core::Speedup(base, rows[i][2]));
  }
  std::printf("\nexpected: UC-NoPIM well below 1x (bus-locked atomics);\n"
              "bypass helps only together with PIM-atomic offloading\n");
  return 0;
}
