// Ablation (Section III-B discussion): the cache-bypass policy.
//
//   Baseline   — cacheable property, host atomics
//   UC-NoPIM   — uncacheable property WITHOUT PIM atomics: host atomics
//                degrade to bus locking ("huge performance degradation")
//   GraphPIM   — uncacheable property WITH PIM atomics
//
// This isolates the paper's claim that bypassing the cache only pays off
// when combined with PIM-atomic offloading.
#include <cstdio>

#include "bench_util.h"
#include "workloads/workload.h"

using namespace graphpim;
using namespace graphpim::bench;

int main(int argc, char** argv) {
  BenchContext ctx = ParseBench(argc, argv, 16 * 1024, 3'000'000);
  PrintHeader("Ablation: cache bypass with/without PIM atomics", ctx);

  std::printf("%-8s %12s %12s %12s\n", "workload", "Baseline", "UC-NoPIM",
              "GraphPIM");
  for (const auto& name : {"bfs", "dc", "ccomp", "kcore"}) {
    auto exp = ctx.MakeExperiment(name);
    core::SimResults base = exp->Run(ctx.MakeConfig(core::Mode::kBaseline));
    core::SimResults uc = exp->Run(ctx.MakeConfig(core::Mode::kUncacheNoPim));
    core::SimResults pim = exp->Run(ctx.MakeConfig(core::Mode::kGraphPim));
    std::printf("%-8s %11.2fx %11.2fx %11.2fx\n", name, 1.0,
                core::Speedup(base, uc), core::Speedup(base, pim));
  }
  std::printf("\nexpected: UC-NoPIM well below 1x (bus-locked atomics);\n"
              "bypass helps only together with PIM-atomic offloading\n");
  return 0;
}
