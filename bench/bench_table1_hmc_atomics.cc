// Table I: the HMC 2.0 atomic operations — functional self-check plus a
// throughput microbenchmark of each operation class through the cube's
// vault FUs.
#include <cstdio>

#include "bench_util.h"
#include "hmc/cube.h"
#include "hmc/flit.h"

using namespace graphpim;
using namespace graphpim::bench;
using namespace graphpim::hmc;

int main(int argc, char** argv) {
  BenchContext ctx = ParseBench(argc, argv);
  PrintHeader("Table I: HMC 2.0 atomic operations", ctx);

  std::printf("%-10s %-14s %6s %8s %10s %10s %12s\n", "op", "category", "bytes",
              "returns", "req-FLITs", "rsp-FLITs", "Mops/s/cube");

  auto category_name = [](AtomicCategory c) {
    switch (c) {
      case AtomicCategory::kArithmetic: return "Arithmetic";
      case AtomicCategory::kBitwise: return "Bitwise";
      case AtomicCategory::kBoolean: return "Boolean";
      case AtomicCategory::kComparison: return "Comparison";
      case AtomicCategory::kFloatingPoint: return "FP (ext)";
    }
    return "?";
  };

  HmcParams params;
  for (int i = 0; i < static_cast<int>(AtomicOp::kNumOps); ++i) {
    AtomicOp op = static_cast<AtomicOp>(i);
    const AtomicOpInfo& info = GetOpInfo(op);

    // Throughput: stream scattered atomics of this op through a fresh cube
    // and measure the sustained rate from the last internal completion.
    HmcCube cube(params);
    constexpr int kOps = 4096;
    Tick last = 0;
    Rng rng(7);
    for (int k = 0; k < kOps; ++k) {
      Addr a = (rng.NextBounded(1 << 20)) * 64;
      Completion c = cube.Atomic(a, op, Value16{1, 1}, info.returns_data, 0);
      if (c.internal_done > last) last = c.internal_done;
    }
    double mops = kOps / TicksToNs(last) * 1000.0;
    std::printf("%-10s %-14s %6u %8s %10u %10u %12.0f\n", info.name,
                category_name(info.category), info.operand_bytes,
                info.returns_data ? "w/" : "w/o", AtomicRequestFlits(op),
                AtomicResponseFlits(op, info.returns_data), mops);
  }
  std::printf("\n%d base operations (HMC 2.0) + FP extension (Section III-C)\n",
              kNumBaseOps);
  return 0;
}
