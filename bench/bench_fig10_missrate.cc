// Figure 10: cache miss rate of offloading candidates (atomic accesses to
// the graph property) on the baseline machine.
//
// Paper shape: >80% miss for most workloads; kCore, TC and BC show lower
// rates (limited accesses / data locality).
#include <cstdio>

#include "bench_util.h"
#include "workloads/workload.h"

using namespace graphpim;
using namespace graphpim::bench;

int main(int argc, char** argv) {
  BenchContext ctx = ParseBench(argc, argv);
  PrintHeader("Fig 10: cache miss rate of offloading candidates", ctx);

  // Offloading candidates are the PMR (property) accesses — the atomics
  // plus the loads feeding them, all of which GraphPIM routes around the
  // caches. Reported: the fraction that miss the whole hierarchy in the
  // baseline.
  std::printf("%-8s %10s %12s %14s\n", "workload", "miss-rate", "candidates",
              "atomic-miss");
  const auto names = workloads::EvalWorkloadNames();
  const core::SimConfig cfg = ctx.MakeConfig(core::Mode::kBaseline);
  const auto rows = ParallelMap(names, ctx, [&](const std::string& name) {
    return ctx.MakeExperiment(name)->Run(cfg);
  });
  for (std::size_t i = 0; i < names.size(); ++i) {
    const core::SimResults& base = rows[i];
    double acc = base.raw.Get("cache.access.property");
    double miss = base.raw.Get("cache.l3_miss.property");
    double rate = acc > 0 ? miss / acc : 0.0;
    std::printf("%-8s %9.1f%% %12.0f %13.1f%%  |%s\n", names[i].c_str(),
                100 * rate, acc, 100 * base.atomic_miss_rate, Bar(rate).c_str());
  }
  std::printf("\npaper: >80%% for most workloads; kCore/TC/BC lower\n");
  return 0;
}
