// Figure 13: speedup over the original-bandwidth baseline with halved and
// doubled HMC link bandwidth.
//
// Paper shape: insensitive — HMC's link bandwidth is rich enough that
// neither the baseline nor GraphPIM moves with bandwidth, so GraphPIM's
// traffic savings do not translate into performance.
#include <cstdio>

#include "bench_util.h"
#include "workloads/workload.h"

using namespace graphpim;
using namespace graphpim::bench;

int main(int argc, char** argv) {
  BenchContext ctx = ParseBench(argc, argv, 16 * 1024, 6'000'000);
  PrintHeader("Fig 13: sensitivity to HMC link bandwidth", ctx);

  const double scales[] = {0.5, 1.0, 2.0};
  std::printf("%-8s | %-23s | %-23s\n", "", "Baseline", "GraphPIM");
  std::printf("%-8s   %6s %6s %6s    %6s %6s %6s\n", "workload", "half", "1x",
              "double", "half", "1x", "double");
  const auto names = workloads::EvalWorkloadNames();
  const auto rows = ParallelMap(names, ctx, [&](const std::string& name) {
    auto exp = ctx.MakeExperiment(name);
    std::vector<core::SimConfig> cfgs;
    for (core::Mode mode : {core::Mode::kBaseline, core::Mode::kGraphPim}) {
      for (double s : scales) {
        core::SimConfig cfg = ctx.MakeConfig(mode);
        cfg.hmc.link_bw_scale = s;
        cfgs.push_back(cfg);
      }
    }
    return RunGrid(*exp, cfgs, ctx);
  });
  for (std::size_t i = 0; i < names.size(); ++i) {
    // Reference: baseline at 1x bandwidth (index 1 in the scales order).
    const core::SimResults& ref = rows[i][1];
    std::printf("%-8s  ", names[i].c_str());
    for (std::size_t k = 0; k < rows[i].size(); ++k) {
      std::printf(" %5.2fx", core::Speedup(ref, rows[i][k]));
      if ((k + 1) % 3 == 0) std::printf("   ");
    }
    std::printf("\n");
  }
  std::printf("\npaper: both systems insensitive to link bandwidth variations\n");
  return 0;
}
