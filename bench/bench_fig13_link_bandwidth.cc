// Figure 13: speedup over the original-bandwidth baseline with halved and
// doubled HMC link bandwidth.
//
// Paper shape: insensitive — HMC's link bandwidth is rich enough that
// neither the baseline nor GraphPIM moves with bandwidth, so GraphPIM's
// traffic savings do not translate into performance.
#include <cstdio>

#include "bench_util.h"
#include "workloads/workload.h"

using namespace graphpim;
using namespace graphpim::bench;

int main(int argc, char** argv) {
  BenchContext ctx = ParseBench(argc, argv, 16 * 1024, 6'000'000);
  PrintHeader("Fig 13: sensitivity to HMC link bandwidth", ctx);

  const double scales[] = {0.5, 1.0, 2.0};
  std::printf("%-8s | %-23s | %-23s\n", "", "Baseline", "GraphPIM");
  std::printf("%-8s   %6s %6s %6s    %6s %6s %6s\n", "workload", "half", "1x",
              "double", "half", "1x", "double");
  for (const auto& name : workloads::EvalWorkloadNames()) {
    auto exp = ctx.MakeExperiment(name);
    core::SimResults ref = exp->Run(ctx.MakeConfig(core::Mode::kBaseline));
    std::printf("%-8s  ", name.c_str());
    for (core::Mode mode : {core::Mode::kBaseline, core::Mode::kGraphPim}) {
      for (double s : scales) {
        core::SimConfig cfg = ctx.MakeConfig(mode);
        cfg.hmc.link_bw_scale = s;
        core::SimResults r =
            (mode == core::Mode::kBaseline && s == 1.0) ? ref : exp->Run(cfg);
        std::printf(" %5.2fx", core::Speedup(ref, r));
      }
      std::printf("   ");
    }
    std::printf("\n");
  }
  std::printf("\npaper: both systems insensitive to link bandwidth variations\n");
  return 0;
}
