// Ablation (Section III-B): fusing comparison instruction blocks into
// CAS-if-less PIM atomics.
//
// SSSP's relax and CComp's min-label update compile to load/compare/
// branch/CAS blocks because x86 has no single "update-if-less" atomic.
// The paper proposes identifying such blocks and offloading each as ONE
// PIM command — halving the property round trips.
#include <cstdio>

#include "bench_util.h"
#include "core/runner.h"
#include "workloads/fusion.h"
#include "workloads/workload.h"

using namespace graphpim;
using namespace graphpim::bench;

int main(int argc, char** argv) {
  BenchContext ctx = ParseBench(argc, argv, 16 * 1024, 4'000'000);
  PrintHeader("Ablation: comparison-block fusion (CAS-if-less)", ctx);

  std::printf("%-8s %12s %14s %12s %12s\n", "workload", "GraphPIM", "GraphPIM+fuse",
              "blocks", "ops saved");
  const std::vector<std::string> names = {"sssp", "ccomp", "bfs"};
  struct Row {
    core::SimResults base;
    core::SimResults pim;
    core::SimResults fused;
    workloads::FusionStats fstats;
  };
  const auto rows = ParallelMap(names, ctx, [&](const std::string& name) {
    auto exp = ctx.MakeExperiment(name);
    auto rs = RunPaired(*exp, {core::Mode::kBaseline, core::Mode::kGraphPim}, ctx);
    Row r;
    r.base = std::move(rs[0]);
    r.pim = std::move(rs[1]);

    // The fusion pass needs the address-space classification; rebuild one
    // (the segment layout is static).
    graph::AddressSpace space;
    workloads::Trace fused =
        workloads::FuseComparisonBlocks(exp->trace(), space, &r.fstats);
    r.fused = core::RunSimulation(fused, ctx.MakeConfig(core::Mode::kGraphPim),
                                  exp->pmr_base(), exp->pmr_end(),
                                  core::RunOptions{});
    return r;
  });
  for (std::size_t i = 0; i < names.size(); ++i) {
    const Row& r = rows[i];
    std::printf("%-8s %11.2fx %13.2fx %12llu %12llu\n", names[i].c_str(),
                core::Speedup(r.base, r.pim), core::Speedup(r.base, r.fused),
                static_cast<unsigned long long>(r.fstats.fused_with_cas +
                                                r.fstats.fused_compare_only),
                static_cast<unsigned long long>(r.fstats.ops_removed));
  }
  std::printf("\nexpected: sssp/ccomp gain from one PIM round trip per relax;\n"
              "bfs (already a single CAS per edge) is unchanged\n");
  return 0;
}
