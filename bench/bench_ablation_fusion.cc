// Ablation (Section III-B): fusing comparison instruction blocks into
// CAS-if-less PIM atomics.
//
// SSSP's relax and CComp's min-label update compile to load/compare/
// branch/CAS blocks because x86 has no single "update-if-less" atomic.
// The paper proposes identifying such blocks and offloading each as ONE
// PIM command — halving the property round trips.
#include <cstdio>

#include "bench_util.h"
#include "core/runner.h"
#include "workloads/fusion.h"
#include "workloads/workload.h"

using namespace graphpim;
using namespace graphpim::bench;

int main(int argc, char** argv) {
  BenchContext ctx = ParseBench(argc, argv, 16 * 1024, 4'000'000);
  PrintHeader("Ablation: comparison-block fusion (CAS-if-less)", ctx);

  std::printf("%-8s %12s %14s %12s %12s\n", "workload", "GraphPIM", "GraphPIM+fuse",
              "blocks", "ops saved");
  for (const auto& name : {"sssp", "ccomp", "bfs"}) {
    core::Experiment::Options o;
    o.num_threads = ctx.threads;
    o.seed = ctx.seed;
    o.op_cap = ctx.op_cap;
    core::Experiment exp(ctx.profile, ctx.vertices, name, o);
    core::SimResults base = exp.Run(ctx.MakeConfig(core::Mode::kBaseline));
    core::SimResults pim = exp.Run(ctx.MakeConfig(core::Mode::kGraphPim));

    // The fusion pass needs the address-space classification; rebuild one
    // (the segment layout is static).
    graph::AddressSpace space;
    workloads::FusionStats fstats;
    workloads::Trace fused =
        workloads::FuseComparisonBlocks(exp.trace(), space, &fstats);
    core::SimResults pf = core::RunSimulation(fused, ctx.MakeConfig(core::Mode::kGraphPim),
                                              exp.pmr_base(), exp.pmr_end());
    std::printf("%-8s %11.2fx %13.2fx %12llu %12llu\n", name,
                core::Speedup(base, pim), core::Speedup(base, pf),
                static_cast<unsigned long long>(fstats.fused_with_cas +
                                                fstats.fused_compare_only),
                static_cast<unsigned long long>(fstats.ops_removed));
  }
  std::printf("\nexpected: sssp/ccomp gain from one PIM round trip per relax;\n"
              "bfs (already a single CAS per edge) is unchanged\n");
  return 0;
}
