// Figure 4: atomic-instruction overhead of graph workloads on the baseline
// machine — each workload is replayed with its atomics included and with
// them replaced by plain read+write pairs (the paper's micro-benchmark
// methodology).
//
// Paper shape: 29.8% average performance degradation from atomics, up to
// ~64% for Degree Centrality.
#include <cstdio>

#include "bench_util.h"
#include "core/runner.h"
#include "workloads/workload.h"

using namespace graphpim;
using namespace graphpim::bench;

int main(int argc, char** argv) {
  BenchContext ctx = ParseBench(argc, argv, 16 * 1024, 6'000'000);
  PrintHeader("Fig 4: host atomic-instruction overhead (baseline machine)", ctx);

  core::SimConfig cfg = ctx.MakeConfig(core::Mode::kBaseline);
  std::printf("%-8s %14s %14s %10s\n", "workload", "with-atomic", "plain-rw",
              "overhead");
  double sum = 0;
  int n = 0;
  auto names = workloads::EvalWorkloadNames();
  struct Row {
    core::SimResults with;
    core::SimResults without;
  };
  const auto rows = ParallelMap(names, ctx, [&](const std::string& name) {
    auto exp = ctx.MakeExperiment(name);
    Row r;
    r.with = exp->Run(cfg);
    workloads::Trace plain = workloads::ReplaceAtomicsWithPlain(exp->trace());
    r.without = core::RunSimulation(plain, cfg, exp->pmr_base(), exp->pmr_end(),
                                    core::RunOptions{});
    return r;
  });
  for (std::size_t i = 0; i < names.size(); ++i) {
    const Row& r = rows[i];
    double overhead = static_cast<double>(r.with.cycles) /
                          static_cast<double>(r.without.cycles) -
                      1.0;
    sum += overhead;
    ++n;
    std::printf("%-8s %14llu %14llu %9.1f%%  |%s\n", names[i].c_str(),
                static_cast<unsigned long long>(r.with.cycles),
                static_cast<unsigned long long>(r.without.cycles), 100 * overhead,
                Bar(overhead).c_str());
  }
  std::printf("%-8s %40.1f%%\n", "average", 100 * sum / n);
  std::printf("\npaper: 29.8%% average degradation, up to 64%% (DCentr)\n");
  return 0;
}
