// graphpim_sweep — run full paper-reproduction grids in one invocation.
//
// Expands a workload × profile × machine-config job matrix, executes it on
// the src/exec work-stealing pool, and prints a keyed result table with
// speedups against the first config (baseline). Results are bit-identical
// for any --jobs value (see src/exec/sweep.h for the determinism contract).
//
//   graphpim_sweep [--workloads=bfs,prank,...]   # default: the 5 paper evals
//                  [--profiles=ldbc]             # synthetic graph profiles
//                  [--modes=all|baseline,upei,graphpim,ucnopim]
//                  [--vertices=32768] [--full=0] # full=1: Table IV machines
//                  [--threads=16] [--opcap=12000000] [--seed=1]
//                  [--num-cubes=1,2,4,8]  # cube-scaling axis ("GraphPIM-c4")
//                  [--topology=chain|star] [--cube-page-bytes=4096]
//                  [--jobs=N]                    # pool width (0 = nproc)
//                  [--progress=1]  # stderr heartbeat per retired job:
//                                  # jobs done/total + ETA from wall-time
//                                  # stats so far. Off by default.
//                  [--json=out.json] [--csv=out.csv] [--det-csv=out.csv]
//
// Fault injection (src/fault; DESIGN.md §9) — applied to every config:
//                  [--link-ber=1e-12] [--vault-stall-ppm=50]
//                  [--poison-ppm=5] [--max-retries=3] [--retry-ns=8]
//
// Fault tolerance: a job that fails produces a status=failed row (the rest
// of the grid completes); --journal streams finished rows to a JSONL file,
// and --resume restores them after a crash/SIGKILL so only missing rows
// re-simulate. Because replays are deterministic, the resumed table is
// bit-identical to an uninterrupted run. --timeout-ms arms a soft per-job
// watchdog with one speculative retry.
//                  [--journal=sweep.partial.jsonl] [--resume=0]
//                  [--timeout-ms=0]
//                  [--journal-phases=0]  # per-superstep {"phases_for":...}
//                                        # sidecar lines in the journal
//
// Transaction tracing (DESIGN.md §12): --trace-sample-rate=0.05 samples 5%
// of memory requests per job; with --journal the sampled spans ride along
// as {"spans_for":...} sidecar lines after each row.
//
// Telemetry timelines (DESIGN.md §17): --telemetry-window-ns=N cuts each
// job into virtual-time windows; with --journal the windows ride along as
// {"timeline_for":...} sidecar lines. Windows without a journal are a
// config error (there would be nowhere to put them).
//
// Persistent PMR (DESIGN.md §14): the pmem.* knobs ride the SimConfig
// field table, so --pmem-enable / --pmem-flush-ns / --pmem-fence-ns apply
// to every config (pmem.enable must be uniform across the grid — all
// configs replay one shared trace). The journal fingerprint covers them
// like any other knob, so --resume refuses a journal written under
// different persistence settings. Crash sweeps live in graphpim_sim
// (--crash-sweep), not here: they post-process one cell's persist log.
#include <cstdio>
#include <exception>
#include <string>

#include "common/config.h"
#include "common/string_util.h"
#include "exec/progress.h"
#include "exec/result_sink.h"
#include "exec/sweep.h"
#include "telemetry/timeline.h"
#include "workloads/workload.h"

using namespace graphpim;

namespace {

std::string Join(const std::vector<std::string>& parts) {
  std::string out;
  for (const std::string& p : parts) {
    if (!out.empty()) out += ",";
    out += p;
  }
  return out;
}

int Run(const Config& cfg) {
  // Driver flags plus every machine knob the SimConfig field table accepts
  // (both spellings), so this CLI surface tracks the table automatically.
  std::vector<std::string> keys = {
      "workloads", "profiles",   "modes",   "vertices", "opcap",
      "seed",      "jobs",       "progress", "json",    "csv",
      "det-csv",   "journal",    "resume",  "timeout-ms",
      "journal-phases"};
  for (const std::string& k : core::SimConfig::ConfigKeys()) keys.push_back(k);
  cfg.RequireKeys(keys);

  // Assemble a grid spec from the individual flags and reuse the shared
  // parser so graphpim_sim --sweep=... and this driver cannot diverge.
  std::string spec =
      "workloads=" +
      cfg.GetString("workloads", Join(workloads::EvalWorkloadNames()));
  spec += ";profiles=" + cfg.GetString("profiles", "ldbc");
  spec += ";modes=" + cfg.GetString("modes", "all");
  spec += ";vertices=" + std::to_string(cfg.GetUint("vertices", 32 * 1024));
  spec += ";threads=" + std::to_string(cfg.GetInt("threads", 16));
  spec += ";opcap=" + std::to_string(cfg.GetUint("opcap", 12'000'000));
  spec += ";seed=" + std::to_string(cfg.GetUint("seed", 1));
  // Forward every present machine knob verbatim (field-table keys, both
  // spellings): fault knobs, full, topology, num-cubes (which may carry a
  // comma list and expands the config axis), ... — the grid parser and
  // SimConfig::FromConfig own parsing and validation.
  for (const std::string& k : core::SimConfig::ConfigKeys()) {
    if (k == "threads") continue;  // already in the spec (structural)
    if (cfg.Has(k)) spec += ";" + k + "=" + cfg.GetString(k, "");
  }
  exec::SweepGrid grid = exec::ParseGridSpec(spec);

  exec::SweepRunner::Options opts;
  opts.jobs = static_cast<int>(cfg.GetInt("jobs", 0));
  opts.job_timeout_ms = cfg.GetDouble("timeout-ms", 0.0);
  opts.journal_path = cfg.GetString("journal", "");
  opts.resume = cfg.GetBool("resume", false);
  opts.journal_phases = cfg.GetBool("journal-phases", false);
  for (const core::SimConfig& c : grid.configs) {
    telemetry::RequireSink(c.telemetry_window_ns, !opts.journal_path.empty(),
                           "sweep timelines are journal sidecar lines; pass "
                           "--journal=FILE");
  }
  // Progress heartbeat (off by default so scripted runs stay quiet): the
  // shared src/exec/progress stderr line per retired job, with an ETA
  // extrapolated from the mean wall time of the jobs finished so far.
  // stderr keeps it separable from the result table on stdout.
  if (cfg.GetBool("progress", false)) {
    opts.on_progress = exec::StderrHeartbeat();
  }

  std::printf("graphpim_sweep: %zu workloads x %zu profiles x %zu configs "
              "= %zu jobs (--jobs=%d)\n\n",
              grid.workloads.size(), grid.profiles.size(), grid.configs.size(),
              grid.NumJobs(), opts.jobs);
  exec::SweepResultTable table = exec::SweepRunner(opts).Run(grid);

  std::printf("\n%-8s %-8s %-10s %14s %8s %9s %9s %9s\n", "workload",
              "profile", "config", "cycles", "IPC", "MPKI(L2)", "offload%",
              "speedup");
  for (const exec::SweepRow& r : table.rows) {
    if (r.status != exec::JobStatus::kOk) {
      std::printf("%-8s %-8s %-10s FAILED: %s\n", r.workload.c_str(),
                  r.profile.c_str(), r.config_name.c_str(), r.error.c_str());
      continue;
    }
    const double offload_pct =
        r.results.atomics == 0
            ? 0.0
            : 100.0 * static_cast<double>(r.results.offloaded_atomics) /
                  static_cast<double>(r.results.atomics);
    std::printf("%-8s %-8s %-10s %14llu %8.3f %9.2f %8.1f%% %8.2fx\n",
                r.workload.c_str(), r.profile.c_str(), r.config_name.c_str(),
                static_cast<unsigned long long>(r.results.cycles),
                r.results.ipc, r.results.l2_mpki, offload_pct,
                table.SpeedupVsFirstConfig(r));
  }
  std::printf("\nwall: %.0f ms total (build %.0f ms + run %.0f ms of work) | "
              "job p50 %.0f ms  p95 %.0f ms  max %.0f ms\n",
              table.total_wall_ms, table.build_wall_ms, table.run_wall_ms,
              table.job_wall_ms.Percentile(50), table.job_wall_ms.Percentile(95),
              table.job_wall_ms.max());
  if (table.resumed_rows > 0) {
    std::printf("resumed %zu of %zu rows from %s\n", table.resumed_rows,
                table.rows.size(), opts.journal_path.c_str());
  }
  if (table.failed_rows > 0) {
    std::printf("%zu of %zu rows FAILED (failed rows are not journaled; "
                "--resume retries them)\n",
                table.failed_rows, table.rows.size());
  }

  if (cfg.Has("json")) {
    GP_CHECK(exec::WriteJson(table, cfg.GetString("json", "")),
             "cannot write JSON");
    std::printf("JSON written to %s\n", cfg.GetString("json", "").c_str());
  }
  if (cfg.Has("csv")) {
    GP_CHECK(exec::WriteCsv(table, cfg.GetString("csv", "")),
             "cannot write CSV");
    std::printf("CSV written to %s\n", cfg.GetString("csv", "").c_str());
  }
  if (cfg.Has("det-csv")) {
    GP_CHECK(exec::WriteDeterministicCsv(table, cfg.GetString("det-csv", "")),
             "cannot write CSV");
    std::printf("deterministic CSV written to %s\n",
                cfg.GetString("det-csv", "").c_str());
  }
  return table.failed_rows > 0 ? 2 : 0;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    return Run(Config::FromArgs(argc, argv));
  } catch (const std::exception& e) {
    // User/config errors (SimError) surface here; exit cleanly instead of
    // aborting so scripts can distinguish bad flags from simulator bugs.
    std::fprintf(stderr, "graphpim_sweep: error: %s\n", e.what());
    return 1;
  }
}
