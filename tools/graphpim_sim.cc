// graphpim_sim — the general simulator driver.
//
// Runs any workload on any synthetic profile under one or all machine
// configurations and prints a full report (optionally as JSON).
//
//   graphpim_sim [--workload=bfs] [--profile=ldbc] [--vertices=32768]
//                [--mode=all|baseline|upei|graphpim|ucnopim] [--full=0]
//                [--threads=16] [--seed=1] [--opcap=12000000]
//                [--fp=1] [--fus=16] [--linkbw=1.0] [--hybrid=1.0]
//                [--uc-depth=16]
//                [--num-cubes=1] [--topology=chain|star]  # HMC cube network
//                [--cube-page-bytes=4096]  # PMR interleave granularity
//                [--fuse=0]           # Section III-B comparison-block fusion
//                [--jobs=N]           # replay modes in parallel (0 = nproc)
//                [--shards=N]         # intra-run parallel replay shards;
//                                     # byte-identical output at any N
//                [--progress=1]       # stderr heartbeat per retired mode
//                [--json=out.json]    # machine-readable results (last mode)
//                [--metrics-out=p.json]  # per-superstep phase deltas for the
//                                        # last mode; .jsonl = JSONL, else
//                                        # Chrome trace (chrome://tracing)
//                [--trace-sample-rate=0] # transaction flight recorder: sample
//                                        # this fraction of memory requests,
//                                        # print per-stage latency percentiles
//                                        # + a bottleneck attribution table,
//                                        # and merge span tracks (cores/cubes/
//                                        # vaults) into --metrics-out
//                [--trace-out=t.bin] [--trace-in=t.bin]
//                [--telemetry-window-ns=0]  # virtual-time telemetry windows
//                                           # (DESIGN.md §17); needs a sink:
//                [--timeline-out=t.jsonl]   # window JSONL for the last mode;
//                                           # windows are also merged into
//                                           # --metrics-out as counter tracks
//
// Sweep mode (runs a whole job matrix instead of a single experiment; see
// src/exec/sweep.h for the grid-spec syntax and determinism contract).
// num_cubes accepts a comma list for cube-scaling sweeps
// (--sweep='workloads=bfs;modes=graphpim;hmc.num_cubes=1,2,4,8'):
//
//   graphpim_sim --sweep='workloads=bfs,prank;modes=all;vertices=16384'
//                [--jobs=N] [--json=out.json] [--csv=out.csv]
//                [--journal=rows.jsonl] [--resume=0] [--timeout-ms=0]
//                [--journal-phases=0]  # phase-delta sidecar lines in journal
//
// Fault injection (src/fault; DESIGN.md §9): single-run mode accepts
//   [--link-ber=1e-12] [--vault-stall-ppm=50] [--poison-ppm=5]
//   [--max-retries=3] [--retry-ns=8]
// and sweep mode takes the same knobs as grid-spec keys (link_ber=...).
//
// Persistent PMR (src/pmem; DESIGN.md §14): with --pmem-enable=1 the
// persist-capable workloads (gup, tmorph) generate flush/fence discipline,
// the persist-ordering checker runs over the trace, and single-run mode
// additionally accepts
//   [--pmem-flush-ns=40] [--pmem-fence-ns=20]
//   [--pmem-crash-tick=NS]    # one crash/recovery evaluation at NS
//   [--crash-sweep=N]         # N decorrelated crash/recovery cycles per
//                             # mode; deterministic table at any --jobs
//   [--pmem-mutant=none|missing-fence|redundant-flush]  # seed a persist
//                             # bug the checker must flag
#include <chrono>
#include <cstdio>
#include <exception>
#include <fstream>
#include <functional>
#include <memory>
#include <vector>

#include "common/config.h"
#include "common/log.h"
#include "common/string_util.h"
#include "common/trace.h"
#include "core/report.h"
#include "core/runner.h"
#include "exec/progress.h"
#include "exec/result_sink.h"
#include "exec/sweep.h"
#include "exec/thread_pool.h"
#include "fault/fault.h"
#include "graph/region.h"
#include "pmem/checker.h"
#include "pmem/crash.h"
#include "telemetry/timeline.h"
#include "workloads/fusion.h"
#include "workloads/trace_io.h"
#include "workloads/workload.h"

using namespace graphpim;

namespace {

int RunSweep(const Config& cfg) {
  exec::SweepGrid grid = exec::ParseGridSpec(cfg.GetString("sweep", ""));
  exec::SweepRunner::Options opts;
  opts.jobs = static_cast<int>(cfg.GetInt("jobs", 0));
  opts.job_timeout_ms = cfg.GetDouble("timeout-ms", 0.0);
  opts.journal_path = cfg.GetString("journal", "");
  opts.resume = cfg.GetBool("resume", false);
  opts.journal_phases = cfg.GetBool("journal-phases", false);
  // Sweep timelines ride the journal as {"timeline_for":...} sidecars, so
  // windows without a journal would silently vanish — reject that.
  for (const core::SimConfig& c : grid.configs) {
    telemetry::RequireSink(c.telemetry_window_ns, !opts.journal_path.empty(),
                           "sweep timelines are journal sidecar lines; pass "
                           "--journal=FILE");
  }
  opts.on_progress = [](const exec::SweepProgress& p) {
    std::printf("[%3zu/%3zu] %s/%s/%s  %.0f ms%s\n", p.completed, p.total,
                p.workload.c_str(), p.profile.c_str(), p.config_name.c_str(),
                p.wall_ms,
                p.status == exec::JobStatus::kOk ? "" : "  FAILED");
  };
  std::printf("graphpim_sim sweep: %zu jobs (%zu cells x %zu configs)\n\n",
              grid.NumJobs(), grid.NumCells(), grid.configs.size());
  exec::SweepResultTable table = exec::SweepRunner(opts).Run(grid);

  std::printf("\n%-8s %-8s %-10s %14s %10s %10s\n", "workload", "profile",
              "config", "cycles", "IPC", "speedup");
  for (const exec::SweepRow& r : table.rows) {
    if (r.status != exec::JobStatus::kOk) {
      std::printf("%-8s %-8s %-10s FAILED: %s\n", r.workload.c_str(),
                  r.profile.c_str(), r.config_name.c_str(), r.error.c_str());
      continue;
    }
    std::printf("%-8s %-8s %-10s %14llu %10.4f %9.2fx\n", r.workload.c_str(),
                r.profile.c_str(), r.config_name.c_str(),
                static_cast<unsigned long long>(r.results.cycles), r.results.ipc,
                table.SpeedupVsFirstConfig(r));
  }
  if (table.failed_rows > 0) {
    std::printf("\n%zu of %zu rows FAILED\n", table.failed_rows,
                table.rows.size());
  }
  std::printf("\nwall: %.0f ms total | job p50 %.0f ms p95 %.0f ms\n",
              table.total_wall_ms, table.job_wall_ms.Percentile(50),
              table.job_wall_ms.Percentile(95));
  if (cfg.Has("json")) {
    GP_CHECK(exec::WriteJson(table, cfg.GetString("json", "")),
             "cannot write JSON");
    std::printf("JSON written to %s\n", cfg.GetString("json", "").c_str());
  }
  if (cfg.Has("csv")) {
    GP_CHECK(exec::WriteCsv(table, cfg.GetString("csv", "")),
             "cannot write CSV");
    std::printf("CSV written to %s\n", cfg.GetString("csv", "").c_str());
  }
  return table.failed_rows > 0 ? 2 : 0;
}

int RunMain(const Config& cfg) {
  // Driver-specific flags plus every machine knob SimConfig::FromConfig
  // accepts (both spellings) — the flag surface tracks the field table.
  std::vector<std::string> keys = {
      "sweep",      "workload",  "profile",        "vertices",
      "mode",       "seed",      "opcap",          "fuse",
      "jobs",       "json",      "csv",            "metrics-out",
      "trace-out",  "trace-in",  "journal",        "resume",
      "timeout-ms", "journal-phases", "crash-sweep", "pmem-mutant",
      "progress",   "timeline-out"};
  for (const std::string& k : core::SimConfig::ConfigKeys()) keys.push_back(k);
  cfg.RequireKeys(keys);
  if (cfg.Has("sweep")) return RunSweep(cfg);
  const std::string workload = cfg.GetString("workload", "bfs");
  const std::string profile = cfg.GetString("profile", "ldbc");
  const auto vertices = static_cast<VertexId>(cfg.GetUint("vertices", 32 * 1024));
  const std::string mode_arg = cfg.GetString("mode", "all");

  core::Experiment::Options opts;
  opts.num_threads = static_cast<int>(cfg.GetInt("threads", 16));
  opts.seed = cfg.GetUint("seed", 1);
  opts.op_cap = cfg.GetUint("opcap", 12'000'000);

  // Machine configs are parsed before the Experiment because pmem.enable
  // decides how the trace is GENERATED (persist discipline or not).
  const std::vector<core::Mode> modes = exec::ParseModeList(mode_arg);
  std::vector<core::SimConfig> mode_cfgs;
  for (core::Mode m : modes) {
    // THE config path: every machine knob (fp/fus/linkbw/hybrid/num-cubes/
    // topology/fault knobs/...) is read out of `cfg` by the shared field
    // table — this driver never plucks SimConfig fields itself.
    core::SimConfig sc = core::SimConfig::FromConfig(cfg, m);
    // Same per-(seed, config-index) derivation discipline as the sweep
    // runner: distinct modes draw decorrelated fault streams, and reruns
    // with the same --seed inject identically.
    sc.hmc.fault.seed =
        fault::DeriveFaultSeed(opts.seed, static_cast<std::uint64_t>(mode_cfgs.size()));
    mode_cfgs.push_back(sc);
  }

  // Persistent-PMR driver flags. The mutants and the crash sweep only make
  // sense with the persist domain on; flag the conflict rather than
  // silently doing nothing.
  const bool pmem_on = mode_cfgs.front().pmem.enable;
  const std::string mutant = cfg.GetString("pmem-mutant", "none");
  const std::uint64_t crash_sweep = cfg.GetUint("crash-sweep", 0);
  pmem::PersistMode pmode = pmem::PersistMode::kOff;
  if (mutant == "none") {
    if (pmem_on) pmode = pmem::PersistMode::kFull;
  } else if (mutant == "missing-fence") {
    pmode = pmem::PersistMode::kMissingFence;
  } else if (mutant == "redundant-flush") {
    pmode = pmem::PersistMode::kRedundantFlush;
  } else {
    GP_THROW("config key 'pmem-mutant' must be none, missing-fence, or "
             "redundant-flush; got '", mutant, "'");
  }
  if (!pmem_on && mutant != "none") {
    GP_THROW("config key 'pmem-mutant' (", mutant,
             ") requires 'pmem.enable'=1");
  }
  if (!pmem_on && crash_sweep > 0) {
    GP_THROW("config key 'crash-sweep' (", crash_sweep,
             ") requires 'pmem.enable'=1");
  }
  opts.persist = pmode;
  // The ann.* rows ride the same field table as every machine knob; the
  // hnsw workload bakes them into the trace at generation time (they are
  // mode-independent, so any mode's parse yields the same block).
  opts.params.ann = mode_cfgs.front().ann;

  core::Experiment exp(profile, vertices, workload, opts);
  std::printf("graphpim_sim: %s on %s-%u (%llu edges, %llu micro-ops)\n\n",
              workload.c_str(), profile.c_str(), vertices,
              static_cast<unsigned long long>(exp.graph().num_edges()),
              static_cast<unsigned long long>(exp.trace().TotalOps()));

  // Optional trace snapshotting.
  workloads::Trace trace = exp.trace();
  if (cfg.Has("trace-in")) {
    GP_CHECK(workloads::LoadTrace(cfg.GetString("trace-in", ""), &trace),
             "cannot read trace");
    std::printf("replaying trace from %s (%llu ops)\n\n",
                cfg.GetString("trace-in", "").c_str(),
                static_cast<unsigned long long>(trace.TotalOps()));
  }
  if (cfg.Has("trace-out")) {
    GP_CHECK(workloads::SaveTrace(trace, cfg.GetString("trace-out", "")),
             "cannot write trace");
    std::printf("trace saved to %s\n\n", cfg.GetString("trace-out", "").c_str());
  }
  if (cfg.GetBool("fuse", false)) {
    graph::AddressSpace space;
    workloads::FusionStats fs;
    trace = workloads::FuseComparisonBlocks(trace, space, &fs);
    std::printf("fusion: %llu comparison blocks -> CAS-if-less "
                "(%llu ops removed)\n\n",
                static_cast<unsigned long long>(fs.fused_with_cas +
                                                fs.fused_compare_only),
                static_cast<unsigned long long>(fs.ops_removed));
  }

  // Replay every mode — in parallel when --jobs allows it. Replays are pure
  // (RunSimulation has no shared mutable state), so the parallel path yields
  // bit-identical results; reports still print in mode-list order.
  //
  // Phase capture follows the --json convention: the LAST mode in the list
  // is the one whose per-superstep deltas land in --metrics-out.
  trace::PhaseLog phase_log;
  trace::SpanLog span_log;  // last mode's sampled spans, merged into the trace
  const bool want_phases = cfg.Has("metrics-out");
  // Telemetry windows follow the same last-mode convention. Windows on with
  // no sink is a config error (the timeline would silently vanish).
  telemetry::Timeline timeline;
  const bool timeline_sink = want_phases || cfg.Has("timeline-out");
  telemetry::RequireSink(mode_cfgs.front().telemetry_window_ns, timeline_sink,
                         "pass --metrics-out=FILE and/or --timeline-out=FILE");
  std::vector<core::SimResults> mode_results(modes.size());
  std::vector<pmem::PersistLog> persist_logs(modes.size());
  // --progress reuses the sweep heartbeat (exec/progress.h): one stderr
  // line per retired mode replay with an ETA, leaving stdout (the golden
  // surface) untouched.
  std::function<void(const exec::SweepProgress&)> on_progress;
  if (cfg.GetBool("progress", false)) on_progress = exec::StderrHeartbeat();
  std::vector<double> job_wall_ms(modes.size(), 0.0);
  {
    exec::ThreadPool pool(static_cast<int>(cfg.GetInt("jobs", 0)));
    std::vector<exec::TaskFuture<core::SimResults>> futs;
    futs.reserve(modes.size());
    for (std::size_t i = 0; i < mode_cfgs.size(); ++i) {
      const core::SimConfig& sc = mode_cfgs[i];
      core::RunOptions ro;
      if (i + 1 == mode_cfgs.size()) {
        if (want_phases) {
          ro.phases = &phase_log;
          if (sc.trace_sample_rate > 0.0) ro.spans = &span_log;
        }
        if (timeline_sink) ro.timeline = &timeline;
      }
      if (pmem_on) ro.persist = &persist_logs[i];
      futs.push_back(pool.Submit([&trace, &sc, &exp, ro, i, &job_wall_ms] {
        auto t0 = std::chrono::steady_clock::now();
        core::SimResults r =
            core::RunSimulation(trace, sc, exp.pmr_base(), exp.pmr_end(), ro);
        job_wall_ms[i] = std::chrono::duration<double, std::milli>(
                             std::chrono::steady_clock::now() - t0)
                             .count();
        return r;
      }));
    }
    for (std::size_t i = 0; i < futs.size(); ++i) {
      mode_results[i] = std::move(*futs[i].Get());
      if (on_progress) {
        exec::SweepProgress p;
        p.completed = i + 1;
        p.total = futs.size();
        p.workload = workload;
        p.profile = profile;
        p.config_name = core::ToString(modes[i]);
        p.wall_ms = job_wall_ms[i];
        on_progress(p);
      }
    }
  }

  std::unique_ptr<core::SimResults> baseline;
  core::SimResults last;
  for (std::size_t i = 0; i < modes.size(); ++i) {
    last = mode_results[i];
    std::printf("%s", core::FormatReport(last).c_str());
    if (modes[i] == core::Mode::kBaseline) {
      baseline = std::make_unique<core::SimResults>(last);
    } else if (baseline != nullptr) {
      std::printf("speedup over baseline: %.2fx\n", core::Speedup(*baseline, last));
    }
    std::printf("\n");
  }

  // Per-stage attribution across the replayed modes (paper Fig. 9 from
  // measurement); empty string — and no output — when tracing was off.
  const std::string bottleneck = core::FormatBottleneckTable(mode_results);
  if (!bottleneck.empty()) std::printf("%s\n", bottleneck.c_str());

  if (pmem_on) {
    // Static persist-ordering check over the trace that was actually
    // replayed. Sampled spans (if any) witness the violations.
    const pmem::UpdateLog* updates = exp.update_log();
    const pmem::CheckReport chk = pmem::CheckPersistOrdering(
        trace.streams, exp.pmr_base(), exp.pmr_end(), updates);
    std::printf("%s\n\n",
                pmem::FormatCheckReport(
                    chk, span_log.empty() ? nullptr : &span_log).c_str());

    static const pmem::UpdateLog kNoUpdates;
    const pmem::UpdateLog& ul = updates != nullptr ? *updates : kNoUpdates;
    const pmem::RecoveryInvariant inv = exp.recovery_invariant();

    // Single-shot crash at --pmem-crash-tick.
    if (mode_cfgs.front().pmem.crash_tick_ns >= 0) {
      for (std::size_t i = 0; i < modes.size(); ++i) {
        const fault::CrashPlan plan(
            fault::DeriveCrashSeed(opts.seed, static_cast<std::uint64_t>(i)));
        const pmem::CrashOutcome o = pmem::EvaluateCrashRecovery(
            persist_logs[i], ul, NsToTicks(mode_cfgs[i].pmem.crash_tick_ns),
            plan, 0, inv);
        std::printf("%s: %s\n", core::ToString(modes[i]),
                    pmem::FormatCrashOutcome(o).c_str());
      }
      std::printf("\n");
    }

    // --crash-sweep=N: N decorrelated crash/recovery cycles per mode. Pure
    // serial post-processing over the per-mode PersistLog, so the table is
    // byte-identical at any --jobs count. The markers delimit the region
    // scripts byte-compare.
    if (crash_sweep > 0) {
      std::printf("== crash recovery table ==\n");
      for (std::size_t i = 0; i < modes.size(); ++i) {
        const fault::CrashPlan plan(
            fault::DeriveCrashSeed(opts.seed, static_cast<std::uint64_t>(i)));
        std::uint64_t consistent = 0, inconsistent = 0, torn = 0;
        std::string lines;
        for (std::uint64_t c = 0; c < crash_sweep; ++c) {
          const Tick tick = plan.SampleCrashTick(c, persist_logs[i].end_tick);
          const pmem::CrashOutcome o =
              pmem::EvaluateCrashRecovery(persist_logs[i], ul, tick, plan, c, inv);
          if (o.consistent) {
            ++consistent;
          } else {
            ++inconsistent;
          }
          torn += o.torn_stores;
          lines += "  ";
          lines += pmem::FormatCrashOutcome(o);
          lines += "\n";
        }
        std::printf("%s: %llu cycles, %llu consistent, %llu inconsistent, "
                    "%llu torn stores, %zu checker violations\n%s",
                    core::ToString(modes[i]),
                    static_cast<unsigned long long>(crash_sweep),
                    static_cast<unsigned long long>(consistent),
                    static_cast<unsigned long long>(inconsistent),
                    static_cast<unsigned long long>(torn),
                    chk.violations.size(), lines.c_str());
      }
      std::printf("== end crash recovery table ==\n\n");
    }
  }

  if (cfg.Has("json")) {
    GP_CHECK(core::WriteJson(last, cfg.GetString("json", "")), "cannot write JSON");
    std::printf("JSON written to %s\n", cfg.GetString("json", "").c_str());
  }
  if (want_phases) {
    const std::string path = cfg.GetString("metrics-out", "");
    trace::TraceExtras extras;
    if (!span_log.empty()) extras.spans = &span_log;
    extras.chrome_events = telemetry::ChromeCounterEvents(timeline);
    extras.jsonl_lines = telemetry::ToJsonl(timeline);
    trace::WriteTrace(phase_log, path, extras);
    std::string windows_note;
    if (!timeline.empty()) {
      windows_note = StrFormat("%zu windows, ", timeline.windows.size());
    }
    std::printf("phase metrics (%zu phases, %zu spans, %smode %s) written to %s\n",
                phase_log.phases().size(), span_log.spans.size(),
                windows_note.c_str(), last.mode.c_str(), path.c_str());
  }
  if (cfg.Has("timeline-out")) {
    const std::string path = cfg.GetString("timeline-out", "");
    std::ofstream f(path, std::ios::binary);
    if (!f) GP_THROW("cannot open timeline output file '", path, "'");
    f << telemetry::ToJsonl(timeline);
    if (!f) GP_THROW("failed writing timeline output file '", path, "'");
    std::printf("telemetry timeline (%zu windows, mode %s) written to %s\n",
                timeline.windows.size(), last.mode.c_str(), path.c_str());
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    return RunMain(Config::FromArgs(argc, argv));
  } catch (const std::exception& e) {
    // User/config errors (SimError) surface here; exit cleanly instead of
    // aborting so scripts can distinguish bad flags from simulator bugs.
    std::fprintf(stderr, "graphpim_sim: error: %s\n", e.what());
    return 1;
  }
}
