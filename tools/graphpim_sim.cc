// graphpim_sim — the general simulator driver.
//
// Runs any workload on any synthetic profile under one or all machine
// configurations and prints a full report (optionally as JSON).
//
//   graphpim_sim [--workload=bfs] [--profile=ldbc] [--vertices=32768]
//                [--mode=all|baseline|upei|graphpim|ucnopim] [--full=0]
//                [--threads=16] [--seed=1] [--opcap=12000000]
//                [--fp=1] [--fus=16] [--linkbw=1.0] [--hybrid=1.0]
//                [--fuse=0]           # Section III-B comparison-block fusion
//                [--json=out.json]    # machine-readable results (last mode)
//                [--trace-out=t.bin] [--trace-in=t.bin]
#include <cstdio>
#include <memory>
#include <vector>

#include "common/config.h"
#include "core/report.h"
#include "core/runner.h"
#include "graph/region.h"
#include "workloads/fusion.h"
#include "workloads/trace_io.h"
#include "workloads/workload.h"

using namespace graphpim;

int main(int argc, char** argv) {
  Config cfg = Config::FromArgs(argc, argv);
  const std::string workload = cfg.GetString("workload", "bfs");
  const std::string profile = cfg.GetString("profile", "ldbc");
  const auto vertices = static_cast<VertexId>(cfg.GetUint("vertices", 32 * 1024));
  const std::string mode_arg = cfg.GetString("mode", "all");
  const bool full = cfg.GetBool("full", false);

  core::Experiment::Options opts;
  opts.num_threads = static_cast<int>(cfg.GetInt("threads", 16));
  opts.seed = cfg.GetUint("seed", 1);
  opts.op_cap = cfg.GetUint("opcap", 12'000'000);

  core::Experiment exp(profile, vertices, workload, opts);
  std::printf("graphpim_sim: %s on %s-%u (%llu edges, %llu micro-ops)\n\n",
              workload.c_str(), profile.c_str(), vertices,
              static_cast<unsigned long long>(exp.graph().num_edges()),
              static_cast<unsigned long long>(exp.trace().TotalOps()));

  // Optional trace snapshotting.
  workloads::Trace trace = exp.trace();
  if (cfg.Has("trace-in")) {
    GP_CHECK(workloads::LoadTrace(cfg.GetString("trace-in", ""), &trace),
             "cannot read trace");
    std::printf("replaying trace from %s (%llu ops)\n\n",
                cfg.GetString("trace-in", "").c_str(),
                static_cast<unsigned long long>(trace.TotalOps()));
  }
  if (cfg.Has("trace-out")) {
    GP_CHECK(workloads::SaveTrace(trace, cfg.GetString("trace-out", "")),
             "cannot write trace");
    std::printf("trace saved to %s\n\n", cfg.GetString("trace-out", "").c_str());
  }
  if (cfg.GetBool("fuse", false)) {
    graph::AddressSpace space;
    workloads::FusionStats fs;
    trace = workloads::FuseComparisonBlocks(trace, space, &fs);
    std::printf("fusion: %llu comparison blocks -> CAS-if-less "
                "(%llu ops removed)\n\n",
                static_cast<unsigned long long>(fs.fused_with_cas +
                                                fs.fused_compare_only),
                static_cast<unsigned long long>(fs.ops_removed));
  }

  std::vector<core::Mode> modes;
  if (mode_arg == "all") {
    modes = {core::Mode::kBaseline, core::Mode::kUPei, core::Mode::kGraphPim};
  } else if (mode_arg == "baseline") {
    modes = {core::Mode::kBaseline};
  } else if (mode_arg == "upei") {
    modes = {core::Mode::kUPei};
  } else if (mode_arg == "graphpim") {
    modes = {core::Mode::kGraphPim};
  } else if (mode_arg == "ucnopim") {
    modes = {core::Mode::kUncacheNoPim};
  } else {
    GP_FATAL("unknown --mode '", mode_arg, "'");
  }

  std::unique_ptr<core::SimResults> baseline;
  core::SimResults last;
  for (core::Mode m : modes) {
    core::SimConfig sc = full ? core::SimConfig::Paper(m) : core::SimConfig::Scaled(m);
    sc.num_cores = opts.num_threads;
    sc.hmc.enable_fp_atomics = cfg.GetBool("fp", true);
    sc.hmc.fus_per_vault =
        static_cast<std::uint32_t>(cfg.GetUint("fus", sc.hmc.fus_per_vault));
    sc.hmc.link_bw_scale = cfg.GetDouble("linkbw", 1.0);
    sc.pmr_hmc_fraction = cfg.GetDouble("hybrid", 1.0);
    last = core::RunSimulation(trace, sc, exp.pmr_base(), exp.pmr_end());
    std::printf("%s", core::FormatReport(last).c_str());
    if (m == core::Mode::kBaseline) {
      baseline = std::make_unique<core::SimResults>(last);
    } else if (baseline != nullptr) {
      std::printf("speedup over baseline: %.2fx\n", core::Speedup(*baseline, last));
    }
    std::printf("\n");
  }

  if (cfg.Has("json")) {
    GP_CHECK(core::WriteJson(last, cfg.GetString("json", "")), "cannot write JSON");
    std::printf("JSON written to %s\n", cfg.GetString("json", "").c_str());
  }
  return 0;
}
