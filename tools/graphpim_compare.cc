// graphpim_compare — run-comparison regression sentinel (DESIGN.md §17).
//
// Diffs two metrics/timeline artifacts (BENCH_*.json points, --json run
// summaries, Chrome traces, timeline/phase JSONL) key by key against
// per-counter tolerances and prints a human-readable drift table. CI uses
// it as the perf gate on the committed bench trajectory.
//
//   graphpim_compare BASE HEAD
//       [--tolerance=0.02]          # global relative tolerance
//       [--abs-tolerance=0]         # global absolute tolerance
//       [--tol=key=0.1,key2=0.5]    # per-key-prefix overrides (longest wins)
//       [--keys=a,b.c]              # compare only these key prefixes
//       [--fail-on-missing]         # keys in only one run fail the gate
//       [--max-rows=24]             # detail rows shown (failures always show)
//
// Exit status: 0 = within tolerance, 2 = drift over tolerance (or missing
// keys with --fail-on-missing), 1 = usage or I/O error. The argv parsing
// is by hand: this tool compares artifacts from ANY build, so it must not
// depend on the simulator's config machinery evolving in lockstep.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <exception>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "telemetry/compare.h"

using graphpim::telemetry::CompareOptions;
using graphpim::telemetry::CompareRuns;
using graphpim::telemetry::DriftReport;
using graphpim::telemetry::FlatRun;
using graphpim::telemetry::FlattenRunJson;
using graphpim::telemetry::FormatDriftTable;

namespace {

constexpr const char* kUsage =
    "usage: graphpim_compare BASE.json HEAD.json [--tolerance=REL]\n"
    "         [--abs-tolerance=ABS] [--tol=key=REL,...] [--keys=a,b]\n"
    "         [--fail-on-missing] [--max-rows=N]\n";

bool ReadFile(const std::string& path, std::string* out) {
  std::ifstream f(path, std::ios::binary);
  if (!f) return false;
  std::ostringstream ss;
  ss << f.rdbuf();
  *out = ss.str();
  return true;
}

// strtod with full-token validation; false on trailing garbage.
bool ParseDouble(const std::string& s, double* out) {
  if (s.empty()) return false;
  char* end = nullptr;
  *out = std::strtod(s.c_str(), &end);
  return end == s.c_str() + s.size();
}

std::vector<std::string> SplitCommas(const std::string& s) {
  std::vector<std::string> out;
  std::size_t pos = 0;
  while (pos <= s.size()) {
    std::size_t comma = s.find(',', pos);
    if (comma == std::string::npos) comma = s.size();
    if (comma > pos) out.push_back(s.substr(pos, comma - pos));
    pos = comma + 1;
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> files;
  CompareOptions opts;
  std::size_t max_rows = 24;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value_of = [&](const char* flag) -> std::string {
      return arg.substr(std::strlen(flag));
    };
    if (arg.rfind("--tolerance=", 0) == 0) {
      if (!ParseDouble(value_of("--tolerance="), &opts.rel_tol) ||
          opts.rel_tol < 0.0) {
        std::fprintf(stderr, "graphpim_compare: bad --tolerance value\n");
        return 1;
      }
    } else if (arg.rfind("--abs-tolerance=", 0) == 0) {
      if (!ParseDouble(value_of("--abs-tolerance="), &opts.abs_tol) ||
          opts.abs_tol < 0.0) {
        std::fprintf(stderr, "graphpim_compare: bad --abs-tolerance value\n");
        return 1;
      }
    } else if (arg.rfind("--tol=", 0) == 0) {
      for (const std::string& kv : SplitCommas(value_of("--tol="))) {
        const std::size_t eq = kv.find('=');
        double tol = 0.0;
        if (eq == std::string::npos || eq == 0 ||
            !ParseDouble(kv.substr(eq + 1), &tol) || tol < 0.0) {
          std::fprintf(stderr,
                       "graphpim_compare: bad --tol entry '%s' "
                       "(want key=REL)\n",
                       kv.c_str());
          return 1;
        }
        opts.per_key.emplace_back(kv.substr(0, eq), tol);
      }
    } else if (arg.rfind("--keys=", 0) == 0) {
      for (const std::string& k : SplitCommas(value_of("--keys="))) {
        opts.keys.push_back(k);
      }
    } else if (arg == "--fail-on-missing") {
      opts.fail_on_missing = true;
    } else if (arg.rfind("--max-rows=", 0) == 0) {
      double v = 0.0;
      if (!ParseDouble(value_of("--max-rows="), &v) || v < 0.0) {
        std::fprintf(stderr, "graphpim_compare: bad --max-rows value\n");
        return 1;
      }
      max_rows = static_cast<std::size_t>(v);
    } else if (arg == "--help" || arg == "-h") {
      std::fputs(kUsage, stdout);
      return 0;
    } else if (!arg.empty() && arg[0] == '-') {
      std::fprintf(stderr, "graphpim_compare: unknown flag '%s'\n%s",
                   arg.c_str(), kUsage);
      return 1;
    } else {
      files.push_back(arg);
    }
  }
  if (files.size() != 2) {
    std::fprintf(stderr, "graphpim_compare: need exactly two files\n%s",
                 kUsage);
    return 1;
  }

  std::string base_text, head_text;
  if (!ReadFile(files[0], &base_text)) {
    std::fprintf(stderr, "graphpim_compare: cannot read '%s'\n",
                 files[0].c_str());
    return 1;
  }
  if (!ReadFile(files[1], &head_text)) {
    std::fprintf(stderr, "graphpim_compare: cannot read '%s'\n",
                 files[1].c_str());
    return 1;
  }

  try {
    const FlatRun base = FlattenRunJson(base_text);
    const FlatRun head = FlattenRunJson(head_text);
    const DriftReport report = CompareRuns(base, head, opts);
    std::printf("base: %s (%zu keys)\nhead: %s (%zu keys)\n\n",
                files[0].c_str(), base.values.size(), files[1].c_str(),
                head.values.size());
    std::fputs(FormatDriftTable(report, max_rows).c_str(), stdout);
    if (!report.pass()) {
      std::printf("\nREGRESSION: %zu key(s) drifted past tolerance\n",
                  report.failed);
      return 2;
    }
    std::printf("\nOK: no drift past tolerance\n");
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "graphpim_compare: error: %s\n", e.what());
    return 1;
  }
}
