// graphpim_serve — multi-tenant query-serving engine with SLO reporting
// (DESIGN.md §13).
//
// Admits synthetic open-loop graph-query traffic (Poisson or bursty/MMPP
// arrivals of point queries from the registered kinds: bfs, sssp, prank,
// knn) against one resident graph through an admission queue and
// batch-dispatch slots, replaying each batch on the full timing model.
// Prints a saturation table — one row per (machine config, offered qps) —
// with p50/p95/p99 latency, queue depth, drop rate, and achieved
// throughput, plus a per-config knee summary. A mix containing knn builds
// the shared HNSW index over the vertex set (shaped by the ann.* knobs)
// and reports its brute-force recall self-check inside the table markers.
//
//   graphpim_serve [--profile=ldbc] [--vertices=4096] [--tenants=2]
//                  [--modes=baseline,graphpim] [--num-cubes=1,4]
//                  [--arrivals=poisson|bursty] [--requests=48]
//                  [--mix=bfs=0.5,sssp=0.3,prank=0.2] | [--mix=knn=1]
//                  [--qps=1e6] | [--qps-grid=5e5,1e6,2e6,4e6]
//                  [--queue-depth=64] [--drop=tail|head]
//                  [--slots=2] [--batch=4] [--dispatch-ns=500]
//                  [--max-hops=2] [--max-frontier=64] [--op-budget=4000]
//                  [--burst-mult=8] [--seed=1] [--jobs=N] [--progress=1]
//                  [--metrics-out=serve.json|.jsonl]
//                  [--slo-ns=0]             # per-request latency SLO target
//                                           # feeding the per-window tenant
//                                           # burn-rate gauge
//                  [--telemetry-window-ns=0]  # per-point virtual-time windows
//                                           # (queue depth, window p50/p99,
//                                           # achieved qps, tenant SLO burn);
//                                           # table inside the markers, plus
//                  [--timeline-out=t.jsonl] # window JSONL across all points
//                  + every SimConfig machine knob (threads, ann.*, ...)
//
// DETERMINISM: everything between the "== saturation table ==" markers is
// a pure function of the flags — bit-identical across --jobs counts and
// reruns (the serve-identity gate in scripts/golden_identity.sh diffs
// exactly that region). Wall-clock and pool.* occupancy lines print after
// the end marker.
#include <cstdio>
#include <exception>
#include <fstream>
#include <string>
#include <utility>
#include <vector>

#include "common/config.h"
#include "common/log.h"
#include "common/string_util.h"
#include "telemetry/timeline.h"
#include "exec/progress.h"
#include "exec/sweep.h"
#include "graph/hnsw_index.h"
#include "serve/engine.h"
#include "serve/slo.h"
#include "workloads/params.h"

using namespace graphpim;

namespace {

std::vector<double> ParseDoubleList(const std::string& arg,
                                    const std::string& flag) {
  std::vector<double> out;
  for (const std::string& part : Split(arg, ',')) {
    const std::string s = Trim(part);
    if (s.empty()) continue;
    try {
      out.push_back(std::stod(s));
    } catch (const std::exception&) {
      GP_THROW("bad value '", s, "' in --", flag);
    }
  }
  GP_CHECK(!out.empty(), "--", flag, " needs at least one value");
  return out;
}

int Run(const Config& cfg) {
  std::vector<std::string> keys = {
      "profile",   "vertices",  "tenants",     "modes",       "arrivals",
      "requests",  "mix",       "qps",         "qps-grid",    "queue-depth",
      "drop",      "slots",     "batch",       "dispatch-ns", "max-hops",
      "max-frontier", "op-budget", "burst-mult", "seed",      "jobs",
      "progress",  "metrics-out", "slo-ns",     "timeline-out"};
  for (const std::string& k : core::SimConfig::ConfigKeys()) keys.push_back(k);
  cfg.RequireKeys(keys);

  // --- resident graph options (construction is deferred: a knn mix
  // changes what the graph must host) ----------------------------------
  serve::ServedGraph::Options go;
  go.profile = cfg.GetString("profile", "ldbc");
  go.num_vertices = static_cast<VertexId>(cfg.GetUint("vertices", 4096));
  go.num_tenants = static_cast<std::uint32_t>(cfg.GetUint("tenants", 2));
  go.seed = cfg.GetUint("seed", 1);

  // --- serve parameters ----------------------------------------------
  serve::ServeParams base;
  base.traffic.model = serve::ParseArrivalModel(
      cfg.GetString("arrivals", "poisson"));
  base.traffic.num_requests = cfg.GetUint("requests", 48);
  base.traffic.num_tenants = go.num_tenants;
  base.traffic.burst_mult = cfg.GetDouble("burst-mult", 8.0);
  base.traffic.seed = go.seed;
  if (cfg.Has("mix")) {
    base.traffic.mix = serve::ParseMixSpec(cfg.GetString("mix", ""));
  }
  base.query.max_hops = static_cast<int>(cfg.GetInt("max-hops", 2));
  base.query.max_frontier = cfg.GetUint("max-frontier", 64);
  base.query.op_budget = cfg.GetUint("op-budget", 4000);
  base.queue_depth = cfg.GetUint("queue-depth", 64);
  base.drop = serve::ParseDropPolicy(cfg.GetString("drop", "tail"));
  base.slots = static_cast<int>(cfg.GetInt("slots", 2));
  base.batch_max = cfg.GetUint("batch", 4);
  base.dispatch_ns = cfg.GetDouble("dispatch-ns", 500.0);
  base.slo_ns = cfg.GetDouble("slo-ns", 0.0);

  // --- machine configs: modes x cube counts ---------------------------
  // num-cubes may carry a comma list (the sweep convention): it expands
  // the config axis with "-c<N>" suffixes. SimConfig::FromConfig parses
  // single numbers only, so the list is re-set per config before parsing.
  const std::vector<core::Mode> modes =
      exec::ParseModeList(cfg.GetString("modes", "baseline,graphpim"));
  std::string cubes_arg = cfg.GetString("num-cubes", "");
  if (cubes_arg.empty()) cubes_arg = cfg.GetString("num_cubes", "1");
  const std::vector<double> cube_list = ParseDoubleList(cubes_arg, "num-cubes");
  std::vector<std::pair<std::string, core::SimConfig>> configs;
  for (core::Mode m : modes) {
    for (double c : cube_list) {
      const auto n = static_cast<std::uint32_t>(c);
      GP_CHECK(n >= 1 && static_cast<double>(n) == c,
               "--num-cubes entries must be positive integers");
      Config one = cfg;
      one.Set("num-cubes", std::to_string(n));
      one.Set("num_cubes", std::to_string(n));
      std::string name = core::ToString(m);
      if (cube_list.size() > 1) name += StrFormat("-c%u", n);
      configs.emplace_back(name, core::SimConfig::FromConfig(one, m));
    }
  }

  // --- resident graph ---------------------------------------------------
  // A knn entry with positive weight switches on the shared ANN index; the
  // ann.* knobs are machine-config flags, uniform across the modes x cubes
  // expansion (all configs parse the same ann values), so the first config
  // supplies the index shape.
  for (const serve::MixEntry& me : base.traffic.mix) {
    if (me.first == "knn" && me.second > 0.0) go.enable_ann = true;
  }
  if (go.enable_ann) go.ann = configs.front().second.ann;
  serve::ServedGraph sg(go);

  // --- offered-load grid ----------------------------------------------
  std::vector<double> qps_grid;
  if (cfg.Has("qps-grid")) {
    qps_grid = ParseDoubleList(cfg.GetString("qps-grid", ""), "qps-grid");
  } else {
    qps_grid.push_back(cfg.GetDouble("qps", 1e6));
  }

  const int jobs = static_cast<int>(cfg.GetInt("jobs", 0));
  std::string mix_str;
  for (const serve::MixEntry& me : base.traffic.mix) {
    if (!mix_str.empty()) mix_str += ",";
    mix_str += StrFormat("%s=%g", me.first.c_str(), me.second);
  }
  std::printf(
      "graphpim_serve: %s-%u tenants=%u | %s arrivals, %zu requests, "
      "mix %s | queue=%zu/%s slots=%d batch=%zu | %zu configs x %zu qps = "
      "%zu points (--jobs=%d)\n\n",
      go.profile.c_str(), go.num_vertices, go.num_tenants,
      serve::ToString(base.traffic.model), base.traffic.num_requests,
      mix_str.c_str(), base.queue_depth, serve::ToString(base.drop),
      base.slots, base.batch_max, configs.size(), qps_grid.size(),
      configs.size() * qps_grid.size(), jobs);

  std::function<void(const exec::SweepProgress&)> on_progress;
  if (cfg.GetBool("progress", false)) on_progress = exec::StderrHeartbeat();

  const serve::ServeGridResult res =
      serve::RunServeGrid(sg, base, configs, qps_grid, jobs, on_progress);

  // Everything inside the markers is deterministic (seed-fixed,
  // jobs-invariant); scripts diff this region byte-for-byte.
  std::printf("== saturation table ==\n");
  std::fputs(serve::FormatSaturationTable(res.points).c_str(), stdout);
  std::printf("\n");
  std::fputs(serve::FormatKneeSummary(res.points).c_str(), stdout);
  // Per-point telemetry windows (telemetry.window_ns > 0): deterministic,
  // so they live inside the diffed region. Empty string when telemetry is
  // off keeps the off-output byte-identical.
  const std::string window_table = serve::FormatServeTimeline(res.points);
  if (!window_table.empty()) {
    std::printf("\n%s", window_table.c_str());
  }
  if (sg.has_ann()) {
    // Deterministic index-quality self-check (value-derived probes), so it
    // belongs inside the diffed region.
    const workloads::AnnParams& ann = go.ann;
    const double recall = graph::SelfCheckRecall(
        sg.ann_vectors(), sg.ann_index(), ann.k, ann.ef_search, ann.queries);
    std::printf("\nann self-check: recall@%d=%.4f (dim=%d m=%d ef=%d, %d probes)\n",
                ann.k, recall, ann.dim, ann.m, ann.ef_search, ann.queries);
  }
  // Per-tenant SLO breakdown at the grid's highest offered load.
  std::printf("\ntenant breakdown @ qps=%g\n", qps_grid.back());
  for (const serve::ServePoint& p : res.points) {
    if (p.qps != qps_grid.back()) continue;
    for (std::size_t t = 0; t < p.tenants.size(); ++t) {
      const serve::TenantSlo& slo = p.tenants[t];
      std::printf(
          "%-14s tenant%zu offered=%llu served=%llu dropped=%llu "
          "p50=%.2fus p95=%.2fus p99=%.2fus\n",
          p.config_name.c_str(), t,
          static_cast<unsigned long long>(slo.offered),
          static_cast<unsigned long long>(slo.served),
          static_cast<unsigned long long>(slo.dropped), slo.p50_ns / 1e3,
          slo.p95_ns / 1e3, slo.p99_ns / 1e3);
    }
  }
  std::printf("== end saturation table ==\n");

  // Wall-clock metadata (NOT deterministic; stays outside the markers).
  std::printf(
      "\nwall: %.0f ms | pool: %llu submitted, %llu executed, "
      "%llu steals, peak queued %llu, peak running %llu, busy %.0f ms\n",
      res.total_wall_ms, static_cast<unsigned long long>(res.pool.submitted),
      static_cast<unsigned long long>(res.pool.executed),
      static_cast<unsigned long long>(res.pool.steals),
      static_cast<unsigned long long>(res.pool.peak_queued),
      static_cast<unsigned long long>(res.pool.peak_running),
      res.pool.busy_ms);

  // Telemetry exports: every point's windows, point-prefixed so the tracks
  // (and JSONL lines) of different grid cells stay distinct.
  trace::TraceExtras extras;
  for (const serve::ServePoint& p : res.points) {
    if (p.timeline.empty()) continue;
    const std::string pname =
        StrFormat("%s@qps=%.0f", p.config_name.c_str(), p.qps);
    const std::string ev =
        telemetry::ChromeCounterEvents(p.timeline, pname + "|");
    if (!ev.empty()) {
      if (!extras.chrome_events.empty()) extras.chrome_events += ',';
      extras.chrome_events += ev;
    }
    extras.jsonl_lines += telemetry::ToJsonl(p.timeline, pname);
  }

  if (cfg.Has("metrics-out")) {
    const std::string path = cfg.GetString("metrics-out", "");
    trace::WriteTrace(serve::BuildServePhases(res.points), path, extras);
    std::printf("metrics written to %s\n", path.c_str());
  }
  if (cfg.Has("timeline-out")) {
    const std::string path = cfg.GetString("timeline-out", "");
    std::ofstream f(path, std::ios::binary);
    if (!f) GP_THROW("cannot open timeline output file '", path, "'");
    f << extras.jsonl_lines;
    if (!f) GP_THROW("failed writing timeline output file '", path, "'");
    std::printf("telemetry timeline written to %s\n", path.c_str());
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    return Run(Config::FromArgs(argc, argv));
  } catch (const std::exception& e) {
    std::fprintf(stderr, "graphpim_serve: error: %s\n", e.what());
    return 1;
  }
}
