// Additional edge-case and failure-injection coverage across modules.
#include <gtest/gtest.h>

#include <cmath>

#include "analytic/model.h"
#include "core/runner.h"
#include "graph/generator.h"
#include "hmc/cube.h"
#include "workloads/bfs.h"
#include "workloads/prank.h"
#include "workloads/sssp.h"
#include "workloads/tc.h"
#include "workloads/trace.h"

namespace graphpim {
namespace {

// ------------------------------------------------------------ TraceBuilder

TEST(TraceBuilderMore, MispredictRateApproximatelyHonored) {
  graph::AddressSpace space;
  workloads::TraceBuilder tb(1, &space, /*mispredict_rate=*/0.25, /*seed=*/3);
  for (int i = 0; i < 20000; ++i) tb.Branch(0);
  workloads::Trace t = tb.Take();
  int mis = 0;
  for (const auto& op : t.streams[0]) {
    if (op.Mispredict()) ++mis;
  }
  EXPECT_NEAR(mis / 20000.0, 0.25, 0.02);
}

TEST(TraceBuilderMore, ThreadsSampleIndependently) {
  graph::AddressSpace space;
  workloads::TraceBuilder tb(2, &space, 0.5, 7);
  for (int i = 0; i < 64; ++i) {
    tb.Branch(0);
    tb.Branch(1);
  }
  workloads::Trace t = tb.Take();
  // Not all outcomes should match between the two threads.
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (t.streams[0][i].Mispredict() == t.streams[1][i].Mispredict()) ++same;
  }
  EXPECT_LT(same, 64);
}

TEST(TraceBuilderMore, ComponentClassificationAutomatic) {
  graph::AddressSpace space;
  Addr meta = space.meta().Allocate(64);
  Addr prop = space.PmrMalloc(64);
  workloads::TraceBuilder tb(1, &space);
  tb.Load(0, meta, 8);
  tb.Load(0, prop, 8);
  workloads::Trace t = tb.Take();
  EXPECT_EQ(t.streams[0][0].comp, DataComponent::kMeta);
  EXPECT_EQ(t.streams[0][1].comp, DataComponent::kProperty);
}

// ------------------------------------------------------------------ HMC

TEST(CubeMore, LinksShareLoad) {
  hmc::HmcParams p;
  hmc::HmcCube cube(p);
  // A burst of reads must not serialize on one link: total time far below
  // single-link serialization of all FLITs.
  Tick last = 0;
  for (int i = 0; i < 64; ++i) {
    last = std::max(last, cube.Read(static_cast<Addr>(i) * 4096, 64, 0).response_at_host);
  }
  EXPECT_GT(cube.TotalLinkBusy(), 0u);
  EXPECT_LT(TicksToNs(last), 200.0);
}

TEST(CubeMore, BankIndexUsesIndependentBits) {
  // Regression for the vault/bank aliasing bug: stride-64 addresses across
  // one vault must spread over multiple banks.
  hmc::HmcParams p;
  p.t_refi = 0;
  hmc::HmcCube cube(p);
  // 16 consecutive blocks in vault 0 are 64*32 bytes apart.
  Tick last = 0;
  for (int i = 0; i < 16; ++i) {
    Addr a = static_cast<Addr>(i) * 64 * 32 * 4;  // vault 0, varying banks
    ASSERT_EQ(cube.VaultOf(a), 0u);
    last = std::max(last, cube.Read(a, 8, 0).internal_done);
  }
  // If all 16 hit one bank this would serialize to ~16*30ns; banked access
  // completes much sooner.
  EXPECT_LT(TicksToNs(last), 250.0);
}

TEST(CubeMore, FunctionalCasZeroChain) {
  hmc::HmcCube cube{hmc::HmcParams{}};
  cube.set_functional(true);
  Addr a = 0x100;
  auto first = cube.Atomic(a, hmc::AtomicOp::kCasZero16, hmc::Value16{42, 0}, true, 0);
  EXPECT_TRUE(first.outcome.flag);
  auto second = cube.Atomic(a, hmc::AtomicOp::kCasZero16, hmc::Value16{7, 0}, true, 0);
  EXPECT_FALSE(second.outcome.flag) << "slot already claimed";
  EXPECT_EQ(cube.FunctionalRead(a).lo, 42u);
}

// ------------------------------------------------------------- Analytic

TEST(AnalyticMore, MorePimOverlapMoreSpeedup) {
  analytic::ModelInputs a;
  a.r_atomic = 0.1;
  a.pim_overlap = 0.5;
  analytic::ModelInputs b = a;
  b.pim_overlap = 0.95;
  EXPECT_GT(analytic::PredictSpeedup(b), analytic::PredictSpeedup(a));
}

TEST(AnalyticMore, RealWorldEnergyNeverAboveOne) {
  analytic::RealWorldApp app;
  app.host_overhead = 0.0;
  app.pim_atomic_pct = 0.0;
  auto e = analytic::EstimateRealWorld(app);
  EXPECT_LE(e.energy_norm, 1.0 + 1e-9);
  EXPECT_NEAR(e.speedup, 1.0, 1e-9);
}

// ------------------------------------------------------------ Workloads

TEST(WorkloadEdge, BfsFromIsolatedRootTerminates) {
  graph::EdgeList el;
  el.num_vertices = 4;
  el.edges = {{1, 2, 1}};
  graph::AddressSpace space;
  graph::CsrGraph g(el, space);
  workloads::BfsWorkload bfs(0);  // vertex 0 has no edges
  workloads::TraceBuilder tb(2, &space);
  bfs.Generate(g, space, tb);
  EXPECT_EQ(bfs.depths()[0], 0);
  EXPECT_EQ(bfs.depths()[1], -1);
}

TEST(WorkloadEdge, SsspIterationCapStopsEarly) {
  // A long chain needs as many frontier iterations as its length.
  graph::EdgeList el;
  el.num_vertices = 32;
  for (VertexId v = 0; v + 1 < 32; ++v) el.edges.push_back({v, v + 1, 1});
  graph::AddressSpace space;
  graph::CsrGraph g(el, space);
  workloads::SsspWorkload capped(0, /*max_iters=*/4);
  workloads::TraceBuilder tb(2, &space);
  capped.Generate(g, space, tb);
  EXPECT_EQ(capped.distances()[4], 4);
  EXPECT_EQ(capped.distances()[31], workloads::SsspWorkload::kInf)
      << "beyond the iteration cap";
}

TEST(WorkloadEdge, TcNoTrianglesOnChain) {
  graph::EdgeList el;
  el.num_vertices = 8;
  for (VertexId v = 0; v + 1 < 8; ++v) el.edges.push_back({v, v + 1, 1});
  graph::AddressSpace space;
  graph::CsrGraph g(el, space);
  workloads::TcWorkload tc;
  workloads::TraceBuilder tb(2, &space);
  tc.Generate(g, space, tb);
  EXPECT_EQ(tc.triangles(), 0u);
}

TEST(WorkloadEdge, PrankMassApproximatelyConserved) {
  graph::EdgeList el = graph::GenerateUniform(512, 8, 9);
  graph::AddressSpace space;
  graph::CsrGraph g(el, space);
  workloads::PrankWorkload pr(4, 0.85);
  workloads::TraceBuilder tb(4, &space);
  pr.Generate(g, space, tb);
  double sum = 0;
  for (double r : pr.ranks()) sum += r;
  // Dangling vertices leak mass, so the sum is <= 1 but substantial.
  EXPECT_LE(sum, 1.0 + 1e-9);
  EXPECT_GT(sum, 0.5);
}

// --------------------------------------------------------------- Runner

TEST(RunnerMore, BarrierRendezvousWaitsForSlowest) {
  // Thread 0 does heavy work before the barrier, thread 1 almost none;
  // both must leave the barrier together.
  graph::AddressSpace space;
  Addr prop = space.PmrMalloc(1 << 20);
  workloads::TraceBuilder tb(2, &space);
  for (int i = 0; i < 5000; ++i) tb.Compute(0, 4, /*dep=*/true);
  tb.Compute(1, 1);
  tb.Barrier();
  tb.Atomic(1, prop, hmc::AtomicOp::kDualAdd8, 8, false);
  workloads::Trace t = tb.Take();
  core::SimConfig cfg = core::SimConfig::Scaled(core::Mode::kGraphPim);
  cfg.num_cores = 2;
  core::SimResults r = core::RunSimulation(t, cfg, space.pmr_base(),
                                           space.pmr_end(), core::RunOptions{});
  // Total time must cover thread 0's 20000 dependent cycles.
  EXPECT_GE(r.cycles, 20000u);
}

TEST(RunnerMore, ExperimentFromEdgeList) {
  graph::EdgeList el = graph::GenerateUniform(512, 6, 11);
  core::Experiment::Options o;
  o.num_threads = 4;
  core::Experiment exp(el, "bfs", o);
  EXPECT_EQ(exp.graph().num_vertices(), 512u);
  core::SimConfig cfg = core::SimConfig::Scaled(core::Mode::kBaseline);
  cfg.num_cores = 4;
  EXPECT_GT(exp.Run(cfg).cycles, 0u);
}

TEST(RunnerMore, SpeedupDefinition) {
  core::SimResults a;
  core::SimResults b;
  a.cycles = 200;
  b.cycles = 100;
  EXPECT_DOUBLE_EQ(core::Speedup(a, b), 2.0);
}

TEST(RunnerMore, SingleThreadTraceOnManyCores) {
  graph::AddressSpace space;
  workloads::TraceBuilder tb(1, &space);
  for (int i = 0; i < 100; ++i) tb.Compute(0);
  workloads::Trace t = tb.Take();
  core::SimConfig cfg = core::SimConfig::Scaled(core::Mode::kBaseline);
  cfg.num_cores = 16;  // 15 cores idle
  core::SimResults r = core::RunSimulation(t, cfg, 0, 0, core::RunOptions{});
  EXPECT_EQ(r.insts, 100u);
}

// ------------------------------------------------------------ Generator

TEST(GeneratorMore, ShuffleDecorrelatesIdAndDegree) {
  // Hub ids must not cluster at low vertex ids after the permutation.
  graph::RmatParams p;
  p.num_vertices = 8192;
  p.avg_degree = 16;
  graph::EdgeList el = graph::GenerateRmat(p);
  std::vector<std::uint64_t> in_deg(el.num_vertices, 0);
  for (const auto& e : el.edges) ++in_deg[e.dst];
  std::uint64_t low = 0;
  std::uint64_t total = 0;
  for (VertexId v = 0; v < el.num_vertices; ++v) {
    total += in_deg[v];
    if (v < el.num_vertices / 16) low += in_deg[v];
  }
  // Without the shuffle the lowest 1/16 of ids attracts ~20% of edges;
  // shuffled it should hold roughly its proportional share.
  EXPECT_LT(static_cast<double>(low) / total, 0.12);
}

TEST(GeneratorMore, UniformGraphHasNoSelfLoops) {
  graph::EdgeList el = graph::GenerateUniform(256, 8, 3);
  for (const auto& e : el.edges) EXPECT_NE(e.src, e.dst);
}

}  // namespace
}  // namespace graphpim
