// Tests for the extension features: comparison-block fusion (Section
// III-B), hybrid HMC+DRAM placement, trace serialization, and reports.
#include <gtest/gtest.h>

#include <cstdio>

#include "core/report.h"
#include "core/runner.h"
#include "core/system.h"
#include "graph/generator.h"
#include "workloads/ccomp.h"
#include "workloads/fusion.h"
#include "workloads/kcore.h"
#include "workloads/sssp.h"
#include "workloads/trace_io.h"

namespace graphpim {
namespace {

using workloads::Trace;

struct Built {
  graph::AddressSpace space;
  graph::CsrGraph g;
  explicit Built(VertexId n = 256)
      : g(graph::GenerateUniform(n, 6.0, 5), space) {}
};

Trace Gen(workloads::Workload& w, Built& b) {
  workloads::TraceBuilder tb(4, &b.space);
  w.Generate(b.g, b.space, tb);
  return tb.Take();
}

std::uint64_t CountOps(const Trace& t, cpu::OpType type) {
  std::uint64_t n = 0;
  for (const auto& s : t.streams) {
    for (const auto& op : s) {
      if (op.type == type) ++n;
    }
  }
  return n;
}

TEST(Fusion, SsspRelaxBlocksFuse) {
  Built b;
  workloads::SsspWorkload sssp(0);
  Trace t = Gen(sssp, b);
  workloads::FusionStats fs;
  Trace fused = workloads::FuseComparisonBlocks(t, b.space, &fs);
  EXPECT_GT(fs.fused_with_cas + fs.fused_compare_only, 0u);
  // Every fused block becomes a CAS-if-less atomic.
  std::uint64_t casless = 0;
  for (const auto& s : fused.streams) {
    for (const auto& op : s) {
      if (op.type == cpu::OpType::kAtomic && op.aop == hmc::AtomicOp::kCasLess16) {
        ++casless;
        EXPECT_TRUE(op.WantReturn());
      }
    }
  }
  EXPECT_EQ(casless, fs.fused_with_cas + fs.fused_compare_only);
  EXPECT_EQ(fused.TotalOps(), t.TotalOps() - fs.ops_removed);
}

TEST(Fusion, KcoreScanLoadsDoNotFuse) {
  // kCore's property scans are plain checks, not comparison blocks; the
  // pass must leave them alone.
  Built b;
  workloads::KcoreWorkload kc(3, 8);
  Trace t = Gen(kc, b);
  workloads::FusionStats fs;
  Trace fused = workloads::FuseComparisonBlocks(t, b.space, &fs);
  EXPECT_EQ(fs.fused_with_cas + fs.fused_compare_only, 0u);
  EXPECT_EQ(fused.TotalOps(), t.TotalOps());
}

TEST(Fusion, BarrierStructurePreserved) {
  Built b;
  workloads::CcompWorkload cc;
  Trace t = Gen(cc, b);
  Trace fused = workloads::FuseComparisonBlocks(t, b.space);
  ASSERT_EQ(fused.streams.size(), t.streams.size());
  for (std::size_t i = 0; i < t.streams.size(); ++i) {
    EXPECT_EQ(CountOps(fused, cpu::OpType::kBarrier),
              CountOps(t, cpu::OpType::kBarrier));
  }
}

TEST(Fusion, SpeedsUpCcompUnderGraphPim) {
  core::Experiment::Options o;
  o.num_threads = 8;
  o.op_cap = 1'500'000;
  core::Experiment exp("ldbc", 8 * 1024, "ccomp", o);
  core::SimConfig cfg = core::SimConfig::Scaled(core::Mode::kGraphPim);
  cfg.num_cores = 8;
  core::SimResults plain = exp.Run(cfg);
  graph::AddressSpace space;
  Trace fused = workloads::FuseComparisonBlocks(exp.trace(), space);
  core::SimResults f =
      core::RunSimulation(fused, cfg, exp.pmr_base(), exp.pmr_end(),
                          core::RunOptions{});
  EXPECT_LT(f.cycles, plain.cycles);
}

TEST(Hybrid, ZeroFractionMatchesBaselineBehavior) {
  core::Experiment::Options o;
  o.num_threads = 8;
  o.op_cap = 1'000'000;
  core::Experiment exp("ldbc", 4 * 1024, "dc", o);
  core::SimConfig none = core::SimConfig::Scaled(core::Mode::kGraphPim);
  none.num_cores = 8;
  none.pmr_hmc_fraction = 0.0;
  core::SimResults r = exp.Run(none);
  EXPECT_EQ(r.offloaded_atomics, 0u) << "no property page in the HMC";
  EXPECT_GT(r.raw.Get("cache.access.property"), 0.0) << "conventional path";
}

TEST(Hybrid, FractionScalesOffloadCount) {
  core::Experiment::Options o;
  o.num_threads = 8;
  o.op_cap = 1'000'000;
  core::Experiment exp("ldbc", 4 * 1024, "dc", o);
  std::uint64_t prev = 0;
  for (double f : {0.25, 0.5, 1.0}) {
    core::SimConfig cfg = core::SimConfig::Scaled(core::Mode::kGraphPim);
    cfg.num_cores = 8;
    cfg.pmr_hmc_fraction = f;
    core::SimResults r = exp.Run(cfg);
    EXPECT_GT(r.offloaded_atomics, prev);
    prev = r.offloaded_atomics;
  }
  EXPECT_EQ(prev, exp.Run(core::SimConfig::Scaled(core::Mode::kGraphPim)).atomics);
}

TEST(TraceIo, RoundTrip) {
  Built b;
  workloads::SsspWorkload sssp(0);
  Trace t = Gen(sssp, b);
  std::string path = ::testing::TempDir() + "/graphpim_trace_test.bin";
  ASSERT_TRUE(workloads::SaveTrace(t, path));
  Trace in;
  ASSERT_TRUE(workloads::LoadTrace(path, &in));
  ASSERT_EQ(in.streams.size(), t.streams.size());
  for (std::size_t s = 0; s < t.streams.size(); ++s) {
    ASSERT_EQ(in.streams[s].size(), t.streams[s].size());
    for (std::size_t i = 0; i < t.streams[s].size(); ++i) {
      const auto& a = t.streams[s][i];
      const auto& c = in.streams[s][i];
      EXPECT_EQ(a.addr, c.addr);
      EXPECT_EQ(a.type, c.type);
      EXPECT_EQ(a.aop, c.aop);
      EXPECT_EQ(a.flags, c.flags);
      EXPECT_EQ(a.size, c.size);
    }
  }
  std::remove(path.c_str());
}

TEST(TraceIo, ReplaySameResult) {
  core::Experiment::Options o;
  o.num_threads = 4;
  o.op_cap = 200'000;
  core::Experiment exp("ldbc", 2 * 1024, "bfs", o);
  std::string path = ::testing::TempDir() + "/graphpim_trace_replay.bin";
  ASSERT_TRUE(workloads::SaveTrace(exp.trace(), path));
  Trace loaded;
  ASSERT_TRUE(workloads::LoadTrace(path, &loaded));
  core::SimConfig cfg = core::SimConfig::Scaled(core::Mode::kGraphPim);
  cfg.num_cores = 4;
  core::SimResults a = exp.Run(cfg);
  core::SimResults b2 =
      core::RunSimulation(loaded, cfg, exp.pmr_base(), exp.pmr_end(),
                          core::RunOptions{});
  EXPECT_EQ(a.cycles, b2.cycles);
  std::remove(path.c_str());
}

TEST(TraceIo, MissingFileFails) {
  Trace t;
  EXPECT_FALSE(workloads::LoadTrace("/nonexistent/trace.bin", &t));
}

TEST(Report, FormatContainsHeadlines) {
  core::Experiment::Options o;
  o.num_threads = 4;
  o.op_cap = 100'000;
  core::Experiment exp("ldbc", 1024, "bfs", o);
  core::SimConfig cfg = core::SimConfig::Scaled(core::Mode::kGraphPim);
  cfg.num_cores = 4;
  core::SimResults r = exp.Run(cfg);
  std::string report = core::FormatReport(r);
  EXPECT_NE(report.find("GraphPIM"), std::string::npos);
  EXPECT_NE(report.find("cycles:"), std::string::npos);
  EXPECT_NE(report.find("uncore energy"), std::string::npos);
}

TEST(Report, JsonWritesAndParsesRoughly) {
  core::Experiment::Options o;
  o.num_threads = 4;
  o.op_cap = 100'000;
  core::Experiment exp("ldbc", 1024, "bfs", o);
  core::SimConfig cfg = core::SimConfig::Scaled(core::Mode::kBaseline);
  cfg.num_cores = 4;
  core::SimResults r = exp.Run(cfg);
  std::string json = core::ToJson(r);
  EXPECT_EQ(json.front(), '{');
  EXPECT_NE(json.find("\"cycles\""), std::string::npos);
  EXPECT_NE(json.find("\"counters\""), std::string::npos);
  std::string path = ::testing::TempDir() + "/graphpim_report.json";
  EXPECT_TRUE(core::WriteJson(r, path));
  std::remove(path.c_str());
}

TEST(BusLock, GlobalSerializationOrdersAtomics) {
  // Two UC-NoPIM atomics from different cores must serialize globally.
  core::SimConfig cfg = core::SimConfig::Scaled(core::Mode::kUncacheNoPim);
  core::MemorySystem sys(cfg, 0x4'0000'0000ULL, 0x5'0000'0000ULL);
  cpu::MicroOp op;
  op.type = cpu::OpType::kAtomic;
  op.addr = 0x4'0000'0100ULL;
  op.size = 8;
  auto a = sys.Access(0, op, 0);
  op.addr = 0x4'0000'9000ULL;  // different address, different bank
  auto b = sys.Access(1, op, 0);
  EXPECT_GE(b.complete, a.complete) << "bus lock holds the whole interconnect";
}

}  // namespace
}  // namespace graphpim
