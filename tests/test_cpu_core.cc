// Tests for the OoO core timestamp model and the PIM offload unit.
#include <gtest/gtest.h>

#include <vector>

#include "cpu/core.h"
#include "cpu/pou.h"

namespace graphpim::cpu {
namespace {

// Scripted memory interface: fixed latency per access type, optional
// serializing atomics, records call times.
class MockMem : public MemoryInterface {
 public:
  Tick load_lat = NsToTicks(10.0);
  Tick atomic_lat = NsToTicks(50.0);
  bool serialize_atomics = false;
  Tick stall_until = 0;
  std::vector<Tick> calls;

  MemOutcome Access(int /*core*/, const MicroOp& op, Tick when) override {
    calls.push_back(when);
    MemOutcome out;
    if (op.type == OpType::kAtomic) {
      out.complete = when + atomic_lat;
      out.retire_ready = op.WantReturn() ? out.complete : when;
      out.serializing = serialize_atomics;
    } else {
      out.complete = when + load_lat;
      out.retire_ready = out.complete;
    }
    out.issue_stall_until = stall_until;
    return out;
  }
};

MicroOp Comp(int lat = 1, bool dep = false) {
  MicroOp op;
  op.type = OpType::kCompute;
  op.compute_lat = static_cast<std::uint8_t>(lat);
  if (dep) op.flags |= kFlagDepPrev;
  return op;
}

MicroOp Ld(Addr a, bool dep = false) {
  MicroOp op;
  op.type = OpType::kLoad;
  op.addr = a;
  op.size = 8;
  if (dep) op.flags |= kFlagDepPrev;
  return op;
}

MicroOp At(Addr a, bool ret, bool dep = false) {
  MicroOp op;
  op.type = OpType::kAtomic;
  op.addr = a;
  op.size = 8;
  if (ret) op.flags |= kFlagWantReturn;
  if (dep) op.flags |= kFlagDepPrev;
  return op;
}

MicroOp Br(bool mispredict, bool dep = true) {
  MicroOp op;
  op.type = OpType::kBranch;
  if (dep) op.flags |= kFlagDepPrev;
  if (mispredict) op.flags |= kFlagMispredict;
  return op;
}

MicroOp Barrier(std::uint64_t id = 1) {
  MicroOp op;
  op.type = OpType::kBarrier;
  op.addr = id;
  return op;
}

Tick RunAll(OooCore& core) {
  while (true) {
    OooCore::Status s = core.Advance(core.Now() + NsToTicks(10000.0));
    if (s == OooCore::Status::kDone) break;
    if (s == OooCore::Status::kBarrier) core.ReleaseBarrier(core.BarrierArrival());
  }
  return core.Now();
}

TEST(OooCore, IssueWidthBoundsThroughput) {
  MockMem mem;
  CoreParams p;
  OooCore core(0, p, &mem);
  cpu::UopStream trace(1000, Comp());
  core.Reset(&trace);
  Tick end = RunAll(core);
  // 1000 independent 1-cycle ops at 4/cycle = 250 cycles = 125ns.
  EXPECT_NEAR(TicksToNs(end), 125.0, 5.0);
  EXPECT_DOUBLE_EQ(core.stats().Get("core.insts"), 1000);
}

TEST(OooCore, DependentChainSerializes) {
  MockMem mem;
  OooCore core(0, CoreParams(), &mem);
  cpu::UopStream trace(1000, Comp(1, /*dep=*/true));
  core.Reset(&trace);
  Tick end = RunAll(core);
  // A 1000-deep dependency chain of 1-cycle ops takes ~1000 cycles.
  EXPECT_NEAR(TicksToNs(end), 500.0, 10.0);
}

TEST(OooCore, IndependentLoadsOverlap) {
  MockMem mem;
  OooCore core(0, CoreParams(), &mem);
  cpu::UopStream trace;
  for (int i = 0; i < 64; ++i) trace.push_back(Ld(static_cast<Addr>(i) * 64));
  core.Reset(&trace);
  Tick end = RunAll(core);
  // 64 independent 10ns loads overlap: far less than 640ns.
  EXPECT_LT(TicksToNs(end), 40.0);
}

TEST(OooCore, DependentLoadsChain) {
  MockMem mem;
  OooCore core(0, CoreParams(), &mem);
  cpu::UopStream trace;
  for (int i = 0; i < 10; ++i) trace.push_back(Ld(0, /*dep=*/true));
  core.Reset(&trace);
  Tick end = RunAll(core);
  EXPECT_GE(TicksToNs(end), 100.0);  // 10 x 10ns serialized
}

TEST(OooCore, RobLimitsInFlightWork) {
  MockMem mem;
  mem.load_lat = NsToTicks(100.0);
  CoreParams p;
  p.rob_size = 8;
  OooCore core(0, p, &mem);
  cpu::UopStream trace(80, Ld(0));
  core.Reset(&trace);
  Tick end = RunAll(core);
  // With 8 ROB entries, at most 8 loads overlap: >= 10 waves x 100ns.
  EXPECT_GE(TicksToNs(end), 900.0);
}

TEST(OooCore, SerializingAtomicFreezesPipeline) {
  MockMem mem;
  mem.serialize_atomics = true;
  OooCore core(0, CoreParams(), &mem);
  cpu::UopStream with;
  cpu::UopStream without;
  for (int i = 0; i < 100; ++i) {
    with.push_back(At(0, false));
    with.push_back(Comp());
    without.push_back(Comp());
    without.push_back(Comp());
  }
  core.Reset(&with);
  Tick t_with = RunAll(core);
  const double incore = core.stats().Get("core.atomic_incore_ticks");
  core.Reset(&without);
  Tick t_without = RunAll(core);
  EXPECT_GT(t_with, 5 * t_without);
  EXPECT_GT(incore, 0.0);
}

TEST(OooCore, OffloadedAtomicDoesNotFreeze) {
  MockMem mem;
  mem.serialize_atomics = false;
  OooCore core(0, CoreParams(), &mem);
  cpu::UopStream trace;
  for (int i = 0; i < 100; ++i) {
    trace.push_back(At(0, /*ret=*/false));  // posted
    trace.push_back(Comp());
  }
  core.Reset(&trace);
  Tick end = RunAll(core);
  // Posted offloaded atomics behave like cheap ops: ~200 ops / 4 wide.
  EXPECT_LT(TicksToNs(end), 60.0);
  EXPECT_DOUBLE_EQ(core.stats().Get("core.atomics"), 100);
}

TEST(OooCore, AtomicWithReturnDelaysDependent) {
  MockMem mem;
  OooCore core(0, CoreParams(), &mem);
  cpu::UopStream trace{At(0, /*ret=*/true), Comp(1, /*dep=*/true)};
  core.Reset(&trace);
  Tick end = RunAll(core);
  EXPECT_GE(TicksToNs(end), 50.0);  // dependent waits for the CAS result
}

TEST(OooCore, MispredictAddsPenalty) {
  MockMem mem;
  CoreParams p;
  OooCore core(0, p, &mem);
  cpu::UopStream clean;
  cpu::UopStream dirty;
  for (int i = 0; i < 100; ++i) {
    clean.push_back(Comp());
    clean.push_back(Br(false, false));
    dirty.push_back(Comp());
    dirty.push_back(Br(true, false));
  }
  core.Reset(&clean);
  Tick t_clean = RunAll(core);
  const double bs_clean = core.stats().Get("core.badspec_ticks");
  core.Reset(&dirty);
  Tick t_dirty = RunAll(core);
  EXPECT_GT(t_dirty, t_clean);
  EXPECT_DOUBLE_EQ(bs_clean, 0.0);
  EXPECT_GT(core.stats().Get("core.badspec_ticks"), 0.0);
  EXPECT_DOUBLE_EQ(core.stats().Get("core.mispredicts"), 100);
}

TEST(OooCore, IssueStallBackpressure) {
  MockMem mem;
  mem.stall_until = NsToTicks(500.0);
  OooCore core(0, CoreParams(), &mem);
  cpu::UopStream trace{Ld(0), Comp()};
  core.Reset(&trace);
  Tick end = RunAll(core);
  EXPECT_GE(TicksToNs(end), 500.0);
}

TEST(OooCore, BarrierReportsArrivalOfAllWork) {
  MockMem mem;
  mem.load_lat = NsToTicks(100.0);
  OooCore core(0, CoreParams(), &mem);
  cpu::UopStream trace{Ld(0), Barrier(), Comp()};
  core.Reset(&trace);
  OooCore::Status s = core.Advance(NsToTicks(1e6));
  ASSERT_EQ(s, OooCore::Status::kBarrier);
  EXPECT_GE(TicksToNs(core.BarrierArrival()), 100.0);
  core.ReleaseBarrier(NsToTicks(1000.0));
  EXPECT_EQ(core.Advance(NsToTicks(1e7)), OooCore::Status::kDone);
  EXPECT_GE(TicksToNs(core.Now()), 1000.0);
}

TEST(OooCore, QuantumPausesAndResumes) {
  MockMem mem;
  OooCore core(0, CoreParams(), &mem);
  cpu::UopStream trace(10000, Comp(1, true));
  core.Reset(&trace);
  EXPECT_EQ(core.Advance(NsToTicks(10.0)), OooCore::Status::kRunning);
  const double insts_after_first = core.stats().Get("core.insts");
  EXPECT_LT(insts_after_first, 10000.0);
  EXPECT_GT(insts_after_first, 0.0);
  RunAll(core);
  EXPECT_DOUBLE_EQ(core.stats().Get("core.insts"), 10000);
}

TEST(OooCore, StatsCountOpKinds) {
  MockMem mem;
  OooCore core(0, CoreParams(), &mem);
  MicroOp st;
  st.type = OpType::kStore;
  cpu::UopStream trace{Comp(), Br(false, false), Ld(0), st, At(0, true)};
  core.Reset(&trace);
  RunAll(core);
  const StatRegistry& s = core.stats();
  EXPECT_DOUBLE_EQ(s.Get("core.computes"), 1);
  EXPECT_DOUBLE_EQ(s.Get("core.branches"), 1);
  EXPECT_DOUBLE_EQ(s.Get("core.loads"), 1);
  EXPECT_DOUBLE_EQ(s.Get("core.stores"), 1);
  EXPECT_DOUBLE_EQ(s.Get("core.atomics"), 1);
  EXPECT_DOUBLE_EQ(s.Get("core.insts"), 5);
}

TEST(Pou, PmrRangeCheck) {
  PimOffloadUnit pou;
  pou.SetPmr(0x1000, 0x2000);
  EXPECT_TRUE(pou.InPmr(0x1000));
  EXPECT_TRUE(pou.InPmr(0x1FFF));
  EXPECT_FALSE(pou.InPmr(0x2000));
  EXPECT_FALSE(pou.InPmr(0xFFF));
}

TEST(Pou, OffloadsOnlyPmrAtomics) {
  PimOffloadUnit pou;
  pou.SetPmr(0x1000, 0x2000);
  EXPECT_TRUE(pou.ShouldOffload(At(0x1800, false)));
  EXPECT_FALSE(pou.ShouldOffload(At(0x800, false)));   // outside PMR
  EXPECT_FALSE(pou.ShouldOffload(Ld(0x1800)));         // not an atomic
}

TEST(Pou, AllPmrAccessesBypassCache) {
  PimOffloadUnit pou;
  pou.SetPmr(0x1000, 0x2000);
  EXPECT_TRUE(pou.BypassesCache(Ld(0x1800)));
  EXPECT_TRUE(pou.BypassesCache(At(0x1800, true)));
  EXPECT_FALSE(pou.BypassesCache(Ld(0x800)));
  EXPECT_FALSE(pou.BypassesCache(Comp()));
}

}  // namespace
}  // namespace graphpim::cpu
