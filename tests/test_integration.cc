// End-to-end integration tests: paired runs reproduce the paper's headline
// relationships on CI-scale graphs.
#include <gtest/gtest.h>

#include "core/runner.h"

namespace graphpim::core {
namespace {

Experiment::Options SmallOpts() {
  Experiment::Options o;
  o.num_threads = 8;
  o.op_cap = 2'000'000;
  return o;
}

constexpr VertexId kN = 8 * 1024;

SimConfig Scaled(Mode m) {
  SimConfig cfg = SimConfig::Scaled(m);
  cfg.num_cores = 8;
  return cfg;
}

TEST(Integration, GraphPimSpeedsUpAtomicHeavyWorkloads) {
  for (const char* wl : {"dc", "prank", "ccomp"}) {
    Experiment exp("ldbc", kN, wl, SmallOpts());
    SimResults base = exp.Run(Scaled(Mode::kBaseline));
    SimResults pim = exp.Run(Scaled(Mode::kGraphPim));
    EXPECT_GT(Speedup(base, pim), 1.2) << wl;
    EXPECT_EQ(pim.offloaded_atomics, pim.atomics) << wl;
    EXPECT_EQ(base.offloaded_atomics, 0u) << wl;
  }
}

TEST(Integration, ComputeBoundWorkloadsUnaffected) {
  Experiment exp("ldbc", kN, "tc", SmallOpts());
  SimResults base = exp.Run(Scaled(Mode::kBaseline));
  SimResults pim = exp.Run(Scaled(Mode::kGraphPim));
  double s = Speedup(base, pim);
  EXPECT_GT(s, 0.85);
  EXPECT_LT(s, 1.3);
}

TEST(Integration, TraceIsIdenticalAcrossConfigs) {
  Experiment exp("ldbc", kN, "bfs", SmallOpts());
  SimResults a = exp.Run(Scaled(Mode::kBaseline));
  SimResults b = exp.Run(Scaled(Mode::kGraphPim));
  EXPECT_EQ(a.insts, b.insts);
  EXPECT_EQ(a.atomics, b.atomics);
}

TEST(Integration, RunsAreDeterministic) {
  Experiment exp("ldbc", kN, "bfs", SmallOpts());
  SimResults a = exp.Run(Scaled(Mode::kGraphPim));
  SimResults b = exp.Run(Scaled(Mode::kGraphPim));
  EXPECT_EQ(a.cycles, b.cycles);
  EXPECT_EQ(a.insts, b.insts);
  EXPECT_DOUBLE_EQ(a.req_flits, b.req_flits);
}

TEST(Integration, CacheBypassCutsCacheTraffic) {
  Experiment exp("ldbc", kN, "bfs", SmallOpts());
  SimResults base = exp.Run(Scaled(Mode::kBaseline));
  SimResults pim = exp.Run(Scaled(Mode::kGraphPim));
  EXPECT_LT(pim.raw.Get("cache.access.property"), 1.0)
      << "GraphPIM property accesses must bypass the hierarchy";
  EXPECT_GT(base.raw.Get("cache.access.property"), 1000.0);
}

TEST(Integration, BandwidthSavingsFromSmallPackets) {
  // Fig 12: GraphPIM reduces link traffic for atomic-heavy workloads. The
  // effect needs the paper's footprint regime (property >> LLC), so this
  // test uses the full bench scale.
  Experiment::Options o = SmallOpts();
  o.op_cap = 4'000'000;
  Experiment exp("ldbc", 32 * 1024, "dc", o);
  SimResults base = exp.Run(Scaled(Mode::kBaseline));
  SimResults pim = exp.Run(Scaled(Mode::kGraphPim));
  EXPECT_LT(pim.req_flits + pim.resp_flits, base.req_flits + base.resp_flits);
}

TEST(Integration, HighCandidateMissRateInBaseline) {
  // Fig 10: offloading candidates mostly miss the cache hierarchy.
  Experiment::Options o = SmallOpts();
  o.op_cap = 4'000'000;
  Experiment exp("ldbc", 32 * 1024, "dc", o);
  SimResults base = exp.Run(Scaled(Mode::kBaseline));
  EXPECT_GT(base.atomic_miss_rate, 0.4);
}

TEST(Integration, FuCountInsensitive) {
  // Fig 11: even one FU per vault sustains the atomic throughput.
  Experiment exp("ldbc", kN, "dc", SmallOpts());
  SimConfig one = Scaled(Mode::kGraphPim);
  one.hmc.fus_per_vault = 1;
  SimConfig sixteen = Scaled(Mode::kGraphPim);
  sixteen.hmc.fus_per_vault = 16;
  SimResults r1 = exp.Run(one);
  SimResults r16 = exp.Run(sixteen);
  double ratio = static_cast<double>(r1.cycles) / static_cast<double>(r16.cycles);
  EXPECT_LT(ratio, 1.3);
  EXPECT_GT(ratio, 0.85);
}

TEST(Integration, LinkBandwidthInsensitive) {
  // Fig 13: halving/doubling link bandwidth barely moves performance.
  Experiment exp("ldbc", kN, "bfs", SmallOpts());
  SimConfig half = Scaled(Mode::kGraphPim);
  half.hmc.link_bw_scale = 0.5;
  SimConfig dbl = Scaled(Mode::kGraphPim);
  dbl.hmc.link_bw_scale = 2.0;
  SimResults rh = exp.Run(half);
  SimResults rd = exp.Run(dbl);
  double ratio = static_cast<double>(rh.cycles) / static_cast<double>(rd.cycles);
  EXPECT_LT(ratio, 1.25);
}

TEST(Integration, UncoreEnergyDropsForAtomicHeavy) {
  // Fig 15 direction: GraphPIM cuts uncore energy.
  Experiment exp("ldbc", kN, "dc", SmallOpts());
  SimResults base = exp.Run(Scaled(Mode::kBaseline));
  SimResults pim = exp.Run(Scaled(Mode::kGraphPim));
  EXPECT_LT(pim.energy.Total(), base.energy.Total());
}

TEST(Integration, BusLockAblationIsWorseThanBaseline) {
  // Section III-B: UC property without PIM-atomics degrades to bus locks.
  Experiment exp("ldbc", kN, "dc", SmallOpts());
  SimResults base = exp.Run(Scaled(Mode::kBaseline));
  SimResults uc = exp.Run(Scaled(Mode::kUncacheNoPim));
  EXPECT_LT(Speedup(base, uc), 1.0);
}

TEST(Integration, FpExtensionAblationForPrank) {
  // Without FP atomics, PRank cannot offload (Table III) and loses the
  // GraphPIM benefit.
  Experiment exp("ldbc", kN, "prank", SmallOpts());
  SimConfig with = Scaled(Mode::kGraphPim);
  SimConfig without = Scaled(Mode::kGraphPim);
  without.hmc.enable_fp_atomics = false;
  SimResults rw = exp.Run(with);
  SimResults ro = exp.Run(without);
  EXPECT_EQ(ro.offloaded_atomics, 0u);
  EXPECT_GT(rw.offloaded_atomics, 0u);
  EXPECT_LT(rw.cycles, ro.cycles);
}

TEST(Integration, BreakdownFractionsSane) {
  Experiment exp("ldbc", kN, "bfs", SmallOpts());
  SimResults base = exp.Run(Scaled(Mode::kBaseline));
  EXPECT_GT(base.ipc, 0.0);
  EXPECT_LE(base.frac_retiring + base.frac_frontend + base.frac_badspec, 1.0);
  EXPECT_GT(base.frac_backend, 0.4) << "graph workloads are backend bound (Fig 2)";
  EXPECT_GT(base.l3_mpki, 1.0);
}

TEST(Integration, IpcWellBelowOne) {
  // Fig 1: graph traversal workloads run far below IPC 1 per core.
  Experiment exp("ldbc", 16 * 1024, "bfs", SmallOpts());
  SimResults base = exp.Run(Scaled(Mode::kBaseline));
  EXPECT_LT(base.ipc, 0.5);
}

TEST(Integration, BitcoinAndTwitterProfilesRun) {
  for (const char* profile : {"bitcoin", "twitter"}) {
    Experiment exp(profile, 4 * 1024, "ccomp", SmallOpts());
    SimResults base = exp.Run(Scaled(Mode::kBaseline));
    SimResults pim = exp.Run(Scaled(Mode::kGraphPim));
    EXPECT_GT(Speedup(base, pim), 1.0) << profile;
  }
}

}  // namespace
}  // namespace graphpim::core
