// Tests for the machine configurations: routing per mode, applicability
// fallbacks, and the run harness.
#include <gtest/gtest.h>

#include "core/runner.h"
#include "core/system.h"

namespace graphpim::core {
namespace {

using cpu::MicroOp;
using cpu::OpType;

constexpr Addr kPmrBase = 0x4'0000'0000ULL;
constexpr Addr kPmrEnd = kPmrBase + 0x1000'0000ULL;

MicroOp PropAtomic(hmc::AtomicOp aop = hmc::AtomicOp::kDualAdd8, bool ret = false) {
  MicroOp op;
  op.type = OpType::kAtomic;
  op.addr = kPmrBase + 0x100;
  op.size = 8;
  op.aop = aop;
  op.comp = DataComponent::kProperty;
  if (ret) op.flags |= cpu::kFlagWantReturn;
  return op;
}

MicroOp PropLoad() {
  MicroOp op;
  op.type = OpType::kLoad;
  op.addr = kPmrBase + 0x200;
  op.size = 8;
  op.comp = DataComponent::kProperty;
  return op;
}

MicroOp MetaAtomic() {
  MicroOp op = PropAtomic();
  op.addr = 0x2000;
  op.comp = DataComponent::kMeta;
  return op;
}

SimConfig Cfg(Mode m) { return SimConfig::Scaled(m); }

TEST(MemorySystem, BaselineSerializesAllAtomics) {
  MemorySystem sys(Cfg(Mode::kBaseline), kPmrBase, kPmrEnd);
  auto out = sys.Access(0, PropAtomic(), 0);
  EXPECT_TRUE(out.serializing);
  EXPECT_FALSE(out.offloaded);
  EXPECT_DOUBLE_EQ(sys.stats().Get("pou.offloaded_atomics"), 0);
}

TEST(MemorySystem, GraphPimOffloadsPmrAtomics) {
  MemorySystem sys(Cfg(Mode::kGraphPim), kPmrBase, kPmrEnd);
  auto out = sys.Access(0, PropAtomic(), 0);
  EXPECT_FALSE(out.serializing);
  EXPECT_TRUE(out.offloaded);
  EXPECT_DOUBLE_EQ(sys.stats().Get("pou.offloaded_atomics"), 1);
  EXPECT_DOUBLE_EQ(sys.stats().Get("hmc.atomics"), 1);
}

TEST(MemorySystem, GraphPimKeepsMetaAtomicsOnHost) {
  MemorySystem sys(Cfg(Mode::kGraphPim), kPmrBase, kPmrEnd);
  auto out = sys.Access(0, MetaAtomic(), 0);
  EXPECT_TRUE(out.serializing);
  EXPECT_FALSE(out.offloaded);
  EXPECT_DOUBLE_EQ(sys.stats().Get("hmc.atomics"), 0);
}

TEST(MemorySystem, GraphPimBypassesPmrLoads) {
  MemorySystem sys(Cfg(Mode::kGraphPim), kPmrBase, kPmrEnd);
  sys.Access(0, PropLoad(), 0);
  EXPECT_DOUBLE_EQ(sys.stats().Get("pou.uc_reads"), 1);
  EXPECT_DOUBLE_EQ(sys.stats().Get("cache.l1_misses"), 0)
      << "UC accesses must not touch the hierarchy";
}

TEST(MemorySystem, PostedAtomicRetiresEarly) {
  MemorySystem sys(Cfg(Mode::kGraphPim), kPmrBase, kPmrEnd);
  auto posted = sys.Access(0, PropAtomic(hmc::AtomicOp::kDualAdd8, false), 0);
  EXPECT_LT(posted.retire_ready, posted.complete);
  auto ret = sys.Access(1, PropAtomic(hmc::AtomicOp::kCasEqual8, true), 0);
  EXPECT_EQ(ret.retire_ready, ret.complete);
}

TEST(MemorySystem, FpAtomicFallsBackWithoutExtension) {
  SimConfig cfg = Cfg(Mode::kGraphPim);
  cfg.hmc.enable_fp_atomics = false;
  MemorySystem sys(cfg, kPmrBase, kPmrEnd);
  auto out = sys.Access(0, PropAtomic(hmc::AtomicOp::kFpAdd64, true), 0);
  EXPECT_FALSE(out.offloaded);
  EXPECT_TRUE(out.serializing);  // UC host atomic degrades to bus locking
  EXPECT_DOUBLE_EQ(sys.stats().Get("pou.bus_lock_atomics"), 1);
}

TEST(MemorySystem, FpAtomicOffloadsWithExtension) {
  SimConfig cfg = Cfg(Mode::kGraphPim);
  cfg.hmc.enable_fp_atomics = true;
  MemorySystem sys(cfg, kPmrBase, kPmrEnd);
  auto out = sys.Access(0, PropAtomic(hmc::AtomicOp::kFpAdd64, true), 0);
  EXPECT_TRUE(out.offloaded);
}

TEST(MemorySystem, UPeiOffloadsOnMissExecutesOnHit) {
  MemorySystem sys(Cfg(Mode::kUPei), kPmrBase, kPmrEnd);
  // Cold: miss -> offload with cache-walk cost.
  auto miss = sys.Access(0, PropAtomic(hmc::AtomicOp::kCasEqual8, true), 0);
  EXPECT_TRUE(miss.offloaded);
  EXPECT_GT(miss.check_ticks, 0u);
  // Warm the line via a cacheable load path (PEI keeps the PMR cacheable).
  sys.Access(0, PropLoad(), 0);
  MicroOp warm = PropAtomic(hmc::AtomicOp::kCasEqual8, true);
  warm.addr = PropLoad().addr;
  auto hit = sys.Access(0, warm, NsToTicks(10000.0));
  EXPECT_FALSE(hit.offloaded);
  EXPECT_FALSE(hit.serializing);  // idealized PEI host execution
}

TEST(MemorySystem, UPeiPropertyLoadsStayCacheable) {
  MemorySystem sys(Cfg(Mode::kUPei), kPmrBase, kPmrEnd);
  sys.Access(0, PropLoad(), 0);
  EXPECT_DOUBLE_EQ(sys.stats().Get("pou.uc_reads"), 0);
  EXPECT_GE(sys.stats().Get("cache.l1_misses"), 1);
}

TEST(MemorySystem, UcSlotBackpressure) {
  SimConfig cfg = Cfg(Mode::kGraphPim);
  cfg.uc_queue_depth = 2;
  MemorySystem sys(cfg, kPmrBase, kPmrEnd);
  sys.Access(0, PropLoad(), 0);
  sys.Access(0, PropLoad(), 0);
  auto third = sys.Access(0, PropLoad(), 0);
  EXPECT_GT(third.issue_stall_until, 0u);
}

TEST(SimConfig, PresetsDiffer) {
  SimConfig paper = SimConfig::Paper(Mode::kBaseline);
  SimConfig scaled = SimConfig::Scaled(Mode::kBaseline);
  EXPECT_EQ(paper.cache.l3_size, 16 * kMiB);
  EXPECT_LT(scaled.cache.l3_size, paper.cache.l3_size);
  EXPECT_EQ(paper.num_cores, 16);
  EXPECT_EQ(paper.hmc.num_vaults, 32u);
  EXPECT_EQ(paper.hmc.banks_per_vault, 16u);
  EXPECT_FALSE(paper.Describe().empty());
}

TEST(SimConfig, ModeNames) {
  EXPECT_STREQ(ToString(Mode::kBaseline), "Baseline");
  EXPECT_STREQ(ToString(Mode::kUPei), "U-PEI");
  EXPECT_STREQ(ToString(Mode::kGraphPim), "GraphPIM");
  EXPECT_STREQ(ToString(Mode::kUncacheNoPim), "UC-NoPIM");
}

}  // namespace
}  // namespace graphpim::core
