// Golden byte-identity tests for the instrumentation substrate.
//
// The files under tests/golden/ were captured from the pre-registry
// simulator (string-keyed StatSet) with pinned flags:
//
//   graphpim_sim --workload=<w> --profile=ldbc --vertices=2048
//                --opcap=150000 --threads=8 --seed=1 --mode=<m> --jobs=1
//                [--link-ber=1e-7]
//
// JSON = the --json output (core::ToJson of the run); report = the
// `config:` .. `uncore energy:` section of the printed report. These tests
// re-run the same experiments through the public API and require the
// output to match BYTE FOR BYTE — the refactor contract is that interned
// handles, scope prefixing, and registry merging change how counters are
// stored, never what any report says.
#include <gtest/gtest.h>

#include <fstream>
#include <sstream>
#include <string>

#include "core/report.h"
#include "core/runner.h"
#include "fault/fault.h"

namespace graphpim {
namespace {

std::string GoldenPath(const std::string& name) {
  return std::string(GRAPHPIM_SOURCE_DIR) + "/tests/golden/" + name;
}

std::string ReadFile(const std::string& path) {
  std::ifstream f(path, std::ios::binary);
  EXPECT_TRUE(f.is_open()) << "missing golden file: " << path;
  std::ostringstream ss;
  ss << f.rdbuf();
  return ss.str();
}

// Extracts the deterministic section of a report: the `config:` line
// through the `uncore energy:` line (the surrounding driver chatter holds
// wall-clock timings that legitimately vary).
std::string ReportSection(const std::string& report) {
  std::istringstream in(report);
  std::string line, out;
  bool on = false;
  while (std::getline(in, line)) {
    if (!on && line.rfind("config:", 0) == 0) on = true;
    if (on) {
      out += line;
      out += '\n';
      if (line.rfind("uncore energy:", 0) == 0) break;
    }
  }
  return out;
}

// Re-creates the exact run the goldens were captured with. `mode_index`
// is the position of the mode in the driver's --mode list (one mode per
// golden), which feeds the fault-seed derivation.
core::SimResults RunPinned(const std::string& workload, core::Mode mode,
                           double link_ber) {
  core::Experiment::Options eo;
  eo.num_threads = 8;
  eo.seed = 1;
  eo.op_cap = 150'000;
  core::Experiment exp("ldbc", 2048, workload, eo);

  core::SimConfig sc = core::SimConfig::Scaled(mode);
  sc.num_cores = 8;
  sc.hmc.enable_fp_atomics = true;
  sc.hmc.link_bw_scale = 1.0;
  sc.pmr_hmc_fraction = 1.0;
  sc.hmc.fault.link_ber = link_ber;
  sc.hmc.fault.max_retries = 3;
  sc.hmc.fault.retry_latency = NsToTicks(8.0);
  sc.hmc.fault.seed = fault::DeriveFaultSeed(eo.seed, 0);
  return exp.Run(sc);
}

void ExpectMatchesGolden(const core::SimResults& r, const std::string& stem) {
  EXPECT_EQ(core::ToJson(r), ReadFile(GoldenPath(stem + ".json")))
      << stem << ": JSON drifted from the pre-registry golden";
  EXPECT_EQ(ReportSection(core::FormatReport(r)),
            ReadFile(GoldenPath(stem + ".report.txt")))
      << stem << ": report drifted from the pre-registry golden";
}

TEST(Golden, BfsBaselineByteIdentical) {
  ExpectMatchesGolden(RunPinned("bfs", core::Mode::kBaseline, 0.0),
                      "bfs_ldbc_v2048_baseline");
}

TEST(Golden, BfsGraphPimByteIdentical) {
  ExpectMatchesGolden(RunPinned("bfs", core::Mode::kGraphPim, 0.0),
                      "bfs_ldbc_v2048_graphpim");
}

TEST(Golden, DcGraphPimWithFaultsByteIdentical) {
  ExpectMatchesGolden(RunPinned("dc", core::Mode::kGraphPim, 1e-7),
                      "dc_ldbc_v2048_graphpim_ber1e-7");
}

}  // namespace
}  // namespace graphpim
