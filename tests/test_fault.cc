// src/fault tests: deterministic injection plans, the HMC link-retry and
// vault-stall timing model, poisoned-response recovery, the sweep journal
// (crash-safe resume), and fault-tolerant sweep execution — including the
// headline robustness property: fault injection is bit-identical across
// --jobs counts, and a killed-and-resumed sweep reproduces an
// uninterrupted run exactly.
#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <vector>

#include "common/log.h"
#include "core/report.h"
#include "exec/journal.h"
#include "exec/result_sink.h"
#include "exec/sweep.h"
#include "fault/fault.h"
#include "hmc/cube.h"
#include "hmc/link.h"

namespace graphpim {
namespace {

// ------------------------------------------------------------- FaultPlan

TEST(FaultPlan, DeterministicAcrossInstances) {
  fault::FaultParams p;
  p.link_ber = 1e-3;
  p.vault_stall_ppm = 100'000;
  p.poison_ppm = 100'000;
  p.seed = 42;
  fault::FaultPlan a(p);
  fault::FaultPlan b(p);
  for (int i = 0; i < 2000; ++i) {
    EXPECT_EQ(a.CorruptPacket(512), b.CorruptPacket(512)) << i;
    EXPECT_EQ(a.VaultStall(), b.VaultStall()) << i;
    EXPECT_EQ(a.PoisonAtomic(), b.PoisonAtomic()) << i;
  }
}

// Interleaving draws from other fault classes must not perturb a stream:
// decision n of a class is a pure function of (seed, class, n).
TEST(FaultPlan, StreamsAreIndependent) {
  fault::FaultParams p;
  p.link_ber = 1e-3;
  p.vault_stall_ppm = 200'000;
  p.poison_ppm = 200'000;
  p.seed = 7;
  fault::FaultPlan crc_only(p);
  fault::FaultPlan interleaved(p);
  for (int i = 0; i < 1000; ++i) {
    // The interleaved plan burns stall/poison decisions between CRC draws.
    interleaved.VaultStall();
    interleaved.PoisonAtomic();
    EXPECT_EQ(crc_only.CorruptPacket(256), interleaved.CorruptPacket(256)) << i;
  }
}

TEST(FaultPlan, SeedsDecorrelateDecisions) {
  fault::FaultParams p;
  p.link_ber = 0.5;  // one-bit packets corrupt with probability exactly 0.5
  p.seed = 1;
  fault::FaultParams q = p;
  q.seed = 2;
  fault::FaultPlan a(p);
  fault::FaultPlan b(q);
  int differ = 0;
  for (int i = 0; i < 512; ++i) {
    if (a.CorruptPacket(1) != b.CorruptPacket(1)) ++differ;
  }
  EXPECT_GT(differ, 100);  // ~50% expected; any correlation collapse fails
}

TEST(FaultPlan, CorruptPacketProbabilityEdges) {
  fault::FaultParams off;
  off.seed = 3;  // ber stays 0
  fault::FaultPlan none(off);
  fault::FaultParams certain = off;
  certain.link_ber = 1.0;
  fault::FaultPlan always(certain);
  fault::FaultParams tiny = off;
  tiny.link_ber = 1e-15;  // must survive log-space math without underflow
  fault::FaultPlan rare(tiny);
  for (int i = 0; i < 256; ++i) {
    EXPECT_FALSE(none.CorruptPacket(1 << 20));
    EXPECT_TRUE(always.CorruptPacket(1));
    EXPECT_FALSE(rare.CorruptPacket(128));
  }
  // Zero-bit packets can't corrupt even at BER 1.
  EXPECT_FALSE(always.CorruptPacket(0));
}

TEST(FaultPlan, DeriveFaultSeedIsPureAndDecorrelated) {
  EXPECT_EQ(fault::DeriveFaultSeed(123, 0), fault::DeriveFaultSeed(123, 0));
  EXPECT_NE(fault::DeriveFaultSeed(123, 0), fault::DeriveFaultSeed(123, 1));
  EXPECT_NE(fault::DeriveFaultSeed(123, 0), fault::DeriveFaultSeed(124, 0));
  // The derived seed must not just echo the cell seed.
  EXPECT_NE(fault::DeriveFaultSeed(123, 0), 123u);
}

TEST(FaultParams, EnabledAndDescribe) {
  fault::FaultParams p;
  EXPECT_FALSE(p.Enabled());
  EXPECT_EQ(p.Describe(), "faults off");
  p.link_ber = 1e-12;
  EXPECT_TRUE(p.Enabled());
  EXPECT_NE(p.Describe().find("link_ber"), std::string::npos);
}

// --------------------------------------------------- HMC link retry model

hmc::HmcParams QuietHmc() {
  hmc::HmcParams p;
  p.t_refi = 0;  // no refresh noise in latency comparisons
  return p;
}

TEST(HmcFault, LinkRxReadyTracksReservations) {
  hmc::Link link(NsToTicks(1.0));
  EXPECT_EQ(link.rx_ready(), 0u);
  Tick done = link.ReserveRx(4, NsToTicks(10.0));
  EXPECT_EQ(link.rx_ready(), done);
  EXPECT_EQ(link.tx_ready(), 0u);  // lanes are independent
  Tick done2 = link.ReserveRx(2, 0);
  EXPECT_EQ(link.rx_ready(), done2 > done ? done2 : done);
}

TEST(HmcFault, CertainCorruptionExhaustsRetriesAndPoisons) {
  hmc::HmcParams p = QuietHmc();
  p.fault.link_ber = 1.0;  // every serialization fails its CRC
  p.fault.max_retries = 2;
  p.fault.seed = 9;
  StatRegistry stats;
  hmc::HmcCube cube(p, &stats);
  hmc::Completion c = cube.Read(0x100, 64, 0);
  EXPECT_TRUE(c.poisoned);
  // Request and response lanes both exhaust: 2 retries each + the failed
  // initial serializations.
  EXPECT_GE(stats.Get("fault.link_crc_errors"), 4.0);
  EXPECT_EQ(stats.Get("fault.retry_exhausted"), 2.0);
  EXPECT_EQ(stats.Get("fault.link_retries"), 4.0);
  EXPECT_EQ(stats.Get("fault.poisoned_ops"), 1.0);

  // The give-up path still charges the replay attempts: latency must
  // exceed the clean read's by at least the retry penalties consumed.
  hmc::HmcParams clean = QuietHmc();
  hmc::HmcCube ideal(clean);
  hmc::Completion c0 = ideal.Read(0x100, 64, 0);
  EXPECT_GE(c.response_at_host,
            c0.response_at_host + 4 * p.fault.retry_latency);
}

TEST(HmcFault, ModerateBerRecoversMostPacketsViaRetry) {
  hmc::HmcParams p = QuietHmc();
  p.fault.link_ber = 1e-4;  // ~2.5% per 256-bit packet: retries, few deaths
  p.fault.seed = 11;
  StatRegistry stats;
  hmc::HmcCube cube(p, &stats);
  int poisoned = 0;
  for (int i = 0; i < 2000; ++i) {
    hmc::Completion c =
        cube.Read(static_cast<Addr>(i) * 4096, 64, static_cast<Tick>(i) * 100);
    if (c.poisoned) ++poisoned;
  }
  EXPECT_GT(stats.Get("fault.link_retries"), 0.0);
  EXPECT_GT(stats.Get("fault.retry_flits"), 0.0);
  // One retry at ~2.5% packet error recovers almost everything; triple
  // failures (needed to poison) are ~1e-5.
  EXPECT_LT(poisoned, 5);
  EXPECT_EQ(stats.Get("fault.poisoned_ops"), poisoned);
}

TEST(HmcFault, RetriesAreDeterministicPerSeed) {
  auto run = [](std::uint64_t seed) {
    hmc::HmcParams p;
    p.fault.link_ber = 1e-4;
    p.fault.seed = seed;
    StatRegistry stats;
    hmc::HmcCube cube(p, &stats);
    Tick last = 0;
    for (int i = 0; i < 500; ++i) {
      last = cube.Read(static_cast<Addr>(i) * 4096, 64,
                       static_cast<Tick>(i) * 100)
                 .response_at_host;
    }
    return std::make_pair(last, stats.Get("fault.link_retries"));
  };
  EXPECT_EQ(run(5), run(5));
  EXPECT_NE(run(5).second, run(6).second);
}

TEST(HmcFault, VaultStallsDelayEveryRequestAtFullRate) {
  hmc::HmcParams p = QuietHmc();
  p.fault.vault_stall_ppm = 1'000'000;  // every request stalls
  p.fault.vault_stall_ticks = NsToTicks(500.0);
  p.fault.seed = 13;
  StatRegistry stats;
  hmc::HmcCube stalled(p, &stats);
  hmc::HmcCube ideal(QuietHmc());
  hmc::Completion slow = stalled.Read(0x40, 64, 0);
  hmc::Completion fast = ideal.Read(0x40, 64, 0);
  EXPECT_EQ(slow.response_at_host, fast.response_at_host + NsToTicks(500.0));
  EXPECT_EQ(stats.Get("fault.vault_stalls"), 1.0);
  EXPECT_EQ(stats.Get("fault.vault_stall_ns"), 500.0);
  EXPECT_FALSE(slow.poisoned);  // a stall delays, it does not corrupt
}

TEST(HmcFault, AtomicPoisoningAtFullRateFlagsEveryOp) {
  hmc::HmcParams p = QuietHmc();
  p.fault.poison_ppm = 1'000'000;
  p.fault.seed = 17;
  StatRegistry stats;
  hmc::HmcCube cube(p, &stats);
  for (int i = 0; i < 8; ++i) {
    hmc::Completion c = cube.Atomic(static_cast<Addr>(i) * 4096,
                                    hmc::AtomicOp::kAdd16, hmc::Value16{},
                                    true, static_cast<Tick>(i) * 1000);
    EXPECT_TRUE(c.poisoned);
  }
  EXPECT_EQ(stats.Get("fault.poisoned_atomics"), 8.0);
  EXPECT_EQ(stats.Get("fault.poisoned_ops"), 8.0);
  // Reads are not atomics: they stay clean under poison_ppm.
  EXPECT_FALSE(cube.Read(0x9000, 64, 0).poisoned);
}

// The acceptance gate for the whole subsystem: all-zero knobs must leave
// the timing model bit-identical to an ideal cube, even with a nonzero
// seed plumbed through.
TEST(HmcFault, ZeroKnobsAreBitIdenticalToIdealCube) {
  hmc::HmcParams faulty = QuietHmc();
  faulty.fault.seed = 0xdeadbeef;  // knobs all zero; plan disabled
  StatRegistry stats;
  hmc::HmcCube a(faulty, &stats);
  hmc::HmcCube b(QuietHmc());
  for (int i = 0; i < 200; ++i) {
    const Addr addr = static_cast<Addr>(i * 37) * 256;
    const Tick when = static_cast<Tick>(i) * 50;
    hmc::Completion ca = a.Read(addr, 64, when);
    hmc::Completion cb = b.Read(addr, 64, when);
    EXPECT_EQ(ca.response_at_host, cb.response_at_host) << i;
    EXPECT_EQ(ca.internal_done, cb.internal_done) << i;
    hmc::Completion aa =
        a.Atomic(addr, hmc::AtomicOp::kAdd16, hmc::Value16{}, true, when);
    hmc::Completion ab =
        b.Atomic(addr, hmc::AtomicOp::kAdd16, hmc::Value16{}, true, when);
    EXPECT_EQ(aa.response_at_host, ab.response_at_host) << i;
  }
  EXPECT_EQ(stats.Get("fault.link_crc_errors"), 0.0);
  EXPECT_EQ(stats.Get("fault.vault_stalls"), 0.0);
  EXPECT_EQ(stats.Get("fault.poisoned_ops"), 0.0);
}

// ----------------------------------------------------------- sweep grids

exec::SweepGrid SmallGrid(const std::string& extra = "") {
  exec::SweepGrid g =
      exec::ParseGridSpec("workloads=bfs;modes=baseline,graphpim" + extra);
  g.vertices = 2048;
  g.op_cap = 120'000;
  g.sim_threads = 4;
  for (auto& c : g.configs) c.num_cores = 4;
  return g;
}

std::string TempPath(const char* name) {
  return ::testing::TempDir() + "/" + name;
}

TEST(SweepFault, FailingCellsAreIsolated) {
  exec::SweepGrid g = SmallGrid();
  g.workloads.push_back("no-such-workload");
  exec::SweepRunner::Options opts;
  opts.jobs = 2;
  exec::SweepResultTable t = exec::SweepRunner(opts).Run(g);
  ASSERT_EQ(t.rows.size(), 4u);
  EXPECT_EQ(t.failed_rows, 2u);
  // The healthy cell is untouched by its neighbor's failure.
  exec::SweepResultTable healthy = exec::SweepRunner(opts).Run(SmallGrid());
  for (std::size_t i = 0; i < 2; ++i) {
    EXPECT_EQ(t.rows[i].status, exec::JobStatus::kOk);
    EXPECT_EQ(core::ToJson(t.rows[i].results),
              core::ToJson(healthy.rows[i].results));
  }
  for (std::size_t i = 2; i < 4; ++i) {
    EXPECT_EQ(t.rows[i].status, exec::JobStatus::kFailed);
    EXPECT_NE(t.rows[i].error.find("unknown workload"), std::string::npos);
    EXPECT_EQ(t.rows[i].results.cycles, 0u);
  }
  // Failed rows surface in the JSON sink but not as bogus metrics.
  const std::string json = exec::ToJson(t);
  EXPECT_NE(json.find("\"status\": \"failed\""), std::string::npos);
  EXPECT_NE(json.find("unknown workload"), std::string::npos);
}

TEST(SweepFault, InjectionIsBitIdenticalAcrossJobCounts) {
  exec::SweepGrid g = SmallGrid(";link_ber=1e-6;vault_stall_ppm=500;poison_ppm=50");
  exec::SweepRunner::Options serial;
  serial.jobs = 1;
  exec::SweepRunner::Options parallel;
  parallel.jobs = 4;
  exec::SweepResultTable a = exec::SweepRunner(serial).Run(g);
  exec::SweepResultTable b = exec::SweepRunner(parallel).Run(g);
  ASSERT_EQ(a.rows.size(), b.rows.size());
  double injected = 0;
  for (std::size_t i = 0; i < a.rows.size(); ++i) {
    EXPECT_EQ(core::ToJson(a.rows[i].results), core::ToJson(b.rows[i].results))
        << "row " << i;
    injected += static_cast<double>(a.rows[i].results.link_crc_errors +
                                    a.rows[i].results.vault_stalls +
                                    a.rows[i].results.poisoned_ops);
  }
  EXPECT_EQ(exec::ToDeterministicCsv(a), exec::ToDeterministicCsv(b));
  // The knobs must actually inject something, or this test proves nothing.
  EXPECT_GT(injected, 0.0);
}

TEST(SweepFault, FaultKnobsChangeResultsButStayDeterministic) {
  exec::SweepRunner::Options opts;
  opts.jobs = 2;
  exec::SweepResultTable ideal = exec::SweepRunner(opts).Run(SmallGrid());
  exec::SweepResultTable faulty =
      exec::SweepRunner(opts).Run(SmallGrid(";link_ber=1e-6;vault_stall_ppm=500"));
  ASSERT_EQ(ideal.rows.size(), faulty.rows.size());
  for (const exec::SweepRow& r : ideal.rows) {
    EXPECT_EQ(r.results.link_crc_errors, 0u);
    EXPECT_EQ(r.results.vault_stalls, 0u);
  }
  // Degraded runs can only be slower, never faster.
  for (std::size_t i = 0; i < ideal.rows.size(); ++i) {
    EXPECT_GE(faulty.rows[i].results.cycles, ideal.rows[i].results.cycles);
  }
}

// ---------------------------------------------------------- journal/resume

TEST(Journal, FingerprintCoversGridShapeAndFaultKnobs) {
  exec::SweepGrid a = SmallGrid();
  EXPECT_EQ(exec::GridFingerprint(a), exec::GridFingerprint(SmallGrid()));
  EXPECT_NE(exec::GridFingerprint(a),
            exec::GridFingerprint(SmallGrid(";link_ber=1e-9")));
  exec::SweepGrid c = SmallGrid();
  c.base_seed = 99;
  EXPECT_NE(exec::GridFingerprint(a), exec::GridFingerprint(c));
  exec::SweepGrid d = SmallGrid();
  d.workloads.push_back("prank");
  EXPECT_NE(exec::GridFingerprint(a), exec::GridFingerprint(d));
}

TEST(Journal, WriterThrowsOnUnwritablePath) {
  exec::JournalWriter w;
  EXPECT_THROW(w.Open("/no-such-dir-anywhere/rows.jsonl", "fp"), SimError);
}

TEST(Journal, RowsRoundTripBitExactly) {
  const std::string path = TempPath("journal_roundtrip.jsonl");
  std::remove(path.c_str());

  exec::SweepRunner::Options opts;
  opts.jobs = 2;
  opts.journal_path = path;
  exec::SweepResultTable t = exec::SweepRunner(opts).Run(SmallGrid());

  exec::JournalData jd;
  ASSERT_TRUE(exec::LoadJournal(path, &jd));
  EXPECT_EQ(jd.fingerprint, exec::GridFingerprint(SmallGrid()));
  EXPECT_EQ(jd.dropped_lines, 0u);
  ASSERT_EQ(jd.rows.size(), t.rows.size());
  for (std::size_t i = 0; i < t.rows.size(); ++i) {
    const exec::SweepRow& orig = t.rows[i];
    const exec::SweepRow& back = jd.rows[i];
    EXPECT_TRUE(back.from_journal);
    EXPECT_EQ(back.workload, orig.workload);
    EXPECT_EQ(back.seed, orig.seed);
    // Bit-exact payload: every double survives the %.17g round trip.
    EXPECT_EQ(core::ToJson(back.results), core::ToJson(orig.results)) << i;
    EXPECT_EQ(back.results.seconds, orig.results.seconds);
    EXPECT_EQ(back.results.energy.link_j, orig.results.energy.link_j);
    // AllItems: the journal round-trips the full registry, including the
    // merged core.* totals the compat Items() view hides.
    EXPECT_EQ(back.results.raw.AllItems(), orig.results.raw.AllItems());
  }
  std::remove(path.c_str());
}

// Simulates a SIGKILL mid-sweep: journal truncated to a strict prefix plus
// a torn trailing line. The resumed run must reproduce the uninterrupted
// table bit for bit and only re-simulate the missing coordinates.
TEST(Journal, ResumeAfterTruncationIsBitIdentical) {
  const std::string path = TempPath("journal_resume.jsonl");
  std::remove(path.c_str());

  exec::SweepRunner::Options opts;
  opts.jobs = 2;
  opts.journal_path = path;
  exec::SweepResultTable full = exec::SweepRunner(opts).Run(SmallGrid());

  // Keep header + first row, then a torn half-line (mid-write kill).
  std::vector<std::string> lines;
  {
    std::FILE* f = std::fopen(path.c_str(), "r");
    ASSERT_NE(f, nullptr);
    std::string cur;
    int ch;
    while ((ch = std::fgetc(f)) != EOF) {
      if (ch == '\n') {
        lines.push_back(cur);
        cur.clear();
      } else {
        cur += static_cast<char>(ch);
      }
    }
    std::fclose(f);
  }
  ASSERT_GE(lines.size(), 3u);
  {
    std::FILE* f = std::fopen(path.c_str(), "w");
    ASSERT_NE(f, nullptr);
    std::fprintf(f, "%s\n%s\n", lines[0].c_str(), lines[1].c_str());
    std::fprintf(f, "%s", lines[2].substr(0, lines[2].size() / 2).c_str());
    std::fclose(f);
  }

  exec::SweepRunner::Options resume_opts = opts;
  resume_opts.resume = true;
  exec::SweepResultTable resumed = exec::SweepRunner(resume_opts).Run(SmallGrid());
  EXPECT_EQ(resumed.resumed_rows, 1u);
  ASSERT_EQ(resumed.rows.size(), full.rows.size());
  EXPECT_TRUE(resumed.rows[0].from_journal);
  EXPECT_FALSE(resumed.rows[1].from_journal);
  EXPECT_EQ(exec::ToDeterministicCsv(resumed), exec::ToDeterministicCsv(full));

  // The re-simulated row was re-journaled: a second resume restores both.
  exec::SweepResultTable again = exec::SweepRunner(resume_opts).Run(SmallGrid());
  EXPECT_EQ(again.resumed_rows, 2u);
  EXPECT_EQ(exec::ToDeterministicCsv(again), exec::ToDeterministicCsv(full));
  std::remove(path.c_str());
}

TEST(Journal, ResumeRejectsForeignFingerprint) {
  const std::string path = TempPath("journal_foreign.jsonl");
  std::remove(path.c_str());
  exec::SweepRunner::Options opts;
  opts.jobs = 1;
  opts.journal_path = path;
  exec::SweepRunner(opts).Run(SmallGrid());

  exec::SweepRunner::Options resume_opts = opts;
  resume_opts.resume = true;
  EXPECT_THROW(
      exec::SweepRunner(resume_opts).Run(SmallGrid(";link_ber=1e-9")),
      SimError);
  std::remove(path.c_str());
}

// ------------------------------------------------------------- watchdog

// With a sub-millisecond timeout every job is "overdue", so a retry is
// spawned for each — but originals complete OK and must win, keeping the
// result table bit-identical to an undisturbed run.
TEST(SweepFault, WatchdogPrefersCompletedOriginals) {
  exec::SweepRunner::Options plain;
  plain.jobs = 2;
  exec::SweepResultTable ref = exec::SweepRunner(plain).Run(SmallGrid());

  exec::SweepRunner::Options wd = plain;
  wd.job_timeout_ms = 0.01;
  exec::SweepResultTable t = exec::SweepRunner(wd).Run(SmallGrid());
  ASSERT_EQ(t.rows.size(), ref.rows.size());
  for (std::size_t i = 0; i < t.rows.size(); ++i) {
    EXPECT_EQ(t.rows[i].status, exec::JobStatus::kOk);
    EXPECT_EQ(t.rows[i].seed, ref.rows[i].seed);  // original's seed kept
    EXPECT_EQ(core::ToJson(t.rows[i].results), core::ToJson(ref.rows[i].results))
        << "row " << i;
  }
  EXPECT_EQ(exec::ToDeterministicCsv(t), exec::ToDeterministicCsv(ref));
}

}  // namespace
}  // namespace graphpim
