// Tests for the HMC model: FLIT accounting (Table V), bank timing, bank
// locking during RMW, FU pools, links, address mapping, functional store,
// and the epoch throttle.
#include <gtest/gtest.h>

#include <set>

#include "hmc/cube.h"
#include "hmc/flit.h"
#include "hmc/throttle.h"

namespace graphpim::hmc {
namespace {

TEST(Flits, TableV) {
  // 64-byte READ: 1 request FLIT, 5 response FLITs.
  EXPECT_EQ(ReadRequestFlits(64), 1u);
  EXPECT_EQ(ReadResponseFlits(64), 5u);
  // 64-byte WRITE: 5 request FLITs, 1 response FLIT.
  EXPECT_EQ(WriteRequestFlits(64), 5u);
  EXPECT_EQ(WriteResponseFlits(64), 1u);
  // add without return: 2 request, 1 response.
  EXPECT_EQ(AtomicRequestFlits(AtomicOp::kAdd16), 2u);
  EXPECT_EQ(AtomicResponseFlits(AtomicOp::kAdd16, false), 1u);
  // add with return: 2 request, 2 response.
  EXPECT_EQ(AtomicResponseFlits(AtomicOp::kAdd16Ret, true), 2u);
  // boolean/bitwise/CAS: 2 request, 2 response.
  EXPECT_EQ(AtomicRequestFlits(AtomicOp::kCasEqual8), 2u);
  EXPECT_EQ(AtomicResponseFlits(AtomicOp::kCasEqual8, true), 2u);
  EXPECT_EQ(AtomicResponseFlits(AtomicOp::kSwap16, true), 2u);
  // compare-if-equal: 2 request, 1 response (flag only).
  EXPECT_EQ(AtomicResponseFlits(AtomicOp::kCompareEqual16, true), 1u);
}

TEST(Flits, SubLineSizes) {
  // GraphPIM's exact-size UC accesses use fewer FLITs than line fills.
  EXPECT_EQ(ReadResponseFlits(8), 2u);
  EXPECT_EQ(WriteRequestFlits(8), 2u);
  EXPECT_LT(ReadResponseFlits(8), ReadResponseFlits(64));
}

TEST(Throttle, AdmitsUpToCapacityPerEpoch) {
  EpochThrottle t(/*epoch=*/1000, /*per_unit=*/100);  // capacity 10
  Tick first = t.Reserve(1, 0);
  EXPECT_EQ(first, 100u);
  // Ten units fill epoch 0; the eleventh spills into epoch 1.
  for (int i = 0; i < 9; ++i) t.Reserve(1, 0);
  Tick spill = t.Reserve(1, 0);
  EXPECT_GE(spill, 1000u);
}

TEST(Throttle, OutOfOrderReservationsDoNotBlockEarlier) {
  EpochThrottle t(1000, 100);
  // A far-future reservation must not delay an earlier one.
  t.Reserve(1, 50000);
  Tick early = t.Reserve(1, 0);
  EXPECT_LE(early, 200u);
}

TEST(Throttle, TracksBusyTime) {
  EpochThrottle t(1000, 100);
  t.Reserve(3, 0);
  EXPECT_EQ(t.busy_ticks(), 300u);
}

HmcParams TestParams() {
  HmcParams p;
  return p;
}

TEST(Cube, VaultMappingCoversAllVaults) {
  HmcCube cube(TestParams());
  std::set<std::uint32_t> vaults;
  for (Addr a = 0; a < 64 * 64; a += 64) vaults.insert(cube.VaultOf(a));
  EXPECT_EQ(vaults.size(), 32u);
}

TEST(Cube, VaultLocalAddrIndependentOfVaultBits) {
  HmcCube cube(TestParams());
  // Two addresses in different vaults with the same local offset pattern
  // must decode to the same local address.
  Addr a = 0x10000;
  Addr b = a + 64;  // next vault
  EXPECT_NE(cube.VaultOf(a), cube.VaultOf(b));
  EXPECT_EQ(cube.VaultLocalAddr(a), cube.VaultLocalAddr(b));
}

TEST(Cube, ReadLatencyComponents) {
  HmcCube cube(TestParams());
  Completion c = cube.Read(0x1000, 64, 0);
  // Idle read: link + xbar + ctrl + tRCD + tCL + burst + response.
  double ns = TicksToNs(c.response_at_host);
  EXPECT_GT(ns, 30.0);
  EXPECT_LT(ns, 60.0);
  EXPECT_EQ(c.req_flits, 1u);
  EXPECT_EQ(c.resp_flits, 5u);
}

TEST(Cube, RowHitFasterThanRowMiss) {
  HmcCube cube(TestParams());
  Completion first = cube.Read(0x2000, 8, 0);
  EXPECT_FALSE(first.row_hit);
  // Same row, later access: row hit, shorter bank time.
  Completion second = cube.Read(0x2008, 8, first.internal_done + 1000);
  EXPECT_TRUE(second.row_hit);
  Tick t1 = first.response_at_host;
  Tick t2 = second.response_at_host - (first.internal_done + 1000);
  EXPECT_LT(t2, t1);
}

TEST(Cube, BankLockedDuringAtomic) {
  HmcCube cube(TestParams());
  // An atomic locks its bank; a read right behind it to the same bank must
  // wait for the full RMW (including write-back).
  Completion a = cube.Atomic(0x4000, AtomicOp::kAdd16, Value16{1, 0}, false, 0);
  Completion r = cube.Read(0x4000, 8, 0);
  EXPECT_GE(r.internal_done, a.internal_done);
}

TEST(Cube, AtomicResponseBeforeWriteback) {
  HmcCube cube(TestParams());
  Completion a = cube.Atomic(0x6000, AtomicOp::kAdd16Ret, Value16{1, 0}, true, 0);
  // The response leaves once the FU has the result; the bank frees later
  // (after write recovery).
  EXPECT_GT(a.internal_done, 0u);
  EXPECT_EQ(a.resp_flits, 2u);
}

TEST(Cube, SingleFpFuSerializes) {
  HmcParams p = TestParams();
  p.fp_fus_per_vault = 1;
  HmcCube one(p);
  // Two FP atomics to the same vault, different banks: FU is shared.
  Addr a1 = 0x0;                  // vault 0
  Addr a2 = 64ull * 32 * 32;      // vault 0, different bank region
  ASSERT_EQ(one.VaultOf(a1), one.VaultOf(a2));
  Completion c1 = one.Atomic(a1, AtomicOp::kFpAdd64, Value16{}, false, 0);
  Completion c2 = one.Atomic(a2, AtomicOp::kFpAdd64, Value16{}, false, 0);
  (void)c1;
  // The FP FU busy time equals two op latencies (they did not overlap).
  EXPECT_EQ(one.TotalFpFuBusy(), 2 * p.fu_fp_latency);
  EXPECT_GT(c2.response_at_host, c1.response_at_host);
}

TEST(Cube, FpAtomicRequiresExtension) {
  HmcParams p = TestParams();
  p.enable_fp_atomics = true;
  HmcCube cube(p);
  Completion c = cube.Atomic(0x100, AtomicOp::kFpAdd64, Value16{}, false, 0);
  EXPECT_GT(c.response_at_host, 0u);
}

TEST(Cube, FunctionalAtomicChain) {
  HmcCube cube(TestParams());
  cube.set_functional(true);
  Addr a = 0x9000;
  cube.FunctionalWrite(a, Value16{10, 0});
  cube.Atomic(a, AtomicOp::kAdd16, Value16{5, 0}, false, 0);
  cube.Atomic(a, AtomicOp::kAdd16, Value16{7, 0}, false, 0);
  EXPECT_EQ(cube.FunctionalRead(a).lo, 22u);
  // CAS only fires on match.
  Completion c = cube.Atomic(a, AtomicOp::kCasEqual8, Value16{99, 22}, true, 0);
  EXPECT_TRUE(c.outcome.flag);
  EXPECT_EQ(cube.FunctionalRead(a).lo, 99u);
}

TEST(Cube, StatsAccumulateFlits) {
  StatRegistry stats;
  HmcCube cube(TestParams(), &stats);
  cube.Read(0, 64, 0);
  cube.Write(64, 64, 0);
  cube.Atomic(128, AtomicOp::kAdd16, Value16{}, false, 0);
  EXPECT_DOUBLE_EQ(stats.Get("hmc.reads"), 1);
  EXPECT_DOUBLE_EQ(stats.Get("hmc.writes"), 1);
  EXPECT_DOUBLE_EQ(stats.Get("hmc.atomics"), 1);
  EXPECT_DOUBLE_EQ(stats.Get("hmc.req_flits"), 1 + 5 + 2);
  EXPECT_DOUBLE_EQ(stats.Get("hmc.resp_flits"), 5 + 1 + 1);
}

TEST(Cube, LinkBandwidthScaleSpeedsSerialization) {
  HmcParams slow = TestParams();
  slow.link_bw_scale = 0.01;  // pathological: make serialization dominant
  HmcParams fast = TestParams();
  fast.link_bw_scale = 1.0;
  HmcCube s(slow);
  HmcCube f(fast);
  Tick ts = s.Read(0, 64, 0).response_at_host;
  Tick tf = f.Read(0, 64, 0).response_at_host;
  EXPECT_GT(ts, tf);
}

TEST(Cube, ClosedPageUniformLatency) {
  HmcParams p = TestParams();
  p.closed_page = true;
  HmcCube cube(p);
  // Same row back to back: closed-page never row-hits, both accesses see
  // the same activate+access latency.
  Completion a = cube.Read(0x2000, 8, 0);
  Completion b = cube.Read(0x2008, 8, a.internal_done + 10000);
  EXPECT_FALSE(a.row_hit);
  EXPECT_FALSE(b.row_hit);
}

TEST(Cube, RefreshWindowStallsAccess) {
  HmcParams p = TestParams();
  p.t_refi = NsToTicks(1000.0);
  p.t_rfc = NsToTicks(200.0);
  StatRegistry stats;
  HmcCube cube(p, &stats);
  // Land inside the refresh window [800ns, 1000ns).
  cube.Read(0x3000, 8, NsToTicks(850.0));
  EXPECT_GE(stats.Get("hmc.refresh_stalls"), 1.0);
}

TEST(Cube, RefreshDisabled) {
  HmcParams p = TestParams();
  p.t_refi = 0;
  StatRegistry stats;
  HmcCube cube(p, &stats);
  cube.Read(0x3000, 8, NsToTicks(850.0));
  EXPECT_DOUBLE_EQ(stats.Get("hmc.refresh_stalls"), 0.0);
}

TEST(Cube, TightTrasGatesRowCycling) {
  HmcParams p = TestParams();
  HmcCube cube(p);
  // Conflicting rows in the same bank back to back: the second access
  // cannot precharge until tRAS after the first activate.
  Addr row0 = 0x0;
  Addr row1 = 64ull * 32 * 32 * 16;  // same vault+bank, different row
  ASSERT_EQ(cube.VaultOf(row0), cube.VaultOf(row1));
  Completion c0 = cube.Read(row0, 8, 0);
  Completion c1 = cube.Read(row1, 8, 0);
  EXPECT_FALSE(c1.row_hit);
  EXPECT_GT(c1.response_at_host, c0.response_at_host);
}

}  // namespace
}  // namespace graphpim::hmc
