// Tests for the graph framework: generators, CSR, regions, properties, I/O.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>

#include "graph/csr.h"
#include "graph/edge_list.h"
#include "graph/generator.h"
#include "graph/property.h"
#include "graph/region.h"

namespace graphpim::graph {
namespace {

TEST(Region, BumpAllocatesAligned) {
  Region r(0x1000, 4096);
  Addr a = r.Allocate(10, 64);
  Addr b = r.Allocate(10, 64);
  EXPECT_EQ(a % 64, 0u);
  EXPECT_EQ(b % 64, 0u);
  EXPECT_GE(b, a + 10);
  EXPECT_EQ(r.used_bytes(), b + 10 - 0x1000);
}

TEST(Region, ResetReclaims) {
  Region r(0, 4096);
  r.Allocate(1000);
  r.Reset();
  EXPECT_EQ(r.used_bytes(), 0u);
}

TEST(AddressSpace, SegmentsDisjointAndClassified) {
  AddressSpace space;
  Addr m = space.meta().Allocate(64);
  Addr s = space.structure().Allocate(64);
  Addr p = space.PmrMalloc(64);
  EXPECT_EQ(space.ComponentOf(m), DataComponent::kMeta);
  EXPECT_EQ(space.ComponentOf(s), DataComponent::kStructure);
  EXPECT_EQ(space.ComponentOf(p), DataComponent::kProperty);
  EXPECT_GE(p, space.pmr_base());
  EXPECT_LT(p, space.pmr_end());
}

TEST(PropertyArray, StrideSeparatesVertices) {
  AddressSpace space;
  PropertyArray<std::int64_t> prop(space.pmr(), 100, -1);
  EXPECT_EQ(prop.stride(), kVertexPropertyStride);
  EXPECT_EQ(prop.AddrOf(1) - prop.AddrOf(0), kVertexPropertyStride);
  EXPECT_EQ(prop[5], -1);
  prop[5] = 9;
  EXPECT_EQ(prop[5], 9);
  // No two vertices share a cache line under the default stride.
  EXPECT_NE(prop.AddrOf(0) / 64, prop.AddrOf(1) / 64);
}

TEST(PropertyArray, PackedStrideOption) {
  AddressSpace space;
  PropertyArray<double> packed(space.meta(), 16, 0.0, sizeof(double));
  EXPECT_EQ(packed.AddrOf(1) - packed.AddrOf(0), sizeof(double));
}

TEST(Generator, Deterministic) {
  RmatParams p;
  p.num_vertices = 1024;
  p.avg_degree = 8;
  EdgeList a = GenerateRmat(p);
  EdgeList b = GenerateRmat(p);
  ASSERT_EQ(a.edges.size(), b.edges.size());
  EXPECT_TRUE(std::equal(a.edges.begin(), a.edges.end(), b.edges.begin()));
}

TEST(Generator, SeedChangesGraph) {
  RmatParams p;
  p.num_vertices = 1024;
  p.avg_degree = 8;
  EdgeList a = GenerateRmat(p);
  p.seed = 99;
  EdgeList b = GenerateRmat(p);
  EXPECT_FALSE(std::equal(a.edges.begin(), a.edges.end(), b.edges.begin()));
}

TEST(Generator, TargetEdgeCountAndNoSelfLoops) {
  RmatParams p;
  p.num_vertices = 2048;
  p.avg_degree = 10;
  EdgeList el = GenerateRmat(p);
  EXPECT_EQ(el.num_vertices, 2048u);
  EXPECT_EQ(el.edges.size(), 20480u);
  for (const Edge& e : el.edges) {
    EXPECT_NE(e.src, e.dst);
    EXPECT_LT(e.src, el.num_vertices);
    EXPECT_LT(e.dst, el.num_vertices);
    EXPECT_GE(e.weight, 1u);
    EXPECT_LE(e.weight, p.max_weight);
  }
}

TEST(Generator, DegreeCapHolds) {
  RmatParams p;
  p.num_vertices = 4096;
  p.avg_degree = 8;
  p.max_degree_factor = 4.0;  // cap = 32
  EdgeList el = GenerateRmat(p);
  std::vector<std::uint32_t> in(el.num_vertices, 0);
  std::vector<std::uint32_t> out(el.num_vertices, 0);
  for (const Edge& e : el.edges) {
    ++out[e.src];
    ++in[e.dst];
  }
  for (VertexId v = 0; v < el.num_vertices; ++v) {
    EXPECT_LE(in[v], 33u);
    EXPECT_LE(out[v], 33u);
  }
}

TEST(Generator, SkewedDegreesVsUniform) {
  RmatParams p;
  p.num_vertices = 8192;
  p.avg_degree = 16;
  p.max_degree_factor = 16.0;
  EdgeList rmat = GenerateRmat(p);
  EdgeList uni = GenerateUniform(8192, 16, 1);
  auto max_out = [](const EdgeList& el) {
    std::vector<std::uint32_t> out(el.num_vertices, 0);
    for (const Edge& e : el.edges) ++out[e.src];
    return *std::max_element(out.begin(), out.end());
  };
  EXPECT_GT(max_out(rmat), 2 * max_out(uni));
}

TEST(Generator, Profiles) {
  EdgeList ldbc = GenerateProfile("ldbc", 1024, 1);
  EXPECT_NEAR(static_cast<double>(ldbc.edges.size()) / ldbc.num_vertices, 28.8, 0.1);
  EdgeList btc = GenerateProfile("bitcoin", 1024, 1);
  EXPECT_NEAR(static_cast<double>(btc.edges.size()) / btc.num_vertices, 2.5, 0.1);
  EdgeList tw = GenerateProfile("twitter", 1024, 1);
  EXPECT_NEAR(static_cast<double>(tw.edges.size()) / tw.num_vertices, 7.7, 0.1);
}

TEST(Generator, LdbcNames) {
  EXPECT_EQ(LdbcSizeFromName("ldbc-1k"), 1024u);
  EXPECT_EQ(LdbcSizeFromName("ldbc-10k"), 10u * 1024);
  EXPECT_EQ(LdbcSizeFromName("ldbc-100k"), 100u * 1024);
  EXPECT_EQ(LdbcSizeFromName("ldbc-1m"), 1024u * 1024);
}

TEST(Csr, BuildsOffsetsAndSortedNeighbors) {
  EdgeList el;
  el.num_vertices = 4;
  el.edges = {{0, 2, 5}, {0, 1, 3}, {2, 3, 1}, {0, 3, 2}};
  AddressSpace space;
  CsrGraph g(el, space);
  EXPECT_EQ(g.num_vertices(), 4u);
  EXPECT_EQ(g.num_edges(), 4u);
  EXPECT_EQ(g.OutDegree(0), 3u);
  EXPECT_EQ(g.OutDegree(1), 0u);
  EXPECT_EQ(g.OutDegree(2), 1u);
  auto n0 = g.Neighbors(0);
  ASSERT_EQ(n0.size(), 3u);
  EXPECT_TRUE(std::is_sorted(n0.begin(), n0.end()));
  // Weights follow their edges through the sort.
  auto w0 = g.Weights(0);
  EXPECT_EQ(n0[0], 1u);
  EXPECT_EQ(w0[0], 3u);
  EXPECT_EQ(n0[1], 2u);
  EXPECT_EQ(w0[1], 5u);
}

TEST(Csr, DedupKeepsFirstWeight) {
  EdgeList el;
  el.num_vertices = 3;
  el.edges = {{0, 1, 7}, {0, 1, 9}, {0, 2, 1}};
  AddressSpace space;
  CsrGraph g(el, space, /*dedup=*/true);
  EXPECT_EQ(g.num_edges(), 2u);
  EXPECT_EQ(g.OutDegree(0), 2u);
}

TEST(Csr, StructureAddressesInStructureSegment) {
  EdgeList el = GenerateUniform(64, 4, 3);
  AddressSpace space;
  CsrGraph g(el, space);
  EXPECT_EQ(space.ComponentOf(g.OffsetAddr(0)), DataComponent::kStructure);
  EXPECT_EQ(space.ComponentOf(g.NeighborAddr(0)), DataComponent::kStructure);
  EXPECT_EQ(space.ComponentOf(g.WeightAddr(0)), DataComponent::kStructure);
  EXPECT_GT(g.StructureBytes(), 0u);
}

TEST(Csr, EdgeIdsMatchOffsets) {
  EdgeList el = GenerateUniform(128, 8, 5);
  AddressSpace space;
  CsrGraph g(el, space);
  EdgeId total = 0;
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    EXPECT_EQ(g.OffsetOf(v), total);
    total += g.OutDegree(v);
  }
  EXPECT_EQ(total, g.num_edges());
}

TEST(EdgeListIo, RoundTrip) {
  EdgeList el;
  el.num_vertices = 5;
  el.edges = {{0, 1, 2}, {3, 4, 7}, {2, 0, 1}};
  std::string path = ::testing::TempDir() + "/graphpim_el_test.txt";
  ASSERT_TRUE(SaveEdgeList(el, path));
  EdgeList in;
  ASSERT_TRUE(LoadEdgeList(path, &in));
  ASSERT_EQ(in.edges.size(), el.edges.size());
  EXPECT_EQ(in.num_vertices, 5u);
  EXPECT_TRUE(std::equal(el.edges.begin(), el.edges.end(), in.edges.begin()));
  std::remove(path.c_str());
}

TEST(EdgeListIo, LoadMissingFileFails) {
  EdgeList el;
  EXPECT_FALSE(LoadEdgeList("/nonexistent/path/x.el", &el));
}

}  // namespace
}  // namespace graphpim::graph
