// src/telemetry tests (DESIGN.md §17): WindowSampler boundary math, the
// JSONL/Chrome-counter exporters, the sink-required config gate, windowed
// end-to-end runs (delta conservation, rerun/shard determinism, strict
// off-identity), serve per-window gauges, the journal timeline sidecar,
// and the run-comparison engine behind tools/graphpim_compare.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>
#include <utility>
#include <vector>

#include "common/config.h"
#include "common/log.h"
#include "common/stats.h"
#include "core/report.h"
#include "core/runner.h"
#include "core/sim_config.h"
#include "exec/journal.h"
#include "exec/sweep.h"
#include "serve/engine.h"
#include "serve/slo.h"
#include "telemetry/compare.h"
#include "telemetry/timeline.h"

namespace graphpim {
namespace {

// ---------------------------------------------------------------------------
// WindowSampler units.

TEST(WindowSampler, CutsAtBoundariesAndAttachesDeltasToFirstWindow) {
  StatRegistry reg;
  telemetry::Timeline tl;
  telemetry::WindowSampler ws(100, &tl, 0, {});

  reg.Add("x", 5.0);
  ws.AdvanceTo(50, reg);
  EXPECT_TRUE(tl.windows.empty());  // boundary 100 not reached
  EXPECT_EQ(ws.next_boundary(), 100u);

  ws.AdvanceTo(100, reg);
  ASSERT_EQ(tl.windows.size(), 1u);
  EXPECT_EQ(tl.windows[0].index, 0u);
  EXPECT_EQ(tl.windows[0].start, 0u);
  EXPECT_EQ(tl.windows[0].end, 100u);
  ASSERT_EQ(tl.windows[0].deltas.size(), 1u);
  EXPECT_EQ(tl.windows[0].deltas[0].first, "x");
  EXPECT_DOUBLE_EQ(tl.windows[0].deltas[0].second, 5.0);

  // One quantum jumps two boundaries: the accrued delta attaches to the
  // first window of the span, the second stays empty (virtual time inside
  // a quantum is not subdividable after the fact).
  reg.Add("x", 2.0);
  ws.AdvanceTo(350, reg);
  ASSERT_EQ(tl.windows.size(), 3u);
  EXPECT_EQ(tl.windows[1].end, 200u);
  ASSERT_EQ(tl.windows[1].deltas.size(), 1u);
  EXPECT_DOUBLE_EQ(tl.windows[1].deltas[0].second, 2.0);
  EXPECT_TRUE(tl.windows[2].deltas.empty());
  EXPECT_EQ(ws.next_boundary(), 400u);

  // Finish flushes the trailing partial window up to the final tick.
  reg.Add("x", 1.0);
  ws.Finish(370, reg);
  ASSERT_EQ(tl.windows.size(), 4u);
  EXPECT_EQ(tl.windows[3].start, 300u);
  EXPECT_EQ(tl.windows[3].end, 370u);
  ASSERT_EQ(tl.windows[3].deltas.size(), 1u);
  EXPECT_DOUBLE_EQ(tl.windows[3].deltas[0].second, 1.0);

  // Idempotent: a second Finish adds nothing.
  ws.Finish(370, reg);
  EXPECT_EQ(tl.windows.size(), 4u);
}

TEST(WindowSampler, TelemetryOnAlwaysYieldsAtLeastOneWindow) {
  StatRegistry reg;
  telemetry::Timeline tl;
  telemetry::WindowSampler ws(1000, &tl, 0, {});
  ws.Finish(0, reg);  // degenerate run: no tick ever advanced
  ASSERT_EQ(tl.windows.size(), 1u);
  EXPECT_EQ(tl.windows[0].start, 0u);
  EXPECT_EQ(tl.windows[0].end, 0u);
}

TEST(WindowSampler, GaugeSamplerRunsPerCutInEmissionOrder) {
  StatRegistry reg;
  telemetry::Timeline tl;
  std::vector<std::pair<Tick, Tick>> seen;
  telemetry::WindowSampler ws(
      100, &tl, 0,
      [&](Tick s, Tick e, std::vector<std::pair<std::string, double>>* out) {
        seen.emplace_back(s, e);
        out->emplace_back("z.gauge", 2.0);
        out->emplace_back("a.gauge", 1.0);  // emission order, NOT sorted
      });
  ws.AdvanceTo(200, reg);
  ws.Finish(250, reg);
  ASSERT_EQ(tl.windows.size(), 3u);
  ASSERT_EQ(seen.size(), 3u);
  EXPECT_EQ(seen[0], (std::pair<Tick, Tick>{0, 100}));
  EXPECT_EQ(seen[2], (std::pair<Tick, Tick>{200, 250}));
  ASSERT_EQ(tl.windows[0].gauges.size(), 2u);
  EXPECT_EQ(tl.windows[0].gauges[0].first, "z.gauge");
  EXPECT_EQ(tl.windows[0].gauges[1].first, "a.gauge");
}

TEST(WindowSampler, MaxWindowsCapCountsDroppedCuts) {
  StatRegistry reg;
  telemetry::Timeline tl;
  telemetry::WindowSampler ws(100, &tl, 2, {});
  ws.AdvanceTo(400, reg);  // four boundaries
  EXPECT_EQ(tl.windows.size(), 2u);
  EXPECT_EQ(tl.dropped_windows, 2u);
}

// ---------------------------------------------------------------------------
// Exporters.

telemetry::Timeline TinyTimeline() {
  telemetry::Timeline tl;
  tl.window_ticks = 100;
  telemetry::TimelineWindow w;
  w.index = 0;
  w.start = 0;
  w.end = 100;
  w.deltas.emplace_back("core.insts", 42.0);
  w.gauges.emplace_back("tele.link.occupancy", 0.5);
  tl.windows.push_back(w);
  w.index = 1;
  w.start = 100;
  w.end = 150;
  tl.windows.push_back(w);
  return tl;
}

TEST(TimelineExport, JsonlCarriesWindowFieldsAndOptionalPoint) {
  const telemetry::Timeline tl = TinyTimeline();
  const std::string plain = telemetry::ToJsonl(tl);
  EXPECT_NE(plain.find("{\"window\":0,\"start_ns\":0.000"), std::string::npos)
      << plain;
  EXPECT_NE(plain.find("\"deltas\":{\"core.insts\":42}"), std::string::npos);
  EXPECT_NE(plain.find("\"gauges\":{\"tele.link.occupancy\":0.5}"),
            std::string::npos);
  EXPECT_EQ(plain.find("\"point\""), std::string::npos);

  const std::string pointed = telemetry::ToJsonl(tl, "GraphPIM@qps=1e6");
  EXPECT_EQ(pointed.rfind("{\"point\":\"GraphPIM@qps=1e6\",", 0), 0u)
      << pointed;
  EXPECT_TRUE(telemetry::ToJsonl(telemetry::Timeline{}).empty());
}

TEST(TimelineExport, ChromeCounterEventsSpliceAndNamespace) {
  const telemetry::Timeline tl = TinyTimeline();
  const std::string ev = telemetry::ChromeCounterEvents(tl);
  // Splice convention: each event prefixed "\n", events joined ",".
  EXPECT_EQ(ev.rfind("\n{", 0), 0u) << ev;
  EXPECT_NE(ev.find("\"ph\":\"C\""), std::string::npos);
  // Counter deltas get a tele: track prefix; gauges keep their names.
  EXPECT_NE(ev.find("\"name\":\"tele:core.insts\""), std::string::npos);
  EXPECT_NE(ev.find("\"name\":\"tele.link.occupancy\""), std::string::npos);
  const std::string scoped = telemetry::ChromeCounterEvents(tl, "p1|");
  EXPECT_NE(scoped.find("\"name\":\"p1|tele:core.insts\""), std::string::npos);
  EXPECT_TRUE(telemetry::ChromeCounterEvents(telemetry::Timeline{}).empty());
}

TEST(TimelineExport, RequireSinkGatesOnWindowAndSink) {
  EXPECT_NO_THROW(telemetry::RequireSink(0.0, false, "hint"));
  EXPECT_NO_THROW(telemetry::RequireSink(100.0, true, "hint"));
  EXPECT_THROW(telemetry::RequireSink(100.0, false, "hint"), SimError);
}

// ---------------------------------------------------------------------------
// Config surface.

TEST(TelemetryConfig, KnobsParseRangeCheckAndCrossValidate) {
  Config cfg;
  cfg.Set("telemetry-window-ns", "2500");
  cfg.Set("telemetry.max_windows", "64");
  const core::SimConfig sc =
      core::SimConfig::FromConfig(cfg, core::Mode::kGraphPim);
  EXPECT_DOUBLE_EQ(sc.telemetry_window_ns, 2500.0);
  EXPECT_EQ(sc.telemetry_max_windows, 64u);

  Config neg;
  neg.Set("telemetry-window-ns", "-5");
  EXPECT_THROW(core::SimConfig::FromConfig(neg, core::Mode::kGraphPim),
               SimError);
  Config frac;
  frac.Set("telemetry-max-windows", "1.5");  // integer-only knob
  EXPECT_THROW(core::SimConfig::FromConfig(frac, core::Mode::kGraphPim),
               SimError);
  // Cross-field Validate(): a sub-nanosecond window cuts inside one tick.
  core::SimConfig sub = core::SimConfig::Scaled(core::Mode::kGraphPim);
  sub.telemetry_window_ns = 0.5;
  EXPECT_THROW(sub.Validate(), SimError);
}

// ---------------------------------------------------------------------------
// End-to-end: windowed replay runs.

core::SimConfig WindowedConfig(double window_ns, int shards = 1) {
  core::SimConfig sc = core::SimConfig::Scaled(core::Mode::kGraphPim);
  sc.num_cores = 4;
  sc.shards = shards;
  sc.telemetry_window_ns = window_ns;
  return sc;
}

core::Experiment TinyExperiment() {
  core::Experiment::Options eo;
  eo.num_threads = 4;
  eo.seed = 3;
  eo.op_cap = 30'000;
  return core::Experiment("ldbc", 512, "bfs", eo);
}

TEST(TelemetryEndToEnd, WindowDeltasConserveRunTotals) {
  const core::Experiment exp = TinyExperiment();
  telemetry::Timeline tl;
  core::RunOptions ro;
  ro.timeline = &tl;
  const core::SimResults r = exp.Run(WindowedConfig(2000.0), ro);

  ASSERT_FALSE(tl.empty());
  double insts = 0.0;
  double atomics = 0.0;
  for (std::size_t i = 0; i < tl.windows.size(); ++i) {
    const telemetry::TimelineWindow& w = tl.windows[i];
    EXPECT_EQ(w.index, i);
    EXPECT_LE(w.start, w.end);
    if (i > 0) {
      EXPECT_EQ(w.start, tl.windows[i - 1].end);
    }
    EXPECT_FALSE(w.gauges.empty());
    EXPECT_EQ(w.gauges[0].first, "tele.pou.inflight");
    for (const auto& [k, v] : w.deltas) {
      if (k == "core.insts") insts += v;
      if (k == "core.atomics") atomics += v;
    }
  }
  // Finish() flushes through the final tick, so per-window deltas sum to
  // the run totals exactly.
  EXPECT_DOUBLE_EQ(insts, static_cast<double>(r.insts));
  EXPECT_DOUBLE_EQ(atomics, static_cast<double>(r.atomics));
}

TEST(TelemetryEndToEnd, TimelineIsBitIdenticalAcrossRerunsAndShards) {
  const core::Experiment exp = TinyExperiment();
  auto run = [&](int shards) {
    telemetry::Timeline tl;
    core::RunOptions ro;
    ro.timeline = &tl;
    exp.Run(WindowedConfig(2000.0, shards), ro);
    return telemetry::ToJsonl(tl);
  };
  const std::string serial = run(1);
  ASSERT_FALSE(serial.empty());
  EXPECT_EQ(serial, run(1));  // rerun
  EXPECT_EQ(serial, run(4));  // sharded engine, same boundaries
}

TEST(TelemetryEndToEnd, OffIsIdentityAndLeavesTimelineUntouched) {
  const core::Experiment exp = TinyExperiment();
  telemetry::Timeline tl;
  core::RunOptions ro;
  ro.timeline = &tl;
  const core::SimResults off = exp.Run(WindowedConfig(0.0), ro);
  EXPECT_TRUE(tl.empty());  // no sampler was ever constructed

  const core::SimResults plain = exp.Run(WindowedConfig(0.0));
  EXPECT_EQ(core::ToJson(off), core::ToJson(plain));
  // ...and a windowed run does not perturb the simulation itself.
  const core::SimResults on = exp.Run(WindowedConfig(2000.0), ro);
  EXPECT_EQ(on.cycles, off.cycles);
  EXPECT_EQ(core::ToJson(on), core::ToJson(off));
}

// ---------------------------------------------------------------------------
// Serve per-window telemetry.

serve::ServeParams WindowedServeParams(double window_ns, double slo_ns) {
  serve::ServeParams p;
  p.cfg = core::SimConfig::Scaled(core::Mode::kGraphPim);
  p.cfg.telemetry_window_ns = window_ns;
  p.traffic.qps = 2e6;
  p.traffic.num_requests = 40;
  p.traffic.num_tenants = 2;
  p.traffic.num_vertices = 2048;
  p.traffic.seed = 7;
  p.query.max_hops = 2;
  p.query.max_frontier = 16;
  p.query.op_budget = 600;
  p.queue_depth = 8;
  p.slots = 2;
  p.batch_max = 4;
  p.slo_ns = slo_ns;
  return p;
}

serve::ServedGraph::Options TinyServedGraph() {
  serve::ServedGraph::Options go;
  go.profile = "ldbc";
  go.num_vertices = 2048;
  go.num_tenants = 2;
  go.seed = 7;
  return go;
}

TEST(ServeTelemetry, WindowGaugesConservePointTotals) {
  const serve::ServedGraph sg(TinyServedGraph());
  const serve::ServeParams p = WindowedServeParams(20'000.0, 10'000.0);
  const serve::ServePoint pt = serve::RunServePoint(sg, p);

  ASSERT_FALSE(pt.timeline.empty());
  double arrivals = 0.0;
  double completed = 0.0;
  double dropped = 0.0;
  bool saw_burn = false;
  for (const telemetry::TimelineWindow& w : pt.timeline.windows) {
    EXPECT_TRUE(w.deltas.empty());  // serve windows are gauges-only
    for (const auto& [k, v] : w.gauges) {
      if (k == "serve.arrivals") arrivals += v;
      if (k == "serve.completed") completed += v;
      if (k == "serve.dropped") dropped += v;
      if (k == "serve.tenant0.slo_burn" || k == "serve.tenant1.slo_burn") {
        saw_burn = true;
        EXPECT_GE(v, 0.0);
        EXPECT_LE(v, 1.0);
      }
    }
  }
  EXPECT_DOUBLE_EQ(arrivals, static_cast<double>(pt.offered));
  EXPECT_DOUBLE_EQ(completed, static_cast<double>(pt.served));
  EXPECT_DOUBLE_EQ(dropped, static_cast<double>(pt.dropped));
  EXPECT_TRUE(saw_burn);

  // The heartbeat note renders the last window's gauges.
  const std::string note = serve::TimelineNote(pt.timeline);
  EXPECT_EQ(note.rfind("qps=", 0), 0u) << note;
  EXPECT_NE(note.find("p99="), std::string::npos);
  EXPECT_TRUE(serve::TimelineNote(telemetry::Timeline{}).empty());
}

TEST(ServeTelemetry, WindowTableIsJobsInvariantAndOffIsSilent) {
  const serve::ServedGraph sg(TinyServedGraph());
  const serve::ServeParams base = WindowedServeParams(20'000.0, 10'000.0);
  std::vector<std::pair<std::string, core::SimConfig>> configs = {
      {"GraphPIM", base.cfg}};
  core::SimConfig bl = core::SimConfig::Scaled(core::Mode::kBaseline);
  bl.telemetry_window_ns = base.cfg.telemetry_window_ns;
  configs.emplace_back("Baseline", bl);
  const std::vector<double> qps = {2e5, 2e6};

  const serve::ServeGridResult j1 = serve::RunServeGrid(sg, base, configs, qps, 1);
  const serve::ServeGridResult j4 = serve::RunServeGrid(sg, base, configs, qps, 4);
  const std::string t1 = serve::FormatServeTimeline(j1.points);
  ASSERT_FALSE(t1.empty());
  EXPECT_EQ(t1, serve::FormatServeTimeline(j4.points));
  EXPECT_NE(t1.find("tenant burn"), std::string::npos);

  // Telemetry off: no windows, and the table renders as "" so the serve
  // report stays byte-identical to pre-telemetry builds.
  serve::ServeParams off = base;
  off.cfg.telemetry_window_ns = 0.0;
  const serve::ServePoint pt = serve::RunServePoint(sg, off);
  EXPECT_TRUE(pt.timeline.empty());
  EXPECT_TRUE(serve::FormatServeTimeline({pt}).empty());
}

TEST(ServeTelemetry, NegativeSloIsRejected) {
  const serve::ServedGraph sg(TinyServedGraph());
  serve::ServeParams p = WindowedServeParams(0.0, -1.0);
  EXPECT_THROW(serve::RunServePoint(sg, p), SimError);
  // The grid must fail fast on the orchestrating thread too — a throw
  // inside a pool worker would terminate the process.
  EXPECT_THROW(
      serve::RunServeGrid(sg, p, {{"GraphPIM", p.cfg}}, {2e5}, 1), SimError);
}

// ---------------------------------------------------------------------------
// Sweep journal timeline sidecar.

TEST(TelemetryJournal, SidecarsAreWrittenSkippedOnLoadAndJobsInvariant) {
  exec::SweepGrid grid;
  grid.workloads = {"bfs"};
  grid.profiles = {"ldbc"};
  grid.vertices = 512;
  grid.sim_threads = 2;
  grid.op_cap = 10'000;
  core::SimConfig c = core::SimConfig::Scaled(core::Mode::kGraphPim);
  c.num_cores = 2;
  c.telemetry_window_ns = 2000.0;
  grid.configs = {c, core::SimConfig::Scaled(core::Mode::kBaseline)};
  grid.configs[1].num_cores = 2;
  grid.configs[1].telemetry_window_ns = 2000.0;
  grid.config_names = {"graphpim", "baseline"};

  auto sidecars_with_jobs = [&](int jobs, const std::string& path) {
    std::remove(path.c_str());
    exec::SweepRunner::Options opts;
    opts.jobs = jobs;
    opts.journal_path = path;
    exec::SweepResultTable t = exec::SweepRunner(opts).Run(grid);
    EXPECT_EQ(t.failed_rows, 0u);
    std::ifstream in(path);
    std::string line, out;
    while (std::getline(in, line)) {
      if (line.rfind("{\"timeline_for\":", 0) == 0) {
        // The flattener doubles as a strict-JSON check on the sidecar.
        EXPECT_NO_THROW(telemetry::FlattenRunJson(line)) << line;
        out += line;
        out += '\n';
      }
    }
    return out;
  };

  const std::string p1 = ::testing::TempDir() + "/gp_tele_j1.jsonl";
  const std::string p4 = ::testing::TempDir() + "/gp_tele_j4.jsonl";
  const std::string s1 = sidecars_with_jobs(1, p1);
  const std::string s4 = sidecars_with_jobs(4, p4);
  ASSERT_FALSE(s1.empty());
  // Rows are harvested in grid order at any --jobs, so the timeline
  // sidecars are bit-identical too.
  EXPECT_EQ(s1, s4);
  EXPECT_NE(s1.find("\"windows\":[{"), std::string::npos);

  // Sidecars are annotations: loading restores the rows and drops nothing.
  exec::JournalData jd;
  ASSERT_TRUE(exec::LoadJournal(p1, &jd));
  EXPECT_EQ(jd.rows.size(), 2u);
  EXPECT_EQ(jd.dropped_lines, 0u);
  std::remove(p1.c_str());
  std::remove(p4.c_str());
}

// ---------------------------------------------------------------------------
// Comparison engine (tools/graphpim_compare).

TEST(CompareEngine, FlattensDocumentsAndJsonl) {
  const telemetry::FlatRun doc = telemetry::FlattenRunJson(
      R"({"a":{"b":2},"arr":[1,2],"flag":true,"name":"ignored"})");
  ASSERT_EQ(doc.values.size(), 4u);
  EXPECT_DOUBLE_EQ(*doc.Find("a.b"), 2.0);
  EXPECT_DOUBLE_EQ(*doc.Find("arr.0"), 1.0);
  EXPECT_DOUBLE_EQ(*doc.Find("arr.1"), 2.0);
  EXPECT_DOUBLE_EQ(*doc.Find("flag"), 1.0);  // booleans compare as 0/1
  EXPECT_EQ(doc.Find("name"), nullptr);      // strings identify, not measure

  // JSONL lines key by their identity fields.
  const telemetry::FlatRun tl = telemetry::FlattenRunJson(
      telemetry::ToJsonl(TinyTimeline(), "p1"));
  EXPECT_NE(tl.Find("point.p1.window.0.deltas.core.insts"), nullptr);
  EXPECT_NE(tl.Find("point.p1.window.1.gauges.tele.link.occupancy"), nullptr);

  EXPECT_THROW(telemetry::FlattenRunJson("{\"a\":"), SimError);
  EXPECT_THROW(telemetry::FlattenRunJson(""), SimError);
}

TEST(CompareEngine, TolerancesGateDriftAndMissingKeys) {
  const telemetry::FlatRun base =
      telemetry::FlattenRunJson(R"({"cycles":1000,"ipc":2.0,"gone":1})");
  const telemetry::FlatRun head =
      telemetry::FlattenRunJson(R"({"cycles":1100,"ipc":2.0,"fresh":1})");

  telemetry::CompareOptions opts;
  opts.rel_tol = 0.02;
  telemetry::DriftReport rep = telemetry::CompareRuns(base, head, opts);
  EXPECT_EQ(rep.compared, 2u);
  EXPECT_EQ(rep.failed, 1u);  // cycles drifted 10% > 2%
  EXPECT_EQ(rep.missing, 2u);
  EXPECT_FALSE(rep.pass());
  // Failures sort first and the table renders them past any row cap.
  ASSERT_FALSE(rep.rows.empty());
  EXPECT_EQ(rep.rows[0].key, "cycles");
  const std::string table = telemetry::FormatDriftTable(rep, 0);
  EXPECT_NE(table.find("cycles"), std::string::npos);
  EXPECT_NE(table.find("FAIL"), std::string::npos);
  EXPECT_NE(table.find("+10.00%"), std::string::npos);

  // A per-key override (longest matching prefix) absorbs the drift...
  opts.per_key.emplace_back("cycles", 0.25);
  EXPECT_TRUE(telemetry::CompareRuns(base, head, opts).pass());
  // ...and --fail-on-missing turns one-sided keys into failures.
  opts.fail_on_missing = true;
  telemetry::DriftReport strict = telemetry::CompareRuns(base, head, opts);
  EXPECT_EQ(strict.failed, 2u);

  // Key filtering restricts the comparison surface.
  telemetry::CompareOptions keyed;
  keyed.keys = {"ipc"};
  telemetry::DriftReport only_ipc = telemetry::CompareRuns(base, head, keyed);
  EXPECT_EQ(only_ipc.compared, 1u);
  EXPECT_TRUE(only_ipc.pass());
}

}  // namespace
}  // namespace graphpim
