// Tests for the cache hierarchy: hit levels, inclusion, coherence costs,
// MSHR backpressure, prefetch coverage, and atomic line serialization.
#include <gtest/gtest.h>

#include "hmc/topology.h"
#include "mem/hierarchy.h"

namespace graphpim::mem {
namespace {

struct Fixture {
  StatRegistry stats;
  hmc::HmcParams hp;
  hmc::HmcNetwork net;
  CacheParams cp;
  CacheHierarchy hier;

  explicit Fixture(int cores = 2, CacheParams params = CacheParams())
      : net(hp, &stats, 0, 0), cp(params), hier(cores, cp, &net, &stats) {}
};

TEST(Hierarchy, MissThenHitLevels) {
  Fixture f;
  AccessResult miss = f.hier.Access(0, AccessType::kRead, 0x1000, 0);
  EXPECT_EQ(miss.hit_level, 0);
  EXPECT_GT(TicksToNs(miss.complete), 50.0);  // walk + memory
  AccessResult hit = f.hier.Access(0, AccessType::kRead, 0x1000, miss.complete);
  EXPECT_EQ(hit.hit_level, 1);
  EXPECT_EQ(hit.complete - miss.complete, f.cp.l1_latency);
}

TEST(Hierarchy, RemoteCoreHitsInL3) {
  Fixture f;
  AccessResult m = f.hier.Access(0, AccessType::kRead, 0x2000, 0);
  // The other core finds the line in the shared L3, not its private levels.
  AccessResult r = f.hier.Access(1, AccessType::kRead, 0x2000, m.complete);
  EXPECT_EQ(r.hit_level, 3);
}

TEST(Hierarchy, WriteInvalidatesRemoteCopy) {
  Fixture f;
  AccessResult a = f.hier.Access(0, AccessType::kRead, 0x3000, 0);
  AccessResult b = f.hier.Access(1, AccessType::kRead, 0x3000, a.complete);
  AccessResult w = f.hier.Access(1, AccessType::kWrite, 0x3000, b.complete);
  EXPECT_TRUE(w.coherence_inval);
  EXPECT_EQ(f.hier.ProbeLevel(0, 0x3000), 3) << "core 0 private copy invalidated";
  EXPECT_DOUBLE_EQ(f.stats.Get("cache.coherence_invals"), 1);
}

TEST(Hierarchy, ProbeLevelNonDestructive) {
  Fixture f;
  EXPECT_EQ(f.hier.ProbeLevel(0, 0x4000), 0);
  f.hier.Access(0, AccessType::kRead, 0x4000, 0);
  EXPECT_EQ(f.hier.ProbeLevel(0, 0x4000), 1);
  EXPECT_EQ(f.hier.ProbeLevel(1, 0x4000), 3);  // only in shared L3 for core 1
}

TEST(Hierarchy, AtomicLineSerializes) {
  Fixture f;
  AccessResult a = f.hier.Access(0, AccessType::kAtomicRmw, 0x5000, 0);
  AccessResult b = f.hier.Access(1, AccessType::kAtomicRmw, 0x5000, 0);
  EXPECT_GE(b.complete, a.complete);
  EXPECT_DOUBLE_EQ(f.stats.Get("cache.atomic_line_waits"), 1);
}

TEST(Hierarchy, AtomicsToDifferentLinesDoNotSerialize) {
  Fixture f;
  f.hier.Access(0, AccessType::kAtomicRmw, 0x6000, 0);
  AccessResult b = f.hier.Access(1, AccessType::kAtomicRmw, 0x7000, 0);
  (void)b;
  EXPECT_DOUBLE_EQ(f.stats.Get("cache.atomic_line_waits"), 0);
}

TEST(Hierarchy, MshrBackpressureReported) {
  CacheParams cp;
  cp.mshrs_per_core = 2;
  cp.prefetch_streams = 0;
  Fixture f(1, cp);
  // Three parallel misses with two MSHRs: the third must report a stall.
  AccessResult r1 = f.hier.Access(0, AccessType::kRead, 0x10000, 0);
  AccessResult r2 = f.hier.Access(0, AccessType::kRead, 0x20000, 0);
  AccessResult r3 = f.hier.Access(0, AccessType::kRead, 0x30000, 0);
  EXPECT_EQ(r1.issue_stall, 0u);
  EXPECT_EQ(r2.issue_stall, 0u);
  EXPECT_GT(r3.issue_stall, 0u);
}

TEST(Hierarchy, PrefetcherCoversSequentialStream) {
  Fixture f;
  Tick t = 0;
  // Establish the stream with two sequential misses, then the rest are
  // covered by the prefetcher (fast completion).
  AccessResult first = f.hier.Access(0, AccessType::kRead, 0x100000, t);
  AccessResult second = f.hier.Access(0, AccessType::kRead, 0x100040, first.complete);
  AccessResult third = f.hier.Access(0, AccessType::kRead, 0x100080, second.complete);
  EXPECT_LT(third.complete - second.complete, first.complete);
  EXPECT_GE(f.stats.Get("cache.prefetch_covered"), 1);
}

TEST(Hierarchy, PrefetcherIgnoresRandomMisses) {
  Fixture f;
  StatRegistry& s = f.stats;
  f.hier.Access(0, AccessType::kRead, 0x200000, 0);
  f.hier.Access(0, AccessType::kRead, 0x543210 & ~63ull, 0);
  f.hier.Access(0, AccessType::kRead, 0x9abcd0 & ~63ull, 0);
  EXPECT_DOUBLE_EQ(s.Get("cache.prefetch_covered"), 0);
}

TEST(Hierarchy, DirtyEvictionWritesBack) {
  CacheParams cp;
  cp.l1_size = 512;   // tiny caches to force eviction quickly
  cp.l1_ways = 2;
  cp.l2_size = 1024;
  cp.l2_ways = 2;
  cp.l3_size = 2048;
  cp.l3_ways = 2;
  cp.prefetch_streams = 0;
  Fixture f(1, cp);
  // Dirty a line, then stream enough conflicting lines through to evict it
  // out of the whole (inclusive) hierarchy.
  f.hier.Access(0, AccessType::kWrite, 0x0, 0);
  for (Addr a = 64; a < 64 * 200; a += 64) {
    f.hier.Access(0, AccessType::kRead, a, 1000000);
  }
  EXPECT_GE(f.stats.Get("cache.writebacks"), 1);
  EXPECT_DOUBLE_EQ(f.stats.Get("hmc.writes"), f.stats.Get("cache.writebacks"));
}

TEST(Hierarchy, InclusiveBackInvalidation) {
  CacheParams cp;
  cp.l1_size = 4 * kKiB;
  cp.l2_size = 8 * kKiB;
  cp.l3_size = 2048;  // tiny shared L3: 32 lines
  cp.l3_ways = 2;
  cp.prefetch_streams = 0;
  Fixture f(1, cp);
  f.hier.Access(0, AccessType::kRead, 0x0, 0);
  ASSERT_EQ(f.hier.ProbeLevel(0, 0x0), 1);
  // Fill L3's set containing 0x0 until the line is evicted; inclusion must
  // purge the private copies too.
  for (int i = 1; i <= 64; ++i) {
    f.hier.Access(0, AccessType::kRead, static_cast<Addr>(i) * 2048, 0);
  }
  EXPECT_EQ(f.hier.ProbeLevel(0, 0x0), 0);
}

TEST(Hierarchy, AtomicMissStatsForFig10) {
  Fixture f;
  f.hier.Access(0, AccessType::kAtomicRmw, 0x8000, 0);  // cold: miss
  f.hier.Access(0, AccessType::kAtomicRmw, 0x8000, 1000000);  // now hits
  EXPECT_DOUBLE_EQ(f.stats.Get("cache.atomic_reqs"), 2);
  EXPECT_DOUBLE_EQ(f.stats.Get("cache.atomic_mem_misses"), 1);
}

TEST(Hierarchy, PerComponentStats) {
  Fixture f;
  f.hier.Access(0, AccessType::kRead, 0x9000, 0, DataComponent::kProperty);
  f.hier.Access(0, AccessType::kRead, 0xA000, 0, DataComponent::kStructure);
  EXPECT_DOUBLE_EQ(f.stats.Get("cache.access.property"), 1);
  EXPECT_DOUBLE_EQ(f.stats.Get("cache.access.structure"), 1);
  EXPECT_DOUBLE_EQ(f.stats.Get("cache.l3_miss.property"), 1);
}

}  // namespace
}  // namespace graphpim::mem
