// src/exec tests: thread-pool lifecycle (drain-on-shutdown, cancellation,
// futures, stats), deterministic sweep seeding, the grid-spec parser, the
// result sinks, and the headline regression — a small BFS grid must produce
// bit-identical results at --jobs=1 and --jobs=4.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <mutex>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "common/log.h"
#include "core/report.h"
#include "exec/progress.h"
#include "exec/result_sink.h"
#include "exec/sweep.h"
#include "exec/thread_pool.h"

namespace graphpim::exec {
namespace {

// A manually released gate used to hold a worker busy while the test pokes
// at the pool's pending queue.
class Gate {
 public:
  void Open() {
    {
      std::lock_guard<std::mutex> lk(mu_);
      open_ = true;
    }
    cv_.notify_all();
  }
  void Wait() {
    std::unique_lock<std::mutex> lk(mu_);
    cv_.wait(lk, [this] { return open_; });
  }

 private:
  std::mutex mu_;
  std::condition_variable cv_;
  bool open_ = false;
};

TEST(ThreadPool, ReturnsValuesAndRecordsWallTime) {
  ThreadPool pool(2);
  auto f = pool.Submit([] { return 6 * 7; });
  auto g = pool.Submit([] {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  });
  ASSERT_TRUE(f.Get().has_value());
  EXPECT_EQ(*f.Get(), 42);
  EXPECT_EQ(f.state(), TaskState::kDone);
  ASSERT_TRUE(g.Get().has_value());  // void task yields a `true` marker
  EXPECT_GE(g.wall_ms(), 4.0);
}

TEST(ThreadPool, ShutdownDrainsPendingTasks) {
  std::atomic<int> ran{0};
  {
    ThreadPool pool(1);
    Gate gate;
    pool.Submit([&] { gate.Wait(); });
    // These sit pending behind the gated task; Shutdown must run them all.
    for (int i = 0; i < 16; ++i) pool.Submit([&] { ran.fetch_add(1); });
    gate.Open();
    pool.Shutdown();
  }
  EXPECT_EQ(ran.load(), 16);
}

TEST(ThreadPool, CancelWinsOnlyWhilePending) {
  ThreadPool pool(1);
  Gate gate;
  std::atomic<bool> started{false};
  auto running = pool.Submit([&] {
    started = true;
    gate.Wait();
  });
  while (!started) std::this_thread::yield();
  EXPECT_FALSE(running.Cancel());  // already running: cancel must lose

  auto pending = pool.Submit([] { return 1; });
  EXPECT_TRUE(pending.Cancel());
  EXPECT_EQ(pending.state(), TaskState::kCancelled);
  EXPECT_FALSE(pending.Get().has_value());

  gate.Open();
  pool.Shutdown();
  const PoolStats s = pool.stats();
  EXPECT_EQ(s.submitted, 2u);
  EXPECT_EQ(s.executed, 1u);
  EXPECT_EQ(s.cancelled, 1u);
}

TEST(ThreadPool, CancelPendingSweepsTheQueues) {
  ThreadPool pool(1);
  Gate gate;
  std::atomic<bool> started{false};
  pool.Submit([&] {
    started = true;
    gate.Wait();
  });
  // Only once the gate task is RUNNING is "pending" exactly the 8 below.
  while (!started) std::this_thread::yield();
  std::vector<TaskFuture<int>> futs;
  for (int i = 0; i < 8; ++i) futs.push_back(pool.Submit([i] { return i; }));
  EXPECT_EQ(pool.CancelPending(), 8u);
  gate.Open();
  pool.WaitIdle();
  for (auto& f : futs) EXPECT_FALSE(f.Get().has_value());
  EXPECT_EQ(pool.stats().cancelled, 8u);
}

TEST(ThreadPool, WaitIdleBlocksUntilEverythingFinished) {
  ThreadPool pool(4);
  std::atomic<int> ran{0};
  for (int i = 0; i < 64; ++i) {
    pool.Submit([&] {
      std::this_thread::sleep_for(std::chrono::microseconds(200));
      ran.fetch_add(1);
    });
  }
  pool.WaitIdle();
  EXPECT_EQ(ran.load(), 64);
  EXPECT_EQ(pool.stats().executed, 64u);
}

TEST(ThreadPool, OnWorkerThreadDistinguishesInsideFromOutside) {
  ThreadPool pool(2);
  EXPECT_FALSE(pool.OnWorkerThread());
  auto f = pool.Submit([&pool] { return pool.OnWorkerThread(); });
  ASSERT_TRUE(f.Get().has_value());
  EXPECT_TRUE(*f.Get());
}

TEST(ThreadPool, ExportsOccupancyCountersToRegistry) {
  ThreadPool pool(2);
  Gate gate;
  std::atomic<int> started{0};
  // Two blockers pin both workers so further submissions must queue.
  auto b1 = pool.Submit([&] { ++started; gate.Wait(); });
  auto b2 = pool.Submit([&] { ++started; gate.Wait(); });
  while (started.load() < 2) std::this_thread::yield();
  std::vector<TaskFuture<void>> queued;
  for (int i = 0; i < 4; ++i) queued.push_back(pool.Submit([] {}));
  // All four are sitting in deques right now: the high-water mark must
  // have seen them (peaks are monotone, so this cannot flake downward).
  EXPECT_GE(pool.stats().peak_queued, 4u);
  gate.Open();
  pool.WaitIdle();
  const PoolStats s = pool.stats();
  EXPECT_EQ(s.submitted, 6u);
  EXPECT_EQ(s.executed, 6u);
  EXPECT_GE(s.peak_running, 2u);  // both blockers ran simultaneously
  StatRegistry reg;
  pool.ExportStats(&reg);
  EXPECT_DOUBLE_EQ(reg.Get("pool.threads"), 2.0);
  EXPECT_DOUBLE_EQ(reg.Get("pool.submitted"), 6.0);
  EXPECT_DOUBLE_EQ(reg.Get("pool.executed"), 6.0);
  EXPECT_EQ(reg.Get("pool.peak_queued"), static_cast<double>(s.peak_queued));
  EXPECT_EQ(reg.Get("pool.peak_running"),
            static_cast<double>(s.peak_running));
  // Null registry is the usual no-op contract.
  pool.ExportStats(nullptr);
}

TEST(SweepSeed, DeterministicAndDecorrelated) {
  const std::uint64_t a = DeriveCellSeed(1, 0, 0);
  EXPECT_EQ(a, DeriveCellSeed(1, 0, 0));  // pure function of its inputs
  std::set<std::uint64_t> seeds;
  for (std::size_t w = 0; w < 8; ++w) {
    for (std::size_t p = 0; p < 4; ++p) seeds.insert(DeriveCellSeed(1, w, p));
  }
  EXPECT_EQ(seeds.size(), 32u);  // no collisions across a realistic grid
  EXPECT_NE(DeriveCellSeed(1, 0, 0), DeriveCellSeed(2, 0, 0));
}

TEST(SweepGridSpec, ParsesEveryKey) {
  const SweepGrid g = ParseGridSpec(
      "workloads=bfs,prank;profiles=ldbc,twitter;modes=baseline,graphpim;"
      "vertices=2048;threads=8;opcap=100000;seed=7;full=0");
  EXPECT_EQ(g.workloads, (std::vector<std::string>{"bfs", "prank"}));
  EXPECT_EQ(g.profiles, (std::vector<std::string>{"ldbc", "twitter"}));
  ASSERT_EQ(g.configs.size(), 2u);
  EXPECT_EQ(g.config_names[0], "Baseline");
  EXPECT_EQ(g.config_names[1], "GraphPIM");
  EXPECT_EQ(g.vertices, 2048u);
  EXPECT_EQ(g.sim_threads, 8);
  EXPECT_EQ(g.op_cap, 100000u);
  EXPECT_EQ(g.base_seed, 7u);
  EXPECT_EQ(g.NumCells(), 4u);
  EXPECT_EQ(g.NumJobs(), 8u);
}

TEST(SweepGridSpec, ModeAllExpandsToThePaperMachines) {
  const SweepGrid g = ParseGridSpec("workloads=bfs;modes=all");
  ASSERT_EQ(g.configs.size(), 3u);
  EXPECT_EQ(g.config_names,
            (std::vector<std::string>{"Baseline", "U-PEI", "GraphPIM"}));
}

// Grid-spec user errors throw SimError (recoverable) so a driver or
// harness can report them without dying; the message names the accepted
// keys to make typos self-diagnosing.
TEST(SweepGridSpec, RejectsUnknownKeysAndEmptyWorkloads) {
  try {
    ParseGridSpec("workloads=bfs;bogus=1");
    FAIL() << "expected SimError";
  } catch (const SimError& e) {
    EXPECT_NE(e.message().find("unknown grid spec key"), std::string::npos);
    EXPECT_NE(e.message().find("link_ber"), std::string::npos);  // lists keys
  }
  EXPECT_THROW({ ParseGridSpec("modes=all"); }, SimError);
  EXPECT_THROW({ ParseGridSpec("workloads=bfs;vertices=abc"); }, SimError);
}

TEST(SweepGridSpec, RejectsMalformedAndOutOfRangeFields) {
  // Not key=value.
  EXPECT_THROW({ ParseGridSpec("workloads=bfs;threads"); }, SimError);
  // Duplicates (same workload/profile twice would double-count cells).
  EXPECT_THROW({ ParseGridSpec("workloads=bfs,bfs"); }, SimError);
  EXPECT_THROW({ ParseGridSpec("workloads=bfs;profiles=ldbc,ldbc"); }, SimError);
  EXPECT_THROW({ ParseGridSpec("workloads=bfs;modes=baseline,baseline"); },
               SimError);
  // Out-of-range numerics.
  EXPECT_THROW({ ParseGridSpec("workloads=bfs;vertices=0"); }, SimError);
  EXPECT_THROW({ ParseGridSpec("workloads=bfs;threads=0"); }, SimError);
  EXPECT_THROW({ ParseGridSpec("workloads=bfs;link_ber=1.5"); }, SimError);
  EXPECT_THROW({ ParseGridSpec("workloads=bfs;link_ber=-1e-9"); }, SimError);
  EXPECT_THROW({ ParseGridSpec("workloads=bfs;link_ber=abc"); }, SimError);
  EXPECT_THROW({ ParseGridSpec("workloads=bfs;vault_stall_ppm=2000000"); },
               SimError);
  EXPECT_THROW({ ParseGridSpec("workloads=bfs;poison_ppm=1000001"); }, SimError);
  EXPECT_THROW({ ParseGridSpec("workloads=bfs;retry_ns=-1"); }, SimError);
  // Unknown mode names come through ParseModeList.
  EXPECT_THROW({ ParseGridSpec("workloads=bfs;modes=warp9"); }, SimError);
  EXPECT_THROW({ ParseModeList(""); }, SimError);
}

TEST(SweepGridSpec, FaultKeysApplyToEveryConfig) {
  SweepGrid g = ParseGridSpec(
      "workloads=bfs;modes=baseline,graphpim;link_ber=1e-9;"
      "vault_stall_ppm=50;poison_ppm=5;max_retries=7;retry_ns=12");
  ASSERT_EQ(g.configs.size(), 2u);
  for (const core::SimConfig& c : g.configs) {
    EXPECT_DOUBLE_EQ(c.hmc.fault.link_ber, 1e-9);
    EXPECT_EQ(c.hmc.fault.vault_stall_ppm, 50u);
    EXPECT_EQ(c.hmc.fault.poison_ppm, 5u);
    EXPECT_EQ(c.hmc.fault.max_retries, 7u);
    EXPECT_EQ(c.hmc.fault.retry_latency, NsToTicks(12.0));
    EXPECT_EQ(c.hmc.fault.seed, 0u);  // per-job seed is derived at run time
    EXPECT_TRUE(c.hmc.fault.Enabled());
  }
  // Zero knobs leave the fault plan disabled (ideal-cube path).
  SweepGrid ideal = ParseGridSpec("workloads=bfs");
  EXPECT_FALSE(ideal.configs[0].hmc.fault.Enabled());
}

// Shared tiny grid for the runner tests: 1 workload x 1 profile x 3 paper
// machines on a small graph, so the whole sweep stays fast enough for CI.
SweepGrid TinyGrid() {
  SweepGrid g = ParseGridSpec("workloads=bfs;modes=all");
  g.vertices = 2048;
  g.op_cap = 120'000;
  return g;
}

TEST(SweepRunner, RowsComeBackInGridOrderWithProgress) {
  std::mutex mu;
  std::size_t calls = 0;
  SweepRunner::Options opts;
  opts.jobs = 2;
  opts.on_progress = [&](const SweepProgress& p) {
    std::lock_guard<std::mutex> lk(mu);
    ++calls;
    EXPECT_EQ(p.total, 3u);
  };
  const SweepResultTable t = SweepRunner(opts).Run(TinyGrid());
  ASSERT_EQ(t.rows.size(), 3u);
  EXPECT_EQ(calls, 3u);
  EXPECT_EQ(t.rows[0].config_name, "Baseline");
  EXPECT_EQ(t.rows[1].config_name, "U-PEI");
  EXPECT_EQ(t.rows[2].config_name, "GraphPIM");
  for (const SweepRow& r : t.rows) {
    EXPECT_EQ(r.workload, "bfs");
    EXPECT_GT(r.results.cycles, 0u);
  }
  // GraphPIM must beat the baseline even on the tiny graph.
  EXPECT_GT(t.SpeedupVsFirstConfig(t.rows[2]), 1.0);
  const SweepRow* found = t.Find("bfs", "ldbc", "GraphPIM");
  ASSERT_NE(found, nullptr);
  EXPECT_EQ(found->config_idx, 2u);
  EXPECT_EQ(t.Find("bfs", "ldbc", "nope"), nullptr);
}

TEST(SweepProgressLine, FormatsCountersEtaAndFailureMarker) {
  SweepProgress p;
  p.completed = 2;
  p.total = 6;
  p.workload = "bfs";
  p.profile = "ldbc";
  p.config_name = "GraphPIM";
  p.wall_ms = 123.0;
  // ETA = elapsed/completed * remaining = 2000/2 * 4 = 4000 ms -> 4s.
  const std::string line = FormatProgressLine(p, 2000.0);
  EXPECT_NE(line.find("[  2/  6]"), std::string::npos) << line;
  EXPECT_NE(line.find("bfs"), std::string::npos);
  EXPECT_NE(line.find("GraphPIM"), std::string::npos);
  EXPECT_NE(line.find("| ETA 4s"), std::string::npos) << line;
  EXPECT_EQ(line.find("FAILED"), std::string::npos);
  EXPECT_EQ(line.back(), '\n');
  // Zero completed never divides by zero.
  p.completed = 0;
  EXPECT_NE(FormatProgressLine(p, 2000.0).find("ETA 0s"), std::string::npos);
  // Failed jobs are marked.
  p.completed = 2;
  p.status = JobStatus::kFailed;
  const std::string failed = FormatProgressLine(p, 2000.0);
  EXPECT_NE(failed.find("  FAILED\n"), std::string::npos) << failed;
}

TEST(SweepRunner, ProgressHeartbeatUnderConcurrentJobs) {
  // The heartbeat satellite: under a parallel pool the runner must invoke
  // on_progress serially (under its lock) with a strictly advancing
  // completed counter, and the shared StderrHeartbeat sink must emit one
  // well-formed line per retired job.
  std::FILE* sink = std::tmpfile();
  ASSERT_NE(sink, nullptr);
  auto heartbeat = StderrHeartbeat(sink);
  std::mutex mu;
  std::vector<std::size_t> completed_seen;
  SweepRunner::Options opts;
  opts.jobs = 4;
  opts.on_progress = [&](const SweepProgress& p) {
    std::lock_guard<std::mutex> lk(mu);
    completed_seen.push_back(p.completed);
    EXPECT_EQ(p.total, 3u);
    EXPECT_EQ(p.status, JobStatus::kOk);
    heartbeat(p);
  };
  const SweepResultTable t = SweepRunner(opts).Run(TinyGrid());
  EXPECT_EQ(t.failed_rows, 0u);
  // Serialized retirement: completed counts are exactly 1..total in order.
  ASSERT_EQ(completed_seen.size(), 3u);
  for (std::size_t i = 0; i < completed_seen.size(); ++i) {
    EXPECT_EQ(completed_seen[i], i + 1);
  }
  // One heartbeat line per job landed in the sink.
  std::rewind(sink);
  char buf[256];
  std::size_t lines = 0;
  while (std::fgets(buf, sizeof(buf), sink) != nullptr) {
    ++lines;
    EXPECT_EQ(buf[0], '[') << buf;
    EXPECT_NE(std::string(buf).find("| ETA "), std::string::npos) << buf;
  }
  EXPECT_EQ(lines, 3u);
  std::fclose(sink);
}

TEST(SweepRunner, JobCountDoesNotChangeResults) {
  const SweepGrid grid = TinyGrid();
  SweepRunner::Options serial_opts;
  serial_opts.jobs = 1;
  SweepRunner::Options parallel_opts;
  parallel_opts.jobs = 4;
  const SweepResultTable serial = SweepRunner(serial_opts).Run(grid);
  const SweepResultTable parallel = SweepRunner(parallel_opts).Run(grid);
  ASSERT_EQ(serial.rows.size(), parallel.rows.size());
  for (std::size_t i = 0; i < serial.rows.size(); ++i) {
    EXPECT_EQ(serial.rows[i].seed, parallel.rows[i].seed);
    // Bit-identical per-run payload, field by field via the JSON report.
    EXPECT_EQ(core::ToJson(serial.rows[i].results),
              core::ToJson(parallel.rows[i].results))
        << "row " << i << " (" << serial.rows[i].config_name << ")";
    // StatRegistry::Merge is order-insensitive: the full unified registry
    // (core.* totals included) must be bit-identical at any pool width.
    EXPECT_EQ(serial.rows[i].results.raw.AllItems(),
              parallel.rows[i].results.raw.AllItems())
        << "row " << i;
  }
  // The deterministic serialization must match byte for byte.
  EXPECT_EQ(ToDeterministicCsv(serial), ToDeterministicCsv(parallel));
}

TEST(ResultSink, CsvAndJsonCarryTheTable) {
  SweepRunner::Options opts;
  opts.jobs = 2;
  const SweepResultTable t = SweepRunner(opts).Run(TinyGrid());
  const std::string csv = ToCsv(t);
  EXPECT_NE(csv.find("workload,profile,config,seed,cycles"), std::string::npos);
  EXPECT_NE(csv.find("bfs,ldbc,GraphPIM"), std::string::npos);
  // Header + one line per row.
  EXPECT_EQ(static_cast<std::size_t>(std::count(csv.begin(), csv.end(), '\n')),
            1 + t.rows.size());
  const std::string det = ToDeterministicCsv(t);
  EXPECT_EQ(det.find("wall_ms"), std::string::npos);

  const std::string json = ToJson(t);
  EXPECT_NE(json.find("\"rows\""), std::string::npos);
  EXPECT_NE(json.find("\"timing\""), std::string::npos);
  EXPECT_NE(json.find("\"config\": \"GraphPIM\""), std::string::npos);
  // Each row embeds the full core report object.
  EXPECT_NE(json.find("\"l2_mpki\""), std::string::npos);
}

}  // namespace
}  // namespace graphpim::exec
