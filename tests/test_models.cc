// Tests for the energy model and the analytical model (Section IV-B5).
#include <gtest/gtest.h>

#include "analytic/model.h"
#include "energy/energy.h"

namespace graphpim {
namespace {

using analytic::ModelInputs;

TEST(Energy, StaticPowerScalesWithRuntime) {
  StatRegistry empty;
  energy::EnergyParams p;
  auto e1 = energy::ComputeUncoreEnergy(empty, 1.0, p);
  auto e2 = energy::ComputeUncoreEnergy(empty, 2.0, p);
  EXPECT_NEAR(e2.Total(), 2.0 * e1.Total(), 1e-9);
  EXPECT_GT(e1.link_j, 0.0);
}

TEST(Energy, DynamicComponentsFollowCounters) {
  StatRegistry s;
  s.Set("cache.l1_hits", 1e6);
  s.Set("hmc.req_flits", 1e6);
  s.Set("hmc.reads", 1e5);
  s.Set("hmc.row_misses", 1e5);
  s.Set("hmc.fu_fp_ops", 1e5);
  energy::EnergyParams p;
  // Zero out statics to isolate dynamic scaling.
  p.cache_static_w = p.link_static_w = p.ll_static_w = p.dram_static_w = 0;
  p.fu_fp_static_w = 0;
  auto e = energy::ComputeUncoreEnergy(s, 1.0, p);
  EXPECT_NEAR(e.caches_j, 1e6 * p.l1_access_nj * 1e-9, 1e-12);
  EXPECT_NEAR(e.link_j, 1e6 * p.link_flit_nj * 1e-9, 1e-12);
  EXPECT_NEAR(e.fu_j, 1e5 * p.fu_fp_nj * 1e-9, 1e-12);
  EXPECT_GT(e.dram_j, 0.0);
  EXPECT_GT(e.logic_j, 0.0);
}

TEST(Energy, SerDesShareIsLargest) {
  // [34][36]: SerDes links consume ~43% of HMC power; with idle links the
  // link share must dominate the HMC-side components.
  StatRegistry empty;
  energy::EnergyParams p;
  auto e = energy::ComputeUncoreEnergy(empty, 1.0, p);
  EXPECT_GT(e.link_j, e.logic_j);
  EXPECT_GT(e.link_j, e.dram_j);
  EXPECT_GT(e.link_j, e.fu_j);
}

TEST(Analytic, Equation2Components) {
  ModelInputs in;
  in.lat_cache = 30;
  in.miss_atomic = 0.5;
  in.lat_mem = 100;
  in.c_incore = 40;
  EXPECT_DOUBLE_EQ(analytic::AtomicOverheadBaseline(in), 30 + 0.5 * 100 + 40);
}

TEST(Analytic, Equation1Form) {
  ModelInputs in;
  in.cpi_other = 2.0;
  in.overlap = 0.25;
  in.r_atomic = 0.1;
  double aio = analytic::AtomicOverheadBaseline(in);
  EXPECT_DOUBLE_EQ(analytic::CpiBaseline(in), 2.0 * 0.75 + 0.1 * aio);
}

TEST(Analytic, SpeedupAboveOneWhenAtomicsMatter) {
  ModelInputs in;
  in.r_atomic = 0.1;
  in.miss_atomic = 0.9;
  EXPECT_GT(analytic::PredictSpeedup(in), 1.2);
}

TEST(Analytic, NoAtomicsNoSpeedup) {
  ModelInputs in;
  in.r_atomic = 0.0;
  EXPECT_DOUBLE_EQ(analytic::PredictSpeedup(in), 1.0);
}

TEST(Analytic, SpeedupMonotonicInAtomicRate) {
  ModelInputs lo;
  lo.r_atomic = 0.01;
  ModelInputs hi = lo;
  hi.r_atomic = 0.2;
  EXPECT_GT(analytic::PredictSpeedup(hi), analytic::PredictSpeedup(lo));
}

TEST(Analytic, SpeedupMonotonicInMissRate) {
  ModelInputs lo;
  lo.r_atomic = 0.05;
  lo.miss_atomic = 0.2;
  ModelInputs hi = lo;
  hi.miss_atomic = 0.95;
  EXPECT_GT(analytic::PredictSpeedup(hi), analytic::PredictSpeedup(lo));
}

TEST(Analytic, RealWorldEstimatesInPaperRange) {
  // Table VIII inputs -> Fig 17 outputs: FD ~1.5x / RS ~1.9x speedup,
  // 32% / 48% energy reduction.
  analytic::RealWorldApp fd{"FD", 0.10, 21.3, 0.028, 0.658, 0.838, 0.013, 0.17, 0.07};
  analytic::RealWorldApp rs{"RS", 0.12, 20.6, 0.134, 0.527, 0.888, 0.029, 0.32, 0.17};
  auto efd = analytic::EstimateRealWorld(fd);
  auto ers = analytic::EstimateRealWorld(rs);
  EXPECT_GT(efd.speedup, 1.1);
  EXPECT_LT(efd.speedup, 1.8);
  EXPECT_GT(ers.speedup, efd.speedup);
  EXPECT_LT(ers.speedup, 2.3);
  EXPECT_LT(efd.energy_norm, 0.95);
  EXPECT_LT(ers.energy_norm, efd.energy_norm);
}

}  // namespace
}  // namespace graphpim
