// Functional tests for every HMC 2.0 atomic operation (paper Table I) and
// the Section III-C floating-point extension ops.
#include <gtest/gtest.h>

#include <bit>

#include "hmc/atomic.h"

namespace graphpim::hmc {
namespace {

Value16 V(std::uint64_t lo, std::uint64_t hi = 0) { return Value16{lo, hi}; }

TEST(AtomicTable, EighteenBaseOps) {
  int base = 0;
  for (int i = 0; i < static_cast<int>(AtomicOp::kNumOps); ++i) {
    if (!GetOpInfo(static_cast<AtomicOp>(i)).extension) ++base;
  }
  EXPECT_EQ(base, kNumBaseOps);
}

TEST(AtomicTable, CategoryCounts) {
  // Table I: arithmetic, bitwise, boolean, comparison (plus FP extension).
  int arith = 0;
  int bitw = 0;
  int boolean = 0;
  int cmp = 0;
  int fp = 0;
  for (int i = 0; i < static_cast<int>(AtomicOp::kNumOps); ++i) {
    switch (GetOpInfo(static_cast<AtomicOp>(i)).category) {
      case AtomicCategory::kArithmetic: ++arith; break;
      case AtomicCategory::kBitwise: ++bitw; break;
      case AtomicCategory::kBoolean: ++boolean; break;
      case AtomicCategory::kComparison: ++cmp; break;
      case AtomicCategory::kFloatingPoint: ++fp; break;
    }
  }
  EXPECT_EQ(arith, 4);
  EXPECT_EQ(bitw, 4);
  EXPECT_EQ(boolean, 5);
  EXPECT_EQ(cmp, 5);
  EXPECT_EQ(fp, 3);
}

TEST(AtomicExec, DualAdd8AddsLanesIndependently) {
  auto out = ExecuteAtomic(AtomicOp::kDualAdd8, V(10, 20), V(1, 2));
  EXPECT_TRUE(out.wrote);
  EXPECT_EQ(out.new_value.lo, 11u);
  EXPECT_EQ(out.new_value.hi, 22u);
  EXPECT_EQ(out.returned.lo, 10u);  // original data
}

TEST(AtomicExec, DualAdd8SignedWrap) {
  // Signed add: adding -1 (two's complement) decrements.
  auto out = ExecuteAtomic(AtomicOp::kDualAdd8, V(5, 5),
                           V(static_cast<std::uint64_t>(-1), 0));
  EXPECT_EQ(static_cast<std::int64_t>(out.new_value.lo), 4);
  EXPECT_EQ(out.new_value.hi, 5u);
}

TEST(AtomicExec, Add16CarriesAcrossLanes) {
  auto out = ExecuteAtomic(AtomicOp::kAdd16, V(~0ull, 0), V(1, 0));
  EXPECT_EQ(out.new_value.lo, 0u);
  EXPECT_EQ(out.new_value.hi, 1u);  // carry propagated
}

TEST(AtomicExec, Add16RetReturnsOriginal) {
  auto out = ExecuteAtomic(AtomicOp::kAdd16Ret, V(7, 0), V(3, 0));
  EXPECT_EQ(out.new_value.lo, 10u);
  EXPECT_EQ(out.returned.lo, 7u);
  EXPECT_TRUE(GetOpInfo(AtomicOp::kAdd16Ret).returns_data);
}

TEST(AtomicExec, Swap16) {
  auto out = ExecuteAtomic(AtomicOp::kSwap16, V(1, 2), V(3, 4));
  EXPECT_EQ(out.new_value.lo, 3u);
  EXPECT_EQ(out.new_value.hi, 4u);
  EXPECT_EQ(out.returned.lo, 1u);
  EXPECT_EQ(out.returned.hi, 2u);
}

TEST(AtomicExec, BitWrite8UsesMask) {
  // operand.lo = data, operand.hi = mask.
  auto out = ExecuteAtomic(AtomicOp::kBitWrite8, V(0xFF00FF00ull, 0),
                           V(0x0F0F0F0Full, 0x0000FFFFull));
  EXPECT_EQ(out.new_value.lo, 0xFF000F0Full);
}

TEST(AtomicExec, BooleanOps) {
  EXPECT_EQ(ExecuteAtomic(AtomicOp::kAnd16, V(0b1100), V(0b1010)).new_value.lo, 0b1000u);
  EXPECT_EQ(ExecuteAtomic(AtomicOp::kOr16, V(0b1100), V(0b1010)).new_value.lo, 0b1110u);
  EXPECT_EQ(ExecuteAtomic(AtomicOp::kXor16, V(0b1100), V(0b1010)).new_value.lo, 0b0110u);
  EXPECT_EQ(ExecuteAtomic(AtomicOp::kNand16, V(0b1100), V(0b1010)).new_value.lo,
            ~0b1000ull);
  EXPECT_EQ(ExecuteAtomic(AtomicOp::kNor16, V(0b1100), V(0b1010)).new_value.lo,
            ~0b1110ull);
}

TEST(AtomicExec, CasEqual8SucceedsOnMatch) {
  // operand.hi = compare, operand.lo = new value.
  auto out = ExecuteAtomic(AtomicOp::kCasEqual8, V(5), V(9, 5));
  EXPECT_TRUE(out.flag);
  EXPECT_TRUE(out.wrote);
  EXPECT_EQ(out.new_value.lo, 9u);
  EXPECT_EQ(out.returned.lo, 5u);
}

TEST(AtomicExec, CasEqual8FailsOnMismatch) {
  auto out = ExecuteAtomic(AtomicOp::kCasEqual8, V(6), V(9, 5));
  EXPECT_FALSE(out.flag);
  EXPECT_FALSE(out.wrote);
  EXPECT_EQ(out.new_value.lo, 6u);
}

TEST(AtomicExec, CasZero16) {
  EXPECT_TRUE(ExecuteAtomic(AtomicOp::kCasZero16, V(0, 0), V(7, 8)).flag);
  EXPECT_FALSE(ExecuteAtomic(AtomicOp::kCasZero16, V(1, 0), V(7, 8)).flag);
  EXPECT_FALSE(ExecuteAtomic(AtomicOp::kCasZero16, V(0, 1), V(7, 8)).flag);
}

TEST(AtomicExec, CasGreaterLessSigned) {
  // Signed 128-bit comparison: -1 (all ones) is less than 0.
  Value16 minus_one{~0ull, ~0ull};
  auto gt = ExecuteAtomic(AtomicOp::kCasGreater16, V(0, 0), minus_one);
  EXPECT_FALSE(gt.flag) << "-1 > 0 must fail signed";
  auto lt = ExecuteAtomic(AtomicOp::kCasLess16, V(0, 0), minus_one);
  EXPECT_TRUE(lt.flag) << "-1 < 0 must succeed signed";
  EXPECT_EQ(lt.new_value.lo, ~0ull);
}

TEST(AtomicExec, CompareEqual16DoesNotWrite) {
  auto eq = ExecuteAtomic(AtomicOp::kCompareEqual16, V(3, 4), V(3, 4));
  EXPECT_TRUE(eq.flag);
  EXPECT_FALSE(eq.wrote);
  auto ne = ExecuteAtomic(AtomicOp::kCompareEqual16, V(3, 4), V(3, 5));
  EXPECT_FALSE(ne.flag);
}

TEST(AtomicExec, FpAdd64) {
  Value16 mem{std::bit_cast<std::uint64_t>(1.5), 0};
  Value16 op{std::bit_cast<std::uint64_t>(2.25), 0};
  auto out = ExecuteAtomic(AtomicOp::kFpAdd64, mem, op);
  EXPECT_DOUBLE_EQ(std::bit_cast<double>(out.new_value.lo), 3.75);
}

TEST(AtomicExec, FpSub64) {
  Value16 mem{std::bit_cast<std::uint64_t>(1.0), 0};
  Value16 op{std::bit_cast<std::uint64_t>(0.25), 0};
  auto out = ExecuteAtomic(AtomicOp::kFpSub64, mem, op);
  EXPECT_DOUBLE_EQ(std::bit_cast<double>(out.new_value.lo), 0.75);
}

TEST(AtomicExec, FpAdd32) {
  Value16 mem{std::bit_cast<std::uint32_t>(1.5f), 0};
  Value16 op{std::bit_cast<std::uint32_t>(2.0f), 0};
  auto out = ExecuteAtomic(AtomicOp::kFpAdd32, mem, op);
  EXPECT_FLOAT_EQ(std::bit_cast<float>(static_cast<std::uint32_t>(out.new_value.lo)),
                  3.5f);
}

TEST(AtomicExec, FpOpsAreExtension) {
  EXPECT_TRUE(IsFpOp(AtomicOp::kFpAdd64));
  EXPECT_TRUE(GetOpInfo(AtomicOp::kFpAdd64).extension);
  EXPECT_FALSE(IsFpOp(AtomicOp::kCasEqual8));
  EXPECT_FALSE(GetOpInfo(AtomicOp::kAdd16).extension);
}

class AllOpsTest : public ::testing::TestWithParam<int> {};

TEST_P(AllOpsTest, MetadataConsistent) {
  AtomicOp op = static_cast<AtomicOp>(GetParam());
  const AtomicOpInfo& info = GetOpInfo(op);
  EXPECT_NE(info.name, nullptr);
  EXPECT_TRUE(info.operand_bytes == 8 || info.operand_bytes == 16);
  EXPECT_EQ(ToString(op), info.name);
}

TEST_P(AllOpsTest, IdempotentWhenNotWriting) {
  AtomicOp op = static_cast<AtomicOp>(GetParam());
  Value16 mem{0x1234, 0x5678};
  auto out = ExecuteAtomic(op, mem, Value16{1, 1});
  if (!out.wrote) {
    EXPECT_EQ(out.new_value.lo, mem.lo);
    EXPECT_EQ(out.new_value.hi, mem.hi);
  }
  // The response always carries the original data.
  EXPECT_EQ(out.returned.lo, mem.lo);
  EXPECT_EQ(out.returned.hi, mem.hi);
}

INSTANTIATE_TEST_SUITE_P(AllOps, AllOpsTest,
                         ::testing::Range(0, static_cast<int>(AtomicOp::kNumOps)));

}  // namespace
}  // namespace graphpim::hmc
