// Unit tests for the common substrate: config, strings, RNG, stats, types.
#include <gtest/gtest.h>

#include <set>

#include "common/config.h"
#include "common/random.h"
#include "common/stats.h"
#include "common/string_util.h"
#include "common/types.h"

namespace graphpim {
namespace {

TEST(Types, NsToTicksRoundTrips) {
  EXPECT_EQ(NsToTicks(1.0), 1000u);
  EXPECT_EQ(NsToTicks(13.75), 13750u);
  EXPECT_DOUBLE_EQ(TicksToNs(27500), 27.5);
}

TEST(Types, ComponentNames) {
  EXPECT_STREQ(ToString(DataComponent::kMeta), "meta");
  EXPECT_STREQ(ToString(DataComponent::kStructure), "structure");
  EXPECT_STREQ(ToString(DataComponent::kProperty), "property");
  EXPECT_STREQ(ToString(WorkloadCategory::kGraphTraversal), "GT");
  EXPECT_STREQ(ToString(WorkloadCategory::kRichProperty), "RP");
  EXPECT_STREQ(ToString(WorkloadCategory::kDynamicGraph), "DG");
}

TEST(Config, ParsesArgs) {
  const char* argv[] = {"prog", "--vertices=1024", "mode=GraphPIM", "--scale=1.5",
                        "--fp=true"};
  Config cfg = Config::FromArgs(5, const_cast<char**>(argv));
  EXPECT_EQ(cfg.GetUint("vertices", 0), 1024u);
  EXPECT_EQ(cfg.GetString("mode", ""), "GraphPIM");
  EXPECT_DOUBLE_EQ(cfg.GetDouble("scale", 0.0), 1.5);
  EXPECT_TRUE(cfg.GetBool("fp", false));
}

TEST(Config, DefaultsWhenAbsent) {
  Config cfg;
  EXPECT_EQ(cfg.GetInt("missing", -7), -7);
  EXPECT_EQ(cfg.GetUint("missing", 42), 42u);
  EXPECT_DOUBLE_EQ(cfg.GetDouble("missing", 2.5), 2.5);
  EXPECT_FALSE(cfg.GetBool("missing", false));
  EXPECT_EQ(cfg.GetString("missing", "x"), "x");
  EXPECT_FALSE(cfg.Has("missing"));
}

TEST(Config, BoolSpellings) {
  Config cfg;
  for (const char* v : {"1", "true", "yes", "on"}) {
    cfg.Set("k", v);
    EXPECT_TRUE(cfg.GetBool("k", false)) << v;
  }
  for (const char* v : {"0", "false", "no", "off"}) {
    cfg.Set("k", v);
    EXPECT_FALSE(cfg.GetBool("k", true)) << v;
  }
}

TEST(Config, SetOverrides) {
  Config cfg;
  cfg.Set("a", "1");
  cfg.Set("a", "2");
  EXPECT_EQ(cfg.GetInt("a", 0), 2);
  EXPECT_EQ(cfg.Items().size(), 1u);
}

TEST(StringUtil, Split) {
  auto parts = Split("a,b,,c", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[2], "");
  EXPECT_EQ(parts[3], "c");
}

TEST(StringUtil, Trim) {
  EXPECT_EQ(Trim("  hi \t\n"), "hi");
  EXPECT_EQ(Trim(""), "");
  EXPECT_EQ(Trim("   "), "");
  EXPECT_EQ(Trim("x"), "x");
}

TEST(StringUtil, StartsWith) {
  EXPECT_TRUE(StartsWith("--flag", "--"));
  EXPECT_FALSE(StartsWith("-", "--"));
}

TEST(StringUtil, StrFormat) {
  EXPECT_EQ(StrFormat("%d-%s", 3, "x"), "3-x");
  EXPECT_EQ(StrFormat("%.2f", 1.5), "1.50");
}

TEST(Random, Deterministic) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(Random, SeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.Next() == b.Next()) ++same;
  }
  EXPECT_EQ(same, 0);
}

TEST(Random, BoundedStaysInRange) {
  Rng rng(9);
  for (std::uint64_t bound : {1ull, 2ull, 7ull, 1000ull}) {
    for (int i = 0; i < 2000; ++i) {
      EXPECT_LT(rng.NextBounded(bound), bound);
    }
  }
}

TEST(Random, BoundedCoversRange) {
  Rng rng(5);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.NextBounded(8));
  EXPECT_EQ(seen.size(), 8u);
}

TEST(Random, DoubleInUnitInterval) {
  Rng rng(11);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    double d = rng.NextDouble();
    ASSERT_GE(d, 0.0);
    ASSERT_LT(d, 1.0);
    sum += d;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(Random, BernoulliRate) {
  Rng rng(13);
  int hits = 0;
  for (int i = 0; i < 20000; ++i) hits += rng.NextBool(0.25) ? 1 : 0;
  EXPECT_NEAR(hits / 20000.0, 0.25, 0.02);
}

TEST(Stats, AddIncSetGet) {
  StatRegistry s;
  EXPECT_DOUBLE_EQ(s.Get("x"), 0.0);
  s.Inc("x");
  s.Add("x", 2.5);
  EXPECT_DOUBLE_EQ(s.Get("x"), 3.5);
  s.Set("x", 1.0);
  EXPECT_DOUBLE_EQ(s.Get("x"), 1.0);
  EXPECT_TRUE(s.Has("x"));
}

TEST(Stats, InternIsIdempotent) {
  StatRegistry s;
  const StatId a = s.Intern("hmc.reads");
  const StatId b = s.Intern("hmc.reads");
  EXPECT_EQ(a.index(), b.index());
  EXPECT_EQ(s.NumRegistered(), 1u);
  // Handle and string paths hit the same slot.
  s.Add(a, 2.0);
  s.Add("hmc.reads", 3.0);
  EXPECT_DOUBLE_EQ(s.Get(b), 5.0);
  // A distinct name gets a distinct slot.
  EXPECT_NE(s.Intern("hmc.writes").index(), a.index());
  EXPECT_EQ(s.NumRegistered(), 2u);
}

TEST(Stats, RegisteredButUntouchedIsInvisible) {
  // Interning alone must not create output keys: the compat views list
  // only counters that were actually touched, matching the old
  // create-on-first-use StatSet semantics byte for byte.
  StatRegistry s;
  const StatId quiet = s.Intern("never.touched");
  s.Inc("a");
  EXPECT_EQ(s.Items().size(), 1u);
  EXPECT_FALSE(s.Has("never.touched"));
  s.Add(quiet, 0.0);  // touching with zero makes it visible
  EXPECT_TRUE(s.Has("never.touched"));
  EXPECT_EQ(s.Items().size(), 2u);
}

TEST(Stats, Merge) {
  StatRegistry a;
  StatRegistry b;
  a.Add("x", 1);
  b.Add("x", 2);
  b.Add("y", 3);
  a.Merge(b);
  EXPECT_DOUBLE_EQ(a.Get("x"), 3);
  EXPECT_DOUBLE_EQ(a.Get("y"), 3);
}

TEST(Stats, MergeSkipsUntouched) {
  StatRegistry a;
  StatRegistry b;
  b.Intern("ghost");  // registered in b, never touched
  b.Inc("real");
  a.Merge(b);
  EXPECT_FALSE(a.Has("ghost"));
  EXPECT_TRUE(a.Has("real"));
}

TEST(Stats, ItemsSorted) {
  StatRegistry s;
  s.Inc("b");
  s.Inc("a");
  auto items = s.Items();
  ASSERT_EQ(items.size(), 2u);
  EXPECT_EQ(items[0].first, "a");
}

TEST(Stats, ItemsHidesCoreScopeAllItemsKeepsIt) {
  StatRegistry s;
  s.Inc("core.insts");
  s.Inc("hmc.reads");
  auto compat = s.Items();
  ASSERT_EQ(compat.size(), 1u);
  EXPECT_EQ(compat[0].first, "hmc.reads");
  auto all = s.AllItems();
  ASSERT_EQ(all.size(), 2u);
  EXPECT_EQ(all[0].first, "core.insts");
}

TEST(Stats, ScopePrefixesAndForwards) {
  StatRegistry reg;
  StatScope scope(&reg, "hmc");
  const StatId reads = scope.Counter("reads");
  scope.Inc(reads);
  scope.Add(reads, 2.0);
  EXPECT_DOUBLE_EQ(reg.Get("hmc.reads"), 3.0);
  StatScope sub = scope.Sub("vault0");
  sub.Inc(sub.Counter("row_hits"));
  EXPECT_DOUBLE_EQ(reg.Get("hmc.vault0.row_hits"), 1.0);
}

TEST(Stats, DetachedScopeIsInertNoOp) {
  // A null-registry scope stands in for the old `if (stats_ != nullptr)`
  // guards: every operation must be a safe no-op.
  StatScope scope(nullptr, "hmc");
  EXPECT_FALSE(scope.attached());
  const StatId id = scope.Counter("reads");
  EXPECT_FALSE(id.valid());
  scope.Inc(id);
  scope.Add(id, 5.0);
  scope.Set(id, 7.0);  // must not crash
}

TEST(Stats, SnapshotDeltaTracksChangesOnly) {
  StatRegistry s;
  s.Add("a", 1.0);
  s.Add("b", 2.0);
  StatSnapshot before = s.Snapshot();
  s.Add("b", 3.0);
  s.Inc("c");
  StatSnapshot after = s.Snapshot();
  auto deltas = DeltaItems(after, before);
  ASSERT_EQ(deltas.size(), 2u);
  EXPECT_EQ(deltas[0].first, "b");
  EXPECT_DOUBLE_EQ(deltas[0].second, 3.0);
  EXPECT_EQ(deltas[1].first, "c");
  EXPECT_DOUBLE_EQ(deltas[1].second, 1.0);
  // Delta against the default-constructed snapshot is the full state.
  EXPECT_EQ(DeltaItems(after, StatSnapshot()).size(), 3u);
}

TEST(Stats, ResetClearsValuesKeepsNames) {
  StatRegistry s;
  const StatId x = s.Intern("x");
  s.Add(x, 5.0);
  s.Reset();
  EXPECT_DOUBLE_EQ(s.Get(x), 0.0);
  EXPECT_FALSE(s.Has("x"));          // untouched again
  EXPECT_EQ(s.NumRegistered(), 1u);  // handle stays valid
  s.Inc(x);
  EXPECT_DOUBLE_EQ(s.Get("x"), 1.0);
}

TEST(Histogram, BucketsAndOverflow) {
  Histogram h(10.0, 4);
  h.Record(5);
  h.Record(15);
  h.Record(35);
  h.Record(1000);  // overflow
  EXPECT_EQ(h.total(), 4u);
  EXPECT_EQ(h.counts()[0], 1u);
  EXPECT_EQ(h.counts()[1], 1u);
  EXPECT_EQ(h.counts()[3], 1u);
  EXPECT_EQ(h.counts()[4], 1u);
  EXPECT_DOUBLE_EQ(h.max(), 1000.0);
  EXPECT_NEAR(h.mean(), (5 + 15 + 35 + 1000) / 4.0, 1e-9);
}

TEST(Histogram, NegativeValuesClampToFirstBucket) {
  // Regression: Record(-1) used to cast the negative quotient straight to
  // std::size_t, wrapping to a huge index and landing in the overflow
  // bucket (or worse). Negatives must clamp into bucket [0, w).
  Histogram h(10.0, 4);
  h.Record(-1.0);
  h.Record(-1e9);
  h.Record(5.0);
  EXPECT_EQ(h.total(), 3u);
  EXPECT_EQ(h.counts()[0], 3u);
  EXPECT_EQ(h.counts()[4], 0u);  // nothing leaked into overflow
  EXPECT_DOUBLE_EQ(h.max(), 5.0);
}

TEST(Histogram, MeanMatchesLowercaseAccessor) {
  Histogram h(1.0, 8);
  h.Record(2.0);
  h.Record(4.0);
  EXPECT_DOUBLE_EQ(h.Mean(), h.mean());
  EXPECT_DOUBLE_EQ(h.Mean(), 3.0);
}

TEST(Histogram, PercentileEmptyIsZero) {
  Histogram h(1.0, 4);
  EXPECT_DOUBLE_EQ(h.Percentile(50), 0.0);
}

TEST(Histogram, PercentileUniform) {
  // 100 values 0..99 into [0,10) buckets: each bucket holds 10 samples.
  Histogram h(10.0, 10);
  for (int i = 0; i < 100; ++i) h.Record(i);
  EXPECT_NEAR(h.Percentile(50), 50.0, 1e-9);
  EXPECT_NEAR(h.Percentile(95), 95.0, 1e-9);
  EXPECT_NEAR(h.Percentile(10), 10.0, 1e-9);
  // p=0 resolves to the start of the first populated bucket.
  EXPECT_NEAR(h.Percentile(0), 0.0, 1e-9);
  // p=100 lands at the top of the last populated bucket.
  EXPECT_NEAR(h.Percentile(100), 100.0, 1e-9);
}

TEST(Histogram, QuantileIsTheGeneralForm) {
  // Percentile(p) is defined as Quantile(p/100); serving SLOs call
  // Quantile directly with q in [0, 1].
  Histogram h(10.0, 10);
  for (int i = 0; i < 100; ++i) h.Record(i);
  EXPECT_DOUBLE_EQ(h.Quantile(0.5), h.Percentile(50));
  EXPECT_DOUBLE_EQ(h.Quantile(0.95), h.Percentile(95));
  EXPECT_DOUBLE_EQ(h.Quantile(0.99), h.Percentile(99));
  EXPECT_NEAR(h.Quantile(0.99), 99.0, 1e-9);
  // Out-of-range q clamps like out-of-range p always has.
  EXPECT_DOUBLE_EQ(h.Quantile(-1.0), h.Quantile(0.0));
  EXPECT_DOUBLE_EQ(h.Quantile(2.0), h.Quantile(1.0));
  Histogram empty(1.0, 4);
  EXPECT_DOUBLE_EQ(empty.Quantile(0.99), 0.0);
}

TEST(Histogram, PercentileSkipsEmptyBucketsAndClampsOverflow) {
  Histogram h(10.0, 4);  // buckets [0,10) [10,20) [20,30) [30,40) + overflow
  h.Record(5);
  h.Record(35);
  h.Record(500);  // overflow
  // Rank 1 of 3 sits in the first bucket.
  EXPECT_NEAR(h.Percentile(30), (0.0 + 0.9) * 10.0, 1e-9);
  // Ranks in the overflow bucket report the recorded max.
  EXPECT_DOUBLE_EQ(h.Percentile(100), 500.0);
  // Out-of-range p is clamped rather than UB.
  EXPECT_DOUBLE_EQ(h.Percentile(150), 500.0);
  EXPECT_GE(h.Percentile(-5), 0.0);
}

}  // namespace
}  // namespace graphpim
