// src/pmem tests: the persist-domain timing layer (flush/fence costs and
// durability stamping), the deterministic crash plan, the persist-ordering
// checker (true positives on the seeded mutants, true negative on the full
// discipline), the crash/recovery harness with the all-or-nothing
// invariant, the pmem.enable=0 passthrough contract, and the sweep-journal
// fingerprint coverage of the pmem.* knobs.
#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <vector>

#include "common/log.h"
#include "core/report.h"
#include "core/runner.h"
#include "cpu/uop.h"
#include "exec/journal.h"
#include "exec/sweep.h"
#include "fault/fault.h"
#include "pmem/checker.h"
#include "pmem/crash.h"
#include "pmem/pmem.h"

namespace graphpim {
namespace {

// ------------------------------------------------------ PersistDomain

pmem::PmemParams OnParams() {
  pmem::PmemParams p;
  p.enable = true;
  p.flush_ns = 40.0;
  p.fence_ns = 20.0;
  return p;
}

constexpr Addr kBase = 0x1000;
constexpr Addr kEnd = kBase + (1 << 20);

TEST(PmemTiming, FlushChargesAndFencePersists) {
  StatRegistry reg;
  pmem::PersistDomain d(OnParams(), kBase, kEnd, &reg);
  d.OnStore(0, kBase + 8, 16, NsToTicks(10));
  const Tick flush_done = d.OnFlush(0, kBase + 8, NsToTicks(10));
  EXPECT_EQ(flush_done, NsToTicks(50));  // 10 + flush_ns
  // The fence waits out the pending writeback, then charges fence_ns.
  const Tick fence_done = d.OnFence(0, NsToTicks(12));
  EXPECT_EQ(fence_done, NsToTicks(70));  // max(12, 50) + fence_ns
  d.Finish(NsToTicks(100));

  const pmem::PersistLog& log = d.log();
  ASSERT_EQ(log.stores.size(), 1u);
  EXPECT_EQ(log.stores[0].ordinal, 0u);
  EXPECT_EQ(log.stores[0].issue, NsToTicks(10));
  EXPECT_EQ(log.stores[0].persist, fence_done);
  EXPECT_EQ(log.end_tick, NsToTicks(100));
  EXPECT_DOUBLE_EQ(reg.Get("pmem.pmr_stores"), 1.0);
  EXPECT_DOUBLE_EQ(reg.Get("pmem.flushes"), 1.0);
  EXPECT_DOUBLE_EQ(reg.Get("pmem.fences"), 1.0);
  EXPECT_DOUBLE_EQ(reg.Get("pmem.persisted_stores"), 1.0);
  EXPECT_DOUBLE_EQ(reg.Get("pmem.unpersisted_at_end"), 0.0);
}

TEST(PmemTiming, FenceCoversEveryPriorFlushOfTheCore) {
  // sfence semantics: one fence makes BOTH flushed lines durable.
  StatRegistry reg;
  pmem::PersistDomain d(OnParams(), kBase, kEnd, &reg);
  d.OnStore(0, kBase, 8, NsToTicks(0));
  d.OnStore(0, kBase + 64, 8, NsToTicks(1));
  d.OnFlush(0, kBase, NsToTicks(2));
  d.OnFlush(0, kBase + 64, NsToTicks(3));
  const Tick fence_done = d.OnFence(0, NsToTicks(4));
  d.Finish(NsToTicks(200));
  ASSERT_EQ(d.log().stores.size(), 2u);
  EXPECT_EQ(d.log().stores[0].persist, fence_done);
  EXPECT_EQ(d.log().stores[1].persist, fence_done);
  EXPECT_DOUBLE_EQ(reg.Get("pmem.persisted_stores"), 2.0);
}

TEST(PmemTiming, RedundantAndCleanFlushesAreCounted) {
  StatRegistry reg;
  pmem::PersistDomain d(OnParams(), kBase, kEnd, &reg);
  d.OnStore(0, kBase, 8, NsToTicks(0));
  d.OnFlush(0, kBase, NsToTicks(1));   // useful
  d.OnFlush(0, kBase, NsToTicks(2));   // line already flushed: redundant
  d.OnFlush(0, kBase + 128, NsToTicks(3));  // never-stored line: redundant
  d.Finish(NsToTicks(50));
  EXPECT_DOUBLE_EQ(reg.Get("pmem.flushes"), 3.0);
  EXPECT_DOUBLE_EQ(reg.Get("pmem.redundant_flushes"), 2.0);
}

TEST(PmemTiming, UnflushedStoreStaysUnpersisted) {
  StatRegistry reg;
  pmem::PersistDomain d(OnParams(), kBase, kEnd, &reg);
  d.OnStore(0, kBase, 16, NsToTicks(0));
  d.OnFence(0, NsToTicks(5));  // fence without a flush covers nothing
  d.Finish(NsToTicks(50));
  EXPECT_EQ(d.log().stores[0].persist, pmem::kNeverPersisted);
  EXPECT_DOUBLE_EQ(reg.Get("pmem.persisted_stores"), 0.0);
  EXPECT_DOUBLE_EQ(reg.Get("pmem.unpersisted_at_end"), 1.0);
}

// --------------------------------------------------------- CrashPlan

TEST(CrashPlan, DeriveCrashSeedIsPureAndDecorrelated) {
  EXPECT_EQ(fault::DeriveCrashSeed(1, 0), fault::DeriveCrashSeed(1, 0));
  EXPECT_NE(fault::DeriveCrashSeed(1, 0), fault::DeriveCrashSeed(1, 1));
  EXPECT_NE(fault::DeriveCrashSeed(1, 0), fault::DeriveCrashSeed(2, 0));
  // Crash and fault streams of the same cell must not collide.
  EXPECT_NE(fault::DeriveCrashSeed(1, 0), fault::DeriveFaultSeed(1, 0));
}

TEST(CrashPlan, SampleCrashTickIsDeterministicAndInRange) {
  fault::CrashPlan a(99), b(99);
  const Tick end = NsToTicks(50'000);
  bool any_differ = false;
  for (std::uint64_t i = 0; i < 200; ++i) {
    const Tick t = a.SampleCrashTick(i, end);
    EXPECT_EQ(t, b.SampleCrashTick(i, end)) << i;
    EXPECT_LE(t, end);
    if (i > 0 && t != a.SampleCrashTick(0, end)) any_differ = true;
  }
  EXPECT_TRUE(any_differ);
  EXPECT_EQ(a.SampleCrashTick(7, 0), 0u);  // empty run: crash at tick 0
}

TEST(CrashPlan, InFlightOutcomeRespectsPowerfailAtomicity) {
  fault::CrashPlan plan(3);
  int seen[3] = {0, 0, 0};
  for (std::uint64_t i = 0; i < 600; ++i) {
    const int atomic8 = plan.InFlightOutcome(0x42, i, /*can_tear=*/false);
    ASSERT_GE(atomic8, 0);
    ASSERT_LE(atomic8, 1);  // 8B stores never tear
    ++seen[plan.InFlightOutcome(0x43, i, /*can_tear=*/true)];
    // Pure function of (seed, store, cycle).
    EXPECT_EQ(atomic8, plan.InFlightOutcome(0x42, i, false));
  }
  EXPECT_GT(seen[0], 100);  // old
  EXPECT_GT(seen[1], 100);  // new
  EXPECT_GT(seen[2], 100);  // torn
}

// ------------------------------------------------- persist checker

// Hand-built micro-op stream helpers (thread 0 only).
cpu::MicroOp Op(cpu::OpType type, Addr addr, std::uint8_t size = 8) {
  cpu::MicroOp op;
  op.type = type;
  op.addr = addr;
  op.size = size;
  return op;
}

TEST(PersistChecker, CleanDisciplinePasses) {
  std::vector<cpu::UopStream> streams(1);
  streams[0] = {Op(cpu::OpType::kStore, kBase, 16),
                Op(cpu::OpType::kFlush, kBase),
                Op(cpu::OpType::kFence, 0)};
  const pmem::CheckReport r =
      pmem::CheckPersistOrdering(streams, kBase, kEnd, nullptr);
  EXPECT_TRUE(r.ok());
  EXPECT_EQ(r.pmr_stores, 1u);
  EXPECT_EQ(r.flushes, 1u);
  EXPECT_EQ(r.fences, 1u);
}

TEST(PersistChecker, UnpersistedAndMissingFenceAreDistinct) {
  std::vector<cpu::UopStream> streams(1);
  streams[0] = {Op(cpu::OpType::kStore, kBase, 8),        // never flushed
                Op(cpu::OpType::kStore, kBase + 64, 8),   // flushed, unfenced
                Op(cpu::OpType::kFlush, kBase + 64)};
  const pmem::CheckReport r =
      pmem::CheckPersistOrdering(streams, kBase, kEnd, nullptr);
  EXPECT_EQ(r.unpersisted_stores, 1u);
  EXPECT_EQ(r.missing_fences, 1u);
  ASSERT_EQ(r.violations.size(), 2u);
}

TEST(PersistChecker, RedundantFlushIsFlagged) {
  std::vector<cpu::UopStream> streams(1);
  streams[0] = {Op(cpu::OpType::kStore, kBase, 8),
                Op(cpu::OpType::kFlush, kBase),
                Op(cpu::OpType::kFlush, kBase),  // doubled
                Op(cpu::OpType::kFence, 0)};
  const pmem::CheckReport r =
      pmem::CheckPersistOrdering(streams, kBase, kEnd, nullptr);
  EXPECT_EQ(r.redundant_flushes, 1u);
  EXPECT_EQ(r.unpersisted_stores, 0u);
}

TEST(PersistChecker, UnorderedPublishNeedsTheUpdateLog) {
  // Payload flushed but not fenced before the publish store issues — the
  // exact shape the missing-fence mutant seeds.
  std::vector<cpu::UopStream> streams(1);
  streams[0] = {Op(cpu::OpType::kStore, kBase, 16),        // payload, ord 0
                Op(cpu::OpType::kFlush, kBase),
                Op(cpu::OpType::kStore, kBase + 512, 8),   // publish, ord 1
                Op(cpu::OpType::kFlush, kBase + 512),
                Op(cpu::OpType::kFence, 0)};
  pmem::UpdateLog updates;
  updates.updates.push_back({0, {0}, 1});
  const pmem::CheckReport r =
      pmem::CheckPersistOrdering(streams, kBase, kEnd, &updates);
  EXPECT_EQ(r.unordered_publishes, 1u);
  ASSERT_EQ(r.violations.size(), 1u);
  EXPECT_EQ(r.violations[0].kind, pmem::ViolationKind::kUnorderedPublish);
  // Without the update log the same stream is merely unordered publishing
  // the checker can't see; the flush+fence discipline itself is clean.
  EXPECT_TRUE(pmem::CheckPersistOrdering(streams, kBase, kEnd, nullptr).ok());
}

TEST(PersistChecker, NonPmrStoresAreIgnored) {
  std::vector<cpu::UopStream> streams(1);
  streams[0] = {Op(cpu::OpType::kStore, kBase - 64, 8),  // below the PMR
                Op(cpu::OpType::kStore, kEnd, 8)};       // past the PMR
  const pmem::CheckReport r =
      pmem::CheckPersistOrdering(streams, kBase, kEnd, nullptr);
  EXPECT_TRUE(r.ok());
  EXPECT_EQ(r.pmr_stores, 0u);
}

// -------------------------------------------- crash/recovery harness

pmem::PersistLog TwoStoreLog() {
  // payload (16B, tearable) persists at 100ns; publish (8B) at 200ns.
  pmem::PersistLog log;
  pmem::PersistStoreEvent payload;
  payload.core = 0;
  payload.ordinal = 0;
  payload.size = 16;
  payload.issue = NsToTicks(10);
  payload.persist = NsToTicks(100);
  pmem::PersistStoreEvent publish;
  publish.core = 0;
  publish.ordinal = 1;
  publish.size = 8;
  publish.issue = NsToTicks(110);
  publish.persist = NsToTicks(200);
  log.stores = {payload, publish};
  log.end_tick = NsToTicks(300);
  return log;
}

pmem::UpdateLog OneUpdate() {
  pmem::UpdateLog u;
  u.invariant = "all-or-nothing";
  u.updates.push_back({0, {0}, 1});
  return u;
}

TEST(CrashRecovery, CrashBeforeIssueDiscardsTheUpdate) {
  const pmem::CrashOutcome o = pmem::EvaluateCrashRecovery(
      TwoStoreLog(), OneUpdate(), NsToTicks(5), fault::CrashPlan(1), 0,
      pmem::AllOrNothingInvariant("edge rewrite"));
  EXPECT_TRUE(o.consistent);
  EXPECT_EQ(o.durable_updates, 0u);
  EXPECT_EQ(o.discarded_updates, 1u);
  EXPECT_EQ(o.inflight_stores, 0u);
}

TEST(CrashRecovery, CrashAfterBothPersistsIsDurable) {
  const pmem::CrashOutcome o = pmem::EvaluateCrashRecovery(
      TwoStoreLog(), OneUpdate(), NsToTicks(250), fault::CrashPlan(1), 0,
      pmem::AllOrNothingInvariant("edge rewrite"));
  EXPECT_TRUE(o.consistent);
  EXPECT_EQ(o.durable_updates, 1u);
  EXPECT_EQ(o.discarded_updates, 0u);
}

TEST(CrashRecovery, VisiblePublishWithLostPayloadIsInconsistent) {
  // Make the payload persist AFTER the publish record — an unordered
  // discipline. Crash between the two: the publish is durable-new but the
  // payload never reached the media, which recovery must reject.
  pmem::PersistLog log = TwoStoreLog();
  log.stores[0].persist = NsToTicks(250);  // payload now persists last
  const pmem::CrashOutcome o = pmem::EvaluateCrashRecovery(
      log, OneUpdate(), NsToTicks(220), fault::CrashPlan(1), 0,
      pmem::AllOrNothingInvariant("edge rewrite"));
  EXPECT_FALSE(o.consistent);
  ASSERT_FALSE(o.errors.empty());
  EXPECT_NE(o.errors[0].find("edge rewrite"), std::string::npos);
}

TEST(CrashRecovery, UpdateNamingAnAbsentStoreIsAnError) {
  pmem::UpdateLog u;
  u.updates.push_back({0, {7}, 8});  // ordinals the log never recorded
  const pmem::CrashOutcome o = pmem::EvaluateCrashRecovery(
      TwoStoreLog(), u, NsToTicks(250), fault::CrashPlan(1), 0,
      pmem::AllOrNothingInvariant("edge rewrite"));
  EXPECT_FALSE(o.consistent);
}

TEST(CrashRecovery, EvaluationIsAPureFunctionOfItsInputs) {
  const fault::CrashPlan plan(fault::DeriveCrashSeed(42, 0));
  const pmem::PersistLog log = TwoStoreLog();
  const pmem::UpdateLog updates = OneUpdate();
  const auto inv = pmem::AllOrNothingInvariant("edge rewrite");
  for (std::uint64_t c = 0; c < 32; ++c) {
    const Tick t = plan.SampleCrashTick(c, log.end_tick);
    EXPECT_EQ(pmem::FormatCrashOutcome(
                  pmem::EvaluateCrashRecovery(log, updates, t, plan, c, inv)),
              pmem::FormatCrashOutcome(
                  pmem::EvaluateCrashRecovery(log, updates, t, plan, c, inv)))
        << c;
  }
}

// ------------------------------------------------------- end to end

core::Experiment PersistExperiment(const std::string& wl,
                                   pmem::PersistMode mode) {
  core::Experiment::Options eo;
  eo.num_threads = 4;
  eo.seed = 1;
  eo.op_cap = 40'000;
  eo.persist = mode;
  return core::Experiment("ldbc", 512, wl, eo);
}

core::SimConfig PersistConfig() {
  core::SimConfig sc = core::SimConfig::Scaled(core::Mode::kGraphPim);
  sc.num_cores = 4;
  sc.pmem.enable = true;
  return sc;
}

TEST(PersistEndToEnd, FullDisciplineIsCheckerClean) {
  for (const char* wl : {"gup", "tmorph"}) {
    core::Experiment exp = PersistExperiment(wl, pmem::PersistMode::kFull);
    ASSERT_TRUE(exp.persist_capable());
    ASSERT_NE(exp.update_log(), nullptr);
    EXPECT_FALSE(exp.update_log()->empty()) << wl;
    const pmem::CheckReport r = pmem::CheckPersistOrdering(
        exp.trace().streams, exp.pmr_base(), exp.pmr_end(), exp.update_log());
    EXPECT_TRUE(r.ok()) << wl << ": " << pmem::FormatCheckReport(r, nullptr);
  }
}

TEST(PersistEndToEnd, MissingFenceMutantIsFlaggedAsUnorderedPublish) {
  for (const char* wl : {"gup", "tmorph"}) {
    core::Experiment exp =
        PersistExperiment(wl, pmem::PersistMode::kMissingFence);
    const pmem::CheckReport r = pmem::CheckPersistOrdering(
        exp.trace().streams, exp.pmr_base(), exp.pmr_end(), exp.update_log());
    EXPECT_GT(r.unordered_publishes, 0u) << wl;
    EXPECT_EQ(r.redundant_flushes, 0u) << wl;
  }
}

TEST(PersistEndToEnd, RedundantFlushMutantIsFlagged) {
  core::Experiment exp =
      PersistExperiment("gup", pmem::PersistMode::kRedundantFlush);
  const pmem::CheckReport r = pmem::CheckPersistOrdering(
      exp.trace().streams, exp.pmr_base(), exp.pmr_end(), exp.update_log());
  EXPECT_GT(r.redundant_flushes, 0u);
  EXPECT_EQ(r.unordered_publishes, 0u);
}

TEST(PersistEndToEnd, DisabledPmemIsAStrictPassthrough) {
  core::Experiment exp = PersistExperiment("gup", pmem::PersistMode::kOff);
  core::SimConfig plain = core::SimConfig::Scaled(core::Mode::kGraphPim);
  plain.num_cores = 4;
  core::SimConfig off = plain;
  off.pmem.flush_ns = 999.0;  // knobs are inert while enable=0
  off.pmem.fence_ns = 999.0;
  const core::SimResults a = exp.Run(plain);
  const core::SimResults b = exp.Run(off);
  EXPECT_EQ(core::ToJson(a), core::ToJson(b));
  EXPECT_EQ(core::FormatReport(a), core::FormatReport(b));
  EXPECT_FALSE(a.raw.Has("pmem.flushes"));
}

TEST(PersistEndToEnd, EnabledRunChargesPersistTimeAndExportsStats) {
  core::Experiment exp = PersistExperiment("gup", pmem::PersistMode::kFull);
  core::SimConfig off = PersistConfig();
  off.pmem.enable = false;  // same persist trace, free flush/fence ops
  const core::SimResults cheap = exp.Run(off);
  const core::SimResults priced = exp.Run(PersistConfig());
  EXPECT_GT(priced.cycles, cheap.cycles);
  ASSERT_TRUE(priced.raw.Has("pmem.flushes"));
  EXPECT_GT(priced.raw.Get("pmem.flushes"), 0.0);
  EXPECT_DOUBLE_EQ(priced.raw.Get("pmem.unpersisted_at_end"), 0.0);
  EXPECT_NE(core::FormatReport(priced).find("pmem: "), std::string::npos);
  // The pmem line sits after the golden-diff cutoff, like the span section.
  EXPECT_LT(core::FormatReport(priced).find("uncore energy:"),
            core::FormatReport(priced).find("pmem: "));
}

TEST(PersistEndToEnd, FullDisciplineSurvivesEveryCrashTick) {
  // The headline robustness property: 100 deterministic crash/recovery
  // cycles over a full-discipline run all recover consistently.
  for (const char* wl : {"gup", "tmorph"}) {
    core::Experiment exp = PersistExperiment(wl, pmem::PersistMode::kFull);
    pmem::PersistLog log;
    core::RunOptions ro;
    ro.persist = &log;
    exp.Run(PersistConfig(), ro);
    ASSERT_FALSE(log.empty()) << wl;
    const fault::CrashPlan plan(fault::DeriveCrashSeed(1, 0));
    const auto inv = exp.recovery_invariant();
    std::uint64_t durable = 0;
    for (std::uint64_t c = 0; c < 100; ++c) {
      const pmem::CrashOutcome o = pmem::EvaluateCrashRecovery(
          log, *exp.update_log(), plan.SampleCrashTick(c, log.end_tick), plan,
          c, inv);
      EXPECT_TRUE(o.consistent)
          << wl << " cycle " << c << ": " << pmem::FormatCrashOutcome(o);
      durable += o.durable_updates;
    }
    EXPECT_GT(durable, 0u) << wl;
  }
}

TEST(PersistEndToEnd, MissingFenceMutantTearsUpdatesUnderCrash) {
  // With the payload fence elided, payload and publish persist at the SAME
  // fence, so a crash inside that window can observe the publish record
  // while the payload drew old/torn — the inconsistency the full
  // discipline provably excludes.
  core::Experiment exp =
      PersistExperiment("gup", pmem::PersistMode::kMissingFence);
  pmem::PersistLog log;
  core::RunOptions ro;
  ro.persist = &log;
  exp.Run(PersistConfig(), ro);
  const fault::CrashPlan plan(fault::DeriveCrashSeed(1, 0));
  const auto inv = exp.recovery_invariant();
  std::uint64_t inconsistent = 0;
  for (std::uint64_t c = 0; c < 100; ++c) {
    const pmem::CrashOutcome o = pmem::EvaluateCrashRecovery(
        log, *exp.update_log(), plan.SampleCrashTick(c, log.end_tick), plan,
        c, inv);
    if (!o.consistent) ++inconsistent;
  }
  EXPECT_GT(inconsistent, 0u);
}

// ------------------------------------------------ sweep integration

exec::SweepGrid PmemGrid(double flush_ns = 40.0) {
  exec::SweepGrid g =
      exec::ParseGridSpec("workloads=gup;modes=baseline,graphpim");
  g.vertices = 512;
  g.op_cap = 20'000;
  g.sim_threads = 4;
  for (auto& c : g.configs) {
    c.num_cores = 4;
    c.pmem.enable = true;
    c.pmem.flush_ns = flush_ns;
  }
  return g;
}

TEST(PmemSweep, EnableMustBeUniformAcrossTheGrid) {
  exec::SweepGrid g = PmemGrid();
  g.configs[1].pmem.enable = false;  // half-persistent grid is meaningless
  exec::SweepRunner::Options opts;
  opts.jobs = 1;
  EXPECT_THROW(exec::SweepRunner(opts).Run(g), SimError);
}

TEST(PmemSweep, FingerprintCoversPmemKnobs) {
  EXPECT_NE(exec::GridFingerprint(PmemGrid(40.0)),
            exec::GridFingerprint(PmemGrid(80.0)));
}

TEST(PmemSweep, ResumeRefusesAJournalWithDifferentPmemKnobs) {
  // Regression for the journal-splicing hazard: rows simulated under one
  // flush cost must not seed a resume under another.
  const std::string path = ::testing::TempDir() + "/gp_pmem_journal.jsonl";
  std::remove(path.c_str());
  exec::SweepRunner::Options opts;
  opts.jobs = 1;
  opts.journal_path = path;
  exec::SweepResultTable t = exec::SweepRunner(opts).Run(PmemGrid(40.0));
  EXPECT_EQ(t.failed_rows, 0u);

  exec::SweepRunner::Options resume_opts = opts;
  resume_opts.resume = true;
  EXPECT_THROW(exec::SweepRunner(resume_opts).Run(PmemGrid(80.0)), SimError);
  // The unchanged grid still resumes.
  exec::SweepResultTable again =
      exec::SweepRunner(resume_opts).Run(PmemGrid(40.0));
  EXPECT_EQ(again.failed_rows, 0u);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace graphpim
