// Remaining targeted coverage: FP compute latency, throttle window wrap,
// prefetcher disable, energy parameter sensitivity.
#include <gtest/gtest.h>

#include "energy/energy.h"
#include "hmc/throttle.h"
#include "mem/hierarchy.h"
#include "cpu/core.h"

namespace graphpim {
namespace {

class InstantMem : public cpu::MemoryInterface {
 public:
  cpu::MemOutcome Access(int, const cpu::MicroOp&, Tick when) override {
    cpu::MemOutcome out;
    out.complete = when;
    out.retire_ready = when;
    return out;
  }
};

TEST(CoreQuality, FpComputeSlowerThanInt) {
  InstantMem mem;
  cpu::CoreParams p;
  p.fp_compute_lat = 8;
  cpu::OooCore core(0, p, &mem);
  auto run = [&](bool fp) {
    cpu::UopStream trace;
    for (int i = 0; i < 1000; ++i) {
      cpu::MicroOp op;
      op.type = cpu::OpType::kCompute;
      op.flags = cpu::kFlagDepPrev | (fp ? cpu::kFlagFpCompute : 0);
      trace.push_back(op);
    }
    core.Reset(&trace);
    while (core.Advance(core.Now() + NsToTicks(1e6)) != cpu::OooCore::Status::kDone) {
    }
    return core.Now();
  };
  Tick int_time = run(false);
  Tick fp_time = run(true);
  EXPECT_NEAR(static_cast<double>(fp_time) / static_cast<double>(int_time), 8.0, 0.5);
}

TEST(ThrottleQuality, LongHorizonJumpResetsWindow) {
  hmc::EpochThrottle t(/*epoch=*/1000, /*unit=*/100, /*window=*/4);
  for (int i = 0; i < 10; ++i) t.Reserve(1, 0);
  // A reservation far past the window must not see stale usage.
  Tick far = t.Reserve(1, 1'000'000'000);
  EXPECT_GE(far, 1'000'000'000u);
  EXPECT_LE(far, 1'000'000'000u + 2000u);
  // And the window keeps working after the jump.
  Tick next = t.Reserve(1, 1'000'000'000);
  EXPECT_GT(next, far - 2000);
}

TEST(HierarchyQuality, PrefetcherCanBeDisabled) {
  StatRegistry stats;
  hmc::HmcParams hp;
  hmc::HmcNetwork net(hp, &stats, 0, 0);
  mem::CacheParams cp;
  cp.prefetch_streams = 0;
  mem::CacheHierarchy hier(1, cp, &net, &stats);
  Tick t = 0;
  for (int i = 0; i < 16; ++i) {
    t = hier.Access(0, mem::AccessType::kRead, 0x100000 + i * 64, t).complete;
  }
  EXPECT_DOUBLE_EQ(stats.Get("cache.prefetch_covered"), 0.0);
}

TEST(EnergyQuality, MoreFlitsMoreLinkEnergy) {
  StatRegistry a;
  StatRegistry b;
  a.Set("hmc.req_flits", 1e6);
  b.Set("hmc.req_flits", 2e6);
  energy::EnergyParams p;
  p.link_static_w = 0;
  EXPECT_LT(energy::ComputeUncoreEnergy(a, 1.0, p).link_j,
            energy::ComputeUncoreEnergy(b, 1.0, p).link_j);
}

TEST(EnergyQuality, FpFuStaticOnlyWhenEnabled) {
  StatRegistry s;
  energy::EnergyParams p;
  p.fp_fus_enabled = false;
  double off = energy::ComputeUncoreEnergy(s, 1.0, p).fu_j;
  p.fp_fus_enabled = true;
  double on = energy::ComputeUncoreEnergy(s, 1.0, p).fu_j;
  EXPECT_GT(on, off);
}

}  // namespace
}  // namespace graphpim
