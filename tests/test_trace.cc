// Tests for phase-delta capture (trace::PhaseLog), trace export, and the
// sweep-journal phase sidecar.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "common/trace.h"
#include "core/report.h"
#include "core/runner.h"
#include "exec/journal.h"
#include "exec/sweep.h"

namespace graphpim {
namespace {

trace::PhaseLog TwoPhaseLog() {
  trace::PhaseLog log;
  StatRegistry reg;
  reg.Add("hmc.reads", 10.0);
  reg.Add("core.insts", 100.0);
  log.Cut("superstep.0", 0, NsToTicks(50.0), reg);
  reg.Add("hmc.reads", 5.0);
  log.Cut("drain.1", NsToTicks(50.0), NsToTicks(80.0), reg);
  return log;
}

TEST(PhaseLog, CutsCarryDeltasNotTotals) {
  trace::PhaseLog log = TwoPhaseLog();
  ASSERT_EQ(log.phases().size(), 2u);
  const trace::PhaseRecord& p0 = log.phases()[0];
  EXPECT_EQ(p0.name, "superstep.0");
  ASSERT_EQ(p0.deltas.size(), 2u);  // name-sorted: core.insts, hmc.reads
  EXPECT_EQ(p0.deltas[0].first, "core.insts");
  EXPECT_DOUBLE_EQ(p0.deltas[0].second, 100.0);
  EXPECT_DOUBLE_EQ(p0.deltas[1].second, 10.0);
  // Second phase: only hmc.reads moved, and by its delta, not its total.
  const trace::PhaseRecord& p1 = log.phases()[1];
  ASSERT_EQ(p1.deltas.size(), 1u);
  EXPECT_EQ(p1.deltas[0].first, "hmc.reads");
  EXPECT_DOUBLE_EQ(p1.deltas[0].second, 5.0);
}

TEST(PhaseLog, ChromeTraceAndJsonlFormats) {
  trace::PhaseLog log = TwoPhaseLog();
  const std::string chrome = trace::ToChromeTrace(log);
  EXPECT_NE(chrome.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(chrome.find("\"name\":\"superstep.0\""), std::string::npos);
  EXPECT_NE(chrome.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(chrome.find("\"ph\":\"C\""), std::string::npos);

  const std::string jsonl = trace::ToJsonl(log);
  std::istringstream in(jsonl);
  std::string line;
  std::size_t lines = 0;
  while (std::getline(in, line)) {
    ++lines;
    EXPECT_EQ(line.front(), '{');
    EXPECT_EQ(line.back(), '}');
  }
  EXPECT_EQ(lines, 2u);
  EXPECT_NE(jsonl.find("\"phase\":\"drain.1\""), std::string::npos);
  EXPECT_NE(jsonl.find("\"hmc.reads\":5"), std::string::npos);
}

TEST(PhaseLog, WriteTraceSelectsFormatByExtension) {
  trace::PhaseLog log = TwoPhaseLog();
  const std::string base = ::testing::TempDir() + "/gp_trace_test";
  trace::WriteTrace(log, base + ".jsonl");
  trace::WriteTrace(log, base + ".json");
  std::ifstream a(base + ".jsonl");
  std::string first;
  std::getline(a, first);
  EXPECT_EQ(first.rfind("{\"phase\":", 0), 0u);
  std::ifstream b(base + ".json");
  std::string head;
  std::getline(b, head);
  EXPECT_NE(head.find("traceEvents"), std::string::npos);
  std::remove((base + ".jsonl").c_str());
  std::remove((base + ".json").c_str());
}

// End to end through the run loop: phases cut at BSP barriers, cover the
// whole run, and their deltas sum back to the final counter totals.
TEST(PhaseLog, RunSimulationPhasesSumToTotals) {
  core::Experiment::Options eo;
  eo.num_threads = 4;
  eo.seed = 3;
  eo.op_cap = 30'000;
  core::Experiment exp("ldbc", 512, "bfs", eo);
  core::SimConfig sc = core::SimConfig::Scaled(core::Mode::kGraphPim);
  sc.num_cores = 4;

  trace::PhaseLog log;
  core::RunOptions ro;
  ro.phases = &log;
  core::SimResults r = exp.Run(sc, ro);

  ASSERT_FALSE(log.empty());
  // The final cut is the drain phase; earlier ones are supersteps.
  EXPECT_EQ(log.phases().back().name.rfind("drain.", 0), 0u);
  Tick prev_end = 0;
  double insts = 0.0, reads = 0.0;
  for (const trace::PhaseRecord& ph : log.phases()) {
    EXPECT_EQ(ph.start, prev_end);  // contiguous coverage
    EXPECT_GE(ph.end, ph.start);
    prev_end = ph.end;
    for (const auto& [k, v] : ph.deltas) {
      if (k == "core.insts") insts += v;
      if (k == "hmc.reads") reads += v;
    }
  }
  EXPECT_DOUBLE_EQ(insts, r.raw.Get("core.insts"));
  EXPECT_DOUBLE_EQ(reads, r.raw.Get("hmc.reads"));
  // Identity check: a phase-instrumented run must not perturb the results.
  EXPECT_EQ(core::ToJson(r), core::ToJson(exp.Run(sc)));
}

TEST(Journal, PhaseSidecarLinesAreWrittenAndSkippedOnLoad) {
  const std::string path = ::testing::TempDir() + "/gp_phases_journal.jsonl";
  std::remove(path.c_str());

  exec::SweepGrid grid;
  grid.workloads = {"bfs"};
  grid.profiles = {"ldbc"};
  grid.vertices = 512;
  grid.sim_threads = 2;
  grid.op_cap = 10'000;
  core::SimConfig c = core::SimConfig::Scaled(core::Mode::kGraphPim);
  c.num_cores = 2;
  grid.configs = {c};
  grid.config_names = {"graphpim"};

  exec::SweepRunner::Options opts;
  opts.jobs = 1;
  opts.journal_path = path;
  opts.journal_phases = true;
  exec::SweepResultTable t = exec::SweepRunner(opts).Run(grid);
  ASSERT_EQ(t.failed_rows, 0u);

  // The journal holds header + row + at least one phases_for sidecar.
  std::ifstream in(path);
  std::string line;
  std::size_t sidecars = 0;
  while (std::getline(in, line)) {
    if (line.rfind("{\"phases_for\":", 0) == 0) {
      ++sidecars;
      EXPECT_NE(line.find("\"phases\":["), std::string::npos);
      EXPECT_NE(line.find("superstep."), std::string::npos);
    }
  }
  EXPECT_GE(sidecars, 1u);

  // Sidecars are annotations: loading must restore the row and count
  // nothing as dropped.
  exec::JournalData jd;
  ASSERT_TRUE(exec::LoadJournal(path, &jd));
  EXPECT_EQ(jd.rows.size(), 1u);
  EXPECT_EQ(jd.dropped_lines, 0u);
  EXPECT_EQ(core::ToJson(jd.rows[0].results), core::ToJson(t.rows[0].results));
  std::remove(path.c_str());
}

}  // namespace
}  // namespace graphpim
