// Parameterized property sweeps across substrate configurations.
#include <gtest/gtest.h>

#include "core/runner.h"
#include "cpu/core.h"
#include "graph/generator.h"
#include "hmc/cube.h"

namespace graphpim {
namespace {

// ---------------------------------------------------------------- HMC

class HmcTimingSweep : public ::testing::TestWithParam<double> {};

TEST_P(HmcTimingSweep, RowHitAlwaysFasterThanConflict) {
  hmc::HmcParams p;
  p.t_cl = p.t_rcd = p.t_rp = NsToTicks(GetParam());
  p.t_ras = 2 * p.t_cl;
  p.t_refi = 0;
  hmc::HmcCube cube(p);
  // Cold access, then a row hit, then a conflicting row in the same bank.
  hmc::Completion cold = cube.Read(0x0, 8, 0);
  Tick t1 = cold.internal_done + NsToTicks(1000.0);
  hmc::Completion hit = cube.Read(0x8, 8, t1);
  ASSERT_TRUE(hit.row_hit);
  Tick t2 = hit.internal_done + NsToTicks(1000.0);
  hmc::Completion conflict = cube.Read(64ull * 32 * 32 * 16, 8, t2);
  ASSERT_FALSE(conflict.row_hit);
  EXPECT_LT(hit.response_at_host - t1, conflict.response_at_host - t2);
}

INSTANTIATE_TEST_SUITE_P(Timings, HmcTimingSweep,
                         ::testing::Values(5.0, 13.75, 25.0, 50.0));

class LinkBwSweep : public ::testing::TestWithParam<double> {};

TEST_P(LinkBwSweep, SerializationShrinksWithBandwidth) {
  hmc::HmcParams slow;
  slow.link_bw_scale = GetParam();
  slow.t_refi = 0;
  hmc::HmcParams fast = slow;
  fast.link_bw_scale = GetParam() * 4.0;
  hmc::HmcCube a(slow);
  hmc::HmcCube b(fast);
  EXPECT_GE(a.Read(0, 64, 0).response_at_host, b.Read(0, 64, 0).response_at_host);
}

INSTANTIATE_TEST_SUITE_P(Scales, LinkBwSweep, ::testing::Values(0.1, 0.5, 1.0));

class FuSweep : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(FuSweep, BusyTimeIndependentOfPoolSize) {
  hmc::HmcParams p;
  p.fus_per_vault = GetParam();
  p.t_refi = 0;
  hmc::HmcCube cube(p);
  for (int i = 0; i < 64; ++i) {
    cube.Atomic(static_cast<Addr>(i) * 4096, hmc::AtomicOp::kAdd16, hmc::Value16{},
                false, 0);
  }
  EXPECT_EQ(cube.TotalIntFuBusy(), 64 * p.fu_int_latency);
}

INSTANTIATE_TEST_SUITE_P(Pools, FuSweep, ::testing::Values(1u, 2u, 4u, 16u));

// ---------------------------------------------------------------- CPU

class NullMem : public cpu::MemoryInterface {
 public:
  cpu::MemOutcome Access(int, const cpu::MicroOp&, Tick when) override {
    cpu::MemOutcome out;
    out.complete = when + NsToTicks(10.0);
    out.retire_ready = out.complete;
    return out;
  }
};

class IssueWidthSweep : public ::testing::TestWithParam<int> {};

TEST_P(IssueWidthSweep, ThroughputScalesWithWidth) {
  NullMem mem;
  cpu::CoreParams p;
  p.issue_width = GetParam();
  cpu::OooCore core(0, p, &mem);
  cpu::UopStream trace(4000, cpu::MicroOp{});  // independent 1-cycle computes
  core.Reset(&trace);
  while (core.Advance(core.Now() + NsToTicks(100000.0)) != cpu::OooCore::Status::kDone) {
  }
  double cycles = TicksToNs(core.Now()) * p.freq_ghz;
  EXPECT_NEAR(cycles, 4000.0 / p.issue_width, 4000.0 / p.issue_width * 0.05 + 2);
}

INSTANTIATE_TEST_SUITE_P(Widths, IssueWidthSweep, ::testing::Values(1, 2, 4, 8));

class RobSweep : public ::testing::TestWithParam<int> {};

TEST_P(RobSweep, BiggerRobNeverSlowerOnIndependentLoads) {
  NullMem mem;
  auto run = [&](int rob) {
    cpu::CoreParams p;
    p.rob_size = rob;
    cpu::OooCore core(0, p, &mem);
    cpu::UopStream trace;
    for (int i = 0; i < 2000; ++i) {
      cpu::MicroOp op;
      op.type = cpu::OpType::kLoad;
      op.addr = static_cast<Addr>(i) * 64;
      trace.push_back(op);
    }
    core.Reset(&trace);
    while (core.Advance(core.Now() + NsToTicks(100000.0)) !=
           cpu::OooCore::Status::kDone) {
    }
    return core.Now();
  };
  EXPECT_GE(run(GetParam()), run(GetParam() * 2));
}

INSTANTIATE_TEST_SUITE_P(Robs, RobSweep, ::testing::Values(8, 32, 128));

// ---------------------------------------------------------------- Graph

class DegreeSweep : public ::testing::TestWithParam<double> {};

TEST_P(DegreeSweep, EdgeCountTracksDegree) {
  graph::RmatParams p;
  p.num_vertices = 2048;
  p.avg_degree = GetParam();
  graph::EdgeList el = graph::GenerateRmat(p);
  EXPECT_EQ(el.edges.size(),
            static_cast<std::size_t>(GetParam() * el.num_vertices + 0.5));
}

INSTANTIATE_TEST_SUITE_P(Degrees, DegreeSweep, ::testing::Values(2.0, 8.0, 28.8));

// ------------------------------------------------------------- System

class CoreCountSweep : public ::testing::TestWithParam<int> {};

TEST_P(CoreCountSweep, MoreCoresNeverSlower) {
  int n = GetParam();
  core::Experiment::Options o;
  o.num_threads = n;
  o.op_cap = 400'000;
  core::Experiment exp("ldbc", 2 * 1024, "dc", o);
  core::SimConfig cfg = core::SimConfig::Scaled(core::Mode::kGraphPim);
  cfg.num_cores = n;
  core::SimResults r = exp.Run(cfg);
  EXPECT_GT(r.cycles, 0u);
  // Compare against a single core replaying the same total work.
  core::Experiment::Options o1 = o;
  o1.num_threads = 1;
  core::Experiment exp1("ldbc", 2 * 1024, "dc", o1);
  core::SimConfig cfg1 = cfg;
  cfg1.num_cores = 1;
  core::SimResults r1 = exp1.Run(cfg1);
  EXPECT_LE(r.cycles, r1.cycles * 11 / 10);
}

INSTANTIATE_TEST_SUITE_P(Cores, CoreCountSweep, ::testing::Values(2, 4, 8, 16));

}  // namespace
}  // namespace graphpim
