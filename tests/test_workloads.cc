// Functional correctness of every workload against independent references,
// plus trace-level invariants (PMR targeting, barrier consistency).
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <deque>
#include <limits>
#include <set>

#include "graph/generator.h"
#include "workloads/bc.h"
#include "workloads/bfs.h"
#include "workloads/ccomp.h"
#include "workloads/dc.h"
#include "workloads/dfs.h"
#include "workloads/dynamic.h"
#include "workloads/gibbs.h"
#include "workloads/kcore.h"
#include "workloads/prank.h"
#include "workloads/sssp.h"
#include "workloads/tc.h"
#include "workloads/workload.h"

namespace graphpim::workloads {
namespace {

using graph::AddressSpace;
using graph::CsrGraph;
using graph::Edge;
using graph::EdgeList;

EdgeList TestGraph(VertexId n = 512, double deg = 6.0, std::uint64_t seed = 3) {
  graph::RmatParams p;
  p.num_vertices = n;
  p.avg_degree = deg;
  p.seed = seed;
  return GenerateRmat(p);
}

struct Built {
  AddressSpace space;
  CsrGraph g;
  explicit Built(const EdgeList& el, bool dedup = false) : g(el, space, dedup) {}
};

Trace Generate(Workload& w, Built& b, int threads = 4) {
  TraceBuilder tb(threads, &b.space);
  w.Generate(b.g, b.space, tb);
  return tb.Take();
}

// ---------------------------------------------------------------- BFS

std::vector<std::int64_t> RefBfs(const CsrGraph& g, VertexId root) {
  std::vector<std::int64_t> depth(g.num_vertices(), -1);
  std::deque<VertexId> q{root};
  depth[root] = 0;
  while (!q.empty()) {
    VertexId u = q.front();
    q.pop_front();
    for (VertexId v : g.Neighbors(u)) {
      if (depth[v] < 0) {
        depth[v] = depth[u] + 1;
        q.push_back(v);
      }
    }
  }
  return depth;
}

TEST(WorkloadBfs, DepthsMatchReference) {
  Built b(TestGraph());
  BfsWorkload bfs(0);
  Generate(bfs, b);
  EXPECT_EQ(bfs.depths(), RefBfs(b.g, 0));
}

TEST(WorkloadBfs, NonZeroRoot) {
  Built b(TestGraph(256, 4.0, 11));
  BfsWorkload bfs(17);
  Generate(bfs, b);
  EXPECT_EQ(bfs.depths(), RefBfs(b.g, 17));
}

TEST(WorkloadBfs, AtomicsTargetPmr) {
  Built b(TestGraph(128, 4.0));
  BfsWorkload bfs(0);
  Trace t = Generate(bfs, b);
  std::uint64_t atomics = 0;
  for (const auto& s : t.streams) {
    for (const auto& op : s) {
      if (op.type == cpu::OpType::kAtomic) {
        ++atomics;
        EXPECT_GE(op.addr, b.space.pmr_base());
        EXPECT_LT(op.addr, b.space.pmr_end());
        EXPECT_EQ(op.aop, hmc::AtomicOp::kCasEqual8);  // Table II
        EXPECT_TRUE(op.WantReturn());
      }
    }
  }
  // Fig 3: one CAS per traversed edge.
  std::uint64_t reachable_edges = 0;
  auto depth = RefBfs(b.g, 0);
  for (VertexId v = 0; v < b.g.num_vertices(); ++v) {
    if (depth[v] >= 0) reachable_edges += b.g.OutDegree(v);
  }
  EXPECT_EQ(atomics, reachable_edges);
}

// ---------------------------------------------------------------- SSSP

std::vector<std::int64_t> RefDijkstra(const CsrGraph& g, VertexId root) {
  const std::int64_t inf = SsspWorkload::kInf;
  std::vector<std::int64_t> dist(g.num_vertices(), inf);
  std::set<std::pair<std::int64_t, VertexId>> pq;
  dist[root] = 0;
  pq.insert({0, root});
  while (!pq.empty()) {
    auto [d, u] = *pq.begin();
    pq.erase(pq.begin());
    if (d > dist[u]) continue;
    auto nbrs = g.Neighbors(u);
    auto ws = g.Weights(u);
    for (std::size_t i = 0; i < nbrs.size(); ++i) {
      std::int64_t nd = d + ws[i];
      if (nd < dist[nbrs[i]]) {
        dist[nbrs[i]] = nd;
        pq.insert({nd, nbrs[i]});
      }
    }
  }
  return dist;
}

TEST(WorkloadSssp, DistancesMatchDijkstra) {
  Built b(TestGraph(400, 5.0, 7));
  SsspWorkload sssp(0);
  Generate(sssp, b);
  EXPECT_EQ(sssp.distances(), RefDijkstra(b.g, 0));
}

TEST(WorkloadSssp, UnreachableStaysInfinite) {
  EdgeList el;
  el.num_vertices = 3;
  el.edges = {{0, 1, 5}};
  Built b(el);
  SsspWorkload sssp(0);
  Generate(sssp, b);
  EXPECT_EQ(sssp.distances()[1], 5);
  EXPECT_EQ(sssp.distances()[2], SsspWorkload::kInf);
}

// ---------------------------------------------------------------- CComp

std::vector<std::int64_t> RefLabelFixpoint(const CsrGraph& g) {
  std::vector<std::int64_t> label(g.num_vertices());
  for (VertexId v = 0; v < g.num_vertices(); ++v) label[v] = v;
  bool changed = true;
  while (changed) {
    changed = false;
    for (VertexId u = 0; u < g.num_vertices(); ++u) {
      for (VertexId v : g.Neighbors(u)) {
        if (label[u] < label[v]) {
          label[v] = label[u];
          changed = true;
        }
      }
    }
  }
  return label;
}

TEST(WorkloadCcomp, LabelsReachDirectedFixpoint) {
  Built b(TestGraph(300, 4.0, 9));
  CcompWorkload cc;
  Generate(cc, b);
  EXPECT_EQ(cc.labels(), RefLabelFixpoint(b.g));
}

// ---------------------------------------------------------------- kCore

std::vector<bool> RefKcore(const CsrGraph& g, int k) {
  std::vector<std::int64_t> deg(g.num_vertices());
  std::vector<bool> active(g.num_vertices(), true);
  for (VertexId v = 0; v < g.num_vertices(); ++v) deg[v] = g.OutDegree(v);
  bool changed = true;
  while (changed) {
    changed = false;
    for (VertexId v = 0; v < g.num_vertices(); ++v) {
      if (active[v] && deg[v] < k) {
        active[v] = false;
        changed = true;
        for (VertexId u : g.Neighbors(v)) deg[u] -= 1;
      }
    }
  }
  return active;
}

TEST(WorkloadKcore, MatchesReferencePeeling) {
  Built b(TestGraph(400, 6.0, 13));
  KcoreWorkload kc(3, 64);
  Generate(kc, b);
  EXPECT_EQ(kc.in_core(), RefKcore(b.g, 3));
}

TEST(WorkloadKcore, LargeKPeelsEverything) {
  Built b(TestGraph(128, 3.0, 5));
  KcoreWorkload kc(1000, 200);
  Generate(kc, b);
  for (bool alive : kc.in_core()) EXPECT_FALSE(alive);
}

// ---------------------------------------------------------------- TC

TEST(WorkloadTc, CountsTrianglesOnKnownGraph) {
  // 0->1, 0->2, 1->2: out-neighbor intersection of (0,1) = {2}: 1 triangle.
  EdgeList el;
  el.num_vertices = 3;
  el.edges = {{0, 1, 1}, {0, 2, 1}, {1, 2, 1}};
  Built b(el);
  TcWorkload tc;
  Generate(tc, b);
  EXPECT_EQ(tc.triangles(), 1u);
}

std::uint64_t RefTriangles(const CsrGraph& g) {
  std::uint64_t total = 0;
  for (VertexId u = 0; u < g.num_vertices(); ++u) {
    auto nu = g.Neighbors(u);
    for (VertexId v : nu) {
      if (v <= u) continue;
      auto nv = g.Neighbors(v);
      std::size_t a = 0;
      std::size_t c = 0;
      while (a < nu.size() && c < nv.size()) {
        if (nu[a] == nv[c]) {
          ++total;
          ++a;
          ++c;
        } else if (nu[a] < nv[c]) {
          ++a;
        } else {
          ++c;
        }
      }
    }
  }
  return total;
}

TEST(WorkloadTc, MatchesReferenceOnDedupedGraph) {
  Built b(TestGraph(300, 6.0, 21), /*dedup=*/true);
  TcWorkload tc(/*max_list=*/100000);  // no capping
  Generate(tc, b);
  EXPECT_EQ(tc.triangles(), RefTriangles(b.g));
}

// ---------------------------------------------------------------- PRank

std::vector<double> RefPageRank(const CsrGraph& g, int iters, double d) {
  const double n = static_cast<double>(g.num_vertices());
  std::vector<double> rank(g.num_vertices(), 1.0 / n);
  for (int it = 0; it < iters; ++it) {
    std::vector<double> next(g.num_vertices(), (1.0 - d) / n);
    for (VertexId u = 0; u < g.num_vertices(); ++u) {
      std::uint32_t deg = g.OutDegree(u);
      if (deg == 0) continue;
      double c = d * rank[u] / deg;
      for (VertexId v : g.Neighbors(u)) next[v] += c;
    }
    rank.swap(next);
  }
  return rank;
}

TEST(WorkloadPrank, MatchesPowerIteration) {
  Built b(TestGraph(300, 5.0, 17));
  PrankWorkload pr(3, 0.85);
  Generate(pr, b);
  auto ref = RefPageRank(b.g, 3, 0.85);
  ASSERT_EQ(pr.ranks().size(), ref.size());
  for (std::size_t i = 0; i < ref.size(); ++i) {
    EXPECT_NEAR(pr.ranks()[i], ref[i], 1e-12) << "vertex " << i;
  }
}

TEST(WorkloadPrank, UsesFpAtomics) {
  Built b(TestGraph(64, 4.0));
  PrankWorkload pr(1);
  Trace t = Generate(pr, b);
  bool fp_seen = false;
  for (const auto& s : t.streams) {
    for (const auto& op : s) {
      if (op.type == cpu::OpType::kAtomic) {
        EXPECT_EQ(op.aop, hmc::AtomicOp::kFpAdd64);
        fp_seen = true;
      }
    }
  }
  EXPECT_TRUE(fp_seen);
}

// ---------------------------------------------------------------- DC

TEST(WorkloadDc, CentralityIsInPlusOutDegree) {
  Built b(TestGraph(256, 5.0, 23));
  DcWorkload dc;
  Generate(dc, b);
  std::vector<std::int64_t> ref(b.g.num_vertices(), 0);
  for (VertexId u = 0; u < b.g.num_vertices(); ++u) {
    ref[u] += b.g.OutDegree(u);
    for (VertexId v : b.g.Neighbors(u)) ref[v] += 1;
  }
  EXPECT_EQ(dc.centrality(), ref);
}

// ---------------------------------------------------------------- DFS

TEST(WorkloadDfs, VisitsEveryVertex) {
  Built b(TestGraph(256, 4.0, 29));
  DfsWorkload dfs;
  Generate(dfs, b);
  for (bool v : dfs.visited()) EXPECT_TRUE(v);
}

// ---------------------------------------------------------------- BC

TEST(WorkloadBc, PathGraphCentrality) {
  // Symmetric path 0 - 1 - 2: with source 0, only vertex 1 lies on a
  // shortest path (the predecessor scan walks out-edges, so BC expects a
  // symmetric graph as GraphBIG's undirected view does).
  EdgeList el;
  el.num_vertices = 3;
  el.edges = {{0, 1, 1}, {1, 0, 1}, {1, 2, 1}, {2, 1, 1}};
  Built b(el);
  BcWorkload bc(1);
  Generate(bc, b, 2);
  EXPECT_DOUBLE_EQ(bc.centrality()[0], 0.0);
  EXPECT_DOUBLE_EQ(bc.centrality()[1], 1.0);
  EXPECT_DOUBLE_EQ(bc.centrality()[2], 0.0);
}

TEST(WorkloadBc, NonNegativeAndFinite) {
  Built b(TestGraph(256, 4.0, 31));
  BcWorkload bc(4);
  Generate(bc, b);
  for (double v : bc.centrality()) {
    EXPECT_GE(v, 0.0);
    EXPECT_TRUE(std::isfinite(v));
  }
}

// --------------------------------------------------------- Dynamic & Gibbs

TEST(WorkloadDynamic, GconsInsertsEveryEdge) {
  Built b(TestGraph(128, 4.0));
  GconsWorkload gc;
  Generate(gc, b);
  EXPECT_EQ(gc.inserted_edges(), b.g.num_edges());
}

TEST(WorkloadDynamic, MetaAtomicsNeverInPmr) {
  Built b(TestGraph(128, 4.0));
  for (Workload* w :
       std::initializer_list<Workload*>{new GconsWorkload(), new GupWorkload(),
                                        new TmorphWorkload()}) {
    Built local(TestGraph(128, 4.0));
    Trace t = Generate(*w, local);
    for (const auto& s : t.streams) {
      for (const auto& op : s) {
        if (op.type == cpu::OpType::kAtomic) {
          EXPECT_LT(op.addr, local.space.pmr_base())
              << w->info().name << ": DG locks live outside the PMR";
        }
      }
    }
    delete w;
  }
}

TEST(WorkloadGibbs, StatesFiniteAndTraceComputeHeavy) {
  Built b(TestGraph(128, 4.0));
  GibbsWorkload gw(1);
  Trace t = Generate(gw, b);
  for (double s : gw.states()) EXPECT_TRUE(std::isfinite(s));
  std::uint64_t computes = 0;
  std::uint64_t total = 0;
  for (const auto& s : t.streams) {
    for (const auto& op : s) {
      ++total;
      if (op.type == cpu::OpType::kCompute) ++computes;
    }
  }
  EXPECT_GT(static_cast<double>(computes) / static_cast<double>(total), 0.3);
}

// ------------------------------------------------------------- Registry

TEST(WorkloadRegistry, ThirteenWorkloads) {
  auto names = AllWorkloadNames();
  EXPECT_EQ(names.size(), 13u);
  for (const auto& n : names) {
    auto w = CreateWorkload(n);
    EXPECT_EQ(w->info().name, n);
  }
}

TEST(WorkloadRegistry, TableIIIApplicability) {
  // Table III expected applicability.
  const std::set<std::string> applicable = {"bfs", "dfs", "dc", "sssp",
                                            "kcore", "ccomp", "tc"};
  for (const auto& n : AllWorkloadNames()) {
    auto w = CreateWorkload(n);
    EXPECT_EQ(w->info().pim_applicable, applicable.count(n) == 1) << n;
    if (!w->info().pim_applicable) {
      EXPECT_FALSE(w->info().missing_op.empty()) << n;
    }
  }
  // FP extension enables BC and PRank (Section III-C).
  EXPECT_TRUE(CreateWorkload("bc")->info().needs_fp_extension);
  EXPECT_TRUE(CreateWorkload("prank")->info().needs_fp_extension);
}

TEST(WorkloadRegistry, EvalSetIsFig7) {
  auto names = EvalWorkloadNames();
  EXPECT_EQ(names.size(), 8u);
  EXPECT_EQ(names.front(), "bfs");
  EXPECT_EQ(names.back(), "prank");
}

// --------------------------------------------------------------- Traces

TEST(TraceInvariants, BarrierCountsEqualAcrossThreads) {
  Built b(TestGraph(256, 4.0));
  for (const auto& name : EvalWorkloadNames()) {
    Built local(TestGraph(256, 4.0));
    auto w = CreateWorkload(name);
    Trace t = Generate(*w, local, 4);
    std::vector<std::uint64_t> barriers;
    for (const auto& s : t.streams) {
      std::uint64_t n = 0;
      for (const auto& op : s) {
        if (op.type == cpu::OpType::kBarrier) ++n;
      }
      barriers.push_back(n);
    }
    for (std::uint64_t n : barriers) EXPECT_EQ(n, barriers[0]) << name;
  }
}

TEST(TraceInvariants, OpCapBoundsTrace) {
  // Uniform graph: the giant component guarantees BFS emits far more than
  // the cap regardless of which vertex is the root.
  Built b(graph::GenerateUniform(1024, 8.0, 3));
  BfsWorkload bfs(0);
  TraceBuilder tb(4, &b.space);
  tb.SetOpCap(1000);
  bfs.Generate(b.g, b.space, tb);
  EXPECT_TRUE(tb.Capped());
  Trace t = tb.Take();
  // Barriers are exempt from the cap; everything else obeys it.
  std::uint64_t non_barrier = 0;
  for (const auto& s : t.streams) {
    for (const auto& op : s) {
      if (op.type != cpu::OpType::kBarrier) ++non_barrier;
    }
  }
  EXPECT_LE(non_barrier, 1000u);
}

TEST(TraceInvariants, ReplaceAtomicsWithPlain) {
  Built b(TestGraph(128, 4.0));
  DcWorkload dc;
  Trace t = Generate(dc, b);
  Trace plain = ReplaceAtomicsWithPlain(t);
  std::uint64_t atomics = 0;
  for (const auto& s : plain.streams) {
    for (const auto& op : s) {
      EXPECT_NE(op.type, cpu::OpType::kAtomic);
      (void)op;
    }
  }
  (void)atomics;
  // Each atomic became load+store: total op count grows accordingly.
  std::uint64_t orig_atomics = 0;
  for (const auto& s : t.streams) {
    for (const auto& op : s) {
      if (op.type == cpu::OpType::kAtomic) ++orig_atomics;
    }
  }
  EXPECT_EQ(plain.TotalOps(), t.TotalOps() + orig_atomics);
}

TEST(TraceInvariants, ThreadChunkPartitions) {
  for (std::size_t total : {0ull, 1ull, 7ull, 100ull}) {
    std::size_t covered = 0;
    std::size_t prev_end = 0;
    for (int t = 0; t < 4; ++t) {
      auto [b2, e2] = ThreadChunk(total, t, 4);
      EXPECT_EQ(b2, prev_end);
      prev_end = e2;
      covered += e2 - b2;
    }
    EXPECT_EQ(covered, total);
    EXPECT_EQ(prev_end, total);
  }
}

}  // namespace
}  // namespace graphpim::workloads
