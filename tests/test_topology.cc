// Multi-cube HMC network (src/hmc/topology) and the single-path SimConfig
// API: shard-map bijectivity, single-cube passthrough identity, inter-cube
// hop costs, cube-scaling sweeps, and FromConfig/Validate error paths.
#include <gtest/gtest.h>

#include <set>
#include <string>
#include <vector>

#include "common/config.h"
#include "common/log.h"
#include "core/report.h"
#include "core/runner.h"
#include "exec/sweep.h"
#include "fault/fault.h"
#include "graph/region.h"
#include "hmc/topology.h"
#include "workloads/params.h"

namespace graphpim {
namespace {

hmc::CubeMap TestMap(std::uint32_t cubes) {
  hmc::CubeMap m;
  m.num_cubes = cubes;
  m.page_bytes = 4096;
  m.pmr_base = graph::AddressSpace::kPmrBase;
  m.pmr_end = graph::AddressSpace::kPmrBase + 2 * kMiB;
  return m;
}

TEST(CubeMap, SingleCubeIsIdentity) {
  const hmc::CubeMap m = TestMap(1);
  for (Addr a : {Addr{0}, Addr{4095}, Addr{1 << 20},
                 graph::AddressSpace::kPmrBase + 12345}) {
    EXPECT_EQ(m.CubeOf(a), 0u);
    EXPECT_EQ(m.LocalAddr(a), a);
    EXPECT_EQ(m.Reconstruct(0, a), a);
  }
}

TEST(CubeMap, RoundTripIsBijective) {
  for (std::uint32_t cubes : {2u, 3u, 4u, 8u}) {
    const hmc::CubeMap m = TestMap(cubes);
    std::set<std::pair<std::uint32_t, Addr>> seen;
    // PMR and non-PMR samples, page-straddling offsets included.
    std::vector<Addr> samples;
    for (std::uint64_t i = 0; i < 64; ++i) {
      samples.push_back(i * 4096 + (i * 97) % 4096);
      samples.push_back(m.pmr_base + i * 4096 + (i * 131) % 4096);
    }
    for (Addr a : samples) {
      const std::uint32_t c = m.CubeOf(a);
      const Addr local = m.LocalAddr(a);
      ASSERT_LT(c, cubes);
      EXPECT_EQ(m.Reconstruct(c, local), a) << "cubes=" << cubes;
      // Injective: no two addresses share a (cube, local) slot.
      EXPECT_TRUE(seen.insert({c, local}).second) << "collision at " << a;
    }
  }
}

TEST(CubeMap, PmrPagesInterleaveRelativeToPmrBase) {
  const hmc::CubeMap m = TestMap(4);
  // The first PMR page is always home to cube 0, wherever the PMR sits.
  EXPECT_EQ(m.CubeOf(m.pmr_base), 0u);
  // Consecutive PMR pages round-robin across cubes.
  for (std::uint32_t i = 0; i < 8; ++i) {
    EXPECT_EQ(m.CubeOf(m.pmr_base + i * m.page_bytes), i % 4);
  }
  // Bytes within one page share a home cube.
  EXPECT_EQ(m.CubeOf(m.pmr_base + 4096), m.CubeOf(m.pmr_base + 4096 + 4095));
}

TEST(CubeMap, LocalAddressesStayInsidePmrShard) {
  // Sharded PMR addresses compact toward the PMR base so each cube's local
  // footprint is 1/num_cubes of the region (capacity actually scales).
  const hmc::CubeMap m = TestMap(4);
  const std::uint64_t pmr_size = m.pmr_end - m.pmr_base;
  for (std::uint64_t i = 0; i < pmr_size / m.page_bytes; ++i) {
    const Addr a = m.pmr_base + i * m.page_bytes;
    const Addr local = m.LocalAddr(a);
    EXPECT_GE(local, m.pmr_base);
    EXPECT_LT(local, m.pmr_base + pmr_size / 4 + m.page_bytes);
  }
}

TEST(Topology, ParseAndPrint) {
  EXPECT_EQ(hmc::ParseCubeTopology("chain"), hmc::CubeTopology::kChain);
  EXPECT_EQ(hmc::ParseCubeTopology("star"), hmc::CubeTopology::kStar);
  EXPECT_STREQ(hmc::ToString(hmc::CubeTopology::kStar), "star");
  EXPECT_THROW({ hmc::ParseCubeTopology("ring"); }, SimError);
}

TEST(Topology, SingleCubePassthroughMatchesBareCube) {
  const hmc::HmcParams p;
  hmc::HmcCube bare(p);
  StatRegistry stats;
  hmc::HmcNetwork net(p, &stats, graph::AddressSpace::kPmrBase,
                      graph::AddressSpace::kPmrBase + kMiB);
  for (Tick t : {Tick{0}, Tick{500}, Tick{1500}}) {
    const Addr a = 0x1000 + static_cast<Addr>(t) * 64;
    EXPECT_EQ(net.Read(a, 64, t).response_at_host,
              bare.Read(a, 64, t).response_at_host);
    EXPECT_EQ(net.Atomic(a, hmc::AtomicOp::kDualAdd8, hmc::Value16{}, false, t)
                  .response_at_host,
              bare.Atomic(a, hmc::AtomicOp::kDualAdd8, hmc::Value16{}, false, t)
                  .response_at_host);
  }
  // The golden counter-surface contract: a single-cube network interns no
  // network counters, so the JSON "counters" object cannot drift.
  EXPECT_FALSE(stats.Has("hmc.local_ops"));
  EXPECT_FALSE(stats.Has("hmc.remote_ops"));
  EXPECT_FALSE(stats.Has("hmc.hop_traversals"));
  EXPECT_FALSE(stats.Has("hmc.cubes"));
}

TEST(Topology, RemoteCubePaysHopCosts) {
  hmc::HmcParams p;
  p.num_cubes = 4;
  StatRegistry stats;
  hmc::HmcNetwork net(p, &stats, graph::AddressSpace::kPmrBase,
                      graph::AddressSpace::kPmrBase + kMiB);
  // Page 0 is local (cube 0); page 1 is cube 1 — one pass-through hop each
  // way, so the remote read must be strictly slower.
  const Addr local = graph::AddressSpace::kPmrBase;
  const Addr remote = graph::AddressSpace::kPmrBase + 4096;
  ASSERT_EQ(net.CubeOf(local), 0u);
  ASSERT_EQ(net.CubeOf(remote), 1u);
  const Tick t_local = net.Read(local, 64, 0).response_at_host;
  const Tick t_remote = net.Read(remote, 64, 0).response_at_host;
  EXPECT_GT(t_remote, t_local);
  EXPECT_GT(stats.Get("hmc.remote_ops"), 0.0);
  EXPECT_GT(stats.Get("hmc.hop_traversals"), 0.0);
  EXPECT_GT(stats.Get("hmc.hop_flits"), 0.0);
  EXPECT_GT(stats.Get("hmc.hop_ns"), 0.0);
  EXPECT_DOUBLE_EQ(stats.Get("hmc.cubes"), 4.0);
}

TEST(Topology, StarShortensFarPathsVsChain) {
  hmc::HmcParams chain;
  chain.num_cubes = 8;
  chain.cube_topology = hmc::CubeTopology::kChain;
  hmc::HmcParams star = chain;
  star.cube_topology = hmc::CubeTopology::kStar;
  hmc::HmcNetwork cn(chain, nullptr, 0, 0);
  hmc::HmcNetwork sn(star, nullptr, 0, 0);
  EXPECT_EQ(cn.HopsTo(7), 7u);
  EXPECT_EQ(sn.HopsTo(7), 1u);
  EXPECT_EQ(cn.HopsTo(0), 0u);
  EXPECT_EQ(sn.HopsTo(0), 0u);
  // An address homed on the farthest cube: the chain pays 7 pass-through
  // hops each way, the star one.
  Addr far = 0;
  for (Addr a = 0; a < 64 * 4096; a += 4096) {
    if (cn.CubeOf(a) == 7) {
      far = a;
      break;
    }
  }
  ASSERT_EQ(cn.CubeOf(far), 7u);
  EXPECT_GT(cn.Read(far, 64, 0).response_at_host,
            sn.Read(far, 64, 0).response_at_host);
}

TEST(Topology, FunctionalStoreRoutesThroughTheShardMap) {
  hmc::HmcParams p;
  p.num_cubes = 4;
  hmc::HmcNetwork net(p, nullptr, graph::AddressSpace::kPmrBase,
                      graph::AddressSpace::kPmrBase + kMiB);
  net.set_functional(true);
  EXPECT_TRUE(net.functional());
  for (std::uint32_t i = 0; i < 8; ++i) {
    const Addr a = graph::AddressSpace::kPmrBase + i * 4096;
    hmc::Value16 v;
    v.lo = 1000 + i;
    net.FunctionalWrite(a, v);
  }
  for (std::uint32_t i = 0; i < 8; ++i) {
    const Addr a = graph::AddressSpace::kPmrBase + i * 4096;
    EXPECT_EQ(net.FunctionalRead(a).lo, 1000 + i) << "page " << i;
  }
}

TEST(Topology, CubeFaultSeedsDecorrelate) {
  // Cube 0 keeps the run seed (single-cube byte identity); remote cubes
  // draw distinct decorrelated streams.
  EXPECT_EQ(fault::DeriveCubeFaultSeed(42, 0), 42u);
  std::set<std::uint64_t> seeds;
  for (std::uint32_t i = 0; i < 8; ++i) {
    seeds.insert(fault::DeriveCubeFaultSeed(42, i));
  }
  EXPECT_EQ(seeds.size(), 8u);
}

// ---------------------------------------------------------------------------
// The single-path configuration API.

TEST(SimConfigApi, FromConfigAppliesEveryKnobSpelling) {
  Config cfg;
  cfg.Set("num_cubes", "4");
  cfg.Set("topology", "star");
  cfg.Set("hybrid", "0.5");
  cfg.Set("uc-depth", "32");  // dashed alias
  cfg.Set("link-ber", "1e-9");
  cfg.Set("trace-sample-rate", "0.25");  // dashed alias
  cfg.Set("trace.max_spans", "4096");
  const core::SimConfig sc =
      core::SimConfig::FromConfig(cfg, core::Mode::kGraphPim);
  EXPECT_EQ(sc.hmc.num_cubes, 4u);
  EXPECT_EQ(sc.hmc.cube_topology, hmc::CubeTopology::kStar);
  EXPECT_DOUBLE_EQ(sc.pmr_hmc_fraction, 0.5);
  EXPECT_EQ(sc.uc_queue_depth, 32);
  EXPECT_DOUBLE_EQ(sc.hmc.fault.link_ber, 1e-9);
  EXPECT_DOUBLE_EQ(sc.trace_sample_rate, 0.25);
  EXPECT_EQ(sc.trace_max_spans, 4096u);
  // Absent keys keep the Scaled() defaults.
  EXPECT_EQ(sc.num_cores, 16);
  EXPECT_EQ(sc.cache.l1_size, 16 * kKiB);
  // full=1 selects the Table IV machine instead.
  Config full;
  full.Set("full", "1");
  EXPECT_EQ(core::SimConfig::FromConfig(full, core::Mode::kBaseline)
                .cache.l1_size,
            32 * kKiB);
}

TEST(SimConfigApi, ValidateNamesTheOffendingKey) {
  auto expect_throw_naming = [](const char* key, const char* val,
                                const char* named) {
    Config cfg;
    cfg.Set(key, val);
    try {
      core::SimConfig::FromConfig(cfg, core::Mode::kGraphPim);
      FAIL() << key << "=" << val << " should not validate";
    } catch (const SimError& e) {
      EXPECT_NE(e.message().find(named), std::string::npos)
          << "message: " << e.message();
    }
  };
  expect_throw_naming("threads", "0", "threads");
  expect_throw_naming("threads", "2.5", "threads");
  expect_throw_naming("linkbw", "abc", "linkbw");  // malformed, not fatal
  expect_throw_naming("num-cubes", "abc", "num-cubes");
  expect_throw_naming("hybrid", "1.5", "hybrid");
  expect_throw_naming("hybrid", "-0.1", "hybrid");
  expect_throw_naming("num_cubes", "0", "num_cubes");
  expect_throw_naming("num_cubes", "65", "num_cubes");
  expect_throw_naming("link_ber", "2", "link_ber");
  expect_throw_naming("vault_stall_ppm", "1000001", "vault_stall_ppm");
  expect_throw_naming("cube_page_bytes", "100", "cube_page_bytes");  // !pow2
  expect_throw_naming("cube_page_bytes", "32", "cube_page_bytes");
  expect_throw_naming("trace.sample_rate", "1.5", "trace.sample_rate");
  expect_throw_naming("trace-sample-rate", "-0.1", "trace.sample_rate");
  expect_throw_naming("trace.max_spans", "0.5", "trace.max_spans");
  expect_throw_naming("pmem.enable", "2", "pmem.enable");
  expect_throw_naming("pmem.enable", "0.5", "pmem.enable");
  expect_throw_naming("pmem.flush_ns", "-1", "pmem.flush_ns");
  expect_throw_naming("pmem-fence-ns", "-1", "pmem.fence_ns");
  // The cross-field gate: a crash tick without the persistent PMR.
  expect_throw_naming("pmem.crash_tick", "100", "pmem.crash_tick");
  EXPECT_THROW(
      {
        Config cfg;
        cfg.Set("topology", "ring");
        core::SimConfig::FromConfig(cfg, core::Mode::kGraphPim);
      },
      SimError);
  // Programmatically-built configs hit the same gate through Validate().
  core::SimConfig sc = core::SimConfig::Scaled(core::Mode::kGraphPim);
  sc.num_cores = -1;
  EXPECT_THROW({ sc.Validate(); }, SimError);
  sc = core::SimConfig::Scaled(core::Mode::kGraphPim);
  sc.hmc.cube_page_bytes = 4096 + 1;
  EXPECT_THROW({ sc.Validate(); }, SimError);
}

TEST(SimConfigApi, DescribeIsGeneratedFromTheFieldTable) {
  // Anti-drift: every canonical field-table key FromConfig accepts must
  // surface in Describe(), so a new knob cannot be parseable-but-invisible.
  const core::SimConfig sc = core::SimConfig::Scaled(core::Mode::kGraphPim);
  const std::string desc = sc.Describe();
  for (const std::string& key : core::SimConfig::ConfigKeys()) {
    if (key == "full") continue;  // base-machine selector, not a field
    if (key.find('-') != std::string::npos) continue;  // CLI alias spelling
    if (key == "topology") {
      EXPECT_NE(desc.find("chain"), std::string::npos) << desc;
      continue;
    }
    EXPECT_NE(desc.find(key + "="), std::string::npos)
        << "knob '" << key << "' missing from Describe(): " << desc;
  }
  // Geometry renders the cube network.
  core::SimConfig multi = sc;
  multi.hmc.num_cubes = 4;
  EXPECT_NE(multi.Describe().find("4x"), std::string::npos);
  // The trace.* knobs must ride the same table: present in ConfigKeys
  // (both spellings, so --help and the grid spec accept them) and rendered
  // by Describe() like every other knob.
  const std::vector<std::string> keys = core::SimConfig::ConfigKeys();
  auto has_key = [&](const char* k) {
    for (const std::string& s : keys)
      if (s == k) return true;
    return false;
  };
  EXPECT_TRUE(has_key("trace.sample_rate"));
  EXPECT_TRUE(has_key("trace-sample-rate"));
  EXPECT_TRUE(has_key("trace.max_spans"));
  EXPECT_TRUE(has_key("trace-max-spans"));
  EXPECT_NE(desc.find("trace.sample_rate="), std::string::npos) << desc;
  // Same contract for the pmem.* knobs (DESIGN.md §14) — riding the field
  // table is what makes the sweep-journal fingerprint cover them for free.
  EXPECT_TRUE(has_key("pmem.enable"));
  EXPECT_TRUE(has_key("pmem-enable"));
  EXPECT_TRUE(has_key("pmem.flush_ns"));
  EXPECT_TRUE(has_key("pmem-flush-ns"));
  EXPECT_TRUE(has_key("pmem.fence_ns"));
  EXPECT_TRUE(has_key("pmem-fence-ns"));
  EXPECT_TRUE(has_key("pmem.crash_tick"));
  EXPECT_TRUE(has_key("pmem-crash-tick"));
  EXPECT_NE(desc.find("pmem.enable="), std::string::npos) << desc;
  // And the ann.* knobs (DESIGN.md §16): the same table rows feed the hnsw
  // workload and the serve engine's knn query kind, so both spellings must
  // parse everywhere and the values must render in Describe().
  EXPECT_TRUE(has_key("ann.dim"));
  EXPECT_TRUE(has_key("ann-dim"));
  EXPECT_TRUE(has_key("ann.m"));
  EXPECT_TRUE(has_key("ann-m"));
  EXPECT_TRUE(has_key("ann.ef_search"));
  EXPECT_TRUE(has_key("ann-ef-search"));
  EXPECT_TRUE(has_key("ann.k"));
  EXPECT_TRUE(has_key("ann-k"));
  EXPECT_TRUE(has_key("ann.queries"));
  EXPECT_TRUE(has_key("ann-queries"));
  EXPECT_NE(desc.find("ann.dim="), std::string::npos) << desc;
  EXPECT_NE(desc.find("ann.ef_search="), std::string::npos) << desc;
  // And the telemetry.* knobs (DESIGN.md §17): windowed timelines must be
  // configurable from every driver and sweep spec, so both spellings ride
  // the table and render in Describe().
  EXPECT_TRUE(has_key("telemetry.window_ns"));
  EXPECT_TRUE(has_key("telemetry-window-ns"));
  EXPECT_TRUE(has_key("telemetry.max_windows"));
  EXPECT_TRUE(has_key("telemetry-max-windows"));
  EXPECT_NE(desc.find("telemetry.window_ns="), std::string::npos) << desc;
}

TEST(SimConfigApi, AnnKnobsParseAndRangeCheck) {
  Config cfg;
  cfg.Set("ann-dim", "32");
  cfg.Set("ann.queries", "4");
  const core::SimConfig sc =
      core::SimConfig::FromConfig(cfg, core::Mode::kGraphPim);
  EXPECT_EQ(sc.ann.dim, 32);
  EXPECT_EQ(sc.ann.queries, 4);
  // Untouched knobs keep the strict-passthrough defaults.
  workloads::AnnParams want;
  want.dim = 32;
  want.queries = 4;
  EXPECT_EQ(sc.ann, want);
  // Range gate from the field table...
  Config bad;
  bad.Set("ann-dim", "1");
  EXPECT_THROW(core::SimConfig::FromConfig(bad, core::Mode::kGraphPim),
               SimError);
  // ...and the cross-field Validate() rule: k <= ef_search.
  core::SimConfig wide = core::SimConfig::Scaled(core::Mode::kGraphPim);
  wide.ann.k = 64;
  wide.ann.ef_search = 16;
  EXPECT_THROW(wide.Validate(), SimError);
}

// ---------------------------------------------------------------------------
// End-to-end: cube-scaling runs.

core::SimConfig CubeConfig(std::uint32_t cubes) {
  Config cfg;
  cfg.Set("num_cubes", std::to_string(cubes));
  return core::SimConfig::FromConfig(cfg, core::Mode::kGraphPim);
}

TEST(CubeScaling, MultiCubeRunIsDeterministicAndPaysRemoteHops) {
  core::Experiment::Options eo;
  eo.op_cap = 100'000;
  const core::Experiment exp("ldbc", 2048, "prank", eo);
  const core::SimResults a = exp.Run(CubeConfig(2));
  const core::SimResults b = exp.Run(CubeConfig(2));
  EXPECT_EQ(core::ToJson(a), core::ToJson(b));  // replay determinism
  // The sharded PMR actually spreads across cubes: remote traffic exists
  // and the hop stats account for it.
  EXPECT_GT(a.raw.Get("hmc.remote_ops"), 0.0);
  EXPECT_GT(a.raw.Get("hmc.hop_traversals"), 0.0);
  EXPECT_GT(a.raw.Get("hmc.hop_ns"), 0.0);
  EXPECT_DOUBLE_EQ(a.raw.Get("hmc.cubes"), 2.0);
  // And the single-cube run of the same trace interns none of that.
  const core::SimResults single = exp.Run(CubeConfig(1));
  EXPECT_FALSE(single.raw.Has("hmc.remote_ops"));
  EXPECT_FALSE(single.raw.Has("hmc.cubes"));
}

TEST(CubeScaling, CapacityScalesMonotonically) {
  std::uint64_t prev = 0;
  for (std::uint32_t cubes : {1u, 2u, 4u, 8u}) {
    const core::SimConfig sc = CubeConfig(cubes);
    StatRegistry stats;
    hmc::HmcNetwork net(sc.hmc, &stats, graph::AddressSpace::kPmrBase,
                        graph::AddressSpace::kPmrBase + kMiB);
    EXPECT_GT(net.TotalCapacityBytes(), prev);
    prev = net.TotalCapacityBytes();
    if (cubes > 1) {
      EXPECT_DOUBLE_EQ(stats.Get("hmc.capacity_gib"),
                       static_cast<double>(net.TotalCapacityBytes()) /
                           static_cast<double>(kGiB));
    }
  }
}

TEST(CubeScaling, SweepGridExpandsCubeAxisDeterministically) {
  exec::SweepGrid grid = exec::ParseGridSpec(
      "workloads=bfs;modes=graphpim;hmc.num_cubes=1,2,4;vertices=2048;"
      "opcap=100000");
  ASSERT_EQ(grid.configs.size(), 3u);
  EXPECT_EQ(grid.config_names,
            (std::vector<std::string>{"GraphPIM-c1", "GraphPIM-c2",
                                      "GraphPIM-c4"}));
  EXPECT_EQ(grid.configs[0].hmc.num_cubes, 1u);
  EXPECT_EQ(grid.configs[2].hmc.num_cubes, 4u);

  exec::SweepRunner::Options serial;
  serial.jobs = 1;
  exec::SweepRunner::Options parallel;
  parallel.jobs = 4;
  const exec::SweepResultTable s = exec::SweepRunner(serial).Run(grid);
  const exec::SweepResultTable p = exec::SweepRunner(parallel).Run(grid);
  ASSERT_EQ(s.rows.size(), 3u);
  ASSERT_EQ(p.rows.size(), 3u);
  for (std::size_t i = 0; i < s.rows.size(); ++i) {
    EXPECT_EQ(s.rows[i].status, exec::JobStatus::kOk) << s.rows[i].error;
    EXPECT_EQ(core::ToJson(s.rows[i].results), core::ToJson(p.rows[i].results))
        << "row " << i << " (" << s.rows[i].config_name << ")";
    EXPECT_EQ(s.rows[i].results.raw.AllItems(), p.rows[i].results.raw.AllItems())
        << "row " << i;
  }
  // Multi-cube rows report measurable inter-cube traffic; the single-cube
  // row stays on the pre-network counter surface.
  EXPECT_FALSE(s.rows[0].results.raw.Has("hmc.remote_ops"));
  EXPECT_GT(s.rows[1].results.raw.Get("hmc.remote_ops"), 0.0);
  EXPECT_GT(s.rows[2].results.raw.Get("hmc.hop_traversals"), 0.0);
}

TEST(CubeScaling, GridSpecRejectsBadCubeValues) {
  EXPECT_THROW({ exec::ParseGridSpec("workloads=bfs;num_cubes=0"); }, SimError);
  EXPECT_THROW({ exec::ParseGridSpec("workloads=bfs;num_cubes=abc"); },
               SimError);
  EXPECT_THROW({ exec::ParseGridSpec("workloads=bfs;topology=ring"); },
               SimError);
  // Duplicate expanded names (same cube count twice) are rejected.
  EXPECT_THROW({ exec::ParseGridSpec("workloads=bfs;num_cubes=2,2"); },
               SimError);
}

}  // namespace
}  // namespace graphpim
