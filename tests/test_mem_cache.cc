// Tests for the set-associative cache array.
#include <gtest/gtest.h>

#include "mem/cache.h"

namespace graphpim::mem {
namespace {

TEST(CacheArray, Geometry) {
  CacheArray c(32 * kKiB, 8, 64);
  EXPECT_EQ(c.num_sets(), 64u);
  EXPECT_EQ(c.ways(), 8u);
  EXPECT_EQ(c.size_bytes(), 32 * kKiB);
}

TEST(CacheArray, MissThenHit) {
  CacheArray c(4 * kKiB, 4, 64);
  EXPECT_FALSE(c.Lookup(0x1000));
  c.Insert(0x1000, false);
  EXPECT_TRUE(c.Lookup(0x1000));
  EXPECT_TRUE(c.Contains(0x1000));
  EXPECT_FALSE(c.Contains(0x1040));
}

TEST(CacheArray, SubLineAddressesShareLine) {
  CacheArray c(4 * kKiB, 4, 64);
  c.Insert(0x1000, false);
  EXPECT_TRUE(c.Lookup(0x1008));
  EXPECT_TRUE(c.Lookup(0x103F));
  EXPECT_FALSE(c.Lookup(0x1040));
}

TEST(CacheArray, LruEviction) {
  CacheArray c(/*4 sets x 2 ways*/ 512, 2, 64);
  // Fill one set (stride = sets * line = 256).
  c.Insert(0x0, false);
  c.Insert(0x100, false);
  c.Lookup(0x0);  // promote 0x0 to MRU
  CacheArray::Victim v = c.Insert(0x200, false);
  ASSERT_TRUE(v.valid);
  EXPECT_EQ(v.line_addr, 0x100u);  // LRU way evicted
  EXPECT_TRUE(c.Contains(0x0));
  EXPECT_FALSE(c.Contains(0x100));
}

TEST(CacheArray, VictimCarriesDirtyBit) {
  CacheArray c(512, 2, 64);
  c.Insert(0x0, true);
  c.Insert(0x100, false);
  CacheArray::Victim v = c.Insert(0x200, false);
  ASSERT_TRUE(v.valid);
  EXPECT_EQ(v.line_addr, 0x0u);
  EXPECT_TRUE(v.dirty);
}

TEST(CacheArray, SetDirtyAndInvalidate) {
  CacheArray c(4 * kKiB, 4, 64);
  c.Insert(0x40, false);
  EXPECT_TRUE(c.SetDirty(0x40));
  bool dirty = false;
  EXPECT_TRUE(c.Invalidate(0x40, &dirty));
  EXPECT_TRUE(dirty);
  EXPECT_FALSE(c.Contains(0x40));
  EXPECT_FALSE(c.Invalidate(0x40));
  EXPECT_FALSE(c.SetDirty(0x40));
}

TEST(CacheArray, ValidLinesCount) {
  CacheArray c(4 * kKiB, 4, 64);
  EXPECT_EQ(c.ValidLines(), 0u);
  c.Insert(0x0, false);
  c.Insert(0x40, false);
  EXPECT_EQ(c.ValidLines(), 2u);
}

TEST(CacheArray, CapacityBoundedBySize) {
  CacheArray c(4 * kKiB, 4, 64);
  for (Addr a = 0; a < 64 * kKiB; a += 64) {
    if (!c.Contains(a)) c.Insert(a, false);
  }
  EXPECT_EQ(c.ValidLines(), 4 * kKiB / 64);
}

TEST(CacheArray, RandomPolicyStillBoundsCapacity) {
  CacheArray c(4 * kKiB, 4, 64, ReplacementPolicy::kRandom);
  for (Addr a = 0; a < 64 * kKiB; a += 64) {
    if (!c.Contains(a)) c.Insert(a, false);
  }
  EXPECT_EQ(c.ValidLines(), 4 * kKiB / 64);
}

TEST(CacheArray, LruBeatsRandomOnLoopPattern) {
  // A loop slightly smaller than one set's capacity is LRU-friendly.
  auto misses = [](ReplacementPolicy pol) {
    CacheArray c(512, 8, 64, pol);  // 1 set x 8 ways
    int m = 0;
    for (int iter = 0; iter < 50; ++iter) {
      for (Addr a = 0; a < 8 * 64; a += 64) {  // exactly fits
        if (!c.Lookup(a)) {
          ++m;
          c.Insert(a, false);
        }
      }
    }
    return m;
  };
  EXPECT_LE(misses(ReplacementPolicy::kLru), misses(ReplacementPolicy::kRandom));
}

TEST(CacheArray, NruEvictsUnreferenced) {
  CacheArray c(512, 2, 64, ReplacementPolicy::kNru);
  c.Insert(0x0, false);
  c.Insert(0x100, false);
  // Touch 0x0 repeatedly so 0x100 ages out.
  for (int i = 0; i < 8; ++i) c.Lookup(0x0);
  CacheArray::Victim v = c.Insert(0x200, false);
  ASSERT_TRUE(v.valid);
  EXPECT_EQ(v.line_addr, 0x100u);
}

// Property sweep: inserting N distinct lines into a cache of capacity >= N
// (within one pass) never evicts when sets are hit uniformly.
class CacheSweep : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(CacheSweep, SequentialFillNoPrematureEviction) {
  auto [size_kib, ways] = GetParam();
  CacheArray c(static_cast<std::uint64_t>(size_kib) * kKiB, ways, 64);
  std::uint64_t lines = c.size_bytes() / 64;
  int evictions = 0;
  for (std::uint64_t i = 0; i < lines; ++i) {
    CacheArray::Victim v = c.Insert(i * 64, false);
    if (v.valid) ++evictions;
  }
  EXPECT_EQ(evictions, 0);
  EXPECT_EQ(c.ValidLines(), lines);
  // One more wraps and must evict exactly one line.
  EXPECT_TRUE(c.Insert(lines * 64, false).valid);
}

INSTANTIATE_TEST_SUITE_P(Geometries, CacheSweep,
                         ::testing::Combine(::testing::Values(4, 16, 64),
                                            ::testing::Values(1, 2, 8, 16)));

}  // namespace
}  // namespace graphpim::mem
