// Failure-injection tests: invariant violations and user errors must
// terminate with a diagnostic rather than corrupt the simulation.
#include <gtest/gtest.h>

#include "common/config.h"
#include "common/log.h"
#include "graph/generator.h"
#include "graph/region.h"
#include "mem/cache.h"
#include "workloads/workload.h"

namespace graphpim {
namespace {

using DeathTest = ::testing::Test;

TEST(ErrorPaths, CheckMacroAborts) {
  EXPECT_DEATH({ GP_CHECK(1 == 2, "impossible"); }, "check failed");
}

TEST(ErrorPaths, PanicAborts) {
  EXPECT_DEATH({ GP_PANIC("boom ", 42); }, "boom 42");
}

TEST(ErrorPaths, FatalExitsWithDiagnostic) {
  EXPECT_EXIT({ GP_FATAL("bad config"); }, ::testing::ExitedWithCode(1), "bad config");
}

TEST(ErrorPaths, ConfigRejectsMalformedArg) {
  const char* argv[] = {"prog", "--no-equals-sign"};
  EXPECT_EXIT({ Config::FromArgs(2, const_cast<char**>(argv)); },
              ::testing::ExitedWithCode(1), "malformed argument");
}

TEST(ErrorPaths, ConfigRejectsNonNumeric) {
  Config cfg;
  cfg.Set("n", "abc");
  EXPECT_EXIT({ cfg.GetInt("n", 0); }, ::testing::ExitedWithCode(1),
              "not an integer");
}

TEST(ErrorPaths, RegionExhaustionIsFatal) {
  graph::Region r(0, 128);
  r.Allocate(100);
  EXPECT_DEATH({ r.Allocate(100); }, "region exhausted");
}

TEST(ErrorPaths, CacheRejectsBadGeometry) {
  EXPECT_DEATH({ mem::CacheArray c(1000, 3, 64); }, "");
  EXPECT_DEATH({ mem::CacheArray c(4096, 4, 48); }, "power of two");
}

TEST(ErrorPaths, CacheDoubleInsertIsBug) {
  mem::CacheArray c(4096, 4, 64);
  c.Insert(0x40, false);
  EXPECT_DEATH({ c.Insert(0x40, false); }, "already present");
}

// Bad workload/profile names are recoverable (SimError): a sweep isolates
// the failing cell instead of dying, and the CLI drivers catch at main().
TEST(ErrorPaths, UnknownWorkloadThrows) {
  EXPECT_THROW({ workloads::CreateWorkload("nope"); }, SimError);
  try {
    workloads::CreateWorkload("nope");
    FAIL() << "expected SimError";
  } catch (const SimError& e) {
    EXPECT_NE(std::string(e.what()).find("unknown workload"), std::string::npos);
  }
}

TEST(ErrorPaths, UnknownProfileThrows) {
  EXPECT_THROW({ graph::GenerateProfile("nope", 1024, 1); }, SimError);
}

TEST(ErrorPaths, ThrowMacroCarriesMessageAndLocation) {
  try {
    GP_THROW("bad knob '", "x", "' value ", 42);
    FAIL() << "expected SimError";
  } catch (const SimError& e) {
    EXPECT_EQ(e.message(), "bad knob 'x' value 42");
    // what() appends file:line for log/CLI display.
    EXPECT_NE(std::string(e.what()).find("test_errors.cc"), std::string::npos);
  }
}

TEST(ErrorPaths, ConfigRequireKeysAcceptsAndRejects) {
  Config cfg;
  cfg.Set("jobs", "4");
  cfg.Set("sede", "1");  // typo of "seed"
  EXPECT_NO_THROW(cfg.RequireKeys({"jobs", "seed", "sede"}));
  try {
    cfg.RequireKeys({"jobs", "seed"});
    FAIL() << "expected SimError";
  } catch (const SimError& e) {
    EXPECT_NE(e.message().find("sede"), std::string::npos);
    EXPECT_NE(e.message().find("seed"), std::string::npos);  // lists accepted
  }
}

TEST(ErrorPaths, UnknownLdbcNameIsFatal) {
  EXPECT_EXIT({ graph::LdbcSizeFromName("ldbc-9z"); }, ::testing::ExitedWithCode(1),
              "unknown LDBC dataset");
}

}  // namespace
}  // namespace graphpim
