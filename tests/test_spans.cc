// Tests for the transaction flight recorder (common/span.h): deterministic
// sampling, stage recording, exporters (strict-JSON), stat folding, the
// zero-overhead-off contract, and the sweep-journal span sidecar.
#include <gtest/gtest.h>

#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "common/span.h"
#include "common/stats.h"
#include "common/trace.h"
#include "core/report.h"
#include "core/runner.h"
#include "exec/journal.h"
#include "exec/sweep.h"

namespace graphpim {
namespace {

// ---------------------------------------------------------------------------
// Minimal strict JSON validator (objects, arrays, strings, numbers, bools,
// null). The exporters promise strict-JSON output; this parser accepts
// nothing looser, so a stray trailing comma or bare token fails the test.

class StrictJson {
 public:
  static bool Valid(const std::string& s) {
    StrictJson p(s);
    if (!p.Value()) return false;
    p.Ws();
    return p.p_ == p.end_;
  }

 private:
  explicit StrictJson(const std::string& s)
      : p_(s.c_str()), end_(p_ + s.size()) {}

  void Ws() {
    while (p_ != end_ && (*p_ == ' ' || *p_ == '\t' || *p_ == '\n' || *p_ == '\r'))
      ++p_;
  }
  bool Lit(const char* lit) {
    const std::size_t n = std::strlen(lit);
    if (static_cast<std::size_t>(end_ - p_) < n) return false;
    if (std::strncmp(p_, lit, n) != 0) return false;
    p_ += n;
    return true;
  }
  bool Value() {
    Ws();
    if (p_ == end_) return false;
    switch (*p_) {
      case '{': return Object();
      case '[': return Array();
      case '"': return String();
      case 't': return Lit("true");
      case 'f': return Lit("false");
      case 'n': return Lit("null");
      default: return Number();
    }
  }
  bool Object() {
    ++p_;
    Ws();
    if (p_ != end_ && *p_ == '}') { ++p_; return true; }
    while (true) {
      Ws();
      if (p_ == end_ || *p_ != '"' || !String()) return false;
      Ws();
      if (p_ == end_ || *p_ != ':') return false;
      ++p_;
      if (!Value()) return false;
      Ws();
      if (p_ == end_) return false;
      if (*p_ == ',') { ++p_; continue; }
      if (*p_ == '}') { ++p_; return true; }
      return false;
    }
  }
  bool Array() {
    ++p_;
    Ws();
    if (p_ != end_ && *p_ == ']') { ++p_; return true; }
    while (true) {
      if (!Value()) return false;
      Ws();
      if (p_ == end_) return false;
      if (*p_ == ',') { ++p_; continue; }
      if (*p_ == ']') { ++p_; return true; }
      return false;
    }
  }
  bool String() {
    ++p_;
    while (p_ != end_ && *p_ != '"') {
      if (*p_ == '\\') {
        ++p_;
        if (p_ == end_) return false;
        if (std::strchr("\"\\/nrtbfu", *p_) == nullptr) return false;
        if (*p_ == 'u') {
          if (end_ - p_ < 5) return false;
          p_ += 4;
        }
      }
      ++p_;
    }
    if (p_ == end_) return false;
    ++p_;
    return true;
  }
  bool Number() {
    const char* start = p_;
    if (p_ != end_ && *p_ == '-') ++p_;
    bool digits = false;
    while (p_ != end_ && *p_ >= '0' && *p_ <= '9') { ++p_; digits = true; }
    if (!digits) return false;
    if (p_ != end_ && *p_ == '.') {
      ++p_;
      digits = false;
      while (p_ != end_ && *p_ >= '0' && *p_ <= '9') { ++p_; digits = true; }
      if (!digits) return false;
    }
    if (p_ != end_ && (*p_ == 'e' || *p_ == 'E')) {
      ++p_;
      if (p_ != end_ && (*p_ == '+' || *p_ == '-')) ++p_;
      digits = false;
      while (p_ != end_ && *p_ >= '0' && *p_ <= '9') { ++p_; digits = true; }
      if (!digits) return false;
    }
    return start != p_;
  }

  const char* p_;
  const char* end_;
};

// ---------------------------------------------------------------------------
// Sampling.

TEST(SpanSampling, DecisionIsAPureFunctionOfTheId) {
  for (std::uint64_t id = 0; id < 1000; ++id) {
    EXPECT_EQ(trace::SampleSpan(0.1, id), trace::SampleSpan(0.1, id));
    EXPECT_FALSE(trace::SampleSpan(0.0, id));
    EXPECT_TRUE(trace::SampleSpan(1.0, id));
  }
}

TEST(SpanSampling, RateControlsTheSampledFraction) {
  std::size_t hits = 0;
  const std::size_t n = 100'000;
  for (std::uint64_t id = 0; id < n; ++id) {
    if (trace::SampleSpan(0.1, id)) ++hits;
  }
  const double frac = static_cast<double>(hits) / static_cast<double>(n);
  EXPECT_GT(frac, 0.08);
  EXPECT_LT(frac, 0.12);
}

TEST(SpanSampling, RequestIdPacksCoreAboveOrdinal) {
  EXPECT_EQ(trace::SpanRequestId(0, 0), 0u);
  EXPECT_EQ(trace::SpanRequestId(0, 7), 7u);
  EXPECT_EQ(trace::SpanRequestId(3, 7), (3ULL << 48) | 7u);
  // Distinct cores never collide, whatever their ordinals.
  EXPECT_NE(trace::SpanRequestId(1, 0), trace::SpanRequestId(2, 0));
}

// ---------------------------------------------------------------------------
// Recorder.

TEST(SpanRecorder, RecordsStagesThroughValidRefsOnly) {
  trace::SpanRecorder rec(1.0);
  trace::SpanRef ref = rec.Begin(42, 1, 'A', 0x1000, NsToTicks(10));
  ASSERT_TRUE(ref.valid());
  rec.Stage(ref, trace::SpanStage::kVaultQueue, NsToTicks(10), NsToTicks(12), 3);
  rec.End(ref, NsToTicks(20), true);

  // Invalid refs are silently ignored — this is the unsampled path.
  rec.Stage(trace::SpanRef(), trace::SpanStage::kBankAccess, 0, 1);
  rec.End(trace::SpanRef(), 99, false);

  ASSERT_EQ(rec.log().spans.size(), 1u);
  const trace::SpanRecord& sp = rec.log().spans[0];
  EXPECT_EQ(sp.id, 42u);
  EXPECT_EQ(sp.core, 1);
  EXPECT_EQ(sp.kind, 'A');
  EXPECT_TRUE(sp.offloaded);
  ASSERT_EQ(sp.stages.size(), 1u);
  EXPECT_EQ(sp.stages[0].stage, trace::SpanStage::kVaultQueue);
  EXPECT_EQ(sp.stages[0].detail, 3u);
}

TEST(SpanRecorder, MaxSpansCapsTheLog) {
  trace::SpanRecorder rec(1.0, 2);
  EXPECT_TRUE(rec.Begin(1, 0, 'R', 0, 0).valid());
  EXPECT_TRUE(rec.Begin(2, 0, 'R', 0, 0).valid());
  EXPECT_FALSE(rec.Begin(3, 0, 'R', 0, 0).valid());
  EXPECT_EQ(rec.log().spans.size(), 2u);
}

TEST(SpanRecorder, ZeroRateSamplesNothing) {
  trace::SpanRecorder rec(0.0);
  for (std::uint64_t id = 0; id < 1000; ++id) {
    EXPECT_FALSE(rec.Begin(id, 0, 'R', 0, 0).valid());
  }
  EXPECT_TRUE(rec.log().empty());
}

// ---------------------------------------------------------------------------
// Exporters and stat folding.

trace::SpanLog SmallLog() {
  trace::SpanRecorder rec(1.0);
  trace::SpanRef a = rec.Begin(5, 0, 'A', 0x40, NsToTicks(0));
  rec.Stage(a, trace::SpanStage::kCubeLink, NsToTicks(0), NsToTicks(4), 0);
  rec.Stage(a, trace::SpanStage::kVaultQueue, NsToTicks(4), NsToTicks(6), 2);
  rec.Stage(a, trace::SpanStage::kBankAccess, NsToTicks(6), NsToTicks(30), 2);
  rec.Stage(a, trace::SpanStage::kAtomicFu, NsToTicks(30), NsToTicks(31), 2);
  rec.Stage(a, trace::SpanStage::kResponse, NsToTicks(31), NsToTicks(36), 0);
  rec.End(a, NsToTicks(36), true);
  trace::SpanRef b = rec.Begin(9, 1, 'R', 0x80, NsToTicks(2));
  rec.Stage(b, trace::SpanStage::kCacheLookup, NsToTicks(2), NsToTicks(5), 1);
  rec.End(b, NsToTicks(5), false);
  return rec.TakeLog();
}

TEST(SpanExport, JsonlLinesAreStrictJson) {
  const std::string jsonl = trace::SpansToJsonl(SmallLog());
  std::istringstream in(jsonl);
  std::string line;
  std::size_t lines = 0;
  while (std::getline(in, line)) {
    ++lines;
    EXPECT_TRUE(StrictJson::Valid(line)) << line;
  }
  EXPECT_EQ(lines, 2u);
  EXPECT_NE(jsonl.find("\"kind\":\"A\""), std::string::npos);
  EXPECT_NE(jsonl.find("\"s\":\"vault_queue\""), std::string::npos);
}

TEST(SpanExport, ChromeTraceWithSpansIsStrictJson) {
  trace::PhaseLog phases;
  StatRegistry reg;
  reg.Add("hmc.reads", 3.0);
  phases.Cut("superstep.0", 0, NsToTicks(40), reg);
  const trace::SpanLog spans = SmallLog();
  const std::string chrome = trace::ToChromeTrace(phases, &spans);
  EXPECT_TRUE(StrictJson::Valid(chrome)) << chrome;
  // Span tracks ride their own pids next to the phase track.
  EXPECT_NE(chrome.find("\"name\":\"cores\""), std::string::npos);
  EXPECT_NE(chrome.find("\"name\":\"vaults\""), std::string::npos);
  EXPECT_NE(chrome.find("span.bank"), std::string::npos);
}

TEST(SpanExport, EmptyChromeTraceIsValidAndExact) {
  // Regression: an empty phase log (e.g. --metrics-out on a run with no
  // barrier) must still emit a strict-JSON document with an empty
  // traceEvents array, not a dangling "[\n".
  trace::PhaseLog empty;
  const std::string chrome = trace::ToChromeTrace(empty);
  EXPECT_EQ(chrome, "{\"displayTimeUnit\":\"ns\",\"traceEvents\":[]}\n");
  EXPECT_TRUE(StrictJson::Valid(chrome));
  // And the same through the file writer.
  const std::string path = ::testing::TempDir() + "/gp_empty_trace.json";
  trace::WriteTrace(empty, path);
  std::ifstream in(path);
  std::stringstream buf;
  buf << in.rdbuf();
  EXPECT_EQ(buf.str(), chrome);
  std::remove(path.c_str());
}

TEST(SpanExport, NonEmptyPhaseOnlyTraceIsStrictJson) {
  trace::PhaseLog phases;
  StatRegistry reg;
  reg.Add("core.insts", 10.0);
  phases.Cut("superstep.0", 0, NsToTicks(10), reg);
  EXPECT_TRUE(StrictJson::Valid(trace::ToChromeTrace(phases)));
}

TEST(SpanStats, FoldProducesPerStageAndAtomicFamilies) {
  StatRegistry reg;
  trace::FoldSpanStats(SmallLog(), &reg);
  EXPECT_DOUBLE_EQ(reg.Get("span.sampled"), 2.0);
  EXPECT_DOUBLE_EQ(reg.Get("span.bank.count"), 1.0);
  EXPECT_DOUBLE_EQ(reg.Get("span.bank.sum_ns"), 24.0);
  EXPECT_DOUBLE_EQ(reg.Get("span.cache.count"), 1.0);
  EXPECT_DOUBLE_EQ(reg.Get("span.atomic.count"), 1.0);
  EXPECT_DOUBLE_EQ(reg.Get("span.atomic.total_ns"), 36.0);
  // The atomic's stages tile its lifetime exactly.
  EXPECT_DOUBLE_EQ(reg.Get("span.atomic.unattributed_ns"), 0.0);
  EXPECT_DOUBLE_EQ(reg.Get("span.atomic.bank.sum_ns"), 24.0);

  // Folding an empty log touches nothing (the goldens contract).
  StatRegistry clean;
  trace::FoldSpanStats(trace::SpanLog(), &clean);
  EXPECT_FALSE(clean.Has("span.sampled"));
}

TEST(SpanStats, FoldReportsP99NextToP95) {
  // Serving SLOs read span.*.p99; regression-pin the keys for both the
  // per-stage and the atomic-total families. On SmallLog's single-sample
  // stages every quantile collapses to the same bucket, so p99 must be
  // present and >= p95.
  StatRegistry reg;
  trace::FoldSpanStats(SmallLog(), &reg);
  ASSERT_TRUE(reg.Has("span.bank.p99"));
  ASSERT_TRUE(reg.Has("span.atomic.p99"));
  EXPECT_GE(reg.Get("span.bank.p99"), reg.Get("span.bank.p95"));
  EXPECT_GE(reg.Get("span.atomic.p99"), reg.Get("span.atomic.p95"));
}

// ---------------------------------------------------------------------------
// End to end through the simulator.

core::SimConfig TracedConfig(double rate) {
  core::SimConfig sc = core::SimConfig::Scaled(core::Mode::kGraphPim);
  sc.num_cores = 4;
  sc.trace_sample_rate = rate;
  return sc;
}

TEST(SpanEndToEnd, SampledRunIsDeterministic) {
  core::Experiment::Options eo;
  eo.num_threads = 4;
  eo.seed = 3;
  eo.op_cap = 30'000;
  core::Experiment exp("ldbc", 512, "bfs", eo);

  trace::SpanLog a, b;
  core::RunOptions ra, rb;
  ra.spans = &a;
  rb.spans = &b;
  exp.Run(TracedConfig(0.1), ra);
  exp.Run(TracedConfig(0.1), rb);
  ASSERT_FALSE(a.empty());
  EXPECT_EQ(trace::SpansToJsonl(a), trace::SpansToJsonl(b));
}

TEST(SpanEndToEnd, TracingDoesNotPerturbSimulationResults) {
  core::Experiment::Options eo;
  eo.num_threads = 4;
  eo.seed = 3;
  eo.op_cap = 30'000;
  core::Experiment exp("ldbc", 512, "bfs", eo);

  const core::SimResults off = exp.Run(TracedConfig(0.0));
  const core::SimResults on = exp.Run(TracedConfig(0.5));
  // Timing identical; the traced run only ADDS span.* counters.
  EXPECT_EQ(on.cycles, off.cycles);
  EXPECT_EQ(on.insts, off.insts);
  for (const auto& [k, v] : off.raw.AllItems()) {
    EXPECT_DOUBLE_EQ(on.raw.Get(k), v) << k;
  }
  EXPECT_TRUE(on.raw.Has("span.sampled"));
  EXPECT_FALSE(off.raw.Has("span.sampled"));
  // The off run is byte-identical to a default (untraced) config's run.
  EXPECT_EQ(core::ToJson(off), core::ToJson(exp.Run(TracedConfig(0.0))));
}

TEST(SpanEndToEnd, AtomicStageSumsReconcileWithAggregateCounters) {
  core::Experiment::Options eo;
  eo.num_threads = 4;
  eo.seed = 7;
  eo.op_cap = 60'000;
  core::Experiment exp("ldbc", 1024, "prank", eo);

  core::SimResults r = exp.Run(TracedConfig(1.0));  // sample everything
  ASSERT_TRUE(r.raw.Has("span.atomic.count"));
  // Every atomic micro-op was sampled, so the span census matches the
  // aggregate counters exactly...
  EXPECT_DOUBLE_EQ(r.raw.Get("span.atomic.count"),
                   static_cast<double>(r.atomics));
  // ...and per-stage sums reconcile with the cube's dbg_a_* aggregates
  // (GraphPIM offloads every PMR atomic, and the vault stages tile
  // [arrival, data_ready] by construction). 1% headroom for float folding.
  const double vault_spans = r.raw.Get("span.atomic.vault_queue.sum_ns") +
                             r.raw.Get("span.atomic.bank.sum_ns") +
                             r.raw.Get("span.atomic.fu.sum_ns");
  const double vault_agg = r.raw.Get("hmc.dbg_a_vault_ns");
  EXPECT_NEAR(vault_spans, vault_agg, 0.01 * vault_agg);
  const double link_spans = r.raw.Get("span.atomic.cube_link.sum_ns");
  const double link_agg = r.raw.Get("hmc.dbg_a_req_ns");
  EXPECT_NEAR(link_spans, link_agg, 0.01 * link_agg);
}

TEST(SpanEndToEnd, ReportAndBottleneckTableRenderSpanSections) {
  core::Experiment::Options eo;
  eo.num_threads = 2;
  eo.seed = 3;
  eo.op_cap = 20'000;
  core::Experiment exp("ldbc", 512, "bfs", eo);
  core::SimConfig sc = TracedConfig(1.0);
  sc.num_cores = 2;
  const core::SimResults r = exp.Run(sc);

  const std::string report = core::FormatReport(r);
  EXPECT_NE(report.find("spans: "), std::string::npos);
  EXPECT_NE(report.find("atomic end-to-end"), std::string::npos);
  // The span section sits strictly after the energy line so golden diffs
  // bounded at "uncore energy:" never see it.
  EXPECT_LT(report.find("uncore energy:"), report.find("spans: "));

  const std::string table = core::FormatBottleneckTable({r});
  EXPECT_NE(table.find("bottleneck attribution"), std::string::npos);
  EXPECT_NE(table.find("bank"), std::string::npos);

  // Untraced results render no span section and no table.
  core::SimConfig plain = TracedConfig(0.0);
  plain.num_cores = 2;
  const core::SimResults off = exp.Run(plain);
  EXPECT_EQ(core::FormatReport(off).find("spans: "), std::string::npos);
  EXPECT_TRUE(core::FormatBottleneckTable({off}).empty());
}

// ---------------------------------------------------------------------------
// Sweep journal sidecar.

std::string SpanSidecars(const std::string& path) {
  std::ifstream in(path);
  std::string line, out;
  while (std::getline(in, line)) {
    if (line.rfind("{\"spans_for\":", 0) == 0) {
      EXPECT_TRUE(StrictJson::Valid(line)) << line;
      out += line;
      out += '\n';
    }
  }
  return out;
}

TEST(SpanJournal, SidecarsAreWrittenSkippedOnLoadAndJobsInvariant) {
  exec::SweepGrid grid;
  grid.workloads = {"bfs"};
  grid.profiles = {"ldbc"};
  grid.vertices = 512;
  grid.sim_threads = 2;
  grid.op_cap = 10'000;
  core::SimConfig c = core::SimConfig::Scaled(core::Mode::kGraphPim);
  c.num_cores = 2;
  c.trace_sample_rate = 0.2;
  grid.configs = {c, core::SimConfig::Scaled(core::Mode::kBaseline)};
  grid.configs[1].num_cores = 2;
  grid.configs[1].trace_sample_rate = 0.2;
  grid.config_names = {"graphpim", "baseline"};

  auto run_with_jobs = [&](int jobs, const std::string& path) {
    std::remove(path.c_str());
    exec::SweepRunner::Options opts;
    opts.jobs = jobs;
    opts.journal_path = path;
    exec::SweepResultTable t = exec::SweepRunner(opts).Run(grid);
    EXPECT_EQ(t.failed_rows, 0u);
  };

  const std::string p1 = ::testing::TempDir() + "/gp_spans_j1.jsonl";
  const std::string p4 = ::testing::TempDir() + "/gp_spans_j4.jsonl";
  run_with_jobs(1, p1);
  run_with_jobs(4, p4);

  const std::string s1 = SpanSidecars(p1);
  const std::string s4 = SpanSidecars(p4);
  ASSERT_FALSE(s1.empty());
  // Deterministic sampling: the span sidecars are bit-identical at any
  // --jobs width (rows are harvested in grid order either way).
  EXPECT_EQ(s1, s4);
  EXPECT_NE(s1.find("\"spans\":[{"), std::string::npos);

  // Sidecars are annotations: loading restores the rows and drops nothing.
  exec::JournalData jd;
  ASSERT_TRUE(exec::LoadJournal(p1, &jd));
  EXPECT_EQ(jd.rows.size(), 2u);
  EXPECT_EQ(jd.dropped_lines, 0u);
  std::remove(p1.c_str());
  std::remove(p4.c_str());
}

}  // namespace
}  // namespace graphpim
