// Tests for the intra-run sharded replay engine and the tiled SoA trace
// (DESIGN.md §15).
//
// The engine contract is byte-identity: `sim.shards` partitions cores
// across ThreadPool workers behind a deterministic turn-token rendezvous,
// so every observable output (report, JSON, counters) must match the
// serial loop exactly at any shard count. These tests pin that contract on
// the golden scenarios — including the persist domain and the flight
// recorder, whose logs ride the same merge path — plus the tile-layout
// edge cases the column-wise replay walk depends on.
//
// Everything here is named Replay* so CI's TSan job can select the
// sharded runs (the one new cross-thread surface) with one filter.
#include <gtest/gtest.h>

#include <string>
#include <utility>
#include <vector>

#include "common/log.h"
#include "core/report.h"
#include "core/runner.h"
#include "cpu/core.h"
#include "cpu/uop_stream.h"
#include "workloads/trace.h"

namespace graphpim {
namespace {

// Runs `exp` under `sc` at shards=1 and shards=4 and requires the full
// JSON (every counter) and report to match byte for byte.
void ExpectShardInvariant(const core::Experiment& exp, core::SimConfig sc,
                          const std::string& label) {
  sc.shards = 1;
  const core::SimResults serial = exp.Run(sc);
  sc.shards = 4;
  const core::SimResults sharded = exp.Run(sc);
  EXPECT_EQ(core::ToJson(serial), core::ToJson(sharded))
      << label << ": --shards=4 JSON differs from serial";
  EXPECT_EQ(core::FormatReport(serial), core::FormatReport(sharded))
      << label << ": --shards=4 report differs from serial";
}

core::Experiment::Options SmallOptions(pmem::PersistMode persist) {
  core::Experiment::Options eo;
  eo.num_threads = 8;
  eo.seed = 1;
  eo.op_cap = 150'000;
  eo.persist = persist;
  return eo;
}

TEST(ReplayShardIdentity, BfsGoldenConfig) {
  // The exact machine the tests/golden/ files pin (test_golden.cc), both
  // modes: the sharded engine must reproduce the golden runs bit for bit.
  core::Experiment exp("ldbc", 2048, "bfs", SmallOptions(pmem::PersistMode::kOff));
  for (core::Mode m : {core::Mode::kBaseline, core::Mode::kGraphPim}) {
    core::SimConfig sc = core::SimConfig::Scaled(m);
    sc.num_cores = 8;
    sc.hmc.enable_fp_atomics = true;
    ExpectShardInvariant(exp, sc, std::string("bfs/") + core::ToString(m));
  }
}

TEST(ReplayShardIdentity, GupWithPersistDomain) {
  // pmem.enable=1: per-shard persist queues and the domain seal must merge
  // in shard order, keeping the pmem.* counter family identical.
  core::Experiment exp("ldbc", 1024, "gup", SmallOptions(pmem::PersistMode::kFull));
  core::SimConfig sc = core::SimConfig::Scaled(core::Mode::kGraphPim);
  sc.num_cores = 8;
  sc.pmem.enable = true;
  ExpectShardInvariant(exp, sc, "gup/pmem");
}

TEST(ReplayShardIdentity, TmorphWithFlightRecorder) {
  // trace.sample_rate > 0: span sampling decisions are drawn per-request
  // from deterministic state, so the folded span.* statistics must not
  // depend on the shard count either.
  core::Experiment exp("ldbc", 1024, "tmorph",
                       SmallOptions(pmem::PersistMode::kOff));
  core::SimConfig sc = core::SimConfig::Scaled(core::Mode::kGraphPim);
  sc.num_cores = 8;
  sc.trace_sample_rate = 0.05;
  ExpectShardInvariant(exp, sc, "tmorph/spans");
}

TEST(ReplayThreadChunk, ZeroItems) {
  for (int t = 0; t < 4; ++t) {
    const auto [b, e] = workloads::ThreadChunk(0, t, 4);
    EXPECT_EQ(b, 0u);
    EXPECT_EQ(e, 0u);
  }
}

TEST(ReplayThreadChunk, MoreThreadsThanItems) {
  // 3 items over 8 threads: the first three threads get one item each,
  // the rest own empty ranges; coverage is contiguous and disjoint.
  std::size_t expected_begin = 0;
  for (int t = 0; t < 8; ++t) {
    const auto [b, e] = workloads::ThreadChunk(3, t, 8);
    EXPECT_EQ(b, expected_begin) << "thread " << t;
    EXPECT_EQ(e - b, t < 3 ? 1u : 0u) << "thread " << t;
    expected_begin = e;
  }
  EXPECT_EQ(expected_begin, 3u);
}

TEST(ReplayThreadChunk, RemainderSpreadsOverLeadingThreads) {
  std::size_t expected_begin = 0;
  for (int t = 0; t < 3; ++t) {
    const auto [b, e] = workloads::ThreadChunk(10, t, 3);
    EXPECT_EQ(b, expected_begin);
    EXPECT_EQ(e - b, t == 0 ? 4u : 3u);
    expected_begin = e;
  }
  EXPECT_EQ(expected_begin, 10u);
}

// Minimal memory model so OooCore can replay hand-built streams.
class FlatMem : public cpu::MemoryInterface {
 public:
  cpu::MemOutcome Access(int /*core*/, const cpu::MicroOp& /*op*/,
                         Tick when) override {
    cpu::MemOutcome out;
    out.complete = when + NsToTicks(1.0);
    out.retire_ready = out.complete;
    return out;
  }
};

cpu::MicroOp ComputeOp() {
  cpu::MicroOp op;
  op.type = cpu::OpType::kCompute;
  op.compute_lat = 1;
  return op;
}

cpu::MicroOp BarrierOp() {
  cpu::MicroOp op;
  op.type = cpu::OpType::kBarrier;
  op.addr = 1;
  return op;
}

// Replays `stream` to completion, returning the number of kBarrier stops.
int CountBarrierStops(const cpu::UopStream& stream, double* insts_out) {
  FlatMem mem;
  cpu::OooCore core(0, cpu::CoreParams(), &mem);
  core.Reset(&stream);
  int barriers = 0;
  while (true) {
    const cpu::OooCore::Status s = core.Advance(core.Now() + NsToTicks(1e6));
    if (s == cpu::OooCore::Status::kDone) break;
    if (s != cpu::OooCore::Status::kBarrier) {
      ADD_FAILURE() << "unexpected Advance status";
      break;
    }
    ++barriers;
    core.ReleaseBarrier(core.BarrierArrival());
  }
  if (insts_out != nullptr) *insts_out = core.stats().Get("core.insts");
  return barriers;
}

// gtest's ASSERT_ inside a non-void helper needs this wrapper shape.
void ExpectBarrierWalk(std::size_t barrier_pos) {
  // barrier_pos ops, the barrier, then a tail that crosses at least one
  // more lane — exercises the column-wise walk around the 1024-op tile
  // boundary (last lane of tile N, first lane of tile N+1).
  cpu::UopStream stream;
  for (std::size_t i = 0; i < barrier_pos; ++i) stream.push_back(ComputeOp());
  stream.push_back(BarrierOp());
  for (std::size_t i = 0; i < 10; ++i) stream.push_back(ComputeOp());

  double insts = 0.0;
  const int barriers = CountBarrierStops(stream, &insts);
  EXPECT_EQ(barriers, 1) << "barrier at index " << barrier_pos;
  // The barrier itself retires no instruction.
  EXPECT_DOUBLE_EQ(insts, static_cast<double>(barrier_pos + 10))
      << "barrier at index " << barrier_pos;
}

TEST(ReplayTileWalk, BarrierAtTileBoundaries) {
  ExpectBarrierWalk(cpu::kTileOps - 1);  // last lane of tile 0
  ExpectBarrierWalk(cpu::kTileOps);      // first lane of tile 1
  ExpectBarrierWalk(cpu::kTileOps + 1);  // one past the boundary
  ExpectBarrierWalk(2 * cpu::kTileOps);  // first lane of tile 2
}

TEST(ReplayTileWalk, BackToBackBarriersAcrossTiles) {
  cpu::UopStream stream;
  for (std::size_t i = 0; i < cpu::kTileOps - 1; ++i) {
    stream.push_back(ComputeOp());
  }
  stream.push_back(BarrierOp());  // last lane of tile 0
  stream.push_back(BarrierOp());  // first lane of tile 1
  stream.push_back(ComputeOp());

  double insts = 0.0;
  const int barriers = CountBarrierStops(stream, &insts);
  EXPECT_EQ(barriers, 2);
  EXPECT_DOUBLE_EQ(insts, static_cast<double>(cpu::kTileOps));
}

TEST(ReplayTiles, ReplaceAtomicsWithPlainPreservesMultiTileStreams) {
  // A stream spanning three tiles with atomics sprinkled across tile
  // boundaries: the transform re-tiles its output (each atomic becomes a
  // load + dependent store), and every surviving op must keep its column
  // values bit for bit.
  workloads::Trace trace;
  cpu::UopStream s;
  const std::size_t total = 2 * cpu::kTileOps + 500;
  std::size_t atomics = 0;
  for (std::size_t i = 0; i < total; ++i) {
    if (i % 97 == 0) {
      cpu::MicroOp op;
      op.type = cpu::OpType::kAtomic;
      op.addr = 0x1000 + i * 8;
      op.aop = hmc::AtomicOp::kDualAdd8;
      op.size = 8;
      s.push_back(op);
      ++atomics;
    } else {
      s.push_back(ComputeOp());
    }
  }
  trace.streams.push_back(std::move(s));

  const workloads::Trace plain = workloads::ReplaceAtomicsWithPlain(trace);
  ASSERT_EQ(plain.streams.size(), 1u);
  const cpu::UopStream& out = plain.streams[0];
  EXPECT_EQ(out.size(), total + atomics);  // each atomic -> load + store
  EXPECT_EQ(out.num_tiles(), (out.size() + cpu::kTileMask) >> cpu::kTileShift);

  std::size_t j = 0;
  for (std::size_t i = 0; i < total; ++i) {
    const cpu::MicroOp orig = trace.streams[0][i];
    if (orig.type == cpu::OpType::kAtomic) {
      const cpu::MicroOp ld = out[j++];
      const cpu::MicroOp st = out[j++];
      EXPECT_EQ(ld.type, cpu::OpType::kLoad);
      EXPECT_EQ(ld.addr, orig.addr);
      EXPECT_EQ(st.type, cpu::OpType::kStore);
      EXPECT_EQ(st.addr, orig.addr);
      EXPECT_NE(st.flags & cpu::kFlagDepPrev, 0u);
    } else {
      const cpu::MicroOp kept = out[j++];
      EXPECT_EQ(kept.type, orig.type);
      EXPECT_EQ(kept.addr, orig.addr);
      EXPECT_EQ(kept.flags, orig.flags);
      EXPECT_EQ(kept.compute_lat, orig.compute_lat);
    }
  }
  EXPECT_EQ(j, out.size());
}

TEST(ReplayTiles, BytesUsedTracksTileAllocation) {
  cpu::UopStream s;
  EXPECT_EQ(s.BytesUsed(), 0u);
  s.push_back(ComputeOp());
  EXPECT_GE(s.BytesUsed(), sizeof(cpu::TraceTile));
  for (std::size_t i = 0; i < cpu::kTileOps; ++i) s.push_back(ComputeOp());
  EXPECT_GE(s.BytesUsed(), 2 * sizeof(cpu::TraceTile));
}

TEST(ReplayTiles, TracePeakBytesSurfacesInResultsAndReport) {
  // The regression test for trace.peak_bytes (allocation-churn fix): the
  // replayed trace's footprint lands in SimResults and prints strictly
  // after the "uncore energy:" golden-diff cutoff — and stays OUT of the
  // JSON, whose field surface the golden files pin.
  core::Experiment::Options eo;
  eo.num_threads = 4;
  eo.seed = 1;
  eo.op_cap = 20'000;
  core::Experiment exp("ldbc", 512, "bfs", eo);
  core::SimConfig sc = core::SimConfig::Scaled(core::Mode::kGraphPim);
  sc.num_cores = 4;
  const core::SimResults r = exp.Run(sc);

  EXPECT_EQ(r.trace_peak_bytes, exp.trace().BytesUsed());
  EXPECT_GT(r.trace_peak_bytes, 0u);

  const std::string report = core::FormatReport(r);
  const std::size_t energy_at = report.find("uncore energy:");
  const std::size_t trace_at = report.find("trace: peak ");
  ASSERT_NE(energy_at, std::string::npos);
  ASSERT_NE(trace_at, std::string::npos);
  EXPECT_LT(energy_at, trace_at);
  EXPECT_EQ(core::ToJson(r).find("trace_peak"), std::string::npos);

  // Hand-built results (no replayed trace) print no footprint line.
  core::SimResults empty;
  EXPECT_EQ(core::FormatReport(empty).find("trace: peak"), std::string::npos);
}

TEST(ReplayConfig, ShardsKnobRidesTheFieldTable) {
  // Anti-drift: sim.shards must be a real KnobRow — present in
  // ConfigKeys() under both spellings, rendered by Describe(), and
  // range-checked by Validate() like every other knob.
  const std::vector<std::string> keys = core::SimConfig::ConfigKeys();
  auto has_key = [&](const char* k) {
    for (const std::string& key : keys) {
      if (key == k) return true;
    }
    return false;
  };
  EXPECT_TRUE(has_key("sim.shards"));
  EXPECT_TRUE(has_key("shards"));

  core::SimConfig sc = core::SimConfig::Scaled(core::Mode::kGraphPim);
  EXPECT_NE(sc.Describe().find("sim.shards="), std::string::npos)
      << sc.Describe();

  sc.shards = 4;
  EXPECT_NO_THROW(sc.Validate());
  sc.shards = 0;
  EXPECT_THROW(sc.Validate(), SimError);
  sc.shards = 257;
  EXPECT_THROW(sc.Validate(), SimError);
}

}  // namespace
}  // namespace graphpim
