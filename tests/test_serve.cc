// src/serve tests: value-derived traffic schedules (deterministic, qps
// acting only on arrival spacing), per-tenant carve isolation, admission
// queue drop accounting, and the headline determinism regressions — a
// serve grid must be bit-identical at --jobs=1 vs --jobs=4 and across
// reruns at a fixed seed.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/log.h"
#include "core/sim_config.h"
#include "serve/engine.h"
#include "serve/query.h"
#include "serve/slo.h"
#include "serve/traffic.h"
#include "workloads/trace.h"

namespace graphpim::serve {
namespace {

TrafficSpec TinyTraffic(double qps = 2e6) {
  TrafficSpec ts;
  ts.qps = qps;
  ts.num_requests = 40;
  ts.num_tenants = 2;
  ts.num_vertices = 2048;
  ts.seed = 7;
  return ts;
}

ServedGraph::Options TinyGraph() {
  ServedGraph::Options go;
  go.profile = "ldbc";
  go.num_vertices = 2048;
  go.num_tenants = 2;
  go.seed = 7;
  return go;
}

ServeParams TinyParams(core::Mode mode = core::Mode::kGraphPim) {
  ServeParams p;
  p.cfg = core::SimConfig::Scaled(mode);
  p.traffic = TinyTraffic();
  p.query.max_hops = 2;
  p.query.max_frontier = 16;
  p.query.op_budget = 600;
  p.queue_depth = 8;
  p.slots = 2;
  p.batch_max = 4;
  return p;
}

// Stable textual fingerprint of a point: every deterministic field plus
// the full registry. Two runs are "identical" iff these strings match.
std::string Fingerprint(const ServePoint& p) {
  std::string s = p.config_name + "|" + std::to_string(p.qps) + "|" +
                  std::to_string(p.offered) + "|" + std::to_string(p.served) +
                  "|" + std::to_string(p.dropped) + "|" +
                  std::to_string(p.p50_ns) + "|" + std::to_string(p.p95_ns) +
                  "|" + std::to_string(p.p99_ns) + "|" +
                  std::to_string(p.queue_peak) + "|" +
                  std::to_string(p.horizon_ns);
  for (const auto& [k, v] : p.raw.AllItems()) {
    s += "\n" + k + "=" + std::to_string(v);
  }
  return s;
}

TEST(ServeTraffic, ScheduleIsDeterministicAtFixedSeed) {
  const TrafficSpec ts = TinyTraffic();
  const auto a = GenerateSchedule(ts);
  const auto b = GenerateSchedule(ts);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].arrival, b[i].arrival);
    EXPECT_EQ(a[i].tenant, b[i].tenant);
    EXPECT_EQ(a[i].kind, b[i].kind);
    EXPECT_EQ(a[i].root, b[i].root);
  }
  // Arrivals are a cumulative sum of positive interarrivals.
  for (std::size_t i = 1; i < a.size(); ++i) {
    EXPECT_GE(a[i].arrival, a[i - 1].arrival);
  }
}

TEST(ServeTraffic, QpsChangesSpacingButNotRequestIdentity) {
  TrafficSpec slow = TinyTraffic(1e5);
  TrafficSpec fast = TinyTraffic(4e6);
  const auto a = GenerateSchedule(slow);
  const auto b = GenerateSchedule(fast);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].tenant, b[i].tenant) << i;
    EXPECT_EQ(a[i].kind, b[i].kind) << i;
    EXPECT_EQ(a[i].root, b[i].root) << i;
  }
  // 40x the rate compresses the horizon accordingly.
  EXPECT_GT(a.back().arrival, b.back().arrival);
}

TEST(ServeTraffic, BurstyLongRunRateStaysNearNominal) {
  TrafficSpec ts = TinyTraffic(1e6);
  ts.model = ArrivalModel::kBursty;
  ts.num_requests = 4000;
  const auto sched = GenerateSchedule(ts);
  const double horizon_s =
      static_cast<double>(sched.back().arrival) / 1e12;  // ticks = ps
  const double rate = static_cast<double>(sched.size()) / horizon_s;
  // Normalized MMPP: mean interarrival is solved to exactly 1/qps, so the
  // long-run rate sits near nominal (deterministic draw stream; the band
  // only covers finite-sample wobble over 4000 arrivals).
  EXPECT_GT(rate, ts.qps * 0.75);
  EXPECT_LT(rate, ts.qps * 1.25);
}

TEST(ServeTraffic, RejectsDegenerateSpecs) {
  TrafficSpec ts = TinyTraffic();
  ts.num_vertices = 0;
  EXPECT_THROW(GenerateSchedule(ts), SimError);
  ts = TinyTraffic();
  ts.qps = 0.0;
  EXPECT_THROW(GenerateSchedule(ts), SimError);
  ts = TinyTraffic();
  ts.burst_mult = 0.5;
  EXPECT_THROW(GenerateSchedule(ts), SimError);
  EXPECT_THROW(ParseArrivalModel("uniform"), SimError);
}

TEST(ServeQuery, CarvesArePageAlignedAndDisjoint) {
  ServedGraph sg(TinyGraph());
  ASSERT_EQ(sg.num_tenants(), 2u);
  const std::uint64_t page = graph::AddressSpace::kPmrPageBytes;
  for (std::uint32_t t = 0; t < sg.num_tenants(); ++t) {
    const TenantCarve& c = sg.carve(t);
    EXPECT_EQ(c.prop_base % page, 0u);
    EXPECT_EQ(c.aux_base % page, 0u);
    EXPECT_EQ(c.bytes() % page, 0u);
    EXPECT_GE(c.prop_base, sg.pmr_base());
    EXPECT_LE(c.end, sg.pmr_end());
  }
  // Disjoint: no address owned by two tenants.
  const TenantCarve& a = sg.carve(0);
  const TenantCarve& b = sg.carve(1);
  EXPECT_TRUE(a.end <= b.prop_base || b.end <= a.prop_base);
  EXPECT_EQ(sg.OwnerOf(a.prop_base), 0);
  EXPECT_EQ(sg.OwnerOf(b.prop_base), 1);
  EXPECT_EQ(sg.OwnerOf(sg.pmr_end() - 1), -1);
}

TEST(ServeQuery, TenantPropertyTrafficNeverLeavesItsCarve) {
  ServedGraph sg(TinyGraph());
  QueryParams qp;
  qp.max_hops = 3;
  qp.max_frontier = 32;
  qp.op_budget = 2000;
  for (std::uint32_t tenant = 0; tenant < sg.num_tenants(); ++tenant) {
    for (const std::string name : {"bfs", "sssp", "prank"}) {
      const int kind = FindQueryKind(name);
      ASSERT_GE(kind, 0) << name;
      workloads::TraceBuilder tb(1, &sg.space());
      ServeRequest req;
      req.tenant = tenant;
      req.kind = static_cast<QueryKindId>(kind);
      req.root = 17;
      const QueryFootprint fp = EmitQuery(sg, req, qp, tb, 0);
      EXPECT_GT(fp.ops, 0u) << name;
      const workloads::Trace tr = tb.Take();
      std::uint64_t pmr_ops = 0;
      for (const cpu::MicroOp& op : tr.streams[0]) {
        if (op.addr < sg.pmr_base() || op.addr >= sg.pmr_end()) continue;
        ++pmr_ops;
        // THE isolation property: every property access of tenant K's
        // query resolves to tenant K's carve.
        EXPECT_EQ(sg.OwnerOf(op.addr), static_cast<int>(tenant))
            << name << " op at 0x" << std::hex << op.addr;
      }
      EXPECT_GT(pmr_ops, 0u) << name;
    }
  }
}

TEST(ServeEngine, EveryRequestIsServedOrDropped) {
  ServedGraph sg(TinyGraph());
  for (DropPolicy drop : {DropPolicy::kTail, DropPolicy::kHead}) {
    ServeParams p = TinyParams();
    p.drop = drop;
    p.queue_depth = 2;          // tiny queue
    p.traffic.qps = 5e7;        // far beyond capacity: forces drops
    const ServePoint pt = RunServePoint(sg, p);
    EXPECT_EQ(pt.offered, p.traffic.num_requests);
    EXPECT_EQ(pt.offered, pt.served + pt.dropped);
    EXPECT_GT(pt.dropped, 0u) << ToString(drop);
    EXPECT_LE(pt.queue_peak, p.queue_depth);
    // Tenant slices partition the totals.
    std::uint64_t off = 0, srv = 0, drp = 0;
    for (const TenantSlo& t : pt.tenants) {
      off += t.offered;
      srv += t.served;
      drp += t.dropped;
    }
    EXPECT_EQ(off, pt.offered);
    EXPECT_EQ(srv, pt.served);
    EXPECT_EQ(drp, pt.dropped);
    // Folded registry mirrors the struct.
    EXPECT_EQ(pt.raw.Get("serve.offered"), static_cast<double>(pt.offered));
    EXPECT_EQ(pt.raw.Get("serve.dropped"), static_cast<double>(pt.dropped));
    EXPECT_EQ(pt.raw.Get("serve.latency.p99_ns"), pt.p99_ns);
  }
}

TEST(ServeEngine, UncontendedLoadServesEverything) {
  ServedGraph sg(TinyGraph());
  ServeParams p = TinyParams();
  p.traffic.qps = 1e4;  // glacial arrivals: queue never builds
  const ServePoint pt = RunServePoint(sg, p);
  EXPECT_EQ(pt.served, pt.offered);
  EXPECT_EQ(pt.dropped, 0u);
  EXPECT_EQ(pt.queue_peak, 0u);
  EXPECT_GT(pt.p50_ns, 0.0);
  EXPECT_LE(pt.p50_ns, pt.p95_ns);
  EXPECT_LE(pt.p95_ns, pt.p99_ns);
  EXPECT_LE(pt.p99_ns, pt.max_ns);
}

TEST(ServeEngine, JobCountDoesNotChangeResults) {
  ServedGraph sg(TinyGraph());
  const ServeParams base = TinyParams();
  const std::vector<std::pair<std::string, core::SimConfig>> configs = {
      {"Baseline", core::SimConfig::Scaled(core::Mode::kBaseline)},
      {"GraphPIM", core::SimConfig::Scaled(core::Mode::kGraphPim)}};
  const std::vector<double> qps = {2e5, 2e6};
  const ServeGridResult one = RunServeGrid(sg, base, configs, qps, 1);
  const ServeGridResult four = RunServeGrid(sg, base, configs, qps, 4);
  ASSERT_EQ(one.points.size(), four.points.size());
  for (std::size_t i = 0; i < one.points.size(); ++i) {
    EXPECT_EQ(Fingerprint(one.points[i]), Fingerprint(four.points[i])) << i;
  }
  EXPECT_EQ(FormatSaturationTable(one.points),
            FormatSaturationTable(four.points));
}

TEST(ServeEngine, RerunAtFixedSeedIsByteIdentical) {
  ServedGraph sg(TinyGraph());
  const ServeParams base = TinyParams();
  const std::vector<std::pair<std::string, core::SimConfig>> configs = {
      {"GraphPIM", core::SimConfig::Scaled(core::Mode::kGraphPim)}};
  const std::vector<double> qps = {1e6};
  const ServeGridResult a = RunServeGrid(sg, base, configs, qps, 2);
  const ServeGridResult b = RunServeGrid(sg, base, configs, qps, 2);
  ASSERT_EQ(a.points.size(), b.points.size());
  for (std::size_t i = 0; i < a.points.size(); ++i) {
    EXPECT_EQ(Fingerprint(a.points[i]), Fingerprint(b.points[i]));
  }
  EXPECT_EQ(FormatSaturationTable(a.points) + FormatKneeSummary(a.points),
            FormatSaturationTable(b.points) + FormatKneeSummary(b.points));
}

TEST(ServeEngine, FlagReachableParamErrorsThrowSimError) {
  ServedGraph sg(TinyGraph());
  // All of these arrive straight from CLI flags, so they must surface as
  // catchable SimErrors (one-line tool error), never a GP_CHECK abort.
  ServeParams p = TinyParams();
  p.slots = 0;
  EXPECT_THROW(RunServePoint(sg, p), SimError);
  EXPECT_THROW(RunServeGrid(sg, p, {{"X", p.cfg}}, {1e6}, 1, nullptr),
               SimError);
  p = TinyParams();
  p.batch_max = static_cast<std::size_t>(p.cfg.num_cores) + 1;
  EXPECT_THROW(RunServePoint(sg, p), SimError);
  EXPECT_THROW(RunServeGrid(sg, p, {{"X", p.cfg}}, {1e6}, 1, nullptr),
               SimError);
  p = TinyParams();
  p.queue_depth = 0;
  EXPECT_THROW(RunServePoint(sg, p), SimError);
  EXPECT_THROW(RunServeGrid(sg, p, {{"X", p.cfg}}, {1e6}, 1, nullptr),
               SimError);
  ServedGraph::Options bad = TinyGraph();
  bad.num_tenants = 0;
  EXPECT_THROW(ServedGraph{bad}, SimError);
}

TEST(ServeRegistry, RegistrationOrderAndLookup) {
  // The registry order IS the QueryKindId assignment — append-only, and
  // the first three entries must keep their historical ids for schedule
  // bit-identity.
  const std::vector<QueryEmitter>& ems = QueryEmitters();
  ASSERT_EQ(ems.size(), 4u);
  EXPECT_STREQ(ems[0].name, "bfs");
  EXPECT_STREQ(ems[1].name, "sssp");
  EXPECT_STREQ(ems[2].name, "prank");
  EXPECT_STREQ(ems[3].name, "knn");
  for (std::size_t i = 0; i < ems.size(); ++i) {
    EXPECT_EQ(FindQueryKind(ems[i].name), static_cast<int>(i));
    EXPECT_STREQ(QueryKindName(static_cast<QueryKindId>(i)), ems[i].name);
    ASSERT_NE(ems[i].emit, nullptr);
    ASSERT_NE(ems[i].sample_root, nullptr);
  }
  EXPECT_EQ(FindQueryKind("dfs"), -1);
  EXPECT_STREQ(QueryKindName(static_cast<QueryKindId>(ems.size())), "?");
}

TEST(ServeRegistry, UnknownMixKindThrowsNamingTheOffender) {
  TrafficSpec ts = TinyTraffic();
  ts.mix = {{"bfs", 0.5}, {"zap", 0.5}};
  try {
    GenerateSchedule(ts);
    FAIL() << "expected SimError for unknown kind";
  } catch (const SimError& e) {
    EXPECT_NE(std::string(e.what()).find("zap"), std::string::npos)
        << e.what();
  }
  ts.mix = {{"bfs", -0.5}};
  EXPECT_THROW(GenerateSchedule(ts), SimError);
  ts.mix.clear();
  EXPECT_THROW(GenerateSchedule(ts), SimError);
}

TEST(ServeRegistry, UnregisteredKindIdThrows) {
  ServedGraph sg(TinyGraph());
  workloads::TraceBuilder tb(1, &sg.space());
  ServeRequest req;
  req.kind = static_cast<QueryKindId>(QueryEmitters().size());
  EXPECT_THROW(EmitQuery(sg, req, QueryParams{}, tb, 0), SimError);
}

TEST(ServeRegistry, MixSelectsKindsByWeight) {
  // All-zero mix degenerates to the first entry's kind only.
  TrafficSpec ts = TinyTraffic();
  ts.mix = {{"sssp", 0.0}, {"prank", 0.0}};
  for (const ServeRequest& r : GenerateSchedule(ts)) {
    EXPECT_EQ(r.kind, static_cast<QueryKindId>(FindQueryKind("sssp")));
  }
  // A single-kind mix serves only that kind.
  ts.mix = {{"knn", 1.0}};
  for (const ServeRequest& r : GenerateSchedule(ts)) {
    EXPECT_EQ(r.kind, static_cast<QueryKindId>(FindQueryKind("knn")));
  }
}

TEST(ServeRegistry, ParseMixSpecFormats) {
  const std::vector<MixEntry> a = ParseMixSpec("bfs=0.5,sssp=0.3,prank=0.2");
  ASSERT_EQ(a.size(), 3u);
  EXPECT_EQ(a[0].first, "bfs");
  EXPECT_DOUBLE_EQ(a[0].second, 0.5);
  EXPECT_EQ(a[2].first, "prank");
  EXPECT_DOUBLE_EQ(a[2].second, 0.2);
  const std::vector<MixEntry> b = ParseMixSpec("knn");  // bare name
  ASSERT_EQ(b.size(), 1u);
  EXPECT_EQ(b[0].first, "knn");
  EXPECT_DOUBLE_EQ(b[0].second, 1.0);
  EXPECT_THROW(ParseMixSpec("knn=abc"), SimError);
  EXPECT_THROW(ParseMixSpec("=1"), SimError);
  EXPECT_THROW(ParseMixSpec(""), SimError);
}

ServedGraph::Options TinyAnnGraph() {
  ServedGraph::Options go = TinyGraph();
  go.num_vertices = 1024;  // keeps the HNSW build cheap
  go.enable_ann = true;
  return go;
}

TEST(ServeKnn, AnnIndexDoesNotMoveTheCarves) {
  // Strict layout passthrough: enabling ann must not shift any tenant
  // carve or queue address — the index blocks land after them.
  ServedGraph::Options off = TinyAnnGraph();
  off.enable_ann = false;
  ServedGraph plain(off);
  ServedGraph ann(TinyAnnGraph());
  ASSERT_TRUE(ann.has_ann());
  ASSERT_FALSE(plain.has_ann());
  for (std::uint32_t t = 0; t < plain.num_tenants(); ++t) {
    EXPECT_EQ(plain.carve(t).prop_base, ann.carve(t).prop_base);
    EXPECT_EQ(plain.carve(t).aux_base, ann.carve(t).aux_base);
    EXPECT_EQ(plain.carve(t).end, ann.carve(t).end);
    EXPECT_EQ(plain.QueueAddr(t, 0), ann.QueueAddr(t, 0));
  }
  // The shared index is carve-free territory: no tenant owns it.
  EXPECT_GE(ann.ann_index().level0_base(), ann.carve(1).end);
  EXPECT_EQ(ann.OwnerOf(ann.ann_index().level0_base()), -1);
}

TEST(ServeKnn, KnnTrafficSplitsBetweenCarveAndSharedIndex) {
  ServedGraph sg(TinyAnnGraph());
  QueryParams qp;
  qp.op_budget = 4000;
  workloads::TraceBuilder tb(1, &sg.space());
  ServeRequest req;
  req.tenant = 1;
  req.kind = static_cast<QueryKindId>(FindQueryKind("knn"));
  req.root = 33;
  const QueryFootprint fp = EmitQuery(sg, req, qp, tb, 0);
  EXPECT_GT(fp.ops, 0u);
  EXPECT_GT(fp.edges, 0u);
  EXPECT_GT(fp.vertices, 0u);
  const workloads::Trace tr = tb.Take();
  const graph::HnswIndex& ix = sg.ann_index();
  std::uint64_t carve_ops = 0, index_ops = 0, atomics = 0;
  for (const cpu::MicroOp& op : tr.streams[0]) {
    if (op.addr >= sg.pmr_base() && op.addr < sg.pmr_end()) {
      const bool in_index = (op.addr >= ix.level0_base() &&
                             op.addr < ix.level0_end()) ||
                            (op.addr >= ix.upper_base() &&
                             op.addr < ix.upper_end());
      if (in_index) {
        ++index_ops;
      } else {
        // Property traffic stays in the requesting tenant's carve.
        EXPECT_EQ(sg.OwnerOf(op.addr), 1) << "op at 0x" << std::hex << op.addr;
        ++carve_ops;
      }
    }
    if (op.type == cpu::OpType::kAtomic) ++atomics;
  }
  EXPECT_GT(carve_ops, 0u);   // visited claims, beam locks, bound swaps
  EXPECT_GT(index_ops, 0u);   // level-0 neighbor-list walks
  EXPECT_GT(atomics, 0u);
}

TEST(ServeKnn, KnnWithoutIndexThrows) {
  ServedGraph sg(TinyGraph());  // no ann
  ServeParams p = TinyParams();
  p.traffic.mix = {{"knn", 1.0}};
  EXPECT_THROW(RunServePoint(sg, p), SimError);
  EXPECT_THROW(RunServeGrid(sg, p, {{"X", p.cfg}}, {1e6}, 1, nullptr),
               SimError);
  // Weight zero is fine: the kind never fires.
  p.traffic.mix = {{"bfs", 1.0}, {"knn", 0.0}};
  const ServePoint pt = RunServePoint(sg, p);
  EXPECT_EQ(pt.served + pt.dropped, pt.offered);
}

TEST(ServeKnn, KnnGridIsJobsInvariant) {
  ServedGraph sg(TinyAnnGraph());
  ServeParams base = TinyParams();
  base.traffic.num_vertices = 1024;
  base.traffic.mix = {{"knn", 1.0}};
  const std::vector<std::pair<std::string, core::SimConfig>> configs = {
      {"Baseline", core::SimConfig::Scaled(core::Mode::kBaseline)},
      {"GraphPIM", core::SimConfig::Scaled(core::Mode::kGraphPim)}};
  const std::vector<double> qps = {2e5, 2e6};
  const ServeGridResult one = RunServeGrid(sg, base, configs, qps, 1);
  const ServeGridResult four = RunServeGrid(sg, base, configs, qps, 4);
  ASSERT_EQ(one.points.size(), four.points.size());
  for (std::size_t i = 0; i < one.points.size(); ++i) {
    EXPECT_EQ(Fingerprint(one.points[i]), Fingerprint(four.points[i])) << i;
    EXPECT_GT(one.points[i].served, 0u);
  }
  EXPECT_EQ(FormatSaturationTable(one.points),
            FormatSaturationTable(four.points));
  // The knn point queries genuinely hit the PIM path under GraphPIM.
  EXPECT_GT(one.points.back().raw.Get("pou.offloaded_atomics"), 0.0);
}

TEST(ServeSlo, QuantileSortedInterpolates) {
  EXPECT_EQ(QuantileSorted({}, 0.5), 0.0);
  EXPECT_EQ(QuantileSorted({42.0}, 0.0), 42.0);
  EXPECT_EQ(QuantileSorted({42.0}, 1.0), 42.0);
  const std::vector<double> v = {10.0, 20.0, 30.0, 40.0};
  EXPECT_DOUBLE_EQ(QuantileSorted(v, 0.0), 10.0);
  EXPECT_DOUBLE_EQ(QuantileSorted(v, 1.0), 40.0);
  EXPECT_DOUBLE_EQ(QuantileSorted(v, 0.5), 25.0);   // midpoint of 20, 30
  EXPECT_DOUBLE_EQ(QuantileSorted(v, 1.0 / 3.0), 20.0);
}

TEST(ServeSlo, KneeFindsLastKeepUpPoint) {
  auto mk = [](double qps, double p99_ns, double drop, std::uint64_t peak) {
    ServePoint p;
    p.config_name = "X";
    p.qps = qps;
    p.p99_ns = p99_ns;
    p.drop_rate = drop;
    p.queue_peak = peak;
    p.queue_limit = 8;
    return p;
  };
  // Light-load p99 is 10us; the default latency budget is 4x that. The
  // 2e5 point stays inside it; 4e5 blows the budget and drops.
  const std::vector<ServePoint> series = {mk(1e5, 10e3, 0.0, 1),
                                          mk(2e5, 25e3, 0.0, 3),
                                          mk(4e5, 90e3, 0.3, 8)};
  const KneeSummary k = FindKnee(series);
  EXPECT_EQ(k.config_name, "X");
  EXPECT_DOUBLE_EQ(k.knee_qps, 2e5);
  EXPECT_TRUE(k.saturated);
  // A full admission queue alone marks a point saturated, even without
  // drops or a latency blowout.
  const KneeSummary full =
      FindKnee({mk(1e5, 10e3, 0.0, 1), mk(2e5, 12e3, 0.0, 8)});
  EXPECT_DOUBLE_EQ(full.knee_qps, 1e5);
  EXPECT_TRUE(full.saturated);
  // A series that never saturates reports the top of the grid, unflagged.
  const KneeSummary open =
      FindKnee({mk(1e5, 10e3, 0.0, 1), mk(2e5, 12e3, 0.0, 2)});
  EXPECT_DOUBLE_EQ(open.knee_qps, 2e5);
  EXPECT_FALSE(open.saturated);
}

TEST(ServeSlo, ServePhasesCarryPerPointDeltas) {
  ServedGraph sg(TinyGraph());
  ServeParams p = TinyParams();
  p.traffic.qps = 1e6;
  ServePoint a = RunServePoint(sg, p);
  a.config_name = "GraphPIM";
  p.traffic.qps = 2e6;
  ServePoint b = RunServePoint(sg, p);
  b.config_name = "GraphPIM";
  const trace::PhaseLog log = BuildServePhases({a, b});
  ASSERT_EQ(log.phases().size(), 2u);
  EXPECT_EQ(log.phases()[0].name, "GraphPIM@qps=1000000");
  EXPECT_EQ(log.phases()[1].name, "GraphPIM@qps=2000000");
  // Each phase's serve.offered delta is that point's own offered count.
  for (const auto& [k, v] : log.phases()[0].deltas) {
    if (k == "serve.offered") {
      EXPECT_EQ(v, static_cast<double>(a.offered));
    }
  }
}

}  // namespace
}  // namespace graphpim::serve
