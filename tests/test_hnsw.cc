// HNSW index + workload tests (DESIGN.md §16): deterministic synthetic
// vectors, bit-reproducible index builds, brute-force recall, the frozen
// PMR layout, POU accounting of the visited-set/beam atomics, and the
// jobs/shards identity of an ann sweep.
#include <gtest/gtest.h>

#include <cstdint>
#include <set>
#include <string>
#include <vector>

#include "common/log.h"
#include "core/runner.h"
#include "exec/sweep.h"
#include "graph/hnsw_index.h"
#include "graph/region.h"
#include "graph/vectors.h"
#include "workloads/hnsw.h"
#include "workloads/workload.h"

namespace graphpim {
namespace {

graph::VectorSetParams TinyVectors(std::uint32_t count = 2048) {
  graph::VectorSetParams p;
  p.count = count;
  p.dim = 16;
  p.clusters = 16;
  p.spread = 0.15;
  p.seed = 42;
  return p;
}

TEST(VectorSet, DeterministicAtFixedSeed) {
  const graph::VectorSet a(TinyVectors(256));
  const graph::VectorSet b(TinyVectors(256));
  ASSERT_EQ(a.size(), 256u);
  for (std::uint32_t v = 0; v < a.size(); ++v) {
    for (int d = 0; d < a.dim(); ++d) {
      EXPECT_EQ(a.Vector(v)[d], b.Vector(v)[d]) << v << "," << d;
    }
  }
  EXPECT_EQ(a.Query(3), b.Query(3));
  EXPECT_EQ(a.QueryNear(17, 9), b.QueryNear(17, 9));
}

TEST(VectorSet, BruteForceKnnReturnsNearestFirst) {
  const graph::VectorSet vs(TinyVectors(512));
  const std::vector<float> q = vs.Query(0);
  const std::vector<std::uint32_t> got = graph::BruteForceKnn(vs, q.data(), 8);
  ASSERT_EQ(got.size(), 8u);
  // Distances are non-decreasing, and the head beats every other vector.
  float prev = graph::VectorSet::Dist2(q.data(), vs.Vector(got[0]), vs.dim());
  for (std::size_t i = 1; i < got.size(); ++i) {
    const float d =
        graph::VectorSet::Dist2(q.data(), vs.Vector(got[i]), vs.dim());
    EXPECT_GE(d, prev);
    prev = d;
  }
  const float best =
      graph::VectorSet::Dist2(q.data(), vs.Vector(got[0]), vs.dim());
  for (std::uint32_t v = 0; v < vs.size(); ++v) {
    EXPECT_GE(graph::VectorSet::Dist2(q.data(), vs.Vector(v), vs.dim()) +
                  1e-9f,
              best);
  }
}

TEST(HnswIndex, SameSeedBuildsIdenticalIndex) {
  const graph::VectorSet vs(TinyVectors(768));
  graph::HnswParams hp;
  hp.m = 8;
  hp.ef_construction = 48;
  const graph::HnswIndex a(vs, hp);
  const graph::HnswIndex b(vs, hp);
  EXPECT_EQ(a.entry_point(), b.entry_point());
  EXPECT_EQ(a.max_level(), b.max_level());
  for (std::uint32_t v = 0; v < vs.size(); ++v) {
    ASSERT_EQ(a.LevelOf(v), b.LevelOf(v)) << v;
    for (int l = 0; l <= a.LevelOf(v); ++l) {
      EXPECT_EQ(a.Neighbors(v, l), b.Neighbors(v, l)) << v << "@" << l;
    }
  }
}

TEST(HnswIndex, DegreeCapsAndLevelsHold) {
  const graph::VectorSet vs(TinyVectors(768));
  graph::HnswParams hp;
  hp.m = 6;
  const graph::HnswIndex ix(vs, hp);
  for (std::uint32_t v = 0; v < vs.size(); ++v) {
    ASSERT_GE(ix.LevelOf(v), 0);
    EXPECT_LE(ix.Neighbors(v, 0).size(),
              static_cast<std::size_t>(ix.max_m0()));
    for (int l = 1; l <= ix.LevelOf(v); ++l) {
      EXPECT_LE(ix.Neighbors(v, l).size(), static_cast<std::size_t>(hp.m));
    }
  }
  EXPECT_EQ(ix.LevelOf(ix.entry_point()), ix.max_level());
}

TEST(HnswIndex, RecallAtTenBeatsPointNineOnClusteredData) {
  // The ISSUE acceptance bar: recall@10 >= 0.9 against brute force on a
  // clustered dataset, with a production-ish beam (ef=64).
  const graph::VectorSet vs(TinyVectors(2048));
  graph::HnswParams hp;
  hp.m = 8;
  hp.ef_construction = 64;
  const graph::HnswIndex ix(vs, hp);
  const double recall = graph::SelfCheckRecall(vs, ix, 10, 64, 32);
  EXPECT_GE(recall, 0.9) << "recall@10 = " << recall;
}

TEST(HnswIndex, FrozenLayoutIsPageAlignedInThePmr) {
  const graph::VectorSet vs(TinyVectors(512));
  graph::HnswParams hp;
  hp.m = 8;
  graph::AddressSpace space;
  const graph::HnswIndex ix(vs, hp, &space);
  const std::uint64_t page = graph::AddressSpace::kPmrPageBytes;
  EXPECT_EQ(ix.level0_base() % page, 0u);
  EXPECT_EQ(ix.upper_base() % page, 0u);
  // Fixed stride: count word + 2m slots, 4 bytes each, per vertex.
  const Addr stride = 4 + static_cast<Addr>(ix.max_m0()) * 4;
  EXPECT_EQ(ix.level0_end() - ix.level0_base(),
            static_cast<Addr>(vs.size()) * stride);
  EXPECT_EQ(ix.Level0CountAddr(3), ix.level0_base() + 3 * stride);
  EXPECT_EQ(ix.Level0SlotAddr(3, 2), ix.level0_base() + 3 * stride + 4 + 8);
  // Both blocks live inside the PMR; the offset table does not.
  EXPECT_GE(ix.level0_base(), space.pmr_base());
  EXPECT_LE(ix.upper_end(), space.pmr_end());
  EXPECT_LT(ix.OffsetEntryAddr(0), space.pmr_base());
}

TEST(HnswIndex, SearchClaimsEachVertexOnce) {
  const graph::VectorSet vs(TinyVectors(512));
  graph::HnswParams hp;
  const graph::HnswIndex ix(vs, hp);
  const std::vector<float> q = vs.Query(1);
  std::set<std::uint32_t> claimed;
  std::uint64_t expands = 0;
  auto visit = [&](const graph::HnswIndex::SearchEvent& ev) {
    using Kind = graph::HnswIndex::SearchEvent::Kind;
    if (ev.kind == Kind::kClaim && ev.hit) {
      EXPECT_TRUE(claimed.insert(ev.v).second)
          << "vertex " << ev.v << " claimed twice";
    }
    if (ev.kind == Kind::kExpand) ++expands;
  };
  const std::vector<std::uint32_t> got = ix.Search(q.data(), 10, 32, visit);
  ASSERT_EQ(got.size(), 10u);
  EXPECT_GT(expands, 0u);
  // Every result was claimed during the search.
  for (std::uint32_t id : got) EXPECT_TRUE(claimed.count(id)) << id;
}

TEST(HnswWorkload, FactoryCreatesAndForwardsParams) {
  const auto plain = workloads::CreateWorkload("hnsw");
  ASSERT_NE(plain, nullptr);
  EXPECT_EQ(std::string(plain->info().name), "hnsw");
  workloads::WorkloadParams wp;
  wp.ann.dim = 24;
  wp.ann.queries = 4;
  const auto parm = workloads::CreateWorkload("hnsw", wp);
  const auto* h = dynamic_cast<const workloads::HnswWorkload*>(parm.get());
  ASSERT_NE(h, nullptr);
  EXPECT_EQ(h->ann().dim, 24);
  EXPECT_EQ(h->ann().queries, 4);
  EXPECT_THROW(workloads::CreateWorkload("hnswx"), SimError);
}

core::Experiment::Options HnswOpts() {
  core::Experiment::Options o;
  o.num_threads = 4;
  o.op_cap = 2'000'000;
  o.params.ann.queries = 8;
  return o;
}

TEST(HnswWorkload, VisitedAtomicsOffloadThroughThePou) {
  core::Experiment exp("ldbc", 2048, "hnsw", HnswOpts());
  core::SimConfig pim_cfg = core::SimConfig::Scaled(core::Mode::kGraphPim);
  pim_cfg.num_cores = 4;
  pim_cfg.trace_sample_rate = 1.0;  // span.atomic.* needs the recorder
  core::SimResults pim = exp.Run(pim_cfg);
  core::SimConfig base_cfg = core::SimConfig::Scaled(core::Mode::kBaseline);
  base_cfg.num_cores = 4;
  core::SimResults base = exp.Run(base_cfg);
  // The visited-set CASes and beam min-swaps are PMR atomics: all of them
  // offload under GraphPIM and none under the baseline.
  EXPECT_GT(pim.atomics, 0u);
  EXPECT_EQ(pim.offloaded_atomics, pim.atomics);
  EXPECT_EQ(base.offloaded_atomics, 0u);
  EXPECT_EQ(pim.raw.Get("pou.offloaded_atomics"),
            static_cast<double>(pim.atomics));
  EXPECT_GT(pim.raw.Get("span.atomic.count"), 0.0);
}

TEST(HnswWorkload, TraceAndRecallAreDeterministic) {
  core::Experiment a("ldbc", 2048, "hnsw", HnswOpts());
  core::Experiment b("ldbc", 2048, "hnsw", HnswOpts());
  const core::SimConfig cfg = core::SimConfig::Scaled(core::Mode::kGraphPim);
  const core::SimResults ra = a.Run(cfg);
  const core::SimResults rb = b.Run(cfg);
  EXPECT_EQ(ra.cycles, rb.cycles);
  EXPECT_EQ(ra.insts, rb.insts);
  EXPECT_EQ(ra.atomics, rb.atomics);
  const auto& wa = dynamic_cast<const workloads::HnswWorkload&>(a.workload());
  const auto& wb = dynamic_cast<const workloads::HnswWorkload&>(b.workload());
  EXPECT_EQ(wa.results(), wb.results());
  EXPECT_EQ(wa.recall(), wb.recall());
  // The search phase genuinely finds neighbors on the clustered set.
  EXPECT_GE(wa.recall(), 0.8) << "recall@" << wa.ann().k;
}

std::string RowFingerprint(const exec::SweepRow& r) {
  return r.workload + "|" + r.config_name + "|" +
         std::to_string(r.results.cycles) + "|" +
         std::to_string(r.results.insts) + "|" +
         std::to_string(r.results.atomics) + "|" +
         std::to_string(r.results.offloaded_atomics) + "|" +
         std::to_string(r.results.req_flits) + "|" +
         std::to_string(r.results.resp_flits);
}

constexpr const char* kAnnSpec =
    "workloads=hnsw;modes=baseline,graphpim;vertices=1024;threads=4;"
    "opcap=300000;seed=9;ann.dim=8;ann.queries=6;ann.ef_search=16;ann.k=4";

TEST(HnswSweep, AnnSweepIsJobsInvariant) {
  const exec::SweepGrid grid = exec::ParseGridSpec(kAnnSpec);
  exec::SweepRunner::Options one;
  one.jobs = 1;
  exec::SweepRunner::Options four;
  four.jobs = 4;
  const exec::SweepResultTable a = exec::SweepRunner(one).Run(grid);
  const exec::SweepResultTable b = exec::SweepRunner(four).Run(grid);
  ASSERT_EQ(a.rows.size(), b.rows.size());
  ASSERT_EQ(a.failed_rows, 0u);
  ASSERT_EQ(b.failed_rows, 0u);
  for (std::size_t i = 0; i < a.rows.size(); ++i) {
    EXPECT_EQ(RowFingerprint(a.rows[i]), RowFingerprint(b.rows[i])) << i;
    EXPECT_GT(a.rows[i].results.insts, 0u);
  }
}

TEST(HnswSweep, AnnSweepIsShardsInvariant) {
  const exec::SweepGrid one = exec::ParseGridSpec(
      std::string(kAnnSpec) + ";sim.shards=1");
  const exec::SweepGrid four = exec::ParseGridSpec(
      std::string(kAnnSpec) + ";sim.shards=4");
  const exec::SweepResultTable a = exec::SweepRunner().Run(one);
  const exec::SweepResultTable b = exec::SweepRunner().Run(four);
  ASSERT_EQ(a.rows.size(), b.rows.size());
  for (std::size_t i = 0; i < a.rows.size(); ++i) {
    EXPECT_EQ(RowFingerprint(a.rows[i]), RowFingerprint(b.rows[i])) << i;
  }
}

TEST(HnswSweep, NonUniformAnnConfigsThrow) {
  exec::SweepGrid grid = exec::ParseGridSpec(kAnnSpec);
  ASSERT_GE(grid.configs.size(), 2u);
  grid.configs[1].ann.dim = 32;  // diverges from config 0
  EXPECT_THROW(exec::SweepRunner().Run(grid), SimError);
}

}  // namespace
}  // namespace graphpim
