// Compressed sparse row graph: the framework's graph-structure component.
//
// The CSR arrays register simulated addresses in the structure segment;
// workloads use OffsetAddr()/NeighborAddr()/WeightAddr() when emitting the
// structure-component loads of their traversal loops.
#ifndef GRAPHPIM_GRAPH_CSR_H_
#define GRAPHPIM_GRAPH_CSR_H_

#include <cstdint>
#include <span>
#include <vector>

#include "common/types.h"
#include "graph/edge_list.h"
#include "graph/region.h"

namespace graphpim::graph {

class CsrGraph {
 public:
  // Builds the CSR from an edge list; neighbor lists are sorted by
  // destination. `dedup` removes parallel edges (keeping the first weight).
  CsrGraph(const EdgeList& el, AddressSpace& space, bool dedup = false);

  VertexId num_vertices() const { return num_vertices_; }
  EdgeId num_edges() const { return static_cast<EdgeId>(neighbors_.size()); }

  std::uint32_t OutDegree(VertexId v) const {
    return static_cast<std::uint32_t>(offsets_[v + 1] - offsets_[v]);
  }

  EdgeId OffsetOf(VertexId v) const { return offsets_[v]; }

  std::span<const VertexId> Neighbors(VertexId v) const {
    return {neighbors_.data() + offsets_[v],
            neighbors_.data() + offsets_[v + 1]};
  }

  std::span<const std::uint32_t> Weights(VertexId v) const {
    return {weights_.data() + offsets_[v], weights_.data() + offsets_[v + 1]};
  }

  // Simulated addresses of the structure arrays.
  Addr OffsetAddr(VertexId v) const { return offsets_addr_ + v * sizeof(EdgeId); }
  Addr NeighborAddr(EdgeId e) const { return neighbors_addr_ + e * sizeof(VertexId); }
  Addr WeightAddr(EdgeId e) const { return weights_addr_ + e * sizeof(std::uint32_t); }

  // Total simulated footprint of the structure arrays, in bytes.
  std::uint64_t StructureBytes() const;

 private:
  VertexId num_vertices_;
  std::vector<EdgeId> offsets_;         // size n+1
  std::vector<VertexId> neighbors_;     // size m
  std::vector<std::uint32_t> weights_;  // size m
  Addr offsets_addr_;
  Addr neighbors_addr_;
  Addr weights_addr_;
};

}  // namespace graphpim::graph

#endif  // GRAPHPIM_GRAPH_CSR_H_
