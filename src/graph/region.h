// Simulated address space and the PMR allocator (`pmr_malloc`).
//
// The simulator uses a segmented simulated address space; host data lives
// in ordinary std::vectors, while every framework allocation additionally
// receives a simulated address range used by the timing model.
//
// Three segments mirror the paper's data components (Section II-C):
//   meta      — task queues, local bookkeeping (cache friendly)
//   structure — CSR arrays (spatial locality)
//   property  — graph properties; this segment IS the PIM Memory Region.
//
// GraphPIM's framework-side change is exactly this: properties are
// allocated with PmrMalloc() (the paper's pmr_malloc), which places them in
// the uncacheable PMR that the POU recognizes (Section III-A/B).
#ifndef GRAPHPIM_GRAPH_REGION_H_
#define GRAPHPIM_GRAPH_REGION_H_

#include <cstdint>

#include "common/log.h"
#include "common/types.h"

namespace graphpim::graph {

// A bump allocator over one simulated segment.
class Region {
 public:
  Region(Addr base, std::uint64_t size_bytes) : base_(base), end_(base + size_bytes), next_(base) {}

  // Allocates `bytes` with `align` alignment; returns the simulated address.
  Addr Allocate(std::uint64_t bytes, std::uint64_t align = 64) {
    Addr a = (next_ + align - 1) & ~static_cast<Addr>(align - 1);
    GP_CHECK(a + bytes <= end_, "simulated region exhausted");
    next_ = a + bytes;
    return a;
  }

  Addr base() const { return base_; }
  Addr end() const { return end_; }
  Addr used_end() const { return next_; }
  std::uint64_t used_bytes() const { return next_ - base_; }

  void Reset() { next_ = base_; }

 private:
  Addr base_;
  Addr end_;
  Addr next_;
};

// The full simulated address space with its three segments.
//
// The PMR is carved at page granularity: hmc::CubeMap interleaves
// kPmrPageBytes-sized PMR pages round-robin across the cubes of an
// HmcNetwork (DESIGN.md §11), so the PMR base/size must stay page-aligned.
// kPmrPageBytes is the default for HmcParams::cube_page_bytes; a config
// may choose a different (power-of-two) interleave granularity, which the
// cube map applies to the same page arithmetic below.
class AddressSpace {
 public:
  static constexpr Addr kMetaBase = 0x0'1000'0000ULL;
  static constexpr Addr kStructureBase = 0x1'0000'0000ULL;
  static constexpr Addr kPmrBase = 0x4'0000'0000ULL;
  static constexpr std::uint64_t kSegmentSize = 2ULL * kGiB;
  static constexpr std::uint64_t kPmrPageBytes = 4096;

  static_assert(kPmrBase % kPmrPageBytes == 0,
                "PMR base must be page-aligned for cube interleaving");
  static_assert(kSegmentSize % kPmrPageBytes == 0,
                "PMR size must be a whole number of interleave pages");

  // PMR-relative page index of `a` (valid for PMR addresses only): the
  // unit the cube map stripes across the network.
  static constexpr std::uint64_t PmrPageOf(Addr a) {
    return (a - kPmrBase) / kPmrPageBytes;
  }

  // Byte offset of `a` within its PMR page.
  static constexpr std::uint64_t PmrPageOffset(Addr a) {
    return (a - kPmrBase) % kPmrPageBytes;
  }

  AddressSpace()
      : meta_(kMetaBase, kSegmentSize),
        structure_(kStructureBase, kSegmentSize),
        pmr_(kPmrBase, kSegmentSize) {}

  Region& meta() { return meta_; }
  Region& structure() { return structure_; }
  Region& pmr() { return pmr_; }

  // The paper's pmr_malloc: allocates graph-property storage inside the PMR.
  Addr PmrMalloc(std::uint64_t bytes, std::uint64_t align = 64) {
    return pmr_.Allocate(bytes, align);
  }

  // PMR bounds registered with each core's POU.
  Addr pmr_base() const { return pmr_.base(); }
  Addr pmr_end() const { return pmr_.end(); }

  // Classifies a simulated address into its data component.
  DataComponent ComponentOf(Addr a) const {
    if (a >= kPmrBase) return DataComponent::kProperty;
    if (a >= kStructureBase) return DataComponent::kStructure;
    return DataComponent::kMeta;
  }

 private:
  Region meta_;
  Region structure_;
  Region pmr_;
};

}  // namespace graphpim::graph

#endif  // GRAPHPIM_GRAPH_REGION_H_
