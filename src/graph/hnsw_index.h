// Deterministic HNSW index with a PMR-resident adjacency layout
// (DESIGN.md §16).
//
// Functionally this is the standard hierarchical navigable-small-world
// graph: vertices are assigned exponentially-distributed levels, inserted
// one by one with an ef_construction beam search per layer, and linked
// with the distance-diversity neighbor-selection heuristic (keep a
// candidate only if it is closer to the query than to every neighbor
// already kept). Every random draw is value-derived — the level of vertex
// v is a pure hash of (seed, v) — and all heap orderings tie-break on the
// vertex id, so the same (VectorSet, HnswParams) always builds the same
// index, independent of platform or thread count.
//
// The simulated layout mirrors the flat storage of production HNSW cores:
// one contiguous level-0 block of fixed-stride neighbor lists
// ([count, n0, n1, ...] per vertex, capacity 2*m), page-aligned in the PMR
// so the CubeMap stripes it across every cube of the machine, plus one
// packed upper-level block reached through a structure-segment offset
// table. Search() reports each memory touch through an optional visitor,
// which is how the hnsw workload and the serve engine's knn query kind
// turn a search into a micro-op stream without duplicating the algorithm.
#ifndef GRAPHPIM_GRAPH_HNSW_INDEX_H_
#define GRAPHPIM_GRAPH_HNSW_INDEX_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "common/types.h"
#include "graph/region.h"
#include "graph/vectors.h"

namespace graphpim::graph {

struct HnswParams {
  int m = 8;                // degree target; level-0 lists hold up to 2*m
  int ef_construction = 64; // build-time beam width
  std::uint64_t seed = 0x484e5357ULL;  // level-assignment stream ("HNSW")
};

class HnswIndex {
 public:
  // Builds the index over every element of `vs` (insertion in id order).
  // When `space` is non-null the adjacency blocks are allocated from its
  // PMR (level-0 + upper) and structure (offset table) segments so
  // searches can report simulated addresses; with a null space all
  // addresses are 0 and the index is functional-only.
  HnswIndex(const VectorSet& vs, const HnswParams& p,
            AddressSpace* space = nullptr);

  const HnswParams& params() const { return p_; }
  int max_level() const { return max_level_; }
  std::uint32_t entry_point() const { return entry_; }
  int max_m0() const { return 2 * p_.m; }
  int LevelOf(std::uint32_t v) const { return levels_[v]; }
  const std::vector<std::uint32_t>& Neighbors(std::uint32_t v,
                                              int level) const {
    return links_[v][static_cast<std::size_t>(level)];
  }

  // --- simulated layout (0 / empty when built without a space) ----------
  // Level-0 block: n fixed-stride lists, [count, slot0 .. slot(2m-1)],
  // 4 bytes per word, page-aligned so PMR pages stripe across cubes.
  Addr level0_base() const { return level0_base_; }
  Addr level0_end() const { return level0_end_; }
  Addr Level0CountAddr(std::uint32_t v) const {
    return level0_base_ + static_cast<Addr>(v) * Stride0Bytes();
  }
  Addr Level0SlotAddr(std::uint32_t v, int slot) const {
    return Level0CountAddr(v) + 4 + static_cast<Addr>(slot) * 4;
  }
  // Upper-level block: each vertex's level>=1 lists packed contiguously.
  Addr upper_base() const { return upper_base_; }
  Addr upper_end() const { return upper_end_; }
  Addr UpperSlotAddr(std::uint32_t v, int level, int slot) const;
  // Structure-segment lookup row a search loads to find v's lists.
  Addr OffsetEntryAddr(std::uint32_t v) const {
    return offsets_base_ + static_cast<Addr>(v) * 8;
  }

  // --- search -----------------------------------------------------------
  // One memory-touching step of a search, reported in algorithm order.
  struct SearchEvent {
    enum class Kind : std::uint8_t {
      kExpand,    // popped candidate u; loaded its list header at `addr`
      kNeighbor,  // examined neighbor v via list slot `addr` (+ distance)
      kClaim,     // visited-set check/claim of v; hit = first visit
      kImprove,   // candidate-set update for v; hit = entered the beam
    };
    Kind kind;
    int level = 0;
    std::uint32_t u = 0;  // expanded vertex (kExpand/kNeighbor)
    std::uint32_t v = 0;  // touched vertex (kNeighbor/kClaim/kImprove)
    Addr addr = 0;        // index-block address (kExpand/kNeighbor only)
    bool hit = false;
  };
  using SearchVisitor = std::function<void(const SearchEvent&)>;

  // k approximate nearest neighbors of `q`, nearest first. `ef` (clamped
  // up to k) is the level-0 beam width. Thread-safe: all search state is
  // local, the index is read-only after construction.
  std::vector<std::uint32_t> Search(const float* q, int k, int ef,
                                    const SearchVisitor& visit = {}) const;

 private:
  Addr Stride0Bytes() const {
    return 4 + static_cast<Addr>(max_m0()) * 4;  // count word + slots
  }
  int DrawLevel(std::uint32_t v) const;
  float Dist(const float* q, std::uint32_t v) const;
  // Beam search within one layer (build path; no visitor, no addresses).
  std::vector<std::pair<float, std::uint32_t>> SearchLayer(
      const float* q, std::uint32_t ep, int ef, int level) const;
  // Distance-diversity selection over (dist, id) candidates, best first.
  std::vector<std::uint32_t> SelectNeighbors(
      const float* q, std::vector<std::pair<float, std::uint32_t>> cands,
      int m) const;
  void Insert(std::uint32_t v);
  void Freeze(AddressSpace* space);

  const VectorSet& vs_;
  HnswParams p_;
  std::vector<int> levels_;
  // links_[v][level] = neighbor ids (level 0..LevelOf(v)).
  std::vector<std::vector<std::vector<std::uint32_t>>> links_;
  std::uint32_t entry_ = 0;
  int max_level_ = -1;

  Addr level0_base_ = 0, level0_end_ = 0;
  Addr upper_base_ = 0, upper_end_ = 0;
  Addr offsets_base_ = 0;
  // Slot offset of v's level-l (l>=1) list inside the upper block.
  std::vector<std::vector<std::uint64_t>> upper_off_;
};

// Mean recall@k of the index against brute force over `probes`
// value-derived query vectors (VectorSet::Query(qseed) for qseed in
// [0, probes)). The deterministic quality self-check reported by tools.
double SelfCheckRecall(const VectorSet& vs, const HnswIndex& index, int k,
                       int ef, int probes);

}  // namespace graphpim::graph

#endif  // GRAPHPIM_GRAPH_HNSW_INDEX_H_
