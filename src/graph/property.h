// Property arrays: host-side values paired with simulated addresses.
//
// A PropertyArray<T> is the framework's per-vertex property storage. Its
// simulated backing is obtained from a Region — pass the address space's
// PMR for offloadable properties (the normal case) or the meta region for
// thread-local accumulators (as Betweenness Centrality uses).
#ifndef GRAPHPIM_GRAPH_PROPERTY_H_
#define GRAPHPIM_GRAPH_PROPERTY_H_

#include <cstdint>
#include <vector>

#include "common/types.h"
#include "graph/region.h"

namespace graphpim::graph {

// Per-vertex properties are fields of larger vertex-property objects in
// framework layouts (GraphBIG's vertex objects), so consecutive vertices do
// NOT share cache lines — the paper's "no spatial locality in the property
// component" premise. The default simulated stride of one cache line per
// vertex models that layout; pass stride == sizeof(T) for packed arrays.
inline constexpr std::uint32_t kVertexPropertyStride = 64;

template <typename T>
class PropertyArray {
 public:
  // Allocates `n` elements from `region`, value-initialized, placing
  // element i at base + i * stride in the simulated address space.
  PropertyArray(Region& region, std::size_t n, const T& init = T(),
                std::uint32_t stride = kVertexPropertyStride)
      : values_(n, init),
        stride_(stride < sizeof(T) ? static_cast<std::uint32_t>(sizeof(T)) : stride),
        base_(region.Allocate(n * stride_, 64)) {}

  T& operator[](std::size_t i) { return values_[i]; }
  const T& operator[](std::size_t i) const { return values_[i]; }

  std::size_t size() const { return values_.size(); }

  // Simulated address of element `i`.
  Addr AddrOf(std::size_t i) const { return base_ + i * stride_; }

  Addr base() const { return base_; }
  std::uint32_t stride() const { return stride_; }

  void Fill(const T& v) { values_.assign(values_.size(), v); }

 private:
  std::vector<T> values_;
  std::uint32_t stride_;
  Addr base_;
};

}  // namespace graphpim::graph

#endif  // GRAPHPIM_GRAPH_PROPERTY_H_
