#include "graph/edge_list.h"

#include <cstdio>

#include "common/log.h"

namespace graphpim::graph {

bool SaveEdgeList(const EdgeList& el, const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  std::fprintf(f, "# vertices %u edges %zu\n", el.num_vertices, el.edges.size());
  for (const Edge& e : el.edges) {
    std::fprintf(f, "%u %u %u\n", e.src, e.dst, e.weight);
  }
  std::fclose(f);
  return true;
}

bool LoadEdgeList(const std::string& path, EdgeList* out) {
  GP_CHECK(out != nullptr);
  std::FILE* f = std::fopen(path.c_str(), "r");
  if (f == nullptr) return false;
  out->edges.clear();
  out->num_vertices = 0;
  char line[256];
  while (std::fgets(line, sizeof(line), f) != nullptr) {
    if (line[0] == '#' || line[0] == '\n') continue;
    unsigned src = 0;
    unsigned dst = 0;
    unsigned w = 1;
    int n = std::sscanf(line, "%u %u %u", &src, &dst, &w);
    if (n < 2) {
      std::fclose(f);
      GP_FATAL("malformed edge-list line in ", path, ": ", line);
    }
    out->edges.push_back(Edge{src, dst, n >= 3 ? w : 1});
    VertexId hi = static_cast<VertexId>(std::max(src, dst)) + 1;
    if (hi > out->num_vertices) out->num_vertices = hi;
  }
  std::fclose(f);
  return true;
}

}  // namespace graphpim::graph
