#include "graph/vectors.h"

#include <algorithm>

#include "common/log.h"
#include "common/random.h"

namespace graphpim::graph {

namespace {

// Stream tags decorrelate the per-purpose draw streams while keeping every
// draw a pure function of (seed, tag, counter) — the traffic generator's
// discipline.
constexpr std::uint64_t kCentroidStream = 0x76656374'43'4e54ULL;  // "vect CNT"
constexpr std::uint64_t kMemberStream = 0x76656374'4d'4252ULL;    // "vect MBR"
constexpr std::uint64_t kNoiseStream = 0x76656374'4e'5345ULL;     // "vect NSE"
constexpr std::uint64_t kQueryStream = 0x76656374'51'5259ULL;     // "vect QRY"

std::uint64_t DrawU64(std::uint64_t seed, std::uint64_t stream_tag,
                      std::uint64_t index) {
  const std::uint64_t stream_seed = SplitMix64(seed ^ stream_tag).Next();
  return SplitMix64(stream_seed ^ (index * 0x9e3779b97f4a7c15ULL)).Next();
}

// Uniform float in [-1, 1).
float SignedDraw(std::uint64_t seed, std::uint64_t stream_tag,
                 std::uint64_t index) {
  const double u =
      static_cast<double>(DrawU64(seed, stream_tag, index) >> 11) * 0x1.0p-53;
  return static_cast<float>(2.0 * u - 1.0);
}

}  // namespace

VectorSet::VectorSet(const VectorSetParams& p) : p_(p) {
  GP_CHECK(p.count > 0, "vector set needs at least one element");
  GP_CHECK(p.dim >= 2, "vector set needs dim >= 2");
  GP_CHECK(p.clusters >= 1, "vector set needs at least one cluster");
  data_.resize(static_cast<std::size_t>(p.count) * p.dim);
  for (std::uint32_t v = 0; v < p.count; ++v) {
    const std::uint32_t c = static_cast<std::uint32_t>(
        DrawU64(p.seed, kMemberStream, v) %
        static_cast<std::uint64_t>(p.clusters));
    float* out = data_.data() + static_cast<std::size_t>(v) * p.dim;
    for (int d = 0; d < p.dim; ++d) {
      const float centroid = SignedDraw(
          p.seed, kCentroidStream,
          static_cast<std::uint64_t>(c) * p.dim + static_cast<std::uint64_t>(d));
      const float noise = SignedDraw(
          p.seed, kNoiseStream,
          static_cast<std::uint64_t>(v) * p.dim + static_cast<std::uint64_t>(d));
      out[d] = centroid + static_cast<float>(p.spread) * noise;
    }
  }
}

std::vector<float> VectorSet::QueryNear(std::uint32_t id,
                                        std::uint64_t salt) const {
  std::vector<float> q(Vector(id), Vector(id) + p_.dim);
  const std::uint64_t base =
      SplitMix64(salt ^ (static_cast<std::uint64_t>(id) + 1)).Next();
  for (int d = 0; d < p_.dim; ++d) {
    q[static_cast<std::size_t>(d)] +=
        0.5f * static_cast<float>(p_.spread) *
        SignedDraw(p_.seed, kQueryStream, base + static_cast<std::uint64_t>(d));
  }
  return q;
}

std::vector<float> VectorSet::Query(std::uint64_t qseed) const {
  const std::uint32_t c = static_cast<std::uint32_t>(
      DrawU64(p_.seed, kQueryStream, qseed) %
      static_cast<std::uint64_t>(p_.clusters));
  std::vector<float> q(static_cast<std::size_t>(p_.dim));
  const std::uint64_t base = SplitMix64(qseed ^ 0x616e6e51ULL).Next();
  for (int d = 0; d < p_.dim; ++d) {
    const float centroid = SignedDraw(
        p_.seed, kCentroidStream,
        static_cast<std::uint64_t>(c) * p_.dim + static_cast<std::uint64_t>(d));
    q[static_cast<std::size_t>(d)] =
        centroid + static_cast<float>(p_.spread) *
                       SignedDraw(p_.seed, kQueryStream,
                                  base + static_cast<std::uint64_t>(d));
  }
  return q;
}

float VectorSet::Dist2(const float* a, const float* b, int dim) {
  float s = 0.0f;
  for (int d = 0; d < dim; ++d) {
    const float diff = a[d] - b[d];
    s += diff * diff;
  }
  return s;
}

std::vector<std::uint32_t> BruteForceKnn(const VectorSet& vs, const float* q,
                                         int k) {
  GP_CHECK(k >= 1, "brute-force knn needs k >= 1");
  std::vector<std::pair<float, std::uint32_t>> all;
  all.reserve(vs.size());
  for (std::uint32_t v = 0; v < vs.size(); ++v) {
    all.emplace_back(VectorSet::Dist2(q, vs.Vector(v), vs.dim()), v);
  }
  const std::size_t kk =
      std::min<std::size_t>(static_cast<std::size_t>(k), all.size());
  std::partial_sort(all.begin(), all.begin() + static_cast<std::ptrdiff_t>(kk),
                    all.end());
  std::vector<std::uint32_t> out;
  out.reserve(kk);
  for (std::size_t i = 0; i < kk; ++i) out.push_back(all[i].second);
  return out;
}

}  // namespace graphpim::graph
