// Edge lists: the exchange format between generators, I/O, and CSR build.
#ifndef GRAPHPIM_GRAPH_EDGE_LIST_H_
#define GRAPHPIM_GRAPH_EDGE_LIST_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/types.h"

namespace graphpim::graph {

struct Edge {
  VertexId src = 0;
  VertexId dst = 0;
  std::uint32_t weight = 1;

  friend bool operator==(const Edge& a, const Edge& b) {
    return a.src == b.src && a.dst == b.dst && a.weight == b.weight;
  }
};

struct EdgeList {
  VertexId num_vertices = 0;
  std::vector<Edge> edges;
};

// Plain-text edge-list I/O ("src dst [weight]" per line, '#' comments).
// Returns false on I/O failure (malformed content is fatal).
bool SaveEdgeList(const EdgeList& el, const std::string& path);
bool LoadEdgeList(const std::string& path, EdgeList* out);

}  // namespace graphpim::graph

#endif  // GRAPHPIM_GRAPH_EDGE_LIST_H_
