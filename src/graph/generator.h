// Synthetic graph generators.
//
// The paper evaluates on the LDBC social-network graph (Table VI) plus
// Bitcoin and Twitter graphs (Table VII). Those datasets are substituted by
// parameterized synthetic generators (see DESIGN.md): an RMAT generator
// whose skewed degree distribution produces the irregular property-access
// behavior the paper depends on, with named profiles matching the published
// vertex/edge ratios.
#ifndef GRAPHPIM_GRAPH_GENERATOR_H_
#define GRAPHPIM_GRAPH_GENERATOR_H_

#include <cstdint>
#include <string>

#include "graph/edge_list.h"

namespace graphpim::graph {

struct RmatParams {
  VertexId num_vertices = 16 * 1024;  // rounded up to a power of two
  double avg_degree = 16.0;
  double a = 0.57;  // RMAT quadrant probabilities
  double b = 0.19;
  double c = 0.19;
  std::uint64_t seed = 1;
  std::uint32_t max_weight = 16;  // weights uniform in [1, max_weight]

  // Bounds per-vertex in/out degree to factor*avg_degree (0 = unbounded).
  // Real social datasets (LDBC SNB) have bounded degree; unbounded RMAT
  // hubs are a generator artifact that concentrates atomic traffic on a
  // few DRAM banks when graphs are scaled down.
  double max_degree_factor = 16.0;
};

// Generates a directed RMAT graph (self-loops removed, duplicates kept —
// real social graphs have parallel interactions; CSR build can dedup).
EdgeList GenerateRmat(const RmatParams& params);

// Uniform Erdos-Renyi-style random graph (used by tests as a contrast).
EdgeList GenerateUniform(VertexId num_vertices, double avg_degree, std::uint64_t seed);

// Named dataset profiles.
//
//   ldbc      — LDBC social graph family (Table VI): avg degree ~28.8
//   bitcoin   — Bitcoin transaction graph (Table VII): 71.7M vertices /
//               181.8M edges in the paper => avg degree ~2.5
//   twitter   — Twitter follower graph (Table VII): 11M vertices / 85M
//               edges => avg degree ~7.7
//
// `num_vertices` scales the dataset down (the shape is preserved).
EdgeList GenerateProfile(const std::string& profile, VertexId num_vertices,
                         std::uint64_t seed);

// Table VI name -> vertex count ("ldbc-1k" ... "ldbc-1m").
VertexId LdbcSizeFromName(const std::string& name);

}  // namespace graphpim::graph

#endif  // GRAPHPIM_GRAPH_GENERATOR_H_
