#include "graph/csr.h"

#include <algorithm>
#include <numeric>

#include "common/log.h"

namespace graphpim::graph {

CsrGraph::CsrGraph(const EdgeList& el, AddressSpace& space, bool dedup)
    : num_vertices_(el.num_vertices) {
  GP_CHECK(num_vertices_ > 0, "empty graph");

  // Counting sort by source.
  offsets_.assign(static_cast<std::size_t>(num_vertices_) + 1, 0);
  for (const Edge& e : el.edges) {
    GP_CHECK(e.src < num_vertices_ && e.dst < num_vertices_, "edge endpoint out of range");
    ++offsets_[e.src + 1];
  }
  std::partial_sum(offsets_.begin(), offsets_.end(), offsets_.begin());

  neighbors_.resize(el.edges.size());
  weights_.resize(el.edges.size());
  std::vector<EdgeId> cursor(offsets_.begin(), offsets_.end() - 1);
  for (const Edge& e : el.edges) {
    EdgeId slot = cursor[e.src]++;
    neighbors_[slot] = e.dst;
    weights_[slot] = e.weight;
  }

  // Sort each adjacency list by destination (weights follow).
  for (VertexId v = 0; v < num_vertices_; ++v) {
    EdgeId b = offsets_[v];
    EdgeId e = offsets_[v + 1];
    std::vector<std::pair<VertexId, std::uint32_t>> tmp;
    tmp.reserve(e - b);
    for (EdgeId i = b; i < e; ++i) tmp.emplace_back(neighbors_[i], weights_[i]);
    std::sort(tmp.begin(), tmp.end());
    for (EdgeId i = b; i < e; ++i) {
      neighbors_[i] = tmp[i - b].first;
      weights_[i] = tmp[i - b].second;
    }
  }

  if (dedup) {
    std::vector<EdgeId> new_offsets(offsets_.size(), 0);
    std::vector<VertexId> new_neighbors;
    std::vector<std::uint32_t> new_weights;
    new_neighbors.reserve(neighbors_.size());
    new_weights.reserve(weights_.size());
    for (VertexId v = 0; v < num_vertices_; ++v) {
      EdgeId b = offsets_[v];
      EdgeId e = offsets_[v + 1];
      for (EdgeId i = b; i < e; ++i) {
        if (i > b && neighbors_[i] == neighbors_[i - 1]) continue;
        new_neighbors.push_back(neighbors_[i]);
        new_weights.push_back(weights_[i]);
      }
      new_offsets[v + 1] = static_cast<EdgeId>(new_neighbors.size());
    }
    offsets_ = std::move(new_offsets);
    neighbors_ = std::move(new_neighbors);
    weights_ = std::move(new_weights);
  }

  offsets_addr_ = space.structure().Allocate(offsets_.size() * sizeof(EdgeId));
  neighbors_addr_ = space.structure().Allocate(neighbors_.size() * sizeof(VertexId));
  weights_addr_ = space.structure().Allocate(weights_.size() * sizeof(std::uint32_t));
}

std::uint64_t CsrGraph::StructureBytes() const {
  return offsets_.size() * sizeof(EdgeId) + neighbors_.size() * sizeof(VertexId) +
         weights_.size() * sizeof(std::uint32_t);
}

}  // namespace graphpim::graph
