#include "graph/csr.h"

#include <algorithm>
#include <numeric>

#include "common/log.h"

namespace graphpim::graph {

CsrGraph::CsrGraph(const EdgeList& el, AddressSpace& space, bool dedup)
    : num_vertices_(el.num_vertices) {
  GP_CHECK(num_vertices_ > 0, "empty graph");

  // Counting sort by source.
  offsets_.assign(static_cast<std::size_t>(num_vertices_) + 1, 0);
  for (const Edge& e : el.edges) {
    GP_CHECK(e.src < num_vertices_ && e.dst < num_vertices_, "edge endpoint out of range");
    ++offsets_[e.src + 1];
  }
  std::partial_sum(offsets_.begin(), offsets_.end(), offsets_.begin());

  // Scatter each edge as one packed (dst << 32 | weight) word: with both
  // halves 32-bit, unsigned 64-bit comparison is exactly the
  // (dst, weight) lexicographic order the old pair sort used, so sorting
  // the packed words yields the identical adjacency sequence while moving
  // half the bytes and skipping the per-vertex scratch copies.
  std::vector<std::uint64_t> packed(el.edges.size());
  std::vector<EdgeId> cursor(offsets_.begin(), offsets_.end() - 1);
  for (const Edge& e : el.edges) {
    packed[cursor[e.src]++] =
        (static_cast<std::uint64_t>(e.dst) << 32) | e.weight;
  }
  for (VertexId v = 0; v < num_vertices_; ++v) {
    if (offsets_[v + 1] - offsets_[v] > 1) {
      std::sort(packed.begin() + offsets_[v], packed.begin() + offsets_[v + 1]);
    }
  }

  // Unpack (deduplicating by destination when asked) straight into the
  // final arrays through raw pointers: the arrays are sized up front so the
  // hot loop carries no capacity checks.
  neighbors_.resize(packed.size());
  weights_.resize(packed.size());
  VertexId* np = neighbors_.data();
  std::uint32_t* wp = weights_.data();
  std::size_t n = 0;
  if (dedup) {
    std::vector<EdgeId> new_offsets(offsets_.size(), 0);
    for (VertexId v = 0; v < num_vertices_; ++v) {
      EdgeId b = offsets_[v];
      EdgeId e = offsets_[v + 1];
      for (EdgeId i = b; i < e; ++i) {
        // Within a sorted range, duplicate destinations are adjacent in the
        // packed words themselves.
        if (i > b && (packed[i] >> 32) == (packed[i - 1] >> 32)) continue;
        np[n] = static_cast<VertexId>(packed[i] >> 32);
        wp[n] = static_cast<std::uint32_t>(packed[i]);
        ++n;
      }
      new_offsets[v + 1] = static_cast<EdgeId>(n);
    }
    offsets_ = std::move(new_offsets);
    neighbors_.resize(n);
    weights_.resize(n);
  } else {
    for (std::uint64_t p : packed) {
      np[n] = static_cast<VertexId>(p >> 32);
      wp[n] = static_cast<std::uint32_t>(p);
      ++n;
    }
  }

  offsets_addr_ = space.structure().Allocate(offsets_.size() * sizeof(EdgeId));
  neighbors_addr_ = space.structure().Allocate(neighbors_.size() * sizeof(VertexId));
  weights_addr_ = space.structure().Allocate(weights_.size() * sizeof(std::uint32_t));
}

std::uint64_t CsrGraph::StructureBytes() const {
  return offsets_.size() * sizeof(EdgeId) + neighbors_.size() * sizeof(VertexId) +
         weights_.size() * sizeof(std::uint32_t);
}

}  // namespace graphpim::graph
