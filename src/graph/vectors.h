// Deterministic synthetic vector datasets for the ANN workload
// (DESIGN.md §16).
//
// A VectorSet attaches one dense float vector to every vertex of the CSR
// vertex set. Generation is clustered (a Gaussian-ish blob per cluster)
// so that approximate nearest-neighbor recall is a meaningful quality
// metric, and purely value-derived: every component is a counter-based
// SplitMix64 hash of (seed, stream tag, index), the same discipline the
// traffic generator uses, so the dataset is bit-identical across runs,
// platforms, and --jobs counts.
#ifndef GRAPHPIM_GRAPH_VECTORS_H_
#define GRAPHPIM_GRAPH_VECTORS_H_

#include <cstdint>
#include <vector>

#include "common/types.h"

namespace graphpim::graph {

struct VectorSetParams {
  std::uint32_t count = 0;   // one vector per vertex
  int dim = 16;
  int clusters = 16;         // blob count; >= 1
  double spread = 0.15;      // intra-cluster noise half-width
  std::uint64_t seed = 1;
};

class VectorSet {
 public:
  explicit VectorSet(const VectorSetParams& p);

  std::uint32_t size() const { return p_.count; }
  int dim() const { return p_.dim; }
  const VectorSetParams& params() const { return p_; }

  // Vector of element `id` (contiguous, dim() floats).
  const float* Vector(std::uint32_t id) const {
    return data_.data() + static_cast<std::size_t>(id) * p_.dim;
  }

  // A query vector near element `id`: the element's vector plus a small
  // value-derived perturbation keyed by `salt`. Pure function of
  // (params, id, salt) — the serve engine derives knn query vectors from
  // the request root this way.
  std::vector<float> QueryNear(std::uint32_t id, std::uint64_t salt) const;

  // A free-standing query vector drawn from a hashed cluster (used by the
  // batch workload and self-check probes). Pure function of (params, qseed).
  std::vector<float> Query(std::uint64_t qseed) const;

  // Squared Euclidean distance between two dim-length float arrays.
  static float Dist2(const float* a, const float* b, int dim);

 private:
  VectorSetParams p_;
  std::vector<float> data_;  // count * dim, row-major
};

// Exact k-nearest-neighbors of `q` by squared distance (ties break on the
// smaller id, so the result is fully ordered and deterministic). Reference
// answer for recall measurements; O(n * dim).
std::vector<std::uint32_t> BruteForceKnn(const VectorSet& vs, const float* q,
                                         int k);

}  // namespace graphpim::graph

#endif  // GRAPHPIM_GRAPH_VECTORS_H_
