#include "graph/hnsw_index.h"

#include <algorithm>
#include <cmath>
#include <queue>

#include "common/log.h"
#include "common/random.h"

namespace graphpim::graph {

namespace {

constexpr std::uint64_t kLevelStream = 0x686e7377'4c'564cULL;  // "hnsw LVL"

// Hierarchy height stays O(log n) in expectation; the cap only guards the
// astronomically unlikely tail draw.
constexpr int kMaxLevel = 24;

using Cand = std::pair<float, std::uint32_t>;  // (distance, id); id breaks ties

}  // namespace

HnswIndex::HnswIndex(const VectorSet& vs, const HnswParams& p,
                     AddressSpace* space)
    : vs_(vs), p_(p) {
  GP_CHECK(p.m >= 2, "hnsw needs m >= 2");
  GP_CHECK(p.ef_construction >= 1, "hnsw needs ef_construction >= 1");
  const std::uint32_t n = vs.size();
  levels_.resize(n);
  links_.resize(n);
  for (std::uint32_t v = 0; v < n; ++v) levels_[v] = DrawLevel(v);
  for (std::uint32_t v = 0; v < n; ++v) Insert(v);
  if (space != nullptr) Freeze(space);
}

int HnswIndex::DrawLevel(std::uint32_t v) const {
  // Exponential level assignment, value-derived: level(v) is a pure hash
  // of (seed, v), so insertion order and platform cannot change the
  // hierarchy. mult = 1/ln(m) is the standard normalization.
  const std::uint64_t stream_seed = SplitMix64(p_.seed ^ kLevelStream).Next();
  const std::uint64_t h =
      SplitMix64(stream_seed ^ (static_cast<std::uint64_t>(v) *
                                0x9e3779b97f4a7c15ULL))
          .Next();
  const double u = static_cast<double>(h >> 11) * 0x1.0p-53;  // [0, 1)
  const double mult = 1.0 / std::log(static_cast<double>(p_.m));
  const int level = static_cast<int>(-std::log(1.0 - u) * mult);
  return level < kMaxLevel ? level : kMaxLevel;
}

float HnswIndex::Dist(const float* q, std::uint32_t v) const {
  return VectorSet::Dist2(q, vs_.Vector(v), vs_.dim());
}

std::vector<Cand> HnswIndex::SearchLayer(const float* q, std::uint32_t ep,
                                         int ef, int level) const {
  std::vector<char> visited(vs_.size(), 0);
  std::priority_queue<Cand, std::vector<Cand>, std::greater<Cand>> cands;
  std::priority_queue<Cand> best;  // worst of the beam on top
  const float dep = Dist(q, ep);
  visited[ep] = 1;
  cands.push({dep, ep});
  best.push({dep, ep});
  while (!cands.empty()) {
    const Cand c = cands.top();
    if (c.first > best.top().first &&
        best.size() >= static_cast<std::size_t>(ef)) {
      break;
    }
    cands.pop();
    for (std::uint32_t v : links_[c.second][static_cast<std::size_t>(level)]) {
      if (visited[v]) continue;
      visited[v] = 1;
      const float d = Dist(q, v);
      if (best.size() < static_cast<std::size_t>(ef) ||
          d < best.top().first) {
        cands.push({d, v});
        best.push({d, v});
        if (best.size() > static_cast<std::size_t>(ef)) best.pop();
      }
    }
  }
  std::vector<Cand> out;
  out.reserve(best.size());
  while (!best.empty()) {
    out.push_back(best.top());
    best.pop();
  }
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<std::uint32_t> HnswIndex::SelectNeighbors(
    const float* q, std::vector<Cand> cands, int m) const {
  std::sort(cands.begin(), cands.end());
  std::vector<std::uint32_t> kept;
  std::vector<Cand> pruned;
  for (const Cand& c : cands) {
    if (kept.size() >= static_cast<std::size_t>(m)) break;
    // Distance-diversity heuristic: keep c only if it is closer to the
    // query than to every neighbor already kept, so the kept set spans
    // directions instead of crowding one cluster.
    bool good = true;
    for (std::uint32_t s : kept) {
      if (VectorSet::Dist2(vs_.Vector(c.second), vs_.Vector(s), vs_.dim()) <
          c.first) {
        good = false;
        break;
      }
    }
    if (good) {
      kept.push_back(c.second);
    } else {
      pruned.push_back(c);
    }
  }
  // Back-fill with the nearest pruned candidates: an under-filled list
  // costs recall more than the lost diversity.
  for (const Cand& c : pruned) {
    if (kept.size() >= static_cast<std::size_t>(m)) break;
    kept.push_back(c.second);
  }
  return kept;
}

void HnswIndex::Insert(std::uint32_t v) {
  const int l = levels_[v];
  links_[v].resize(static_cast<std::size_t>(l) + 1);
  if (max_level_ < 0) {  // first element seeds the hierarchy
    entry_ = v;
    max_level_ = l;
    return;
  }
  const float* q = vs_.Vector(v);
  std::uint32_t ep = entry_;
  float dep = Dist(q, ep);
  // Greedy descent through the layers above v's level.
  for (int lc = max_level_; lc > l; --lc) {
    bool changed = true;
    while (changed) {
      changed = false;
      for (std::uint32_t nb : links_[ep][static_cast<std::size_t>(lc)]) {
        const float d = Dist(q, nb);
        if (d < dep) {
          dep = d;
          ep = nb;
          changed = true;
        }
      }
    }
  }
  // Beam search + bidirectional linking on every layer v participates in.
  for (int lc = std::min(l, max_level_); lc >= 0; --lc) {
    std::vector<Cand> w = SearchLayer(q, ep, p_.ef_construction, lc);
    const int cap = lc == 0 ? max_m0() : p_.m;
    links_[v][static_cast<std::size_t>(lc)] = SelectNeighbors(q, w, cap);
    for (std::uint32_t s : links_[v][static_cast<std::size_t>(lc)]) {
      std::vector<std::uint32_t>& ls = links_[s][static_cast<std::size_t>(lc)];
      ls.push_back(v);
      if (ls.size() > static_cast<std::size_t>(cap)) {
        std::vector<Cand> cs;
        cs.reserve(ls.size());
        for (std::uint32_t x : ls) {
          cs.push_back({VectorSet::Dist2(vs_.Vector(s), vs_.Vector(x),
                                         vs_.dim()),
                        x});
        }
        ls = SelectNeighbors(vs_.Vector(s), std::move(cs), cap);
      }
    }
    ep = w.front().second;
  }
  if (l > max_level_) {
    max_level_ = l;
    entry_ = v;
  }
}

void HnswIndex::Freeze(AddressSpace* space) {
  const std::uint64_t n = vs_.size();
  const std::uint64_t page = AddressSpace::kPmrPageBytes;
  // Page-aligned level-0 block: the CubeMap stripes whole PMR pages, so
  // alignment makes the shard boundaries coincide with list boundaries.
  level0_base_ = space->PmrMalloc(n * Stride0Bytes(), page);
  level0_end_ = level0_base_ + n * Stride0Bytes();
  upper_off_.assign(n, {});
  std::uint64_t slots = 0;
  for (std::uint32_t v = 0; v < n; ++v) {
    for (int l = 1; l <= levels_[v]; ++l) {
      upper_off_[v].push_back(slots);
      slots += 1 + links_[v][static_cast<std::size_t>(l)].size();
    }
  }
  upper_base_ = space->PmrMalloc(std::max<std::uint64_t>(slots, 1) * 4, page);
  upper_end_ = upper_base_ + slots * 4;
  offsets_base_ = space->structure().Allocate(n * 8);
}

Addr HnswIndex::UpperSlotAddr(std::uint32_t v, int level, int slot) const {
  if (upper_base_ == 0) return 0;
  const std::uint64_t base = upper_off_[v][static_cast<std::size_t>(level - 1)];
  return upper_base_ + (base + 1 + static_cast<std::uint64_t>(slot)) * 4;
}

std::vector<std::uint32_t> HnswIndex::Search(const float* q, int k, int ef,
                                             const SearchVisitor& visit) const {
  GP_CHECK(k >= 1, "hnsw search needs k >= 1");
  if (ef < k) ef = k;
  std::uint32_t ep = entry_;
  float dep = Dist(q, ep);
  // Greedy single-entry descent through the upper layers.
  for (int lc = max_level_; lc >= 1; --lc) {
    bool changed = true;
    while (changed) {
      changed = false;
      if (visit) {
        visit({SearchEvent::Kind::kExpand, lc, ep, 0, OffsetEntryAddr(ep),
               false});
      }
      const auto& nbs = links_[ep][static_cast<std::size_t>(lc)];
      for (std::size_t j = 0; j < nbs.size(); ++j) {
        const std::uint32_t v = nbs[j];
        if (visit) {
          visit({SearchEvent::Kind::kNeighbor, lc, ep, v,
                 UpperSlotAddr(ep, lc, static_cast<int>(j)), false});
        }
        const float d = Dist(q, v);
        if (d < dep) {
          dep = d;
          ep = v;
          changed = true;
        }
      }
    }
  }
  // Level-0 beam search with the visited set and beam updates reported.
  std::vector<char> visited(vs_.size(), 0);
  std::priority_queue<Cand, std::vector<Cand>, std::greater<Cand>> cands;
  std::priority_queue<Cand> best;
  visited[ep] = 1;
  if (visit) {
    visit({SearchEvent::Kind::kClaim, 0, ep, ep, 0, true});
    visit({SearchEvent::Kind::kImprove, 0, ep, ep, 0, true});
  }
  cands.push({dep, ep});
  best.push({dep, ep});
  while (!cands.empty()) {
    const Cand c = cands.top();
    if (c.first > best.top().first &&
        best.size() >= static_cast<std::size_t>(ef)) {
      break;
    }
    cands.pop();
    if (visit) {
      visit({SearchEvent::Kind::kExpand, 0, c.second, 0,
             Level0CountAddr(c.second), false});
    }
    const auto& nbs = links_[c.second][0];
    for (std::size_t j = 0; j < nbs.size(); ++j) {
      const std::uint32_t v = nbs[j];
      if (visit) {
        visit({SearchEvent::Kind::kNeighbor, 0, c.second, v,
               Level0SlotAddr(c.second, static_cast<int>(j)), false});
      }
      const bool first = visited[v] == 0;
      if (visit) visit({SearchEvent::Kind::kClaim, 0, c.second, v, 0, first});
      if (!first) continue;
      visited[v] = 1;
      const float d = Dist(q, v);
      const bool improved = best.size() < static_cast<std::size_t>(ef) ||
                            d < best.top().first;
      if (visit) {
        visit({SearchEvent::Kind::kImprove, 0, c.second, v, 0, improved});
      }
      if (!improved) continue;
      cands.push({d, v});
      best.push({d, v});
      if (best.size() > static_cast<std::size_t>(ef)) best.pop();
    }
  }
  std::vector<Cand> out;
  out.reserve(best.size());
  while (!best.empty()) {
    out.push_back(best.top());
    best.pop();
  }
  std::sort(out.begin(), out.end());
  if (out.size() > static_cast<std::size_t>(k)) out.resize(k);
  std::vector<std::uint32_t> ids;
  ids.reserve(out.size());
  for (const Cand& c : out) ids.push_back(c.second);
  return ids;
}

double SelfCheckRecall(const VectorSet& vs, const HnswIndex& index, int k,
                       int ef, int probes) {
  GP_CHECK(probes >= 1, "recall self-check needs probes >= 1");
  double sum = 0.0;
  for (int i = 0; i < probes; ++i) {
    const std::vector<float> q = vs.Query(static_cast<std::uint64_t>(i));
    const std::vector<std::uint32_t> got = index.Search(q.data(), k, ef);
    const std::vector<std::uint32_t> want = BruteForceKnn(vs, q.data(), k);
    std::size_t hits = 0;
    for (std::uint32_t id : got) {
      for (std::uint32_t w : want) {
        if (id == w) {
          ++hits;
          break;
        }
      }
    }
    sum += static_cast<double>(hits) /
           static_cast<double>(std::max<std::size_t>(want.size(), 1));
  }
  return sum / static_cast<double>(probes);
}

}  // namespace graphpim::graph
