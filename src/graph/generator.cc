#include "graph/generator.h"

#include <bit>

#include "common/log.h"
#include "common/random.h"

namespace graphpim::graph {

namespace {

VertexId RoundUpPow2(VertexId v) {
  if (v <= 1) return 1;
  return static_cast<VertexId>(std::bit_ceil(static_cast<std::uint32_t>(v)));
}

// Smallest m with m * 2^-53 >= t — i.e. the integer-domain image of the
// draw threshold. NextDouble() is exactly (Next() >> 11) * 2^-53 (the
// scaling is a power of two, so it never rounds), which makes
// `NextDouble() >= t` equivalent to `(Next() >> 11) >= ThresholdMantissa(t)`
// bit-for-bit; the fix-up loops pin the boundary regardless of how the
// initial product rounded.
std::uint64_t ThresholdMantissa(double t) {
  if (t <= 0.0) return 0;
  if (t >= 1.0) return std::uint64_t{1} << 53;
  auto m = static_cast<std::uint64_t>(t * 0x1p53);
  while (static_cast<double>(m) * 0x1p-53 < t) ++m;
  while (m > 0 && static_cast<double>(m - 1) * 0x1p-53 >= t) --m;
  return m;
}

// Draws one RMAT endpoint pair. The quadrant index is the count of
// thresholds at or below the draw (0..3 for the a / a+b / a+b+c splits,
// same half-open intervals as the naive if-chain), whose high bit is the
// src bit and low bit the dst bit — one branch-free integer pick per scale
// bit, consuming exactly one draw so the RNG sequence (and thus every
// generated graph) is unchanged.
Edge RmatEdge(Rng& rng, std::uint32_t scale, const std::uint64_t thresholds[3]) {
  VertexId src = 0;
  VertexId dst = 0;
  for (std::uint32_t bit = 0; bit < scale; ++bit) {
    const std::uint64_t m = rng.Next() >> 11;
    VertexId k = static_cast<VertexId>(m >= thresholds[0]) +
                 static_cast<VertexId>(m >= thresholds[1]) +
                 static_cast<VertexId>(m >= thresholds[2]);
    src = (src << 1) | (k >> 1);
    dst = (dst << 1) | (k & 1);
  }
  return Edge{src, dst, 1};
}

// Degree-bounded RMAT edge draw loop. Templated on the degree-counter type:
// counters never exceed `cap`, so when the cap fits in uint16 the two
// per-vertex arrays shrink by half — they are hit in random order for every
// drawn edge, and for large graphs their footprint dominates the loop.
template <typename DegT>
void DrawRmatEdges(EdgeList& el, Rng& rng, std::uint64_t target,
                   std::uint32_t scale, const std::uint64_t thresholds[3],
                   std::uint32_t cap, std::uint64_t max_weight) {
  std::vector<DegT> in_deg;
  std::vector<DegT> out_deg;
  if (cap != 0) {
    in_deg.assign(el.num_vertices, 0);
    out_deg.assign(el.num_vertices, 0);
  }
  // Draw from a local generator copy: its state never escapes the loop, so
  // the compiler can keep all four xoshiro words in registers instead of
  // storing them back through the reference on every one of the ~20 draws
  // per edge. Same seed, same sequence — the caller's generator resumes
  // from the copied-back state exactly where a by-reference loop would.
  Rng local = rng;
  while (el.edges.size() < target) {
    Edge e = RmatEdge(local, scale, thresholds);
    if (cap != 0) {
      // Redirect endpoints whose degree budget is exhausted to uniform
      // random vertices (degree bounding, see header comment).
      while (out_deg[e.src] >= cap) {
        e.src = static_cast<VertexId>(local.NextBounded(el.num_vertices));
      }
      while (in_deg[e.dst] >= cap) {
        e.dst = static_cast<VertexId>(local.NextBounded(el.num_vertices));
      }
    }
    if (e.src == e.dst) continue;  // drop self-loops
    if (cap != 0) {
      ++out_deg[e.src];
      ++in_deg[e.dst];
    }
    e.weight = 1 + static_cast<std::uint32_t>(local.NextBounded(max_weight));
    el.edges.push_back(e);
  }
  rng = local;
}

}  // namespace

EdgeList GenerateRmat(const RmatParams& params) {
  GP_CHECK(params.num_vertices > 0);
  GP_CHECK(params.a + params.b + params.c < 1.0, "RMAT probabilities must sum < 1");
  EdgeList el;
  el.num_vertices = RoundUpPow2(params.num_vertices);
  std::uint32_t scale = static_cast<std::uint32_t>(std::countr_zero(el.num_vertices));
  std::uint64_t target = static_cast<std::uint64_t>(
      params.avg_degree * static_cast<double>(el.num_vertices) + 0.5);
  el.edges.reserve(target);
  Rng rng(params.seed);
  std::uint32_t cap = 0;
  if (params.max_degree_factor > 0) {
    cap = static_cast<std::uint32_t>(params.max_degree_factor * params.avg_degree);
    if (cap < 4) cap = 4;
  }
  const std::uint64_t thresholds[3] = {
      ThresholdMantissa(params.a), ThresholdMantissa(params.a + params.b),
      ThresholdMantissa(params.a + params.b + params.c)};
  if (cap <= 0xffff) {
    DrawRmatEdges<std::uint16_t>(el, rng, target, scale, thresholds, cap,
                                 params.max_weight);
  } else {
    DrawRmatEdges<std::uint32_t>(el, rng, target, scale, thresholds, cap,
                                 params.max_weight);
  }

  // Shuffle vertex ids: RMAT correlates topology with id (hubs cluster at
  // low ids), which would concentrate property traffic in one address
  // region; real dataset ids carry no such correlation.
  std::vector<VertexId> perm(el.num_vertices);
  for (VertexId v = 0; v < el.num_vertices; ++v) perm[v] = v;
  for (VertexId v = el.num_vertices; v > 1; --v) {
    std::uint64_t j = rng.NextBounded(v);
    std::swap(perm[v - 1], perm[j]);
  }
  for (Edge& e : el.edges) {
    e.src = perm[e.src];
    e.dst = perm[e.dst];
  }
  return el;
}

EdgeList GenerateUniform(VertexId num_vertices, double avg_degree, std::uint64_t seed) {
  GP_CHECK(num_vertices > 1);
  EdgeList el;
  el.num_vertices = num_vertices;
  std::uint64_t target =
      static_cast<std::uint64_t>(avg_degree * static_cast<double>(num_vertices) + 0.5);
  el.edges.reserve(target);
  Rng rng(seed);
  while (el.edges.size() < target) {
    VertexId src = static_cast<VertexId>(rng.NextBounded(num_vertices));
    VertexId dst = static_cast<VertexId>(rng.NextBounded(num_vertices));
    if (src == dst) continue;
    el.edges.push_back(Edge{src, dst, 1 + static_cast<std::uint32_t>(rng.NextBounded(16))});
  }
  return el;
}

EdgeList GenerateProfile(const std::string& profile, VertexId num_vertices,
                         std::uint64_t seed) {
  RmatParams p;
  p.num_vertices = num_vertices;
  p.seed = seed;
  if (profile == "ldbc") {
    p.avg_degree = 28.8;  // Table VI: 1M vertices, 28.8M edges
    p.a = 0.45;           // LDBC SNB skew is milder than classic RMAT
    p.b = 0.22;
    p.c = 0.22;
  } else if (profile == "bitcoin") {
    p.avg_degree = 2.5;   // Table VII: 71.7M vertices, 181.8M edges
    p.a = 0.60;           // heavier hubs: exchange accounts
    p.b = 0.18;
    p.c = 0.18;
  } else if (profile == "twitter") {
    p.avg_degree = 7.7;   // Table VII: 11M vertices, 85M edges
    p.a = 0.55;
    p.b = 0.20;
    p.c = 0.20;
  } else {
    // Recoverable for the same reason as CreateWorkload: one bad sweep
    // cell must not kill the whole sweep.
    GP_THROW("unknown graph profile '", profile, "'");
  }
  return GenerateRmat(p);
}

VertexId LdbcSizeFromName(const std::string& name) {
  if (name == "ldbc-1k") return 1024;
  if (name == "ldbc-10k") return 10 * 1024;
  if (name == "ldbc-100k") return 100 * 1024;
  if (name == "ldbc-1m") return 1024 * 1024;
  GP_FATAL("unknown LDBC dataset '", name, "' (ldbc-1k/10k/100k/1m)");
}

}  // namespace graphpim::graph
