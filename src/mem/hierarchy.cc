#include "mem/hierarchy.h"

#include <algorithm>
#include <bit>
#include <string>

#include "common/log.h"

namespace graphpim::mem {

CacheHierarchy::CacheHierarchy(int num_cores, const CacheParams& params,
                               hmc::HmcNetwork* mem, StatRegistry* stats,
                               trace::SpanRecorder* spans)
    : num_cores_(num_cores),
      params_(params),
      mem_(mem),
      spans_(spans),
      stats_(stats, "cache"),
      sid_atomic_reqs_(stats_.Counter("atomic_reqs")),
      sid_writebacks_(stats_.Counter("writebacks")),
      sid_coherence_invals_(stats_.Counter("coherence_invals")),
      sid_atomic_mem_misses_(stats_.Counter("atomic_mem_misses")),
      sid_atomic_line_waits_(stats_.Counter("atomic_line_waits")),
      sid_prefetch_covered_(stats_.Counter("prefetch_covered")) {
  GP_CHECK(num_cores > 0);
  GP_CHECK(mem != nullptr);
  for (int i = 0; i < 3; ++i) {
    const std::string comp = ToString(static_cast<DataComponent>(i));
    sid_access_[i] = stats_.Counter("access." + comp);
    sid_l3_miss_[i] = stats_.Counter("l3_miss." + comp);
    const std::string level = "l" + std::to_string(i + 1);
    sid_hits_[i] = stats_.Counter(level + "_hits");
    sid_misses_[i] = stats_.Counter(level + "_misses");
  }
  for (int i = 0; i < num_cores; ++i) {
    l1_.push_back(std::make_unique<CacheArray>(params.l1_size, params.l1_ways,
                                               params.line_bytes, params.replacement));
    l2_.push_back(std::make_unique<CacheArray>(params.l2_size, params.l2_ways,
                                               params.line_bytes, params.replacement));
  }
  l3_ = std::make_unique<CacheArray>(params.l3_size, params.l3_ways, params.line_bytes,
                                     params.replacement);
  use_sharers_ = num_cores <= 64;
  mshr_ready_.assign(num_cores, std::vector<Tick>(params.mshrs_per_core, 0));
  l3_bank_ready_.assign(params.l3_banks, 0);
  if (std::has_single_bit(params.l3_banks)) l3_bank_mask_ = params.l3_banks - 1;
  pf_streams_.assign(num_cores, std::vector<Addr>(params.prefetch_streams, ~Addr{0}));
  pf_next_slot_.assign(num_cores, 0);
}

bool CacheHierarchy::PrefetchCovers(int core, Addr line) {
  if (params_.prefetch_streams == 0) return false;
  auto& streams = pf_streams_[static_cast<std::size_t>(core)];
  for (Addr& s : streams) {
    if (s != ~Addr{0} && line == s + params_.line_bytes) {
      s = line;  // stream advances
      return true;
    }
  }
  // New stream candidate: remember this line round-robin.
  auto& slot = pf_next_slot_[static_cast<std::size_t>(core)];
  streams[slot] = line;
  slot = (slot + 1) % streams.size();
  return false;
}

Addr CacheHierarchy::LineOf(Addr addr) const {
  return addr & ~static_cast<Addr>(params_.line_bytes - 1);
}

Tick CacheHierarchy::ReserveL3(Addr line, Tick when) {
  // line_bytes is power-of-two (checked by CacheArray); banks usually are.
  const std::size_t line_idx =
      static_cast<std::size_t>(line >> std::countr_zero(params_.line_bytes));
  std::size_t bank = l3_bank_mask_ != 0 ? (line_idx & l3_bank_mask_)
                                        : line_idx % l3_bank_ready_.size();
  Tick start = std::max(when, l3_bank_ready_[bank]);
  l3_bank_ready_[bank] = start + params_.l3_occupancy;
  return start;
}

std::size_t CacheHierarchy::AcquireMshr(int core, Tick when, Tick* start) {
  auto& pool = mshr_ready_[core];
  std::size_t idx = 0;
  for (std::size_t i = 1; i < pool.size(); ++i) {
    if (pool[i] < pool[idx]) idx = i;
  }
  *start = std::max(when, pool[idx]);
  return idx;
}

bool CacheHierarchy::InvalidateRemote(int core, Addr line) {
  bool any = false;
  std::uint64_t mask = ~std::uint64_t{0};
  std::uint64_t* entry = nullptr;
  if (use_sharers_) {
    entry = sharers_.Find(line);
    if (entry == nullptr) return false;
    mask = *entry;
  }
  for (int c = 0; c < num_cores_; ++c) {
    if (c == core) continue;
    if (use_sharers_ && ((mask >> c) & 1) == 0) continue;
    bool dirty = false;
    bool in_l1 = l1_[c]->Invalidate(line, &dirty);
    bool d2 = false;
    bool in_l2 = l2_[c]->Invalidate(line, &d2);
    if (in_l1 || in_l2) {
      any = true;
      // A dirty remote copy is forwarded; preserve it at the L3 level so
      // it is not lost if the requester later evicts clean.
      if (dirty || d2) l3_->SetDirty(line);
    }
  }
  // Only the requester can still hold (or is about to fill) the line.
  if (entry != nullptr) *entry = std::uint64_t{1} << core;
  return any;
}

void CacheHierarchy::FillLine(int core, Addr line, Tick when, bool dirty) {
  // Shared L3 first (inclusive of all private caches).
  if (!l3_->Contains(line)) {
    CacheArray::Victim v3 = l3_->Insert(line, false);
    if (v3.valid) {
      bool victim_dirty = v3.dirty;
      // Inclusive back-invalidation of the victim line everywhere; with
      // the sharers map, "everywhere" shrinks to the recorded holders and
      // the victim's entry dies with its L3 residency.
      std::uint64_t vmask = ~std::uint64_t{0};
      if (use_sharers_) {
        const std::uint64_t* ventry = sharers_.Find(v3.line_addr);
        vmask = ventry != nullptr ? *ventry : 0;
        if (ventry != nullptr) sharers_.Erase(v3.line_addr);
      }
      for (int c = 0; c < num_cores_; ++c) {
        if (use_sharers_ && ((vmask >> c) & 1) == 0) continue;
        bool d1 = false;
        bool d2 = false;
        l1_[c]->Invalidate(v3.line_addr, &d1);
        l2_[c]->Invalidate(v3.line_addr, &d2);
        victim_dirty = victim_dirty || d1 || d2;
      }
      if (victim_dirty) {
        mem_->Write(v3.line_addr, params_.line_bytes, when);
        stats_.Inc(sid_writebacks_);
      }
    }
  }
  // Private L2.
  if (!l2_[core]->Contains(line)) {
    CacheArray::Victim v2 = l2_[core]->Insert(line, false);
    if (v2.valid) {
      bool d1 = false;
      l1_[core]->Invalidate(v2.line_addr, &d1);
      if (v2.dirty || d1) {
        if (!l3_->SetDirty(v2.line_addr)) {
          mem_->Write(v2.line_addr, params_.line_bytes, when);
          stats_.Inc(sid_writebacks_);
        }
      }
    }
  }
  // Private L1.
  if (!l1_[core]->Contains(line)) {
    CacheArray::Victim v1 = l1_[core]->Insert(line, dirty);
    if (v1.valid && v1.dirty) {
      if (!l2_[core]->SetDirty(v1.line_addr) && !l3_->SetDirty(v1.line_addr)) {
        mem_->Write(v1.line_addr, params_.line_bytes, when);
        stats_.Inc(sid_writebacks_);
      }
    }
  } else if (dirty) {
    l1_[core]->SetDirty(line);
  }
  if (use_sharers_) sharers_[line] |= std::uint64_t{1} << core;
}

AccessResult CacheHierarchy::Access(int core, AccessType type, Addr addr,
                                    Tick when, DataComponent comp,
                                    SpanRef span) {
  GP_CHECK(core >= 0 && core < num_cores_);
  Tick t = when;
  // Locked RMWs on one line serialize across cores.
  if (type == AccessType::kAtomicRmw) {
    const Tick* ready = atomic_line_ready_.Find(LineOf(addr));
    if (ready != nullptr && *ready > t) {
      stats_.Inc(sid_atomic_line_waits_);
      t = *ready;
    }
    if (t > when) Stamp(span, trace::SpanStage::kIssue, when, t);
  }
  AccessResult res = AccessInternal(core, type, addr, t, comp, span);
  if (type == AccessType::kAtomicRmw) {
    atomic_line_ready_[LineOf(addr)] = res.complete;
  }
  return res;
}

AccessResult CacheHierarchy::AccessInternal(int core, AccessType type, Addr addr,
                                            Tick when, DataComponent comp,
                                            SpanRef span) {
  const Addr line = LineOf(addr);
  const bool wants_exclusive = type != AccessType::kRead;
  AccessResult res;
  Tick t = when;

  stats_.Inc(sid_access_[static_cast<int>(comp)]);
  if (type == AccessType::kAtomicRmw) stats_.Inc(sid_atomic_reqs_);

  auto record_hit = [&](int level) {
    res.hit_level = level;
    stats_.Inc(sid_hits_[level - 1]);
  };
  auto record_miss = [&](int level) {
    stats_.Inc(sid_misses_[level - 1]);
    if (level == 3) stats_.Inc(sid_l3_miss_[static_cast<int>(comp)]);
  };

  // L1 tag check.
  t += params_.l1_latency;
  res.check_ticks += params_.l1_latency;
  if (l1_[core]->Lookup(line)) {
    record_hit(1);
    if (wants_exclusive) {
      if (InvalidateRemote(core, line)) {
        res.coherence_inval = true;
        t += params_.snoop_latency;
        res.check_ticks += params_.snoop_latency;
        stats_.Inc(sid_coherence_invals_);
      }
      l1_[core]->SetDirty(line);
    }
    res.complete = t;
    Stamp(span, trace::SpanStage::kCacheLookup, when, res.complete, 1);
    return res;
  }
  record_miss(1);

  // L2 tag check.
  t += params_.l2_latency;
  res.check_ticks += params_.l2_latency;
  if (l2_[core]->Lookup(line)) {
    record_hit(2);
    if (wants_exclusive && InvalidateRemote(core, line)) {
      res.coherence_inval = true;
      t += params_.snoop_latency;
      res.check_ticks += params_.snoop_latency;
      stats_.Inc(sid_coherence_invals_);
    }
    FillLine(core, line, t, wants_exclusive);
    res.complete = t;
    Stamp(span, trace::SpanStage::kCacheLookup, when, res.complete, 2);
    return res;
  }
  record_miss(2);

  // Shared L3 (banked).
  Tick l3_start = ReserveL3(line, t);
  t = l3_start + params_.l3_latency;
  res.check_ticks += params_.l3_latency;
  if (l3_->Lookup(line)) {
    record_hit(3);
    if (wants_exclusive && InvalidateRemote(core, line)) {
      res.coherence_inval = true;
      t += params_.snoop_latency;
      res.check_ticks += params_.snoop_latency;
      stats_.Inc(sid_coherence_invals_);
    }
    FillLine(core, line, t, wants_exclusive);
    res.complete = t;
    Stamp(span, trace::SpanStage::kCacheLookup, when, res.complete, 3);
    return res;
  }
  record_miss(3);
  if (type == AccessType::kAtomicRmw) {
    stats_.Inc(sid_atomic_mem_misses_);
  }
  // Full-walk miss: the lookup stage ends at the L3 tag-check result.
  Stamp(span, trace::SpanStage::kCacheLookup, when, t, 0);

  // Stream prefetcher: a sequential miss is already in flight and lands in
  // the fill buffer (the memory traffic still happens).
  if (PrefetchCovers(core, line)) {
    mem_->Read(line, params_.line_bytes, t);
    stats_.Inc(sid_prefetch_covered_);
    res.hit_level = 0;
    res.complete = t + params_.prefetch_hit_latency;
    FillLine(core, line, res.complete, wants_exclusive);
    return res;
  }

  // Main memory: MSHR-limited, filled from the HMC cube.
  Tick issue = 0;
  std::size_t mshr = AcquireMshr(core, t, &issue);
  if (issue > t) {
    res.issue_stall = issue;
    Stamp(span, trace::SpanStage::kIssue, t, issue);
  }
  hmc::Completion c = mem_->Read(line, params_.line_bytes, issue, span);
  mshr_ready_[core][mshr] = c.response_at_host;
  res.hit_level = 0;
  res.complete = c.response_at_host;
  FillLine(core, line, c.response_at_host, wants_exclusive);
  return res;
}

int CacheHierarchy::ProbeLevel(int core, Addr addr) const {
  const Addr line = LineOf(addr);
  if (l1_[core]->Contains(line)) return 1;
  if (l2_[core]->Contains(line)) return 2;
  if (l3_->Contains(line)) return 3;
  return 0;
}

}  // namespace graphpim::mem
