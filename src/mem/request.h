// Memory access request/result types shared between the CPU model and the
// cache hierarchy.
#ifndef GRAPHPIM_MEM_REQUEST_H_
#define GRAPHPIM_MEM_REQUEST_H_

#include <cstdint>

#include "common/span.h"
#include "common/types.h"

namespace graphpim::mem {

// Flight-recorder handle threaded alongside a request through the cache
// hierarchy and down into the cube network. Invalid (default) for
// unsampled requests; every hook site stamps through it unconditionally
// and the recorder ignores invalid refs.
using SpanRef = trace::SpanRef;

enum class AccessType : std::uint8_t {
  kRead = 0,
  kWrite = 1,
  kAtomicRmw = 2,  // host-side locked RMW (baseline path)
};

// Result of a cache-hierarchy access.
struct AccessResult {
  Tick complete = 0;        // when the data is available at the core
  int hit_level = 0;        // 1..3 = cache level that hit, 0 = main memory
  bool coherence_inval = false;  // an RFO invalidated a remote private copy
  Tick check_ticks = 0;     // time spent walking cache levels (tag checks)
  // When the request had to wait for an MSHR, the tick at which it finally
  // entered the memory system (backpressure the core must model as an
  // issue stall). 0 = no wait.
  Tick issue_stall = 0;
};

}  // namespace graphpim::mem

#endif  // GRAPHPIM_MEM_REQUEST_H_
