// Set-associative cache tag array with true-LRU replacement.
//
// The array tracks tags, valid and dirty bits only; data values live in the
// functional layer. Used for L1/L2/L3 in the hierarchy and directly by unit
// tests.
#ifndef GRAPHPIM_MEM_CACHE_H_
#define GRAPHPIM_MEM_CACHE_H_

#include <cstdint>
#include <vector>

#include "common/random.h"
#include "common/types.h"

namespace graphpim::mem {

// Victim selection policy for a cache array.
enum class ReplacementPolicy : std::uint8_t {
  kLru = 0,     // true LRU (default)
  kRandom = 1,  // pseudo-random victim (deterministic RNG)
  kNru = 2,     // not-recently-used: one reference bit per way
};

class CacheArray {
 public:
  // `size_bytes` must be a multiple of ways * line_bytes; the resulting
  // set count must be a power of two.
  CacheArray(std::uint64_t size_bytes, std::uint32_t ways, std::uint32_t line_bytes,
             ReplacementPolicy policy = ReplacementPolicy::kLru);

  // An evicted victim line returned by Insert().
  struct Victim {
    bool valid = false;
    bool dirty = false;
    Addr line_addr = 0;
  };

  // Looks up `addr`; on a hit optionally promotes the line to MRU.
  bool Lookup(Addr addr, bool update_lru = true);

  // True if the line is present (no LRU update).
  bool Contains(Addr addr) const;

  // Inserts the line for `addr` (must not already be present), evicting the
  // LRU line of the set if needed.
  Victim Insert(Addr addr, bool dirty);

  // Marks the line dirty; returns false if not present.
  bool SetDirty(Addr addr);

  // Removes the line; returns true (and sets *was_dirty) if it was present.
  bool Invalidate(Addr addr, bool* was_dirty = nullptr);

  std::uint32_t num_sets() const { return num_sets_; }
  std::uint32_t ways() const { return ways_; }
  std::uint32_t line_bytes() const { return line_bytes_; }
  std::uint64_t size_bytes() const {
    return static_cast<std::uint64_t>(num_sets_) * ways_ * line_bytes_;
  }

  // Number of currently valid lines (for tests).
  std::uint64_t ValidLines() const;

 private:
  // 16-byte packed way: tag, valid and dirty share one word so an 8-way set
  // scan touches two cache lines instead of three. Tags are (addr >>
  // line+set bits), well under 62 bits for any simulated address space.
  struct Way {
    std::uint64_t meta = 0;  // (tag << 2) | (dirty << 1) | valid
    std::uint64_t lru = 0;   // larger = more recently used

    bool valid() const { return (meta & 1) != 0; }
    bool dirty() const { return (meta & 2) != 0; }
    Addr tag() const { return meta >> 2; }
  };

  // Valid-line probe word for `tag`: equals way.meta with the dirty bit
  // masked off iff the way is valid and holds `tag`.
  static std::uint64_t ProbeOf(Addr tag) { return (tag << 2) | 1; }

  std::uint32_t SetOf(Addr addr) const;
  Addr TagOf(Addr addr) const;
  Addr LineAddr(std::uint32_t set, Addr tag) const;

  // Picks the victim way index within `set` per the configured policy.
  std::uint32_t PickVictim(std::uint32_t set);

  std::uint32_t ways_;
  std::uint32_t line_bytes_;
  std::uint32_t num_sets_;
  std::uint32_t line_shift_;
  std::uint32_t set_shift_;
  ReplacementPolicy policy_;
  std::uint64_t lru_clock_ = 0;
  Rng rng_{0xCACE};
  std::vector<Way> ways_storage_;  // num_sets_ * ways_, row-major by set
};

}  // namespace graphpim::mem

#endif  // GRAPHPIM_MEM_CACHE_H_
