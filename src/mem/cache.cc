#include "mem/cache.h"

#include <bit>

#include "common/log.h"

namespace graphpim::mem {

CacheArray::CacheArray(std::uint64_t size_bytes, std::uint32_t ways,
                       std::uint32_t line_bytes, ReplacementPolicy policy)
    : ways_(ways), line_bytes_(line_bytes), policy_(policy) {
  GP_CHECK(ways > 0 && line_bytes > 0);
  GP_CHECK(std::has_single_bit(line_bytes), "line size must be a power of two");
  GP_CHECK(size_bytes % (static_cast<std::uint64_t>(ways) * line_bytes) == 0,
           "cache size must be a multiple of ways*line");
  std::uint64_t sets = size_bytes / (static_cast<std::uint64_t>(ways) * line_bytes);
  GP_CHECK(sets > 0 && std::has_single_bit(sets), "set count must be a power of two");
  num_sets_ = static_cast<std::uint32_t>(sets);
  line_shift_ = static_cast<std::uint32_t>(std::countr_zero(line_bytes));
  set_shift_ = static_cast<std::uint32_t>(std::countr_zero(sets));
  ways_storage_.resize(static_cast<std::size_t>(num_sets_) * ways_);
}

std::uint32_t CacheArray::SetOf(Addr addr) const {
  return static_cast<std::uint32_t>((addr >> line_shift_) & (num_sets_ - 1));
}

Addr CacheArray::TagOf(Addr addr) const {
  return addr >> (line_shift_ + set_shift_);
}

Addr CacheArray::LineAddr(std::uint32_t set, Addr tag) const {
  return (tag << (line_shift_ + set_shift_)) | (static_cast<Addr>(set) << line_shift_);
}

bool CacheArray::Lookup(Addr addr, bool update_lru) {
  std::uint32_t set = SetOf(addr);
  const std::uint64_t probe = ProbeOf(TagOf(addr));
  Way* base = &ways_storage_[static_cast<std::size_t>(set) * ways_];
  for (std::uint32_t w = 0; w < ways_; ++w) {
    if ((base[w].meta & ~std::uint64_t{2}) == probe) {
      if (update_lru) base[w].lru = ++lru_clock_;
      return true;
    }
  }
  return false;
}

bool CacheArray::Contains(Addr addr) const {
  std::uint32_t set = SetOf(addr);
  const std::uint64_t probe = ProbeOf(TagOf(addr));
  const Way* base = &ways_storage_[static_cast<std::size_t>(set) * ways_];
  for (std::uint32_t w = 0; w < ways_; ++w) {
    if ((base[w].meta & ~std::uint64_t{2}) == probe) return true;
  }
  return false;
}

std::uint32_t CacheArray::PickVictim(std::uint32_t set) {
  Way* base = &ways_storage_[static_cast<std::size_t>(set) * ways_];
  switch (policy_) {
    case ReplacementPolicy::kLru: {
      std::uint32_t victim = 0;
      for (std::uint32_t w = 1; w < ways_; ++w) {
        if (base[w].lru < base[victim].lru) victim = w;
      }
      return victim;
    }
    case ReplacementPolicy::kRandom:
      return static_cast<std::uint32_t>(rng_.NextBounded(ways_));
    case ReplacementPolicy::kNru: {
      // Victim = first way not referenced since the last reset; the LRU
      // stamp doubles as the reference mark (stamp == current epoch).
      std::uint32_t oldest = 0;
      for (std::uint32_t w = 0; w < ways_; ++w) {
        if (base[w].lru + ways_ < lru_clock_) return w;
        if (base[w].lru < base[oldest].lru) oldest = w;
      }
      return oldest;
    }
  }
  return 0;
}

CacheArray::Victim CacheArray::Insert(Addr addr, bool dirty) {
  std::uint32_t set = SetOf(addr);
  Addr tag = TagOf(addr);
  Way* base = &ways_storage_[static_cast<std::size_t>(set) * ways_];
  Way* target = nullptr;
  Victim victim;
  for (std::uint32_t w = 0; w < ways_; ++w) {
    if (!base[w].valid()) {
      target = &base[w];
      break;
    }
    GP_CHECK(base[w].tag() != tag, "Insert() of a line already present");
  }
  if (target == nullptr) target = &base[PickVictim(set)];
  if (target->valid()) {
    victim.valid = true;
    victim.dirty = target->dirty();
    victim.line_addr = LineAddr(set, target->tag());
  }
  target->meta = (tag << 2) | (dirty ? 3u : 1u);
  target->lru = ++lru_clock_;
  return victim;
}

bool CacheArray::SetDirty(Addr addr) {
  std::uint32_t set = SetOf(addr);
  const std::uint64_t probe = ProbeOf(TagOf(addr));
  Way* base = &ways_storage_[static_cast<std::size_t>(set) * ways_];
  for (std::uint32_t w = 0; w < ways_; ++w) {
    if ((base[w].meta & ~std::uint64_t{2}) == probe) {
      base[w].meta |= 2;
      return true;
    }
  }
  return false;
}

bool CacheArray::Invalidate(Addr addr, bool* was_dirty) {
  std::uint32_t set = SetOf(addr);
  const std::uint64_t probe = ProbeOf(TagOf(addr));
  Way* base = &ways_storage_[static_cast<std::size_t>(set) * ways_];
  for (std::uint32_t w = 0; w < ways_; ++w) {
    if ((base[w].meta & ~std::uint64_t{2}) == probe) {
      if (was_dirty != nullptr) *was_dirty = base[w].dirty();
      base[w].meta = 0;
      return true;
    }
  }
  return false;
}

std::uint64_t CacheArray::ValidLines() const {
  std::uint64_t n = 0;
  for (const Way& w : ways_storage_) {
    if (w.valid()) ++n;
  }
  return n;
}

}  // namespace graphpim::mem
