// Three-level cache hierarchy with MESI-style coherence costs.
//
// Private 32KB L1 + 256KB L2 per core, 16MB shared inclusive L3 (Table IV),
// 64-byte lines, write-allocate/writeback, MSHR-limited memory-level
// parallelism per core, and read-for-ownership invalidations on writes and
// host atomics. Misses are filled from the HMC cube network, which also
// receives dirty writebacks (their FLITs count toward Fig 12's bandwidth).
//
// Coherence is modeled at the cost level the paper measures: a write/RMW to
// a line present in another core's private cache pays a snoop-invalidation
// latency and is counted as coherence traffic; full MESI state transitions
// beyond presence/dirtiness are not tracked (see DESIGN.md "Fidelity").
#ifndef GRAPHPIM_MEM_HIERARCHY_H_
#define GRAPHPIM_MEM_HIERARCHY_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "common/line_map.h"
#include "common/stats.h"
#include "common/types.h"
#include "hmc/topology.h"
#include "mem/cache.h"
#include "mem/request.h"

namespace graphpim::mem {

struct CacheParams {
  std::uint32_t line_bytes = 64;

  std::uint64_t l1_size = 32 * kKiB;
  std::uint32_t l1_ways = 8;
  Tick l1_latency = NsToTicks(2.0);  // 4 cycles @ 2GHz

  std::uint64_t l2_size = 256 * kKiB;
  std::uint32_t l2_ways = 8;
  Tick l2_latency = NsToTicks(6.0);  // 12 cycles

  std::uint64_t l3_size = 16 * kMiB;
  std::uint32_t l3_ways = 16;
  Tick l3_latency = NsToTicks(20.0);  // 40 cycles
  std::uint32_t l3_banks = 8;
  Tick l3_occupancy = NsToTicks(1.0);  // per-access bank busy time

  std::uint32_t mshrs_per_core = 16;

  // Victim selection in every level (architectural sensitivity knob).
  ReplacementPolicy replacement = ReplacementPolicy::kLru;

  // Remote snoop-invalidation latency for RFO on a shared line.
  Tick snoop_latency = NsToTicks(15.0);

  // Stream prefetcher: sequential misses detected against this many
  // per-core reference streams are covered by the prefetcher (cacheable
  // accesses only — UC/PMR accesses cannot be prefetched). 0 disables.
  std::uint32_t prefetch_streams = 8;
  Tick prefetch_hit_latency = NsToTicks(4.0);  // fill buffer hit
};

class CacheHierarchy {
 public:
  // `mem` is the backing cube network; not owned. `stats` may be null. All
  // "cache." counter names are interned here, including the per-component
  // and per-level families — hot-path updates are plain indexed adds.
  // `spans` (may be null) is the transaction flight recorder; the walk
  // stamps kCacheLookup / kIssue stages onto sampled requests.
  CacheHierarchy(int num_cores, const CacheParams& params, hmc::HmcNetwork* mem,
                 StatRegistry* stats = nullptr,
                 trace::SpanRecorder* spans = nullptr);

  CacheHierarchy(const CacheHierarchy&) = delete;
  CacheHierarchy& operator=(const CacheHierarchy&) = delete;

  // Performs a cacheable access from `core` starting at `when`.
  // AtomicRmw behaves like a write (RFO) and reports hit level for the
  // offloading-candidate analysis (Fig 10). `span` threads the flight
  // recorder handle for sampled requests (invalid = unsampled).
  AccessResult Access(int core, AccessType type, Addr addr, Tick when,
                      DataComponent comp = DataComponent::kMeta,
                      SpanRef span = SpanRef());

  // Non-destructive probe: highest level at which `core` would hit
  // (1/2/3, 0 = miss everywhere). Used by the idealized U-PEI policy.
  int ProbeLevel(int core, Addr addr) const;

  int num_cores() const { return num_cores_; }
  const CacheParams& params() const { return params_; }

 private:
  AccessResult AccessInternal(int core, AccessType type, Addr addr, Tick when,
                              DataComponent comp, SpanRef span);

  // Span stage stamp; single never-taken branch when tracing is off.
  void Stamp(SpanRef span, trace::SpanStage stage, Tick enter, Tick exit,
             std::uint32_t detail = 0) {
    if (spans_ != nullptr) spans_->Stage(span, stage, enter, exit, detail);
  }

  Addr LineOf(Addr addr) const;

  // Invalidates `line` in other cores' private caches; returns true if any
  // copy existed. Dirty remote copies are (logically) forwarded.
  bool InvalidateRemote(int core, Addr line);

  // Fills `line` into core-private L1/L2 and shared L3, handling evictions,
  // writebacks, and inclusive back-invalidation. `when` is fill time.
  void FillLine(int core, Addr line, Tick when, bool dirty);

  // Reserves an L3 bank slot; returns access start time.
  Tick ReserveL3(Addr line, Tick when);

  // Reserves an MSHR for `core`; returns earliest issue time given `when`,
  // and records occupancy until `complete` (call CompleteMshr).
  std::size_t AcquireMshr(int core, Tick when, Tick* start);

  int num_cores_;
  CacheParams params_;
  hmc::HmcNetwork* mem_;
  trace::SpanRecorder* spans_;  // may be null (tracing off)
  StatScope stats_;  // "cache." counters
  StatId sid_access_[3];   // by DataComponent
  StatId sid_l3_miss_[3];  // by DataComponent
  StatId sid_hits_[3];     // by level - 1
  StatId sid_misses_[3];   // by level - 1
  StatId sid_atomic_reqs_;
  StatId sid_writebacks_;
  StatId sid_coherence_invals_;
  StatId sid_atomic_mem_misses_;
  StatId sid_atomic_line_waits_;
  StatId sid_prefetch_covered_;

  std::vector<std::unique_ptr<CacheArray>> l1_;
  std::vector<std::unique_ptr<CacheArray>> l2_;
  std::unique_ptr<CacheArray> l3_;

  std::vector<std::vector<Tick>> mshr_ready_;  // [core][mshr] busy-until tick
  std::vector<Tick> l3_bank_ready_;
  std::size_t l3_bank_mask_ = 0;  // banks-1 when bank count is a power of two

  // Host locked RMWs to the same line serialize (the line lock bounces
  // between cores); tracks when each line's previous RMW completed.
  LineMap<Tick> atomic_line_ready_;

  // Sharers superset: line → bitmask of cores that MAY hold a private
  // copy. Every private fill sets the owner's bit; bits go stale when a
  // private victim eviction silently drops a copy (a set bit may scan and
  // find nothing), but a clear bit never misses one — so coherence scans
  // touch only recorded sharers instead of every core. Entries die with
  // the line's L3 residency (inclusive back-invalidation), which bounds
  // the map to the L3 line count. Disabled (full scans) beyond 64 cores.
  bool use_sharers_ = false;
  LineMap<std::uint64_t> sharers_;

  // Per-core stream-prefetcher reference lines.
  std::vector<std::vector<Addr>> pf_streams_;
  std::vector<std::size_t> pf_next_slot_;

  // Returns true (and trains the detector) when `line` continues one of
  // the core's reference streams.
  bool PrefetchCovers(int core, Addr line);
};

}  // namespace graphpim::mem

#endif  // GRAPHPIM_MEM_HIERARCHY_H_
