// Breadth-first search (GraphBIG BFS): vertex-frontier algorithm of Fig 3.
//
// Offloading target (Table II): lock cmpxchg -> CAS-if-equal on the depth
// property.
#ifndef GRAPHPIM_WORKLOADS_BFS_H_
#define GRAPHPIM_WORKLOADS_BFS_H_

#include <cstdint>
#include <vector>

#include "workloads/workload.h"

namespace graphpim::workloads {

class BfsWorkload : public Workload {
 public:
  explicit BfsWorkload(VertexId root = 0) : root_(root) {}

  const WorkloadInfo& info() const override;
  void Generate(const graph::CsrGraph& g, graph::AddressSpace& space,
                TraceBuilder& tb) override;

  // Functional result: depth per vertex (-1 = unreached).
  const std::vector<std::int64_t>& depths() const { return depths_; }

 private:
  VertexId root_;
  std::vector<std::int64_t> depths_;
};

}  // namespace graphpim::workloads

#endif  // GRAPHPIM_WORKLOADS_BFS_H_
