// Degree centrality (GraphBIG DCentr).
//
// Offloading target (Table II): lock addw -> signed add on the centrality
// property. One atomic per edge with no dependent consumer: the workload
// with the highest host-atomic overhead (Fig 4, up to 64%).
#ifndef GRAPHPIM_WORKLOADS_DC_H_
#define GRAPHPIM_WORKLOADS_DC_H_

#include <cstdint>
#include <vector>

#include "workloads/workload.h"

namespace graphpim::workloads {

class DcWorkload : public Workload {
 public:
  const WorkloadInfo& info() const override;
  void Generate(const graph::CsrGraph& g, graph::AddressSpace& space,
                TraceBuilder& tb) override;

  // Functional result: in-degree + out-degree per vertex.
  const std::vector<std::int64_t>& centrality() const { return centrality_; }

 private:
  std::vector<std::int64_t> centrality_;
};

}  // namespace graphpim::workloads

#endif  // GRAPHPIM_WORKLOADS_DC_H_
