// Dynamic Graph (DG) category workloads: Graph Construction (GCons),
// Graph Update (GUp), Topology Morphing (TMorph).
//
// None are offloadable (Table III: complex operations — their updates need
// indirect accesses and multiple memory operands). Their synchronization
// atomics target meta-region bucket locks, which never fall in the PMR, so
// the POU correctly leaves them on the host under every configuration.
#ifndef GRAPHPIM_WORKLOADS_DYNAMIC_H_
#define GRAPHPIM_WORKLOADS_DYNAMIC_H_

#include <cstdint>
#include <vector>

#include "workloads/workload.h"

namespace graphpim::workloads {

// Builds a dynamic adjacency structure edge by edge (linked chunks).
class GconsWorkload : public Workload {
 public:
  const WorkloadInfo& info() const override;
  void Generate(const graph::CsrGraph& g, graph::AddressSpace& space,
                TraceBuilder& tb) override;

  std::uint64_t inserted_edges() const { return inserted_; }

 private:
  std::uint64_t inserted_ = 0;
};

// Deletes/re-weights a sample of edges in the dynamic structure.
class GupWorkload : public Workload {
 public:
  explicit GupWorkload(double update_fraction = 0.25)
      : update_fraction_(update_fraction) {}

  const WorkloadInfo& info() const override;
  void Generate(const graph::CsrGraph& g, graph::AddressSpace& space,
                TraceBuilder& tb) override;

  std::uint64_t updated_edges() const { return updated_; }

 private:
  double update_fraction_;
  std::uint64_t updated_ = 0;
};

// Rewrites the topology into a transformed layout (triangulation-style
// morphing pass).
class TmorphWorkload : public Workload {
 public:
  const WorkloadInfo& info() const override;
  void Generate(const graph::CsrGraph& g, graph::AddressSpace& space,
                TraceBuilder& tb) override;

  std::uint64_t moved_edges() const { return moved_; }

 private:
  std::uint64_t moved_ = 0;
};

}  // namespace graphpim::workloads

#endif  // GRAPHPIM_WORKLOADS_DYNAMIC_H_
