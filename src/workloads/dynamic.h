// Dynamic Graph (DG) category workloads: Graph Construction (GCons),
// Graph Update (GUp), Topology Morphing (TMorph).
//
// None are offloadable (Table III: complex operations — their updates need
// indirect accesses and multiple memory operands). Their synchronization
// atomics target meta-region bucket locks, which never fall in the PMR, so
// the POU correctly leaves them on the host under every configuration.
#ifndef GRAPHPIM_WORKLOADS_DYNAMIC_H_
#define GRAPHPIM_WORKLOADS_DYNAMIC_H_

#include <cstdint>
#include <vector>

#include "workloads/workload.h"

namespace graphpim::workloads {

// Builds a dynamic adjacency structure edge by edge (linked chunks).
class GconsWorkload : public Workload {
 public:
  const WorkloadInfo& info() const override;
  void Generate(const graph::CsrGraph& g, graph::AddressSpace& space,
                TraceBuilder& tb) override;

  std::uint64_t inserted_edges() const { return inserted_; }

 private:
  std::uint64_t inserted_ = 0;
};

// Deletes/re-weights a sample of edges in the dynamic structure.
//
// Persist-capable (DESIGN.md §14): with a persist mode set, each node
// rewrite becomes a crash-consistent update — payload store, flush, fence,
// then an 8B publish store to the vertex's head pointer, flush, fence —
// and is recorded in the UpdateLog. The mutant modes seed the exact bug
// the persist checker exists to flag.
class GupWorkload : public Workload {
 public:
  explicit GupWorkload(double update_fraction = 0.25)
      : update_fraction_(update_fraction) {}

  const WorkloadInfo& info() const override;
  void Generate(const graph::CsrGraph& g, graph::AddressSpace& space,
                TraceBuilder& tb) override;

  std::uint64_t updated_edges() const { return updated_; }

  void SetPersistMode(pmem::PersistMode mode) override { mode_ = mode; }
  const pmem::UpdateLog* update_log() const override {
    return mode_ == pmem::PersistMode::kOff ? nullptr : &updates_;
  }
  bool persist_capable() const override { return true; }

 private:
  double update_fraction_;
  std::uint64_t updated_ = 0;
  pmem::PersistMode mode_ = pmem::PersistMode::kOff;
  pmem::UpdateLog updates_;
};

// Rewrites the topology into a transformed layout (triangulation-style
// morphing pass).
//
// Persist-capable: with a persist mode set, each vertex's rewritten edge
// block is one update — all edge stores flushed (distinct lines once) and
// fenced, then an 8B commit record published in a separate PMR array.
class TmorphWorkload : public Workload {
 public:
  const WorkloadInfo& info() const override;
  void Generate(const graph::CsrGraph& g, graph::AddressSpace& space,
                TraceBuilder& tb) override;

  std::uint64_t moved_edges() const { return moved_; }

  void SetPersistMode(pmem::PersistMode mode) override { mode_ = mode; }
  const pmem::UpdateLog* update_log() const override {
    return mode_ == pmem::PersistMode::kOff ? nullptr : &updates_;
  }
  bool persist_capable() const override { return true; }

 private:
  std::uint64_t moved_ = 0;
  pmem::PersistMode mode_ = pmem::PersistMode::kOff;
  pmem::UpdateLog updates_;
};

}  // namespace graphpim::workloads

#endif  // GRAPHPIM_WORKLOADS_DYNAMIC_H_
