#include "workloads/hnsw.h"

#include <algorithm>

#include "common/random.h"
#include "graph/property.h"
#include "hmc/atomic.h"

namespace graphpim::workloads {

namespace {

// Dataset salt: the vectors are a pure function of (vertex count, salt),
// deterministically "attached" to the CSR vertex set.
constexpr std::uint64_t kVectorSalt = 0x616e6e5645435bULL;

std::uint32_t StripeOf(std::uint32_t v) {
  return static_cast<std::uint32_t>(
      SplitMix64(static_cast<std::uint64_t>(v) ^ 0x53545250ULL).Next() %
      HnswWorkload::kLockStripes);
}

}  // namespace

HnswWorkload::HnswWorkload(const AnnParams& ann) : ann_(ann) {}

const WorkloadInfo& HnswWorkload::info() const {
  static const WorkloadInfo kInfo{
      "hnsw",
      "HNSW k-NN Search",
      WorkloadCategory::kGraphTraversal,
      /*pim_applicable=*/true,
      /*missing_op=*/"",
      /*host_instr=*/"lock cmpxchg",
      /*pim_op=*/"CAS if equal / CAS if less",
      /*needs_fp_extension=*/false};
  return kInfo;
}

void HnswWorkload::Generate(const graph::CsrGraph& g,
                            graph::AddressSpace& space, TraceBuilder& tb) {
  const VertexId n = g.num_vertices();
  const int num_threads = tb.num_threads();
  const int num_queries = ann_.queries;

  graph::VectorSetParams vp;
  vp.count = n;
  vp.dim = ann_.dim;
  vp.clusters = std::max<int>(4, static_cast<int>(n / 128));
  vp.seed = kVectorSalt;
  vectors_ = std::make_unique<graph::VectorSet>(vp);

  // PIM-side property state first (fixed-stride arrays), then the
  // page-aligned index blocks — a stable PMR layout either way, but this
  // order keeps the cube-striped blocks last so they start on fresh pages.
  graph::PropertyArray<std::uint64_t> visit_word(space.pmr(), n, 0);
  graph::PropertyArray<std::uint64_t> stripe_lock(space.pmr(), kLockStripes, 0);
  graph::PropertyArray<std::uint64_t> bound_slot(
      space.pmr(), static_cast<std::size_t>(num_queries), 0);

  graph::HnswParams hp;
  hp.m = ann_.m;
  hp.ef_construction = std::max(2 * ann_.m, ann_.ef_search);
  index_ = std::make_unique<graph::HnswIndex>(*vectors_, hp, &space);

  // Per-thread beam scratch in the meta segment (the cache-friendly heap
  // the searches push candidates into).
  std::vector<Addr> heap_base(static_cast<std::size_t>(num_threads));
  for (int t = 0; t < num_threads; ++t) {
    heap_base[static_cast<std::size_t>(t)] = space.meta().Allocate(
        static_cast<std::uint64_t>(ann_.ef_search) * 8);
  }

  // Distance cost: one fused FP op per 8 lanes (SIMD-width arithmetic).
  const int dist_cycles = (ann_.dim + 7) / 8;

  results_.assign(static_cast<std::size_t>(num_queries), {});
  double recall_sum = 0.0;
  for (int t = 0; t < num_threads; ++t) {
    auto [begin, end] = ThreadChunk(static_cast<std::size_t>(num_queries), t,
                                    num_threads);
    std::uint64_t pushes = 0;
    for (std::size_t qi = begin; qi < end; ++qi) {
      const std::vector<float> q =
          vectors_->Query(static_cast<std::uint64_t>(qi));
      auto visitor = [&](const graph::HnswIndex::SearchEvent& ev) {
        using Kind = graph::HnswIndex::SearchEvent::Kind;
        if (tb.AtCap()) return;
        switch (ev.kind) {
          case Kind::kExpand:
            // List header: structure-segment offset row above level 0,
            // the level-0 count word (PMR, cube-striped) at the bottom.
            tb.Load(t, ev.addr, ev.level > 0 ? 8 : 4);
            break;
          case Kind::kNeighbor:
            tb.Load(t, ev.addr, 4);                      // neighbor id slot
            tb.Compute(t, dist_cycles, /*dep=*/true, /*fp=*/true);
            break;
          case Kind::kClaim:
            // Visited-set marking: the check IS the compare half of one
            // CAS on the vertex's PMR visited word (Fig 3 discipline).
            tb.Atomic(t, visit_word.AddrOf(ev.v), hmc::AtomicOp::kCasEqual8,
                      8, /*want_return=*/true, /*dep=*/true);
            tb.Branch(t, /*dep=*/true);
            break;
          case Kind::kImprove:
            tb.Branch(t, /*dep=*/true);  // bound compare
            if (ev.hit) {
              // Striped-lock beam update: claim the hashed lock word,
              // publish the new bound with a min-swap, push the
              // candidate into the thread's meta heap, release.
              const std::uint32_t s = StripeOf(ev.v);
              tb.Atomic(t, stripe_lock.AddrOf(s), hmc::AtomicOp::kCasEqual8,
                        8, /*want_return=*/true, /*dep=*/true);
              tb.Atomic(t, bound_slot.AddrOf(qi), hmc::AtomicOp::kCasLess16,
                        16, /*want_return=*/false, /*dep=*/true);
              tb.Store(t,
                       heap_base[static_cast<std::size_t>(t)] +
                           (pushes++ % static_cast<std::uint64_t>(
                                           ann_.ef_search)) *
                               8,
                       8);
              tb.Store(t, stripe_lock.AddrOf(s), 8);  // release
            }
            break;
        }
      };
      results_[qi] = index_->Search(q.data(), ann_.k, ann_.ef_search, visitor);

      const std::vector<std::uint32_t> want =
          graph::BruteForceKnn(*vectors_, q.data(), ann_.k);
      std::size_t hits = 0;
      for (std::uint32_t id : results_[qi]) {
        if (std::find(want.begin(), want.end(), id) != want.end()) ++hits;
      }
      recall_sum += static_cast<double>(hits) /
                    static_cast<double>(std::max<std::size_t>(want.size(), 1));
    }
  }
  tb.Barrier();
  recall_ = num_queries > 0
                ? recall_sum / static_cast<double>(num_queries)
                : 0.0;
}

}  // namespace graphpim::workloads
