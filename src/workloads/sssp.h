// Single-source shortest path (GraphBIG SSSP), frontier Bellman-Ford.
//
// Offloading target (Table II): lock cmpxchg -> CAS-if-equal on the
// distance property.
#ifndef GRAPHPIM_WORKLOADS_SSSP_H_
#define GRAPHPIM_WORKLOADS_SSSP_H_

#include <cstdint>
#include <vector>

#include "workloads/workload.h"

namespace graphpim::workloads {

class SsspWorkload : public Workload {
 public:
  explicit SsspWorkload(VertexId root = 0, int max_iters = 64)
      : root_(root), max_iters_(max_iters) {}

  const WorkloadInfo& info() const override;
  void Generate(const graph::CsrGraph& g, graph::AddressSpace& space,
                TraceBuilder& tb) override;

  static constexpr std::int64_t kInf = (1LL << 62);

  // Functional result: shortest distance per vertex (kInf = unreachable).
  const std::vector<std::int64_t>& distances() const { return dist_; }

 private:
  VertexId root_;
  int max_iters_;
  std::vector<std::int64_t> dist_;
};

}  // namespace graphpim::workloads

#endif  // GRAPHPIM_WORKLOADS_SSSP_H_
