// Per-workload parameter blocks carried from the config surface into
// CreateWorkload (DESIGN.md §16).
//
// Most workloads are parameterless; the ones that are not (today: the HNSW
// k-NN workload) read their block out of WorkloadParams. The blocks mirror
// KnobRow rows in src/core/sim_config.cc, so the same `ann.*` keys work on
// every driver CLI and in sweep grid specs — SimConfig owns parsing and
// range checking, this header only owns the value carrier.
#ifndef GRAPHPIM_WORKLOADS_PARAMS_H_
#define GRAPHPIM_WORKLOADS_PARAMS_H_

namespace graphpim::workloads {

// ANN / HNSW knobs (`ann.*` rows of the SimConfig field table). The
// defaults ARE the "knob not given" state: only the hnsw workload and the
// serve engine's knn query kind read them, so leaving them untouched keeps
// every other trace byte-identical (strict passthrough).
struct AnnParams {
  int dim = 16;        // vector dimensionality
  int m = 8;           // HNSW degree target; level-0 lists hold up to 2*m
  int ef_search = 32;  // search beam width (candidate-list size)
  int k = 8;           // neighbors returned per query
  int queries = 16;    // k-NN searches the batch workload emits

  friend bool operator==(const AnnParams& a, const AnnParams& b) {
    return a.dim == b.dim && a.m == b.m && a.ef_search == b.ef_search &&
           a.k == b.k && a.queries == b.queries;
  }
  friend bool operator!=(const AnnParams& a, const AnnParams& b) {
    return !(a == b);
  }
};

// Everything CreateWorkload accepts besides the name. Default-constructed
// == the parameterless factory behavior.
struct WorkloadParams {
  AnnParams ann;
};

}  // namespace graphpim::workloads

#endif  // GRAPHPIM_WORKLOADS_PARAMS_H_
