#include "workloads/gibbs.h"

#include <cmath>

#include "graph/property.h"

namespace graphpim::workloads {

const WorkloadInfo& GibbsWorkload::info() const {
  static const WorkloadInfo kInfo{
      "gibbs",
      "Gibbs Inference",
      WorkloadCategory::kRichProperty,
      /*pim_applicable=*/false,
      /*missing_op=*/"Computation intensive",
      /*host_instr=*/"-",
      /*pim_op=*/"-",
      /*needs_fp_extension=*/false};
  return kInfo;
}

void GibbsWorkload::Generate(const graph::CsrGraph& g, graph::AddressSpace& space,
                             TraceBuilder& tb) {
  const VertexId n = g.num_vertices();
  const int num_threads = tb.num_threads();
  const std::uint64_t table_bytes = static_cast<std::uint64_t>(table_entries_) * 16;

  // Rich property: a stochastic table per vertex plus the sampled state.
  graph::PropertyArray<double> state(space.pmr(), n, 0.5);
  Addr tables = space.pmr().Allocate(static_cast<std::uint64_t>(n) * table_bytes);

  for (int iter = 0; iter < iters_; ++iter) {
    for (int t = 0; t < num_threads; ++t) {
      auto [begin, end] = ThreadChunk(n, t, num_threads);
      for (std::size_t uu = begin; uu < end; ++uu) {
        VertexId u = static_cast<VertexId>(uu);
        // Read the conditional-probability table (rich property data).
        double acc = state[u];
        for (int k = 0; k < table_entries_; ++k) {
          tb.Load(t, tables + static_cast<std::uint64_t>(u) * table_bytes +
                         static_cast<std::uint64_t>(k) * 16, 16);
          // Numeric work within the property (sampling math).
          tb.Compute(t, 1, /*dep=*/true, /*fp=*/true);
          tb.Compute(t, 1, /*dep=*/true, /*fp=*/true);
          tb.Compute(t, 1, /*dep=*/true, /*fp=*/true);
          acc = acc * 0.75 + 0.25 * std::sin(static_cast<double>(u + k));
        }
        // Neighbor influence.
        tb.Load(t, g.OffsetAddr(u), 8);
        EdgeId e = g.OffsetOf(u);
        for (VertexId v : g.Neighbors(u)) {
          tb.Load(t, g.NeighborAddr(e), 4);
          tb.Load(t, state.AddrOf(v), 8, /*dep=*/true);
          tb.Compute(t, 1, /*dep=*/true, /*fp=*/true);
          acc += 0.01 * state[v];
          ++e;
        }
        tb.Compute(t, 1, /*dep=*/true, /*fp=*/true);
        tb.Store(t, state.AddrOf(u), 8, /*dep=*/true);
        state[u] = acc / (1.0 + 0.01 * g.OutDegree(u));
      }
    }
    tb.Barrier();
  }

  states_.assign(n, 0.0);
  for (VertexId v = 0; v < n; ++v) states_[v] = state[v];
}

}  // namespace graphpim::workloads
