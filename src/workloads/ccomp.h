// Connected component (GraphBIG CComp): min-label propagation.
//
// Offloading target (Table II): lock cmpxchg -> CAS-if-equal on the label
// property.
#ifndef GRAPHPIM_WORKLOADS_CCOMP_H_
#define GRAPHPIM_WORKLOADS_CCOMP_H_

#include <cstdint>
#include <vector>

#include "workloads/workload.h"

namespace graphpim::workloads {

class CcompWorkload : public Workload {
 public:
  explicit CcompWorkload(int max_iters = 64) : max_iters_(max_iters) {}

  const WorkloadInfo& info() const override;
  void Generate(const graph::CsrGraph& g, graph::AddressSpace& space,
                TraceBuilder& tb) override;

  // Functional result: component label per vertex (min vertex id reachable
  // following directed edges repeatedly).
  const std::vector<std::int64_t>& labels() const { return labels_; }

 private:
  int max_iters_;
  std::vector<std::int64_t> labels_;
};

}  // namespace graphpim::workloads

#endif  // GRAPHPIM_WORKLOADS_CCOMP_H_
