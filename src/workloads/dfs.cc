#include "workloads/dfs.h"

#include "graph/property.h"

namespace graphpim::workloads {

const WorkloadInfo& DfsWorkload::info() const {
  static const WorkloadInfo kInfo{
      "dfs",
      "Depth-first Search",
      WorkloadCategory::kGraphTraversal,
      /*pim_applicable=*/true,
      /*missing_op=*/"",
      /*host_instr=*/"lock cmpxchg",
      /*pim_op=*/"CAS if equal",
      /*needs_fp_extension=*/false};
  return kInfo;
}

void DfsWorkload::Generate(const graph::CsrGraph& g, graph::AddressSpace& space,
                           TraceBuilder& tb) {
  const VertexId n = g.num_vertices();
  const int num_threads = tb.num_threads();

  graph::PropertyArray<std::int64_t> visited(space.pmr(), n, 0);
  Addr stack_addr = space.meta().Allocate(static_cast<std::uint64_t>(n) * 4);

  for (int t = 0; t < num_threads; ++t) {
    auto [begin, end] = ThreadChunk(n, t, num_threads);
    for (std::size_t root = begin; root < end; ++root) {
      if (visited[root] != 0) continue;
      std::vector<VertexId> stack{static_cast<VertexId>(root)};
      while (!stack.empty()) {
        VertexId u = stack.back();
        stack.pop_back();
        // Dependent chain: pop -> visited load -> branch -> CAS.
        tb.Load(t, stack_addr + stack.size() * 4, 4, /*dep=*/true);  // meta: pop
        tb.Load(t, visited.AddrOf(u), 8, /*dep=*/true);              // property
        tb.Branch(t, /*dep=*/true);
        if (visited[u] != 0) continue;
        tb.Atomic(t, visited.AddrOf(u), hmc::AtomicOp::kCasEqual8, 8,
                  /*want_return=*/true, /*dep=*/true);
        tb.Branch(t, /*dep=*/true);
        visited[u] = 1;
        tb.Load(t, g.OffsetAddr(u), 8);
        EdgeId e = g.OffsetOf(u);
        for (VertexId v : g.Neighbors(u)) {
          tb.Load(t, g.NeighborAddr(e), 4);
          tb.Load(t, visited.AddrOf(v), 8, /*dep=*/true);  // property: peek
          tb.Branch(t, /*dep=*/true);
          // Range-restricted: only recurse into this thread's partition.
          if (visited[v] == 0 && v >= begin && v < end) {
            tb.Store(t, stack_addr + stack.size() * 4, 4);  // meta: push
            stack.push_back(v);
          }
          ++e;
        }
      }
    }
  }
  tb.Barrier();

  visited_out_.assign(n, false);
  for (VertexId v = 0; v < n; ++v) visited_out_[v] = visited[v] != 0;
}

}  // namespace graphpim::workloads
