#include "workloads/workload.h"

#include "common/log.h"
#include "workloads/bc.h"
#include "workloads/bfs.h"
#include "workloads/ccomp.h"
#include "workloads/dc.h"
#include "workloads/dfs.h"
#include "workloads/dynamic.h"
#include "workloads/gibbs.h"
#include "workloads/hnsw.h"
#include "workloads/kcore.h"
#include "workloads/prank.h"
#include "workloads/sssp.h"
#include "workloads/tc.h"

namespace graphpim::workloads {

pmem::RecoveryInvariant Workload::recovery_invariant() const {
  return pmem::AllOrNothingInvariant(info().name);
}

std::unique_ptr<Workload> CreateWorkload(const std::string& name,
                                         const WorkloadParams& params) {
  if (name == "bfs") return std::make_unique<BfsWorkload>();
  if (name == "dfs") return std::make_unique<DfsWorkload>();
  if (name == "dc") return std::make_unique<DcWorkload>();
  if (name == "bc") return std::make_unique<BcWorkload>();
  if (name == "sssp") return std::make_unique<SsspWorkload>();
  if (name == "kcore") return std::make_unique<KcoreWorkload>();
  if (name == "ccomp") return std::make_unique<CcompWorkload>();
  if (name == "prank") return std::make_unique<PrankWorkload>();
  if (name == "tc") return std::make_unique<TcWorkload>();
  if (name == "gibbs") return std::make_unique<GibbsWorkload>();
  if (name == "gcons") return std::make_unique<GconsWorkload>();
  if (name == "gup") return std::make_unique<GupWorkload>();
  if (name == "tmorph") return std::make_unique<TmorphWorkload>();
  if (name == "hnsw") return std::make_unique<HnswWorkload>(params.ann);
  // Recoverable: a sweep cell naming a bad workload must fail that cell,
  // not the whole sweep (the runner catches SimError per job).
  GP_THROW("unknown workload '", name, "'");
}

std::unique_ptr<Workload> CreateWorkload(const std::string& name) {
  return CreateWorkload(name, WorkloadParams{});
}

std::vector<std::string> AllWorkloadNames() {
  // Table III order.
  return {"bfs",   "dfs",   "dc",    "bc",  "sssp",  "kcore", "ccomp",
          "prank", "gcons", "gup",   "tmorph", "tc",  "gibbs"};
}

std::vector<std::string> EvalWorkloadNames() {
  // Fig 7 order.
  return {"bfs", "ccomp", "dc", "kcore", "sssp", "tc", "bc", "prank"};
}

}  // namespace graphpim::workloads
