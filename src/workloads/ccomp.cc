#include "workloads/ccomp.h"

#include "graph/property.h"

namespace graphpim::workloads {

const WorkloadInfo& CcompWorkload::info() const {
  static const WorkloadInfo kInfo{
      "ccomp",
      "Connected Component",
      WorkloadCategory::kGraphTraversal,
      /*pim_applicable=*/true,
      /*missing_op=*/"",
      /*host_instr=*/"lock cmpxchg",
      /*pim_op=*/"CAS if equal",
      /*needs_fp_extension=*/false};
  return kInfo;
}

void CcompWorkload::Generate(const graph::CsrGraph& g, graph::AddressSpace& space,
                             TraceBuilder& tb) {
  const VertexId n = g.num_vertices();
  const int num_threads = tb.num_threads();

  graph::PropertyArray<std::int64_t> label(space.pmr(), n);
  for (VertexId v = 0; v < n; ++v) label[v] = v;

  bool changed = true;
  for (int iter = 0; iter < max_iters_ && changed; ++iter) {
    changed = false;
    for (int t = 0; t < num_threads; ++t) {
      auto [begin, end] = ThreadChunk(n, t, num_threads);
      for (std::size_t uu = begin; uu < end; ++uu) {
        VertexId u = static_cast<VertexId>(uu);
        tb.Load(t, label.AddrOf(u), 8);   // property: my label
        tb.Load(t, g.OffsetAddr(u), 8);   // structure: row ptr
        std::int64_t lu = label[u];
        EdgeId e = g.OffsetOf(u);
        for (VertexId v : g.Neighbors(u)) {
          tb.Load(t, g.NeighborAddr(e), 4);             // structure
          tb.Compute(t, 1, /*dep=*/true);               // address generation
          tb.Compute(t, 1);                             // loop bookkeeping
          tb.Load(t, label.AddrOf(v), 8, /*dep=*/true,
                  /*fusable_cmp=*/true);  // property (min-label block)
          tb.Branch(t, /*dep=*/true);
          if (lu < label[v]) {
            tb.Atomic(t, label.AddrOf(v), hmc::AtomicOp::kCasEqual8, 8,
                      /*want_return=*/true, /*dep=*/true);
            tb.Branch(t, /*dep=*/true);
            label[v] = lu;
            changed = true;
          }
          ++e;
        }
      }
    }
    tb.Barrier();
  }

  labels_.assign(n, 0);
  for (VertexId v = 0; v < n; ++v) labels_[v] = label[v];
}

}  // namespace graphpim::workloads
