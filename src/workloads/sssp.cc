#include "workloads/sssp.h"

#include "graph/property.h"

namespace graphpim::workloads {

const WorkloadInfo& SsspWorkload::info() const {
  static const WorkloadInfo kInfo{
      "sssp",
      "Shortest Path",
      WorkloadCategory::kGraphTraversal,
      /*pim_applicable=*/true,
      /*missing_op=*/"",
      /*host_instr=*/"lock cmpxchg",
      /*pim_op=*/"CAS if equal",
      /*needs_fp_extension=*/false};
  return kInfo;
}

void SsspWorkload::Generate(const graph::CsrGraph& g, graph::AddressSpace& space,
                            TraceBuilder& tb) {
  const VertexId n = g.num_vertices();
  const int num_threads = tb.num_threads();

  graph::PropertyArray<std::int64_t> dist(space.pmr(), n, kInf);
  Addr frontier_addr = space.meta().Allocate(static_cast<std::uint64_t>(n) * 4);
  Addr next_addr = space.meta().Allocate(static_cast<std::uint64_t>(n) * 4);

  VertexId root = root_ < n ? root_ : 0;
  dist[root] = 0;
  std::vector<VertexId> frontier{root};
  std::vector<bool> queued(n, false);

  for (int iter = 0; iter < max_iters_ && !frontier.empty(); ++iter) {
    std::vector<VertexId> next;
    for (int t = 0; t < num_threads; ++t) {
      auto [begin, end] = ThreadChunk(frontier.size(), t, num_threads);
      for (std::size_t i = begin; i < end; ++i) {
        VertexId u = frontier[i];
        tb.Load(t, frontier_addr + i * 4, 4);          // meta: queue pop
        tb.Load(t, dist.AddrOf(u), 8, /*dep=*/true);   // property: my distance
        tb.Load(t, g.OffsetAddr(u), 8);                // structure: row ptr
        std::int64_t du = dist[u];
        EdgeId e = g.OffsetOf(u);
        auto neighbors = g.Neighbors(u);
        auto weights = g.Weights(u);
        for (std::size_t j = 0; j < neighbors.size(); ++j) {
          VertexId v = neighbors[j];
          tb.Load(t, g.NeighborAddr(e), 4);            // structure: neighbor
          tb.Load(t, g.WeightAddr(e), 4);              // structure: weight
          tb.Compute(t, 1, /*dep=*/true);              // nd = du + w
          tb.Compute(t, 1);                            // loop bookkeeping
          tb.Load(t, dist.AddrOf(v), 8, /*dep=*/true,
                  /*fusable_cmp=*/true);  // property: current (relax block)
          tb.Branch(t, /*dep=*/true);
          std::int64_t nd = du + weights[j];
          if (nd < dist[v]) {
            tb.Atomic(t, dist.AddrOf(v), hmc::AtomicOp::kCasEqual8, 8,
                      /*want_return=*/true, /*dep=*/true);
            tb.Branch(t, /*dep=*/true);  // CAS success?
            dist[v] = nd;
            if (!queued[v]) {
              queued[v] = true;
              tb.Store(t, next_addr + next.size() * 4, 4);  // meta: push
              next.push_back(v);
            }
          }
          ++e;
        }
      }
    }
    tb.Barrier();
    for (VertexId v : next) queued[v] = false;
    frontier.swap(next);
    std::swap(frontier_addr, next_addr);
  }

  dist_.assign(n, kInf);
  for (VertexId v = 0; v < n; ++v) dist_[v] = dist[v];
}

}  // namespace graphpim::workloads
