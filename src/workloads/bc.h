// Betweenness centrality (GraphBIG BC): Brandes' algorithm from a sample
// of source vertices.
//
// Not offloadable under base HMC 2.0 (Table III: floating-point add
// missing); with the Section III-C extension its backward-accumulation FP
// adds offload, but heavy centrality computation on thread-local (cache
// friendly, meta-region) data keeps the benefit small — and cache bypass of
// its reused property data can hurt (Figs 7, 14).
#ifndef GRAPHPIM_WORKLOADS_BC_H_
#define GRAPHPIM_WORKLOADS_BC_H_

#include <vector>

#include "workloads/workload.h"

namespace graphpim::workloads {

class BcWorkload : public Workload {
 public:
  explicit BcWorkload(int num_sources = 8) : num_sources_(num_sources) {}

  const WorkloadInfo& info() const override;
  void Generate(const graph::CsrGraph& g, graph::AddressSpace& space,
                TraceBuilder& tb) override;

  // Functional result: (partial, sampled-source) centrality per vertex.
  const std::vector<double>& centrality() const { return bc_; }

 private:
  int num_sources_;
  std::vector<double> bc_;
};

}  // namespace graphpim::workloads

#endif  // GRAPHPIM_WORKLOADS_BC_H_
