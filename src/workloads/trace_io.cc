#include "workloads/trace_io.h"

#include <cstdio>
#include <cstring>

#include "common/log.h"

namespace graphpim::workloads {

namespace {

constexpr char kMagic[8] = {'G', 'P', 'T', 'R', 'A', 'C', 'E', '1'};

// On-disk micro-op record: fixed layout independent of MicroOp's in-memory
// packing.
struct Record {
  std::uint64_t addr;
  std::uint8_t type;
  std::uint8_t comp;
  std::uint8_t aop;
  std::uint8_t size;
  std::uint8_t flags;
  std::uint8_t compute_lat;
  std::uint8_t pad[2];
};
static_assert(sizeof(Record) == 16);

}  // namespace

bool SaveTrace(const Trace& trace, const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) return false;
  bool ok = std::fwrite(kMagic, sizeof(kMagic), 1, f) == 1;
  std::uint64_t streams = trace.streams.size();
  ok = ok && std::fwrite(&streams, sizeof(streams), 1, f) == 1;
  for (const auto& s : trace.streams) {
    std::uint64_t n = s.size();
    ok = ok && std::fwrite(&n, sizeof(n), 1, f) == 1;
    for (const cpu::MicroOp& op : s) {
      Record r{};
      r.addr = op.addr;
      r.type = static_cast<std::uint8_t>(op.type);
      r.comp = static_cast<std::uint8_t>(op.comp);
      r.aop = static_cast<std::uint8_t>(op.aop);
      r.size = op.size;
      r.flags = op.flags;
      r.compute_lat = op.compute_lat;
      ok = ok && std::fwrite(&r, sizeof(r), 1, f) == 1;
      if (!ok) break;
    }
    if (!ok) break;
  }
  std::fclose(f);
  return ok;
}

bool LoadTrace(const std::string& path, Trace* out) {
  GP_CHECK(out != nullptr);
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return false;
  char magic[8];
  if (std::fread(magic, sizeof(magic), 1, f) != 1 ||
      std::memcmp(magic, kMagic, sizeof(kMagic)) != 0) {
    std::fclose(f);
    GP_FATAL("not a GraphPIM trace file: ", path);
  }
  std::uint64_t streams = 0;
  if (std::fread(&streams, sizeof(streams), 1, f) != 1 || streams > 4096) {
    std::fclose(f);
    GP_FATAL("corrupt trace header in ", path);
  }
  out->streams.assign(streams, {});
  for (auto& s : out->streams) {
    std::uint64_t n = 0;
    if (std::fread(&n, sizeof(n), 1, f) != 1) {
      std::fclose(f);
      GP_FATAL("truncated trace in ", path);
    }
    s.reserve(n);
    for (std::uint64_t i = 0; i < n; ++i) {
      Record r{};
      if (std::fread(&r, sizeof(r), 1, f) != 1) {
        std::fclose(f);
        GP_FATAL("truncated trace in ", path);
      }
      cpu::MicroOp op;
      op.addr = r.addr;
      op.type = static_cast<cpu::OpType>(r.type);
      op.comp = static_cast<DataComponent>(r.comp);
      op.aop = static_cast<hmc::AtomicOp>(r.aop);
      op.size = r.size;
      op.flags = r.flags;
      op.compute_lat = r.compute_lat;
      s.push_back(op);
    }
  }
  std::fclose(f);
  return true;
}

}  // namespace graphpim::workloads
