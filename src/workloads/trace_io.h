// Binary trace serialization: snapshot a generated trace to disk so large
// inputs are traced once and replayed across many machine-configuration
// sweeps (the usual trace-driven-simulator workflow).
#ifndef GRAPHPIM_WORKLOADS_TRACE_IO_H_
#define GRAPHPIM_WORKLOADS_TRACE_IO_H_

#include <string>

#include "workloads/trace.h"

namespace graphpim::workloads {

// Writes `trace` to `path`; returns false on I/O failure.
bool SaveTrace(const Trace& trace, const std::string& path);

// Loads a trace written by SaveTrace. Returns false on I/O failure;
// malformed content (bad magic/version/counts) is fatal.
bool LoadTrace(const std::string& path, Trace* out);

}  // namespace graphpim::workloads

#endif  // GRAPHPIM_WORKLOADS_TRACE_IO_H_
