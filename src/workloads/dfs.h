// Depth-first search (GraphBIG DFS).
//
// Offloadable (Table III): the visited flag is claimed with lock cmpxchg ->
// CAS-if-equal. The stack discipline creates long dependent chains
// (pop -> load -> CAS), giving the low ILP typical of the GT category.
//
// Parallelization: each thread runs DFS restricted to its own vertex range
// (cross-range neighbors are only inspected), the deterministic equivalent
// of work-partitioned parallel DFS.
#ifndef GRAPHPIM_WORKLOADS_DFS_H_
#define GRAPHPIM_WORKLOADS_DFS_H_

#include <cstdint>
#include <vector>

#include "workloads/workload.h"

namespace graphpim::workloads {

class DfsWorkload : public Workload {
 public:
  const WorkloadInfo& info() const override;
  void Generate(const graph::CsrGraph& g, graph::AddressSpace& space,
                TraceBuilder& tb) override;

  // Functional result: visit marks.
  const std::vector<bool>& visited() const { return visited_out_; }

 private:
  std::vector<bool> visited_out_;
};

}  // namespace graphpim::workloads

#endif  // GRAPHPIM_WORKLOADS_DFS_H_
