#include "workloads/dc.h"

#include "graph/property.h"

namespace graphpim::workloads {

const WorkloadInfo& DcWorkload::info() const {
  static const WorkloadInfo kInfo{
      "dc",
      "Degree Centrality",
      WorkloadCategory::kGraphTraversal,
      /*pim_applicable=*/true,
      /*missing_op=*/"",
      /*host_instr=*/"lock addw",
      /*pim_op=*/"Signed add",
      /*needs_fp_extension=*/false};
  return kInfo;
}

void DcWorkload::Generate(const graph::CsrGraph& g, graph::AddressSpace& space,
                          TraceBuilder& tb) {
  const VertexId n = g.num_vertices();
  const int num_threads = tb.num_threads();

  graph::PropertyArray<std::int64_t> centr(space.pmr(), n, 0);

  for (int t = 0; t < num_threads; ++t) {
    auto [begin, end] = ThreadChunk(n, t, num_threads);
    for (std::size_t uu = begin; uu < end; ++uu) {
      VertexId u = static_cast<VertexId>(uu);
      tb.Load(t, g.OffsetAddr(u), 8);  // structure: row ptr
      // Out-degree contribution: one atomic add of the full out degree.
      tb.Compute(t, 1, /*dep=*/true);
      tb.Atomic(t, centr.AddrOf(u), hmc::AtomicOp::kDualAdd8, 8,
                /*want_return=*/false, /*dep=*/true);
      centr[u] += g.OutDegree(u);
      // In-degree contributions: one atomic add per edge on the neighbor's
      // centrality — irregular, shared, no dependent consumer.
      EdgeId e = g.OffsetOf(u);
      for (VertexId v : g.Neighbors(u)) {
        tb.Load(t, g.NeighborAddr(e), 4);  // structure: neighbor id
        tb.Compute(t, 1, /*dep=*/true);    // property address generation
        tb.Compute(t, 1, /*dep=*/true);    // loop bookkeeping
        tb.Atomic(t, centr.AddrOf(v), hmc::AtomicOp::kDualAdd8, 8,
                  /*want_return=*/false, /*dep=*/true);
        centr[v] += 1;
        ++e;
      }
    }
  }
  tb.Barrier();

  centrality_.assign(n, 0);
  for (VertexId v = 0; v < n; ++v) centrality_[v] = centr[v];
}

}  // namespace graphpim::workloads
