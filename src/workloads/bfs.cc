#include "workloads/bfs.h"

#include "graph/property.h"

namespace graphpim::workloads {

const WorkloadInfo& BfsWorkload::info() const {
  static const WorkloadInfo kInfo{
      "bfs",
      "Breadth-first Search",
      WorkloadCategory::kGraphTraversal,
      /*pim_applicable=*/true,
      /*missing_op=*/"",
      /*host_instr=*/"lock cmpxchg",
      /*pim_op=*/"CAS if equal",
      /*needs_fp_extension=*/false};
  return kInfo;
}

void BfsWorkload::Generate(const graph::CsrGraph& g, graph::AddressSpace& space,
                           TraceBuilder& tb) {
  const VertexId n = g.num_vertices();
  const int num_threads = tb.num_threads();
  constexpr std::int64_t kUnvisited = -1;

  graph::PropertyArray<std::int64_t> depth(space.pmr(), n, kUnvisited);
  // Frontier queues live in the meta component (cache friendly).
  Addr frontier_addr = space.meta().Allocate(static_cast<std::uint64_t>(n) * 4);
  Addr next_addr = space.meta().Allocate(static_cast<std::uint64_t>(n) * 4);

  std::vector<VertexId> frontier{root_ < n ? root_ : 0};
  depth[frontier[0]] = 0;
  std::int64_t level = 0;

  while (!frontier.empty()) {
    std::vector<VertexId> next;
    for (int t = 0; t < num_threads; ++t) {
      auto [begin, end] = ThreadChunk(frontier.size(), t, num_threads);
      for (std::size_t i = begin; i < end; ++i) {
        VertexId u = frontier[i];
        if (!tb.AtCap()) {
          tb.Load(t, frontier_addr + i * 4, 4);       // meta: queue pop
          tb.Load(t, g.OffsetAddr(u), 8, /*dep=*/true);  // structure: row ptr
        }
        EdgeId e = g.OffsetOf(u);
        for (VertexId v : g.Neighbors(u)) {
          // One inline cap check per edge instead of five no-op emitter
          // calls: a capped walk (the common case for sampled big graphs)
          // drops to the pure algorithmic relax. The emitters re-check
          // individually, so hitting the cap mid-group emits the same
          // partial sequence as before.
          if (!tb.AtCap()) {
            tb.Load(t, g.NeighborAddr(e), 4);  // structure: neighbor id
            tb.Compute(t, 1, /*dep=*/true);    // property address generation
            tb.Compute(t, 1);                  // loop bookkeeping
            // Fig 3: every neighbor's depth is claimed with one CAS — the
            // visited check IS the compare half of the atomic.
            tb.Atomic(t, depth.AddrOf(v), hmc::AtomicOp::kCasEqual8, 8,
                      /*want_return=*/true, /*dep=*/true);
            tb.Branch(t, /*dep=*/true);  // CAS success?
          }
          if (depth[v] == kUnvisited) {
            depth[v] = level + 1;
            tb.Store(t, next_addr + next.size() * 4, 4);  // meta: push
            next.push_back(v);
          }
          ++e;
        }
      }
    }
    tb.Barrier();
    frontier.swap(next);
    std::swap(frontier_addr, next_addr);
    ++level;
  }

  depths_.assign(n, kUnvisited);
  for (VertexId v = 0; v < n; ++v) depths_[v] = depth[v];
}

}  // namespace graphpim::workloads
