#include "workloads/fusion.h"

namespace graphpim::workloads {

using cpu::MicroOp;
using cpu::OpType;

namespace {

bool IsFusableLoad(const MicroOp& op, const graph::AddressSpace& space) {
  return op.type == OpType::kLoad && (op.flags & cpu::kFlagFusableCmp) != 0 &&
         space.ComponentOf(op.addr) == DataComponent::kProperty;
}

bool IsDepBranch(const MicroOp& op) {
  return op.type == OpType::kBranch && op.DepPrev();
}

bool IsCasEqualTo(const MicroOp& op, Addr addr) {
  return op.type == OpType::kAtomic && op.aop == hmc::AtomicOp::kCasEqual8 &&
         op.addr == addr;
}

}  // namespace

Trace FuseComparisonBlocks(const Trace& trace, const graph::AddressSpace& space,
                           FusionStats* stats) {
  FusionStats local;
  Trace out;
  out.streams.reserve(trace.streams.size());
  for (const auto& stream : trace.streams) {
    cpu::UopStream s;
    s.reserve(stream.size());
    std::size_t i = 0;
    while (i < stream.size()) {
      // Pattern: property load ; dependent branch ; [CAS same addr ; branch]
      if (i + 1 < stream.size() && IsFusableLoad(stream[i], space) &&
          IsDepBranch(stream[i + 1])) {
        const MicroOp load = stream[i];
        bool with_cas = i + 3 < stream.size() &&
                        IsCasEqualTo(stream[i + 2], load.addr) &&
                        IsDepBranch(stream[i + 3]);
        MicroOp fused = load;
        fused.type = OpType::kAtomic;
        fused.aop = hmc::AtomicOp::kCasLess16;
        fused.flags |= cpu::kFlagWantReturn;  // the branch consumes the flag
        s.push_back(fused);
        // Keep one consuming branch (the block's control decision).
        s.push_back(stream[i + 1]);
        if (with_cas) {
          ++local.fused_with_cas;
          local.ops_removed += 2;
          i += 4;
        } else {
          ++local.fused_compare_only;
          i += 2;
        }
        continue;
      }
      s.push_back(stream[i]);
      ++i;
    }
    out.streams.push_back(std::move(s));
  }
  if (stats != nullptr) *stats = local;
  return out;
}

}  // namespace graphpim::workloads
