// k-core decomposition (GraphBIG kCore): iterative peeling.
//
// Offloading target (Table II): lock subw -> signed add (negative) on the
// effective-degree property. Most execution time scans inactive vertices
// (property loads + branches), so the atomic fraction is small and the
// GraphPIM benefit is limited (Section IV-B1).
#ifndef GRAPHPIM_WORKLOADS_KCORE_H_
#define GRAPHPIM_WORKLOADS_KCORE_H_

#include <cstdint>
#include <vector>

#include "workloads/workload.h"

namespace graphpim::workloads {

class KcoreWorkload : public Workload {
 public:
  explicit KcoreWorkload(int k = 3, int max_rounds = 24)
      : k_(k), max_rounds_(max_rounds) {}

  const WorkloadInfo& info() const override;
  void Generate(const graph::CsrGraph& g, graph::AddressSpace& space,
                TraceBuilder& tb) override;

  // Functional result: true if the vertex survives in the k-core.
  const std::vector<bool>& in_core() const { return in_core_; }

 private:
  int k_;
  int max_rounds_;
  std::vector<bool> in_core_;
};

}  // namespace graphpim::workloads

#endif  // GRAPHPIM_WORKLOADS_KCORE_H_
