#include "workloads/tc.h"

#include <algorithm>

#include "graph/property.h"

namespace graphpim::workloads {

const WorkloadInfo& TcWorkload::info() const {
  static const WorkloadInfo kInfo{
      "tc",
      "Triangle Count",
      WorkloadCategory::kRichProperty,
      /*pim_applicable=*/true,
      /*missing_op=*/"",
      /*host_instr=*/"lock add",
      /*pim_op=*/"Signed add",
      /*needs_fp_extension=*/false};
  return kInfo;
}

void TcWorkload::Generate(const graph::CsrGraph& g, graph::AddressSpace& space,
                          TraceBuilder& tb) {
  const VertexId n = g.num_vertices();
  const int num_threads = tb.num_threads();

  // Per-vertex triangle counts plus a global accumulator, all properties.
  graph::PropertyArray<std::int64_t> count(space.pmr(), n, 0);
  graph::PropertyArray<std::int64_t> total(space.pmr(), 1, 0);

  triangles_ = 0;
  for (int t = 0; t < num_threads; ++t) {
    auto [begin, end] = ThreadChunk(n, t, num_threads);
    for (std::size_t uu = begin; uu < end; ++uu) {
      VertexId u = static_cast<VertexId>(uu);
      tb.Load(t, g.OffsetAddr(u), 8);
      auto nu = g.Neighbors(u);
      std::size_t du = std::min<std::size_t>(nu.size(), max_list_);
      std::int64_t local = 0;
      EdgeId eu = g.OffsetOf(u);
      for (std::size_t i = 0; i < du; ++i) {
        VertexId v = nu[i];
        tb.Load(t, g.NeighborAddr(eu + i), 4);
        if (v <= u) continue;
        tb.Load(t, g.OffsetAddr(v), 4, /*dep=*/true);
        auto nv = g.Neighbors(v);
        std::size_t dv = std::min<std::size_t>(nv.size(), max_list_);
        // Two-pointer merge intersection over sorted lists.
        std::size_t a = 0;
        std::size_t b = 0;
        EdgeId ev = g.OffsetOf(v);
        while (a < du && b < dv) {
          tb.Load(t, g.NeighborAddr(eu + a), 4);
          tb.Load(t, g.NeighborAddr(ev + b), 4);
          tb.Compute(t, 1, /*dep=*/true);
          tb.Branch(t, /*dep=*/true);
          if (nu[a] == nv[b]) {
            ++local;
            ++a;
            ++b;
          } else if (nu[a] < nv[b]) {
            ++a;
          } else {
            ++b;
          }
        }
      }
      if (local != 0) {
        // Commit the per-vertex result and the shared total.
        tb.Store(t, count.AddrOf(u), 8);
        count[u] = local;
        tb.Atomic(t, total.AddrOf(0), hmc::AtomicOp::kDualAdd8, 8,
                  /*want_return=*/false, /*dep=*/true);
        total[0] += local;
      }
    }
  }
  tb.Barrier();
  triangles_ = static_cast<std::uint64_t>(total[0]);
}

}  // namespace graphpim::workloads
