// Trace recording: workloads execute functionally while appending the
// per-thread micro-op streams replayed by the timing model.
//
// The builder classifies each memory address into its data component using
// the framework's address space, samples branch-misprediction outcomes
// deterministically per thread (so every machine configuration replays an
// identical stream), and supports an op cap for sampled simulation of large
// inputs.
#ifndef GRAPHPIM_WORKLOADS_TRACE_H_
#define GRAPHPIM_WORKLOADS_TRACE_H_

#include <cstdint>
#include <vector>

#include "common/random.h"
#include "common/types.h"
#include "cpu/uop.h"
#include "cpu/uop_stream.h"
#include "graph/region.h"

namespace graphpim::workloads {

// The product: one micro-op stream per hardware thread (== core), stored
// as tiled SoA segments (cpu::UopStream, DESIGN.md §15).
struct Trace {
  std::vector<cpu::UopStream> streams;

  std::uint64_t TotalOps() const {
    std::uint64_t n = 0;
    for (const auto& s : streams) n += s.size();
    return n;
  }

  // Bytes resident across all streams (tiles + spines); surfaces in the
  // report as trace.peak_bytes.
  std::uint64_t BytesUsed() const {
    std::uint64_t n = 0;
    for (const auto& s : streams) n += s.BytesUsed();
    return n;
  }
};

class TraceBuilder {
 public:
  TraceBuilder(int num_threads, const graph::AddressSpace* space,
               double mispredict_rate = 0.06, std::uint64_t seed = 0x5eed);

  int num_threads() const { return static_cast<int>(trace_.streams.size()); }

  // Limits the total recorded ops (sampling large runs); 0 = unlimited.
  // Also pre-reserves each stream's tile spine for its share of the cap,
  // so Push never reallocates anything but fresh 14KB tiles.
  void SetOpCap(std::uint64_t cap);
  bool Capped() const { return capped_; }

  // True if `n` more ops fit under the cap. Persist-mode workloads check
  // this before an update block so the cap never truncates a block halfway
  // (a half-emitted flush/fence sequence would read as a persist-ordering
  // bug that the workload does not have).
  bool HasRoom(std::uint64_t n) const {
    return op_cap_ == 0 || total_ops_ + n <= op_cap_;
  }

  // Cap test with the capped_ side effect; emitters bail out on this
  // before building an op, so a capped generation walk (which still has to
  // traverse the whole graph for its algorithmic state) stops paying for
  // address classification and op construction it would only throw away.
  bool AtCap() {
    if (op_cap_ != 0 && total_ops_ >= op_cap_) {
      capped_ = true;
      return true;
    }
    return false;
  }

  // --- op emitters (thread `t`) -------------------------------------------
  void Compute(int t, int lat_cycles = 1, bool dep = false, bool fp = false);
  void Branch(int t, bool dep = true);
  void Load(int t, Addr addr, std::uint8_t size, bool dep = false,
            bool fusable_cmp = false);
  void Store(int t, Addr addr, std::uint8_t size, bool dep = false);
  void Atomic(int t, Addr addr, hmc::AtomicOp aop, std::uint8_t size,
              bool want_return, bool dep = false);

  // Persistency ops (DESIGN.md §14); only persist-mode workloads emit them.
  // Flush writes back addr's 64B line (clwb); Fence is the persist barrier
  // draining every prior flush of the thread (sfence).
  void Flush(int t, Addr addr, bool dep = false);
  void Fence(int t, bool dep = true);

  // PMR (property-component) stores recorded so far for thread `t` — the
  // ordinal the persist domain assigns the NEXT PMR store of `t`. Workloads
  // use it to name payload/publish stores in UpdateRecords, and to detect
  // op-cap truncation (an update whose stores were dropped must not be
  // recorded).
  std::uint64_t PmrStoreCount(int t) const {
    return pmr_stores_[static_cast<std::size_t>(t)];
  }

  // Appends a barrier to every thread (superstep boundary).
  void Barrier();

  // Takes the finished trace (builder is left empty).
  Trace Take();

  std::uint64_t total_ops() const { return total_ops_; }

 private:
  void Push(int t, const cpu::MicroOp& op);

  Trace trace_;
  const graph::AddressSpace* space_;
  double mispredict_rate_;
  std::vector<Rng> rngs_;  // one per thread: interleaving-independent
  std::vector<std::uint64_t> pmr_stores_;  // per-thread PMR-store ordinals
  std::uint64_t op_cap_ = 0;
  std::uint64_t total_ops_ = 0;
  std::uint64_t barrier_id_ = 0;
  bool capped_ = false;
};

// Splits `total` items into `num_threads` nearly equal chunks; returns the
// [begin, end) range owned by `t`.
std::pair<std::size_t, std::size_t> ThreadChunk(std::size_t total, int t,
                                                int num_threads);

// Returns a copy of `trace` with every atomic op replaced by a plain load +
// store to the same address — the paper's Fig 4 methodology ("running the
// benchmarks while including/excluding the atomic operations on the graph
// property"). Also used to attribute atomic time by ablation (Fig 9).
Trace ReplaceAtomicsWithPlain(const Trace& trace);

}  // namespace graphpim::workloads

#endif  // GRAPHPIM_WORKLOADS_TRACE_H_
