// PageRank (GraphBIG PRank), push-style with per-edge atomic FP adds.
//
// Not offloadable under base HMC 2.0 (Table III: floating-point add
// missing); offloadable with the Section III-C FP extension, where it shows
// the paper's largest speedup (2.4x, Fig 7).
#ifndef GRAPHPIM_WORKLOADS_PRANK_H_
#define GRAPHPIM_WORKLOADS_PRANK_H_

#include <vector>

#include "workloads/workload.h"

namespace graphpim::workloads {

class PrankWorkload : public Workload {
 public:
  explicit PrankWorkload(int iters = 3, double damping = 0.85)
      : iters_(iters), damping_(damping) {}

  const WorkloadInfo& info() const override;
  void Generate(const graph::CsrGraph& g, graph::AddressSpace& space,
                TraceBuilder& tb) override;

  // Functional result: rank per vertex after `iters` iterations.
  const std::vector<double>& ranks() const { return ranks_; }

 private:
  int iters_;
  double damping_;
  std::vector<double> ranks_;
};

}  // namespace graphpim::workloads

#endif  // GRAPHPIM_WORKLOADS_PRANK_H_
