#include "workloads/kcore.h"

#include "graph/property.h"

namespace graphpim::workloads {

const WorkloadInfo& KcoreWorkload::info() const {
  static const WorkloadInfo kInfo{
      "kcore",
      "kCore Decomposition",
      WorkloadCategory::kGraphTraversal,
      /*pim_applicable=*/true,
      /*missing_op=*/"",
      /*host_instr=*/"lock subw",
      /*pim_op=*/"Signed add",
      /*needs_fp_extension=*/false};
  return kInfo;
}

void KcoreWorkload::Generate(const graph::CsrGraph& g, graph::AddressSpace& space,
                             TraceBuilder& tb) {
  const VertexId n = g.num_vertices();
  const int num_threads = tb.num_threads();
  const std::int64_t k = k_;

  // Effective degree and active flag are both graph properties.
  graph::PropertyArray<std::int64_t> deg(space.pmr(), n, 0);
  graph::PropertyArray<std::int64_t> active(space.pmr(), n, 1);

  // Initialization pass: effective degree = out degree.
  for (int t = 0; t < num_threads; ++t) {
    auto [begin, end] = ThreadChunk(n, t, num_threads);
    for (std::size_t uu = begin; uu < end; ++uu) {
      VertexId u = static_cast<VertexId>(uu);
      tb.Load(t, g.OffsetAddr(u), 8);
      tb.Compute(t, 1, /*dep=*/true);
      tb.Store(t, deg.AddrOf(u), 8, /*dep=*/true);
      deg[u] = g.OutDegree(u);
    }
  }
  tb.Barrier();

  bool changed = true;
  for (int round = 0; round < max_rounds_ && changed; ++round) {
    changed = false;
    for (int t = 0; t < num_threads; ++t) {
      auto [begin, end] = ThreadChunk(n, t, num_threads);
      for (std::size_t uu = begin; uu < end; ++uu) {
        VertexId u = static_cast<VertexId>(uu);
        // Check phase: this is where kCore spends its time — scanning
        // (mostly inactive) vertices.
        tb.Load(t, active.AddrOf(u), 8);              // property: active flag
        tb.Branch(t, /*dep=*/true);
        if (active[u] == 0) continue;
        tb.Load(t, deg.AddrOf(u), 8);                 // property: degree
        tb.Branch(t, /*dep=*/true);
        if (deg[u] >= k) continue;
        // Peel the vertex.
        active[u] = 0;
        changed = true;
        tb.Store(t, active.AddrOf(u), 8);
        tb.Load(t, g.OffsetAddr(u), 8);
        EdgeId e = g.OffsetOf(u);
        for (VertexId v : g.Neighbors(u)) {
          tb.Load(t, g.NeighborAddr(e), 4);
          tb.Atomic(t, deg.AddrOf(v), hmc::AtomicOp::kDualAdd8, 8,
                    /*want_return=*/false, /*dep=*/true);  // lock subw
          deg[v] -= 1;
          ++e;
        }
      }
    }
    tb.Barrier();
  }

  in_core_.assign(n, false);
  for (VertexId v = 0; v < n; ++v) in_core_[v] = active[v] != 0;
}

}  // namespace graphpim::workloads
