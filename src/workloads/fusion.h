// Instruction-block fusion (Section III-B, "Offloading Target").
//
// Some PIM-atomic operations (CAS-if-greater, CAS-if-less) have no single
// host-instruction equivalent: compilers emit a small block — load the
// property, compare, branch, then a CAS — instead. The paper proposes that
// "the host architecture may incorporate a mechanism to identify such
// small instruction blocks that can translate into the PIM-Atomic
// operations"; the identified block offloads as ONE PIM command.
//
// FuseComparisonBlocks() implements that mechanism as a trace pass: a
// property load followed by its dependent compare-branch and (optionally)
// a CAS-if-equal retry to the same address becomes a single CAS-if-less
// PIM atomic plus the consuming branch. SSSP's relax and CComp's min-label
// update match the pattern; BFS's plain CAS does not need it.
#ifndef GRAPHPIM_WORKLOADS_FUSION_H_
#define GRAPHPIM_WORKLOADS_FUSION_H_

#include "graph/region.h"
#include "workloads/trace.h"

namespace graphpim::workloads {

struct FusionStats {
  std::uint64_t fused_with_cas = 0;     // load+branch+CAS+branch -> CAS-less+branch
  std::uint64_t fused_compare_only = 0; // load+branch (failed compare) -> CAS-less+branch
  std::uint64_t ops_removed = 0;
};

// Returns a copy of `trace` with comparison blocks on PMR addresses fused
// into kCasLess16 PIM atomics. `space` provides the PMR classification.
Trace FuseComparisonBlocks(const Trace& trace, const graph::AddressSpace& space,
                           FusionStats* stats = nullptr);

}  // namespace graphpim::workloads

#endif  // GRAPHPIM_WORKLOADS_FUSION_H_
