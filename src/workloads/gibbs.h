// Gibbs inference (GraphBIG GibbsInf): Rich Property category.
//
// Not offloadable (Table III: computation intensive): each vertex carries a
// stochastic table and the work is numeric sampling within the property,
// not simple RMW updates. Behaves like a conventional compute-bound
// application (Fig 1: RP shows the highest IPC).
#ifndef GRAPHPIM_WORKLOADS_GIBBS_H_
#define GRAPHPIM_WORKLOADS_GIBBS_H_

#include <vector>

#include "workloads/workload.h"

namespace graphpim::workloads {

class GibbsWorkload : public Workload {
 public:
  explicit GibbsWorkload(int iters = 2, int table_entries = 4)
      : iters_(iters), table_entries_(table_entries) {}

  const WorkloadInfo& info() const override;
  void Generate(const graph::CsrGraph& g, graph::AddressSpace& space,
                TraceBuilder& tb) override;

  // Functional result: final sampled state per vertex.
  const std::vector<double>& states() const { return states_; }

 private:
  int iters_;
  int table_entries_;
  std::vector<double> states_;
};

}  // namespace graphpim::workloads

#endif  // GRAPHPIM_WORKLOADS_GIBBS_H_
