#include "workloads/dynamic.h"

#include "common/random.h"
#include "graph/property.h"

namespace graphpim::workloads {

namespace {

constexpr std::uint32_t kNumLocks = 1024;

}  // namespace

const WorkloadInfo& GconsWorkload::info() const {
  static const WorkloadInfo kInfo{
      "gcons",
      "Graph Construction",
      WorkloadCategory::kDynamicGraph,
      /*pim_applicable=*/false,
      /*missing_op=*/"Complex operation",
      /*host_instr=*/"-",
      /*pim_op=*/"-",
      /*needs_fp_extension=*/false};
  return kInfo;
}

void GconsWorkload::Generate(const graph::CsrGraph& g, graph::AddressSpace& space,
                             TraceBuilder& tb) {
  const VertexId n = g.num_vertices();
  const int num_threads = tb.num_threads();

  // Dynamic adjacency: per-vertex head pointer (property) + node pool
  // (property) + hashed bucket locks (meta).
  graph::PropertyArray<std::int64_t> head(space.pmr(), n, 0);
  Addr node_pool = space.pmr().Allocate(g.num_edges() * 16 + 16);
  Addr locks = space.meta().Allocate(kNumLocks * 8);

  inserted_ = 0;
  std::uint64_t next_node = 0;
  for (int t = 0; t < num_threads; ++t) {
    auto [begin, end] = ThreadChunk(n, t, num_threads);
    for (std::size_t uu = begin; uu < end; ++uu) {
      VertexId u = static_cast<VertexId>(uu);
      tb.Load(t, g.OffsetAddr(u), 8);  // structure: source edge stream
      EdgeId e = g.OffsetOf(u);
      for ([[maybe_unused]] VertexId v : g.Neighbors(u)) {
        tb.Load(t, g.NeighborAddr(e), 4);
        // Bucket lock (meta region: not offloadable by design).
        tb.Atomic(t, locks + (u % kNumLocks) * 8, hmc::AtomicOp::kCasEqual8, 8,
                  /*want_return=*/true, /*dep=*/true);
        tb.Branch(t, /*dep=*/true);
        // Pointer-chase to the list head and link a new node.
        tb.Load(t, head.AddrOf(u), 8, /*dep=*/true);
        tb.Store(t, node_pool + next_node * 16, 16, /*dep=*/true);
        tb.Store(t, head.AddrOf(u), 8, /*dep=*/true);
        head[u] = static_cast<std::int64_t>(next_node);
        // Unlock.
        tb.Store(t, locks + (u % kNumLocks) * 8, 8);
        ++next_node;
        ++inserted_;
        ++e;
      }
    }
  }
  tb.Barrier();
}

const WorkloadInfo& GupWorkload::info() const {
  static const WorkloadInfo kInfo{
      "gup",
      "Graph Update",
      WorkloadCategory::kDynamicGraph,
      /*pim_applicable=*/false,
      /*missing_op=*/"Complex operation",
      /*host_instr=*/"-",
      /*pim_op=*/"-",
      /*needs_fp_extension=*/false};
  return kInfo;
}

void GupWorkload::Generate(const graph::CsrGraph& g, graph::AddressSpace& space,
                           TraceBuilder& tb) {
  const VertexId n = g.num_vertices();
  const int num_threads = tb.num_threads();

  graph::PropertyArray<std::int64_t> head(space.pmr(), n, -1);
  Addr node_pool = space.pmr().Allocate(g.num_edges() * 16 + 16);
  Addr locks = space.meta().Allocate(kNumLocks * 8);
  Rng rng(0xD06);

  updated_ = 0;
  for (int t = 0; t < num_threads; ++t) {
    auto [begin, end] = ThreadChunk(n, t, num_threads);
    for (std::size_t uu = begin; uu < end; ++uu) {
      VertexId u = static_cast<VertexId>(uu);
      if (!rng.NextBool(update_fraction_)) continue;
      // Lock, then walk the adjacency chain (dependent loads), rewrite one
      // node, unlock.
      tb.Atomic(t, locks + (u % kNumLocks) * 8, hmc::AtomicOp::kCasEqual8, 8,
                /*want_return=*/true, /*dep=*/true);
      tb.Branch(t, /*dep=*/true);
      tb.Load(t, head.AddrOf(u), 8, /*dep=*/true);
      std::uint32_t chain = 1 + g.OutDegree(u) / 4;
      for (std::uint32_t c = 0; c < chain; ++c) {
        tb.Load(t, node_pool + ((static_cast<std::uint64_t>(u) * 7 + c) %
                                (g.num_edges() + 1)) * 16, 16, /*dep=*/true);
        tb.Branch(t, /*dep=*/true);
      }
      tb.Store(t, node_pool + (static_cast<std::uint64_t>(u) %
                               (g.num_edges() + 1)) * 16, 16, /*dep=*/true);
      tb.Store(t, locks + (u % kNumLocks) * 8, 8);
      ++updated_;
    }
  }
  tb.Barrier();
}

const WorkloadInfo& TmorphWorkload::info() const {
  static const WorkloadInfo kInfo{
      "tmorph",
      "Topology Morphing",
      WorkloadCategory::kDynamicGraph,
      /*pim_applicable=*/false,
      /*missing_op=*/"Complex operation",
      /*host_instr=*/"-",
      /*pim_op=*/"-",
      /*needs_fp_extension=*/false};
  return kInfo;
}

void TmorphWorkload::Generate(const graph::CsrGraph& g, graph::AddressSpace& space,
                              TraceBuilder& tb) {
  const VertexId n = g.num_vertices();
  const int num_threads = tb.num_threads();

  // Morphed copy of the topology plus an allocation cursor (meta).
  Addr new_struct = space.pmr().Allocate(g.num_edges() * 8 + 8);
  Addr alloc_cursor = space.meta().Allocate(64);

  moved_ = 0;
  for (int t = 0; t < num_threads; ++t) {
    auto [begin, end] = ThreadChunk(n, t, num_threads);
    for (std::size_t uu = begin; uu < end; ++uu) {
      VertexId u = static_cast<VertexId>(uu);
      tb.Load(t, g.OffsetAddr(u), 8);
      // Reserve space in the morphed structure (meta atomic: host side).
      tb.Atomic(t, alloc_cursor, hmc::AtomicOp::kDualAdd8, 8,
                /*want_return=*/true, /*dep=*/true);
      EdgeId e = g.OffsetOf(u);
      for ([[maybe_unused]] VertexId v : g.Neighbors(u)) {
        tb.Load(t, g.NeighborAddr(e), 4);
        tb.Compute(t, 1, /*dep=*/true);  // remap vertex id
        tb.Store(t, new_struct + (e % (g.num_edges() + 1)) * 8, 8, /*dep=*/true);
        ++moved_;
        ++e;
      }
    }
  }
  tb.Barrier();
}

}  // namespace graphpim::workloads
