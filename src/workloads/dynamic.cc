#include "workloads/dynamic.h"

#include "common/random.h"
#include "graph/property.h"

namespace graphpim::workloads {

namespace {

constexpr std::uint32_t kNumLocks = 1024;

constexpr Addr LineOf(Addr a) { return a & ~static_cast<Addr>(63); }

}  // namespace

const WorkloadInfo& GconsWorkload::info() const {
  static const WorkloadInfo kInfo{
      "gcons",
      "Graph Construction",
      WorkloadCategory::kDynamicGraph,
      /*pim_applicable=*/false,
      /*missing_op=*/"Complex operation",
      /*host_instr=*/"-",
      /*pim_op=*/"-",
      /*needs_fp_extension=*/false};
  return kInfo;
}

void GconsWorkload::Generate(const graph::CsrGraph& g, graph::AddressSpace& space,
                             TraceBuilder& tb) {
  const VertexId n = g.num_vertices();
  const int num_threads = tb.num_threads();

  // Dynamic adjacency: per-vertex head pointer (property) + node pool
  // (property) + hashed bucket locks (meta).
  graph::PropertyArray<std::int64_t> head(space.pmr(), n, 0);
  Addr node_pool = space.pmr().Allocate(g.num_edges() * 16 + 16);
  Addr locks = space.meta().Allocate(kNumLocks * 8);

  inserted_ = 0;
  std::uint64_t next_node = 0;
  for (int t = 0; t < num_threads; ++t) {
    auto [begin, end] = ThreadChunk(n, t, num_threads);
    for (std::size_t uu = begin; uu < end; ++uu) {
      VertexId u = static_cast<VertexId>(uu);
      tb.Load(t, g.OffsetAddr(u), 8);  // structure: source edge stream
      EdgeId e = g.OffsetOf(u);
      for ([[maybe_unused]] VertexId v : g.Neighbors(u)) {
        tb.Load(t, g.NeighborAddr(e), 4);
        // Bucket lock (meta region: not offloadable by design).
        tb.Atomic(t, locks + (u % kNumLocks) * 8, hmc::AtomicOp::kCasEqual8, 8,
                  /*want_return=*/true, /*dep=*/true);
        tb.Branch(t, /*dep=*/true);
        // Pointer-chase to the list head and link a new node.
        tb.Load(t, head.AddrOf(u), 8, /*dep=*/true);
        tb.Store(t, node_pool + next_node * 16, 16, /*dep=*/true);
        tb.Store(t, head.AddrOf(u), 8, /*dep=*/true);
        head[u] = static_cast<std::int64_t>(next_node);
        // Unlock.
        tb.Store(t, locks + (u % kNumLocks) * 8, 8);
        ++next_node;
        ++inserted_;
        ++e;
      }
    }
  }
  tb.Barrier();
}

const WorkloadInfo& GupWorkload::info() const {
  static const WorkloadInfo kInfo{
      "gup",
      "Graph Update",
      WorkloadCategory::kDynamicGraph,
      /*pim_applicable=*/false,
      /*missing_op=*/"Complex operation",
      /*host_instr=*/"-",
      /*pim_op=*/"-",
      /*needs_fp_extension=*/false};
  return kInfo;
}

void GupWorkload::Generate(const graph::CsrGraph& g, graph::AddressSpace& space,
                           TraceBuilder& tb) {
  const VertexId n = g.num_vertices();
  const int num_threads = tb.num_threads();

  graph::PropertyArray<std::int64_t> head(space.pmr(), n, -1);
  Addr node_pool = space.pmr().Allocate(g.num_edges() * 16 + 16);
  Addr locks = space.meta().Allocate(kNumLocks * 8);
  Rng rng(0xD06);

  updated_ = 0;
  updates_ = pmem::UpdateLog{};
  const bool persist = mode_ != pmem::PersistMode::kOff;
  if (persist) updates_.invariant = "all-or-nothing";
  for (int t = 0; t < num_threads; ++t) {
    auto [begin, end] = ThreadChunk(n, t, num_threads);
    for (std::size_t uu = begin; uu < end; ++uu) {
      VertexId u = static_cast<VertexId>(uu);
      if (!rng.NextBool(update_fraction_)) continue;
      const std::uint32_t chain = 1 + g.OutDegree(u) / 4;
      if (!persist) {
        // Lock, then walk the adjacency chain (dependent loads), rewrite one
        // node, unlock.
        tb.Atomic(t, locks + (u % kNumLocks) * 8, hmc::AtomicOp::kCasEqual8, 8,
                  /*want_return=*/true, /*dep=*/true);
        tb.Branch(t, /*dep=*/true);
        tb.Load(t, head.AddrOf(u), 8, /*dep=*/true);
        for (std::uint32_t c = 0; c < chain; ++c) {
          tb.Load(t, node_pool + ((static_cast<std::uint64_t>(u) * 7 + c) %
                                  (g.num_edges() + 1)) * 16, 16, /*dep=*/true);
          tb.Branch(t, /*dep=*/true);
        }
        tb.Store(t, node_pool + (static_cast<std::uint64_t>(u) %
                                 (g.num_edges() + 1)) * 16, 16, /*dep=*/true);
        tb.Store(t, locks + (u % kNumLocks) * 8, 8);
        ++updated_;
        continue;
      }

      // Persist mode: the rewrite becomes one crash-consistent update —
      // 16B payload store into the node pool, flush+fence, then an 8B
      // publish store to the head pointer (the commit record), flush+fence.
      // The mutants elide the payload fence / double the payload flush.
      const Addr payload = node_pool + (static_cast<std::uint64_t>(u) %
                                        (g.num_edges() + 1)) * 16;
      const Addr publish = head.AddrOf(u);
      const std::uint64_t block_ops =
          3 + 2ull * chain + 1 +
          (mode_ == pmem::PersistMode::kRedundantFlush ? 2 : 1) +
          (mode_ == pmem::PersistMode::kMissingFence ? 0 : 1) + 1 + 1 + 1 + 1;
      // Never let the op cap cut an update block halfway: a half-emitted
      // flush/fence sequence would read as a persist bug that isn't there.
      if (!tb.HasRoom(block_ops)) break;
      tb.Atomic(t, locks + (u % kNumLocks) * 8, hmc::AtomicOp::kCasEqual8, 8,
                /*want_return=*/true, /*dep=*/true);
      tb.Branch(t, /*dep=*/true);
      tb.Load(t, publish, 8, /*dep=*/true);
      for (std::uint32_t c = 0; c < chain; ++c) {
        tb.Load(t, node_pool + ((static_cast<std::uint64_t>(u) * 7 + c) %
                                (g.num_edges() + 1)) * 16, 16, /*dep=*/true);
        tb.Branch(t, /*dep=*/true);
      }
      const std::uint64_t ord0 = tb.PmrStoreCount(t);
      tb.Store(t, payload, 16, /*dep=*/true);
      tb.Flush(t, payload, /*dep=*/true);
      if (mode_ == pmem::PersistMode::kRedundantFlush) {
        tb.Flush(t, payload, /*dep=*/true);
      }
      if (mode_ != pmem::PersistMode::kMissingFence) tb.Fence(t);
      tb.Store(t, publish, 8, /*dep=*/true);
      tb.Flush(t, publish, /*dep=*/true);
      tb.Fence(t);
      tb.Store(t, locks + (u % kNumLocks) * 8, 8);
      if (tb.PmrStoreCount(t) == ord0 + 2) {
        updates_.updates.push_back({t, {ord0}, ord0 + 1});
      }
      ++updated_;
    }
  }
  tb.Barrier();
}

const WorkloadInfo& TmorphWorkload::info() const {
  static const WorkloadInfo kInfo{
      "tmorph",
      "Topology Morphing",
      WorkloadCategory::kDynamicGraph,
      /*pim_applicable=*/false,
      /*missing_op=*/"Complex operation",
      /*host_instr=*/"-",
      /*pim_op=*/"-",
      /*needs_fp_extension=*/false};
  return kInfo;
}

void TmorphWorkload::Generate(const graph::CsrGraph& g, graph::AddressSpace& space,
                              TraceBuilder& tb) {
  const VertexId n = g.num_vertices();
  const int num_threads = tb.num_threads();

  // Morphed copy of the topology plus an allocation cursor (meta). Persist
  // mode adds a per-vertex commit-record array (PMR) the updates publish
  // through.
  Addr new_struct = space.pmr().Allocate(g.num_edges() * 8 + 8);
  const bool persist = mode_ != pmem::PersistMode::kOff;
  Addr commit = persist ? space.pmr().Allocate(
                              static_cast<std::uint64_t>(n) * 8 + 8)
                        : 0;
  Addr alloc_cursor = space.meta().Allocate(64);

  moved_ = 0;
  updates_ = pmem::UpdateLog{};
  if (persist) updates_.invariant = "all-or-nothing";
  for (int t = 0; t < num_threads; ++t) {
    auto [begin, end] = ThreadChunk(n, t, num_threads);
    for (std::size_t uu = begin; uu < end; ++uu) {
      VertexId u = static_cast<VertexId>(uu);
      const std::uint32_t deg = g.OutDegree(u);
      if (persist) {
        // Whole-block headroom check (see GupWorkload): worst case is one
        // flush per edge store plus the mutant's extra flush.
        const std::uint64_t block_ops = 2 + 3ull * deg + deg + 1 + 1 + 3;
        if (!tb.HasRoom(block_ops)) break;
      }
      tb.Load(t, g.OffsetAddr(u), 8);
      // Reserve space in the morphed structure (meta atomic: host side).
      tb.Atomic(t, alloc_cursor, hmc::AtomicOp::kDualAdd8, 8,
                /*want_return=*/true, /*dep=*/true);
      const std::uint64_t ord0 = persist ? tb.PmrStoreCount(t) : 0;
      std::vector<Addr> lines;  // distinct 64B lines the edge stores touch
      EdgeId e = g.OffsetOf(u);
      for ([[maybe_unused]] VertexId v : g.Neighbors(u)) {
        tb.Load(t, g.NeighborAddr(e), 4);
        tb.Compute(t, 1, /*dep=*/true);  // remap vertex id
        const Addr a = new_struct + (e % (g.num_edges() + 1)) * 8;
        tb.Store(t, a, 8, /*dep=*/true);
        if (persist) {
          const Addr line = LineOf(a);
          bool seen = false;
          for (Addr l : lines) seen = seen || l == line;
          if (!seen) lines.push_back(line);
        }
        ++moved_;
        ++e;
      }
      if (persist && tb.PmrStoreCount(t) > ord0) {
        // Flush every touched line once (the redundant-flush mutant doubles
        // the first), fence (elided by the missing-fence mutant), then
        // publish the vertex's 8B commit record.
        bool first = true;
        for (Addr line : lines) {
          tb.Flush(t, line, /*dep=*/true);
          if (first && mode_ == pmem::PersistMode::kRedundantFlush) {
            tb.Flush(t, line, /*dep=*/true);
          }
          first = false;
        }
        if (mode_ != pmem::PersistMode::kMissingFence) tb.Fence(t);
        const std::uint64_t pub = tb.PmrStoreCount(t);
        const Addr rec = commit + static_cast<std::uint64_t>(u) * 8;
        tb.Store(t, rec, 8, /*dep=*/true);
        tb.Flush(t, rec, /*dep=*/true);
        tb.Fence(t);
        if (tb.PmrStoreCount(t) == pub + 1) {
          pmem::UpdateRecord r;
          r.thread = t;
          r.publish = pub;
          for (std::uint64_t o = ord0; o < pub; ++o) r.payload.push_back(o);
          updates_.updates.push_back(std::move(r));
        }
      }
    }
  }
  tb.Barrier();
}

}  // namespace graphpim::workloads
