#include "workloads/bc.h"

#include <cstdint>

#include "graph/property.h"

namespace graphpim::workloads {

const WorkloadInfo& BcWorkload::info() const {
  static const WorkloadInfo kInfo{
      "bc",
      "Betweenness Centrality",
      WorkloadCategory::kGraphTraversal,
      /*pim_applicable=*/false,  // base HMC 2.0 (Table III)
      /*missing_op=*/"Floating point add",
      /*host_instr=*/"lock cmpxchg (FP CAS loop)",
      /*pim_op=*/"FP add (extension)",
      /*needs_fp_extension=*/true};
  return kInfo;
}

// GraphBIG-style parallel Brandes: each thread runs complete single-source
// Brandes passes with THREAD-LOCAL depth/sigma/delta arrays (meta region:
// cache friendly), then accumulates into the shared bc[] property with FP
// atomic adds. This is why the paper finds BC compute-bound with data
// locality: the heavy centrality computation never touches shared state,
// and the bc[] property is reused across sources (Fig 10: lower candidate
// miss rate; Fig 14: cache bypass can hurt BC).
void BcWorkload::Generate(const graph::CsrGraph& g, graph::AddressSpace& space,
                          TraceBuilder& tb) {
  const VertexId n = g.num_vertices();
  const int num_threads = tb.num_threads();
  constexpr std::int64_t kUnvisited = -1;

  // Shared per-vertex centrality (PMR property).
  graph::PropertyArray<double> bc(space.pmr(), n, 0.0);
  // Thread-local scratch arrays (meta region).
  std::vector<Addr> depth_a(static_cast<std::size_t>(num_threads));
  std::vector<Addr> sigma_a(static_cast<std::size_t>(num_threads));
  std::vector<Addr> delta_a(static_cast<std::size_t>(num_threads));
  for (int t = 0; t < num_threads; ++t) {
    depth_a[t] = space.meta().Allocate(static_cast<std::uint64_t>(n) * 8);
    sigma_a[t] = space.meta().Allocate(static_cast<std::uint64_t>(n) * 8);
    delta_a[t] = space.meta().Allocate(static_cast<std::uint64_t>(n) * 8);
  }

  bc_.assign(n, 0.0);
  std::vector<std::int64_t> depth(n);
  std::vector<double> sigma(n);
  std::vector<double> delta(n);

  for (int s = 0; s < num_sources_; ++s) {
    const int t = s % num_threads;
    VertexId source =
        static_cast<VertexId>((static_cast<std::uint64_t>(s) * 2654435761ULL) % n);
    depth.assign(n, kUnvisited);
    sigma.assign(n, 0.0);
    delta.assign(n, 0.0);
    depth[source] = 0;
    sigma[source] = 1.0;

    // Forward: level-synchronous BFS with local shortest-path counting.
    std::vector<std::vector<VertexId>> levels;
    levels.push_back({source});
    std::int64_t d = 0;
    while (!levels.back().empty()) {
      std::vector<VertexId> next;
      for (VertexId u : levels.back()) {
        tb.Load(t, g.OffsetAddr(u), 8);
        tb.Load(t, sigma_a[t] + u * 8, 8);  // meta: local sigma[u]
        EdgeId e = g.OffsetOf(u);
        for (VertexId v : g.Neighbors(u)) {
          tb.Load(t, g.NeighborAddr(e), 4);
          tb.Load(t, depth_a[t] + v * 8, 8, /*dep=*/true);  // meta: local
          tb.Branch(t, /*dep=*/true);
          if (depth[v] == kUnvisited) {
            depth[v] = d + 1;
            tb.Store(t, depth_a[t] + v * 8, 8, /*dep=*/true);
            next.push_back(v);
          }
          if (depth[v] == d + 1) {
            sigma[v] += sigma[u];
            tb.Compute(t, 1, /*dep=*/true, /*fp=*/true);
            tb.Store(t, sigma_a[t] + v * 8, 8, /*dep=*/true);
          }
          ++e;
        }
      }
      levels.push_back(std::move(next));
      ++d;
    }
    levels.pop_back();

    // Backward: dependency accumulation, all thread-local with heavy FP
    // work (the centrality computation the paper calls out).
    for (std::size_t li = levels.size(); li-- > 1;) {
      for (VertexId w : levels[li]) {
        tb.Load(t, sigma_a[t] + w * 8, 8);
        tb.Load(t, delta_a[t] + w * 8, 8);
        tb.Compute(t, 6, /*dep=*/true, /*fp=*/true);  // (1+delta)/sigma
        double coeff = (1.0 + delta[w]) / sigma[w];
        tb.Load(t, g.OffsetAddr(w), 8);
        EdgeId e = g.OffsetOf(w);
        for (VertexId v : g.Neighbors(w)) {
          tb.Load(t, g.NeighborAddr(e), 4);
          tb.Load(t, depth_a[t] + v * 8, 8, /*dep=*/true);
          tb.Branch(t, /*dep=*/true);
          if (depth[v] == static_cast<std::int64_t>(li) - 1) {
            tb.Load(t, sigma_a[t] + v * 8, 8);
            tb.Compute(t, 4, /*dep=*/true, /*fp=*/true);
            tb.Compute(t, 4, /*dep=*/true, /*fp=*/true);
            tb.Store(t, delta_a[t] + v * 8, 8, /*dep=*/true);
            delta[v] += sigma[v] * coeff;
          }
          ++e;
        }
      }
    }

    // Accumulate into the shared centrality property: the offloadable
    // FP atomic adds (Table II extension row). bc[] lines are reused
    // across sources, giving these candidates cache locality.
    for (std::size_t li = 1; li < levels.size(); ++li) {
      for (VertexId w : levels[li]) {
        tb.Load(t, delta_a[t] + w * 8, 8);
        tb.Atomic(t, bc.AddrOf(w), hmc::AtomicOp::kFpAdd64, 8,
                  /*want_return=*/false, /*dep=*/true);
        bc_[w] += delta[w];
      }
    }
  }
  tb.Barrier();
}

}  // namespace graphpim::workloads
