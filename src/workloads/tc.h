// Triangle count (GraphBIG TC): sorted adjacency-list intersection.
//
// Rich Property category; offloading target (Table II): lock add -> signed
// add. Computation happens within neighbor-list intersections, so the
// atomic fraction is tiny and GraphPIM's benefit is limited (Fig 7).
//
// Hub vertices make exact intersection O(d^2); like GraphBIG's optimized
// kernel we bound per-list work (`max_list`), which only affects hubs.
// Tests use graphs below the bound, where counting is exact.
#ifndef GRAPHPIM_WORKLOADS_TC_H_
#define GRAPHPIM_WORKLOADS_TC_H_

#include <cstdint>

#include "workloads/workload.h"

namespace graphpim::workloads {

class TcWorkload : public Workload {
 public:
  explicit TcWorkload(std::uint32_t max_list = 256) : max_list_(max_list) {}

  const WorkloadInfo& info() const override;
  void Generate(const graph::CsrGraph& g, graph::AddressSpace& space,
                TraceBuilder& tb) override;

  // Functional result: number of (directed) triangles found.
  std::uint64_t triangles() const { return triangles_; }

 private:
  std::uint32_t max_list_;
  std::uint64_t triangles_ = 0;
};

}  // namespace graphpim::workloads

#endif  // GRAPHPIM_WORKLOADS_TC_H_
