// Workload interface and registry: the GraphBIG-equivalent suite.
//
// Each workload executes its algorithm functionally on the CSR graph while
// emitting per-thread micro-op traces (see trace.h). The WorkloadInfo block
// carries the paper's Table II (offloading target) and Table III
// (applicability) metadata.
#ifndef GRAPHPIM_WORKLOADS_WORKLOAD_H_
#define GRAPHPIM_WORKLOADS_WORKLOAD_H_

#include <memory>
#include <string>
#include <vector>

#include "common/types.h"
#include "graph/csr.h"
#include "graph/region.h"
#include "workloads/trace.h"

namespace graphpim::workloads {

struct WorkloadInfo {
  std::string name;          // short id used on the command line ("bfs")
  std::string display;       // paper display name ("Breadth-first Search")
  WorkloadCategory category;
  bool pim_applicable;       // Table III
  std::string missing_op;    // Table III reason when not applicable
  std::string host_instr;    // Table II host atomic ("lock cmpxchg")
  std::string pim_op;        // Table II PIM-atomic type ("CAS if equal")
  bool needs_fp_extension;   // applicable only with Section III-C FP ops
};

class Workload {
 public:
  virtual ~Workload() = default;

  virtual const WorkloadInfo& info() const = 0;

  // Runs the algorithm on `g`, allocating properties from `space` (the PMR
  // for offloadable ones) and recording ops into `tb`.
  virtual void Generate(const graph::CsrGraph& g, graph::AddressSpace& space,
                        TraceBuilder& tb) = 0;
};

// Factory. Names: bfs, dfs, dc, bc, sssp, kcore, ccomp, prank, tc, gibbs,
// gcons, gup, tmorph. Fatal on unknown names.
std::unique_ptr<Workload> CreateWorkload(const std::string& name);

// All 13 GraphBIG-style workloads (Table III order).
std::vector<std::string> AllWorkloadNames();

// The eight workloads of the evaluation figures (Figs 7, 9-15).
std::vector<std::string> EvalWorkloadNames();

}  // namespace graphpim::workloads

#endif  // GRAPHPIM_WORKLOADS_WORKLOAD_H_
