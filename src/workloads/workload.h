// Workload interface and registry: the GraphBIG-equivalent suite.
//
// Each workload executes its algorithm functionally on the CSR graph while
// emitting per-thread micro-op traces (see trace.h). The WorkloadInfo block
// carries the paper's Table II (offloading target) and Table III
// (applicability) metadata.
#ifndef GRAPHPIM_WORKLOADS_WORKLOAD_H_
#define GRAPHPIM_WORKLOADS_WORKLOAD_H_

#include <memory>
#include <string>
#include <vector>

#include "common/types.h"
#include "graph/csr.h"
#include "graph/region.h"
#include "pmem/crash.h"
#include "workloads/params.h"
#include "workloads/trace.h"

namespace graphpim::workloads {

struct WorkloadInfo {
  std::string name;          // short id used on the command line ("bfs")
  std::string display;       // paper display name ("Breadth-first Search")
  WorkloadCategory category;
  bool pim_applicable;       // Table III
  std::string missing_op;    // Table III reason when not applicable
  std::string host_instr;    // Table II host atomic ("lock cmpxchg")
  std::string pim_op;        // Table II PIM-atomic type ("CAS if equal")
  bool needs_fp_extension;   // applicable only with Section III-C FP ops
};

class Workload {
 public:
  virtual ~Workload() = default;

  virtual const WorkloadInfo& info() const = 0;

  // Runs the algorithm on `g`, allocating properties from `space` (the PMR
  // for offloadable ones) and recording ops into `tb`.
  virtual void Generate(const graph::CsrGraph& g, graph::AddressSpace& space,
                        TraceBuilder& tb) = 0;

  // --- persistent-PMR surface (DESIGN.md §14) -----------------------------
  // Default: workloads ignore persist mode and are not crash-testable.
  // Persist-capable ones (gup, tmorph) emit flush/fence discipline when the
  // mode is set before Generate, and record an UpdateLog naming each
  // crash-consistent update's payload/publish stores.

  // Must be called before Generate to take effect. No-op by default.
  virtual void SetPersistMode(pmem::PersistMode mode) { (void)mode; }

  // The updates Generate recorded; nullptr when not persist-capable or
  // generated with PersistMode::kOff.
  virtual const pmem::UpdateLog* update_log() const { return nullptr; }

  // Judges one update's post-crash visibility. Defined in workload.cc
  // (default: all-or-nothing over the workload's name).
  virtual pmem::RecoveryInvariant recovery_invariant() const;

  virtual bool persist_capable() const { return false; }
};

// Factory. Names: bfs, dfs, dc, bc, sssp, kcore, ccomp, prank, tc, gibbs,
// gcons, gup, tmorph, hnsw. Throws SimError on unknown names. `params`
// carries the KnobRow-derived per-workload blocks (hnsw reads params.ann;
// the parameterless workloads ignore it).
std::unique_ptr<Workload> CreateWorkload(const std::string& name,
                                         const WorkloadParams& params);

// Convenience overload for the parameterless workloads (defaults only).
std::unique_ptr<Workload> CreateWorkload(const std::string& name);

// All 13 GraphBIG-style workloads (Table III order).
std::vector<std::string> AllWorkloadNames();

// The eight workloads of the evaluation figures (Figs 7, 9-15).
std::vector<std::string> EvalWorkloadNames();

}  // namespace graphpim::workloads

#endif  // GRAPHPIM_WORKLOADS_WORKLOAD_H_
