#include "workloads/prank.h"

#include "graph/property.h"

namespace graphpim::workloads {

const WorkloadInfo& PrankWorkload::info() const {
  static const WorkloadInfo kInfo{
      "prank",
      "Page Rank",
      WorkloadCategory::kGraphTraversal,
      /*pim_applicable=*/false,  // base HMC 2.0 (Table III)
      /*missing_op=*/"Floating point add",
      /*host_instr=*/"lock cmpxchg (FP CAS loop)",
      /*pim_op=*/"FP add (extension)",
      /*needs_fp_extension=*/true};
  return kInfo;
}

void PrankWorkload::Generate(const graph::CsrGraph& g, graph::AddressSpace& space,
                             TraceBuilder& tb) {
  const VertexId n = g.num_vertices();
  const int num_threads = tb.num_threads();
  const double base = (1.0 - damping_) / static_cast<double>(n);

  graph::PropertyArray<double> rank(space.pmr(), n, 1.0 / static_cast<double>(n));
  graph::PropertyArray<double> next(space.pmr(), n, base);

  for (int iter = 0; iter < iters_; ++iter) {
    // Scatter phase: push damped contributions along every edge.
    for (int t = 0; t < num_threads; ++t) {
      auto [begin, end] = ThreadChunk(n, t, num_threads);
      for (std::size_t uu = begin; uu < end; ++uu) {
        VertexId u = static_cast<VertexId>(uu);
        std::uint32_t deg = g.OutDegree(u);
        if (deg == 0) continue;
        tb.Load(t, rank.AddrOf(u), 8);   // property: my rank
        tb.Load(t, g.OffsetAddr(u), 8);  // structure: row ptr
        tb.Compute(t, 1, /*dep=*/true, /*fp=*/true);  // contrib = d*r/deg
        double contrib = damping_ * rank[u] / static_cast<double>(deg);
        EdgeId e = g.OffsetOf(u);
        for (VertexId v : g.Neighbors(u)) {
          tb.Load(t, g.NeighborAddr(e), 4);  // structure: neighbor id
          tb.Atomic(t, next.AddrOf(v), hmc::AtomicOp::kFpAdd64, 8,
                    /*want_return=*/false, /*dep=*/true);
          next[v] += contrib;
          ++e;
        }
      }
    }
    tb.Barrier();
    // Gather phase: swap rank <- next, reset next.
    for (int t = 0; t < num_threads; ++t) {
      auto [begin, end] = ThreadChunk(n, t, num_threads);
      for (std::size_t uu = begin; uu < end; ++uu) {
        VertexId u = static_cast<VertexId>(uu);
        tb.Load(t, next.AddrOf(u), 8);
        tb.Compute(t, 1, /*dep=*/true, /*fp=*/true);
        tb.Store(t, rank.AddrOf(u), 8, /*dep=*/true);
        tb.Store(t, next.AddrOf(u), 8);
        rank[u] = next[u];
        next[u] = base;
      }
    }
    tb.Barrier();
  }

  ranks_.assign(n, 0.0);
  for (VertexId v = 0; v < n; ++v) ranks_[v] = rank[v];
}

}  // namespace graphpim::workloads
