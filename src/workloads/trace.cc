#include "workloads/trace.h"

#include "common/log.h"

namespace graphpim::workloads {

using cpu::MicroOp;
using cpu::OpType;

TraceBuilder::TraceBuilder(int num_threads, const graph::AddressSpace* space,
                           double mispredict_rate, std::uint64_t seed)
    : space_(space), mispredict_rate_(mispredict_rate) {
  GP_CHECK(num_threads > 0);
  GP_CHECK(space != nullptr);
  trace_.streams.resize(static_cast<std::size_t>(num_threads));
  pmr_stores_.assign(static_cast<std::size_t>(num_threads), 0);
  rngs_.reserve(static_cast<std::size_t>(num_threads));
  for (int t = 0; t < num_threads; ++t) {
    rngs_.emplace_back(seed * 0x9e3779b9ULL + static_cast<std::uint64_t>(t) + 1);
  }
}

void TraceBuilder::SetOpCap(std::uint64_t cap) {
  op_cap_ = cap;
  if (cap == 0) return;
  const std::uint64_t per =
      cap / static_cast<std::uint64_t>(trace_.streams.size()) + 1;
  for (auto& s : trace_.streams) s.reserve(per);
}

void TraceBuilder::Push(int t, const MicroOp& op) {
  if (AtCap()) return;
  // Count PMR stores that actually land in the stream, so PmrStoreCount
  // mirrors the ordinals the persist domain will assign during replay
  // (ops dropped at the cap never reach the memory system).
  if (op.type == OpType::kStore && op.comp == DataComponent::kProperty) {
    ++pmr_stores_[static_cast<std::size_t>(t)];
  }
  trace_.streams[static_cast<std::size_t>(t)].push_back(op);
  ++total_ops_;
}

void TraceBuilder::Compute(int t, int lat_cycles, bool dep, bool fp) {
  if (AtCap()) return;
  MicroOp op;
  op.type = OpType::kCompute;
  op.compute_lat = static_cast<std::uint8_t>(lat_cycles);
  if (dep) op.flags |= cpu::kFlagDepPrev;
  if (fp) op.flags |= cpu::kFlagFpCompute;
  Push(t, op);
}

void TraceBuilder::Branch(int t, bool dep) {
  if (AtCap()) return;
  MicroOp op;
  op.type = OpType::kBranch;
  if (dep) op.flags |= cpu::kFlagDepPrev;
  if (rngs_[static_cast<std::size_t>(t)].NextBool(mispredict_rate_)) {
    op.flags |= cpu::kFlagMispredict;
  }
  Push(t, op);
}

void TraceBuilder::Load(int t, Addr addr, std::uint8_t size, bool dep,
                        bool fusable_cmp) {
  if (AtCap()) return;
  MicroOp op;
  op.type = OpType::kLoad;
  op.addr = addr;
  op.size = size;
  op.comp = space_->ComponentOf(addr);
  if (dep) op.flags |= cpu::kFlagDepPrev;
  if (fusable_cmp) op.flags |= cpu::kFlagFusableCmp;
  Push(t, op);
}

void TraceBuilder::Store(int t, Addr addr, std::uint8_t size, bool dep) {
  if (AtCap()) return;
  MicroOp op;
  op.type = OpType::kStore;
  op.addr = addr;
  op.size = size;
  op.comp = space_->ComponentOf(addr);
  if (dep) op.flags |= cpu::kFlagDepPrev;
  Push(t, op);
}

void TraceBuilder::Atomic(int t, Addr addr, hmc::AtomicOp aop, std::uint8_t size,
                          bool want_return, bool dep) {
  if (AtCap()) return;
  MicroOp op;
  op.type = OpType::kAtomic;
  op.addr = addr;
  op.aop = aop;
  op.size = size;
  op.comp = space_->ComponentOf(addr);
  if (want_return) op.flags |= cpu::kFlagWantReturn;
  if (dep) op.flags |= cpu::kFlagDepPrev;
  Push(t, op);
}

void TraceBuilder::Flush(int t, Addr addr, bool dep) {
  if (AtCap()) return;
  MicroOp op;
  op.type = OpType::kFlush;
  op.addr = addr;
  op.size = 64;  // whole line writes back regardless of the store width
  op.comp = space_->ComponentOf(addr);
  if (dep) op.flags |= cpu::kFlagDepPrev;
  Push(t, op);
}

void TraceBuilder::Fence(int t, bool dep) {
  MicroOp op;
  op.type = OpType::kFence;
  if (dep) op.flags |= cpu::kFlagDepPrev;
  Push(t, op);
}

void TraceBuilder::Barrier() {
  // Barriers are always recorded (even past the op cap) so that every
  // stream observes the same superstep count.
  ++barrier_id_;
  for (auto& s : trace_.streams) {
    MicroOp op;
    op.type = OpType::kBarrier;
    op.addr = barrier_id_;
    s.push_back(op);
  }
}

Trace TraceBuilder::Take() {
  Trace out = std::move(trace_);
  trace_ = Trace{};
  trace_.streams.resize(out.streams.size());
  return out;
}

Trace ReplaceAtomicsWithPlain(const Trace& trace) {
  Trace out;
  out.streams.reserve(trace.streams.size());
  for (const auto& stream : trace.streams) {
    cpu::UopStream s;
    s.reserve(stream.size() + stream.size() / 8);
    for (const MicroOp& op : stream) {
      if (op.type != OpType::kAtomic) {
        s.push_back(op);
        continue;
      }
      MicroOp ld = op;
      ld.type = OpType::kLoad;
      ld.flags = static_cast<std::uint8_t>(op.flags & cpu::kFlagDepPrev);
      s.push_back(ld);
      MicroOp st = op;
      st.type = OpType::kStore;
      st.flags = cpu::kFlagDepPrev;
      s.push_back(st);
    }
    out.streams.push_back(std::move(s));
  }
  return out;
}

std::pair<std::size_t, std::size_t> ThreadChunk(std::size_t total, int t,
                                                int num_threads) {
  std::size_t per = total / static_cast<std::size_t>(num_threads);
  std::size_t rem = total % static_cast<std::size_t>(num_threads);
  std::size_t tt = static_cast<std::size_t>(t);
  std::size_t begin = tt * per + std::min(tt, rem);
  std::size_t end = begin + per + (tt < rem ? 1 : 0);
  return {begin, end};
}

}  // namespace graphpim::workloads
