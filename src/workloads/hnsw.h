// HNSW k-NN search workload (DESIGN.md §16, ROADMAP item 1).
//
// Builds a deterministic HNSW index over synthetic clustered vectors
// attached to the CSR vertex set (one vector per vertex), with the
// multi-layer adjacency resident in the PMR (contiguous level-0 block +
// offset-table lookups; see graph/hnsw_index.h), then emits a k-NN search
// phase of `ann.queries` searches split across the trace's threads.
//
// The emitted per-neighbor pattern is the paper's instruction-level
// offload story applied to graph-ANN: every visited-set check/claim is
// one CAS-if-equal on the vertex's PMR visited word, and every
// candidate-beam improvement takes a striped lock (CAS on one of
// kLockStripes hashed PMR lock words) and publishes the new bound with a
// CAS-if-less min-swap — the HMC atomics billion-scale ANN-on-PIM
// co-designs lean on. Neighbor-list walks hit the cube-striped level-0
// block; distance arithmetic is in-core FP.
//
// NOTE: hnsw is NOT part of AllWorkloadNames() — that list is the paper's
// Table III GraphBIG suite. It is reachable through CreateWorkload
// ("hnsw"), every driver CLI, and sweep grid specs.
#ifndef GRAPHPIM_WORKLOADS_HNSW_H_
#define GRAPHPIM_WORKLOADS_HNSW_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "graph/hnsw_index.h"
#include "graph/vectors.h"
#include "workloads/params.h"
#include "workloads/workload.h"

namespace graphpim::workloads {

class HnswWorkload : public Workload {
 public:
  explicit HnswWorkload(const AnnParams& ann = AnnParams());

  const WorkloadInfo& info() const override;
  void Generate(const graph::CsrGraph& g, graph::AddressSpace& space,
                TraceBuilder& tb) override;

  // Striped-lock count for beam updates (hash of the improved vertex).
  static constexpr std::uint32_t kLockStripes = 1024;

  const AnnParams& ann() const { return ann_; }

  // Post-Generate surfaces (for tests and tools).
  const std::vector<std::vector<std::uint32_t>>& results() const {
    return results_;  // per-query k-NN ids, query order
  }
  double recall() const { return recall_; }  // vs brute force, mean recall@k
  const graph::VectorSet* vectors() const { return vectors_.get(); }
  const graph::HnswIndex* index() const { return index_.get(); }

 private:
  AnnParams ann_;
  std::unique_ptr<graph::VectorSet> vectors_;  // must outlive index_
  std::unique_ptr<graph::HnswIndex> index_;
  std::vector<std::vector<std::uint32_t>> results_;
  double recall_ = 0.0;
};

}  // namespace graphpim::workloads

#endif  // GRAPHPIM_WORKLOADS_HNSW_H_
