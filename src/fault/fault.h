// Deterministic fault injection (DESIGN.md §9).
//
// The paper evaluates GraphPIM on an ideal HMC: links never corrupt FLITs
// and vaults never stall. Real HMC 2.0 hardware has link CRC with
// retry-buffer recovery, and degraded-mode behavior changes the
// performance story. This subsystem injects three fault classes into the
// timing model:
//
//   - link CRC errors at a configurable bit error rate (BER), recovered by
//     the HMC-style retry path in hmc/cube.cc;
//   - vault busy-stalls (controller hiccups) at a parts-per-million rate;
//   - poisoned atomic responses at a parts-per-million rate.
//
// Determinism: every injection decision is a pure function of
// (seed, stream, decision index) via SplitMix64 — no global RNG state. A
// simulation replay queries the plan in its own deterministic order, so a
// given (FaultParams, seed) produces bit-identical injections regardless
// of --jobs count, scheduling, or platform (the PR-1 determinism
// contract). Seeds are derived from the sweep cell seed with
// DeriveFaultSeed so distinct cells/configs get decorrelated fault
// streams.
#ifndef GRAPHPIM_FAULT_FAULT_H_
#define GRAPHPIM_FAULT_FAULT_H_

#include <cstdint>
#include <string>

#include "common/types.h"

namespace graphpim::fault {

struct FaultParams {
  // Link bit error rate: probability that any one transferred bit is
  // corrupted (detected by the packet CRC at RX). 0 disables; real HMC
  // SerDes lanes target ~1e-15..1e-12.
  double link_ber = 0.0;

  // Probability (parts per million) that a request finds its vault
  // controller transiently busy and stalls for `vault_stall_ticks`.
  std::uint32_t vault_stall_ppm = 0;
  Tick vault_stall_ticks = NsToTicks(100.0);

  // Probability (ppm) that an atomic's response comes back poisoned even
  // though the link transfer was clean (internal ECC escalation).
  std::uint32_t poison_ppm = 0;

  // Link retry path: each detected CRC error costs `retry_latency` for the
  // retry-buffer replay plus the packet's reserialization; after
  // `max_retries` failed replays the response is poisoned instead.
  std::uint32_t max_retries = 3;
  Tick retry_latency = NsToTicks(8.0);

  // Decision-stream seed; derive from the experiment/cell seed.
  std::uint64_t seed = 0;

  bool Enabled() const {
    return link_ber > 0.0 || vault_stall_ppm > 0 || poison_ppm > 0;
  }

  std::string Describe() const;
};

// Expands a decorrelated fault seed from a sweep cell seed and a per-run
// salt (typically the config index). Pure value function, stable across
// platforms — same derivation discipline as exec::DeriveCellSeed.
std::uint64_t DeriveFaultSeed(std::uint64_t cell_seed, std::uint64_t salt);

// Per-cube stream for a multi-cube network (src/hmc/topology.h): cube 0
// keeps `run_seed` unchanged (single-cube byte identity), every other cube
// gets a decorrelated derivation of (run_seed, cube_index).
std::uint64_t DeriveCubeFaultSeed(std::uint64_t run_seed,
                                  std::uint32_t cube_index);

// The per-run injection decision source. Each fault class consumes its own
// counter stream, so e.g. adding vault-stall queries does not perturb the
// link-error sequence.
class FaultPlan {
 public:
  FaultPlan() : FaultPlan(FaultParams{}) {}
  explicit FaultPlan(const FaultParams& params) : params_(params) {}

  const FaultParams& params() const { return params_; }
  bool enabled() const { return params_.Enabled(); }

  // True if a packet of `bits` transferred bits arrives corrupted
  // (probability 1 - (1-BER)^bits). Consumes one decision.
  bool CorruptPacket(std::uint64_t bits);

  // True if this vault request hits a busy-stall. Consumes one decision.
  bool VaultStall();

  // True if this atomic's response is poisoned. Consumes one decision.
  bool PoisonAtomic();

 private:
  // Uniform [0,1) draw for decision `n` of `stream`.
  double Uniform(std::uint64_t stream, std::uint64_t n) const;

  FaultParams params_;
  std::uint64_t crc_n_ = 0;
  std::uint64_t stall_n_ = 0;
  std::uint64_t poison_n_ = 0;
};

// Decorrelated seed for one crash-sweep stream: folds a per-config salt
// into the experiment seed so each mode's crash ticks are independent.
std::uint64_t DeriveCrashSeed(std::uint64_t cell_seed, std::uint64_t salt);

// Deterministic crash decision source for the persistent-PMR harness
// (src/pmem/crash.h). Counter-based like FaultPlan::Uniform: every answer
// is a pure function of (seed, stream, key), so crash cycle n of a sweep
// samples identically at any --jobs count and on any platform.
class CrashPlan {
 public:
  explicit CrashPlan(std::uint64_t seed) : seed_(seed) {}

  std::uint64_t seed() const { return seed_; }

  // Crash tick for cycle `index`, uniform over [0, end_tick].
  Tick SampleCrashTick(std::uint64_t index, Tick end_tick) const;

  // Post-crash media state of an in-flight store (issued but not yet
  // persisted when the crash hit). Returns 0 = old value, 1 = new value,
  // 2 = torn line. Stores that cannot tear (powerfail-atomic, <= 8B) draw
  // 50/50 old/new; wider stores draw thirds. `store_key` identifies the
  // store (e.g. (core << 48) | ordinal) and `index` the crash cycle, so
  // distinct cycles see decorrelated outcomes for the same store.
  int InFlightOutcome(std::uint64_t store_key, std::uint64_t index,
                      bool can_tear) const;

 private:
  double Uniform(std::uint64_t stream, std::uint64_t key) const;

  std::uint64_t seed_;
};

}  // namespace graphpim::fault

#endif  // GRAPHPIM_FAULT_FAULT_H_
