#include "fault/fault.h"

#include <cmath>

#include "common/random.h"
#include "common/string_util.h"

namespace graphpim::fault {

namespace {

// Distinct stream tags keep the per-class decision sequences decorrelated
// even though they share one seed.
constexpr std::uint64_t kCrcStream = 0x6c696e6b2d637263ULL;    // "link-crc"
constexpr std::uint64_t kStallStream = 0x7661756c74737447ULL;  // "vaultstG"
constexpr std::uint64_t kPoisonStream = 0x706f69736f6e2121ULL; // "poison!!"
constexpr std::uint64_t kCrashTickStream = 0x6372617368746b21ULL;  // "crashtk!"
constexpr std::uint64_t kTornStream = 0x746f726e6c696e65ULL;       // "tornline"

}  // namespace

std::string FaultParams::Describe() const {
  if (!Enabled()) return "faults off";
  return StrFormat(
      "link_ber=%.3g vault_stall_ppm=%u(%.0fns) poison_ppm=%u "
      "max_retries=%u retry=%.1fns seed=%llu",
      link_ber, vault_stall_ppm, TicksToNs(vault_stall_ticks), poison_ppm,
      max_retries, TicksToNs(retry_latency),
      static_cast<unsigned long long>(seed));
}

std::uint64_t DeriveFaultSeed(std::uint64_t cell_seed, std::uint64_t salt) {
  // Same two-round SplitMix64 discipline as exec::DeriveCellSeed: one round
  // to decorrelate the cell seed, one to fold in the salt.
  SplitMix64 a(cell_seed ^ 0xfa17fa17fa17fa17ULL);
  SplitMix64 b(a.Next() ^ salt);
  return b.Next();
}

std::uint64_t DeriveCubeFaultSeed(std::uint64_t run_seed,
                                  std::uint32_t cube_index) {
  // Cube 0 keeps the run's own stream so a one-cube network injects
  // byte-identically to the single-cube model; remote cubes fold their
  // index into a decorrelated derivation.
  if (cube_index == 0) return run_seed;
  return DeriveFaultSeed(run_seed ^ 0x63756265'00000000ULL,  // "cube"
                         static_cast<std::uint64_t>(cube_index));
}

std::uint64_t DeriveCrashSeed(std::uint64_t cell_seed, std::uint64_t salt) {
  return DeriveFaultSeed(cell_seed ^ 0x6372617368000000ULL,  // "crash"
                         salt);
}

double CrashPlan::Uniform(std::uint64_t stream, std::uint64_t key) const {
  // Same counter-based two-round SplitMix64 hash as FaultPlan::Uniform.
  SplitMix64 a(seed_ ^ stream);
  SplitMix64 b(a.Next() ^ key);
  return static_cast<double>(b.Next() >> 11) * 0x1.0p-53;
}

Tick CrashPlan::SampleCrashTick(std::uint64_t index, Tick end_tick) const {
  if (end_tick == 0) return 0;
  const double u = Uniform(kCrashTickStream, index);
  return static_cast<Tick>(u * static_cast<double>(end_tick));
}

int CrashPlan::InFlightOutcome(std::uint64_t store_key, std::uint64_t index,
                               bool can_tear) const {
  // Mix the crash-cycle index into the key with the golden-ratio constant
  // so the same store draws decorrelated outcomes across cycles.
  const std::uint64_t key = store_key ^ (index * 0x9E3779B97F4A7C15ULL);
  const double u = Uniform(kTornStream, key);
  if (!can_tear) return u < 0.5 ? 0 : 1;  // powerfail-atomic: old or new
  if (u < 1.0 / 3.0) return 0;
  if (u < 2.0 / 3.0) return 1;
  return 2;  // torn
}

double FaultPlan::Uniform(std::uint64_t stream, std::uint64_t n) const {
  // Counter-based: hash (seed, stream, n) through two SplitMix64 rounds.
  // Purely value-dependent, so the decision for index n never depends on
  // how many draws other streams have consumed.
  SplitMix64 a(params_.seed ^ stream);
  SplitMix64 b(a.Next() ^ n);
  return static_cast<double>(b.Next() >> 11) * 0x1.0p-53;
}

bool FaultPlan::CorruptPacket(std::uint64_t bits) {
  if (params_.link_ber <= 0.0 || bits == 0) return false;
  // P(any bit flips) = 1 - (1-ber)^bits, computed in log space so tiny
  // BERs (1e-15) survive the exponentiation without underflow.
  double p;
  if (params_.link_ber >= 1.0) {
    p = 1.0;
  } else {
    p = -std::expm1(static_cast<double>(bits) * std::log1p(-params_.link_ber));
  }
  return Uniform(kCrcStream, crc_n_++) < p;
}

bool FaultPlan::VaultStall() {
  if (params_.vault_stall_ppm == 0) return false;
  return Uniform(kStallStream, stall_n_++) <
         static_cast<double>(params_.vault_stall_ppm) * 1e-6;
}

bool FaultPlan::PoisonAtomic() {
  if (params_.poison_ppm == 0) return false;
  return Uniform(kPoisonStream, poison_n_++) <
         static_cast<double>(params_.poison_ppm) * 1e-6;
}

}  // namespace graphpim::fault
