#include "cpu/core.h"

#include <algorithm>

#include "common/log.h"

namespace graphpim::cpu {

OooCore::OooCore(int id, const CoreParams& params, MemoryInterface* mem)
    : id_(id),
      params_(params),
      mem_(mem),
      sid_insts_(stats_.Intern("core.insts")),
      sid_computes_(stats_.Intern("core.computes")),
      sid_branches_(stats_.Intern("core.branches")),
      sid_mispredicts_(stats_.Intern("core.mispredicts")),
      sid_loads_(stats_.Intern("core.loads")),
      sid_stores_(stats_.Intern("core.stores")),
      sid_atomics_(stats_.Intern("core.atomics")),
      sid_offloaded_atomics_(stats_.Intern("core.offloaded_atomics")),
      sid_atomic_incore_ticks_(stats_.Intern("core.atomic_incore_ticks")),
      sid_atomic_incache_ticks_(stats_.Intern("core.atomic_incache_ticks")),
      sid_atomic_dep_ticks_(stats_.Intern("core.atomic_dep_ticks")),
      sid_badspec_ticks_(stats_.Intern("core.badspec_ticks")),
      sid_frontend_ticks_(stats_.Intern("core.frontend_ticks")) {
  GP_CHECK(mem != nullptr);
  GP_CHECK(params.issue_width > 0 && params.rob_size > 0);
  cycle_ticks_ = static_cast<Tick>(1000.0 / params_.freq_ghz + 0.5);
  rob_.resize(static_cast<std::size_t>(params_.rob_size));
}

void OooCore::Reset(const UopStream* trace) {
  trace_ = trace;
  pos_ = 0;
  issue_tick_ = 0;
  issued_in_cycle_ = 0;
  issue_block_ = 0;
  rob_head_ = 0;
  rob_count_ = 0;
  prev_complete_ = 0;
  prev_was_atomic_ = false;
  max_outstanding_ = 0;
  max_store_complete_ = 0;
  barrier_arrival_ = 0;
  stats_.Reset();
}

Tick OooCore::NextIssueSlot() {
  if (issued_in_cycle_ >= params_.issue_width) {
    issue_tick_ += cycle_ticks_;
    issued_in_cycle_ = 0;
  }
  if (issue_block_ > issue_tick_) {
    issue_tick_ = issue_block_;
    issued_in_cycle_ = 0;
  }
  return issue_tick_;
}

void OooCore::ConsumeIssueSlot(Tick t) {
  if (t > issue_tick_) {
    issue_tick_ = t;
    issued_in_cycle_ = 0;
  }
  ++issued_in_cycle_;
}

Tick OooCore::Now() const {
  if (trace_ != nullptr && pos_ >= trace_->size()) {
    return std::max(issue_tick_, max_outstanding_);
  }
  return issue_tick_;
}

void OooCore::ReleaseBarrier(Tick release) {
  issue_block_ = std::max(issue_block_, release);
  // All in-flight work retired at the barrier.
  rob_count_ = 0;
  rob_head_ = 0;
  prev_complete_ = release;
  prev_was_atomic_ = false;
  max_outstanding_ = std::max(max_outstanding_, release);
  max_store_complete_ = release;
}

OooCore::Status OooCore::Advance(Tick until) {
  GP_CHECK(trace_ != nullptr, "Advance() before Reset()");
  // Column-wise tile walk: the tile pointer and lane bounds are hoisted
  // out of the per-op path, the barrier test reads only the 1KB type
  // column, and non-barrier ops are materialized from the columns right
  // at the issue site.
  const std::size_t n = trace_->size();
  while (pos_ < n) {
    const TraceTile& t = trace_->tile(pos_ >> kTileShift);
    std::size_t lane = pos_ & kTileMask;
    const std::size_t lane_end = std::min(kTileOps, lane + (n - pos_));
    for (; lane < lane_end; ++lane, ++pos_) {
      if (NextIssueSlot() >= until) return Status::kRunning;
      if (static_cast<OpType>(t.type[lane]) == OpType::kBarrier) {
        barrier_arrival_ = std::max(NextIssueSlot(), max_outstanding_);
        ++pos_;
        return Status::kBarrier;
      }
      IssueOp(t.Get(lane));
    }
  }
  return Status::kDone;
}

void OooCore::IssueOp(const MicroOp& op) {
  Tick dispatch = NextIssueSlot();

  // ROB space: retiring the head in order frees an entry; a long-latency
  // head stalls dispatch (the classic backend-bound case).
  bool head_is_atomic = false;
  if (rob_count_ == rob_.size()) {
    const RobEntry& head = rob_[rob_head_];
    if (head.complete > dispatch) {
      if (head.is_atomic) {
        stats_.Add(sid_atomic_dep_ticks_,
                   static_cast<double>(head.complete - dispatch));
        head_is_atomic = true;
      }
      dispatch = head.complete;
    }
    // Ring advance without the modulo (ROB sizes are not powers of two).
    if (++rob_head_ == rob_.size()) rob_head_ = 0;
    --rob_count_;
  }
  (void)head_is_atomic;

  // Execution start: operands must be ready.
  Tick exec_start = dispatch;
  if (op.DepPrev() && prev_complete_ > exec_start) {
    if (prev_was_atomic_) {
      stats_.Add(sid_atomic_dep_ticks_,
                 static_cast<double>(prev_complete_ - exec_start));
    }
    exec_start = prev_complete_;
  }

  Tick complete = exec_start;       // value-ready time for dependents
  Tick retire = exec_start;         // when the ROB entry can retire
  bool is_atomic = false;

  switch (op.type) {
    case OpType::kCompute: {
      stats_.Inc(sid_computes_);
      std::uint64_t lat = (op.flags & kFlagFpCompute) != 0
                              ? static_cast<std::uint64_t>(params_.fp_compute_lat)
                              : op.compute_lat;
      complete = exec_start + CyclesToTicks(lat);
      retire = complete;
      break;
    }
    case OpType::kBranch: {
      stats_.Inc(sid_branches_);
      complete = exec_start + cycle_ticks_;
      retire = complete;
      // Taken-branch fetch redirection costs one bubble.
      issue_block_ = std::max(issue_block_, dispatch + cycle_ticks_);
      stats_.Add(sid_frontend_ticks_, static_cast<double>(cycle_ticks_));
      if (op.Mispredict()) {
        stats_.Inc(sid_mispredicts_);
        Tick penalty = CyclesToTicks(static_cast<std::uint64_t>(params_.mispredict_penalty));
        issue_block_ = std::max(issue_block_, complete + penalty);
        stats_.Add(sid_badspec_ticks_, static_cast<double>(penalty));
      }
      break;
    }
    case OpType::kLoad: {
      stats_.Inc(sid_loads_);
      MemOutcome out = mem_->Access(id_, op, exec_start);
      complete = out.complete;
      retire = out.complete;
      issue_block_ = std::max(issue_block_, out.issue_stall_until);
      break;
    }
    case OpType::kStore: {
      stats_.Inc(sid_stores_);
      MemOutcome out = mem_->Access(id_, op, exec_start);
      // Stores commit through the write buffer: dependents (if any) see the
      // value forwarded within a cycle; the entry retires quickly.
      complete = exec_start + cycle_ticks_;
      retire = complete;
      max_store_complete_ = std::max(max_store_complete_, out.complete);
      issue_block_ = std::max(issue_block_, out.issue_stall_until);
      break;
    }
    case OpType::kAtomic: {
      stats_.Inc(sid_atomics_);
      is_atomic = true;
      MemOutcome out = mem_->Access(id_, op, exec_start);
      issue_block_ = std::max(issue_block_, out.issue_stall_until);
      if (out.serializing) {
        // Host locked RMW (Section II-D / Fig 8): drain the write buffer,
        // freeze the pipeline for the in-core overhead window, and delay
        // dependents (and retirement) by the exclusive memory access. The
        // RMW miss itself overlaps with other in-flight misses via MSHRs.
        Tick drain = std::max(exec_start, max_store_complete_);
        Tick fixed =
            CyclesToTicks(static_cast<std::uint64_t>(params_.atomic_incore_overhead));
        Tick mem_lat = out.complete - exec_start;  // hierarchy access time
        complete = drain + fixed + mem_lat;
        retire = complete;
        issue_block_ = std::max(issue_block_, drain + fixed);
        stats_.Add(sid_atomic_incache_ticks_, static_cast<double>(out.check_ticks));
        // Only the non-overlappable freeze window counts as in-core time;
        // the RMW's memory latency surfaces through dependent stalls
        // (atomic_dep_ticks) and ROB pressure.
        stats_.Add(sid_atomic_incore_ticks_,
                   static_cast<double>((drain + fixed) - exec_start));
      } else {
        // Offloaded (or PEI host-executed) atomic: behaves like a
        // non-blocking load; posted forms retire without waiting.
        if (out.offloaded) stats_.Inc(sid_offloaded_atomics_);
        stats_.Add(sid_atomic_incache_ticks_, static_cast<double>(out.check_ticks));
        complete = op.WantReturn() ? out.complete : exec_start + cycle_ticks_;
        retire = op.WantReturn() ? out.complete : out.retire_ready;
      }
      break;
    }
    case OpType::kFlush: {
      // clwb-style line writeback: posted like a store — the writeback
      // proceeds in the persist queue and only a later fence waits on it.
      MemOutcome out = mem_->Access(id_, op, exec_start);
      complete = exec_start + cycle_ticks_;
      retire = complete;
      max_store_complete_ = std::max(max_store_complete_, out.complete);
      break;
    }
    case OpType::kFence: {
      // sfence-style persist barrier: completes no earlier than every prior
      // flush/store and serializes issue behind itself.
      MemOutcome out = mem_->Access(id_, op, exec_start);
      complete = std::max(out.complete, max_store_complete_);
      retire = complete;
      issue_block_ = std::max(issue_block_, complete);
      break;
    }
    case OpType::kBarrier:
      GP_PANIC("barrier reached IssueOp");
  }

  ConsumeIssueSlot(dispatch);
  stats_.Inc(sid_insts_);

  std::size_t tail = rob_head_ + rob_count_;  // rob_count_ < size: one wrap
  if (tail >= rob_.size()) tail -= rob_.size();
  rob_[tail] = RobEntry{retire, is_atomic};
  ++rob_count_;

  prev_complete_ = complete;
  prev_was_atomic_ = is_atomic;
  max_outstanding_ = std::max(max_outstanding_, std::max(complete, retire));
}

}  // namespace graphpim::cpu
