// Out-of-order core timing model (MacSim-equivalent for this study).
//
// A timestamp-algebra ROB-window model: ops issue at up to `issue_width`
// per cycle, wait for their producer when annotated dep-prev, occupy a ROB
// entry until in-order retirement, and complete after an execution latency
// supplied by the memory system for memory ops. Host atomic instructions in
// the baseline serialize the pipeline (write-buffer drain + freeze, Section
// II-D); offloaded PIM atomics behave like non-blocking loads.
//
// The model accumulates the attribution counters behind the paper's
// breakdowns: Fig 2 (frontend / badspec / retiring / backend) and Fig 9
// (atomic-inCore / atomic-inCache / other).
#ifndef GRAPHPIM_CPU_CORE_H_
#define GRAPHPIM_CPU_CORE_H_

#include <cstdint>
#include <vector>

#include "common/stats.h"
#include "common/types.h"
#include "cpu/memory_interface.h"
#include "cpu/uop.h"
#include "cpu/uop_stream.h"

namespace graphpim::cpu {

struct CoreParams {
  double freq_ghz = 2.0;      // Table IV
  int issue_width = 4;        // Table IV
  int rob_size = 192;
  int mispredict_penalty = 14;      // cycles
  int atomic_incore_overhead = 10;  // cycles: freeze + write-buffer drain
  int fp_compute_lat = 4;           // cycles for FP ALU ops
};

// Each core accumulates its replay counters in its own small StatRegistry
// under the "core." scope:
//   core.insts, core.computes, core.branches, core.mispredicts,
//   core.loads, core.stores, core.atomics, core.offloaded_atomics,
// and the attribution sums (in Ticks) behind Fig 2 / Fig 9:
//   core.atomic_incore_ticks   — freeze + drain + RMW wait (baseline)
//   core.atomic_incache_ticks  — tag walks + coherence for atomics
//   core.atomic_dep_ticks      — dependents waiting on offloaded atomics
//   core.badspec_ticks, core.frontend_ticks
// Per-core registries merge into the run's unified registry via
// StatRegistry::Merge; the "core." scope is hidden from the compatibility
// Items() view (it surfaces through SimResults headline fields instead).

class OooCore {
 public:
  enum class Status {
    kRunning,   // paused at the quantum boundary, more ops pending
    kBarrier,   // reached a barrier op; waiting for release
    kDone,      // trace exhausted
  };

  OooCore(int id, const CoreParams& params, MemoryInterface* mem);

  // Installs the trace to replay and resets all core state.
  void Reset(const UopStream* trace);

  // Advances until `until` ticks, a barrier, or the end of the trace.
  Status Advance(Tick until);

  // Barrier handling: when Advance() returns kBarrier, arrival time is the
  // tick at which all prior work completed. ReleaseBarrier() resumes the
  // core no earlier than `release`.
  Tick BarrierArrival() const { return barrier_arrival_; }
  void ReleaseBarrier(Tick release);

  // Current core time (issue front). After kDone, the completion time of
  // all work.
  Tick Now() const;

  // Earliest tick at which this core can issue again (accounts for
  // pending pipeline blocks); lets the run loop skip dead quanta.
  Tick NextReadyTick() const {
    return issue_block_ > issue_tick_ ? issue_block_ : issue_tick_;
  }

  int id() const { return id_; }
  const StatRegistry& stats() const { return stats_; }

  Tick CyclesToTicks(std::uint64_t cycles) const {
    return static_cast<Tick>(static_cast<double>(cycles) * 1000.0 / params_.freq_ghz);
  }

 private:
  struct RobEntry {
    Tick complete = 0;
    bool is_atomic = false;
  };

  // Issues one op; returns false if it was a barrier (not consumed-past).
  void IssueOp(const MicroOp& op);

  // Earliest tick a new op can issue given bandwidth, ROB space and flushes.
  Tick NextIssueSlot();

  // Consumes one issue slot at tick `t`.
  void ConsumeIssueSlot(Tick t);

  int id_;
  CoreParams params_;
  MemoryInterface* mem_;
  Tick cycle_ticks_;

  const UopStream* trace_ = nullptr;
  std::size_t pos_ = 0;

  // Issue bandwidth state.
  Tick issue_tick_ = 0;   // cycle-aligned tick of the current issue group
  int issued_in_cycle_ = 0;
  Tick issue_block_ = 0;  // no issue before this (flush / serialization)

  // ROB: fixed ring.
  std::vector<RobEntry> rob_;
  std::size_t rob_head_ = 0;
  std::size_t rob_count_ = 0;

  Tick prev_complete_ = 0;       // producer for dep-prev consumers
  bool prev_was_atomic_ = false;
  Tick max_outstanding_ = 0;     // max completion of all issued ops
  Tick max_store_complete_ = 0;  // write-buffer drain horizon

  Tick barrier_arrival_ = 0;

  StatRegistry stats_;
  StatId sid_insts_;
  StatId sid_computes_;
  StatId sid_branches_;
  StatId sid_mispredicts_;
  StatId sid_loads_;
  StatId sid_stores_;
  StatId sid_atomics_;
  StatId sid_offloaded_atomics_;
  StatId sid_atomic_incore_ticks_;
  StatId sid_atomic_incache_ticks_;
  StatId sid_atomic_dep_ticks_;
  StatId sid_badspec_ticks_;
  StatId sid_frontend_ticks_;
};

}  // namespace graphpim::cpu

#endif  // GRAPHPIM_CPU_CORE_H_
