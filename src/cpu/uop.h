// Micro-operations: the unit of work exchanged between the workload layer
// (which generates them while executing functionally) and the timing model
// (which replays them under each machine configuration).
//
// A micro-op carries everything the timing model needs: the operation kind,
// the simulated address and size, which data component it touches (meta /
// structure / property, Section II-C), the HMC atomic command it maps to
// (Table II), and dependency/branch-outcome annotations fixed at generation
// time so that every configuration replays the identical stream.
#ifndef GRAPHPIM_CPU_UOP_H_
#define GRAPHPIM_CPU_UOP_H_

#include <cstdint>

#include "common/types.h"
#include "hmc/atomic.h"

namespace graphpim::cpu {

enum class OpType : std::uint8_t {
  kCompute = 0,  // ALU/FP work; latency in compute_lat cycles
  kBranch = 1,   // conditional branch (mispredict flag decided at gen time)
  kLoad = 2,
  kStore = 3,
  kAtomic = 4,   // host atomic instruction ("lock"-prefixed in x86 terms)
  kBarrier = 5,  // synchronizes all threads (superstep boundary)
  // Persistency ops (DESIGN.md §14). Only persist-mode traces emit these;
  // with pmem.enable=0 they are zero-latency no-ops in the memory system.
  kFlush = 6,    // clwb-style cache-line writeback of addr's 64B line
  kFence = 7,    // sfence-style persist barrier: drains prior flushes
};

// MicroOp::flags bits.
inline constexpr std::uint8_t kFlagDepPrev = 1u << 0;      // depends on previous op
inline constexpr std::uint8_t kFlagWantReturn = 1u << 1;   // atomic needs its result
inline constexpr std::uint8_t kFlagMispredict = 1u << 2;   // branch was mispredicted
inline constexpr std::uint8_t kFlagFpCompute = 1u << 3;    // FP ALU op (longer lat)
// Marks the load of a compiler-identified comparison block (load; cmp;
// branch; CAS) that may fuse into one CAS-if-greater/less PIM atomic
// (Section III-B; see workloads/fusion.h).
inline constexpr std::uint8_t kFlagFusableCmp = 1u << 4;

struct MicroOp {
  Addr addr = 0;
  OpType type = OpType::kCompute;
  DataComponent comp = DataComponent::kMeta;
  hmc::AtomicOp aop = hmc::AtomicOp::kAdd16;
  std::uint8_t size = 8;
  std::uint8_t flags = 0;
  std::uint8_t compute_lat = 1;  // cycles, for kCompute

  bool DepPrev() const { return (flags & kFlagDepPrev) != 0; }
  bool WantReturn() const { return (flags & kFlagWantReturn) != 0; }
  bool Mispredict() const { return (flags & kFlagMispredict) != 0; }
};

static_assert(sizeof(MicroOp) <= 16, "MicroOp should stay compact");

}  // namespace graphpim::cpu

#endif  // GRAPHPIM_CPU_UOP_H_
