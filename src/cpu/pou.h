// PIM Offloading Unit (POU), Section III-B.
//
// The POU sits in each host core and decides the data path of memory
// instructions: an atomic instruction whose target address falls inside the
// PIM Memory Region (PMR) is offloaded to the HMC as a PIM-atomic command;
// every other access to the PMR bypasses the cache hierarchy (uncacheable
// semantics); accesses outside the PMR use the normal cached path.
//
// The PMR itself is a contiguous uncacheable range registered by the graph
// framework's pmr_malloc allocator (graph/region.h).
#ifndef GRAPHPIM_CPU_POU_H_
#define GRAPHPIM_CPU_POU_H_

#include "common/types.h"
#include "cpu/uop.h"

namespace graphpim::cpu {

class PimOffloadUnit {
 public:
  PimOffloadUnit() = default;

  // Registers the PMR address range [base, end).
  void SetPmr(Addr base, Addr end) {
    pmr_base_ = base;
    pmr_end_ = end;
  }

  bool InPmr(Addr addr) const { return addr >= pmr_base_ && addr < pmr_end_; }

  // True if `op` must be offloaded as a PIM-atomic (atomic hitting the PMR).
  bool ShouldOffload(const MicroOp& op) const {
    return op.type == OpType::kAtomic && InPmr(op.addr);
  }

  // True if `op` must bypass the cache hierarchy (any PMR access).
  bool BypassesCache(const MicroOp& op) const {
    return (op.type == OpType::kLoad || op.type == OpType::kStore ||
            op.type == OpType::kAtomic) &&
           InPmr(op.addr);
  }

  // The data-path decision the POU makes for `op`, as a stable small
  // integer (recorded as the kPouDecision span detail and usable for
  // decision-level analysis without re-deriving the routing rules).
  enum class Route : std::uint8_t {
    kHost = 0,        // cacheable path, no PMR involvement
    kOffloadAtomic,   // PIM-atomic command to the HMC
    kUncacheable,     // PMR load/store, cache bypass
  };
  Route Classify(const MicroOp& op) const {
    if (ShouldOffload(op)) return Route::kOffloadAtomic;
    if (BypassesCache(op)) return Route::kUncacheable;
    return Route::kHost;
  }

  Addr pmr_base() const { return pmr_base_; }
  Addr pmr_end() const { return pmr_end_; }

 private:
  Addr pmr_base_ = 0;
  Addr pmr_end_ = 0;
};

}  // namespace graphpim::cpu

#endif  // GRAPHPIM_CPU_POU_H_
