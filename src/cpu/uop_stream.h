// Tiled structure-of-arrays micro-op streams (DESIGN.md §15).
//
// A UopStream stores one hardware thread's micro-op trace as a chain of
// fixed-size TraceTiles whose columns (addr / type / comp / aop / size /
// flags / compute_lat) are split arrays. The layout buys two things over
// the old std::vector<MicroOp> AoS:
//
//   * replay locality — OooCore::Advance walks one ~14KB tile at a time
//     (comfortably L2-resident even on the scaled machines), and the
//     barrier scan touches only the 1KB type column;
//   * allocation behavior — tiles are allocated once and never move, so
//     TraceBuilder::Push degenerates to a column write plus a rare 14KB
//     tile allocation instead of geometric reallocation-and-copy of a
//     multi-hundred-MB vector.
//
// The container keeps a vector-compatible surface (push_back / reserve /
// size / operator[] / value-yielding iterators) so trace transforms
// (ReplaceAtomicsWithPlain, fusion), the persist checker, and tests
// migrate without semantic change. operator[] and the iterator return
// MicroOp BY VALUE, materialized from the columns — callers that bind a
// `const MicroOp&` get a lifetime-extended temporary, which is fine for
// every existing read-only use.
#ifndef GRAPHPIM_CPU_UOP_STREAM_H_
#define GRAPHPIM_CPU_UOP_STREAM_H_

#include <cstddef>
#include <cstdint>
#include <initializer_list>
#include <memory>
#include <vector>

#include "cpu/uop.h"

namespace graphpim::cpu {

// 1024 ops per tile: 8KB addr column + 6 x 1KB byte columns = 14KB.
inline constexpr std::size_t kTileShift = 10;
inline constexpr std::size_t kTileOps = std::size_t{1} << kTileShift;
inline constexpr std::size_t kTileMask = kTileOps - 1;

// One SoA segment. Lanes [0, count) of the owning stream's tail tile are
// live; interior tiles are always full.
struct TraceTile {
  Addr addr[kTileOps];
  std::uint8_t type[kTileOps];
  std::uint8_t comp[kTileOps];
  std::uint8_t aop[kTileOps];
  std::uint8_t size[kTileOps];
  std::uint8_t flags[kTileOps];
  std::uint8_t compute_lat[kTileOps];

  // Materializes lane `l` as a MicroOp (seven column reads).
  MicroOp Get(std::size_t l) const {
    MicroOp op;
    op.addr = addr[l];
    op.type = static_cast<OpType>(type[l]);
    op.comp = static_cast<DataComponent>(comp[l]);
    op.aop = static_cast<hmc::AtomicOp>(aop[l]);
    op.size = size[l];
    op.flags = flags[l];
    op.compute_lat = compute_lat[l];
    return op;
  }

  void Set(std::size_t l, const MicroOp& op) {
    addr[l] = op.addr;
    type[l] = static_cast<std::uint8_t>(op.type);
    comp[l] = static_cast<std::uint8_t>(op.comp);
    aop[l] = static_cast<std::uint8_t>(op.aop);
    size[l] = op.size;
    flags[l] = op.flags;
    compute_lat[l] = op.compute_lat;
  }
};

class UopStream {
 public:
  UopStream() = default;
  UopStream(std::initializer_list<MicroOp> ops) {
    reserve(ops.size());
    for (const MicroOp& op : ops) push_back(op);
  }
  UopStream(std::size_t count, const MicroOp& op) {
    reserve(count);
    for (std::size_t i = 0; i < count; ++i) push_back(op);
  }

  // Tiles never move once allocated, but copies must be deep (Trace is
  // copied by drivers before fusion / trace-in substitution).
  UopStream(const UopStream& other) { *this = other; }
  UopStream& operator=(const UopStream& other) {
    if (this == &other) return *this;
    tiles_.clear();
    tiles_.reserve(other.tiles_.size());
    for (const auto& t : other.tiles_) {
      tiles_.push_back(std::make_unique<TraceTile>(*t));
    }
    size_ = other.size_;
    return *this;
  }
  UopStream(UopStream&&) = default;
  UopStream& operator=(UopStream&&) = default;

  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  // Reserves tile-pointer capacity for `n` ops. Tiles themselves are
  // allocated lazily (one 14KB block per kTileOps pushes).
  void reserve(std::size_t n) { tiles_.reserve((n + kTileMask) >> kTileShift); }

  void push_back(const MicroOp& op) {
    const std::size_t lane = size_ & kTileMask;
    if (lane == 0 && (size_ >> kTileShift) == tiles_.size()) {
      tiles_.push_back(std::make_unique<TraceTile>());
    }
    tiles_[size_ >> kTileShift]->Set(lane, op);
    ++size_;
  }

  void clear() {
    tiles_.clear();
    size_ = 0;
  }

  MicroOp operator[](std::size_t i) const {
    return tiles_[i >> kTileShift]->Get(i & kTileMask);
  }

  // Direct tile access for the column-wise replay loop.
  std::size_t num_tiles() const { return tiles_.size(); }
  const TraceTile& tile(std::size_t t) const { return *tiles_[t]; }

  // Bytes resident for this stream's ops (tiles plus the pointer spine) —
  // the figure behind the report's trace.peak_bytes line.
  std::uint64_t BytesUsed() const {
    return static_cast<std::uint64_t>(tiles_.size()) * sizeof(TraceTile) +
           static_cast<std::uint64_t>(tiles_.capacity()) *
               sizeof(std::unique_ptr<TraceTile>);
  }

  // Forward value iterator (yields MicroOp by value).
  class const_iterator {
   public:
    using value_type = MicroOp;
    using difference_type = std::ptrdiff_t;

    const_iterator() = default;
    const_iterator(const UopStream* s, std::size_t i) : s_(s), i_(i) {}
    MicroOp operator*() const { return (*s_)[i_]; }
    const_iterator& operator++() {
      ++i_;
      return *this;
    }
    const_iterator operator++(int) {
      const_iterator t = *this;
      ++i_;
      return t;
    }
    bool operator==(const const_iterator& o) const { return i_ == o.i_; }
    bool operator!=(const const_iterator& o) const { return i_ != o.i_; }

   private:
    const UopStream* s_ = nullptr;
    std::size_t i_ = 0;
  };

  const_iterator begin() const { return const_iterator(this, 0); }
  const_iterator end() const { return const_iterator(this, size_); }

 private:
  std::vector<std::unique_ptr<TraceTile>> tiles_;
  std::size_t size_ = 0;
};

}  // namespace graphpim::cpu

#endif  // GRAPHPIM_CPU_UOP_STREAM_H_
