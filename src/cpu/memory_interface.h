// The core's view of the memory system.
//
// The machine configuration (core/system.h) implements this interface and
// routes each memory micro-op according to the active offloading policy:
// through the cache hierarchy, or — when the POU matches the PMR — directly
// to the HMC as a PIM command.
#ifndef GRAPHPIM_CPU_MEMORY_INTERFACE_H_
#define GRAPHPIM_CPU_MEMORY_INTERFACE_H_

#include "common/types.h"
#include "cpu/uop.h"

namespace graphpim::cpu {

// Timing outcome of one memory micro-op.
struct MemOutcome {
  Tick complete = 0;        // when the value is available to dependents
  Tick retire_ready = 0;    // when the op may leave the ROB (posted ops: early)
  bool serializing = false; // host locked-RMW semantics: freeze the pipeline
  Tick check_ticks = 0;     // cache tag-walk + coherence time (attribution)
  bool offloaded = false;   // executed as a PIM command in the HMC
  // Backpressure: the core may not issue further ops before this tick
  // (UC/WC buffer or MSHR pool was full). 0 = none.
  Tick issue_stall_until = 0;
};

class MemoryInterface {
 public:
  virtual ~MemoryInterface() = default;

  // Issues the memory portion of `op` from `core` at time `when`.
  virtual MemOutcome Access(int core, const MicroOp& op, Tick when) = 0;
};

}  // namespace graphpim::cpu

#endif  // GRAPHPIM_CPU_MEMORY_INTERFACE_H_
