#include "common/trace.h"

#include <cmath>
#include <fstream>

#include "common/log.h"
#include "common/string_util.h"

namespace graphpim::trace {

namespace {

// Ticks are picoseconds; Chrome trace timestamps are microseconds.
double TickToUs(Tick t) { return static_cast<double>(t) / 1e6; }

double TickToNs(Tick t) {
  return static_cast<double>(t) / static_cast<double>(kTicksPerNs);
}

}  // namespace

std::string FormatStatValue(double v) {
  if (std::nearbyint(v) == v && std::fabs(v) < 9.007199254740992e15) {
    return StrFormat("%.0f", v);
  }
  return StrFormat("%.6g", v);
}

void PhaseLog::Cut(std::string name, Tick start, Tick end,
                   const StatRegistry& reg) {
  StatSnapshot now = reg.Snapshot();
  PhaseRecord rec;
  rec.name = std::move(name);
  rec.start = start;
  rec.end = end;
  rec.deltas = DeltaItems(now, prev_);
  prev_ = std::move(now);
  phases_.push_back(std::move(rec));
}

void PhaseLog::Clear() {
  phases_.clear();
  prev_ = StatSnapshot();
}

std::string ToChromeTrace(const PhaseLog& log, const SpanLog* spans) {
  TraceExtras extras;
  extras.spans = spans;
  return ToChromeTrace(log, extras);
}

std::string ToChromeTrace(const PhaseLog& log, const TraceExtras& extras) {
  const SpanLog* spans = extras.spans;
  std::string out = "{\"displayTimeUnit\":\"ns\",\"traceEvents\":[";
  bool first = true;
  auto emit = [&](const std::string& event) {
    if (!first) out += ',';
    first = false;
    out += "\n";
    out += event;
  };
  for (const auto& ph : log.phases()) {
    // One complete ("X") slice per phase, deltas attached as args.
    std::string ev = StrFormat(
        "{\"name\":\"%s\",\"ph\":\"X\",\"pid\":1,\"tid\":1,"
        "\"ts\":%.6f,\"dur\":%.6f,\"args\":{",
        JsonEscape(ph.name).c_str(), TickToUs(ph.start),
        TickToUs(ph.end) - TickToUs(ph.start));
    bool farg = true;
    for (const auto& [k, v] : ph.deltas) {
      if (!farg) ev += ',';
      farg = false;
      ev += '"' + JsonEscape(k) + "\":" + FormatStatValue(v);
    }
    ev += "}}";
    emit(ev);
    // One counter ("C") event per delta so Perfetto draws counter tracks.
    for (const auto& [k, v] : ph.deltas) {
      emit(StrFormat(
          "{\"name\":\"%s\",\"ph\":\"C\",\"pid\":1,\"ts\":%.6f,"
          "\"args\":{\"delta\":%s}}",
          JsonEscape(k).c_str(), TickToUs(ph.end),
          FormatStatValue(v).c_str()));
    }
  }
  if (spans != nullptr && !spans->empty()) {
    const std::string events = SpansToChromeEvents(*spans);
    if (!events.empty()) {
      if (!first) out += ',';
      first = false;
      out += events;
    }
  }
  if (!extras.chrome_events.empty()) {
    if (!first) out += ',';
    first = false;
    out += extras.chrome_events;
  }
  // The empty document must still be strict JSON: "traceEvents":[] with no
  // stray newline inside the array.
  out += first ? "]}\n" : "\n]}\n";
  return out;
}

std::string ToJsonl(const PhaseLog& log) {
  std::string out;
  for (const auto& ph : log.phases()) {
    out += StrFormat("{\"phase\":\"%s\",\"start_ns\":%.3f,\"end_ns\":%.3f,\"deltas\":{",
                     JsonEscape(ph.name).c_str(), TickToNs(ph.start),
                     TickToNs(ph.end));
    bool first = true;
    for (const auto& [k, v] : ph.deltas) {
      if (!first) out += ',';
      first = false;
      out += '"' + JsonEscape(k) + "\":" + FormatStatValue(v);
    }
    out += "}}\n";
  }
  return out;
}

void WriteTrace(const PhaseLog& log, const std::string& path,
                const SpanLog* spans) {
  TraceExtras extras;
  extras.spans = spans;
  WriteTrace(log, path, extras);
}

void WriteTrace(const PhaseLog& log, const std::string& path,
                const TraceExtras& extras) {
  const bool jsonl =
      path.size() >= 6 && path.compare(path.size() - 6, 6, ".jsonl") == 0;
  std::ofstream f(path, std::ios::binary);
  if (!f) GP_THROW("cannot open metrics output file '", path, "'");
  if (jsonl) {
    f << ToJsonl(log);
    if (extras.spans != nullptr) f << SpansToJsonl(*extras.spans);
    f << extras.jsonl_lines;
  } else {
    f << ToChromeTrace(log, extras);
  }
  if (!f) GP_THROW("failed writing metrics output file '", path, "'");
}

}  // namespace graphpim::trace
