#include "common/stats.h"

namespace graphpim {

StatId StatRegistry::Intern(std::string_view name) {
  auto it = index_.find(std::string(name));
  if (it != index_.end()) return StatId(it->second);
  const std::uint32_t idx = static_cast<std::uint32_t>(values_.size());
  values_.push_back(0.0);
  touched_.push_back(0);
  names_.emplace_back(name);
  index_.emplace(names_.back(), idx);
  return StatId(idx);
}

void StatRegistry::Merge(const StatRegistry& other) {
  for (std::size_t i = 0; i < other.values_.size(); ++i) {
    if (other.touched_[i] == 0) continue;
    Add(Intern(other.names_[i]), other.values_[i]);
  }
}

void StatRegistry::Reset() {
  for (std::size_t i = 0; i < values_.size(); ++i) {
    values_[i] = 0.0;
    touched_[i] = 0;
  }
}

std::vector<std::pair<std::string, double>> StatRegistry::Items() const {
  std::vector<std::pair<std::string, double>> out;
  out.reserve(values_.size());
  for (std::size_t i = 0; i < values_.size(); ++i) {
    if (touched_[i] == 0 || HiddenName(names_[i])) continue;
    out.emplace_back(names_[i], values_[i]);
  }
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<std::pair<std::string, double>> StatRegistry::AllItems() const {
  std::vector<std::pair<std::string, double>> out;
  out.reserve(values_.size());
  for (std::size_t i = 0; i < values_.size(); ++i) {
    if (touched_[i] == 0) continue;
    out.emplace_back(names_[i], values_[i]);
  }
  std::sort(out.begin(), out.end());
  return out;
}

StatSnapshot StatRegistry::Snapshot() const {
  StatSnapshot snap;
  snap.values = AllItems();
  return snap;
}

std::vector<std::pair<std::string, double>> DeltaItems(
    const StatSnapshot& now, const StatSnapshot& since) {
  std::vector<std::pair<std::string, double>> out;
  out.reserve(now.values.size());
  // Both sides are name-sorted: a single linear merge pass.
  std::size_t j = 0;
  for (const auto& [name, value] : now.values) {
    while (j < since.values.size() && since.values[j].first < name) ++j;
    const double before =
        (j < since.values.size() && since.values[j].first == name)
            ? since.values[j].second
            : 0.0;
    if (value != before) out.emplace_back(name, value - before);
  }
  return out;
}

}  // namespace graphpim
