#include "common/span.h"

#include <cmath>

#include "common/random.h"
#include "common/stats.h"
#include "common/string_util.h"

namespace graphpim::trace {

namespace {

// Salt mixed into the request-id hash so id 0 (core 0, first request) is
// not a degenerate SplitMix64 seed. A fixed constant keeps the sampling
// decision a pure function of the id.
constexpr std::uint64_t kSpanSalt = 0x5370616e52656364ULL;  // "SpanRecd"

double TickToNs(Tick t) {
  return static_cast<double>(t) / static_cast<double>(kTicksPerNs);
}

std::uint64_t SampleThreshold(double sample_rate) {
  if (sample_rate <= 0.0) return 0;
  if (sample_rate >= 1.0) return ~0ULL;
  // sample_rate in (0,1): the product is strictly below 2^64, so the cast
  // is well defined.
  return static_cast<std::uint64_t>(sample_rate * 0x1p64);
}

bool SampledAgainst(std::uint64_t threshold, bool sample_all,
                    std::uint64_t request_id) {
  if (sample_all) return true;
  return SplitMix64(request_id ^ kSpanSalt).Next() < threshold;
}

}  // namespace

const char* ToString(SpanStage s) {
  switch (s) {
    case SpanStage::kIssue:
      return "issue";
    case SpanStage::kCacheLookup:
      return "cache";
    case SpanStage::kPouDecision:
      return "pou";
    case SpanStage::kHopLink:
      return "hop";
    case SpanStage::kCubeLink:
      return "cube_link";
    case SpanStage::kVaultQueue:
      return "vault_queue";
    case SpanStage::kBankAccess:
      return "bank";
    case SpanStage::kAtomicFu:
      return "fu";
    case SpanStage::kResponse:
      return "response";
    case SpanStage::kCount:
      break;
  }
  return "?";
}

std::uint64_t SpanRequestId(int core, std::uint64_t ordinal) {
  return (static_cast<std::uint64_t>(static_cast<std::uint32_t>(core)) << 48) |
         (ordinal & ((1ULL << 48) - 1));
}

bool SampleSpan(double sample_rate, std::uint64_t request_id) {
  return SampledAgainst(SampleThreshold(sample_rate), sample_rate >= 1.0,
                        request_id);
}

SpanRecorder::SpanRecorder(double sample_rate, std::size_t max_spans)
    : sample_rate_(sample_rate),
      threshold_(SampleThreshold(sample_rate)),
      sample_all_(sample_rate >= 1.0),
      max_spans_(max_spans) {}

SpanRef SpanRecorder::Begin(std::uint64_t id, int core, char kind, Addr addr,
                            Tick begin) {
  if (!SampledAgainst(threshold_, sample_all_, id)) return SpanRef();
  if (max_spans_ != 0 && log_.spans.size() >= max_spans_) return SpanRef();
  SpanRecord rec;
  rec.id = id;
  rec.core = core;
  rec.kind = kind;
  rec.addr = addr;
  rec.begin = begin;
  rec.end = begin;
  log_.spans.push_back(std::move(rec));
  return SpanRef(static_cast<std::uint32_t>(log_.spans.size() - 1));
}

void SpanRecorder::Stage(SpanRef ref, SpanStage stage, Tick enter, Tick exit,
                         std::uint32_t detail) {
  if (!ref.valid()) return;
  SpanStageRecord st;
  st.stage = stage;
  st.detail = detail;
  st.enter = enter;
  st.exit = exit;
  log_.spans[ref.index()].stages.push_back(st);
}

void SpanRecorder::End(SpanRef ref, Tick end, bool offloaded) {
  if (!ref.valid()) return;
  SpanRecord& rec = log_.spans[ref.index()];
  rec.end = end;
  rec.offloaded = offloaded;
}

const SpanRecord* FindSpan(const SpanLog& log, std::uint64_t id) {
  for (const SpanRecord& sp : log.spans) {
    if (sp.id == id) return &sp;
  }
  return nullptr;
}

std::string FormatSpanChain(const SpanRecord& sp) {
  std::string s = StrFormat(
      "span %c t%d#%llu 0x%llx [%.1f, %.1f] ns:", sp.kind, sp.core,
      static_cast<unsigned long long>(sp.id & ((1ULL << 48) - 1)),
      static_cast<unsigned long long>(sp.addr), TickToNs(sp.begin),
      TickToNs(sp.end));
  bool first = true;
  for (const SpanStageRecord& st : sp.stages) {
    s += StrFormat("%s %s %.1f", first ? "" : " |", ToString(st.stage),
                   TickToNs(st.exit - st.enter));
    first = false;
  }
  if (sp.offloaded) s += " (offloaded)";
  return s;
}

void FoldSpanStats(const SpanLog& log, StatRegistry* reg) {
  if (log.empty() || reg == nullptr) return;
  // 1 ns buckets x 65536 cover latencies up to ~64 us at single-ns
  // resolution; heavier tails land in the overflow bucket and report the
  // true max.
  constexpr double kBucketNs = 1.0;
  constexpr std::size_t kBuckets = 65536;
  const std::size_t kNumStages = static_cast<std::size_t>(SpanStage::kCount);
  std::vector<Histogram> per_stage(kNumStages, Histogram(kBucketNs, kBuckets));
  std::vector<double> atomic_stage_sum(kNumStages, 0.0);
  std::vector<std::uint64_t> atomic_stage_count(kNumStages, 0);
  Histogram atomic_total(kBucketNs, kBuckets);
  double atomic_unattributed = 0.0;
  std::uint64_t atomics = 0;
  for (const SpanRecord& sp : log.spans) {
    const bool is_atomic = sp.kind == 'A';
    double attributed = 0.0;
    for (const SpanStageRecord& st : sp.stages) {
      const double ns = TickToNs(st.exit - st.enter);
      const std::size_t idx = static_cast<std::size_t>(st.stage);
      per_stage[idx].Record(ns);
      attributed += ns;
      if (is_atomic) {
        atomic_stage_sum[idx] += ns;
        ++atomic_stage_count[idx];
      }
    }
    if (is_atomic) {
      ++atomics;
      const double total = TickToNs(sp.end - sp.begin);
      atomic_total.Record(total);
      if (total > attributed) atomic_unattributed += total - attributed;
    }
  }
  reg->Set("span.sampled", static_cast<double>(log.spans.size()));
  for (std::size_t i = 0; i < kNumStages; ++i) {
    const Histogram& h = per_stage[i];
    if (h.total() == 0) continue;
    const std::string base = std::string("span.") + ToString(static_cast<SpanStage>(i));
    reg->Set(base + ".count", static_cast<double>(h.total()));
    reg->Set(base + ".sum_ns", h.mean() * static_cast<double>(h.total()));
    reg->Set(base + ".mean", h.mean());
    reg->Set(base + ".p50", h.Percentile(50.0));
    reg->Set(base + ".p95", h.Percentile(95.0));
    reg->Set(base + ".p99", h.Percentile(99.0));
  }
  if (atomics > 0) {
    reg->Set("span.atomic.count", static_cast<double>(atomics));
    reg->Set("span.atomic.total_ns",
             atomic_total.mean() * static_cast<double>(atomics));
    reg->Set("span.atomic.mean", atomic_total.mean());
    reg->Set("span.atomic.p50", atomic_total.Percentile(50.0));
    reg->Set("span.atomic.p95", atomic_total.Percentile(95.0));
    reg->Set("span.atomic.p99", atomic_total.Percentile(99.0));
    reg->Set("span.atomic.unattributed_ns", atomic_unattributed);
    for (std::size_t i = 0; i < kNumStages; ++i) {
      if (atomic_stage_count[i] == 0) continue;
      const std::string base =
          std::string("span.atomic.") + ToString(static_cast<SpanStage>(i));
      reg->Set(base + ".count", static_cast<double>(atomic_stage_count[i]));
      reg->Set(base + ".sum_ns", atomic_stage_sum[i]);
    }
  }
}

std::string SpanToJson(const SpanRecord& sp) {
  std::string out = StrFormat(
      "{\"id\":%llu,\"core\":%d,\"kind\":\"%c\",\"addr\":%llu,"
      "\"begin_ns\":%.3f,\"end_ns\":%.3f,\"offloaded\":%d,\"stages\":[",
      static_cast<unsigned long long>(sp.id), sp.core, sp.kind,
      static_cast<unsigned long long>(sp.addr), TickToNs(sp.begin),
      TickToNs(sp.end), sp.offloaded ? 1 : 0);
  bool first = true;
  for (const SpanStageRecord& st : sp.stages) {
    if (!first) out += ',';
    first = false;
    out += StrFormat("{\"s\":\"%s\",\"d\":%u,\"enter_ns\":%.3f,\"exit_ns\":%.3f}",
                     ToString(st.stage), st.detail, TickToNs(st.enter),
                     TickToNs(st.exit));
  }
  out += "]}";
  return out;
}

std::string SpansToJsonl(const SpanLog& log) {
  std::string out;
  for (const SpanRecord& sp : log.spans) {
    out += SpanToJson(sp);
    out += '\n';
  }
  return out;
}

std::string SpansToChromeEvents(const SpanLog& log) {
  if (log.empty()) return std::string();
  auto tick_us = [](Tick t) { return static_cast<double>(t) / 1e6; };
  std::string out;
  bool first = true;
  auto emit = [&](const std::string& event) {
    if (!first) out += ',';
    first = false;
    out += "\n";
    out += event;
  };
  // Track naming: pid 1 holds the phase timeline (see ToChromeTrace),
  // pid 2 one row per core, pid 3 one row per cube, pid 4 one row per
  // vault track.
  emit("{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":2,"
       "\"args\":{\"name\":\"cores\"}}");
  emit("{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":3,"
       "\"args\":{\"name\":\"cubes\"}}");
  emit("{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":4,"
       "\"args\":{\"name\":\"vaults\"}}");
  for (const SpanRecord& sp : log.spans) {
    const char* kind = sp.kind == 'A' ? "atomic" : sp.kind == 'W' ? "store"
                                                                  : "load";
    emit(StrFormat(
        "{\"name\":\"%s\",\"ph\":\"X\",\"pid\":2,\"tid\":%d,"
        "\"ts\":%.6f,\"dur\":%.6f,\"args\":{\"id\":\"%llu\","
        "\"addr\":\"0x%llx\",\"offloaded\":%d}}",
        kind, sp.core, tick_us(sp.begin), tick_us(sp.end - sp.begin),
        static_cast<unsigned long long>(sp.id),
        static_cast<unsigned long long>(sp.addr), sp.offloaded ? 1 : 0));
    for (const SpanStageRecord& st : sp.stages) {
      int pid = 2;
      int tid = sp.core;
      switch (st.stage) {
        case SpanStage::kHopLink:
        case SpanStage::kCubeLink:
        case SpanStage::kResponse:
          pid = 3;
          tid = static_cast<int>(st.detail);
          break;
        case SpanStage::kVaultQueue:
        case SpanStage::kBankAccess:
        case SpanStage::kAtomicFu:
          pid = 4;
          tid = static_cast<int>(st.detail);
          break;
        default:
          break;
      }
      emit(StrFormat(
          "{\"name\":\"span.%s\",\"ph\":\"X\",\"pid\":%d,\"tid\":%d,"
          "\"ts\":%.6f,\"dur\":%.6f,\"args\":{\"id\":\"%llu\"}}",
          ToString(st.stage), pid, tid, tick_us(st.enter),
          tick_us(st.exit - st.enter),
          static_cast<unsigned long long>(sp.id)));
    }
  }
  return out;
}

}  // namespace graphpim::trace
