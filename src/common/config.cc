#include "common/config.h"

#include <cstdlib>

#include "common/log.h"
#include "common/string_util.h"

namespace graphpim {

Config Config::FromArgs(int argc, char** argv) {
  Config cfg;
  for (int i = 1; i < argc; ++i) {
    std::string tok = argv[i];
    if (StartsWith(tok, "--")) tok = tok.substr(2);
    auto eq = tok.find('=');
    if (eq == std::string::npos) {
      GP_FATAL("malformed argument '", argv[i], "' (expected key=value)");
    }
    cfg.Set(Trim(tok.substr(0, eq)), Trim(tok.substr(eq + 1)));
  }
  return cfg;
}

void Config::Set(const std::string& key, const std::string& value) {
  values_[key] = value;
}

bool Config::Has(const std::string& key) const { return values_.count(key) > 0; }

std::string Config::GetString(const std::string& key, const std::string& def) const {
  auto it = values_.find(key);
  return it == values_.end() ? def : it->second;
}

std::int64_t Config::GetInt(const std::string& key, std::int64_t def) const {
  auto it = values_.find(key);
  if (it == values_.end()) return def;
  char* end = nullptr;
  std::int64_t v = std::strtoll(it->second.c_str(), &end, 0);
  if (end == nullptr || *end != '\0') {
    GP_FATAL("config key '", key, "': '", it->second, "' is not an integer");
  }
  return v;
}

std::uint64_t Config::GetUint(const std::string& key, std::uint64_t def) const {
  auto it = values_.find(key);
  if (it == values_.end()) return def;
  char* end = nullptr;
  std::uint64_t v = std::strtoull(it->second.c_str(), &end, 0);
  if (end == nullptr || *end != '\0') {
    GP_FATAL("config key '", key, "': '", it->second, "' is not an unsigned integer");
  }
  return v;
}

double Config::GetDouble(const std::string& key, double def) const {
  auto it = values_.find(key);
  if (it == values_.end()) return def;
  char* end = nullptr;
  double v = std::strtod(it->second.c_str(), &end);
  if (end == nullptr || *end != '\0') {
    GP_FATAL("config key '", key, "': '", it->second, "' is not a number");
  }
  return v;
}

bool Config::GetBool(const std::string& key, bool def) const {
  auto it = values_.find(key);
  if (it == values_.end()) return def;
  const std::string& v = it->second;
  if (v == "1" || v == "true" || v == "yes" || v == "on") return true;
  if (v == "0" || v == "false" || v == "no" || v == "off") return false;
  GP_FATAL("config key '", key, "': '", v, "' is not a boolean");
}

void Config::RequireKeys(const std::vector<std::string>& accepted) const {
  for (const auto& [key, value] : values_) {
    bool known = false;
    for (const std::string& a : accepted) {
      if (key == a) {
        known = true;
        break;
      }
    }
    if (!known) {
      std::string list;
      for (const std::string& a : accepted) {
        if (!list.empty()) list += "|";
        list += a;
      }
      GP_THROW("unknown option '--", key, "' (accepted: ", list, ")");
    }
  }
}

std::vector<std::pair<std::string, std::string>> Config::Items() const {
  return {values_.begin(), values_.end()};
}

}  // namespace graphpim
