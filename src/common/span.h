// Transaction flight recorder (DESIGN.md §12).
//
// A SpanRecorder deterministically samples memory requests and records one
// span chain per sampled transaction: every pipeline stage the request
// crosses (cache lookup, POU decision, link hops, vault queue, bank access,
// atomic FU, response return) stamped with enter/exit Ticks. Sampling is a
// pure function of the request id (SplitMix64 threshold test), so the set
// of sampled requests — and every stamp on them — is identical across
// --jobs counts, cube counts, and PIM modes, which is what makes PIM-on
// vs PIM-off attribution a paired comparison.
//
// Overhead contract: when tracing is off (trace.sample_rate=0) no recorder
// is constructed; every hook site reduces to one never-taken null-pointer
// branch and no span.* counters are interned, so goldens stay byte
// identical.
#ifndef GRAPHPIM_COMMON_SPAN_H_
#define GRAPHPIM_COMMON_SPAN_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "common/types.h"

namespace graphpim {
class StatRegistry;
}  // namespace graphpim

namespace graphpim::trace {

// Stage taxonomy. Stages are recorded in traversal order; each maps onto
// the exact Tick arithmetic of the component that models it, so per-stage
// sums reconcile with the aggregate latency counters by construction.
enum class SpanStage : std::uint8_t {
  kIssue = 0,     // backpressure before the fabric: UC-slot / MSHR / line /
                  // bus-lock wait at the issue point
  kCacheLookup,   // L1/L2/L3 tag walk on the host path (detail = hit level,
                  // 0 when the walk missed to memory)
  kPouDecision,   // POU data-path decision; zero modeled latency
                  // (detail = PouRoute)
  kHopLink,       // inter-cube SerDes hops, multi-cube only (detail = cube)
  kCubeLink,      // host->cube link serialization + crossbar, including
                  // retries and injected stalls (detail = cube)
  kVaultQueue,    // vault controller queue wait (detail = vault track)
  kBankAccess,    // DRAM bank access incl. bank-lock/refresh/row state
  kAtomicFu,      // PIM atomic FU wait + execute (offloaded atomics only)
  kResponse,      // cube->host response return (detail = cube)
  kCount
};

// Short stable name used for stat keys ("span.<name>.p50"), journal
// sidecars, and the attribution table.
const char* ToString(SpanStage s);

// Handle into a SpanRecorder's log. Default-constructed refs are invalid:
// hook sites stamp only through valid refs, so unsampled requests thread a
// no-op handle through the same call paths.
class SpanRef {
 public:
  SpanRef() = default;
  explicit SpanRef(std::uint32_t index) : index_(index) {}
  bool valid() const { return index_ != kInvalid; }
  std::uint32_t index() const { return index_; }

 private:
  static constexpr std::uint32_t kInvalid = 0xffffffffu;
  std::uint32_t index_ = kInvalid;
};

struct SpanStageRecord {
  SpanStage stage = SpanStage::kIssue;
  std::uint32_t detail = 0;  // stage-specific (cube id, vault track, level)
  Tick enter = 0;
  Tick exit = 0;
};

struct SpanRecord {
  std::uint64_t id = 0;  // (core << 48) | per-core request ordinal
  std::int32_t core = 0;
  char kind = 'R';  // 'R' load, 'W' store, 'A' atomic
  bool offloaded = false;
  Addr addr = 0;
  Tick begin = 0;  // issue into the memory system
  Tick end = 0;    // retirement-visible completion
  std::vector<SpanStageRecord> stages;
};

struct SpanLog {
  std::vector<SpanRecord> spans;
  bool empty() const { return spans.empty(); }
};

// Request ids are value-derived, never seed-derived: core index in the top
// 16 bits, the core's request ordinal below. Every memory micro-op calls
// the memory system exactly once in every mode, so the id of a given op is
// mode-, jobs-, and cube-invariant.
std::uint64_t SpanRequestId(int core, std::uint64_t ordinal);

// Deterministic sampling decision: SplitMix64 hash of the id against a
// precomputed threshold. Pure function of (sample_rate, id).
bool SampleSpan(double sample_rate, std::uint64_t request_id);

// Collects spans for one simulation run. Not thread-safe by design: the
// timing model replays cores sequentially inside one run, and each run
// owns its recorder.
class SpanRecorder {
 public:
  // `max_spans` bounds memory; 0 means unbounded. Once the cap is reached
  // further requests are not sampled (deterministically: the cap cuts the
  // same prefix of sampled ids in every run of the same workload).
  explicit SpanRecorder(double sample_rate, std::size_t max_spans = 0);

  double sample_rate() const { return sample_rate_; }

  // Starts a span if `id` falls under the sampling threshold; returns an
  // invalid ref otherwise.
  SpanRef Begin(std::uint64_t id, int core, char kind, Addr addr, Tick begin);

  // Appends a stage stamp to a live span. No-op on invalid refs.
  void Stage(SpanRef ref, SpanStage stage, Tick enter, Tick exit,
             std::uint32_t detail = 0);

  // Seals a span with its completion tick and final data path.
  void End(SpanRef ref, Tick end, bool offloaded);

  const SpanLog& log() const { return log_; }
  SpanLog TakeLog() { return std::move(log_); }

 private:
  double sample_rate_;
  std::uint64_t threshold_;  // sample iff hash(id) < threshold_
  bool sample_all_;
  std::size_t max_spans_;
  SpanLog log_;
};

// Linear lookup of the span with request id `id`; nullptr when that
// request was not sampled. Used by the persist-ordering checker to attach
// timing witnesses to violations.
const SpanRecord* FindSpan(const SpanLog& log, std::uint64_t id);

// One-line rendering of a span's stage chain:
//   "span W t0#42 0x400000010 [123.0, 161.5] ns: issue 0.0 | bank 36.2"
std::string FormatSpanChain(const SpanRecord& sp);

// Folds a span log into `span.*` registry counters: per-stage
// count/sum_ns/mean/p50/p95 histograms over all sampled requests, plus the
// atomic-only attribution family (span.atomic.<stage>.sum_ns etc.) that
// backs the bottleneck table. Touches nothing when the log is empty.
void FoldSpanStats(const SpanLog& log, StatRegistry* reg);

// One span as a single strict-JSON object (no trailing newline); the unit
// the journal sidecar embeds in its "spans" array.
std::string SpanToJson(const SpanRecord& sp);

// One JSON object per line, strict-JSON parseable:
//   {"id":...,"core":0,"kind":"A","addr":...,"begin_ns":...,"end_ns":...,
//    "offloaded":1,"stages":[{"s":"vault_queue","d":3,"enter_ns":...,
//    "exit_ns":...}]}
std::string SpansToJsonl(const SpanLog& log);

// The same spans as a comma-joined fragment of Chrome-trace events (no
// enclosing brackets), one track per core/cube/vault; used by
// ToChromeTrace to merge spans under the phase track.
std::string SpansToChromeEvents(const SpanLog& log);

}  // namespace graphpim::trace

#endif  // GRAPHPIM_COMMON_SPAN_H_
