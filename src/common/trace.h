// Phase-delta capture and trace export (DESIGN.md §10).
//
// A PhaseLog turns registry snapshots into a sequence of named phases
// (BSP supersteps, warmup/drain windows, anything the run loop wants to
// delimit), each carrying the counter deltas accrued during that phase.
// Export targets:
//   - Chrome trace JSON ("catapult" format, load in chrome://tracing or
//     Perfetto): one "X" complete event per phase plus "C" counter tracks.
//   - JSONL: one self-contained JSON object per phase, greppable and
//     streamable; also the format embedded in the sweep journal.
#ifndef GRAPHPIM_COMMON_TRACE_H_
#define GRAPHPIM_COMMON_TRACE_H_

#include <string>
#include <utility>
#include <vector>

#include "common/span.h"
#include "common/stats.h"
#include "common/types.h"

namespace graphpim::trace {

struct PhaseRecord {
  std::string name;
  Tick start = 0;  // ticks (picoseconds)
  Tick end = 0;
  // Counters that changed during the phase, name-sorted (value = delta).
  std::vector<std::pair<std::string, double>> deltas;
};

// Accumulates phases by diffing successive registry snapshots. Not
// thread-safe: cut phases from the orchestrating thread (the run loop's
// barrier rendezvous), never from workers.
class PhaseLog {
 public:
  // Records phase [start, end) with deltas relative to the previous Cut
  // (or to zero for the first). `reg` is the merged whole-system registry
  // at the cut point.
  void Cut(std::string name, Tick start, Tick end, const StatRegistry& reg);

  const std::vector<PhaseRecord>& phases() const { return phases_; }
  bool empty() const { return phases_.empty(); }
  void Clear();

 private:
  std::vector<PhaseRecord> phases_;
  StatSnapshot prev_;
};

// Extra pre-rendered content merged into a trace export. Layers above
// common/ (the telemetry timelines) hand their events down as strings so
// this file needs no upward dependency:
//   chrome_events — Chrome-trace events in the splice convention of
//                   SpansToChromeEvents: each event prefixed with "\n",
//                   events joined with ",". Appended inside traceEvents.
//   jsonl_lines   — newline-terminated JSON lines appended after the
//                   phase (and span) lines in JSONL output.
struct TraceExtras {
  const SpanLog* spans = nullptr;
  std::string chrome_events;
  std::string jsonl_lines;
};

// Chrome trace JSON (single object, "traceEvents" array). Timestamps are
// microseconds of simulated time. When `spans` is non-null its sampled
// transactions are merged in on their own core/cube/vault tracks next to
// the phase timeline. An empty log (and no spans) yields the canonical
// empty document {"displayTimeUnit":"ns","traceEvents":[]}.
std::string ToChromeTrace(const PhaseLog& log,
                          const SpanLog* spans = nullptr);
std::string ToChromeTrace(const PhaseLog& log, const TraceExtras& extras);

// One JSON object per line:
//   {"phase":"superstep.3","start_ns":...,"end_ns":...,"deltas":{...}}
std::string ToJsonl(const PhaseLog& log);

// Writes the log to `path`; ".jsonl" extension selects JSONL, anything
// else Chrome trace. Non-null `spans` are merged into the Chrome trace or
// appended as span lines after the phase lines in JSONL. Throws SimError
// on I/O failure.
void WriteTrace(const PhaseLog& log, const std::string& path,
                const SpanLog* spans = nullptr);
void WriteTrace(const PhaseLog& log, const std::string& path,
                const TraceExtras& extras);

// Formats a counter value the way trace/journal output expects: integral
// values without a fraction, others with shortest round-trip-ish "%.6g".
std::string FormatStatValue(double v);

}  // namespace graphpim::trace

#endif  // GRAPHPIM_COMMON_TRACE_H_
