// Small string helpers used by config parsing and report printing.
#ifndef GRAPHPIM_COMMON_STRING_UTIL_H_
#define GRAPHPIM_COMMON_STRING_UTIL_H_

#include <string>
#include <string_view>
#include <vector>

namespace graphpim {

// Splits `s` on `sep`, keeping empty fields.
std::vector<std::string> Split(std::string_view s, char sep);

// Removes leading/trailing whitespace.
std::string Trim(std::string_view s);

// True if `s` starts with `prefix`.
bool StartsWith(std::string_view s, std::string_view prefix);

// printf-style formatting into a std::string.
std::string StrFormat(const char* fmt, ...) __attribute__((format(printf, 1, 2)));

// Escapes a string for embedding in a JSON string literal.
std::string JsonEscape(const std::string& s);

}  // namespace graphpim

#endif  // GRAPHPIM_COMMON_STRING_UTIL_H_
