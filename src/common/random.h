// Deterministic pseudo-random number generation.
//
// Simulation runs must be reproducible bit-for-bit across machines, so we
// provide our own small generators (SplitMix64 seeding an xoshiro256**)
// instead of relying on implementation-defined std::random distributions.
#ifndef GRAPHPIM_COMMON_RANDOM_H_
#define GRAPHPIM_COMMON_RANDOM_H_

#include <cstdint>

namespace graphpim {

// SplitMix64: used to expand a single seed into generator state.
class SplitMix64 {
 public:
  explicit SplitMix64(std::uint64_t seed) : state_(seed) {}

  std::uint64_t Next() {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

// xoshiro256**: fast, high-quality, deterministic generator.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) { Seed(seed); }

  // Re-seeds the generator deterministically from a single value.
  void Seed(std::uint64_t seed) {
    SplitMix64 sm(seed);
    for (auto& s : s_) s = sm.Next();
  }

  std::uint64_t Next() {
    const std::uint64_t result = Rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = Rotl(s_[3], 45);
    return result;
  }

  // Uniform integer in [0, bound). bound must be > 0.
  std::uint64_t NextBounded(std::uint64_t bound) {
    // Lemire-style rejection-free reduction is fine for simulation use.
    return static_cast<std::uint64_t>(
        (static_cast<unsigned __int128>(Next()) * bound) >> 64);
  }

  // Uniform double in [0, 1).
  double NextDouble() {
    return static_cast<double>(Next() >> 11) * 0x1.0p-53;
  }

  // Bernoulli draw with probability p.
  bool NextBool(double p) { return NextDouble() < p; }

 private:
  static std::uint64_t Rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t s_[4] = {};
};

}  // namespace graphpim

#endif  // GRAPHPIM_COMMON_RANDOM_H_
