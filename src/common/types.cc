#include "common/types.h"

namespace graphpim {

const char* ToString(DataComponent c) {
  switch (c) {
    case DataComponent::kMeta:
      return "meta";
    case DataComponent::kStructure:
      return "structure";
    case DataComponent::kProperty:
      return "property";
  }
  return "?";
}

const char* ToString(WorkloadCategory c) {
  switch (c) {
    case WorkloadCategory::kGraphTraversal:
      return "GT";
    case WorkloadCategory::kRichProperty:
      return "RP";
    case WorkloadCategory::kDynamicGraph:
      return "DG";
  }
  return "?";
}

}  // namespace graphpim
