// Fundamental types shared by every GraphPIM subsystem.
#ifndef GRAPHPIM_COMMON_TYPES_H_
#define GRAPHPIM_COMMON_TYPES_H_

#include <cstdint>
#include <string>

namespace graphpim {

// Simulated physical/virtual address. The simulated address space is
// segmented (see graph/region.h); it never aliases host pointers.
using Addr = std::uint64_t;

// Simulation time in picoseconds. All memory-side components reserve
// resources in Ticks; cores convert to/from their own clock.
using Tick = std::uint64_t;

// Core clock cycles (frequency-dependent; see cpu/core.h).
using Cycle = std::uint64_t;

// Vertex / edge identifiers in the graph framework.
using VertexId = std::uint32_t;
using EdgeId = std::uint64_t;

inline constexpr Tick kTicksPerNs = 1000;

// Converts nanoseconds (possibly fractional) to Ticks.
constexpr Tick NsToTicks(double ns) {
  return static_cast<Tick>(ns * static_cast<double>(kTicksPerNs) + 0.5);
}

// Converts Ticks to (fractional) nanoseconds.
constexpr double TicksToNs(Tick t) {
  return static_cast<double>(t) / static_cast<double>(kTicksPerNs);
}

// The three data components of graph computing identified in Section II-C
// of the paper. Offloading candidates live in kProperty.
enum class DataComponent : std::uint8_t {
  kMeta = 0,       // local variables, task queues: cache friendly
  kStructure = 1,  // CSR arrays: spatial locality
  kProperty = 2,   // per-vertex properties: irregular, PMR-resident
};

// Human-readable name for a DataComponent.
const char* ToString(DataComponent c);

// Workload categories from Section II-B.
enum class WorkloadCategory : std::uint8_t {
  kGraphTraversal = 0,  // GT
  kRichProperty = 1,    // RP
  kDynamicGraph = 2,    // DG
};

const char* ToString(WorkloadCategory c);

// Size helpers.
inline constexpr std::uint64_t kKiB = 1024;
inline constexpr std::uint64_t kMiB = 1024 * kKiB;
inline constexpr std::uint64_t kGiB = 1024 * kMiB;

}  // namespace graphpim

#endif  // GRAPHPIM_COMMON_TYPES_H_
