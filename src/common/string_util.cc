#include "common/string_util.h"

#include <cstdarg>
#include <cstdio>

namespace graphpim {

std::vector<std::string> Split(std::string_view s, char sep) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (true) {
    std::size_t pos = s.find(sep, start);
    if (pos == std::string_view::npos) {
      out.emplace_back(s.substr(start));
      return out;
    }
    out.emplace_back(s.substr(start, pos - start));
    start = pos + 1;
  }
}

std::string Trim(std::string_view s) {
  std::size_t b = 0;
  std::size_t e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return std::string(s.substr(b, e - b));
}

bool StartsWith(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

std::string StrFormat(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list args_copy;
  va_copy(args_copy, args);
  int n = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  std::string out;
  if (n > 0) {
    out.resize(static_cast<std::size_t>(n));
    std::vsnprintf(out.data(), out.size() + 1, fmt, args_copy);
  }
  va_end(args_copy);
  return out;
}

}  // namespace graphpim
