#include "common/string_util.h"

#include <cstdarg>
#include <cstdio>

namespace graphpim {

std::vector<std::string> Split(std::string_view s, char sep) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (true) {
    std::size_t pos = s.find(sep, start);
    if (pos == std::string_view::npos) {
      out.emplace_back(s.substr(start));
      return out;
    }
    out.emplace_back(s.substr(start, pos - start));
    start = pos + 1;
  }
}

std::string Trim(std::string_view s) {
  std::size_t b = 0;
  std::size_t e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return std::string(s.substr(b, e - b));
}

bool StartsWith(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

std::string StrFormat(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list args_copy;
  va_copy(args_copy, args);
  int n = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  std::string out;
  if (n > 0) {
    out.resize(static_cast<std::size_t>(n));
    std::vsnprintf(out.data(), out.size() + 1, fmt, args_copy);
  }
  va_end(args_copy);
  return out;
}

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char ch : s) {
    switch (ch) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(ch) < 0x20) {
          out += StrFormat("\\u%04x", static_cast<unsigned>(ch));
        } else {
          out += ch;
        }
    }
  }
  return out;
}

}  // namespace graphpim
