// Flat open-addressing hash map keyed by cache-line addresses.
//
// The hierarchy's per-line side tables (sharers superset, atomic line
// serialization) sit on the replay hot path: every fill and every host RMW
// probes one. std::unordered_map pays a node allocation per insert and a
// prime-modulo division per probe; this map is a pair of flat arrays with a
// multiply-shift hash and linear probing, so a hit is typically one cache
// line touch. Deletion uses backward-shift so no tombstones accumulate.
//
// Iteration order is never exposed, so swapping this in for unordered_map
// cannot perturb simulation results.
//
// Key restriction: ~0 is reserved as the empty-slot sentinel. Keys here are
// line addresses (allocation offsets rounded down to a line boundary), which
// can never be all-ones.
#ifndef GRAPHPIM_COMMON_LINE_MAP_H_
#define GRAPHPIM_COMMON_LINE_MAP_H_

#include <bit>
#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

#include "common/types.h"

namespace graphpim {

template <typename V>
class LineMap {
 public:
  explicit LineMap(std::size_t min_capacity = 1024) {
    std::size_t cap = std::bit_ceil(min_capacity < 16 ? 16 : min_capacity);
    keys_.assign(cap, kEmpty);
    vals_.assign(cap, V{});
    shift_ = 64 - static_cast<unsigned>(std::countr_zero(cap));
  }

  std::size_t size() const { return size_; }

  // Pointer to the value for `key`, or nullptr if absent. Stable until the
  // next insert or erase.
  V* Find(Addr key) {
    std::size_t i = Slot(key);
    const std::size_t mask = keys_.size() - 1;
    while (true) {
      if (keys_[i] == key) return &vals_[i];
      if (keys_[i] == kEmpty) return nullptr;
      i = (i + 1) & mask;
    }
  }

  const V* Find(Addr key) const {
    return const_cast<LineMap*>(this)->Find(key);
  }

  // Value for `key`, default-constructing it if absent.
  V& operator[](Addr key) {
    if ((size_ + 1) * 10 >= keys_.size() * 7) Grow();
    const std::size_t mask = keys_.size() - 1;
    std::size_t i = Slot(key);
    while (true) {
      if (keys_[i] == key) return vals_[i];
      if (keys_[i] == kEmpty) {
        keys_[i] = key;
        ++size_;
        return vals_[i];
      }
      i = (i + 1) & mask;
    }
  }

  // Removes `key` if present, backward-shifting the probe chain so lookups
  // never cross a tombstone.
  void Erase(Addr key) {
    const std::size_t mask = keys_.size() - 1;
    std::size_t i = Slot(key);
    while (keys_[i] != key) {
      if (keys_[i] == kEmpty) return;
      i = (i + 1) & mask;
    }
    std::size_t j = i;
    while (true) {
      j = (j + 1) & mask;
      if (keys_[j] == kEmpty) break;
      const std::size_t h = Slot(keys_[j]);
      // keys_[j] may fill the hole at i unless its home slot lies in the
      // cyclic range (i, j] — moving it past its home would break probing.
      const bool home_between = (i < j) ? (h > i && h <= j) : (h > i || h <= j);
      if (!home_between) {
        keys_[i] = keys_[j];
        vals_[i] = std::move(vals_[j]);
        i = j;
      }
    }
    keys_[i] = kEmpty;
    vals_[i] = V{};
    --size_;
  }

 private:
  static constexpr Addr kEmpty = ~Addr{0};

  std::size_t Slot(Addr key) const {
    return static_cast<std::size_t>((key * 0x9e3779b97f4a7c15ULL) >> shift_);
  }

  void Grow() {
    std::vector<Addr> old_keys(keys_.size() * 2, kEmpty);
    std::vector<V> old_vals(keys_.size() * 2, V{});
    old_keys.swap(keys_);
    old_vals.swap(vals_);
    shift_ -= 1;
    const std::size_t mask = keys_.size() - 1;
    for (std::size_t s = 0; s < old_keys.size(); ++s) {
      if (old_keys[s] == kEmpty) continue;
      std::size_t i = Slot(old_keys[s]);
      while (keys_[i] != kEmpty) i = (i + 1) & mask;
      keys_[i] = old_keys[s];
      vals_[i] = std::move(old_vals[s]);
    }
  }

  std::vector<Addr> keys_;
  std::vector<V> vals_;
  std::size_t size_ = 0;
  unsigned shift_;
};

}  // namespace graphpim

#endif  // GRAPHPIM_COMMON_LINE_MAP_H_
