// Logging and invariant-checking helpers.
//
// Follows the gem5 convention: Panic() for "this is a simulator bug",
// Fatal() for "the user asked for something impossible", Warn()/Inform()
// for status. Invariant violations terminate with a diagnostic.
//
// Recoverable errors — bad user input, a job of a sweep that cannot be
// built or run — use GP_THROW/SimError instead: harness code (the sweep
// runner, the CLI drivers) catches SimError at an isolation boundary and
// degrades gracefully rather than taking down the whole process.
#ifndef GRAPHPIM_COMMON_LOG_H_
#define GRAPHPIM_COMMON_LOG_H_

#include <sstream>
#include <stdexcept>
#include <string>

namespace graphpim {

// Recoverable simulation/configuration error. what() carries the message
// plus the throw site, so a journaled error string pinpoints the failure.
class SimError : public std::runtime_error {
 public:
  SimError(const char* file, int line, const std::string& msg);

  const std::string& message() const { return message_; }

 private:
  std::string message_;  // the bare message, without the file:line suffix
};

enum class LogLevel : int {
  kQuiet = 0,
  kWarn = 1,
  kInform = 2,
  kDebug = 3,
};

// Global log verbosity (default kWarn). Not thread safe; set once at start.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

// Terminates the program: simulator bug (prints file:line, aborts).
[[noreturn]] void PanicImpl(const char* file, int line, const std::string& msg);

// Terminates the program: user/configuration error (exit(1)).
[[noreturn]] void FatalImpl(const char* file, int line, const std::string& msg);

// Raises a recoverable SimError.
[[noreturn]] void ThrowImpl(const char* file, int line, const std::string& msg);

void WarnImpl(const std::string& msg);
void InformImpl(const std::string& msg);
void DebugImpl(const std::string& msg);

namespace log_internal {

// Builds a message from stream-style arguments.
template <typename... Args>
std::string Cat(Args&&... args) {
  std::ostringstream os;
  (os << ... << args);
  return os.str();
}

}  // namespace log_internal

}  // namespace graphpim

#define GP_PANIC(...) \
  ::graphpim::PanicImpl(__FILE__, __LINE__, ::graphpim::log_internal::Cat(__VA_ARGS__))

#define GP_FATAL(...) \
  ::graphpim::FatalImpl(__FILE__, __LINE__, ::graphpim::log_internal::Cat(__VA_ARGS__))

// Recoverable error: throws SimError. Use for conditions a harness layer
// can isolate (one bad sweep job, one malformed spec), not for invariant
// violations.
#define GP_THROW(...) \
  ::graphpim::ThrowImpl(__FILE__, __LINE__, ::graphpim::log_internal::Cat(__VA_ARGS__))

// Long-form alias (the name used in docs and issues).
#define GRAPHPIM_THROW(...) GP_THROW(__VA_ARGS__)

#define GP_WARN(...) ::graphpim::WarnImpl(::graphpim::log_internal::Cat(__VA_ARGS__))

#define GP_INFORM(...) ::graphpim::InformImpl(::graphpim::log_internal::Cat(__VA_ARGS__))

// Invariant check: active in all build types (simulation correctness
// depends on these, and the cost is negligible next to the modeling work).
#define GP_CHECK(cond, ...)                                                    \
  do {                                                                         \
    if (!(cond)) {                                                             \
      GP_PANIC("check failed: " #cond " ", ::graphpim::log_internal::Cat("" __VA_ARGS__)); \
    }                                                                          \
  } while (false)

#endif  // GRAPHPIM_COMMON_LOG_H_
