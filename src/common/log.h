// Logging and invariant-checking helpers.
//
// Follows the gem5 convention: Panic() for "this is a simulator bug",
// Fatal() for "the user asked for something impossible", Warn()/Inform()
// for status. No exceptions are used anywhere in the library; invariant
// violations terminate with a diagnostic.
#ifndef GRAPHPIM_COMMON_LOG_H_
#define GRAPHPIM_COMMON_LOG_H_

#include <sstream>
#include <string>

namespace graphpim {

enum class LogLevel : int {
  kQuiet = 0,
  kWarn = 1,
  kInform = 2,
  kDebug = 3,
};

// Global log verbosity (default kWarn). Not thread safe; set once at start.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

// Terminates the program: simulator bug (prints file:line, aborts).
[[noreturn]] void PanicImpl(const char* file, int line, const std::string& msg);

// Terminates the program: user/configuration error (exit(1)).
[[noreturn]] void FatalImpl(const char* file, int line, const std::string& msg);

void WarnImpl(const std::string& msg);
void InformImpl(const std::string& msg);
void DebugImpl(const std::string& msg);

namespace log_internal {

// Builds a message from stream-style arguments.
template <typename... Args>
std::string Cat(Args&&... args) {
  std::ostringstream os;
  (os << ... << args);
  return os.str();
}

}  // namespace log_internal

}  // namespace graphpim

#define GP_PANIC(...) \
  ::graphpim::PanicImpl(__FILE__, __LINE__, ::graphpim::log_internal::Cat(__VA_ARGS__))

#define GP_FATAL(...) \
  ::graphpim::FatalImpl(__FILE__, __LINE__, ::graphpim::log_internal::Cat(__VA_ARGS__))

#define GP_WARN(...) ::graphpim::WarnImpl(::graphpim::log_internal::Cat(__VA_ARGS__))

#define GP_INFORM(...) ::graphpim::InformImpl(::graphpim::log_internal::Cat(__VA_ARGS__))

// Invariant check: active in all build types (simulation correctness
// depends on these, and the cost is negligible next to the modeling work).
#define GP_CHECK(cond, ...)                                                    \
  do {                                                                         \
    if (!(cond)) {                                                             \
      GP_PANIC("check failed: " #cond " ", ::graphpim::log_internal::Cat("" __VA_ARGS__)); \
    }                                                                          \
  } while (false)

#endif  // GRAPHPIM_COMMON_LOG_H_
