#include "common/log.h"

#include <cstdio>
#include <cstdlib>

namespace graphpim {

namespace {
LogLevel g_level = LogLevel::kWarn;
}  // namespace

void SetLogLevel(LogLevel level) { g_level = level; }

LogLevel GetLogLevel() { return g_level; }

void PanicImpl(const char* file, int line, const std::string& msg) {
  std::fprintf(stderr, "panic: %s (%s:%d)\n", msg.c_str(), file, line);
  std::abort();
}

void FatalImpl(const char* file, int line, const std::string& msg) {
  std::fprintf(stderr, "fatal: %s (%s:%d)\n", msg.c_str(), file, line);
  std::exit(1);
}

void WarnImpl(const std::string& msg) {
  if (g_level >= LogLevel::kWarn) std::fprintf(stderr, "warn: %s\n", msg.c_str());
}

void InformImpl(const std::string& msg) {
  if (g_level >= LogLevel::kInform) std::fprintf(stderr, "info: %s\n", msg.c_str());
}

void DebugImpl(const std::string& msg) {
  if (g_level >= LogLevel::kDebug) std::fprintf(stderr, "debug: %s\n", msg.c_str());
}

}  // namespace graphpim
