#include "common/log.h"

#include <cstdio>
#include <cstdlib>

#include "common/string_util.h"

namespace graphpim {

SimError::SimError(const char* file, int line, const std::string& msg)
    : std::runtime_error(StrFormat("%s (%s:%d)", msg.c_str(), file, line)),
      message_(msg) {}

namespace {
LogLevel g_level = LogLevel::kWarn;
}  // namespace

void SetLogLevel(LogLevel level) { g_level = level; }

LogLevel GetLogLevel() { return g_level; }

void PanicImpl(const char* file, int line, const std::string& msg) {
  std::fprintf(stderr, "panic: %s (%s:%d)\n", msg.c_str(), file, line);
  std::abort();
}

void FatalImpl(const char* file, int line, const std::string& msg) {
  std::fprintf(stderr, "fatal: %s (%s:%d)\n", msg.c_str(), file, line);
  std::exit(1);
}

void ThrowImpl(const char* file, int line, const std::string& msg) {
  throw SimError(file, line, msg);
}

void WarnImpl(const std::string& msg) {
  if (g_level >= LogLevel::kWarn) std::fprintf(stderr, "warn: %s\n", msg.c_str());
}

void InformImpl(const std::string& msg) {
  if (g_level >= LogLevel::kInform) std::fprintf(stderr, "info: %s\n", msg.c_str());
}

void DebugImpl(const std::string& msg) {
  if (g_level >= LogLevel::kDebug) std::fprintf(stderr, "debug: %s\n", msg.c_str());
}

}  // namespace graphpim
