// Key-value configuration store with typed accessors.
//
// Harness binaries accept "--key=value" command-line overrides; subsystem
// configuration structs are populated from a Config so every bench and test
// can tweak any knob without bespoke flag plumbing.
#ifndef GRAPHPIM_COMMON_CONFIG_H_
#define GRAPHPIM_COMMON_CONFIG_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace graphpim {

class Config {
 public:
  Config() = default;

  // Parses "--key=value" / "key=value" tokens; unknown tokens are fatal.
  static Config FromArgs(int argc, char** argv);

  // Sets or overrides a key.
  void Set(const std::string& key, const std::string& value);

  bool Has(const std::string& key) const;

  // Typed getters returning `def` when the key is absent. Malformed values
  // are fatal (user error).
  std::string GetString(const std::string& key, const std::string& def) const;
  std::int64_t GetInt(const std::string& key, std::int64_t def) const;
  std::uint64_t GetUint(const std::string& key, std::uint64_t def) const;
  double GetDouble(const std::string& key, double def) const;
  bool GetBool(const std::string& key, bool def) const;

  // Validates that every present key is in `accepted`; throws SimError
  // naming the offending key and listing the accepted keys otherwise.
  // Drivers call this right after FromArgs so a typo'd flag produces an
  // actionable diagnostic instead of being silently ignored.
  void RequireKeys(const std::vector<std::string>& accepted) const;

  // All key/value pairs in key order (for reproducibility banners).
  std::vector<std::pair<std::string, std::string>> Items() const;

 private:
  std::map<std::string, std::string> values_;
};

}  // namespace graphpim

#endif  // GRAPHPIM_COMMON_CONFIG_H_
