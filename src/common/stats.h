// Statistics registry.
//
// Components register named counters in a StatSet; the run harness pulls
// the final values to build SimResults and reports. Counters are plain
// doubles: most are integral event counts, a few are accumulated Ticks.
#ifndef GRAPHPIM_COMMON_STATS_H_
#define GRAPHPIM_COMMON_STATS_H_

#include <algorithm>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace graphpim {

class StatSet {
 public:
  StatSet() = default;

  // Adds `v` to the named counter (creating it at zero).
  void Add(const std::string& name, double v) { values_[name] += v; }

  // Increments the named counter by one.
  void Inc(const std::string& name) { values_[name] += 1.0; }

  // Sets the named counter to `v`.
  void Set(const std::string& name, double v) { values_[name] = v; }

  // Returns the counter value, or 0 if never touched.
  double Get(const std::string& name) const {
    auto it = values_.find(name);
    return it == values_.end() ? 0.0 : it->second;
  }

  bool Has(const std::string& name) const { return values_.count(name) > 0; }

  // Merges another StatSet into this one (adding values).
  void Merge(const StatSet& other) {
    for (const auto& [k, v] : other.values_) values_[k] += v;
  }

  void Clear() { values_.clear(); }

  // All stats in name order.
  std::vector<std::pair<std::string, double>> Items() const {
    return {values_.begin(), values_.end()};
  }

 private:
  std::map<std::string, double> values_;
};

// A simple fixed-bucket histogram for latency distributions.
class Histogram {
 public:
  // Buckets are [0,w), [w,2w), ... plus an overflow bucket.
  Histogram(double bucket_width, std::size_t num_buckets)
      : width_(bucket_width), counts_(num_buckets + 1, 0) {}

  void Record(double v) {
    ++total_;
    sum_ += v;
    if (v > max_) max_ = v;
    std::size_t idx = static_cast<std::size_t>(v / width_);
    if (idx >= counts_.size() - 1) idx = counts_.size() - 1;
    ++counts_[idx];
  }

  std::uint64_t total() const { return total_; }
  double mean() const { return total_ == 0 ? 0.0 : sum_ / static_cast<double>(total_); }
  double Mean() const { return mean(); }
  double max() const { return max_; }

  // Value at percentile `p` in [0, 100], linearly interpolated inside the
  // containing bucket. Ranks falling in the overflow bucket report max(),
  // since per-value resolution is lost there. Returns 0 when empty.
  double Percentile(double p) const {
    if (total_ == 0) return 0.0;
    p = std::clamp(p, 0.0, 100.0);
    const double target = p / 100.0 * static_cast<double>(total_);
    std::uint64_t cum = 0;
    for (std::size_t i = 0; i + 1 < counts_.size(); ++i) {
      if (counts_[i] == 0) continue;
      const double in_bucket = static_cast<double>(counts_[i]);
      if (static_cast<double>(cum) + in_bucket >= target) {
        const double frac =
            std::clamp((target - static_cast<double>(cum)) / in_bucket, 0.0, 1.0);
        return (static_cast<double>(i) + frac) * width_;
      }
      cum += counts_[i];
    }
    return max_;
  }
  const std::vector<std::uint64_t>& counts() const { return counts_; }
  double bucket_width() const { return width_; }

 private:
  double width_;
  std::vector<std::uint64_t> counts_;
  std::uint64_t total_ = 0;
  double sum_ = 0.0;
  double max_ = 0.0;
};

}  // namespace graphpim

#endif  // GRAPHPIM_COMMON_STATS_H_
