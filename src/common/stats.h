// Statistics registry (DESIGN.md §10).
//
// Counters live in a StatRegistry: a dense std::vector<double> addressed by
// interned StatId handles. Components resolve names ONCE at construction
// (via a StatScope view) and update counters on the simulated-access hot
// path with a plain indexed add — no std::string construction, no map
// lookup, no allocation. String-keyed access (Get/Set/Add by name) remains
// available as the slow path for report building, tests, and journal
// restore.
//
// Counters are plain doubles: most are integral event counts, a few are
// accumulated nanoseconds or Ticks. Integral counts stay exact up to 2^53.
//
// A counter is "touched" once any Add/Inc/Set reaches it; Items() and
// AllItems() list only touched counters, so pre-registering a counter that
// an experiment never exercises does not change report output (the same
// contract the old string-keyed StatSet implied by creating keys on first
// use).
//
// Compatibility view: Items() additionally hides the reserved "core."
// scope. Core-pipeline counters folded into the registry surface through
// SimResults' headline fields (insts, atomics, the Fig 2/9 fractions), and
// the pre-registry JSON "counters" object never contained them — hiding
// the scope keeps that output byte-identical. AllItems(), snapshots, and
// trace export include every touched counter.
#ifndef GRAPHPIM_COMMON_STATS_H_
#define GRAPHPIM_COMMON_STATS_H_

#include <algorithm>
#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>
#include <utility>
#include <vector>

namespace graphpim {

// Interned handle to one registry counter. Obtained from
// StatRegistry::Intern / StatScope::Counter at component construction;
// invalid (default) handles come from a null-registry scope and make the
// scope's update helpers no-ops.
class StatId {
 public:
  static constexpr std::uint32_t kInvalid = 0xffffffffu;

  constexpr StatId() = default;
  constexpr explicit StatId(std::uint32_t index) : index_(index) {}

  constexpr bool valid() const { return index_ != kInvalid; }
  constexpr std::uint32_t index() const { return index_; }

 private:
  std::uint32_t index_ = kInvalid;
};

// A point-in-time copy of every touched counter, name-sorted. Snapshots
// are index-independent (they carry names), so deltas can be taken across
// registries with different interning orders — e.g. the per-phase merged
// view the run loop builds at each BSP superstep.
struct StatSnapshot {
  std::vector<std::pair<std::string, double>> values;  // sorted by name

  double Get(const std::string& name) const {
    auto it = std::lower_bound(
        values.begin(), values.end(), name,
        [](const auto& kv, const std::string& n) { return kv.first < n; });
    return (it != values.end() && it->first == name) ? it->second : 0.0;
  }
};

// Counter deltas between two snapshots: every counter whose value changed
// (or appeared) in `now` relative to `since`, name-sorted.
std::vector<std::pair<std::string, double>> DeltaItems(const StatSnapshot& now,
                                                       const StatSnapshot& since);

class StatRegistry {
 public:
  StatRegistry() = default;

  // Resolves `name` to a dense handle, registering it on first use.
  // Idempotent: the same name always returns the same id. Interning only
  // appends, so existing ids stay valid for the registry's lifetime.
  StatId Intern(std::string_view name);

  // --- Hot path: O(1) indexed updates, zero allocation. ---------------

  void Add(StatId id, double v) {
    values_[id.index()] += v;
    touched_[id.index()] = 1;
  }

  void Inc(StatId id) { Add(id, 1.0); }

  void Set(StatId id, double v) {
    values_[id.index()] = v;
    touched_[id.index()] = 1;
  }

  double Get(StatId id) const { return values_[id.index()]; }

  // --- Slow path (report building, tests, journal restore). -----------

  void Add(const std::string& name, double v) { Add(Intern(name), v); }
  void Inc(const std::string& name) { Add(name, 1.0); }
  void Set(const std::string& name, double v) { Set(Intern(name), v); }

  // Returns the counter value, or 0 if never registered.
  double Get(const std::string& name) const {
    auto it = index_.find(name);
    return it == index_.end() ? 0.0 : values_[it->second];
  }

  // True once the counter has been touched by any Add/Inc/Set.
  bool Has(const std::string& name) const {
    auto it = index_.find(name);
    return it != index_.end() && touched_[it->second] != 0;
  }

  // Merges another registry into this one (adding values). Counters are
  // matched by name; `other`'s names are interned here as needed. Touched
  // state propagates, so a merge never invents counters the sources never
  // exercised. Deterministic: depends only on the two registries' values,
  // not on scheduling or merge order of equal-valued inputs.
  void Merge(const StatRegistry& other);

  // Zeroes every counter and clears touched state; interned names (and
  // outstanding StatIds) remain valid.
  void Reset();

  // Compatibility view: touched counters in name order, excluding hidden
  // scopes (see file comment). Byte-compatible with the pre-registry
  // StatSet::Items() output for the same run.
  std::vector<std::pair<std::string, double>> Items() const;

  // Every touched counter in name order, hidden scopes included.
  std::vector<std::pair<std::string, double>> AllItems() const;

  // Snapshot of AllItems() for later delta-ing (phase/superstep metrics).
  StatSnapshot Snapshot() const;

  std::size_t NumRegistered() const { return values_.size(); }

  // True for counters the compatibility Items() view hides. Name-based
  // (not a per-registry flag) so the rule survives journal round-trips and
  // cross-registry merges.
  static bool HiddenName(std::string_view name) {
    return name.rfind("core.", 0) == 0;
  }

 private:
  std::vector<double> values_;
  std::vector<std::uint8_t> touched_;
  std::vector<std::string> names_;
  std::unordered_map<std::string, std::uint32_t> index_;
};

// Component-scoped registry view: counters registered through a scope get
// a "prefix." qualified name, so layers pick unique global names without
// plumbing them through call sites. A scope over a null registry hands out
// invalid ids and turns the update helpers into no-ops — components keep
// the old "stats may be null" contract with a single branch per update.
class StatScope {
 public:
  StatScope() = default;
  StatScope(StatRegistry* registry, std::string prefix)
      : registry_(registry), prefix_(std::move(prefix)) {}

  // Interns "<prefix>.<name>" (or bare `name` for an empty prefix).
  StatId Counter(std::string_view name) const {
    if (registry_ == nullptr) return StatId();
    if (prefix_.empty()) return registry_->Intern(name);
    std::string full;
    full.reserve(prefix_.size() + 1 + name.size());
    full += prefix_;
    full += '.';
    full.append(name);
    return registry_->Intern(full);
  }

  // Nested scope: "<prefix>.<name>".
  StatScope Sub(std::string_view name) const {
    if (registry_ == nullptr) return StatScope();
    std::string full = prefix_.empty() ? std::string(name)
                                       : prefix_ + '.' + std::string(name);
    return StatScope(registry_, std::move(full));
  }

  void Add(StatId id, double v) const {
    if (registry_ != nullptr) registry_->Add(id, v);
  }
  void Inc(StatId id) const {
    if (registry_ != nullptr) registry_->Inc(id);
  }
  void Set(StatId id, double v) const {
    if (registry_ != nullptr) registry_->Set(id, v);
  }

  bool attached() const { return registry_ != nullptr; }
  StatRegistry* registry() const { return registry_; }
  const std::string& prefix() const { return prefix_; }

 private:
  StatRegistry* registry_ = nullptr;
  std::string prefix_;
};

// A simple fixed-bucket histogram for latency distributions.
class Histogram {
 public:
  // Buckets are [0,w), [w,2w), ... plus an overflow bucket.
  Histogram(double bucket_width, std::size_t num_buckets)
      : width_(bucket_width), counts_(num_buckets + 1, 0) {}

  void Record(double v) {
    ++total_;
    sum_ += v;
    if (v > max_) max_ = v;
    // Negative values clamp into bucket 0: the unguarded cast would wrap
    // to a huge index (UB / out-of-range), and [0,w) is the honest home
    // for out-of-domain samples in a non-negative-domain histogram.
    std::size_t idx = v <= 0.0 ? 0 : static_cast<std::size_t>(v / width_);
    if (idx >= counts_.size() - 1) idx = counts_.size() - 1;
    ++counts_[idx];
  }

  std::uint64_t total() const { return total_; }
  double mean() const { return total_ == 0 ? 0.0 : sum_ / static_cast<double>(total_); }
  double Mean() const { return mean(); }
  double max() const { return max_; }

  // Value at quantile `q` in [0, 1], linearly interpolated inside the
  // containing bucket. Ranks falling in the overflow bucket report max(),
  // since per-value resolution is lost there. Returns 0 when empty.
  double Quantile(double q) const {
    if (total_ == 0) return 0.0;
    q = std::clamp(q, 0.0, 1.0);
    const double target = q * static_cast<double>(total_);
    std::uint64_t cum = 0;
    for (std::size_t i = 0; i + 1 < counts_.size(); ++i) {
      if (counts_[i] == 0) continue;
      const double in_bucket = static_cast<double>(counts_[i]);
      if (static_cast<double>(cum) + in_bucket >= target) {
        const double frac =
            std::clamp((target - static_cast<double>(cum)) / in_bucket, 0.0, 1.0);
        return (static_cast<double>(i) + frac) * width_;
      }
      cum += counts_[i];
    }
    return max_;
  }

  // Percentile convenience: `p` in [0, 100]. Quantile(p / 100).
  double Percentile(double p) const {
    return Quantile(std::clamp(p, 0.0, 100.0) / 100.0);
  }

  const std::vector<std::uint64_t>& counts() const { return counts_; }
  double bucket_width() const { return width_; }

 private:
  double width_;
  std::vector<std::uint64_t> counts_;
  std::uint64_t total_ = 0;
  double sum_ = 0.0;
  double max_ = 0.0;
};

}  // namespace graphpim

#endif  // GRAPHPIM_COMMON_STATS_H_
