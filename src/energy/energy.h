// Uncore energy model (Section IV-B4, Fig 15).
//
// The paper models cache energy with CACTI 6.5 and HMC SerDes links, DRAM
// layers and functional units with the models of [34-36]; SerDes links
// consume ~43% of HMC power. We use per-event dynamic energies plus static
// power in the same spirit; the constants below are in that literature's
// range and are configurable for sensitivity studies.
//
// Components reported (Fig 15): Caches, HMC Link, HMC FU, HMC Logic Layer
// (LL), HMC DRAM.
#ifndef GRAPHPIM_ENERGY_ENERGY_H_
#define GRAPHPIM_ENERGY_ENERGY_H_

#include "common/stats.h"

namespace graphpim::energy {

struct EnergyParams {
  // Dynamic energy per event (nJ).
  double l1_access_nj = 0.05;      // 32KB SRAM access (CACTI-class)
  double l2_access_nj = 0.18;      // 256KB
  double l3_access_nj = 1.10;      // 16MB slice access
  double link_flit_nj = 0.64;      // ~5 pJ/bit * 128-bit FLIT
  double ll_packet_nj = 0.25;      // logic-layer packet processing
  double dram_activate_nj = 1.80;  // row activation
  double dram_access_nj = 1.00;    // column access + TSV transfer
  double fu_int_nj = 0.01;
  double fu_fp_nj = 0.12;

  // Static power (W).
  double cache_static_w = 2.0;   // whole host cache hierarchy leakage
  double link_static_w = 5.2;    // SerDes idle: ~43% of HMC power [34][36]
  double ll_static_w = 1.6;
  double dram_static_w = 1.8;    // refresh + background
  double fu_fp_static_w = 0.04;  // per enabled FP FU (one per vault)
  int num_vaults = 32;           // total across the cube network
  // Cubes in the HMC network: each cube's SerDes links, logic layer, and
  // DRAM dies draw their static power whether or not traffic reaches it,
  // so the per-cube static terms above scale by this count.
  int num_cubes = 1;
  bool fp_fus_enabled = true;
};

struct EnergyBreakdown {
  double caches_j = 0.0;
  double link_j = 0.0;
  double fu_j = 0.0;
  double logic_j = 0.0;
  double dram_j = 0.0;

  double Total() const { return caches_j + link_j + fu_j + logic_j + dram_j; }
};

// Computes uncore energy from the run's counters and wall-clock (simulated)
// runtime. Expects the stat names produced by mem::CacheHierarchy and
// hmc::HmcCube plus "hmc.fu_busy_int_ns"/"hmc.fu_busy_fp_ns" if present.
EnergyBreakdown ComputeUncoreEnergy(const StatRegistry& stats, double runtime_sec,
                                    const EnergyParams& params = EnergyParams());

}  // namespace graphpim::energy

#endif  // GRAPHPIM_ENERGY_ENERGY_H_
