#include "energy/energy.h"

namespace graphpim::energy {

namespace {
constexpr double kNj = 1e-9;
}  // namespace

EnergyBreakdown ComputeUncoreEnergy(const StatRegistry& s, double runtime_sec,
                                    const EnergyParams& p) {
  EnergyBreakdown e;
  const double cubes = p.num_cubes > 0 ? static_cast<double>(p.num_cubes) : 1.0;

  // Host caches: every access probes L1; L1 misses probe L2; etc.
  double l1_acc = s.Get("cache.l1_hits") + s.Get("cache.l1_misses");
  double l2_acc = s.Get("cache.l2_hits") + s.Get("cache.l2_misses");
  double l3_acc = s.Get("cache.l3_hits") + s.Get("cache.l3_misses");
  // Coherence snoops probe remote private caches.
  double snoops = s.Get("cache.coherence_invals");
  e.caches_j = (l1_acc * p.l1_access_nj + l2_acc * p.l2_access_nj +
                l3_acc * p.l3_access_nj + snoops * (p.l1_access_nj + p.l2_access_nj)) *
                   kNj +
               p.cache_static_w * runtime_sec;

  // SerDes links: per-FLIT transfer energy + idle power. Retransmitted
  // FLITs (fault-injection retry-buffer replays) burn the same per-FLIT
  // energy as first transmissions.
  double flits = s.Get("hmc.req_flits") + s.Get("hmc.resp_flits") +
                 s.Get("fault.retry_flits");
  e.link_j = flits * p.link_flit_nj * kNj + cubes * p.link_static_w * runtime_sec;

  // Logic layer: packet processing (requests + responses) + static.
  double packets =
      2.0 * (s.Get("hmc.reads") + s.Get("hmc.writes") + s.Get("hmc.atomics"));
  e.logic_j = packets * p.ll_packet_nj * kNj + cubes * p.ll_static_w * runtime_sec;

  // PIM functional units.
  double fp_static =
      p.fp_fus_enabled ? p.fu_fp_static_w * static_cast<double>(p.num_vaults) : 0.0;
  e.fu_j = (s.Get("hmc.fu_int_ops") * p.fu_int_nj +
            s.Get("hmc.fu_fp_ops") * p.fu_fp_nj) *
               kNj +
           fp_static * runtime_sec;

  // DRAM dies: activations (row misses) + column accesses + background.
  double accesses = s.Get("hmc.reads") + s.Get("hmc.writes") + s.Get("hmc.atomics");
  e.dram_j = (s.Get("hmc.row_misses") * p.dram_activate_nj +
              accesses * p.dram_access_nj) *
                 kNj +
             cubes * p.dram_static_w * runtime_sec;

  return e;
}

}  // namespace graphpim::energy
