#include "core/system.h"

#include "common/log.h"

namespace graphpim::core {

using cpu::MemOutcome;
using cpu::MicroOp;
using cpu::OpType;

MemorySystem::MemorySystem(const SimConfig& cfg, Addr pmr_base, Addr pmr_end,
                           trace::SpanRecorder* spans)
    : cfg_(cfg),
      spans_(spans),
      sid_poison_reissues_(stats_.Intern("pou.poison_reissues")),
      sid_poison_unrecovered_(stats_.Intern("pou.poison_unrecovered")),
      sid_uc_slot_wait_ns_(stats_.Intern("pou.uc_slot_wait_ns")),
      sid_uc_service_ns_(stats_.Intern("pou.uc_service_ns")),
      sid_uc_reads_(stats_.Intern("pou.uc_reads")),
      sid_uc_writes_(stats_.Intern("pou.uc_writes")),
      sid_dbg_atomic_hold_ns_(stats_.Intern("pou.dbg_atomic_hold_ns")),
      sid_offloaded_atomics_(stats_.Intern("pou.offloaded_atomics")),
      sid_bus_lock_atomics_(stats_.Intern("pou.bus_lock_atomics")),
      sid_upei_host_hits_(stats_.Intern("upei.host_hits")),
      sid_upei_offloaded_(stats_.Intern("upei.offloaded")) {
  network_ = std::make_unique<hmc::HmcNetwork>(cfg_.hmc, &stats_, pmr_base,
                                               pmr_end, spans_);
  hierarchy_ = std::make_unique<mem::CacheHierarchy>(
      cfg_.num_cores, cfg_.cache, network_.get(), &stats_, spans_);
  pou_.SetPmr(pmr_base, pmr_end);
  if (cfg_.pmem.enable) {
    pmem_ = std::make_unique<pmem::PersistDomain>(cfg_.pmem, pmr_base, pmr_end,
                                                  &stats_);
  }
  uc_slots_.assign(static_cast<std::size_t>(cfg_.num_cores),
                   std::vector<Tick>(static_cast<std::size_t>(cfg_.uc_queue_depth), 0));
  upei_check_ready_.assign(static_cast<std::size_t>(cfg_.num_cores), 0);
  if (spans_ != nullptr) {
    span_seq_.assign(static_cast<std::size_t>(cfg_.num_cores), 0);
  }
}

Tick MemorySystem::AcquireUcSlot(int core, Tick when, std::size_t* slot) {
  auto& pool = uc_slots_[static_cast<std::size_t>(core)];
  std::size_t best = 0;
  for (std::size_t i = 1; i < pool.size(); ++i) {
    if (pool[i] < pool[best]) best = i;
  }
  *slot = best;
  return when > pool[best] ? when : pool[best];
}

bool MemorySystem::HmcSupports(const MicroOp& op) const {
  return !hmc::IsFpOp(op.aop) || cfg_.hmc.enable_fp_atomics;
}

bool MemorySystem::PageInHmc(Addr addr) const {
  if (cfg_.pmr_hmc_fraction >= 1.0) return true;
  // Deterministic page-granular placement hash (4KB pages).
  std::uint64_t page = addr >> 12;
  std::uint64_t h = (page * 2654435761ULL) >> 22;
  return static_cast<double>(h % 1024) < cfg_.pmr_hmc_fraction * 1024.0;
}

MemOutcome MemorySystem::Access(int core, const MicroOp& op, Tick when) {
  // Persist micro-ops take their own path before the span sampling point:
  // they never consume a request ordinal, so load/store/atomic span ids
  // stay identical whether or not a trace carries flushes and fences.
  if (op.type == OpType::kFlush || op.type == OpType::kFence) {
    return PersistOp(core, op, when);
  }
  if (pmem_ != nullptr && op.type == OpType::kStore && pou_.InPmr(op.addr)) {
    pmem_->OnStore(core, op.addr, op.size, when);
  }
  // The sampling point. With tracing off this whole block is one
  // never-taken branch; with tracing on, every memory micro-op draws a
  // value-derived id and the sampled ones record a span.
  if (spans_ == nullptr) return Route(core, op, when, trace::SpanRef());
  const std::uint64_t id = trace::SpanRequestId(
      core, span_seq_[static_cast<std::size_t>(core)]++);
  const char kind = op.type == OpType::kAtomic ? 'A'
                    : op.type == OpType::kStore ? 'W'
                                                : 'R';
  trace::SpanRef span = spans_->Begin(id, core, kind, op.addr, when);
  MemOutcome out = Route(core, op, when, span);
  if (span.valid()) spans_->End(span, out.complete, out.offloaded);
  return out;
}

MemOutcome MemorySystem::PersistOp(int core, const MicroOp& op, Tick when) {
  MemOutcome out;
  out.complete = when;
  out.retire_ready = when;
  if (pmem_ == nullptr) return out;  // pmem.enable=0: zero-latency no-op
  if (op.type == OpType::kFlush) {
    // Posted like a store: the writeback proceeds asynchronously and only a
    // later fence waits for it.
    out.complete = pmem_->OnFlush(core, op.addr, when);
    out.retire_ready = when;
  } else {
    out.complete = pmem_->OnFence(core, when);
    out.retire_ready = out.complete;
  }
  return out;
}

MemOutcome MemorySystem::Route(int core, const MicroOp& op, Tick when,
                               trace::SpanRef span) {
  switch (cfg_.mode) {
    case Mode::kBaseline:
      return HostPath(core, op, when, span);
    case Mode::kUPei:
      if (op.type == OpType::kAtomic && pou_.InPmr(op.addr) && HmcSupports(op)) {
        return UPeiAtomic(core, op, when, span);
      }
      return HostPath(core, op, when, span);
    case Mode::kGraphPim:
      // The POU decision itself is combinational (zero modeled latency);
      // record it as a zero-width marker carrying the chosen route.
      Stamp(span, trace::SpanStage::kPouDecision, when, when,
            static_cast<std::uint32_t>(pou_.Classify(op)));
      if (pou_.BypassesCache(op) && PageInHmc(op.addr)) {
        if (op.type == OpType::kAtomic && !HmcSupports(op)) {
          // Applicability limit (Table III): the host must execute it, and
          // since the PMR is uncacheable this degrades to a bus lock.
          return BusLockAtomic(core, op, when, span);
        }
        return BypassPath(core, op, when, span);
      }
      return HostPath(core, op, when, span);
    case Mode::kUncacheNoPim:
      Stamp(span, trace::SpanStage::kPouDecision, when, when,
            static_cast<std::uint32_t>(pou_.Classify(op)));
      if (pou_.BypassesCache(op)) {
        if (op.type == OpType::kAtomic) {
          return BusLockAtomic(core, op, when, span);
        }
        return BypassPath(core, op, when, span);
      }
      return HostPath(core, op, when, span);
  }
  GP_PANIC("unreachable mode");
}

MemOutcome MemorySystem::HostPath(int core, const MicroOp& op, Tick when,
                                  trace::SpanRef span) {
  mem::AccessType type = mem::AccessType::kRead;
  if (op.type == OpType::kStore) type = mem::AccessType::kWrite;
  if (op.type == OpType::kAtomic) type = mem::AccessType::kAtomicRmw;
  mem::AccessResult r =
      hierarchy_->Access(core, type, op.addr, when, op.comp, span);
  MemOutcome out;
  out.complete = r.complete;
  out.retire_ready = r.complete;
  out.serializing = op.type == OpType::kAtomic;
  out.check_ticks = r.check_ticks;
  out.offloaded = false;
  out.issue_stall_until = r.issue_stall;
  return out;
}

MemOutcome MemorySystem::BypassPath(int core, const MicroOp& op, Tick when,
                                    trace::SpanRef span) {
  // Bounded recovery from a poisoned response (fault injection): the host
  // re-issues the transaction once at the poisoned packet's arrival tick.
  // A second poisoning is accepted as-is — real drivers surface it as an
  // MCE rather than retrying forever.
  auto reissue_once = [this](hmc::Completion c, auto issue_fn) {
    if (c.poisoned) {
      stats_.Inc(sid_poison_reissues_);
      hmc::Completion retry = issue_fn(c.response_at_host);
      if (!retry.poisoned) return retry;
      stats_.Inc(sid_poison_unrecovered_);
      retry.poisoned = true;
      return retry;
    }
    return c;
  };

  MemOutcome out;
  std::size_t slot = 0;
  Tick issue = AcquireUcSlot(core, when, &slot);
  if (issue > when) {
    out.issue_stall_until = issue;
    Stamp(span, trace::SpanStage::kIssue, when, issue);
  }
  stats_.Add(sid_uc_slot_wait_ns_, TicksToNs(issue - when));
  switch (op.type) {
    case OpType::kLoad: {
      hmc::Completion c = reissue_once(
          network_->Read(op.addr, op.size, issue, span),
          [&](Tick at) { return network_->Read(op.addr, op.size, at, span); });
      stats_.Add(sid_uc_service_ns_, TicksToNs(c.response_at_host - issue));
      out.complete = c.response_at_host;
      out.retire_ready = c.response_at_host;
      ReleaseUcSlot(core, slot, c.response_at_host);
      stats_.Inc(sid_uc_reads_);
      break;
    }
    case OpType::kStore: {
      hmc::Completion c = network_->Write(op.addr, op.size, issue, span);
      out.complete = c.response_at_host;
      out.retire_ready = issue;  // posted
      ReleaseUcSlot(core, slot, c.internal_done);
      stats_.Inc(sid_uc_writes_);
      break;
    }
    case OpType::kAtomic: {
      hmc::Completion c = reissue_once(
          network_->Atomic(op.addr, op.aop, hmc::Value16{}, op.WantReturn(),
                           issue, span),
          [&](Tick at) {
            return network_->Atomic(op.addr, op.aop, hmc::Value16{},
                                    op.WantReturn(), at, span);
          });
      out.complete = c.response_at_host;
      out.retire_ready = op.WantReturn() ? c.response_at_host : issue;
      ReleaseUcSlot(core, slot,
                    op.WantReturn() ? c.response_at_host : c.internal_done);
      stats_.Add(sid_dbg_atomic_hold_ns_,
                 TicksToNs((op.WantReturn() ? c.response_at_host : c.internal_done) - issue));
      out.offloaded = true;
      stats_.Inc(sid_offloaded_atomics_);
      break;
    }
    default:
      GP_PANIC("non-memory op in BypassPath");
  }
  out.serializing = false;
  out.check_ticks = 0;
  return out;
}

MemOutcome MemorySystem::UPeiAtomic(int core, const MicroOp& op, Tick when,
                                    trace::SpanRef span) {
  MemOutcome out;
  out.serializing = false;
  // Locality check: occupies the core's cache-checking unit.
  Tick& check_ready = upei_check_ready_[static_cast<std::size_t>(core)];
  Tick check_start = when > check_ready ? when : check_ready;
  check_ready = check_start + NsToTicks(3.0);
  if (check_start > when) {
    out.issue_stall_until = check_start;
    Stamp(span, trace::SpanStage::kIssue, when, check_start);
  }
  when = check_start;
  int level = hierarchy_->ProbeLevel(core, op.addr);
  const mem::CacheParams& cp = cfg_.cache;
  if (level > 0) {
    // Host-side PEI execution at the hit level: idealized (no pipeline
    // freeze, free coherence) — but atomic ops to one address still
    // serialize, so this goes through the RMW path for line ordering.
    mem::AccessResult r = hierarchy_->Access(core, mem::AccessType::kAtomicRmw,
                                             op.addr, when, op.comp, span);
    // A cache-resident locked RMW still costs ~20 cycles on real hardware
    // (Schweizer et al. [21]) even with ideal coherence.
    Tick op_lat = NsToTicks(10.0);
    out.complete = r.complete + op_lat;
    out.retire_ready = out.complete;
    out.check_ticks = r.check_ticks;
    out.offloaded = false;
    stats_.Inc(sid_upei_host_hits_);
  } else {
    // Miss: PEI pays the cache walk before dispatching to memory
    // (locality monitoring), then offloads; no fill on the way back.
    Tick walk = cp.l1_latency + cp.l2_latency + cp.l3_latency;
    Stamp(span, trace::SpanStage::kCacheLookup, when, when + walk, 0);
    std::size_t slot = 0;
    Tick issue = AcquireUcSlot(core, when + walk, &slot);
    if (issue > when + walk) {
      out.issue_stall_until = std::max(out.issue_stall_until, issue);
      Stamp(span, trace::SpanStage::kIssue, when + walk, issue);
    }
    hmc::Completion c = network_->Atomic(op.addr, op.aop, hmc::Value16{},
                                         op.WantReturn(), issue, span);
    if (c.poisoned) {
      // Same bounded recovery as the GraphPIM bypass path.
      stats_.Inc(sid_poison_reissues_);
      c = network_->Atomic(op.addr, op.aop, hmc::Value16{}, op.WantReturn(),
                           c.response_at_host, span);
      if (c.poisoned) stats_.Inc(sid_poison_unrecovered_);
    }
    out.complete = c.response_at_host;
    out.retire_ready = op.WantReturn() ? c.response_at_host : issue;
    ReleaseUcSlot(core, slot,
                  op.WantReturn() ? c.response_at_host : c.internal_done);
    out.check_ticks = walk;
    out.offloaded = true;
    stats_.Inc(sid_upei_offloaded_);
    stats_.Inc(sid_offloaded_atomics_);
  }
  return out;
}

MemOutcome MemorySystem::BusLockAtomic(int core, const MicroOp& op, Tick when,
                                       trace::SpanRef span) {
  (void)core;
  // Uncacheable host atomic: the cache-line lock degrades to bus locking —
  // a full read + write round trip to memory with the entire interconnect
  // held, serializing against every other bus lock in the system.
  if (bus_lock_ready_ > when) {
    Stamp(span, trace::SpanStage::kIssue, when, bus_lock_ready_);
    when = bus_lock_ready_;
  }
  hmc::Completion rd = network_->Read(op.addr, op.size, when, span);
  hmc::Completion wr =
      network_->Write(op.addr, op.size, rd.response_at_host, span);
  Tick penalty = static_cast<Tick>(cfg_.bus_lock_penalty) *
                 NsToTicks(1.0 / cfg_.core.freq_ghz);
  MemOutcome out;
  out.complete = wr.response_at_host + penalty;
  out.retire_ready = out.complete;
  out.serializing = true;
  out.check_ticks = 0;
  out.offloaded = false;
  bus_lock_ready_ = out.complete;
  stats_.Inc(sid_bus_lock_atomics_);
  return out;
}

void MemorySystem::SampleTelemetryGauges(
    Tick win_start, Tick win_end,
    std::vector<std::pair<std::string, double>>* out) {
  // POU in-flight: UC/WC buffer slots still reserved past the cut — the
  // offloaded-request pressure GraphPIM moves out of the cache hierarchy.
  std::uint64_t inflight = 0;
  for (const auto& pool : uc_slots_) {
    for (Tick done : pool) {
      if (done > win_end) ++inflight;
    }
  }
  out->emplace_back("tele.pou.inflight", static_cast<double>(inflight));

  // Vault queue depth: banks still reserved past the cut, plus how far the
  // deepest bank reservation extends beyond it (ns of backlog).
  out->emplace_back("tele.vault.busy_banks",
                    static_cast<double>(network_->BusyBanksAt(win_end)));
  const Tick deepest = network_->MaxBankReady();
  out->emplace_back("tele.vault.backlog_ns",
                    deepest > win_end ? TicksToNs(deepest - win_end) : 0.0);

  // Link occupancy: busy lane-time accrued this window over the window's
  // aggregate lane capacity (each full-duplex link contributes two lanes).
  const Tick busy = network_->TotalLinkBusy();
  const double cap =
      win_end > win_start
          ? static_cast<double>(win_end - win_start) * 2.0 *
                static_cast<double>(network_->TotalLinkCount())
          : 0.0;
  out->emplace_back(
      "tele.link.occupancy",
      cap > 0.0 ? static_cast<double>(busy - tele_link_busy_) / cap : 0.0);
  tele_link_busy_ = busy;
}

}  // namespace graphpim::core
