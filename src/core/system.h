// The memory system of one machine configuration: routes every memory
// micro-op according to the active offloading policy.
//
//   Baseline   — everything through the cache hierarchy; host atomics are
//                locked RMWs (serializing).
//   U-PEI      — idealized PEI [14]: PMR atomics that hit in the cache are
//                executed host-side at the hit level (no freeze, free
//                coherence); misses pay the cache walk, then offload.
//                Non-atomic PMR data stays cacheable.
//   GraphPIM   — the POU offloads PMR atomics directly to the HMC; every
//                PMR access bypasses the caches (UC semantics). Atomics
//                whose operation the HMC cannot execute (FP without the
//                Section III-C extension) fall back to the host path.
//   UC-NoPIM   — ablation (Section III-B discussion): UC property without
//                PIM-atomics; host atomics degrade to bus locking.
#ifndef GRAPHPIM_CORE_SYSTEM_H_
#define GRAPHPIM_CORE_SYSTEM_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "common/span.h"
#include "common/stats.h"
#include "core/sim_config.h"
#include "cpu/memory_interface.h"
#include "cpu/pou.h"
#include "hmc/topology.h"
#include "mem/hierarchy.h"
#include "pmem/pmem.h"

namespace graphpim::core {

class MemorySystem : public cpu::MemoryInterface {
 public:
  // `spans` (may be null) is the transaction flight recorder. The memory
  // system is the sampling point: every memory micro-op gets a value-
  // derived request id here ((core << 48) | per-core ordinal — identical
  // in every mode, since each micro-op enters exactly once per run), and
  // sampled requests carry a SpanRef down every path they take.
  MemorySystem(const SimConfig& cfg, Addr pmr_base, Addr pmr_end,
               trace::SpanRecorder* spans = nullptr);

  cpu::MemOutcome Access(int core, const cpu::MicroOp& op, Tick when) override;

  StatRegistry& stats() { return stats_; }
  const StatRegistry& stats() const { return stats_; }
  const hmc::HmcNetwork& network() const { return *network_; }
  const mem::CacheHierarchy& hierarchy() const { return *hierarchy_; }
  const cpu::PimOffloadUnit& pou() const { return pou_; }

  // The persistent-PMR timing layer; nullptr unless cfg.pmem.enable.
  pmem::PersistDomain* persist_domain() { return pmem_.get(); }

  // Telemetry gauges (DESIGN.md §17): appends the instantaneous machine-
  // state samples for window [win_start, win_end) — POU in-flight ops,
  // vault-bank backlog, and link occupancy — in a fixed emission order.
  // Stateful (the occupancy gauge differentiates cumulative link busy time
  // across calls), so call it once per window, in window order; the
  // telemetry sampler is the only caller.
  void SampleTelemetryGauges(Tick win_start, Tick win_end,
                             std::vector<std::pair<std::string, double>>* out);

 private:
  // Mode dispatch (the old Access body); `span` is invalid for unsampled
  // requests.
  cpu::MemOutcome Route(int core, const cpu::MicroOp& op, Tick when,
                        trace::SpanRef span);

  cpu::MemOutcome HostPath(int core, const cpu::MicroOp& op, Tick when,
                           trace::SpanRef span);
  cpu::MemOutcome BypassPath(int core, const cpu::MicroOp& op, Tick when,
                             trace::SpanRef span);
  cpu::MemOutcome UPeiAtomic(int core, const cpu::MicroOp& op, Tick when,
                             trace::SpanRef span);
  cpu::MemOutcome BusLockAtomic(int core, const cpu::MicroOp& op, Tick when,
                                trace::SpanRef span);

  // kFlush/kFence handling. These never enter the span path (span ids stay
  // mode- and pmem-invariant for loads/stores/atomics) and are free no-ops
  // when the persist domain is off.
  cpu::MemOutcome PersistOp(int core, const cpu::MicroOp& op, Tick when);

  // Span stage stamp; single never-taken branch when tracing is off.
  void Stamp(trace::SpanRef span, trace::SpanStage stage, Tick enter,
             Tick exit, std::uint32_t detail = 0) {
    if (spans_ != nullptr) spans_->Stage(span, stage, enter, exit, detail);
  }

  // True if the HMC can execute this atomic op under the current config.
  bool HmcSupports(const cpu::MicroOp& op) const;

  // Hybrid placement: true if this PMR page resides in the HMC (always
  // true unless pmr_hmc_fraction < 1).
  bool PageInHmc(Addr addr) const;

  // Each core holds a bounded number of outstanding uncacheable/offloaded
  // requests (its WC/UC buffer). Reserves a slot no earlier than `when`;
  // returns the issue tick. Call ReleaseUcSlot with the downstream
  // completion to free it.
  Tick AcquireUcSlot(int core, Tick when, std::size_t* slot);
  void ReleaseUcSlot(int core, std::size_t slot, Tick done) {
    uc_slots_[static_cast<std::size_t>(core)][slot] = done;
  }

  SimConfig cfg_;
  trace::SpanRecorder* spans_;  // may be null (tracing off)
  // Per-core memory-request ordinals for span request ids. Maintained only
  // when tracing is on.
  std::vector<std::uint64_t> span_seq_;
  StatRegistry stats_;
  StatId sid_poison_reissues_;
  StatId sid_poison_unrecovered_;
  StatId sid_uc_slot_wait_ns_;
  StatId sid_uc_service_ns_;
  StatId sid_uc_reads_;
  StatId sid_uc_writes_;
  StatId sid_dbg_atomic_hold_ns_;
  StatId sid_offloaded_atomics_;
  StatId sid_bus_lock_atomics_;
  StatId sid_upei_host_hits_;
  StatId sid_upei_offloaded_;
  std::unique_ptr<hmc::HmcNetwork> network_;
  std::unique_ptr<mem::CacheHierarchy> hierarchy_;
  std::unique_ptr<pmem::PersistDomain> pmem_;  // null when pmem.enable=0
  cpu::PimOffloadUnit pou_;  // identical in every core; modeled once
  std::vector<std::vector<Tick>> uc_slots_;

  // U-PEI locality checks occupy a per-core cache-checking unit; this is
  // the "unnecessary cache checking time" GraphPIM's bypass avoids
  // (Section IV-B1).
  std::vector<Tick> upei_check_ready_;

  // Bus-locked host atomics serialize globally (the whole interconnect is
  // held) — the "huge performance degradation" of Section III-B.
  Tick bus_lock_ready_ = 0;

  // Cumulative link busy time at the previous telemetry cut (the link-
  // occupancy gauge is the windowed derivative of TotalLinkBusy()).
  Tick tele_link_busy_ = 0;
};

}  // namespace graphpim::core

#endif  // GRAPHPIM_CORE_SYSTEM_H_
