// Human- and machine-readable reports of simulation results.
#ifndef GRAPHPIM_CORE_REPORT_H_
#define GRAPHPIM_CORE_REPORT_H_

#include <string>

#include "core/results.h"

namespace graphpim::core {

// Multi-line human-readable summary of one run.
std::string FormatReport(const SimResults& r);

// JSON object with the run's headline metrics plus every raw counter
// (stable key names; suitable for downstream tooling).
std::string ToJson(const SimResults& r);

// Writes ToJson() to `path`; returns false on I/O failure.
bool WriteJson(const SimResults& r, const std::string& path);

}  // namespace graphpim::core

#endif  // GRAPHPIM_CORE_REPORT_H_
