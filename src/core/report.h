// Human- and machine-readable reports of simulation results.
#ifndef GRAPHPIM_CORE_REPORT_H_
#define GRAPHPIM_CORE_REPORT_H_

#include <string>
#include <vector>

#include "core/results.h"

namespace graphpim::core {

// Multi-line human-readable summary of one run.
std::string FormatReport(const SimResults& r);

// Per-stage bottleneck attribution for the atomic path (paper Fig. 9 from
// measurement): one column per mode in `results`, one row per span stage
// that contributed, each cell "mean-ns (share%)" over that mode's sampled
// atomics. Derived purely from the span.atomic.* counters FoldSpanStats
// interned, so it needs no access to the raw span logs. Returns "" when no
// mode carries span data (tracing off).
std::string FormatBottleneckTable(const std::vector<SimResults>& results);

// JSON object with the run's headline metrics plus every raw counter
// (stable key names; suitable for downstream tooling).
std::string ToJson(const SimResults& r);

// Writes ToJson() to `path`; returns false on I/O failure.
bool WriteJson(const SimResults& r, const std::string& path);

}  // namespace graphpim::core

#endif  // GRAPHPIM_CORE_REPORT_H_
