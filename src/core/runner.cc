#include "core/runner.h"

#include <algorithm>
#include <atomic>
#include <memory>
#include <thread>
#include <vector>

#include "common/log.h"
#include "common/string_util.h"
#include "core/system.h"
#include "cpu/core.h"

namespace graphpim::core {

namespace {

using cpu::OooCore;

// Builds SimResults from the finished cores and memory system. `spans`
// (may be null) is the run's flight recorder; its per-stage latency
// histograms are folded into the merged registry.
SimResults Collect(const SimConfig& cfg, const std::vector<std::unique_ptr<OooCore>>& cores,
                   MemorySystem& mem, const trace::SpanRecorder* spans) {
  SimResults r;
  r.mode = ToString(cfg.mode);

  // Fold every core's "core." registry into the memory system's registry:
  // one StatRegistry::Merge per core replaces the old field-by-field
  // CoreStats aggregation, and the run ends with a single unified registry.
  StatRegistry& s = mem.stats();
  Tick end_tick = 0;
  for (const auto& c : cores) {
    end_tick = std::max(end_tick, c->Now());
    s.Merge(c->stats());
  }
  const double cycle_ticks = 1000.0 / cfg.core.freq_ghz;
  r.cycles = static_cast<std::uint64_t>(static_cast<double>(end_tick) / cycle_ticks);
  r.insts = static_cast<std::uint64_t>(s.Get("core.insts"));
  r.seconds = TicksToNs(end_tick) * 1e-9;
  if (r.cycles > 0) {
    r.ipc = static_cast<double>(r.insts) /
            (static_cast<double>(r.cycles) * cfg.num_cores);
  }

  double ki = static_cast<double>(r.insts) / 1000.0;
  if (ki > 0) {
    r.l1_mpki = s.Get("cache.l1_misses") / ki;
    r.l2_mpki = s.Get("cache.l2_misses") / ki;
    r.l3_mpki = s.Get("cache.l3_misses") / ki;
  }
  double atomic_reqs = s.Get("cache.atomic_reqs");
  if (atomic_reqs > 0) {
    r.atomic_miss_rate = s.Get("cache.atomic_mem_misses") / atomic_reqs;
  }
  r.atomics = static_cast<std::uint64_t>(s.Get("core.atomics"));
  r.offloaded_atomics = static_cast<std::uint64_t>(s.Get("core.offloaded_atomics"));
  r.req_flits = s.Get("hmc.req_flits");
  r.resp_flits = s.Get("hmc.resp_flits");
  r.link_crc_errors = static_cast<std::uint64_t>(s.Get("fault.link_crc_errors"));
  r.link_retries = static_cast<std::uint64_t>(s.Get("fault.link_retries"));
  r.retry_flits = s.Get("fault.retry_flits");
  r.poisoned_ops = static_cast<std::uint64_t>(s.Get("fault.poisoned_ops"));
  r.vault_stalls = static_cast<std::uint64_t>(s.Get("fault.vault_stalls"));

  // Attribution fractions over aggregate core time.
  double total_core_ticks =
      static_cast<double>(end_tick) * static_cast<double>(cfg.num_cores);
  if (total_core_ticks > 0) {
    r.frac_atomic_incore = s.Get("core.atomic_incore_ticks") / total_core_ticks;
    r.frac_atomic_incache = s.Get("core.atomic_incache_ticks") / total_core_ticks;
    r.frac_atomic_dep = s.Get("core.atomic_dep_ticks") / total_core_ticks;
    r.frac_other = std::max(
        0.0, 1.0 - r.frac_atomic_incore - r.frac_atomic_incache - r.frac_atomic_dep);

    r.frac_retiring = static_cast<double>(r.insts) * cycle_ticks /
                      (cfg.core.issue_width * total_core_ticks);
    r.frac_frontend = s.Get("core.frontend_ticks") / total_core_ticks;
    r.frac_badspec = s.Get("core.badspec_ticks") / total_core_ticks;
    r.frac_backend = std::max(
        0.0, 1.0 - r.frac_retiring - r.frac_frontend - r.frac_badspec);
  }

  energy::EnergyParams ep = cfg.energy;
  // Static uncore power scales with the whole cube network: every cube
  // burns its vaults' and SerDes links' idle power whether or not traffic
  // reaches it.
  ep.num_vaults =
      static_cast<int>(cfg.hmc.num_vaults * cfg.hmc.num_cubes);
  ep.num_cubes = static_cast<int>(cfg.hmc.num_cubes);
  ep.fp_fus_enabled = cfg.hmc.enable_fp_atomics;
  r.energy = energy::ComputeUncoreEnergy(s, r.seconds, ep);

  if (spans != nullptr) trace::FoldSpanStats(spans->log(), &s);

  r.raw = s;
  return r;
}

}  // namespace

SimResults RunSimulation(const workloads::Trace& trace, const SimConfig& cfg,
                         Addr pmr_base, Addr pmr_end, const RunOptions& opts) {
  cfg.Validate();
  GP_CHECK(static_cast<int>(trace.streams.size()) <= cfg.num_cores,
           "trace has more streams than cores");

  // The flight recorder exists only when sampling is on: with the default
  // trace_sample_rate == 0 every hook site downstream sees a null recorder
  // and compiles to a never-taken branch.
  std::unique_ptr<trace::SpanRecorder> spans;
  if (cfg.trace_sample_rate > 0.0) {
    spans = std::make_unique<trace::SpanRecorder>(cfg.trace_sample_rate,
                                                  cfg.trace_max_spans);
  }

  MemorySystem mem(cfg, pmr_base, pmr_end, spans.get());
  std::vector<std::unique_ptr<OooCore>> cores;
  std::vector<OooCore::Status> status;
  static const cpu::UopStream kEmpty;
  for (int i = 0; i < cfg.num_cores; ++i) {
    cores.push_back(std::make_unique<OooCore>(i, cfg.core, &mem));
    const auto* stream = i < static_cast<int>(trace.streams.size())
                             ? &trace.streams[static_cast<std::size_t>(i)]
                             : &kEmpty;
    cores.back()->Reset(stream);
    status.push_back(OooCore::Status::kRunning);
  }

  // Phase instrumentation: each BSP superstep ends at a barrier
  // rendezvous; cutting there captures the counters that superstep
  // accrued. The merged view is rebuilt per cut (mem registry + every
  // core's registry) — cheap at superstep frequency, and it leaves the
  // live registries untouched.
  Tick phase_start = 0;
  std::uint64_t superstep = 0;
  auto cut_phase = [&](const char* what, Tick end) {
    if (opts.phases == nullptr) return;
    StatRegistry merged = mem.stats();
    for (const auto& c : cores) merged.Merge(c->stats());
    opts.phases->Cut(
        StrFormat("%s.%llu", what, static_cast<unsigned long long>(superstep)),
        phase_start, end, merged);
    phase_start = end;
  };

  // Telemetry windows (DESIGN.md §17): like the flight recorder, the
  // sampler exists only when the knob is on AND a sink is attached — the
  // default path never builds one. Gauges read the live machine through
  // the memory system at each cut.
  std::unique_ptr<telemetry::WindowSampler> tele;
  if (opts.timeline != nullptr && cfg.telemetry_window_ns > 0.0) {
    opts.timeline->Clear();
    tele = std::make_unique<telemetry::WindowSampler>(
        NsToTicks(cfg.telemetry_window_ns), opts.timeline,
        cfg.telemetry_max_windows,
        [&mem](Tick ws, Tick we,
               std::vector<std::pair<std::string, double>>* out) {
          mem.SampleTelemetryGauges(ws, we, out);
        });
  }

  // Loosely-synchronized quantum loop with barrier rendezvous.
  Tick quantum_end = cfg.quantum;

  // One engine round's tail: aggregate core statuses and either finish,
  // release the barrier rendezvous, or skip dead time. Shared by the serial
  // loop and the sharded engine's controller shard; both invoke it only
  // after every core advanced in index order, so the sequence of
  // quantum_end / release decisions is identical at any shard count.
  // Returns true when the run is complete.
  auto round_tail = [&]() -> bool {
    // Telemetry window cuts key off the round's quantum_end *before* it is
    // updated below: the sequence of quantum_end values is shard-invariant
    // (the controller shard runs this exactly where the serial loop does),
    // so the cut points — and the timeline — are too.
    if (tele != nullptr && quantum_end >= tele->next_boundary()) {
      StatRegistry merged = mem.stats();
      for (const auto& c : cores) merged.Merge(c->stats());
      tele->AdvanceTo(quantum_end, merged);
    }
    bool all_done = true;
    bool any_running = false;
    for (int i = 0; i < cfg.num_cores; ++i) {
      if (status[i] == OooCore::Status::kRunning) any_running = true;
      if (status[i] != OooCore::Status::kDone) all_done = false;
    }
    if (all_done) return true;
    if (!any_running) {
      // Everyone alive is parked at the same barrier: release at the
      // latest arrival.
      Tick release = 0;
      for (int i = 0; i < cfg.num_cores; ++i) {
        if (status[i] == OooCore::Status::kBarrier) {
          release = std::max(release, cores[static_cast<std::size_t>(i)]->BarrierArrival());
        }
      }
      cut_phase("superstep", release);
      ++superstep;
      for (int i = 0; i < cfg.num_cores; ++i) {
        if (status[i] == OooCore::Status::kBarrier) {
          cores[static_cast<std::size_t>(i)]->ReleaseBarrier(release);
          status[i] = OooCore::Status::kRunning;
        }
      }
      quantum_end = std::max(quantum_end, release + cfg.quantum);
    } else {
      // Skip dead time: jump to the earliest tick any running core can
      // issue again (long stalls otherwise cost one loop pass per quantum).
      Tick next = ~Tick{0};
      for (int i = 0; i < cfg.num_cores; ++i) {
        if (status[i] == OooCore::Status::kRunning) {
          next = std::min(next, cores[static_cast<std::size_t>(i)]->NextReadyTick());
        }
      }
      quantum_end = std::max(quantum_end + cfg.quantum, next + cfg.quantum);
    }
    return false;
  };

  const int num_shards = std::min(cfg.shards, cfg.num_cores);
  if (num_shards <= 1) {
    // Serial engine: the strict default path.
    while (true) {
      for (int i = 0; i < cfg.num_cores; ++i) {
        if (status[i] == OooCore::Status::kRunning) {
          status[i] = cores[static_cast<std::size_t>(i)]->Advance(quantum_end);
        }
      }
      if (round_tail()) break;
    }
  } else {
    // Sharded engine (DESIGN.md §15): each worker owns a contiguous chunk
    // of cores and advances them only while holding the turn token, which
    // circulates 0 → 1 → … → S-1 every round. Holding the token gives a
    // shard exclusive access to the shared memory system and engine state
    // (the release store / acquire load pair carries the happens-before
    // chain), and the token order reproduces the serial core-advancement
    // total order exactly — outputs are bit-identical by construction.
    // Shard S-1 doubles as the controller, running round_tail() at the end
    // of its turn, precisely where the serial loop runs it.
    std::atomic<std::uint64_t> turn{0};
    bool engine_done = false;
    std::vector<std::thread> workers;
    workers.reserve(static_cast<std::size_t>(num_shards));
    for (int s = 0; s < num_shards; ++s) {
      workers.emplace_back([&, s]() {
        const auto [begin, end] = workloads::ThreadChunk(
            static_cast<std::size_t>(cfg.num_cores), s, num_shards);
        const std::uint64_t stride = static_cast<std::uint64_t>(num_shards);
        std::uint64_t my_turn = static_cast<std::uint64_t>(s);
        while (true) {
          while (turn.load(std::memory_order_acquire) != my_turn) {
            std::this_thread::yield();
          }
          if (engine_done) {
            turn.store(my_turn + 1, std::memory_order_release);
            return;
          }
          for (std::size_t i = begin; i < end; ++i) {
            if (status[i] == OooCore::Status::kRunning) {
              status[i] = cores[i]->Advance(quantum_end);
            }
          }
          if (s == num_shards - 1 && round_tail()) {
            // Controller exits immediately on completion; the other shards
            // each take one more turn to observe engine_done (they may only
            // read it while holding the token — the acquire at the top of
            // the turn is what orders the read after this write).
            engine_done = true;
            turn.store(my_turn + 1, std::memory_order_release);
            return;
          }
          turn.store(my_turn + 1, std::memory_order_release);
          my_turn += stride;
        }
      });
    }
    for (auto& w : workers) w.join();
  }

  if (opts.phases != nullptr) {
    Tick end_tick = 0;
    for (const auto& c : cores) end_tick = std::max(end_tick, c->Now());
    cut_phase("drain", end_tick);
  }

  if (tele != nullptr) {
    Tick end_tick = 0;
    for (const auto& c : cores) end_tick = std::max(end_tick, c->Now());
    StatRegistry merged = mem.stats();
    for (const auto& c : cores) merged.Merge(c->stats());
    tele->Finish(end_tick, merged);
  }

  // Seal the persist domain before Collect so pmem.unpersisted_at_end is
  // in the merged registry the report sees.
  if (mem.persist_domain() != nullptr) {
    Tick end_tick = 0;
    for (const auto& c : cores) end_tick = std::max(end_tick, c->Now());
    mem.persist_domain()->Finish(end_tick);
  }

  SimResults r = Collect(cfg, cores, mem, spans.get());
  r.trace_peak_bytes = trace.BytesUsed();
  if (opts.spans != nullptr && spans != nullptr) {
    *opts.spans = spans->TakeLog();
  }
  if (opts.persist != nullptr && mem.persist_domain() != nullptr) {
    *opts.persist = mem.persist_domain()->TakeLog();
  }
  return r;
}

double Speedup(const SimResults& base, const SimResults& other) {
  GP_CHECK(other.cycles > 0);
  return static_cast<double>(base.cycles) / static_cast<double>(other.cycles);
}

Experiment::Experiment(const std::string& profile, VertexId num_vertices,
                       const std::string& workload_name, const Options& opts) {
  graph::EdgeList el = graph::GenerateProfile(profile, num_vertices, opts.seed);
  Build(el, workload_name, opts);
}

Experiment::Experiment(const graph::EdgeList& el, const std::string& workload_name,
                       const Options& opts) {
  Build(el, workload_name, opts);
}

void Experiment::Build(const graph::EdgeList& el, const std::string& workload_name,
                       const Options& opts) {
  space_ = std::make_unique<graph::AddressSpace>();
  graph_ = std::make_unique<graph::CsrGraph>(el, *space_, opts.dedup_edges);
  workload_ = workloads::CreateWorkload(workload_name, opts.params);
  workload_->SetPersistMode(opts.persist);
  workloads::TraceBuilder tb(opts.num_threads, space_.get(), opts.mispredict_rate,
                             opts.seed);
  if (opts.op_cap != 0) tb.SetOpCap(opts.op_cap);
  workload_->Generate(*graph_, *space_, tb);
  trace_ = tb.Take();
}

SimResults Experiment::Run(const SimConfig& cfg, const RunOptions& opts) const {
  return RunSimulation(trace_, cfg, space_->pmr_base(), space_->pmr_end(), opts);
}

}  // namespace graphpim::core
