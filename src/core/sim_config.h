// Machine configuration for a simulation run (Table IV + Section IV-B).
#ifndef GRAPHPIM_CORE_SIM_CONFIG_H_
#define GRAPHPIM_CORE_SIM_CONFIG_H_

#include <string>
#include <vector>

#include "common/types.h"
#include "cpu/core.h"
#include "energy/energy.h"
#include "hmc/config.h"
#include "mem/hierarchy.h"
#include "pmem/pmem.h"
#include "workloads/params.h"

namespace graphpim {
class Config;
}

namespace graphpim::core {

// The evaluated machine configurations (Section IV-B).
enum class Mode {
  kBaseline = 0,     // conventional: HMC as plain main memory
  kUPei = 1,         // idealized PEI [14]: locality-aware, free coherence
  kGraphPim = 2,     // this paper: PMR atomics offloaded, cache bypass
  kUncacheNoPim = 3, // ablation: UC property without PIM-atomics (bus lock)
};

const char* ToString(Mode m);

struct SimConfig {
  Mode mode = Mode::kGraphPim;
  int num_cores = 16;
  cpu::CoreParams core;
  mem::CacheParams cache;
  hmc::HmcParams hmc;
  energy::EnergyParams energy;

  // Quantum for loosely-synchronized multi-core advancement.
  Tick quantum = NsToTicks(5.0);

  // Engine shards for intra-run parallel replay (DESIGN.md §15). Cores are
  // chunked across this many worker threads; a deterministic turn-token
  // protocol reproduces the serial core-advancement order exactly, so every
  // output is bit-identical at any value. 1 = the classic serial loop.
  int shards = 1;

  // Extra host penalty for the bus-lock fallback (kUncacheNoPim), cycles.
  int bus_lock_penalty = 100;

  // Outstanding uncacheable/offloaded requests a core may hold (UC/WC
  // buffer entries); bounds the rate at which PIM commands enter the HMC.
  int uc_queue_depth = 16;

  // Hybrid HMC+DRAM systems (Section III-B discussion): the fraction of
  // property pages resident in the HMC. Pages outside it live in
  // conventional DRAM and are processed the conventional way (cacheable,
  // host atomics); pages inside keep the full PIM benefit.
  double pmr_hmc_fraction = 1.0;

  // Transaction flight recorder (DESIGN.md §12): fraction of memory
  // requests sampled into per-stage span chains. 0 disables tracing
  // entirely (no recorder is built; goldens stay byte-identical).
  double trace_sample_rate = 0.0;

  // Upper bound on recorded spans per run (memory safety valve); 0 means
  // unbounded.
  std::uint64_t trace_max_spans = 1u << 20;

  // Virtual-time telemetry (DESIGN.md §17): window width in simulated
  // nanoseconds for the windowed counter/gauge timeline. 0 disables
  // telemetry entirely (no sampler is built; goldens stay byte-identical).
  // Positive values must be >= 1 ns (cross-checked in Validate).
  double telemetry_window_ns = 0.0;

  // Upper bound on recorded telemetry windows per run (memory safety
  // valve, same role as trace_max_spans); 0 means unbounded.
  std::uint64_t telemetry_max_windows = 1u << 16;

  // Persistent PMR (DESIGN.md §14): pmem.enable turns the PMR into
  // PMEM-backed memory with flush/fence persist costs and the
  // crash/recovery harness; off by default (strict passthrough).
  pmem::PmemParams pmem;

  // ANN / HNSW workload knobs (DESIGN.md §16): the `ann.*` field-table
  // rows. Only the hnsw workload and the serve engine's knn query kind
  // read them, so the defaults are a strict passthrough for every other
  // trace.
  workloads::AnnParams ann;

  // Returns Table IV's full-size machine.
  static SimConfig Paper(Mode mode);

  // Returns the scaled machine used by default benches: private/shared
  // caches shrunk 16x so that CI-scale graphs (tens of thousands of
  // vertices) exercise the same footprint:capacity ratios as LDBC-1M
  // against Table IV (see DESIGN.md "Datasets").
  static SimConfig Scaled(Mode mode);

  // THE single config-parsing path (DESIGN.md §11): builds the machine for
  // `mode` from a key-value Config. Starts from Paper/Scaled per the
  // "full" key, applies every machine knob in the shared field table
  // (threads, fp, fus, linkbw, hybrid, uc_depth, num_cubes, cube_page_bytes,
  // topology, and the fault knobs — each accepted in both underscore and
  // dashed spellings), then Validate()s. Drivers must not read SimConfig
  // fields out of a Config anywhere else; unknown keys are the caller's
  // RequireKeys problem, out-of-range values throw SimError naming the key.
  static SimConfig FromConfig(const graphpim::Config& cfg, Mode mode);

  // Every key FromConfig accepts, both spellings where they differ (for
  // drivers' RequireKeys lists — keeps CLI surfaces in sync with the table
  // by construction).
  static std::vector<std::string> ConfigKeys();

  // Rejects invalid machines with a SimError naming the offending config
  // key: non-positive num_cores, pmr_hmc_fraction outside [0, 1],
  // num_cubes < 1, capacity/interleave mismatches, out-of-range fault
  // knobs. Called by FromConfig and by RunSimulation, so programmatically
  // built configs get the same gate as parsed ones.
  void Validate() const;

  // Human-readable machine line. The tunable-knob section is generated
  // from the same field table FromConfig parses, so a knob added there
  // shows up here automatically (the two can never drift again).
  std::string Describe() const;
};

}  // namespace graphpim::core

#endif  // GRAPHPIM_CORE_SIM_CONFIG_H_
