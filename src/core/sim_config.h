// Machine configuration for a simulation run (Table IV + Section IV-B).
#ifndef GRAPHPIM_CORE_SIM_CONFIG_H_
#define GRAPHPIM_CORE_SIM_CONFIG_H_

#include <string>

#include "common/types.h"
#include "cpu/core.h"
#include "energy/energy.h"
#include "hmc/config.h"
#include "mem/hierarchy.h"

namespace graphpim::core {

// The evaluated machine configurations (Section IV-B).
enum class Mode {
  kBaseline = 0,     // conventional: HMC as plain main memory
  kUPei = 1,         // idealized PEI [14]: locality-aware, free coherence
  kGraphPim = 2,     // this paper: PMR atomics offloaded, cache bypass
  kUncacheNoPim = 3, // ablation: UC property without PIM-atomics (bus lock)
};

const char* ToString(Mode m);

struct SimConfig {
  Mode mode = Mode::kGraphPim;
  int num_cores = 16;
  cpu::CoreParams core;
  mem::CacheParams cache;
  hmc::HmcParams hmc;
  energy::EnergyParams energy;

  // Quantum for loosely-synchronized multi-core advancement.
  Tick quantum = NsToTicks(5.0);

  // Extra host penalty for the bus-lock fallback (kUncacheNoPim), cycles.
  int bus_lock_penalty = 100;

  // Outstanding uncacheable/offloaded requests a core may hold (UC/WC
  // buffer entries); bounds the rate at which PIM commands enter the HMC.
  int uc_queue_depth = 16;

  // Hybrid HMC+DRAM systems (Section III-B discussion): the fraction of
  // property pages resident in the HMC. Pages outside it live in
  // conventional DRAM and are processed the conventional way (cacheable,
  // host atomics); pages inside keep the full PIM benefit.
  double pmr_hmc_fraction = 1.0;

  // Returns Table IV's full-size machine.
  static SimConfig Paper(Mode mode);

  // Returns the scaled machine used by default benches: private/shared
  // caches shrunk 16x so that CI-scale graphs (tens of thousands of
  // vertices) exercise the same footprint:capacity ratios as LDBC-1M
  // against Table IV (see DESIGN.md "Datasets").
  static SimConfig Scaled(Mode mode);

  std::string Describe() const;
};

}  // namespace graphpim::core

#endif  // GRAPHPIM_CORE_SIM_CONFIG_H_
