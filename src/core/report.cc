#include "core/report.h"

#include <cstdio>

#include "common/span.h"
#include "common/string_util.h"

namespace graphpim::core {

std::string FormatReport(const SimResults& r) {
  std::string out;
  out += StrFormat("config: %s\n", r.mode.c_str());
  out += StrFormat("cycles: %llu (%.3f ms simulated)\n",
                   static_cast<unsigned long long>(r.cycles), r.seconds * 1e3);
  out += StrFormat("insts:  %llu | IPC/core: %.4f\n",
                   static_cast<unsigned long long>(r.insts), r.ipc);
  out += StrFormat("MPKI:   L1 %.1f  L2 %.1f  L3 %.1f\n", r.l1_mpki, r.l2_mpki,
                   r.l3_mpki);
  out += StrFormat("atomics: %llu (offloaded %llu, candidate miss %.1f%%)\n",
                   static_cast<unsigned long long>(r.atomics),
                   static_cast<unsigned long long>(r.offloaded_atomics),
                   100 * r.atomic_miss_rate);
  out += StrFormat("link FLITs: %.0f request / %.0f response\n", r.req_flits,
                   r.resp_flits);
  // Degraded-mode line only when fault injection actually fired, so
  // fault-free reports stay byte-identical to the ideal model's.
  if (r.link_crc_errors > 0 || r.poisoned_ops > 0 || r.vault_stalls > 0) {
    out += StrFormat("faults: %llu CRC errors, %llu retries (%.0f FLITs "
                     "replayed), %llu poisoned, %llu vault stalls\n",
                     static_cast<unsigned long long>(r.link_crc_errors),
                     static_cast<unsigned long long>(r.link_retries),
                     r.retry_flits,
                     static_cast<unsigned long long>(r.poisoned_ops),
                     static_cast<unsigned long long>(r.vault_stalls));
  }
  out += StrFormat("breakdown: backend %.1f%% frontend %.1f%% badspec %.1f%% "
                   "retiring %.1f%%\n",
                   100 * r.frac_backend, 100 * r.frac_frontend,
                   100 * r.frac_badspec, 100 * r.frac_retiring);
  out += StrFormat("atomic time: in-core %.1f%% in-cache %.1f%% dep %.1f%%\n",
                   100 * r.frac_atomic_incore, 100 * r.frac_atomic_incache,
                   100 * r.frac_atomic_dep);
  out += StrFormat("uncore energy: %.3f mJ (caches %.3f, link %.3f, FU %.3f, "
                   "logic %.3f, DRAM %.3f)\n",
                   r.energy.Total() * 1e3, r.energy.caches_j * 1e3,
                   r.energy.link_j * 1e3, r.energy.fu_j * 1e3,
                   r.energy.logic_j * 1e3, r.energy.dram_j * 1e3);
  // Host trace footprint, strictly after the "uncore energy:" golden-diff
  // cutoff (the goldens pin the report only up to that line) and only when
  // the run actually replayed a trace, so hand-built SimResults print
  // unchanged.
  if (r.trace_peak_bytes > 0) {
    out += StrFormat("trace: peak %llu bytes (%.1f MiB) tiled micro-ops\n",
                     static_cast<unsigned long long>(r.trace_peak_bytes),
                     static_cast<double>(r.trace_peak_bytes) / (1024.0 * 1024.0));
  }
  // Flight-recorder section only when sampling was on, and strictly after
  // the energy line: the golden-identity gate diffs the report up to
  // "uncore energy:", so a traced run stays comparable to an untraced one.
  if (r.raw.Has("span.sampled")) {
    out += StrFormat("spans: %llu sampled\n",
                     static_cast<unsigned long long>(r.raw.Get("span.sampled")));
    for (std::size_t i = 0;
         i < static_cast<std::size_t>(trace::SpanStage::kCount); ++i) {
      const std::string base =
          std::string("span.") + trace::ToString(static_cast<trace::SpanStage>(i));
      if (!r.raw.Has(base + ".count")) continue;
      out += StrFormat("  %-11s n=%-8llu mean %8.1f ns  p50 %8.1f ns  "
                       "p95 %8.1f ns\n",
                       trace::ToString(static_cast<trace::SpanStage>(i)),
                       static_cast<unsigned long long>(r.raw.Get(base + ".count")),
                       r.raw.Get(base + ".mean"), r.raw.Get(base + ".p50"),
                       r.raw.Get(base + ".p95"));
    }
    if (r.raw.Has("span.atomic.count")) {
      out += StrFormat("  atomic end-to-end: n=%llu mean %.1f ns  p50 %.1f ns  "
                       "p95 %.1f ns\n",
                       static_cast<unsigned long long>(
                           r.raw.Get("span.atomic.count")),
                       r.raw.Get("span.atomic.mean"),
                       r.raw.Get("span.atomic.p50"),
                       r.raw.Get("span.atomic.p95"));
    }
  }
  // Persistent-PMR section, present only when the persist domain ran
  // (pmem.enable=1 interns the family) and — like the span section —
  // strictly after the "uncore energy:" golden-diff cutoff.
  if (r.raw.Has("pmem.flushes")) {
    out += StrFormat(
        "pmem: %llu PMR stores, %llu flushes (%llu redundant), %llu fences | "
        "flush %.0f ns fence %.0f ns | %llu persisted, %llu unpersisted at "
        "end\n",
        static_cast<unsigned long long>(r.raw.Get("pmem.pmr_stores")),
        static_cast<unsigned long long>(r.raw.Get("pmem.flushes")),
        static_cast<unsigned long long>(r.raw.Get("pmem.redundant_flushes")),
        static_cast<unsigned long long>(r.raw.Get("pmem.fences")),
        r.raw.Get("pmem.flush_ns"), r.raw.Get("pmem.fence_ns"),
        static_cast<unsigned long long>(r.raw.Get("pmem.persisted_stores")),
        static_cast<unsigned long long>(r.raw.Get("pmem.unpersisted_at_end")));
  }
  return out;
}

std::string FormatBottleneckTable(const std::vector<SimResults>& results) {
  bool any = false;
  for (const SimResults& r : results) {
    if (r.raw.Has("span.atomic.count")) any = true;
  }
  if (!any) return std::string();

  const std::size_t kNumStages = static_cast<std::size_t>(trace::SpanStage::kCount);
  std::string out = "atomic bottleneck attribution (sampled spans, mean ns per "
                    "atomic / share of end-to-end):\n";
  out += StrFormat("  %-11s", "stage");
  for (const SimResults& r : results) {
    out += StrFormat(" %20s", r.mode.c_str());
  }
  out += "\n";
  for (std::size_t i = 0; i < kNumStages; ++i) {
    const std::string key = std::string("span.atomic.") +
                            trace::ToString(static_cast<trace::SpanStage>(i)) +
                            ".sum_ns";
    bool stage_any = false;
    for (const SimResults& r : results) {
      if (r.raw.Has(key)) stage_any = true;
    }
    if (!stage_any) continue;
    out += StrFormat("  %-11s", trace::ToString(static_cast<trace::SpanStage>(i)));
    for (const SimResults& r : results) {
      const double n = r.raw.Has("span.atomic.count")
                           ? r.raw.Get("span.atomic.count")
                           : 0.0;
      const double total = r.raw.Get("span.atomic.total_ns");
      if (n <= 0.0 || !r.raw.Has(key)) {
        out += StrFormat(" %20s", "-");
        continue;
      }
      const double sum = r.raw.Get(key);
      const double share = total > 0.0 ? 100.0 * sum / total : 0.0;
      out += StrFormat(" %12.1f (%4.1f%%)", sum / n, share);
    }
    out += "\n";
  }
  // The residual between the end-to-end span and the attributed stages:
  // overlap-free compute/dependency time the stages don't cover.
  out += StrFormat("  %-11s", "other");
  for (const SimResults& r : results) {
    if (!r.raw.Has("span.atomic.count")) {
      out += StrFormat(" %20s", "-");
      continue;
    }
    const double n = r.raw.Get("span.atomic.count");
    const double total = r.raw.Get("span.atomic.total_ns");
    const double un = r.raw.Has("span.atomic.unattributed_ns")
                          ? r.raw.Get("span.atomic.unattributed_ns")
                          : 0.0;
    const double share = total > 0.0 ? 100.0 * un / total : 0.0;
    out += StrFormat(" %12.1f (%4.1f%%)", n > 0.0 ? un / n : 0.0, share);
  }
  out += "\n";
  return out;
}

std::string ToJson(const SimResults& r) {
  std::string out = "{\n";
  out += StrFormat("  \"mode\": \"%s\",\n", r.mode.c_str());
  out += StrFormat("  \"cycles\": %llu,\n", static_cast<unsigned long long>(r.cycles));
  out += StrFormat("  \"insts\": %llu,\n", static_cast<unsigned long long>(r.insts));
  out += StrFormat("  \"seconds\": %.9f,\n", r.seconds);
  out += StrFormat("  \"ipc\": %.6f,\n", r.ipc);
  out += StrFormat("  \"l1_mpki\": %.3f,\n  \"l2_mpki\": %.3f,\n  \"l3_mpki\": %.3f,\n",
                   r.l1_mpki, r.l2_mpki, r.l3_mpki);
  out += StrFormat("  \"atomics\": %llu,\n",
                   static_cast<unsigned long long>(r.atomics));
  out += StrFormat("  \"offloaded_atomics\": %llu,\n",
                   static_cast<unsigned long long>(r.offloaded_atomics));
  out += StrFormat("  \"atomic_miss_rate\": %.4f,\n", r.atomic_miss_rate);
  out += StrFormat("  \"req_flits\": %.0f,\n  \"resp_flits\": %.0f,\n", r.req_flits,
                   r.resp_flits);
  if (r.link_crc_errors > 0 || r.poisoned_ops > 0 || r.vault_stalls > 0) {
    out += StrFormat("  \"fault\": {\"link_crc_errors\": %llu, "
                     "\"link_retries\": %llu, \"retry_flits\": %.0f, "
                     "\"poisoned_ops\": %llu, \"vault_stalls\": %llu},\n",
                     static_cast<unsigned long long>(r.link_crc_errors),
                     static_cast<unsigned long long>(r.link_retries),
                     r.retry_flits,
                     static_cast<unsigned long long>(r.poisoned_ops),
                     static_cast<unsigned long long>(r.vault_stalls));
  }
  out += StrFormat("  \"frac_backend\": %.4f,\n  \"frac_frontend\": %.4f,\n",
                   r.frac_backend, r.frac_frontend);
  out += StrFormat("  \"frac_badspec\": %.4f,\n  \"frac_retiring\": %.4f,\n",
                   r.frac_badspec, r.frac_retiring);
  out += StrFormat("  \"energy_j\": {\"caches\": %.9f, \"link\": %.9f, \"fu\": %.9f, "
                   "\"logic\": %.9f, \"dram\": %.9f, \"total\": %.9f},\n",
                   r.energy.caches_j, r.energy.link_j, r.energy.fu_j,
                   r.energy.logic_j, r.energy.dram_j, r.energy.Total());
  out += "  \"counters\": {";
  bool first = true;
  for (const auto& [k, v] : r.raw.Items()) {
    if (!first) out += ", ";
    first = false;
    out += StrFormat("\"%s\": %.3f", k.c_str(), v);
  }
  out += "}\n}\n";
  return out;
}

bool WriteJson(const SimResults& r, const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  std::string json = ToJson(r);
  bool ok = std::fwrite(json.data(), 1, json.size(), f) == json.size();
  std::fclose(f);
  return ok;
}

}  // namespace graphpim::core
