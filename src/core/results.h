// Aggregated results of one simulation run.
#ifndef GRAPHPIM_CORE_RESULTS_H_
#define GRAPHPIM_CORE_RESULTS_H_

#include <cstdint>
#include <string>

#include "common/stats.h"
#include "energy/energy.h"

namespace graphpim::core {

struct SimResults {
  std::string mode;

  // Timing.
  std::uint64_t cycles = 0;       // longest core's cycle count
  std::uint64_t insts = 0;        // total retired micro-ops
  double seconds = 0.0;           // simulated wall clock
  double ipc = 0.0;               // per-core average IPC

  // Cache behavior.
  double l1_mpki = 0.0;
  double l2_mpki = 0.0;
  double l3_mpki = 0.0;
  double atomic_miss_rate = 0.0;  // offloading candidates missing all levels

  // Atomics.
  std::uint64_t atomics = 0;
  std::uint64_t offloaded_atomics = 0;

  // Link traffic (Fig 12).
  double req_flits = 0.0;
  double resp_flits = 0.0;

  // Fault injection & degraded modes (src/fault, DESIGN.md §9). All zero
  // on a fault-free run.
  std::uint64_t link_crc_errors = 0;  // corrupted packets detected at RX
  std::uint64_t link_retries = 0;     // retry-buffer replays
  double retry_flits = 0.0;           // FLITs retransmitted by replays
  std::uint64_t poisoned_ops = 0;     // responses delivered poisoned
  std::uint64_t vault_stalls = 0;     // injected vault busy-stalls

  // Execution-time attribution, fractions of total core time (Fig 9).
  double frac_atomic_incore = 0.0;
  double frac_atomic_incache = 0.0;
  double frac_atomic_dep = 0.0;
  double frac_other = 0.0;

  // Top-down style breakdown (Fig 2).
  double frac_frontend = 0.0;
  double frac_badspec = 0.0;
  double frac_retiring = 0.0;
  double frac_backend = 0.0;

  // Uncore energy (Fig 15).
  energy::EnergyBreakdown energy;

  // Host-side footprint of the replayed tiled micro-op trace (the sum of
  // every stream's TraceTile arenas). A plain field rather than a registry
  // counter on purpose: the counter surface is pinned by the golden JSON
  // files, while this is a property of the simulator process, not of the
  // simulated machine. Zero when the results were not produced by a trace
  // replay.
  std::uint64_t trace_peak_bytes = 0;

  // The run's unified counter registry for deeper analysis: every
  // component's counters plus the merged per-core "core." totals. The
  // compatibility raw.Items() view (JSON "counters") hides the "core."
  // scope; raw.AllItems() exposes everything.
  StatRegistry raw;
};

}  // namespace graphpim::core

#endif  // GRAPHPIM_CORE_RESULTS_H_
