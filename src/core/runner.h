// Run harness: trace generation + multi-core replay under a configuration.
//
// Typical use (and what every bench does):
//
//   Experiment exp("ldbc", 16 * 1024, "bfs");
//   SimResults base = exp.Run(SimConfig::Scaled(Mode::kBaseline));
//   SimResults pim  = exp.Run(SimConfig::Scaled(Mode::kGraphPim));
//   double speedup  = Speedup(base, pim);
//
// Raw-trace callers use the single RunSimulation entry point and pass
// RunOptions{} (or instrumentation) explicitly.
//
// The trace is generated once and replayed under every machine so the
// comparison is paired.
#ifndef GRAPHPIM_CORE_RUNNER_H_
#define GRAPHPIM_CORE_RUNNER_H_

#include <memory>
#include <string>

#include "common/trace.h"
#include "core/results.h"
#include "telemetry/timeline.h"
#include "core/sim_config.h"
#include "graph/csr.h"
#include "graph/generator.h"
#include "graph/region.h"
#include "pmem/crash.h"
#include "pmem/pmem.h"
#include "workloads/workload.h"

namespace graphpim::core {

// Optional instrumentation attached to one simulation run.
struct RunOptions {
  // When non-null, the run cuts a phase at every BSP superstep boundary
  // (the barrier rendezvous) plus a final drain phase, recording per-phase
  // counter deltas of the whole merged registry. Not reset by the run;
  // attach a fresh PhaseLog per run.
  trace::PhaseLog* phases = nullptr;

  // When non-null AND cfg.trace_sample_rate > 0, receives the run's
  // sampled transaction spans (overwritten, not appended). The recorder
  // itself lives inside RunSimulation; with sample_rate == 0 no recorder
  // is built and this stays untouched. Span statistics (span.*) are folded
  // into SimResults::raw whenever sampling is on, regardless of this
  // pointer.
  trace::SpanLog* spans = nullptr;

  // When non-null AND cfg.pmem.enable, receives the run's persist log (one
  // PersistStoreEvent per PMR store, with issue/persist ticks) — the input
  // to the crash/recovery harness. Untouched when the persist domain is
  // off.
  pmem::PersistLog* persist = nullptr;

  // When non-null AND cfg.telemetry_window_ns > 0, receives the run's
  // windowed counter/gauge timeline (DESIGN.md §17; cleared first). The
  // sampler cuts windows at the engine's round tail, where quantum_end is
  // identical at any --shards, so the timeline is bit-identical across
  // shard counts and reruns. With window_ns == 0 no sampler is built and
  // this stays untouched.
  telemetry::Timeline* timeline = nullptr;
};

// THE simulation entry point. Replays `trace` under `cfg` (which is
// Validate()d first, so hand-built configs get the same gate as parsed
// ones). `pmr_base`/`pmr_end` delimit the PMR the POU recognizes. `opts`
// carries per-run instrumentation; callers with none pass `RunOptions{}` —
// deliberately no default, so every call site states its instrumentation
// intent and there is exactly one overload to audit.
SimResults RunSimulation(const workloads::Trace& trace, const SimConfig& cfg,
                         Addr pmr_base, Addr pmr_end, const RunOptions& opts);

// Speedup of `other` over `base` (paper convention: normalized to baseline).
double Speedup(const SimResults& base, const SimResults& other);

// Owns a graph + workload + generated trace for repeated paired runs.
class Experiment {
 public:
  struct Options {
    int num_threads = 16;
    std::uint64_t seed = 1;
    std::uint64_t op_cap = 12'000'000;  // sampling guard for huge inputs
    double mispredict_rate = 0.06;
    bool dedup_edges = false;

    // Persist discipline the workload generates with (DESIGN.md §14).
    // kOff keeps the trace byte-identical to pre-pmem builds; the mutant
    // modes seed checker-visible bugs on purpose.
    pmem::PersistMode persist = pmem::PersistMode::kOff;

    // Per-workload parameter blocks (DESIGN.md §16), forwarded to
    // CreateWorkload. Defaults are a strict passthrough for the
    // parameterless workloads.
    workloads::WorkloadParams params;
  };

  // Generates a `profile` graph ("ldbc"/"bitcoin"/"twitter") with
  // `num_vertices` vertices and runs `workload_name` on it functionally,
  // capturing the trace.
  Experiment(const std::string& profile, VertexId num_vertices,
             const std::string& workload_name, const Options& opts);
  Experiment(const std::string& profile, VertexId num_vertices,
             const std::string& workload_name)
      : Experiment(profile, num_vertices, workload_name, Options()) {}

  // Same but over a caller-provided edge list.
  Experiment(const graph::EdgeList& el, const std::string& workload_name,
             const Options& opts);
  Experiment(const graph::EdgeList& el, const std::string& workload_name)
      : Experiment(el, workload_name, Options()) {}

  SimResults Run(const SimConfig& cfg,
                 const RunOptions& opts = RunOptions()) const;

  const graph::CsrGraph& graph() const { return *graph_; }
  const workloads::Workload& workload() const { return *workload_; }
  const workloads::Trace& trace() const { return trace_; }

  // Crash-harness surface (non-null/meaningful only for persist-capable
  // workloads generated with persist != kOff).
  const pmem::UpdateLog* update_log() const { return workload_->update_log(); }
  pmem::RecoveryInvariant recovery_invariant() const {
    return workload_->recovery_invariant();
  }
  bool persist_capable() const { return workload_->persist_capable(); }
  Addr pmr_base() const { return space_->pmr_base(); }
  Addr pmr_end() const { return space_->pmr_end(); }

 private:
  void Build(const graph::EdgeList& el, const std::string& workload_name,
             const Options& opts);

  std::unique_ptr<graph::AddressSpace> space_;
  std::unique_ptr<graph::CsrGraph> graph_;
  std::unique_ptr<workloads::Workload> workload_;
  workloads::Trace trace_;
};

}  // namespace graphpim::core

#endif  // GRAPHPIM_CORE_RUNNER_H_
