#include "core/sim_config.h"

#include <cmath>
#include <cstdlib>

#include "common/config.h"
#include "common/log.h"
#include "common/string_util.h"

namespace graphpim::core {

namespace {

// The machine-knob field table: the ONE place that binds a config key to a
// SimConfig field, its valid range, and its Describe() rendering.
// FromConfig applies rows, Validate checks them, Describe prints them —
// adding a knob here wires up all three at once.
struct KnobRow {
  const char* key;  // canonical spelling (grid specs, underscores)
  const char* cli;  // dashed CLI alias; nullptr when identical
  double min;
  double max;       // inclusive; checked by Validate
  bool integral;    // value must be a whole number
  double (*get)(const SimConfig&);
  void (*set)(SimConfig&, double);
};

constexpr KnobRow kKnobs[] = {
    {"threads", nullptr, 1, 4096, true,
     [](const SimConfig& c) { return static_cast<double>(c.num_cores); },
     [](SimConfig& c, double v) { c.num_cores = static_cast<int>(v); }},
    {"fp", nullptr, 0, 1, true,
     [](const SimConfig& c) { return c.hmc.enable_fp_atomics ? 1.0 : 0.0; },
     [](SimConfig& c, double v) { c.hmc.enable_fp_atomics = v != 0.0; }},
    {"fus", nullptr, 1, 1024, true,
     [](const SimConfig& c) { return static_cast<double>(c.hmc.fus_per_vault); },
     [](SimConfig& c, double v) {
       c.hmc.fus_per_vault = static_cast<std::uint32_t>(v);
     }},
    {"linkbw", nullptr, 0.001, 64, false,
     [](const SimConfig& c) { return c.hmc.link_bw_scale; },
     [](SimConfig& c, double v) { c.hmc.link_bw_scale = v; }},
    {"hybrid", nullptr, 0, 1, false,
     [](const SimConfig& c) { return c.pmr_hmc_fraction; },
     [](SimConfig& c, double v) { c.pmr_hmc_fraction = v; }},
    {"uc_depth", "uc-depth", 1, 4096, true,
     [](const SimConfig& c) { return static_cast<double>(c.uc_queue_depth); },
     [](SimConfig& c, double v) { c.uc_queue_depth = static_cast<int>(v); }},
    {"num_cubes", "num-cubes", 1, 64, true,
     [](const SimConfig& c) { return static_cast<double>(c.hmc.num_cubes); },
     [](SimConfig& c, double v) {
       c.hmc.num_cubes = static_cast<std::uint32_t>(v);
     }},
    {"cube_page_bytes", "cube-page-bytes", 64, 1 << 30, true,
     [](const SimConfig& c) {
       return static_cast<double>(c.hmc.cube_page_bytes);
     },
     [](SimConfig& c, double v) {
       c.hmc.cube_page_bytes = static_cast<std::uint64_t>(v);
     }},
    {"link_ber", "link-ber", 0, 1, false,
     [](const SimConfig& c) { return c.hmc.fault.link_ber; },
     [](SimConfig& c, double v) { c.hmc.fault.link_ber = v; }},
    {"vault_stall_ppm", "vault-stall-ppm", 0, 1'000'000, true,
     [](const SimConfig& c) {
       return static_cast<double>(c.hmc.fault.vault_stall_ppm);
     },
     [](SimConfig& c, double v) {
       c.hmc.fault.vault_stall_ppm = static_cast<std::uint32_t>(v);
     }},
    {"poison_ppm", "poison-ppm", 0, 1'000'000, true,
     [](const SimConfig& c) {
       return static_cast<double>(c.hmc.fault.poison_ppm);
     },
     [](SimConfig& c, double v) {
       c.hmc.fault.poison_ppm = static_cast<std::uint32_t>(v);
     }},
    {"max_retries", "max-retries", 0, 64, true,
     [](const SimConfig& c) {
       return static_cast<double>(c.hmc.fault.max_retries);
     },
     [](SimConfig& c, double v) {
       c.hmc.fault.max_retries = static_cast<std::uint32_t>(v);
     }},
    {"retry_ns", "retry-ns", 0, 1'000'000, false,
     [](const SimConfig& c) { return TicksToNs(c.hmc.fault.retry_latency); },
     [](SimConfig& c, double v) { c.hmc.fault.retry_latency = NsToTicks(v); }},
    {"sim.shards", "shards", 1, 256, true,
     [](const SimConfig& c) { return static_cast<double>(c.shards); },
     [](SimConfig& c, double v) { c.shards = static_cast<int>(v); }},
    {"trace.sample_rate", "trace-sample-rate", 0, 1, false,
     [](const SimConfig& c) { return c.trace_sample_rate; },
     [](SimConfig& c, double v) { c.trace_sample_rate = v; }},
    {"trace.max_spans", "trace-max-spans", 0, 1e15, true,
     [](const SimConfig& c) {
       return static_cast<double>(c.trace_max_spans);
     },
     [](SimConfig& c, double v) {
       c.trace_max_spans = static_cast<std::uint64_t>(v);
     }},
    // Telemetry timelines (DESIGN.md §17). 0 = off (strict byte-identity,
    // like trace.sample_rate); positive windows additionally must be
    // >= 1 ns (cross-checked in Validate, below one-field range reach).
    {"telemetry.window_ns", "telemetry-window-ns", 0, 1e9, false,
     [](const SimConfig& c) { return c.telemetry_window_ns; },
     [](SimConfig& c, double v) { c.telemetry_window_ns = v; }},
    {"telemetry.max_windows", "telemetry-max-windows", 0, 1e15, true,
     [](const SimConfig& c) {
       return static_cast<double>(c.telemetry_max_windows);
     },
     [](SimConfig& c, double v) {
       c.telemetry_max_windows = static_cast<std::uint64_t>(v);
     }},
    {"pmem.enable", "pmem-enable", 0, 1, true,
     [](const SimConfig& c) { return c.pmem.enable ? 1.0 : 0.0; },
     [](SimConfig& c, double v) { c.pmem.enable = v != 0.0; }},
    {"pmem.flush_ns", "pmem-flush-ns", 0, 1'000'000, false,
     [](const SimConfig& c) { return c.pmem.flush_ns; },
     [](SimConfig& c, double v) { c.pmem.flush_ns = v; }},
    {"pmem.fence_ns", "pmem-fence-ns", 0, 1'000'000, false,
     [](const SimConfig& c) { return c.pmem.fence_ns; },
     [](SimConfig& c, double v) { c.pmem.fence_ns = v; }},
    // -1 disables the single-shot crash; any non-negative tick requires
    // pmem.enable=1 (cross-checked in Validate).
    {"pmem.crash_tick", "pmem-crash-tick", -1, 1e15, false,
     [](const SimConfig& c) { return c.pmem.crash_tick_ns; },
     [](SimConfig& c, double v) { c.pmem.crash_tick_ns = v; }},
    // ANN / HNSW workload knobs (DESIGN.md §16). Read only by the hnsw
    // workload and the serve engine's knn query kind; the defaults are a
    // strict passthrough for everything else.
    {"ann.dim", "ann-dim", 2, 1024, true,
     [](const SimConfig& c) { return static_cast<double>(c.ann.dim); },
     [](SimConfig& c, double v) { c.ann.dim = static_cast<int>(v); }},
    {"ann.m", "ann-m", 2, 64, true,
     [](const SimConfig& c) { return static_cast<double>(c.ann.m); },
     [](SimConfig& c, double v) { c.ann.m = static_cast<int>(v); }},
    {"ann.ef_search", "ann-ef-search", 1, 4096, true,
     [](const SimConfig& c) { return static_cast<double>(c.ann.ef_search); },
     [](SimConfig& c, double v) { c.ann.ef_search = static_cast<int>(v); }},
    {"ann.k", "ann-k", 1, 1024, true,
     [](const SimConfig& c) { return static_cast<double>(c.ann.k); },
     [](SimConfig& c, double v) { c.ann.k = static_cast<int>(v); }},
    {"ann.queries", "ann-queries", 1, 1'000'000, true,
     [](const SimConfig& c) { return static_cast<double>(c.ann.queries); },
     [](SimConfig& c, double v) { c.ann.queries = static_cast<int>(v); }},
};

// True and yields the value when `cfg` carries the row's key under either
// spelling.
bool LookupKnob(const Config& cfg, const KnobRow& row, double* out) {
  const char* key = nullptr;
  if (cfg.Has(row.key)) {
    key = row.key;
  } else if (row.cli != nullptr && cfg.Has(row.cli)) {
    key = row.cli;
  }
  if (key == nullptr) return false;
  // Parse by hand: a malformed value must be a recoverable SimError naming
  // the key (like the range checks), not Config::GetDouble's GP_FATAL.
  const std::string raw = cfg.GetString(key, "");
  char* end = nullptr;
  const double v = std::strtod(raw.c_str(), &end);
  if (raw.empty() || end != raw.c_str() + raw.size()) {
    GP_THROW("config key '", key, "': '", raw, "' is not a number");
  }
  *out = v;
  return true;
}

bool IsPowerOfTwo(std::uint64_t v) { return v != 0 && (v & (v - 1)) == 0; }

// Range/integrality gate for one knob value. Called on the RAW parsed value
// in FromConfig (before row.set truncates it into an integer field — a
// fractional "threads=2.5" must fail, not silently floor) and again on the
// stored field value in Validate() for programmatically-built configs.
void CheckKnobValue(const KnobRow& row, double v) {
  if (v < row.min || v > row.max) {
    GP_THROW("config key '", row.key, "' out of range: ", v, " not in [",
             row.min, ", ", row.max, "]");
  }
  if (row.integral && v != std::floor(v)) {
    GP_THROW("config key '", row.key, "' must be an integer, got ", v);
  }
}

}  // namespace

const char* ToString(Mode m) {
  switch (m) {
    case Mode::kBaseline:
      return "Baseline";
    case Mode::kUPei:
      return "U-PEI";
    case Mode::kGraphPim:
      return "GraphPIM";
    case Mode::kUncacheNoPim:
      return "UC-NoPIM";
  }
  return "?";
}

SimConfig SimConfig::Paper(Mode mode) {
  SimConfig cfg;
  cfg.mode = mode;
  return cfg;  // defaults are Table IV
}

SimConfig SimConfig::Scaled(Mode mode) {
  SimConfig cfg;
  cfg.mode = mode;
  cfg.cache.l1_size = 16 * kKiB;
  cfg.cache.l2_size = 32 * kKiB;
  cfg.cache.l3_size = 512 * kKiB;
  return cfg;
}

SimConfig SimConfig::FromConfig(const graphpim::Config& cfg, Mode mode) {
  SimConfig out = cfg.GetBool("full", false) ? Paper(mode) : Scaled(mode);
  for (const KnobRow& row : kKnobs) {
    double v = 0.0;
    if (LookupKnob(cfg, row, &v)) {
      CheckKnobValue(row, v);
      row.set(out, v);
    }
  }
  if (cfg.Has("topology")) {
    out.hmc.cube_topology =
        hmc::ParseCubeTopology(cfg.GetString("topology", "chain"));
  }
  out.Validate();
  return out;
}

std::vector<std::string> SimConfig::ConfigKeys() {
  std::vector<std::string> keys = {"full", "topology"};
  for (const KnobRow& row : kKnobs) {
    keys.push_back(row.key);
    if (row.cli != nullptr) keys.push_back(row.cli);
  }
  return keys;
}

void SimConfig::Validate() const {
  for (const KnobRow& row : kKnobs) {
    CheckKnobValue(row, row.get(*this));
  }
  // Structural invariants not expressible as one-field ranges.
  if (hmc.num_vaults == 0 || hmc.banks_per_vault == 0 || hmc.num_links == 0) {
    GP_THROW("config: HMC geometry needs at least one vault, bank, and link");
  }
  if (quantum <= 0) GP_THROW("config: quantum must be positive");
  if (bus_lock_penalty < 0) {
    GP_THROW("config: bus_lock_penalty must be >= 0");
  }
  if (!IsPowerOfTwo(hmc.cube_page_bytes)) {
    GP_THROW("config key 'cube_page_bytes' must be a power of two, got ",
             hmc.cube_page_bytes);
  }
  if (hmc.capacity_bytes % hmc.cube_page_bytes != 0) {
    GP_THROW("config key 'cube_page_bytes' (", hmc.cube_page_bytes,
             ") does not divide the cube capacity (", hmc.capacity_bytes,
             "): the page interleave would straddle the capacity boundary");
  }
  if (hmc.capacity_bytes / hmc.cube_page_bytes <
      static_cast<std::uint64_t>(hmc.num_cubes)) {
    GP_THROW("config key 'num_cubes' (", hmc.num_cubes,
             ") exceeds the per-cube page count; shrink cube_page_bytes");
  }
  if (telemetry_window_ns > 0.0 && telemetry_window_ns < 1.0) {
    GP_THROW("config key 'telemetry.window_ns' (", telemetry_window_ns,
             ") must be 0 (off) or >= 1 ns: sub-nanosecond windows are "
             "below the model's useful time granularity");
  }
  if (!pmem.enable && pmem.crash_tick_ns >= 0) {
    GP_THROW("config key 'pmem.crash_tick' (", pmem.crash_tick_ns,
             ") requires 'pmem.enable'=1: a crash point is meaningless "
             "without the persistent PMR");
  }
  if (ann.k > ann.ef_search) {
    GP_THROW("config key 'ann.k' (", ann.k, ") must be <= 'ann.ef_search' (",
             ann.ef_search, "): the beam must be at least as wide as the "
             "result list");
  }
}

std::string SimConfig::Describe() const {
  // Fixed geometry first (fields with no CLI knob), then every tunable in
  // field-table order — the table is the Describe source, so FromConfig
  // and Describe cannot drift apart.
  std::string out = StrFormat(
      "%s: %d OoO cores @ %.1fGHz, %d-issue, ROB %d | L1 %lluKB L2 %lluKB "
      "L3 %lluKB | HMC %ux%uGB (%s), %u vaults x %u banks, %u links",
      ToString(mode), num_cores, core.freq_ghz, core.issue_width, core.rob_size,
      static_cast<unsigned long long>(cache.l1_size / kKiB),
      static_cast<unsigned long long>(cache.l2_size / kKiB),
      static_cast<unsigned long long>(cache.l3_size / kKiB), hmc.num_cubes,
      static_cast<unsigned>(hmc.capacity_bytes / kGiB),
      hmc::ToString(hmc.cube_topology), hmc.num_vaults, hmc.banks_per_vault,
      hmc.num_links);
  out += " | knobs:";
  for (const KnobRow& row : kKnobs) {
    out += StrFormat(" %s=%g", row.key, row.get(*this));
  }
  return out;
}

}  // namespace graphpim::core
