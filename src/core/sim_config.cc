#include "core/sim_config.h"

#include "common/string_util.h"

namespace graphpim::core {

const char* ToString(Mode m) {
  switch (m) {
    case Mode::kBaseline:
      return "Baseline";
    case Mode::kUPei:
      return "U-PEI";
    case Mode::kGraphPim:
      return "GraphPIM";
    case Mode::kUncacheNoPim:
      return "UC-NoPIM";
  }
  return "?";
}

SimConfig SimConfig::Paper(Mode mode) {
  SimConfig cfg;
  cfg.mode = mode;
  return cfg;  // defaults are Table IV
}

SimConfig SimConfig::Scaled(Mode mode) {
  SimConfig cfg;
  cfg.mode = mode;
  cfg.cache.l1_size = 16 * kKiB;
  cfg.cache.l2_size = 32 * kKiB;
  cfg.cache.l3_size = 512 * kKiB;
  return cfg;
}

std::string SimConfig::Describe() const {
  return StrFormat(
      "%s: %d OoO cores @ %.1fGHz, %d-issue, ROB %d | L1 %lluKB L2 %lluKB "
      "L3 %lluKB | HMC %u vaults x %u banks, %u links @ %.0fGB/s x%.2f, "
      "%u FU/vault, FP-atomics %s",
      ToString(mode), num_cores, core.freq_ghz, core.issue_width, core.rob_size,
      static_cast<unsigned long long>(cache.l1_size / kKiB),
      static_cast<unsigned long long>(cache.l2_size / kKiB),
      static_cast<unsigned long long>(cache.l3_size / kKiB), hmc.num_vaults,
      hmc.banks_per_vault, hmc.num_links, hmc.link_gbps, hmc.link_bw_scale,
      hmc.fus_per_vault, hmc.enable_fp_atomics ? "on" : "off");
}

}  // namespace graphpim::core
