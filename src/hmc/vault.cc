#include "hmc/vault.h"

#include <algorithm>
#include <bit>

#include "common/log.h"

namespace graphpim::hmc {

Vault::Vault(const HmcParams& params, StatRegistry* stats,
             trace::SpanRecorder* spans, std::uint32_t track)
    : params_(params),
      spans_(spans),
      track_(track),
      stats_(stats, "hmc"),
      sid_row_hits_(stats_.Counter("row_hits")),
      sid_row_misses_(stats_.Counter("row_misses")),
      sid_refresh_stalls_(stats_.Counter("refresh_stalls")),
      sid_fu_int_ops_(stats_.Counter("fu_int_ops")),
      sid_fu_fp_ops_(stats_.Counter("fu_fp_ops")),
      sid_bank_locked_ticks_(stats_.Counter("bank_locked_ticks")),
      banks_(params.banks_per_vault),
      int_fu_ready_(std::max<std::uint32_t>(1, params.fus_per_vault), 0),
      fp_fu_ready_(std::max<std::uint32_t>(1, params.fp_fus_per_vault), 0),
      ctrl_(25 * kTicksPerNs, std::max<Tick>(1, params.ctrl_overhead)) {
  if (std::has_single_bit(params.row_bytes) &&
      std::has_single_bit(params.banks_per_vault)) {
    row_shift_ = static_cast<std::uint32_t>(std::countr_zero(params.row_bytes));
    bank_shift_ =
        static_cast<std::uint32_t>(std::countr_zero(params.banks_per_vault));
    bank_mask_ = params.banks_per_vault - 1;
    pow2_geometry_ = true;
  }
}

Vault::Bank& Vault::BankFor(Addr addr) {
  // The bank index within the vault: bits above the row offset, below the
  // row number. The cube has already stripped vault interleaving. Row size
  // and bank count are powers of two in every stock config, making both
  // index extractions shifts; odd sweep geometries fall back to division.
  if (pow2_geometry_) return banks_[(addr >> row_shift_) & bank_mask_];
  return banks_[(addr / params_.row_bytes) % params_.banks_per_vault];
}

std::int64_t Vault::RowOf(Addr addr) const {
  if (pow2_geometry_) {
    return static_cast<std::int64_t>(addr >> (row_shift_ + bank_shift_));
  }
  return static_cast<std::int64_t>(
      addr /
      (static_cast<std::uint64_t>(params_.row_bytes) * params_.banks_per_vault));
}

Tick Vault::BankAccess(Bank& bank, std::int64_t row, Tick start, bool* row_hit) {
  *row_hit = false;
  Tick t = std::max(start, bank.ready);
  // Periodic refresh: the window [k*tREFI - tRFC, k*tREFI) blocks the
  // bank; accesses landing inside wait for the boundary. The interval base
  // is cached per bank (times are monotone per bank); it usually advances
  // zero or one interval per access, so the slow division path is rare.
  if (params_.t_refi != 0 && params_.t_rfc != 0) {
    Tick base = bank.refresh_base;
    if (t - base >= 16 * params_.t_refi) {
      base = (t / params_.t_refi) * params_.t_refi;
    } else {
      while (t - base >= params_.t_refi) base += params_.t_refi;
    }
    bank.refresh_base = base;
    Tick phase = t - base;
    if (phase >= params_.t_refi - params_.t_rfc) {
      stats_.Inc(sid_refresh_stalls_);
      t += params_.t_refi - phase;
    }
  }
  if (params_.closed_page) {
    // Auto-precharge after every access: uniform activate+access latency,
    // precharge overlaps the idle gap.
    Tick data = t + params_.t_rcd + params_.t_cl + params_.t_burst;
    bank.open_row = -1;
    bank.activate_tick = t;
    bank.ready = data + params_.t_rp;
    return data;
  }
  if (bank.open_row == row) {
    *row_hit = true;
    return t + params_.t_cl + params_.t_burst;
  }
  if (bank.open_row < 0) {
    // Closed bank: activate then access.
    bank.open_row = row;
    bank.activate_tick = t;
    return t + params_.t_rcd + params_.t_cl + params_.t_burst;
  }
  // Row conflict: precharge (respecting tRAS), activate, access.
  Tick pre = std::max(t, bank.activate_tick + params_.t_ras);
  Tick act = pre + params_.t_rp;
  bank.open_row = row;
  bank.activate_tick = act;
  return act + params_.t_rcd + params_.t_cl + params_.t_burst;
}

Vault::AccessResult Vault::Read(Addr addr, Tick arrival, trace::SpanRef span) {
  Tick start = ctrl_.Reserve(1, arrival);
  Bank& bank = BankFor(addr);
  AccessResult r;
  r.data_ready = BankAccess(bank, RowOf(addr), start, &r.row_hit);
  r.done = r.data_ready;
  bank.ready = r.done;
  stats_.Inc(r.row_hit ? sid_row_hits_ : sid_row_misses_);
  Stamp(span, trace::SpanStage::kVaultQueue, arrival, start);
  Stamp(span, trace::SpanStage::kBankAccess, start, r.data_ready);
  return r;
}

Vault::AccessResult Vault::Write(Addr addr, Tick arrival, trace::SpanRef span) {
  Tick start = ctrl_.Reserve(1, arrival);
  Bank& bank = BankFor(addr);
  AccessResult r;
  r.data_ready = BankAccess(bank, RowOf(addr), start, &r.row_hit);
  r.done = r.data_ready + params_.t_wr;
  bank.ready = r.done;
  stats_.Inc(r.row_hit ? sid_row_hits_ : sid_row_misses_);
  Stamp(span, trace::SpanStage::kVaultQueue, arrival, start);
  Stamp(span, trace::SpanStage::kBankAccess, start, r.data_ready);
  return r;
}

Vault::AccessResult Vault::Atomic(Addr addr, AtomicOp op, Tick arrival,
                                  trace::SpanRef span) {
  Tick start = ctrl_.Reserve(1, arrival);
  Bank& bank = BankFor(addr);

  AccessResult r;
  Tick read_ready = BankAccess(bank, RowOf(addr), start, &r.row_hit);

  // Pick the earliest-available functional unit of the right kind.
  const bool fp = IsFpOp(op);
  GP_CHECK(!fp || params_.enable_fp_atomics,
           "FP atomic reached the vault with the FP extension disabled");
  std::vector<Tick>& pool = fp ? fp_fu_ready_ : int_fu_ready_;
  auto fu = std::min_element(pool.begin(), pool.end());
  Tick fu_lat = fp ? params_.fu_fp_latency : params_.fu_int_latency;
  Tick fu_start = std::max(read_ready, *fu);
  Tick fu_done = fu_start + fu_lat;
  *fu = fu_done;
  (fp ? fp_fu_busy_ : int_fu_busy_) += fu_lat;

  // Write the result back; the bank stays locked for the whole RMW.
  r.data_ready = fu_done;
  r.done = fu_done + params_.t_wr;
  bank.ready = r.done;

  stats_.Inc(r.row_hit ? sid_row_hits_ : sid_row_misses_);
  stats_.Inc(fp ? sid_fu_fp_ops_ : sid_fu_int_ops_);
  stats_.Add(sid_bank_locked_ticks_, static_cast<double>(r.done - start));
  // The three stages tile [arrival, data_ready] exactly, so per-stage sums
  // reconcile with hmc.dbg_a_vault_ns by construction (the t_wr writeback
  // after fu_done is off the response path and is not a latency stage).
  Stamp(span, trace::SpanStage::kVaultQueue, arrival, start);
  Stamp(span, trace::SpanStage::kBankAccess, start, read_ready);
  Stamp(span, trace::SpanStage::kAtomicFu, read_ready, fu_done);
  return r;
}

}  // namespace graphpim::hmc
