// Multi-cube HMC network: sharded PMR across a chain or star of cubes.
//
// GraphPIM's evaluation models one 8 GB HMC 2.0 package. The HMC 2.0 spec
// allows up to 8 packages to be chained over the same SerDes links, and the
// paper's Section III-B hybrid-memory discussion is exactly about property
// data that does not fit one cube. `HmcNetwork` scales capacity that way:
//
//   - it owns `num_cubes` identical `HmcCube`s;
//   - PMR addresses interleave across cubes at page granularity
//     (`cube_page_bytes`), non-PMR addresses at absolute-page granularity,
//     so every page has exactly ONE home cube and the carve is bijective;
//   - a transaction for a remote cube pays pass-through hops — SerDes link
//     serialization on the inter-cube hop link (full-duplex, bandwidth
//     accounted per hop) plus link + pass-through crossbar latency — before
//     and after the home cube's own (unchanged) timing;
//   - chain: cube c is c hops from the host; star: cube 0 is the hub and
//     every other cube is 1 hop behind it;
//   - each cube draws its own decorrelated fault stream
//     (fault::DeriveCubeFaultSeed), cube 0 keeping the single-cube stream.
//
// `num_cubes == 1` is a zero-hop passthrough: every call forwards directly
// to the single cube, so results are byte-identical to the pre-network
// simulator (the tests/golden/ contract).
#ifndef GRAPHPIM_HMC_TOPOLOGY_H_
#define GRAPHPIM_HMC_TOPOLOGY_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "common/stats.h"
#include "common/types.h"
#include "hmc/cube.h"
#include "hmc/link.h"

namespace graphpim::hmc {

// Pure page-carving math for the cube shard mapping, shared by the network
// hot path and the bijectivity tests. PMR pages are carved relative to
// `pmr_base` (so shard 0 always starts at the PMR base regardless of where
// the region sits); everything else interleaves on absolute page number.
struct CubeMap {
  std::uint32_t num_cubes = 1;
  std::uint64_t page_bytes = 4096;
  Addr pmr_base = 0;
  Addr pmr_end = 0;

  bool InPmr(Addr a) const { return a >= pmr_base && a < pmr_end; }

  // Home cube of `a`'s page.
  std::uint32_t CubeOf(Addr a) const {
    if (num_cubes <= 1) return 0;
    const std::uint64_t page =
        InPmr(a) ? (a - pmr_base) / page_bytes : a / page_bytes;
    return static_cast<std::uint32_t>(page % num_cubes);
  }

  // Strips the cube-interleave bits: the address `a` occupies inside its
  // home cube. Bijective per cube — Reconstruct(CubeOf(a), LocalAddr(a))
  // round-trips to `a` exactly.
  Addr LocalAddr(Addr a) const {
    if (num_cubes <= 1) return a;
    if (InPmr(a)) {
      const std::uint64_t off = a - pmr_base;
      const std::uint64_t page = off / page_bytes;
      return pmr_base + (page / num_cubes) * page_bytes + off % page_bytes;
    }
    const std::uint64_t page = a / page_bytes;
    return (page / num_cubes) * page_bytes + a % page_bytes;
  }

  // Inverse of (CubeOf, LocalAddr). `local` must be a LocalAddr() result
  // whose PMR-ness matches the original address (the carve preserves it).
  Addr Reconstruct(std::uint32_t cube, Addr local) const {
    if (num_cubes <= 1) return local;
    if (InPmr(local)) {
      const std::uint64_t off = local - pmr_base;
      const std::uint64_t local_page = off / page_bytes;
      return pmr_base + (local_page * num_cubes + cube) * page_bytes +
             off % page_bytes;
    }
    const std::uint64_t local_page = local / page_bytes;
    return (local_page * num_cubes + cube) * page_bytes + local % page_bytes;
  }
};

// The cube network. Exposes the same transaction surface as one HmcCube so
// mem::CacheHierarchy and core::MemorySystem route through it unchanged.
class HmcNetwork {
 public:
  // `params` describes every cube (num_cubes/cube_topology/cube_page_bytes
  // are the network knobs). `pmr_base`/`pmr_end` delimit the sharded PMR.
  // Cube i > 0 re-seeds its fault plan with DeriveCubeFaultSeed so the
  // cubes inject decorrelated fault streams. `spans` (may be null) is the
  // transaction flight recorder: hop traversals stamp kHopLink stages and
  // the handle threads into the home cube's own stamps.
  HmcNetwork(const HmcParams& params, StatRegistry* stats, Addr pmr_base,
             Addr pmr_end, trace::SpanRecorder* spans = nullptr);

  HmcNetwork(const HmcNetwork&) = delete;
  HmcNetwork& operator=(const HmcNetwork&) = delete;

  // Transactions, routed to the address's home cube with inter-cube hop
  // costs applied on both directions of the path. `span` is the flight
  // recorder handle of the enclosing sampled request (invalid = unsampled).
  Completion Read(Addr addr, std::uint32_t size, Tick when,
                  trace::SpanRef span = trace::SpanRef());
  Completion Write(Addr addr, std::uint32_t size, Tick when,
                   trace::SpanRef span = trace::SpanRef());
  Completion Atomic(Addr addr, AtomicOp op, const Value16& operand,
                    bool want_return, Tick when,
                    trace::SpanRef span = trace::SpanRef());

  // Functional mode fans out to every cube; functional reads/writes route
  // to the home cube's backing store under the carved local address.
  void set_functional(bool on);
  bool functional() const { return cubes_[0]->functional(); }
  Value16 FunctionalRead(Addr addr) const;
  void FunctionalWrite(Addr addr, const Value16& v);

  // Shard mapping (exposed for tests and benches).
  const CubeMap& map() const { return map_; }
  std::uint32_t CubeOf(Addr addr) const { return map_.CubeOf(addr); }

  // Extra pass-through hops between the host and `cube` (0 for the cube
  // the host links reach directly).
  std::uint32_t HopsTo(std::uint32_t cube) const;

  std::uint32_t num_cubes() const { return static_cast<std::uint32_t>(cubes_.size()); }
  HmcCube& cube(std::uint32_t i) { return *cubes_[i]; }
  const HmcCube& cube(std::uint32_t i) const { return *cubes_[i]; }
  const HmcParams& params() const { return params_; }

  // Total addressable capacity across the network (monotone in num_cubes).
  std::uint64_t TotalCapacityBytes() const {
    return params_.capacity_bytes * num_cubes();
  }

  // Energy-model aggregates summed over every cube plus the hop links.
  Tick TotalIntFuBusy() const;
  Tick TotalFpFuBusy() const;
  Tick TotalLinkBusy() const;

  // Telemetry gauges (DESIGN.md §17): instantaneous vault-bank backlog
  // across the network, and the full-duplex link population (every cube's
  // host links plus the inter-cube hop links) that normalizes the link-
  // occupancy gauge.
  std::uint32_t BusyBanksAt(Tick now) const;
  Tick MaxBankReady() const;
  std::uint32_t TotalLinkCount() const;

 private:
  // Applies the request-direction hop path toward `cube`: per-hop TX-lane
  // serialization plus SerDes + pass-through crossbar latency. Returns the
  // arrival tick at the home cube's own link interface.
  Tick HopsOut(std::uint32_t cube, std::uint32_t flits, Tick when,
               trace::SpanRef span);

  // Response-direction path back to the host (RX lanes).
  Tick HopsBack(std::uint32_t cube, std::uint32_t flits, Tick when,
                trace::SpanRef span);

  // Hop-link index of pass-through hop `h` (0-based from the host) on the
  // path to `cube`.
  std::uint32_t HopEdge(std::uint32_t cube, std::uint32_t h) const;

  HmcParams params_;
  CubeMap map_;
  trace::SpanRecorder* spans_ = nullptr;  // may be null (tracing off)
  StatScope stats_;  // "hmc." network counters (multi-cube only)
  StatId sid_local_ops_;
  StatId sid_remote_ops_;
  StatId sid_hop_traversals_;
  StatId sid_hop_flits_;
  StatId sid_hop_ns_;
  std::vector<std::unique_ptr<HmcCube>> cubes_;
  std::vector<Link> hop_links_;  // one full-duplex link per inter-cube edge
};

}  // namespace graphpim::hmc

#endif  // GRAPHPIM_HMC_TOPOLOGY_H_
