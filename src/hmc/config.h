// Configuration of the HMC model (paper Table IV and HMC 2.0 spec values).
#ifndef GRAPHPIM_HMC_CONFIG_H_
#define GRAPHPIM_HMC_CONFIG_H_

#include <cstdint>
#include <string>

#include "common/types.h"
#include "fault/fault.h"

namespace graphpim::hmc {

// Link topology of a multi-cube network (HMC 2.0 chaining, Section III-B
// hybrid discussion): `kChain` daisy-chains the cubes off the host's links
// (cube i is i pass-through hops away), `kStar` hangs every remote cube one
// hop behind cube 0 acting as the hub.
enum class CubeTopology { kChain = 0, kStar = 1 };

const char* ToString(CubeTopology t);

// Parses "chain" / "star"; throws SimError on anything else.
CubeTopology ParseCubeTopology(const std::string& name);

struct HmcParams {
  // Geometry: 8GB cube, 32 vaults, 512 DRAM banks total (16 per vault).
  std::uint64_t capacity_bytes = 8 * kGiB;
  std::uint32_t num_vaults = 32;
  std::uint32_t banks_per_vault = 16;
  std::uint32_t row_bytes = 256;  // open-row (page) granularity per bank

  // DRAM timing (Table IV, from [31]).
  Tick t_cl = NsToTicks(13.75);
  Tick t_rcd = NsToTicks(13.75);
  Tick t_rp = NsToTicks(13.75);
  Tick t_ras = NsToTicks(27.5);
  Tick t_burst = NsToTicks(2.0);  // 64B transfer from the bank through TSVs
  Tick t_wr = NsToTicks(7.5);     // write recovery before precharge

  // Vault controller processing overhead per request.
  Tick ctrl_overhead = NsToTicks(1.0);

  // Row-buffer management: open-page keeps the row active after an access
  // (default; rewards locality), closed-page auto-precharges (uniform
  // latency, no conflict penalty).
  bool closed_page = false;

  // Periodic refresh: every t_refi, a bank is unavailable for t_rfc.
  // 0 disables refresh.
  Tick t_refi = NsToTicks(7800.0);
  Tick t_rfc = NsToTicks(160.0);

  // Links: 4 links per package, 120 GB/s per link (Table IV), full duplex.
  std::uint32_t num_links = 4;
  double link_gbps = 120.0;
  double link_bw_scale = 1.0;      // Fig 13 sweep knob
  Tick link_latency = NsToTicks(3.2);  // SerDes + propagation, each way
  Tick xbar_latency = NsToTicks(1.0);  // logic-layer crossbar hop

  // PIM functional units (Section IV-B1: default 16 integer FUs and one
  // low-power floating-point FU per vault).
  std::uint32_t fus_per_vault = 16;
  std::uint32_t fp_fus_per_vault = 1;
  Tick fu_int_latency = NsToTicks(1.0);
  Tick fu_fp_latency = NsToTicks(4.0);

  // Section III-C extension: allow FP add/sub atomics.
  bool enable_fp_atomics = true;

  // Multi-cube network (src/hmc/topology.h). One HmcParams describes every
  // cube of the package network; `num_cubes == 1` degenerates to the
  // single-cube model of the paper, bit-identical to the pre-network code.
  // PMR pages interleave across cubes at `cube_page_bytes` granularity
  // (must match graph::AddressSpace::kPmrPageBytes for the sharding the
  // framework's pmr_malloc carving assumes); remote cubes pay pass-through
  // SerDes + crossbar hops with per-hop link bandwidth accounting.
  std::uint32_t num_cubes = 1;
  CubeTopology cube_topology = CubeTopology::kChain;
  std::uint64_t cube_page_bytes = 4096;

  // Fault injection (DESIGN.md §9): link CRC errors recovered by the
  // retry path, vault busy-stalls, poisoned atomic responses. All knobs
  // default to zero — an ideal cube, bit-identical to the fault-free model.
  fault::FaultParams fault;

  // Derived helpers -------------------------------------------------------

  // Time to serialize one FLIT on a link (one direction).
  Tick FlitTime() const {
    double bytes_per_ns = link_gbps * link_bw_scale;  // GB/s == bytes/ns
    return static_cast<Tick>(16.0 / bytes_per_ns * kTicksPerNs + 0.5);
  }
};

}  // namespace graphpim::hmc

#endif  // GRAPHPIM_HMC_CONFIG_H_
