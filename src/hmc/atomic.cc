#include "hmc/atomic.h"

#include <bit>
#include <cstring>

#include "common/log.h"

namespace graphpim::hmc {

namespace {

using u64 = std::uint64_t;
using i64 = std::int64_t;
using u128 = unsigned __int128;
using i128 = __int128;

u128 ToU128(const Value16& v) {
  return (static_cast<u128>(v.hi) << 64) | v.lo;
}

Value16 FromU128(u128 v) {
  return Value16{static_cast<u64>(v), static_cast<u64>(v >> 64)};
}

constexpr AtomicOpInfo kOpTable[] = {
    // name            category                        bytes ret   ext
    {"2ADD8",          AtomicCategory::kArithmetic,    16, false, false},
    {"ADD16",          AtomicCategory::kArithmetic,    16, false, false},
    {"2ADDS8R",        AtomicCategory::kArithmetic,    16, true,  false},
    {"ADDS16R",        AtomicCategory::kArithmetic,    16, true,  false},
    {"SWAP16",         AtomicCategory::kBitwise,       16, true,  false},
    {"P_SWAP16",       AtomicCategory::kBitwise,       16, false, false},
    {"BWR8",           AtomicCategory::kBitwise,       8,  false, false},
    {"BWR8R",          AtomicCategory::kBitwise,       8,  true,  false},
    {"AND16",          AtomicCategory::kBoolean,       16, false, false},
    {"NAND16",         AtomicCategory::kBoolean,       16, false, false},
    {"OR16",           AtomicCategory::kBoolean,       16, false, false},
    {"NOR16",          AtomicCategory::kBoolean,       16, false, false},
    {"XOR16",          AtomicCategory::kBoolean,       16, false, false},
    {"CASEQ8",         AtomicCategory::kComparison,    8,  true,  false},
    {"CASZERO16",      AtomicCategory::kComparison,    16, true,  false},
    {"CASGT16",        AtomicCategory::kComparison,    16, true,  false},
    {"CASLT16",        AtomicCategory::kComparison,    16, true,  false},
    {"EQ16",           AtomicCategory::kComparison,    16, false, false},
    {"FPADD32",        AtomicCategory::kFloatingPoint, 8,  true,  true},
    {"FPADD64",        AtomicCategory::kFloatingPoint, 8,  true,  true},
    {"FPSUB64",        AtomicCategory::kFloatingPoint, 8,  true,  true},
};

static_assert(sizeof(kOpTable) / sizeof(kOpTable[0]) ==
                  static_cast<std::size_t>(AtomicOp::kNumOps),
              "op table out of sync with AtomicOp enum");

}  // namespace

const AtomicOpInfo& GetOpInfo(AtomicOp op) {
  auto idx = static_cast<std::size_t>(op);
  GP_CHECK(idx < static_cast<std::size_t>(AtomicOp::kNumOps), "bad AtomicOp");
  return kOpTable[idx];
}

bool IsFpOp(AtomicOp op) {
  return GetOpInfo(op).category == AtomicCategory::kFloatingPoint;
}

std::string ToString(AtomicOp op) { return GetOpInfo(op).name; }

AtomicOutcome ExecuteAtomic(AtomicOp op, const Value16& mem, const Value16& operand) {
  AtomicOutcome out;
  out.returned = mem;
  out.new_value = mem;
  switch (op) {
    case AtomicOp::kDualAdd8:
    case AtomicOp::kDualAdd8Ret:
      out.new_value.lo = mem.lo + operand.lo;
      out.new_value.hi = mem.hi + operand.hi;
      out.wrote = true;
      out.flag = true;
      break;
    case AtomicOp::kAdd16:
    case AtomicOp::kAdd16Ret:
      out.new_value = FromU128(ToU128(mem) + ToU128(operand));
      out.wrote = true;
      out.flag = true;
      break;
    case AtomicOp::kSwap16:
    case AtomicOp::kSwap16NoRet:
      out.new_value = operand;
      out.wrote = true;
      out.flag = true;
      break;
    case AtomicOp::kBitWrite8:
    case AtomicOp::kBitWrite8Ret: {
      // operand.lo carries the write data, operand.hi the bit mask.
      const u64 mask = operand.hi;
      out.new_value.lo = (mem.lo & ~mask) | (operand.lo & mask);
      out.wrote = true;
      out.flag = true;
      break;
    }
    case AtomicOp::kAnd16:
      out.new_value = {mem.lo & operand.lo, mem.hi & operand.hi};
      out.wrote = true;
      out.flag = true;
      break;
    case AtomicOp::kNand16:
      out.new_value = {~(mem.lo & operand.lo), ~(mem.hi & operand.hi)};
      out.wrote = true;
      out.flag = true;
      break;
    case AtomicOp::kOr16:
      out.new_value = {mem.lo | operand.lo, mem.hi | operand.hi};
      out.wrote = true;
      out.flag = true;
      break;
    case AtomicOp::kNor16:
      out.new_value = {~(mem.lo | operand.lo), ~(mem.hi | operand.hi)};
      out.wrote = true;
      out.flag = true;
      break;
    case AtomicOp::kXor16:
      out.new_value = {mem.lo ^ operand.lo, mem.hi ^ operand.hi};
      out.wrote = true;
      out.flag = true;
      break;
    case AtomicOp::kCasEqual8:
      // operand.hi = compare value, operand.lo = new value.
      if (mem.lo == operand.hi) {
        out.new_value.lo = operand.lo;
        out.wrote = true;
        out.flag = true;
      }
      break;
    case AtomicOp::kCasZero16:
      if (mem.lo == 0 && mem.hi == 0) {
        out.new_value = operand;
        out.wrote = true;
        out.flag = true;
      }
      break;
    case AtomicOp::kCasGreater16:
      if (static_cast<i128>(ToU128(operand)) > static_cast<i128>(ToU128(mem))) {
        out.new_value = operand;
        out.wrote = true;
        out.flag = true;
      }
      break;
    case AtomicOp::kCasLess16:
      if (static_cast<i128>(ToU128(operand)) < static_cast<i128>(ToU128(mem))) {
        out.new_value = operand;
        out.wrote = true;
        out.flag = true;
      }
      break;
    case AtomicOp::kCompareEqual16:
      out.flag = (mem == operand);
      break;
    case AtomicOp::kFpAdd32: {
      float m = std::bit_cast<float>(static_cast<std::uint32_t>(mem.lo));
      float o = std::bit_cast<float>(static_cast<std::uint32_t>(operand.lo));
      out.new_value.lo = std::bit_cast<std::uint32_t>(m + o);
      out.wrote = true;
      out.flag = true;
      break;
    }
    case AtomicOp::kFpAdd64: {
      double m = std::bit_cast<double>(mem.lo);
      double o = std::bit_cast<double>(operand.lo);
      out.new_value.lo = std::bit_cast<std::uint64_t>(m + o);
      out.wrote = true;
      out.flag = true;
      break;
    }
    case AtomicOp::kFpSub64: {
      double m = std::bit_cast<double>(mem.lo);
      double o = std::bit_cast<double>(operand.lo);
      out.new_value.lo = std::bit_cast<std::uint64_t>(m - o);
      out.wrote = true;
      out.flag = true;
      break;
    }
    case AtomicOp::kNumOps:
      GP_PANIC("kNumOps is not an operation");
  }
  return out;
}

}  // namespace graphpim::hmc
