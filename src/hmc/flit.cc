#include "hmc/flit.h"

namespace graphpim::hmc {

namespace {

std::uint32_t DataFlits(std::uint32_t size) {
  return (size + kFlitBytes - 1) / kFlitBytes;
}

}  // namespace

std::uint32_t ReadRequestFlits(std::uint32_t /*size*/) {
  return 1;  // header+tail only
}

std::uint32_t ReadResponseFlits(std::uint32_t size) {
  return 1 + DataFlits(size);  // 64B -> 5 FLITs (Table V)
}

std::uint32_t WriteRequestFlits(std::uint32_t size) {
  return 1 + DataFlits(size);  // 64B -> 5 FLITs (Table V)
}

std::uint32_t WriteResponseFlits(std::uint32_t /*size*/) {
  return 1;
}

std::uint32_t AtomicRequestFlits(AtomicOp /*op*/) {
  return 2;  // header/tail + 16-byte immediate (Table V)
}

std::uint32_t AtomicResponseFlits(AtomicOp op, bool want_return) {
  const AtomicOpInfo& info = GetOpInfo(op);
  if (want_return && info.returns_data) return 2;
  return 1;
}

}  // namespace graphpim::hmc
