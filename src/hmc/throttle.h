// Epoch-capacity bandwidth throttle.
//
// A strict ready-pointer reservation (`start = max(when, ready)`) misorders
// under the loosely-synchronized quantum execution model: a reservation
// carrying a far-future timestamp would block earlier-timestamped requests
// from other cores even though the resource is idle then. This throttle
// instead accounts capacity per fixed time epoch: each epoch admits
// `epoch_ticks / per_op_ticks` operations, and a reservation spills into
// later epochs only when its own epoch is full. Ordering skew within an
// epoch is ignored — which is exactly the tolerance we need.
#ifndef GRAPHPIM_HMC_THROTTLE_H_
#define GRAPHPIM_HMC_THROTTLE_H_

#include <cstdint>
#include <vector>

#include "common/log.h"
#include "common/types.h"

namespace graphpim::hmc {

class EpochThrottle {
 public:
  // `per_unit_ticks` is the serialization time of one unit (e.g., one FLIT
  // or one controller slot); `epoch_ticks` the accounting granularity.
  EpochThrottle(Tick epoch_ticks, Tick per_unit_ticks, std::size_t window = 64)
      : epoch_ticks_(epoch_ticks), per_unit_ticks_(per_unit_ticks), used_(window, 0) {
    GP_CHECK(epoch_ticks > 0 && per_unit_ticks > 0 && window > 0);
    capacity_ = static_cast<std::uint32_t>(epoch_ticks / per_unit_ticks);
    if (capacity_ == 0) capacity_ = 1;
    // Window slot index is hot-path; default windows are powers of two.
    if ((window & (window - 1)) == 0) slot_mask_ = window - 1;
  }

  // Reserves `units` starting no earlier than `when`; returns the tick at
  // which the last unit has been serviced.
  Tick Reserve(std::uint32_t units, Tick when) {
    busy_ += static_cast<Tick>(units) * per_unit_ticks_;
    std::uint64_t e = EpochOf(when);
    if (e < base_epoch_) e = base_epoch_;  // the past is full history
    AdvanceTo(e);
    std::uint32_t remaining = units;
    std::uint32_t filled_before = 0;
    while (true) {
      std::uint32_t& u = used_[Slot(e)];
      std::uint32_t avail = capacity_ > u ? capacity_ - u : 0;
      std::uint32_t take = remaining < avail ? remaining : avail;
      filled_before = u;
      u += take;
      remaining -= take;
      if (remaining == 0 && take > 0) break;
      if (remaining == 0) break;
      ++e;
      AdvanceTo(e);
    }
    Tick pos = e * epoch_ticks_ +
               static_cast<Tick>(filled_before) * per_unit_ticks_ +
               static_cast<Tick>(units) * per_unit_ticks_;
    return pos > when ? pos : when + static_cast<Tick>(units) * per_unit_ticks_;
  }

  Tick busy_ticks() const { return busy_; }

 private:
  std::size_t Slot(std::uint64_t e) const {
    return static_cast<std::size_t>(slot_mask_ != 0 ? (e & slot_mask_)
                                                    : e % used_.size());
  }

  // floor(when / epoch_ticks_) with a cached last-epoch hint: reservation
  // times advance a few ticks per call, so the hint almost always answers
  // without the 64-bit division.
  std::uint64_t EpochOf(Tick when) {
    Tick d = when - hint_start_;  // wraps huge when `when` precedes the hint
    if (d < epoch_ticks_) return hint_epoch_;
    if (d < 32 * epoch_ticks_) {
      do {
        hint_start_ += epoch_ticks_;
        ++hint_epoch_;
        d -= epoch_ticks_;
      } while (d >= epoch_ticks_);
      return hint_epoch_;
    }
    hint_epoch_ = when / epoch_ticks_;
    hint_start_ = hint_epoch_ * epoch_ticks_;
    return hint_epoch_;
  }

  void AdvanceTo(std::uint64_t e) {
    // Slide the window so epoch `e` is inside it, clearing recycled slots.
    if (e < base_epoch_ + used_.size()) return;
    std::uint64_t new_base = e + 1 - used_.size();
    for (std::uint64_t i = base_epoch_; i < new_base && i < base_epoch_ + used_.size(); ++i) {
      used_[Slot(i)] = 0;
    }
    if (new_base > base_epoch_ + used_.size()) {
      for (auto& u : used_) u = 0;
    }
    base_epoch_ = new_base;
  }

  Tick epoch_ticks_;
  Tick per_unit_ticks_;
  std::uint32_t capacity_;
  std::vector<std::uint32_t> used_;
  std::uint64_t slot_mask_ = 0;  // window-1 when the window is a power of two
  std::uint64_t base_epoch_ = 0;
  std::uint64_t hint_epoch_ = 0;  // EpochOf cache: floor(hint_start_/epoch)
  Tick hint_start_ = 0;           // == hint_epoch_ * epoch_ticks_
  Tick busy_ = 0;
};

}  // namespace graphpim::hmc

#endif  // GRAPHPIM_HMC_THROTTLE_H_
