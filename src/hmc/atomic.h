// HMC 2.0 atomic operations (paper Table I) and their functional semantics.
//
// HMC 2.0 defines 18 atomic request commands across four categories:
// arithmetic, bitwise, boolean, and comparison. Every operation is a
// read-modify-write on a single 16-byte (or 8-byte) memory operand with an
// immediate carried in the request packet. Posted (no-response) behavior is
// expressed by the request's want_return flag rather than separate opcodes.
//
// Section III-C of the paper proposes extending the set with floating-point
// add/sub; those extension ops are included here behind an "extension"
// marker so the evaluation can ablate them (bench_ablation_fp_atomics).
#ifndef GRAPHPIM_HMC_ATOMIC_H_
#define GRAPHPIM_HMC_ATOMIC_H_

#include <cstdint>
#include <string>

namespace graphpim::hmc {

enum class AtomicOp : std::uint8_t {
  // Arithmetic (8/16 byte single/dual signed add, with or without return).
  kDualAdd8 = 0,  // two independent 8-byte signed adds, no return
  kAdd16,         // single 16-byte signed add, no return
  kDualAdd8Ret,   // dual 8-byte signed add, returns original data
  kAdd16Ret,      // 16-byte signed add, returns original data

  // Bitwise (swap / bit-write, with or without return).
  kSwap16,        // write operand, return original
  kSwap16NoRet,   // write operand, no data return
  kBitWrite8,     // (mem & ~mask) | (data & mask), no return
  kBitWrite8Ret,  // bit write, returns original data

  // Boolean (16 byte, no return).
  kAnd16,
  kNand16,
  kOr16,
  kNor16,
  kXor16,

  // Comparison (with return / response flag).
  kCasEqual8,        // if (mem64 == cmp) mem64 = new; returns original
  kCasZero16,        // if (mem128 == 0) mem128 = operand; returns original
  kCasGreater16,     // if (operand > mem128, signed) mem128 = operand
  kCasLess16,        // if (operand < mem128, signed) mem128 = operand
  kCompareEqual16,   // response flag = (mem128 == operand); no write

  // ---- Extension ops (Section III-C), not part of the HMC 2.0 base 18 ----
  kFpAdd32,  // 32-bit IEEE-754 add on the low lane
  kFpAdd64,  // 64-bit IEEE-754 add on the low lane
  kFpSub64,  // 64-bit IEEE-754 subtract on the low lane

  kNumOps,
};

inline constexpr int kNumBaseOps = 18;  // HMC 2.0 specification count

enum class AtomicCategory : std::uint8_t {
  kArithmetic,
  kBitwise,
  kBoolean,
  kComparison,
  kFloatingPoint,  // extension
};

// A 16-byte memory operand viewed as two little-endian 64-bit lanes.
struct Value16 {
  std::uint64_t lo = 0;
  std::uint64_t hi = 0;

  friend bool operator==(const Value16& a, const Value16& b) {
    return a.lo == b.lo && a.hi == b.hi;
  }
};

// Outcome of functionally executing an atomic.
struct AtomicOutcome {
  Value16 new_value;  // value to write back (== old value if !wrote)
  Value16 returned;   // original data returned in the response (if any)
  bool flag = false;  // HMC response "atomic flag" (operation succeeded)
  bool wrote = false; // whether memory was modified
};

// Metadata describing an op.
struct AtomicOpInfo {
  const char* name;           // spec-style mnemonic
  AtomicCategory category;
  std::uint8_t operand_bytes; // data size the op touches (8 or 16)
  bool returns_data;          // response carries original data
  bool extension;             // Section III-C extension op
};

// Returns static metadata for `op`.
const AtomicOpInfo& GetOpInfo(AtomicOp op);

// Functionally executes `op` against memory value `mem` with packet
// immediate `operand`. Pure function; timing is handled by the vault model.
AtomicOutcome ExecuteAtomic(AtomicOp op, const Value16& mem, const Value16& operand);

// True if `op` requires a floating-point functional unit.
bool IsFpOp(AtomicOp op);

std::string ToString(AtomicOp op);

}  // namespace graphpim::hmc

#endif  // GRAPHPIM_HMC_ATOMIC_H_
