// The Hybrid Memory Cube: links + crossbar + vaults + PIM atomics.
//
// This is the memory device of every machine configuration: the baseline
// uses it as plain main memory (64-byte line reads/writes), GraphPIM
// additionally sends it HMC atomic commands and exact-size uncacheable
// accesses. Addresses interleave across vaults at 256-byte granularity.
#ifndef GRAPHPIM_HMC_CUBE_H_
#define GRAPHPIM_HMC_CUBE_H_

#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "common/span.h"
#include "common/stats.h"
#include "common/types.h"
#include "hmc/atomic.h"
#include "hmc/config.h"
#include "hmc/link.h"
#include "hmc/vault.h"

namespace graphpim::hmc {

// Timing (and optionally functional) outcome of one HMC transaction.
struct Completion {
  Tick response_at_host = 0;  // when the response packet reaches the host
  Tick internal_done = 0;     // when the cube's internal resources are free
  std::uint32_t req_flits = 0;
  std::uint32_t resp_flits = 0;
  bool row_hit = false;
  // Fault injection only: the response is unusable — link retries were
  // exhausted or the response was poisoned internally. Timing fields are
  // still valid (the poisoned packet did arrive); the host side decides
  // whether to re-issue.
  bool poisoned = false;
  AtomicOutcome outcome;      // valid only in functional mode, for atomics
};

class HmcCube {
 public:
  // `spans` (may be null) is the transaction flight recorder; `cube_id`
  // names this cube's track in span stamps and trace export.
  explicit HmcCube(const HmcParams& params, StatRegistry* stats = nullptr,
                   trace::SpanRecorder* spans = nullptr,
                   std::uint32_t cube_id = 0);

  HmcCube(const HmcCube&) = delete;
  HmcCube& operator=(const HmcCube&) = delete;

  // A read of `size` bytes arriving at the host-side link interface at
  // `when`. Size may be a full cache line (64) or an exact uncacheable size.
  // `span` is the flight-recorder handle of the enclosing sampled request.
  Completion Read(Addr addr, std::uint32_t size, Tick when,
                  trace::SpanRef span = trace::SpanRef());

  // A write of `size` bytes.
  Completion Write(Addr addr, std::uint32_t size, Tick when,
                   trace::SpanRef span = trace::SpanRef());

  // An HMC atomic command. `operand` is the 16-byte packet immediate;
  // `want_return` selects the response form (posted ops pass false).
  Completion Atomic(Addr addr, AtomicOp op, const Value16& operand,
                    bool want_return, Tick when,
                    trace::SpanRef span = trace::SpanRef());

  // Functional mode: when enabled, Atomic() reads/modifies/writes the
  // sparse backing store so callers can observe data values. Replay-only
  // simulations leave it off.
  void set_functional(bool on) { functional_ = on; }
  bool functional() const { return functional_; }

  // Direct functional access to the backing store (16-byte aligned granule).
  Value16 FunctionalRead(Addr addr) const;
  void FunctionalWrite(Addr addr, const Value16& v);

  // Address mapping helpers (exposed for tests and benches).
  std::uint32_t VaultOf(Addr addr) const;
  Addr VaultLocalAddr(Addr addr) const;

  const HmcParams& params() const { return params_; }

  // Aggregate FU busy time across vaults (energy model input).
  Tick TotalIntFuBusy() const;
  Tick TotalFpFuBusy() const;
  Tick TotalLinkBusy() const;

  // Telemetry gauges (DESIGN.md §17), aggregated across this cube's vaults.
  std::uint32_t BusyBanksAt(Tick now) const;
  Tick MaxBankReady() const;

 private:
  // Picks the link with the earliest-available TX lane. With fault
  // injection active the retry path loads both lanes, so selection also
  // weighs the RX backlog; fault-free selection is TX-only (unchanged from
  // the ideal model, preserving bit-identical results at zero knobs).
  std::uint32_t PickLink(Tick when) const;

  // Common front half: serialize request on a link, cross to the vault.
  // Returns arrival tick at the vault and sets *link_idx.
  Tick RequestToVault(std::uint32_t flits, Tick when, std::uint32_t* link_idx,
                      bool* poisoned);

  // Common back half: serialize the response back to the host.
  Tick ResponseToHost(std::uint32_t flits, Tick ready, std::uint32_t link_idx,
                      bool* poisoned);

  // Serializes one packet on a lane with the HMC 2.0 retry protocol: a
  // packet whose CRC fails at RX is replayed from the retry buffer after
  // `fault.retry_latency`; after `fault.max_retries` failed replays the
  // transaction escalates to a poisoned response. Returns the tick the
  // last good (or given-up) serialization finished.
  Tick TransferWithRetry(std::uint32_t link_idx, bool tx_lane,
                         std::uint32_t flits, Tick when, bool* poisoned);

  // Applies an injected vault busy-stall to an arrival tick.
  Tick MaybeStallVault(Tick at_vault);

  // Span stage stamp; single never-taken branch when tracing is off.
  void Stamp(trace::SpanRef span, trace::SpanStage stage, Tick enter,
             Tick exit) {
    if (spans_ != nullptr) spans_->Stage(span, stage, enter, exit, cube_id_);
  }

  HmcParams params_;
  trace::SpanRecorder* spans_;  // may be null (tracing off)
  std::uint32_t cube_id_;
  StatScope stats_;        // "hmc." counters
  StatScope fault_stats_;  // "fault." counters
  StatId sid_reads_;
  StatId sid_writes_;
  StatId sid_atomics_;
  StatId sid_req_flits_;
  StatId sid_resp_flits_;
  StatId sid_dbg_req_path_ns_;
  StatId sid_dbg_vault_ns_;
  StatId sid_dbg_resp_path_ns_;
  StatId sid_dbg_a_req_ns_;
  StatId sid_dbg_a_vault_ns_;
  StatId sid_dbg_a_done_ns_;
  StatId sid_link_crc_errors_;
  StatId sid_retry_exhausted_;
  StatId sid_link_retries_;
  StatId sid_retry_flits_;
  StatId sid_retry_ns_;
  StatId sid_vault_stalls_;
  StatId sid_vault_stall_ns_;
  StatId sid_poisoned_ops_;
  StatId sid_poisoned_atomics_;
  std::vector<Link> links_;
  std::vector<std::unique_ptr<Vault>> vaults_;
  fault::FaultPlan fault_plan_;
  bool functional_ = false;
  std::unordered_map<Addr, Value16> store_;
};

}  // namespace graphpim::hmc

#endif  // GRAPHPIM_HMC_CUBE_H_
