#include "hmc/cube.h"

#include <bit>

#include <algorithm>

#include "common/log.h"
#include "hmc/flit.h"

namespace graphpim::hmc {

namespace {

// Vault interleaving granularity: HMC low-order address interleave at
// cache-block size maximizes spread of both streams and scattered accesses
// across the 32 vaults.
constexpr std::uint64_t kVaultInterleave = 64;

// Bits serialized per FLIT (16 bytes); the CRC decision covers the whole
// packet's transferred bits.
constexpr std::uint64_t kBitsPerFlit = 128;

}  // namespace

HmcCube::HmcCube(const HmcParams& params, StatRegistry* stats,
                 trace::SpanRecorder* spans, std::uint32_t cube_id)
    : params_(params),
      spans_(spans),
      cube_id_(cube_id),
      stats_(stats, "hmc"),
      fault_stats_(stats, "fault"),
      sid_reads_(stats_.Counter("reads")),
      sid_writes_(stats_.Counter("writes")),
      sid_atomics_(stats_.Counter("atomics")),
      sid_req_flits_(stats_.Counter("req_flits")),
      sid_resp_flits_(stats_.Counter("resp_flits")),
      sid_dbg_req_path_ns_(stats_.Counter("dbg_req_path_ns")),
      sid_dbg_vault_ns_(stats_.Counter("dbg_vault_ns")),
      sid_dbg_resp_path_ns_(stats_.Counter("dbg_resp_path_ns")),
      sid_dbg_a_req_ns_(stats_.Counter("dbg_a_req_ns")),
      sid_dbg_a_vault_ns_(stats_.Counter("dbg_a_vault_ns")),
      sid_dbg_a_done_ns_(stats_.Counter("dbg_a_done_ns")),
      sid_link_crc_errors_(fault_stats_.Counter("link_crc_errors")),
      sid_retry_exhausted_(fault_stats_.Counter("retry_exhausted")),
      sid_link_retries_(fault_stats_.Counter("link_retries")),
      sid_retry_flits_(fault_stats_.Counter("retry_flits")),
      sid_retry_ns_(fault_stats_.Counter("retry_ns")),
      sid_vault_stalls_(fault_stats_.Counter("vault_stalls")),
      sid_vault_stall_ns_(fault_stats_.Counter("vault_stall_ns")),
      sid_poisoned_ops_(fault_stats_.Counter("poisoned_ops")),
      sid_poisoned_atomics_(fault_stats_.Counter("poisoned_atomics")),
      fault_plan_(params.fault) {
  GP_CHECK(params_.num_links > 0 && params_.num_vaults > 0);
  links_.reserve(params_.num_links);
  for (std::uint32_t i = 0; i < params_.num_links; ++i) {
    links_.emplace_back(params_.FlitTime());
  }
  vaults_.reserve(params_.num_vaults);
  for (std::uint32_t i = 0; i < params_.num_vaults; ++i) {
    // Vault track id: cube in the high bits, vault index below — unique
    // across the whole network for trace-export rows.
    vaults_.push_back(std::make_unique<Vault>(params_, stats_.registry(),
                                              spans_, (cube_id_ << 8) | i));
  }
}

std::uint32_t HmcCube::VaultOf(Addr addr) const {
  const Addr block = addr / kVaultInterleave;
  if (std::has_single_bit(params_.num_vaults)) {
    return static_cast<std::uint32_t>(block & (params_.num_vaults - 1));
  }
  return static_cast<std::uint32_t>(block % params_.num_vaults);
}

Addr HmcCube::VaultLocalAddr(Addr addr) const {
  // Strip the vault-interleave bits so the vault's bank/row decoding uses
  // independent address bits (512 distinct banks across the cube).
  Addr block = addr / kVaultInterleave;
  if (std::has_single_bit(params_.num_vaults)) {
    block >>= std::countr_zero(params_.num_vaults);
  } else {
    block /= params_.num_vaults;
  }
  return block * kVaultInterleave + (addr % kVaultInterleave);
}

std::uint32_t HmcCube::PickLink(Tick /*when*/) const {
  const bool weigh_rx = fault_plan_.enabled();
  auto backlog = [&](const Link& l) {
    return weigh_rx ? l.tx_ready() + l.rx_ready() : l.tx_ready();
  };
  std::uint32_t best = 0;
  for (std::uint32_t i = 1; i < links_.size(); ++i) {
    if (backlog(links_[i]) < backlog(links_[best])) best = i;
  }
  return best;
}

Tick HmcCube::TransferWithRetry(std::uint32_t link_idx, bool tx_lane,
                                std::uint32_t flits, Tick when, bool* poisoned) {
  Link& link = links_[link_idx];
  Tick done = tx_lane ? link.ReserveTx(flits, when) : link.ReserveRx(flits, when);
  if (params_.fault.link_ber <= 0.0) return done;

  const Tick clean_done = done;
  const std::uint64_t bits = static_cast<std::uint64_t>(flits) * kBitsPerFlit;
  std::uint32_t attempt = 0;
  while (fault_plan_.CorruptPacket(bits)) {
    fault_stats_.Inc(sid_link_crc_errors_);
    if (attempt >= params_.fault.max_retries) {
      // Retry budget exhausted: give up and deliver a poisoned response.
      *poisoned = true;
      fault_stats_.Inc(sid_retry_exhausted_);
      break;
    }
    ++attempt;
    // Retry-buffer replay: the RX side signals the error back (folded into
    // retry_latency), then the packet reserializes on the same lane.
    Tick replay_at = done + params_.fault.retry_latency;
    done = tx_lane ? link.ReserveTx(flits, replay_at)
                   : link.ReserveRx(flits, replay_at);
    fault_stats_.Inc(sid_link_retries_);
    fault_stats_.Add(sid_retry_flits_, flits);
  }
  if (done > clean_done) {
    fault_stats_.Add(sid_retry_ns_, TicksToNs(done - clean_done));
  }
  return done;
}

Tick HmcCube::MaybeStallVault(Tick at_vault) {
  if (params_.fault.vault_stall_ppm == 0 || !fault_plan_.VaultStall()) {
    return at_vault;
  }
  fault_stats_.Inc(sid_vault_stalls_);
  fault_stats_.Add(sid_vault_stall_ns_, TicksToNs(params_.fault.vault_stall_ticks));
  return at_vault + params_.fault.vault_stall_ticks;
}

Tick HmcCube::RequestToVault(std::uint32_t flits, Tick when, std::uint32_t* link_idx,
                             bool* poisoned) {
  *link_idx = PickLink(when);
  Tick serialized = TransferWithRetry(*link_idx, /*tx_lane=*/true, flits, when,
                                      poisoned);
  Tick at_vault = serialized + params_.link_latency + params_.xbar_latency;
  return MaybeStallVault(at_vault);
}

Tick HmcCube::ResponseToHost(std::uint32_t flits, Tick ready, std::uint32_t link_idx,
                             bool* poisoned) {
  Tick at_link = ready + params_.xbar_latency;
  Tick serialized = TransferWithRetry(link_idx, /*tx_lane=*/false, flits, at_link,
                                      poisoned);
  return serialized + params_.link_latency;
}

Completion HmcCube::Read(Addr addr, std::uint32_t size, Tick when,
                         trace::SpanRef span) {
  Completion c;
  c.req_flits = ReadRequestFlits(size);
  c.resp_flits = ReadResponseFlits(size);
  std::uint32_t link = 0;
  Tick at_vault = RequestToVault(c.req_flits, when, &link, &c.poisoned);
  Stamp(span, trace::SpanStage::kCubeLink, when, at_vault);
  Vault::AccessResult r =
      vaults_[VaultOf(addr)]->Read(VaultLocalAddr(addr), at_vault, span);
  c.row_hit = r.row_hit;
  c.internal_done = r.done;
  c.response_at_host = ResponseToHost(c.resp_flits, r.data_ready, link, &c.poisoned);
  Stamp(span, trace::SpanStage::kResponse, r.data_ready, c.response_at_host);
  if (c.poisoned) fault_stats_.Inc(sid_poisoned_ops_);
  stats_.Inc(sid_reads_);
  stats_.Add(sid_dbg_req_path_ns_, TicksToNs(at_vault - when));
  stats_.Add(sid_dbg_vault_ns_, TicksToNs(r.data_ready - at_vault));
  stats_.Add(sid_dbg_resp_path_ns_, TicksToNs(c.response_at_host - r.data_ready));
  stats_.Add(sid_req_flits_, c.req_flits);
  stats_.Add(sid_resp_flits_, c.resp_flits);
  return c;
}

Completion HmcCube::Write(Addr addr, std::uint32_t size, Tick when,
                          trace::SpanRef span) {
  Completion c;
  c.req_flits = WriteRequestFlits(size);
  c.resp_flits = WriteResponseFlits(size);
  std::uint32_t link = 0;
  Tick at_vault = RequestToVault(c.req_flits, when, &link, &c.poisoned);
  Stamp(span, trace::SpanStage::kCubeLink, when, at_vault);
  Vault::AccessResult r =
      vaults_[VaultOf(addr)]->Write(VaultLocalAddr(addr), at_vault, span);
  c.row_hit = r.row_hit;
  c.internal_done = r.done;
  c.response_at_host = ResponseToHost(c.resp_flits, r.data_ready, link, &c.poisoned);
  Stamp(span, trace::SpanStage::kResponse, r.data_ready, c.response_at_host);
  if (c.poisoned) fault_stats_.Inc(sid_poisoned_ops_);
  stats_.Inc(sid_writes_);
  stats_.Add(sid_req_flits_, c.req_flits);
  stats_.Add(sid_resp_flits_, c.resp_flits);
  return c;
}

Completion HmcCube::Atomic(Addr addr, AtomicOp op, const Value16& operand,
                           bool want_return, Tick when, trace::SpanRef span) {
  GP_CHECK(!IsFpOp(op) || params_.enable_fp_atomics,
           "FP atomic issued but the FP extension is disabled");
  Completion c;
  c.req_flits = AtomicRequestFlits(op);
  c.resp_flits = AtomicResponseFlits(op, want_return);
  std::uint32_t link = 0;
  Tick at_vault = RequestToVault(c.req_flits, when, &link, &c.poisoned);
  Stamp(span, trace::SpanStage::kCubeLink, when, at_vault);
  Vault::AccessResult r =
      vaults_[VaultOf(addr)]->Atomic(VaultLocalAddr(addr), op, at_vault, span);
  c.row_hit = r.row_hit;
  c.internal_done = r.done;
  c.response_at_host = ResponseToHost(c.resp_flits, r.data_ready, link, &c.poisoned);
  Stamp(span, trace::SpanStage::kResponse, r.data_ready, c.response_at_host);
  if (params_.fault.poison_ppm > 0 && fault_plan_.PoisonAtomic()) {
    // Internal ECC escalation: the atomic executed but its response value
    // is untrustworthy.
    c.poisoned = true;
    fault_stats_.Inc(sid_poisoned_atomics_);
  }
  if (c.poisoned) fault_stats_.Inc(sid_poisoned_ops_);

  if (functional_) {
    Addr granule = addr & ~static_cast<Addr>(15);
    Value16 mem = FunctionalRead(granule);
    c.outcome = ExecuteAtomic(op, mem, operand);
    if (c.outcome.wrote) FunctionalWrite(granule, c.outcome.new_value);
  }

  stats_.Inc(sid_atomics_);
  stats_.Add(sid_dbg_a_req_ns_, TicksToNs(at_vault - when));
  stats_.Add(sid_dbg_a_vault_ns_, TicksToNs(r.data_ready - at_vault));
  stats_.Add(sid_dbg_a_done_ns_, TicksToNs(r.done - at_vault));
  stats_.Add(sid_req_flits_, c.req_flits);
  stats_.Add(sid_resp_flits_, c.resp_flits);
  return c;
}

Value16 HmcCube::FunctionalRead(Addr addr) const {
  Addr granule = addr & ~static_cast<Addr>(15);
  auto it = store_.find(granule);
  return it == store_.end() ? Value16{} : it->second;
}

void HmcCube::FunctionalWrite(Addr addr, const Value16& v) {
  Addr granule = addr & ~static_cast<Addr>(15);
  store_[granule] = v;
}

Tick HmcCube::TotalIntFuBusy() const {
  Tick sum = 0;
  for (const auto& v : vaults_) sum += v->int_fu_busy();
  return sum;
}

Tick HmcCube::TotalFpFuBusy() const {
  Tick sum = 0;
  for (const auto& v : vaults_) sum += v->fp_fu_busy();
  return sum;
}

Tick HmcCube::TotalLinkBusy() const {
  Tick sum = 0;
  for (const auto& l : links_) sum += l.busy_ticks();
  return sum;
}

std::uint32_t HmcCube::BusyBanksAt(Tick now) const {
  std::uint32_t n = 0;
  for (const auto& v : vaults_) n += v->BusyBanksAt(now);
  return n;
}

Tick HmcCube::MaxBankReady() const {
  Tick m = 0;
  for (const auto& v : vaults_) m = std::max(m, v->MaxBankReady());
  return m;
}

}  // namespace graphpim::hmc
