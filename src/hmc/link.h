// SerDes link model: FLIT serialization with full-duplex lanes.
//
// An HMC package exposes 4 high-speed links (Table IV: 120 GB/s each).
// Each link is full duplex: request FLITs occupy the TX lane, response
// FLITs the RX lane. Bandwidth is accounted with an epoch-capacity throttle
// (see throttle.h) so the loosely-ordered timestamps of the quantum
// execution model cannot artificially serialize the lanes. Busy time is
// accumulated for the energy model.
#ifndef GRAPHPIM_HMC_LINK_H_
#define GRAPHPIM_HMC_LINK_H_

#include <cstdint>

#include "common/types.h"
#include "hmc/throttle.h"

namespace graphpim::hmc {

class Link {
 public:
  explicit Link(Tick flit_time)
      : flit_time_(flit_time),
        tx_(kEpoch, flit_time),
        rx_(kEpoch, flit_time) {}

  // Reserves the TX lane for `flits` FLITs no earlier than `earliest`.
  // Returns the tick at which the last FLIT has been transmitted.
  Tick ReserveTx(std::uint32_t flits, Tick earliest) {
    Tick done = tx_.Reserve(flits, earliest);
    tx_tail_ = done > tx_tail_ ? done : tx_tail_;
    return done;
  }

  // Same for the RX (response) lane.
  Tick ReserveRx(std::uint32_t flits, Tick earliest) {
    Tick done = rx_.Reserve(flits, earliest);
    rx_tail_ = done > rx_tail_ ? done : rx_tail_;
    return done;
  }

  // Approximate TX backlog indicator used for link selection.
  Tick tx_ready() const { return tx_tail_; }

  // Response-lane backlog. Mirrors tx_ready(): the retry model loads both
  // lanes with replayed packets, so selection that only watched TX would
  // pile responses onto a link whose RX lane is saturated with retries.
  Tick rx_ready() const { return rx_tail_; }

  Tick busy_ticks() const { return tx_.busy_ticks() + rx_.busy_ticks(); }

 private:
  static constexpr Tick kEpoch = 25 * kTicksPerNs;

  Tick flit_time_;
  EpochThrottle tx_;
  EpochThrottle rx_;
  Tick tx_tail_ = 0;
  Tick rx_tail_ = 0;
};

}  // namespace graphpim::hmc

#endif  // GRAPHPIM_HMC_LINK_H_
