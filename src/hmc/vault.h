// Vault model: a vault controller, its DRAM banks, and its PIM FU pool.
//
// Each of the cube's 32 vaults owns 16 DRAM banks (512 total, Table IV) with
// open-row timing, and a pool of PIM functional units that execute HMC
// atomics in the logic layer. Per the HMC 2.0 specification the bank is
// locked for the full duration of an atomic read-modify-write: no other
// request to that bank can be serviced until the RMW completes.
//
// Timing uses ready-time reservations (see DESIGN.md): an access at time t
// to a busy resource starts when the resource frees.
#ifndef GRAPHPIM_HMC_VAULT_H_
#define GRAPHPIM_HMC_VAULT_H_

#include <cstdint>
#include <vector>

#include "common/span.h"
#include "common/stats.h"
#include "common/types.h"
#include "hmc/atomic.h"
#include "hmc/config.h"
#include "hmc/throttle.h"

namespace graphpim::hmc {

class Vault {
 public:
  // `stats` may be null (no stat collection); it is not owned. Counter
  // names are interned once here; accesses update by StatId. `spans` (may
  // be null) is the transaction flight recorder; `track` names this
  // vault's row in span stamps ((cube_id << 8) | vault index).
  Vault(const HmcParams& params, StatRegistry* stats,
        trace::SpanRecorder* spans = nullptr, std::uint32_t track = 0);

  struct AccessResult {
    Tick data_ready = 0;  // when read data / atomic response is available
    Tick done = 0;        // when the bank is fully free again
    bool row_hit = false;
  };

  // A read of any size within one bank row. `span` is the flight-recorder
  // handle of the enclosing sampled request (invalid = unsampled).
  AccessResult Read(Addr addr, Tick arrival,
                    trace::SpanRef span = trace::SpanRef());

  // A write of any size within one bank row.
  AccessResult Write(Addr addr, Tick arrival,
                     trace::SpanRef span = trace::SpanRef());

  // An atomic RMW: bank read, FU execute, bank write with the bank locked
  // throughout. data_ready is when the response value exists.
  AccessResult Atomic(Addr addr, AtomicOp op, Tick arrival,
                      trace::SpanRef span = trace::SpanRef());

  // Total busy time accumulated by the FU pools (for the energy model).
  Tick int_fu_busy() const { return int_fu_busy_; }
  Tick fp_fu_busy() const { return fp_fu_busy_; }

  // Telemetry gauges (DESIGN.md §17): banks still reserved past `now` —
  // the vault's instantaneous queue depth under ready-time reservations.
  std::uint32_t BusyBanksAt(Tick now) const {
    std::uint32_t n = 0;
    for (const Bank& b : banks_) {
      if (b.ready > now) ++n;
    }
    return n;
  }

  // Latest bank reservation; BusyBanksAt's companion for backlog depth.
  Tick MaxBankReady() const {
    Tick m = 0;
    for (const Bank& b : banks_) {
      if (b.ready > m) m = b.ready;
    }
    return m;
  }

 private:
  struct Bank {
    std::int64_t open_row = -1;
    Tick ready = 0;          // earliest next access start
    Tick activate_tick = 0;  // when the open row was activated (tRAS)
    // Largest multiple of tREFI at or below this bank's last access time.
    // Per-bank access times are monotone (ready only moves forward), so the
    // refresh phase is the distance from this cached base — no modulo.
    Tick refresh_base = 0;
  };

  Bank& BankFor(Addr addr);
  std::int64_t RowOf(Addr addr) const;

  // Advances the bank state machine for one column access; returns the tick
  // at which data is at the bank I/O. Sets *row_hit.
  Tick BankAccess(Bank& bank, std::int64_t row, Tick start, bool* row_hit);

  // Span stage stamp; single never-taken branch when tracing is off.
  void Stamp(trace::SpanRef span, trace::SpanStage stage, Tick enter,
             Tick exit) {
    if (spans_ != nullptr) spans_->Stage(span, stage, enter, exit, track_);
  }

  const HmcParams& params_;
  trace::SpanRecorder* spans_;  // may be null (tracing off)
  std::uint32_t track_;
  StatScope stats_;
  StatId sid_row_hits_;
  StatId sid_row_misses_;
  StatId sid_refresh_stalls_;
  StatId sid_fu_int_ops_;
  StatId sid_fu_fp_ops_;
  StatId sid_bank_locked_ticks_;
  std::vector<Bank> banks_;
  // Shift/mask forms of the bank geometry (set when both row_bytes and
  // banks_per_vault are powers of two — every stock config).
  bool pow2_geometry_ = false;
  std::uint32_t row_shift_ = 0;
  std::uint32_t bank_shift_ = 0;
  std::uint64_t bank_mask_ = 0;
  std::vector<Tick> int_fu_ready_;
  std::vector<Tick> fp_fu_ready_;
  EpochThrottle ctrl_;
  Tick int_fu_busy_ = 0;
  Tick fp_fu_busy_ = 0;
};

}  // namespace graphpim::hmc

#endif  // GRAPHPIM_HMC_VAULT_H_
