#include "hmc/topology.h"

#include "common/log.h"
#include "hmc/flit.h"

namespace graphpim::hmc {

const char* ToString(CubeTopology t) {
  switch (t) {
    case CubeTopology::kChain:
      return "chain";
    case CubeTopology::kStar:
      return "star";
  }
  return "?";
}

CubeTopology ParseCubeTopology(const std::string& name) {
  if (name == "chain") return CubeTopology::kChain;
  if (name == "star") return CubeTopology::kStar;
  GP_THROW("unknown cube topology '", name, "' (want chain|star)");
}

HmcNetwork::HmcNetwork(const HmcParams& params, StatRegistry* stats,
                       Addr pmr_base, Addr pmr_end,
                       trace::SpanRecorder* spans)
    : params_(params), spans_(spans) {
  GP_CHECK(params_.num_cubes >= 1, "network needs at least one cube");
  map_.num_cubes = params_.num_cubes;
  map_.page_bytes = params_.cube_page_bytes;
  map_.pmr_base = pmr_base;
  map_.pmr_end = pmr_end;

  cubes_.reserve(params_.num_cubes);
  for (std::uint32_t i = 0; i < params_.num_cubes; ++i) {
    HmcParams cp = params_;
    // Cube 0 keeps the run's fault stream (single-cube byte identity);
    // remote cubes draw decorrelated streams so one injection schedule is
    // not replayed across the whole network.
    cp.fault.seed = fault::DeriveCubeFaultSeed(params_.fault.seed, i);
    cubes_.push_back(std::make_unique<HmcCube>(cp, stats, spans, i));
  }

  if (params_.num_cubes > 1) {
    // Network counters exist only on multi-cube machines: a single-cube
    // run must not intern new "hmc." names or its JSON counter surface
    // would drift from the pinned goldens.
    stats_ = StatScope(stats, "hmc");
    sid_local_ops_ = stats_.Counter("local_ops");
    sid_remote_ops_ = stats_.Counter("remote_ops");
    sid_hop_traversals_ = stats_.Counter("hop_traversals");
    sid_hop_flits_ = stats_.Counter("hop_flits");
    sid_hop_ns_ = stats_.Counter("hop_ns");
    stats_.Set(stats_.Counter("cubes"), static_cast<double>(params_.num_cubes));
    stats_.Set(stats_.Counter("capacity_gib"),
               static_cast<double>(TotalCapacityBytes()) /
                   static_cast<double>(kGiB));
    const std::uint32_t edges =
        params_.cube_topology == CubeTopology::kChain ? params_.num_cubes - 1
                                                      : 1;
    hop_links_.reserve(edges);
    for (std::uint32_t i = 0; i < edges; ++i) {
      hop_links_.emplace_back(params_.FlitTime());
    }
  }
}

std::uint32_t HmcNetwork::HopsTo(std::uint32_t cube) const {
  if (params_.num_cubes <= 1 || cube == 0) return 0;
  return params_.cube_topology == CubeTopology::kChain ? cube : 1;
}

std::uint32_t HmcNetwork::HopEdge(std::uint32_t cube, std::uint32_t h) const {
  // Chain: the path to cube c passes through cubes 0..c-1; hop h rides the
  // edge into pass-through cube h. Star: every remote path crosses the one
  // hub pass-through port.
  (void)cube;
  return params_.cube_topology == CubeTopology::kChain ? h : 0;
}

Tick HmcNetwork::HopsOut(std::uint32_t cube, std::uint32_t flits, Tick when,
                         trace::SpanRef span) {
  const std::uint32_t hops = HopsTo(cube);
  Tick at = when;
  for (std::uint32_t h = 0; h < hops; ++h) {
    at = hop_links_[HopEdge(cube, h)].ReserveTx(flits, at) +
         params_.link_latency + params_.xbar_latency;
  }
  if (hops > 0) {
    stats_.Add(sid_hop_traversals_, hops);
    stats_.Add(sid_hop_flits_, static_cast<double>(flits) * hops);
    stats_.Add(sid_hop_ns_, TicksToNs(at - when));
    if (spans_ != nullptr) {
      spans_->Stage(span, trace::SpanStage::kHopLink, when, at, cube);
    }
  }
  return at;
}

Tick HmcNetwork::HopsBack(std::uint32_t cube, std::uint32_t flits, Tick when,
                          trace::SpanRef span) {
  const std::uint32_t hops = HopsTo(cube);
  Tick at = when;
  for (std::uint32_t h = hops; h > 0; --h) {
    at = hop_links_[HopEdge(cube, h - 1)].ReserveRx(flits, at) +
         params_.link_latency + params_.xbar_latency;
  }
  if (hops > 0) {
    stats_.Add(sid_hop_traversals_, hops);
    stats_.Add(sid_hop_flits_, static_cast<double>(flits) * hops);
    stats_.Add(sid_hop_ns_, TicksToNs(at - when));
    if (spans_ != nullptr) {
      spans_->Stage(span, trace::SpanStage::kHopLink, when, at, cube);
    }
  }
  return at;
}

Completion HmcNetwork::Read(Addr addr, std::uint32_t size, Tick when,
                            trace::SpanRef span) {
  if (params_.num_cubes <= 1) return cubes_[0]->Read(addr, size, when, span);
  const std::uint32_t c = map_.CubeOf(addr);
  if (c == 0) stats_.Inc(sid_local_ops_);
  else stats_.Inc(sid_remote_ops_);
  const Tick at_cube = HopsOut(c, ReadRequestFlits(size), when, span);
  Completion comp = cubes_[c]->Read(map_.LocalAddr(addr), size, at_cube, span);
  comp.response_at_host =
      HopsBack(c, comp.resp_flits, comp.response_at_host, span);
  return comp;
}

Completion HmcNetwork::Write(Addr addr, std::uint32_t size, Tick when,
                             trace::SpanRef span) {
  if (params_.num_cubes <= 1) return cubes_[0]->Write(addr, size, when, span);
  const std::uint32_t c = map_.CubeOf(addr);
  if (c == 0) stats_.Inc(sid_local_ops_);
  else stats_.Inc(sid_remote_ops_);
  const Tick at_cube = HopsOut(c, WriteRequestFlits(size), when, span);
  Completion comp = cubes_[c]->Write(map_.LocalAddr(addr), size, at_cube, span);
  comp.response_at_host =
      HopsBack(c, comp.resp_flits, comp.response_at_host, span);
  return comp;
}

Completion HmcNetwork::Atomic(Addr addr, AtomicOp op, const Value16& operand,
                              bool want_return, Tick when,
                              trace::SpanRef span) {
  if (params_.num_cubes <= 1) {
    return cubes_[0]->Atomic(addr, op, operand, want_return, when, span);
  }
  const std::uint32_t c = map_.CubeOf(addr);
  if (c == 0) stats_.Inc(sid_local_ops_);
  else stats_.Inc(sid_remote_ops_);
  const Tick at_cube = HopsOut(c, AtomicRequestFlits(op), when, span);
  Completion comp = cubes_[c]->Atomic(map_.LocalAddr(addr), op, operand,
                                      want_return, at_cube, span);
  comp.response_at_host =
      HopsBack(c, comp.resp_flits, comp.response_at_host, span);
  return comp;
}

void HmcNetwork::set_functional(bool on) {
  for (auto& c : cubes_) c->set_functional(on);
}

Value16 HmcNetwork::FunctionalRead(Addr addr) const {
  return cubes_[map_.CubeOf(addr)]->FunctionalRead(map_.LocalAddr(addr));
}

void HmcNetwork::FunctionalWrite(Addr addr, const Value16& v) {
  cubes_[map_.CubeOf(addr)]->FunctionalWrite(map_.LocalAddr(addr), v);
}

Tick HmcNetwork::TotalIntFuBusy() const {
  Tick sum = 0;
  for (const auto& c : cubes_) sum += c->TotalIntFuBusy();
  return sum;
}

Tick HmcNetwork::TotalFpFuBusy() const {
  Tick sum = 0;
  for (const auto& c : cubes_) sum += c->TotalFpFuBusy();
  return sum;
}

Tick HmcNetwork::TotalLinkBusy() const {
  Tick sum = 0;
  for (const auto& c : cubes_) sum += c->TotalLinkBusy();
  for (const auto& l : hop_links_) sum += l.busy_ticks();
  return sum;
}

std::uint32_t HmcNetwork::BusyBanksAt(Tick now) const {
  std::uint32_t n = 0;
  for (const auto& c : cubes_) n += c->BusyBanksAt(now);
  return n;
}

Tick HmcNetwork::MaxBankReady() const {
  Tick m = 0;
  for (const auto& c : cubes_) m = std::max(m, c->MaxBankReady());
  return m;
}

std::uint32_t HmcNetwork::TotalLinkCount() const {
  return num_cubes() * params_.num_links +
         static_cast<std::uint32_t>(hop_links_.size());
}

}  // namespace graphpim::hmc
