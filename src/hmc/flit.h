// FLIT-level packet accounting for the HMC link protocol (paper Table V).
//
// HMC links carry packets composed of 128-bit (16-byte) FLITs. Every packet
// has one header/tail FLIT plus data FLITs. The paper's Table V gives the
// resulting request/response sizes; these functions reproduce that table
// and generalize it to arbitrary access sizes (uncacheable sub-line reads
// and writes issued by GraphPIM's cache-bypass policy).
#ifndef GRAPHPIM_HMC_FLIT_H_
#define GRAPHPIM_HMC_FLIT_H_

#include <cstdint>

#include "hmc/atomic.h"

namespace graphpim::hmc {

inline constexpr std::uint32_t kFlitBytes = 16;

// FLITs in a read request / response for `size` bytes of data.
std::uint32_t ReadRequestFlits(std::uint32_t size);
std::uint32_t ReadResponseFlits(std::uint32_t size);

// FLITs in a write request / response for `size` bytes of data.
std::uint32_t WriteRequestFlits(std::uint32_t size);
std::uint32_t WriteResponseFlits(std::uint32_t size);

// FLITs in an atomic request: header/tail plus the 16-byte immediate.
std::uint32_t AtomicRequestFlits(AtomicOp op);

// FLITs in an atomic response. Per Table V: operations that return the
// original data need 2 FLITs; flag-only responses (add without return,
// compare-if-equal) need 1. When `want_return` is false for an op that
// could return data, the response is still the 1-FLIT flag packet.
std::uint32_t AtomicResponseFlits(AtomicOp op, bool want_return);

}  // namespace graphpim::hmc

#endif  // GRAPHPIM_HMC_FLIT_H_
