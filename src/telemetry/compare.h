// Run-comparison regression sentinel (DESIGN.md §17).
//
// Flattens two metrics/timeline JSON artifacts (a single JSON document
// such as a BENCH_*.json point or a Chrome trace, or JSONL such as a
// timeline or phase log) into name-sorted {counter -> value} maps, then
// diffs them against per-counter tolerances. tools/graphpim_compare is a
// thin CLI over this; CI uses it as the perf gate on the bench
// trajectory.
#ifndef GRAPHPIM_TELEMETRY_COMPARE_H_
#define GRAPHPIM_TELEMETRY_COMPARE_H_

#include <cstddef>
#include <string>
#include <utility>
#include <vector>

namespace graphpim::telemetry {

// Every numeric leaf of a run artifact, dotted-path keyed, name-sorted.
// Nested objects flatten as "a.b.c"; array elements as "a.3.b"; booleans
// as 0/1; string leaves are dropped (they identify, they don't measure).
// JSONL input flattens per line, with each line's keys prefixed by its
// identity fields: "point.<p>." / "window.<n>." / "phase.<name>." when
// present, "line.<i>." otherwise.
struct FlatRun {
  std::vector<std::pair<std::string, double>> values;  // sorted by key

  const double* Find(const std::string& key) const;
};

// Parses `text` (JSON document or JSONL) into a FlatRun. Throws SimError
// on malformed input; duplicate keys keep the first occurrence.
FlatRun FlattenRunJson(const std::string& text);

struct CompareOptions {
  // A key passes when |head - base| <= abs_tol + rel_tol * |base|.
  double rel_tol = 0.0;
  double abs_tol = 0.0;
  // Per-key relative-tolerance overrides; the longest matching prefix
  // wins over rel_tol.
  std::vector<std::pair<std::string, double>> per_key;
  // When non-empty, only keys equal to or prefixed by one of these are
  // compared.
  std::vector<std::string> keys;
  // When true, a key present in only one run fails the comparison.
  bool fail_on_missing = false;
};

struct DriftRow {
  enum Status { kPass, kFail, kOnlyBase, kOnlyHead };

  std::string key;
  double base = 0.0;
  double head = 0.0;
  // Relative drift (head - base) / |base|; +/-inf when base == 0 and
  // head != 0.
  double drift = 0.0;
  double tol = 0.0;  // the relative tolerance applied to this key
  Status status = kPass;
};

struct DriftReport {
  // Failures first (largest |drift| first), then keys present in only one
  // run, then passes by |drift|.
  std::vector<DriftRow> rows;
  std::size_t compared = 0;  // keys present in both runs
  std::size_t failed = 0;    // over tolerance (missing included when fatal)
  std::size_t missing = 0;   // keys present in only one run

  bool pass() const { return failed == 0; }
};

DriftReport CompareRuns(const FlatRun& base, const FlatRun& head,
                        const CompareOptions& opts);

// Human-readable drift table; at most `max_rows` detail rows plus a
// summary line. Shows every failure even past the cap.
std::string FormatDriftTable(const DriftReport& report,
                             std::size_t max_rows = 24);

}  // namespace graphpim::telemetry

#endif  // GRAPHPIM_TELEMETRY_COMPARE_H_
