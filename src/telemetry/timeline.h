// Virtual-time windowed telemetry (DESIGN.md §17).
//
// A WindowSampler cuts the run into fixed-width virtual-time windows
// (`telemetry.window_ns`) and records, per window, (a) StatRegistry counter
// deltas accrued since the previous cut and (b) instantaneous gauges read
// from the live machine (vault queue depth, link occupancy, POU in-flight
// ops — or, on the serve side, admission-queue length and per-window
// latency quantiles). Windows land in a Timeline that exports as JSONL
// lines and as Chrome-trace counter ("C") events merged into the existing
// --metrics-out trace.
//
// Determinism contract: the sampler is driven only from deterministic
// points of the replay loop (the sharded engine's round tail, where
// quantum_end is identical at any --shards, and the sweep harvest, which
// is grid-ordered at any --jobs), so a timeline is bit-identical across
// reruns, --jobs and --shards. With `telemetry.window_ns=0` (the default)
// no sampler is ever constructed and every output byte matches a build
// without this subsystem — the same off-is-identity discipline as
// `trace.sample_rate` and `pmem.enable`.
#ifndef GRAPHPIM_TELEMETRY_TIMELINE_H_
#define GRAPHPIM_TELEMETRY_TIMELINE_H_

#include <cstdint>
#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "common/stats.h"
#include "common/types.h"

namespace graphpim::telemetry {

// One telemetry window [start, end). `end` is the nominal boundary
// (index+1 times the window width) except for the trailing partial window,
// which ends at the run's final tick.
struct TimelineWindow {
  std::uint64_t index = 0;
  Tick start = 0;
  Tick end = 0;
  // Counter deltas accrued since the previous cut, name-sorted. When the
  // engine jumps several boundaries inside one quantum the deltas attach
  // to the first window of the span and the rest stay empty (virtual time
  // inside a quantum is not subdividable after the fact).
  std::vector<std::pair<std::string, double>> deltas;
  // Instantaneous gauges sampled at the cut, in emission order.
  std::vector<std::pair<std::string, double>> gauges;
};

struct Timeline {
  Tick window_ticks = 0;
  std::uint64_t dropped_windows = 0;  // cut past telemetry.max_windows
  std::vector<TimelineWindow> windows;

  bool empty() const { return windows.empty(); }
  void Clear() {
    window_ticks = 0;
    dropped_windows = 0;
    windows.clear();
  }
};

// Fills `out` with instantaneous gauge samples for window [win_start,
// win_end). Must be deterministic in the machine state at the cut point.
using GaugeSampler = std::function<void(
    Tick win_start, Tick win_end,
    std::vector<std::pair<std::string, double>>* out)>;

// Accumulates windows by diffing successive registry snapshots at window
// boundaries. Not thread-safe: drive it from the orchestrating thread
// (the engine's round tail), never from shard workers.
class WindowSampler {
 public:
  // `window_ticks` must be > 0. `max_windows` bounds the timeline
  // (0 = unbounded); windows cut past the cap are counted in
  // Timeline::dropped_windows instead of stored. `gauges` may be empty.
  WindowSampler(Tick window_ticks, Timeline* out, std::uint64_t max_windows,
                GaugeSampler gauges);

  // First boundary not yet cut. Callers gate on
  // `now >= next_boundary()` to keep the hot path to one compare.
  Tick next_boundary() const { return next_boundary_; }

  // Cuts every window whose boundary is <= now. One registry snapshot is
  // taken per call regardless of how many boundaries are crossed.
  void AdvanceTo(Tick now, const StatRegistry& merged);

  // Final flush: advances through `end`, then cuts the trailing partial
  // window [last boundary, end) when it is non-empty (or when no window
  // was ever cut, so a telemetry-on run always yields >= 1 window).
  // Idempotent.
  void Finish(Tick end, const StatRegistry& merged);

 private:
  void CutWindow(Tick start, Tick end,
                 std::vector<std::pair<std::string, double>> deltas);

  Tick window_ = 0;
  Tick next_boundary_ = 0;
  std::uint64_t max_windows_ = 0;
  Timeline* out_ = nullptr;
  GaugeSampler gauges_;
  StatSnapshot prev_;
  bool finished_ = false;
};

// One JSON object per window:
//   {"window":3,"start_ns":...,"end_ns":...,"deltas":{...},"gauges":{...}}
// A non-empty `point` adds a leading "point" field (serve grid cells,
// sweep cells).
std::string ToJsonl(const Timeline& tl, const std::string& point = "");

// Pre-rendered Chrome-trace counter ("C") events, formatted for direct
// splicing into ToChromeTrace's traceEvents array (each event preceded by
// "\n", events joined with ","; empty string when the timeline is empty).
// Counter deltas get a "tele:" name prefix to keep their tracks distinct
// from the per-phase counter tracks; gauges keep their names. A non-empty
// `prefix` (e.g. "<point>|") namespaces every track for multi-point
// traces.
std::string ChromeCounterEvents(const Timeline& tl,
                                const std::string& prefix = "",
                                int pid = 3);

// Guards "telemetry on but nowhere to write it": throws SimError naming
// telemetry.window_ns when `window_ns` > 0 and `has_sink` is false.
// `hint` names the flags that would attach a sink for this driver.
void RequireSink(double window_ns, bool has_sink, const char* hint);

}  // namespace graphpim::telemetry

#endif  // GRAPHPIM_TELEMETRY_TIMELINE_H_
