#include "telemetry/compare.h"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <limits>

#include "common/log.h"
#include "common/string_util.h"
#include "common/trace.h"

namespace graphpim::telemetry {

namespace {

// Numeric and string leaves of one JSON document, in encounter order.
struct Leaves {
  std::vector<std::pair<std::string, double>> nums;
  std::vector<std::pair<std::string, std::string>> strs;
};

std::string JoinKey(const std::string& prefix, const std::string& k) {
  return prefix.empty() ? k : prefix + "." + k;
}

// Minimal recursive-descent JSON reader: enough for the artifacts this
// repo writes (reports, bench points, timelines, Chrome traces). Numbers
// and booleans become numeric leaves, strings become string leaves, null
// is dropped.
class JsonParser {
 public:
  JsonParser(const char* begin, const char* end) : begin_(begin), p_(begin), end_(end) {}

  void ParseValue(const std::string& key, Leaves* out) {
    SkipWs();
    if (p_ == end_) Fail("a value");
    switch (*p_) {
      case '{':
        ParseObject(key, out);
        return;
      case '[':
        ParseArray(key, out);
        return;
      case '"':
        out->strs.emplace_back(key, ParseString());
        return;
      case 't':
        Expect("true");
        out->nums.emplace_back(key, 1.0);
        return;
      case 'f':
        Expect("false");
        out->nums.emplace_back(key, 0.0);
        return;
      case 'n':
        Expect("null");
        return;
      default:
        out->nums.emplace_back(key, ParseNumber());
        return;
    }
  }

  bool AtEnd() {
    SkipWs();
    return p_ == end_;
  }

 private:
  [[noreturn]] void Fail(const char* what) {
    GP_THROW("malformed JSON at offset ", p_ - begin_, ": expected ", what);
  }

  void SkipWs() {
    while (p_ < end_ &&
           (*p_ == ' ' || *p_ == '\t' || *p_ == '\n' || *p_ == '\r')) {
      ++p_;
    }
  }

  void Expect(const char* lit) {
    for (const char* q = lit; *q != '\0'; ++q) {
      if (p_ == end_ || *p_ != *q) Fail(lit);
      ++p_;
    }
  }

  void ParseObject(const std::string& key, Leaves* out) {
    ++p_;  // '{'
    SkipWs();
    if (p_ < end_ && *p_ == '}') {
      ++p_;
      return;
    }
    while (true) {
      SkipWs();
      if (p_ == end_ || *p_ != '"') Fail("an object key");
      const std::string k = ParseString();
      SkipWs();
      if (p_ == end_ || *p_ != ':') Fail("':'");
      ++p_;
      ParseValue(JoinKey(key, k), out);
      SkipWs();
      if (p_ == end_) Fail("',' or '}'");
      if (*p_ == ',') {
        ++p_;
        continue;
      }
      if (*p_ == '}') {
        ++p_;
        return;
      }
      Fail("',' or '}'");
    }
  }

  void ParseArray(const std::string& key, Leaves* out) {
    ++p_;  // '['
    SkipWs();
    if (p_ < end_ && *p_ == ']') {
      ++p_;
      return;
    }
    std::size_t idx = 0;
    while (true) {
      ParseValue(JoinKey(key, StrFormat("%zu", idx)), out);
      ++idx;
      SkipWs();
      if (p_ == end_) Fail("',' or ']'");
      if (*p_ == ',') {
        ++p_;
        continue;
      }
      if (*p_ == ']') {
        ++p_;
        return;
      }
      Fail("',' or ']'");
    }
  }

  std::string ParseString() {
    ++p_;  // '"'
    std::string s;
    while (p_ < end_ && *p_ != '"') {
      if (*p_ != '\\') {
        s += *p_++;
        continue;
      }
      ++p_;
      if (p_ == end_) Fail("an escape sequence");
      switch (*p_) {
        case '"': s += '"'; break;
        case '\\': s += '\\'; break;
        case '/': s += '/'; break;
        case 'b': s += '\b'; break;
        case 'f': s += '\f'; break;
        case 'n': s += '\n'; break;
        case 'r': s += '\r'; break;
        case 't': s += '\t'; break;
        case 'u': {
          if (end_ - p_ < 5) Fail("four hex digits");
          unsigned cp = 0;
          for (int i = 1; i <= 4; ++i) {
            const char c = p_[i];
            cp <<= 4;
            if (c >= '0' && c <= '9') cp |= static_cast<unsigned>(c - '0');
            else if (c >= 'a' && c <= 'f') cp |= static_cast<unsigned>(c - 'a' + 10);
            else if (c >= 'A' && c <= 'F') cp |= static_cast<unsigned>(c - 'A' + 10);
            else Fail("four hex digits");
          }
          p_ += 4;
          // UTF-8 encode the code unit (surrogate pairs are not decoded;
          // the repo's writers only emit \u00XX control escapes).
          if (cp < 0x80) {
            s += static_cast<char>(cp);
          } else if (cp < 0x800) {
            s += static_cast<char>(0xC0 | (cp >> 6));
            s += static_cast<char>(0x80 | (cp & 0x3F));
          } else {
            s += static_cast<char>(0xE0 | (cp >> 12));
            s += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
            s += static_cast<char>(0x80 | (cp & 0x3F));
          }
          break;
        }
        default:
          Fail("a valid escape");
      }
      ++p_;
    }
    if (p_ == end_) Fail("a closing '\"'");
    ++p_;  // '"'
    return s;
  }

  double ParseNumber() {
    char* after = nullptr;
    const double v = std::strtod(p_, &after);
    if (after == p_) Fail("a number");
    p_ = after;
    return v;
  }

  const char* begin_;
  const char* p_;
  const char* end_;
};

Leaves ParseDocument(const char* begin, const char* end) {
  JsonParser p(begin, end);
  Leaves leaves;
  p.ParseValue("", &leaves);
  if (!p.AtEnd()) GP_THROW("malformed JSON: trailing content after document");
  return leaves;
}

const std::string* FindStr(const Leaves& l, const char* key) {
  for (const auto& [k, v] : l.strs) {
    if (k == key) return &v;
  }
  return nullptr;
}

const double* FindNum(const Leaves& l, const char* key) {
  for (const auto& [k, v] : l.nums) {
    if (k == key) return &v;
  }
  return nullptr;
}

// Identity prefix for one JSONL line: point / window / phase fields when
// present ("point.<p>.window.<n>." for a pointed timeline), else a plain
// line ordinal.
std::string LinePrefix(const Leaves& l, std::size_t line_idx) {
  std::string prefix;
  if (const std::string* point = FindStr(l, "point")) {
    prefix += "point." + *point + ".";
  }
  if (const double* window = FindNum(l, "window")) {
    prefix += StrFormat("window.%.0f.", *window);
  }
  if (prefix.empty()) {
    if (const std::string* phase = FindStr(l, "phase")) {
      prefix = "phase." + *phase + ".";
    } else {
      prefix = StrFormat("line.%zu.", line_idx);
    }
  }
  return prefix;
}

FlatRun SortAndDedupe(std::vector<std::pair<std::string, double>> values) {
  std::stable_sort(values.begin(), values.end(),
                   [](const auto& a, const auto& b) { return a.first < b.first; });
  FlatRun run;
  run.values.reserve(values.size());
  for (auto& kv : values) {
    if (!run.values.empty() && run.values.back().first == kv.first) continue;
    run.values.push_back(std::move(kv));
  }
  return run;
}

double AbsDrift(const DriftRow& r) { return std::fabs(r.drift); }

}  // namespace

const double* FlatRun::Find(const std::string& key) const {
  auto it = std::lower_bound(
      values.begin(), values.end(), key,
      [](const auto& kv, const std::string& k) { return kv.first < k; });
  return (it != values.end() && it->first == key) ? &it->second : nullptr;
}

FlatRun FlattenRunJson(const std::string& text) {
  // Collect non-empty lines first: several parseable lines means JSONL
  // (timelines, phase logs, journals); otherwise the text is one JSON
  // document, possibly pretty-printed across lines.
  std::vector<std::pair<const char*, const char*>> lines;
  const char* p = text.data();
  const char* end = text.data() + text.size();
  while (p < end) {
    const char* nl = p;
    while (nl < end && *nl != '\n') ++nl;
    const char* b = p;
    const char* e = nl;
    while (b < e && (*b == ' ' || *b == '\t' || *b == '\r')) ++b;
    while (e > b && (e[-1] == ' ' || e[-1] == '\t' || e[-1] == '\r')) --e;
    if (b < e) lines.emplace_back(b, e);
    p = nl < end ? nl + 1 : end;
  }
  if (lines.empty()) GP_THROW("empty run artifact: nothing to compare");

  if (lines.size() > 1) {
    bool jsonl = true;
    std::vector<Leaves> parsed;
    parsed.reserve(lines.size());
    try {
      for (const auto& [b, e] : lines) parsed.push_back(ParseDocument(b, e));
    } catch (const SimError&) {
      jsonl = false;  // pretty-printed single document
    }
    if (jsonl) {
      std::vector<std::pair<std::string, double>> values;
      for (std::size_t i = 0; i < parsed.size(); ++i) {
        const std::string prefix = LinePrefix(parsed[i], i);
        for (auto& [k, v] : parsed[i].nums) {
          values.emplace_back(prefix + k, v);
        }
      }
      return SortAndDedupe(std::move(values));
    }
  }

  Leaves leaves = ParseDocument(text.data(), end);
  return SortAndDedupe(std::move(leaves.nums));
}

DriftReport CompareRuns(const FlatRun& base, const FlatRun& head,
                        const CompareOptions& opts) {
  auto selected = [&](const std::string& k) {
    if (opts.keys.empty()) return true;
    for (const std::string& f : opts.keys) {
      if (StartsWith(k, f)) return true;
    }
    return false;
  };
  auto tol_for = [&](const std::string& k) {
    double tol = opts.rel_tol;
    std::size_t best = 0;
    bool found = false;
    for (const auto& [prefix, t] : opts.per_key) {
      if (StartsWith(k, prefix) && (!found || prefix.size() >= best)) {
        tol = t;
        best = prefix.size();
        found = true;
      }
    }
    return tol;
  };

  DriftReport rep;
  std::size_t i = 0;
  std::size_t j = 0;
  while (i < base.values.size() || j < head.values.size()) {
    DriftRow row;
    const bool take_base =
        j >= head.values.size() ||
        (i < base.values.size() && base.values[i].first <= head.values[j].first);
    const bool take_head =
        i >= base.values.size() ||
        (j < head.values.size() && head.values[j].first <= base.values[i].first);
    if (take_base && take_head) {
      row.key = base.values[i].first;
      row.base = base.values[i].second;
      row.head = head.values[j].second;
      ++i;
      ++j;
      if (!selected(row.key)) continue;
      row.tol = tol_for(row.key);
      const double diff = row.head - row.base;
      if (row.base != 0.0) {
        row.drift = diff / std::fabs(row.base);
      } else if (diff != 0.0) {
        row.drift = std::copysign(std::numeric_limits<double>::infinity(), diff);
      }
      const bool pass =
          std::fabs(diff) <= opts.abs_tol + row.tol * std::fabs(row.base);
      row.status = pass ? DriftRow::kPass : DriftRow::kFail;
      ++rep.compared;
      if (!pass) ++rep.failed;
    } else if (take_base) {
      row.key = base.values[i].first;
      row.base = base.values[i].second;
      row.status = DriftRow::kOnlyBase;
      ++i;
      if (!selected(row.key)) continue;
      ++rep.missing;
      if (opts.fail_on_missing) ++rep.failed;
    } else {
      row.key = head.values[j].first;
      row.head = head.values[j].second;
      row.status = DriftRow::kOnlyHead;
      ++j;
      if (!selected(row.key)) continue;
      ++rep.missing;
      if (opts.fail_on_missing) ++rep.failed;
    }
    rep.rows.push_back(std::move(row));
  }

  auto rank = [](const DriftRow& r) {
    switch (r.status) {
      case DriftRow::kFail: return 0;
      case DriftRow::kOnlyBase:
      case DriftRow::kOnlyHead: return 1;
      case DriftRow::kPass: return 2;
    }
    return 2;
  };
  std::stable_sort(rep.rows.begin(), rep.rows.end(),
                   [&](const DriftRow& a, const DriftRow& b) {
                     const int ra = rank(a);
                     const int rb = rank(b);
                     if (ra != rb) return ra < rb;
                     if (AbsDrift(a) != AbsDrift(b)) {
                       return AbsDrift(a) > AbsDrift(b);
                     }
                     return a.key < b.key;
                   });
  return rep;
}

std::string FormatDriftTable(const DriftReport& report, std::size_t max_rows) {
  std::string out = StrFormat("%-44s %14s %14s %10s %8s  %s\n", "counter",
                              "base", "head", "drift", "tol", "verdict");
  std::size_t shown = 0;
  std::size_t hidden = 0;
  for (const DriftRow& r : report.rows) {
    // Every failure prints, even past the row cap.
    if (shown >= max_rows && r.status != DriftRow::kFail) {
      ++hidden;
      continue;
    }
    std::string drift;
    const char* verdict = "ok";
    std::string base_s = trace::FormatStatValue(r.base);
    std::string head_s = trace::FormatStatValue(r.head);
    switch (r.status) {
      case DriftRow::kFail:
        verdict = "FAIL";
        [[fallthrough]];
      case DriftRow::kPass:
        drift = std::isinf(r.drift)
                    ? std::string(r.drift > 0 ? "+inf" : "-inf")
                    : StrFormat("%+.2f%%", r.drift * 100.0);
        break;
      case DriftRow::kOnlyBase:
        verdict = "base-only";
        drift = "gone";
        head_s = "-";
        break;
      case DriftRow::kOnlyHead:
        verdict = "head-only";
        drift = "new";
        base_s = "-";
        break;
    }
    const std::string tol =
        r.status == DriftRow::kPass || r.status == DriftRow::kFail
            ? StrFormat("%.3g%%", r.tol * 100.0)
            : std::string("-");
    out += StrFormat("%-44s %14s %14s %10s %8s  %s\n", r.key.c_str(),
                     base_s.c_str(), head_s.c_str(), drift.c_str(),
                     tol.c_str(), verdict);
    ++shown;
  }
  if (hidden > 0) {
    out += StrFormat("... %zu more rows within tolerance\n", hidden);
  }
  out += StrFormat(
      "compare: %zu keys compared, %zu over tolerance, %zu only in one run\n",
      report.compared, report.failed, report.missing);
  return out;
}

}  // namespace graphpim::telemetry
