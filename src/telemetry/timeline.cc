#include "telemetry/timeline.h"

#include "common/log.h"
#include "common/string_util.h"
#include "common/trace.h"

namespace graphpim::telemetry {

namespace {

// Ticks are picoseconds; Chrome trace timestamps are microseconds.
double TickToUs(Tick t) { return static_cast<double>(t) / 1e6; }

double TickToNs(Tick t) {
  return static_cast<double>(t) / static_cast<double>(kTicksPerNs);
}

void AppendItems(const std::vector<std::pair<std::string, double>>& items,
                 std::string* out) {
  bool first = true;
  for (const auto& [k, v] : items) {
    if (!first) *out += ',';
    first = false;
    *out += '"' + JsonEscape(k) + "\":" + trace::FormatStatValue(v);
  }
}

}  // namespace

WindowSampler::WindowSampler(Tick window_ticks, Timeline* out,
                             std::uint64_t max_windows, GaugeSampler gauges)
    : window_(window_ticks),
      next_boundary_(window_ticks),
      max_windows_(max_windows),
      out_(out),
      gauges_(std::move(gauges)) {
  GP_CHECK(window_ticks > 0, "telemetry window must be at least one tick");
  GP_CHECK(out != nullptr);
  out_->window_ticks = window_ticks;
}

void WindowSampler::CutWindow(
    Tick start, Tick end, std::vector<std::pair<std::string, double>> deltas) {
  if (max_windows_ != 0 && out_->windows.size() >= max_windows_) {
    ++out_->dropped_windows;
    return;
  }
  TimelineWindow w;
  w.index = static_cast<std::uint64_t>(out_->windows.size());
  w.start = start;
  w.end = end;
  w.deltas = std::move(deltas);
  if (gauges_) gauges_(start, end, &w.gauges);
  out_->windows.push_back(std::move(w));
}

void WindowSampler::AdvanceTo(Tick now, const StatRegistry& merged) {
  if (now < next_boundary_) return;
  StatSnapshot snap = merged.Snapshot();
  std::vector<std::pair<std::string, double>> deltas = DeltaItems(snap, prev_);
  prev_ = std::move(snap);
  bool first = true;
  while (next_boundary_ <= now) {
    CutWindow(next_boundary_ - window_, next_boundary_,
              first ? std::move(deltas)
                    : std::vector<std::pair<std::string, double>>());
    first = false;
    next_boundary_ += window_;
  }
}

void WindowSampler::Finish(Tick end, const StatRegistry& merged) {
  if (finished_) return;
  finished_ = true;
  AdvanceTo(end, merged);
  const Tick start = next_boundary_ - window_;
  if (end > start || out_->windows.empty()) {
    StatSnapshot snap = merged.Snapshot();
    std::vector<std::pair<std::string, double>> deltas = DeltaItems(snap, prev_);
    prev_ = std::move(snap);
    CutWindow(start, end, std::move(deltas));
  }
}

std::string ToJsonl(const Timeline& tl, const std::string& point) {
  std::string out;
  for (const TimelineWindow& w : tl.windows) {
    std::string line = "{";
    if (!point.empty()) line += "\"point\":\"" + JsonEscape(point) + "\",";
    line += StrFormat("\"window\":%llu,\"start_ns\":%.3f,\"end_ns\":%.3f,"
                      "\"deltas\":{",
                      static_cast<unsigned long long>(w.index),
                      TickToNs(w.start), TickToNs(w.end));
    AppendItems(w.deltas, &line);
    line += "},\"gauges\":{";
    AppendItems(w.gauges, &line);
    line += "}}\n";
    out += line;
  }
  return out;
}

std::string ChromeCounterEvents(const Timeline& tl, const std::string& prefix,
                                int pid) {
  std::string out;
  bool first = true;
  auto emit = [&](const std::string& ev) {
    if (!first) out += ',';
    first = false;
    out += '\n';
    out += ev;
  };
  for (const TimelineWindow& w : tl.windows) {
    for (const auto& [k, v] : w.deltas) {
      emit(StrFormat("{\"name\":\"%s\",\"ph\":\"C\",\"pid\":%d,\"ts\":%.6f,"
                     "\"args\":{\"delta\":%s}}",
                     JsonEscape(prefix + "tele:" + k).c_str(), pid,
                     TickToUs(w.end), trace::FormatStatValue(v).c_str()));
    }
    for (const auto& [k, v] : w.gauges) {
      emit(StrFormat("{\"name\":\"%s\",\"ph\":\"C\",\"pid\":%d,\"ts\":%.6f,"
                     "\"args\":{\"value\":%s}}",
                     JsonEscape(prefix + k).c_str(), pid, TickToUs(w.end),
                     trace::FormatStatValue(v).c_str()));
    }
  }
  return out;
}

void RequireSink(double window_ns, bool has_sink, const char* hint) {
  if (window_ns > 0.0 && !has_sink) {
    GP_THROW("telemetry.window_ns=", window_ns,
             " but no telemetry sink is attached: ", hint);
  }
}

}  // namespace graphpim::telemetry
