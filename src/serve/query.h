// Resident graph + per-tenant PMR carves + bounded point-query traces.
//
// A ServedGraph is the long-lived state of the serving engine: one CSR
// graph (structure segment, shared by every tenant — structure is
// read-only at serve time) plus, per tenant, a page-aligned carve of the
// PMR holding that tenant's private property arrays. Carves are allocated
// in whole kPmrPageBytes pages, so the PR 4 CubeMap stripes each tenant's
// pages round-robin across every cube of the machine (capacity isolation
// across tenants, bandwidth spreading within a tenant) and no PMR page is
// ever shared by two tenants.
//
// EmitQuery() appends ONE point query's micro-op stream to a TraceBuilder:
// a bounded-neighborhood variant of the matching batch workload
// (bfs/sssp/prank emission patterns), rooted at the request vertex and
// clipped by hop count / frontier width / op budget so a query is a
// latency-scale unit of work rather than a whole-graph pass. All
// functional traversal state (visited maps, distances) is local to the
// call; ServedGraph is only read. That makes EmitQuery safe to call
// concurrently from independent serve points sharing one ServedGraph.
#ifndef GRAPHPIM_SERVE_QUERY_H_
#define GRAPHPIM_SERVE_QUERY_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "graph/csr.h"
#include "graph/property.h"
#include "graph/region.h"
#include "serve/traffic.h"
#include "workloads/trace.h"

namespace graphpim::serve {

// One tenant's private PMR slice: two per-vertex property segments (the
// main property BFS/SSSP atomics target, and the accumulator PageRank
// scatters into), contiguous and whole-page-aligned. Pure address math —
// the simulated addresses a query's property ops land on.
struct TenantCarve {
  std::uint32_t tenant = 0;
  Addr prop_base = 0;  // depth/dist/rank property array
  Addr aux_base = 0;   // PageRank `next` accumulator array
  Addr end = 0;        // exclusive end; [prop_base, end) is this carve
  std::uint32_t stride = graph::kVertexPropertyStride;

  Addr PropAddr(VertexId v) const { return prop_base + static_cast<Addr>(v) * stride; }
  Addr AuxAddr(VertexId v) const { return aux_base + static_cast<Addr>(v) * stride; }
  bool Contains(Addr a) const { return a >= prop_base && a < end; }
  std::uint64_t bytes() const { return end - prop_base; }
};

// The resident graph an engine serves: built once, then read-only.
class ServedGraph {
 public:
  struct Options {
    std::string profile = "ldbc";  // synthetic dataset profile
    VertexId num_vertices = 4096;
    std::uint32_t num_tenants = 2;
    std::uint64_t seed = 1;
  };

  explicit ServedGraph(const Options& opts);

  const Options& options() const { return opts_; }
  const graph::CsrGraph& graph() const { return *graph_; }
  const graph::AddressSpace& space() const { return space_; }

  std::uint32_t num_tenants() const { return static_cast<std::uint32_t>(carves_.size()); }
  const TenantCarve& carve(std::uint32_t tenant) const { return carves_.at(tenant); }

  // POU bounds for RunSimulation: the whole PMR segment (all carves).
  Addr pmr_base() const { return space_.pmr_base(); }
  Addr pmr_end() const { return space_.pmr_end(); }

  // Which tenant's carve holds PMR address `a`; -1 if none (e.g. an
  // address outside every carve, or not a PMR address at all).
  int OwnerOf(Addr a) const;

  // Per-tenant meta-segment scratch for query frontier queues (the
  // cache-friendly pop/push addresses of the traversal loops). Two
  // ping-pong queues of kQueueSlots entries each.
  static constexpr std::size_t kQueueSlots = 4096;
  Addr QueueAddr(std::uint32_t tenant, int which) const {
    return queue_addr_.at(tenant * 2 + which);
  }

 private:
  Options opts_;
  graph::AddressSpace space_;
  std::unique_ptr<graph::CsrGraph> graph_;
  std::vector<TenantCarve> carves_;
  std::vector<Addr> queue_addr_;
};

// Bounds that turn a whole-graph workload into a point query.
struct QueryParams {
  int max_hops = 2;               // traversal depth from the root
  std::size_t max_frontier = 64;  // widest frontier carried to the next hop
  std::uint64_t op_budget = 4000; // hard cap on emitted micro-ops per query
};

// What one emitted query touched (for tests and saturation accounting).
struct QueryFootprint {
  std::uint64_t ops = 0;       // micro-ops appended to the stream
  std::uint64_t edges = 0;     // edges traversed
  std::uint64_t vertices = 0;  // distinct vertices claimed/visited
};

// Appends request `req`'s bounded query to stream `stream` of `tb`,
// touching only req.tenant's carve for property traffic. Returns the
// footprint. Deterministic: a pure function of (graph, request, params).
QueryFootprint EmitQuery(const ServedGraph& sg, const ServeRequest& req,
                         const QueryParams& qp, workloads::TraceBuilder& tb,
                         int stream);

}  // namespace graphpim::serve

#endif  // GRAPHPIM_SERVE_QUERY_H_
