// Resident graph + per-tenant PMR carves + bounded point-query traces.
//
// A ServedGraph is the long-lived state of the serving engine: one CSR
// graph (structure segment, shared by every tenant — structure is
// read-only at serve time) plus, per tenant, a page-aligned carve of the
// PMR holding that tenant's private property arrays. Carves are allocated
// in whole kPmrPageBytes pages, so the PR 4 CubeMap stripes each tenant's
// pages round-robin across every cube of the machine (capacity isolation
// across tenants, bandwidth spreading within a tenant) and no PMR page is
// ever shared by two tenants. With Options::enable_ann the graph also
// hosts a shared read-only HNSW index (DESIGN.md §16) — built strictly
// AFTER the tenant carves so the carve layout is byte-identical to an
// ann-less build — for the knn query kind.
//
// QUERY KINDS are a name-keyed registry (QueryEmitters()), not an enum:
// each registered kind pairs an emitter — which appends ONE point query's
// micro-op stream to a TraceBuilder — with a root sampler the traffic
// generator uses to turn a raw hash draw into that kind's root domain.
// The ServeRequest::kind field is an index into this registry, so an
// out-of-range kind is unrepresentable by construction rather than a
// switch sentinel. Emitters are bounded-neighborhood variants of the
// matching batch workloads (bfs/sssp/prank emission patterns; knn replays
// an HNSW beam search), rooted at the request vertex and clipped by hop
// count / frontier width / op budget so a query is a latency-scale unit
// of work rather than a whole-graph pass. All functional traversal state
// (visited maps, distances, beams) is local to the call; ServedGraph is
// only read. That makes EmitQuery safe to call concurrently from
// independent serve points sharing one ServedGraph.
#ifndef GRAPHPIM_SERVE_QUERY_H_
#define GRAPHPIM_SERVE_QUERY_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "graph/csr.h"
#include "graph/hnsw_index.h"
#include "graph/property.h"
#include "graph/region.h"
#include "graph/vectors.h"
#include "serve/traffic.h"
#include "workloads/params.h"
#include "workloads/trace.h"

namespace graphpim::serve {

// One tenant's private PMR slice: two per-vertex property segments (the
// main property BFS/SSSP atomics target, and the accumulator PageRank
// scatters into; knn reuses prop as its visited words and aux for its
// striped beam locks), contiguous and whole-page-aligned. Pure address
// math — the simulated addresses a query's property ops land on.
struct TenantCarve {
  std::uint32_t tenant = 0;
  Addr prop_base = 0;  // depth/dist/rank/visited property array
  Addr aux_base = 0;   // PageRank `next` accumulator / knn lock+bound array
  Addr end = 0;        // exclusive end; [prop_base, end) is this carve
  std::uint32_t stride = graph::kVertexPropertyStride;

  Addr PropAddr(VertexId v) const { return prop_base + static_cast<Addr>(v) * stride; }
  Addr AuxAddr(VertexId v) const { return aux_base + static_cast<Addr>(v) * stride; }
  bool Contains(Addr a) const { return a >= prop_base && a < end; }
  std::uint64_t bytes() const { return end - prop_base; }
};

// The resident graph an engine serves: built once, then read-only.
class ServedGraph {
 public:
  struct Options {
    std::string profile = "ldbc";  // synthetic dataset profile
    VertexId num_vertices = 4096;
    std::uint32_t num_tenants = 2;
    std::uint64_t seed = 1;
    // Build the shared HNSW index (one vector per vertex) so knn queries
    // can be served. Off by default: an ann-less ServedGraph allocates
    // exactly what it always has (strict layout passthrough).
    bool enable_ann = false;
    workloads::AnnParams ann;  // index/search shape when enable_ann
  };

  explicit ServedGraph(const Options& opts);

  const Options& options() const { return opts_; }
  const graph::CsrGraph& graph() const { return *graph_; }
  const graph::AddressSpace& space() const { return space_; }

  std::uint32_t num_tenants() const { return static_cast<std::uint32_t>(carves_.size()); }
  const TenantCarve& carve(std::uint32_t tenant) const { return carves_.at(tenant); }

  // POU bounds for RunSimulation: the whole PMR segment (all carves).
  Addr pmr_base() const { return space_.pmr_base(); }
  Addr pmr_end() const { return space_.pmr_end(); }

  // Which tenant's carve holds PMR address `a`; -1 if none (e.g. an
  // address outside every carve, the shared ANN index block, or not a
  // PMR address at all).
  int OwnerOf(Addr a) const;

  // Shared ANN state (null unless Options::enable_ann).
  bool has_ann() const { return ann_index_ != nullptr; }
  const graph::VectorSet& ann_vectors() const { return *ann_vectors_; }
  const graph::HnswIndex& ann_index() const { return *ann_index_; }

  // Per-tenant meta-segment scratch for query frontier queues (the
  // cache-friendly pop/push addresses of the traversal loops). Two
  // ping-pong queues of kQueueSlots entries each.
  static constexpr std::size_t kQueueSlots = 4096;
  Addr QueueAddr(std::uint32_t tenant, int which) const {
    return queue_addr_.at(tenant * 2 + which);
  }

 private:
  Options opts_;
  graph::AddressSpace space_;
  std::unique_ptr<graph::CsrGraph> graph_;
  std::vector<TenantCarve> carves_;
  std::vector<Addr> queue_addr_;
  std::unique_ptr<graph::VectorSet> ann_vectors_;  // must outlive ann_index_
  std::unique_ptr<graph::HnswIndex> ann_index_;
};

// Bounds that turn a whole-graph workload into a point query.
struct QueryParams {
  int max_hops = 2;               // traversal depth from the root
  std::size_t max_frontier = 64;  // widest frontier carried to the next hop
  std::uint64_t op_budget = 4000; // hard cap on emitted micro-ops per query
};

// What one emitted query touched (for tests and saturation accounting).
struct QueryFootprint {
  std::uint64_t ops = 0;       // micro-ops appended to the stream
  std::uint64_t edges = 0;     // edges traversed / index slots examined
  std::uint64_t vertices = 0;  // distinct vertices claimed/visited
};

// One registered point-query kind: its wire name (mix specs, reports),
// its trace emitter, and the root sampler the traffic generator feeds
// with a raw value-derived u64 draw. Plain function pointers — the
// registry is a static table, not a plugin system.
struct QueryEmitter {
  const char* name;
  QueryFootprint (*emit)(const ServedGraph& sg, const ServeRequest& req,
                         const QueryParams& qp, workloads::TraceBuilder& tb,
                         int stream);
  VertexId (*sample_root)(std::uint64_t raw, VertexId num_vertices);
};

// The kind registry, registration order bfs, sssp, prank, knn. The order
// is part of the determinism contract: QueryKindId values index this
// table, and the traffic mix's cumulative draw walks it through the
// names, so reordering would reshuffle every schedule.
const std::vector<QueryEmitter>& QueryEmitters();

// Registry index of `name`, or -1 if no such kind is registered.
int FindQueryKind(const std::string& name);

// Wire name of a kind id ("?" if out of range — display-safe, never throws).
const char* QueryKindName(QueryKindId kind);

// Appends request `req`'s bounded query to stream `stream` of `tb` by
// dispatching through the registry, touching only req.tenant's carve for
// property traffic (knn additionally reads the shared index block).
// Returns the footprint. Deterministic: a pure function of
// (graph, request, params). Throws SimError if req.kind is not a
// registered kind id.
QueryFootprint EmitQuery(const ServedGraph& sg, const ServeRequest& req,
                         const QueryParams& qp, workloads::TraceBuilder& tb,
                         int stream);

}  // namespace graphpim::serve

#endif  // GRAPHPIM_SERVE_QUERY_H_
