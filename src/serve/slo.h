// SLO folding, saturation-table formatting, and knee detection.
#ifndef GRAPHPIM_SERVE_SLO_H_
#define GRAPHPIM_SERVE_SLO_H_

#include <string>
#include <vector>

#include "common/stats.h"
#include "common/trace.h"
#include "serve/engine.h"

namespace graphpim::serve {

// Exact quantile over an ASCENDING-sorted sample vector, linearly
// interpolated between order statistics (q in [0,1]; 0 on empty input).
// Used instead of the bucketed Histogram for serve latencies, whose
// dynamic range spans µs to ms within one sweep.
double QuantileSorted(const std::vector<double>& sorted, double q);

// Folds a finished point's SLO numbers into `reg` under the serve.*
// scope: serve.{offered,served,dropped,drop_rate,batches,replayed_ops},
// serve.latency.{p50,p95,p99,mean,max}_ns, serve.queue.{mean,peak}_depth,
// serve.{util,achieved_qps,horizon_ns}, and per-tenant
// serve.tenant<k>.{offered,served,dropped,p50_ns,p95_ns,p99_ns}.
void FoldServeStats(const ServePoint& pt, StatRegistry* reg);

// The deterministic saturation table: one row per point, in the given
// order, fixed-width columns (config, qps, served, drop%, p50/p95/p99 µs,
// queue mean/peak, util, achieved qps). Contains nothing wall-clock, so
// two runs of the same grid produce byte-identical text.
std::string FormatSaturationTable(const std::vector<ServePoint>& points);

// Saturation knee of one config's qps series (points must share a config
// and ascend in qps): the largest offered qps the machine still "keeps up
// with". A point keeps up when (a) its drop rate is <= `max_drop`, (b) the
// admission queue never filled (queue_peak < queue_limit), and (c) its p99
// stays within `latency_x` times the series' light-load p99 (the p99 of
// the lowest-qps point) — the classic latency-vs-throughput knee, which
// bends before drops appear. Counts (a)/(b) are measured over the same
// run, so finite-horizon drain bias cancels out by construction.
struct KneeSummary {
  std::string config_name;
  double knee_qps = 0.0;    // 0 when even the lowest point saturates
  bool saturated = false;   // true if any grid point exceeded the knee
};

KneeSummary FindKnee(const std::vector<ServePoint>& series,
                     double latency_x = 4.0, double max_drop = 0.01);

// Per-config knee lines ("<config>: knee >= N qps" / "saturates at ...").
// Deterministic text, grouped in first-appearance config order.
std::string FormatKneeSummary(const std::vector<ServePoint>& points);

// One-line telemetry note for the live heartbeat, from the last window of
// a point's timeline: "qps=1.2e+06 p99=824us q=3". "" when the timeline
// has no windows (telemetry off).
std::string TimelineNote(const telemetry::Timeline& tl);

// Deterministic per-point window table (DESIGN.md §17): one row per
// telemetry window of every point, in point order. "" when no point
// carries windows, so telemetry-off output is untouched. Printed inside
// the saturation markers, so the golden identity gates cover it.
std::string FormatServeTimeline(const std::vector<ServePoint>& points);

// Builds the --metrics-out phase log: one phase per point (named
// "<config>@qps=<q>", duration = the point's simulated horizon) whose
// deltas are exactly that point's registry contribution. Export through
// trace::WriteTrace like every other tool.
trace::PhaseLog BuildServePhases(const std::vector<ServePoint>& points);

}  // namespace graphpim::serve

#endif  // GRAPHPIM_SERVE_SLO_H_
