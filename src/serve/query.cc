#include "serve/query.h"

#include <algorithm>
#include <cstdint>
#include <vector>

#include "common/log.h"
#include "common/random.h"
#include "graph/generator.h"
#include "hmc/atomic.h"

namespace graphpim::serve {

namespace {

constexpr std::uint64_t RoundUpTo(std::uint64_t v, std::uint64_t unit) {
  return (v + unit - 1) / unit * unit;
}

// Serve-side ANN dataset salt: the shared vectors are a pure function of
// (graph seed, salt), decorrelated from every traffic stream.
constexpr std::uint64_t kAnnSeedSalt = 0x616e6e53'45525645ULL;  // "annSERVE"

}  // namespace

ServedGraph::ServedGraph(const Options& opts) : opts_(opts) {
  if (opts.num_vertices == 0) GP_THROW("served graph needs vertices");
  if (opts.num_tenants == 0) {
    GP_THROW("served graph needs at least one tenant");
  }
  graph::EdgeList el =
      graph::GenerateProfile(opts.profile, opts.num_vertices, opts.seed);
  graph_ = std::make_unique<graph::CsrGraph>(el, space_);

  const std::uint64_t page = graph::AddressSpace::kPmrPageBytes;
  const std::uint64_t seg_bytes = RoundUpTo(
      static_cast<std::uint64_t>(graph_->num_vertices()) *
          graph::kVertexPropertyStride,
      page);
  carves_.reserve(opts.num_tenants);
  queue_addr_.reserve(opts.num_tenants * 2);
  for (std::uint32_t t = 0; t < opts.num_tenants; ++t) {
    TenantCarve c;
    c.tenant = t;
    // Whole-page allocations from the PMR bump allocator are contiguous,
    // so [prop_base, end) is exactly this tenant's page set — disjoint
    // from every other tenant's by construction.
    c.prop_base = space_.PmrMalloc(seg_bytes, page);
    c.aux_base = space_.PmrMalloc(seg_bytes, page);
    GP_CHECK(c.aux_base == c.prop_base + seg_bytes,
             "tenant carve segments must be contiguous");
    c.end = c.aux_base + seg_bytes;
    carves_.push_back(c);
    queue_addr_.push_back(space_.meta().Allocate(kQueueSlots * 4));
    queue_addr_.push_back(space_.meta().Allocate(kQueueSlots * 4));
  }

  // The shared ANN index goes AFTER the carves: with enable_ann off the
  // PMR layout is byte-identical to what this constructor always built,
  // and with it on the carve addresses are unchanged (the index blocks
  // land on fresh pages past every carve).
  if (opts.enable_ann) {
    graph::VectorSetParams vp;
    vp.count = graph_->num_vertices();
    vp.dim = opts.ann.dim;
    vp.clusters = std::max<int>(4, static_cast<int>(vp.count / 128));
    vp.seed = SplitMix64(opts.seed ^ kAnnSeedSalt).Next();
    ann_vectors_ = std::make_unique<graph::VectorSet>(vp);
    graph::HnswParams hp;
    hp.m = opts.ann.m;
    hp.ef_construction = std::max(2 * opts.ann.m, opts.ann.ef_search);
    ann_index_ =
        std::make_unique<graph::HnswIndex>(*ann_vectors_, hp, &space_);
  }
}

int ServedGraph::OwnerOf(Addr a) const {
  for (const TenantCarve& c : carves_) {
    if (c.Contains(a)) return static_cast<int>(c.tenant);
  }
  return -1;
}

namespace {

// Shared bounded-traversal plumbing for the registered query kinds. Each
// op pattern below mirrors the per-neighbor body of the matching batch
// workload (src/workloads/{bfs,sssp,prank,hnsw}.cc) so a serve replay
// exercises the same property/structure/meta mix the paper characterizes.
struct QueryCtx {
  const ServedGraph& sg;
  const TenantCarve& carve;
  workloads::TraceBuilder& tb;
  const QueryParams& qp;
  int t;  // stream
  Addr q0, q1;  // ping-pong frontier queues (meta scratch)
  QueryFootprint fp;

  bool Budget(std::uint64_t cost) {
    if (fp.ops + cost > qp.op_budget) return false;
    fp.ops += cost;
    return true;
  }
  Addr Slot(Addr q, std::size_t i) const {
    return q + (i % ServedGraph::kQueueSlots) * 4;
  }
};

void EmitBfsQuery(QueryCtx& cx, VertexId root) {
  const graph::CsrGraph& g = cx.sg.graph();
  std::vector<std::uint8_t> visited(g.num_vertices(), 0);
  std::vector<VertexId> frontier{root};
  visited[root] = 1;
  ++cx.fp.vertices;
  Addr qa = cx.q0, qb = cx.q1;
  for (int hop = 0; hop < cx.qp.max_hops && !frontier.empty(); ++hop) {
    std::vector<VertexId> next;
    for (std::size_t i = 0; i < frontier.size(); ++i) {
      VertexId u = frontier[i];
      if (!cx.Budget(2)) return;
      cx.tb.Load(cx.t, cx.Slot(qa, i), 4);                   // meta: pop
      cx.tb.Load(cx.t, g.OffsetAddr(u), 8, /*dep=*/true);    // structure
      EdgeId e = g.OffsetOf(u);
      for (VertexId v : g.Neighbors(u)) {
        if (!cx.Budget(5)) return;
        cx.tb.Load(cx.t, g.NeighborAddr(e), 4);
        cx.tb.Compute(cx.t, 1, /*dep=*/true);
        cx.tb.Compute(cx.t, 1);
        cx.tb.Atomic(cx.t, cx.carve.PropAddr(v), hmc::AtomicOp::kCasEqual8,
                     8, /*want_return=*/true, /*dep=*/true);
        cx.tb.Branch(cx.t, /*dep=*/true);
        ++cx.fp.edges;
        if (!visited[v] && next.size() < cx.qp.max_frontier) {
          visited[v] = 1;
          ++cx.fp.vertices;
          if (!cx.Budget(1)) return;
          cx.tb.Store(cx.t, cx.Slot(qb, next.size()), 4);    // meta: push
          next.push_back(v);
        }
        ++e;
      }
    }
    frontier.swap(next);
    std::swap(qa, qb);
  }
}

void EmitSsspQuery(QueryCtx& cx, VertexId root) {
  const graph::CsrGraph& g = cx.sg.graph();
  constexpr std::int64_t kInf = (1LL << 60);
  std::vector<std::int64_t> dist(g.num_vertices(), kInf);
  std::vector<VertexId> frontier{root};
  dist[root] = 0;
  ++cx.fp.vertices;
  Addr qa = cx.q0, qb = cx.q1;
  for (int hop = 0; hop < cx.qp.max_hops && !frontier.empty(); ++hop) {
    std::vector<VertexId> next;
    for (std::size_t i = 0; i < frontier.size(); ++i) {
      VertexId u = frontier[i];
      if (!cx.Budget(3)) return;
      cx.tb.Load(cx.t, cx.Slot(qa, i), 4);                      // meta: pop
      cx.tb.Load(cx.t, cx.carve.PropAddr(u), 8, /*dep=*/true);  // my distance
      cx.tb.Load(cx.t, g.OffsetAddr(u), 8);                     // structure
      const std::int64_t du = dist[u];
      EdgeId e = g.OffsetOf(u);
      auto neighbors = g.Neighbors(u);
      auto weights = g.Weights(u);
      for (std::size_t j = 0; j < neighbors.size(); ++j) {
        VertexId v = neighbors[j];
        if (!cx.Budget(6)) return;
        cx.tb.Load(cx.t, g.NeighborAddr(e), 4);
        cx.tb.Load(cx.t, g.WeightAddr(e), 4);
        cx.tb.Compute(cx.t, 1, /*dep=*/true);  // nd = du + w
        cx.tb.Compute(cx.t, 1);
        cx.tb.Load(cx.t, cx.carve.PropAddr(v), 8, /*dep=*/true,
                   /*fusable_cmp=*/true);      // relax compare block
        cx.tb.Branch(cx.t, /*dep=*/true);
        ++cx.fp.edges;
        const std::int64_t nd = du + weights[j];
        if (nd < dist[v]) {
          if (!cx.Budget(3)) return;
          cx.tb.Atomic(cx.t, cx.carve.PropAddr(v), hmc::AtomicOp::kCasEqual8,
                       8, /*want_return=*/true, /*dep=*/true);
          cx.tb.Branch(cx.t, /*dep=*/true);
          const bool fresh = dist[v] == kInf;
          dist[v] = nd;
          if (fresh && next.size() < cx.qp.max_frontier) {
            ++cx.fp.vertices;
            cx.tb.Store(cx.t, cx.Slot(qb, next.size()), 4);  // meta: push
            next.push_back(v);
          }
        }
        ++e;
      }
    }
    frontier.swap(next);
    std::swap(qa, qb);
  }
}

// Personalized PageRank, push style: scatter damped mass from the root's
// bounded neighborhood into the tenant's accumulator array. The per-vertex
// body is the batch scatter phase (load rank, load row ptr, fp compute,
// per-edge neighbor load + FP-add atomic); the rooted frontier replaces
// the whole-graph sweep.
void EmitPrankQuery(QueryCtx& cx, VertexId root) {
  const graph::CsrGraph& g = cx.sg.graph();
  std::vector<std::uint8_t> visited(g.num_vertices(), 0);
  std::vector<VertexId> frontier{root};
  visited[root] = 1;
  ++cx.fp.vertices;
  Addr qa = cx.q0, qb = cx.q1;
  for (int hop = 0; hop < cx.qp.max_hops && !frontier.empty(); ++hop) {
    std::vector<VertexId> next;
    for (std::size_t i = 0; i < frontier.size(); ++i) {
      VertexId u = frontier[i];
      if (g.OutDegree(u) == 0) continue;
      if (!cx.Budget(4)) return;
      cx.tb.Load(cx.t, cx.Slot(qa, i), 4);                 // meta: pop
      cx.tb.Load(cx.t, cx.carve.PropAddr(u), 8);           // my rank
      cx.tb.Load(cx.t, g.OffsetAddr(u), 8);                // structure
      cx.tb.Compute(cx.t, 1, /*dep=*/true, /*fp=*/true);   // contrib
      EdgeId e = g.OffsetOf(u);
      for (VertexId v : g.Neighbors(u)) {
        if (!cx.Budget(2)) return;
        cx.tb.Load(cx.t, g.NeighborAddr(e), 4);
        cx.tb.Atomic(cx.t, cx.carve.AuxAddr(v), hmc::AtomicOp::kFpAdd64, 8,
                     /*want_return=*/false, /*dep=*/true);
        ++cx.fp.edges;
        if (!visited[v] && next.size() < cx.qp.max_frontier) {
          visited[v] = 1;
          ++cx.fp.vertices;
          if (!cx.Budget(1)) return;
          cx.tb.Store(cx.t, cx.Slot(qb, next.size()), 4);  // meta: push
          next.push_back(v);
        }
        ++e;
      }
    }
    frontier.swap(next);
    std::swap(qa, qb);
  }
}

// k-NN point query: one HNSW beam search over the shared index, replayed
// as a micro-op stream. Index walks (offset rows, neighbor slots) load
// the shared blocks; the visited-set claim is a CAS-if-equal on the
// tenant's per-vertex prop word; a beam improvement takes a hashed
// striped lock in the tenant's aux array (CAS-acquire, plain-store
// release), publishes the new bound with a CAS-if-less min-swap on the
// root's aux slot, and pushes the candidate into the meta heap scratch.
void EmitKnnQuery(QueryCtx& cx, VertexId root, const ServeRequest& req) {
  const ServedGraph& sg = cx.sg;
  if (!sg.has_ann()) {
    GP_THROW("knn query kind needs the shared ANN index: the served graph "
             "was built with enable_ann off");
  }
  const workloads::AnnParams& ann = sg.options().ann;
  const VertexId n = sg.graph().num_vertices();
  // Distance cost: one fused FP op per 8 lanes (SIMD-width arithmetic).
  const int dist_cycles = (ann.dim + 7) / 8;
  // Lock stripe of v: hashed into the low slots of the aux array.
  const std::uint64_t stripes = std::min<std::uint64_t>(1024, n);
  // Query vector: near the root's vector, perturbation keyed by the
  // request id — deterministic per request, distinct across requests.
  const std::vector<float> q = sg.ann_vectors().QueryNear(root, req.id);
  std::uint64_t pushes = 0;
  bool stop = false;  // budget exhausted: search finishes silently
  auto visitor = [&](const graph::HnswIndex::SearchEvent& ev) {
    using Kind = graph::HnswIndex::SearchEvent::Kind;
    if (stop) return;
    switch (ev.kind) {
      case Kind::kExpand:
        // List header: structure-segment offset row above level 0, the
        // level-0 count word (shared PMR block) at the bottom.
        if (!cx.Budget(1)) { stop = true; return; }
        cx.tb.Load(cx.t, ev.addr, ev.level > 0 ? 8 : 4);
        break;
      case Kind::kNeighbor:
        if (!cx.Budget(2)) { stop = true; return; }
        cx.tb.Load(cx.t, ev.addr, 4);  // neighbor id slot
        cx.tb.Compute(cx.t, dist_cycles, /*dep=*/true, /*fp=*/true);
        ++cx.fp.edges;
        break;
      case Kind::kClaim:
        // Visited-set marking: the check IS the compare half of one CAS
        // on the vertex's in-carve prop word (Fig 3 discipline).
        if (!cx.Budget(2)) { stop = true; return; }
        cx.tb.Atomic(cx.t, cx.carve.PropAddr(ev.v), hmc::AtomicOp::kCasEqual8,
                     8, /*want_return=*/true, /*dep=*/true);
        cx.tb.Branch(cx.t, /*dep=*/true);
        if (ev.hit) ++cx.fp.vertices;
        break;
      case Kind::kImprove:
        if (!cx.Budget(ev.hit ? 5 : 1)) { stop = true; return; }
        cx.tb.Branch(cx.t, /*dep=*/true);  // bound compare
        if (ev.hit) {
          const VertexId s = static_cast<VertexId>(
              SplitMix64(static_cast<std::uint64_t>(ev.v) ^ 0x53545250ULL)
                  .Next() %
              stripes);
          cx.tb.Atomic(cx.t, cx.carve.AuxAddr(s), hmc::AtomicOp::kCasEqual8,
                       8, /*want_return=*/true, /*dep=*/true);
          cx.tb.Atomic(cx.t, cx.carve.AuxAddr(root),
                       hmc::AtomicOp::kCasLess16, 16,
                       /*want_return=*/false, /*dep=*/true);
          cx.tb.Store(cx.t, cx.Slot(cx.q1, pushes++), 4);  // meta: heap push
          cx.tb.Store(cx.t, cx.carve.AuxAddr(s), 8);       // release
        }
        break;
    }
  };
  sg.ann_index().Search(q.data(), ann.k, ann.ef_search, visitor);
}

// --- registry adapters --------------------------------------------------
// Each adapter owns root clamping and context construction; the bodies
// above stay in the shared QueryCtx idiom.

QueryCtx MakeCtx(const ServedGraph& sg, const ServeRequest& req,
                 const QueryParams& qp, workloads::TraceBuilder& tb,
                 int stream) {
  return QueryCtx{sg,
                  sg.carve(req.tenant),
                  tb,
                  qp,
                  stream,
                  sg.QueueAddr(req.tenant, 0),
                  sg.QueueAddr(req.tenant, 1),
                  QueryFootprint{}};
}

VertexId ClampRoot(const ServedGraph& sg, const ServeRequest& req) {
  const VertexId n = sg.graph().num_vertices();
  return req.root < n ? req.root : 0;
}

QueryFootprint EmitBfs(const ServedGraph& sg, const ServeRequest& req,
                       const QueryParams& qp, workloads::TraceBuilder& tb,
                       int stream) {
  QueryCtx cx = MakeCtx(sg, req, qp, tb, stream);
  EmitBfsQuery(cx, ClampRoot(sg, req));
  return cx.fp;
}

QueryFootprint EmitSssp(const ServedGraph& sg, const ServeRequest& req,
                        const QueryParams& qp, workloads::TraceBuilder& tb,
                        int stream) {
  QueryCtx cx = MakeCtx(sg, req, qp, tb, stream);
  EmitSsspQuery(cx, ClampRoot(sg, req));
  return cx.fp;
}

QueryFootprint EmitPrank(const ServedGraph& sg, const ServeRequest& req,
                         const QueryParams& qp, workloads::TraceBuilder& tb,
                         int stream) {
  QueryCtx cx = MakeCtx(sg, req, qp, tb, stream);
  EmitPrankQuery(cx, ClampRoot(sg, req));
  return cx.fp;
}

QueryFootprint EmitKnn(const ServedGraph& sg, const ServeRequest& req,
                       const QueryParams& qp, workloads::TraceBuilder& tb,
                       int stream) {
  QueryCtx cx = MakeCtx(sg, req, qp, tb, stream);
  EmitKnnQuery(cx, ClampRoot(sg, req), req);
  return cx.fp;
}

// Every current kind roots uniformly over the vertex set — the draw the
// traffic generator has always made. A future kind with a different root
// domain (say, high-degree hubs only) registers its own sampler without
// touching the generator.
VertexId SampleRootUniform(std::uint64_t raw, VertexId num_vertices) {
  return static_cast<VertexId>(raw % num_vertices);
}

}  // namespace

const std::vector<QueryEmitter>& QueryEmitters() {
  // Registration order is the QueryKindId assignment — append-only.
  static const std::vector<QueryEmitter> kEmitters = {
      {"bfs", EmitBfs, SampleRootUniform},
      {"sssp", EmitSssp, SampleRootUniform},
      {"prank", EmitPrank, SampleRootUniform},
      {"knn", EmitKnn, SampleRootUniform},
  };
  return kEmitters;
}

int FindQueryKind(const std::string& name) {
  const std::vector<QueryEmitter>& ems = QueryEmitters();
  for (std::size_t i = 0; i < ems.size(); ++i) {
    if (name == ems[i].name) return static_cast<int>(i);
  }
  return -1;
}

const char* QueryKindName(QueryKindId kind) {
  const std::vector<QueryEmitter>& ems = QueryEmitters();
  return kind < ems.size() ? ems[kind].name : "?";
}

QueryFootprint EmitQuery(const ServedGraph& sg, const ServeRequest& req,
                         const QueryParams& qp, workloads::TraceBuilder& tb,
                         int stream) {
  GP_CHECK(req.tenant < sg.num_tenants(), "request tenant out of range");
  const std::vector<QueryEmitter>& ems = QueryEmitters();
  if (req.kind >= ems.size()) {
    GP_THROW("query kind id ", static_cast<int>(req.kind),
             " is not a registered kind (", ems.size(), " registered)");
  }
  return ems[req.kind].emit(sg, req, qp, tb, stream);
}

}  // namespace graphpim::serve
