#include "serve/query.h"

#include <cstdint>
#include <vector>

#include "common/log.h"
#include "graph/generator.h"
#include "hmc/atomic.h"

namespace graphpim::serve {

namespace {

constexpr std::uint64_t RoundUpTo(std::uint64_t v, std::uint64_t unit) {
  return (v + unit - 1) / unit * unit;
}

}  // namespace

ServedGraph::ServedGraph(const Options& opts) : opts_(opts) {
  if (opts.num_vertices == 0) GP_THROW("served graph needs vertices");
  if (opts.num_tenants == 0) {
    GP_THROW("served graph needs at least one tenant");
  }
  graph::EdgeList el =
      graph::GenerateProfile(opts.profile, opts.num_vertices, opts.seed);
  graph_ = std::make_unique<graph::CsrGraph>(el, space_);

  const std::uint64_t page = graph::AddressSpace::kPmrPageBytes;
  const std::uint64_t seg_bytes = RoundUpTo(
      static_cast<std::uint64_t>(graph_->num_vertices()) *
          graph::kVertexPropertyStride,
      page);
  carves_.reserve(opts.num_tenants);
  queue_addr_.reserve(opts.num_tenants * 2);
  for (std::uint32_t t = 0; t < opts.num_tenants; ++t) {
    TenantCarve c;
    c.tenant = t;
    // Whole-page allocations from the PMR bump allocator are contiguous,
    // so [prop_base, end) is exactly this tenant's page set — disjoint
    // from every other tenant's by construction.
    c.prop_base = space_.PmrMalloc(seg_bytes, page);
    c.aux_base = space_.PmrMalloc(seg_bytes, page);
    GP_CHECK(c.aux_base == c.prop_base + seg_bytes,
             "tenant carve segments must be contiguous");
    c.end = c.aux_base + seg_bytes;
    carves_.push_back(c);
    queue_addr_.push_back(space_.meta().Allocate(kQueueSlots * 4));
    queue_addr_.push_back(space_.meta().Allocate(kQueueSlots * 4));
  }
}

int ServedGraph::OwnerOf(Addr a) const {
  for (const TenantCarve& c : carves_) {
    if (c.Contains(a)) return static_cast<int>(c.tenant);
  }
  return -1;
}

namespace {

// Shared bounded-traversal plumbing for the three query kinds. Each op
// pattern below mirrors the per-neighbor body of the matching batch
// workload (src/workloads/{bfs,sssp,prank}.cc) so a serve replay exercises
// the same property/structure/meta mix the paper characterizes.
struct QueryCtx {
  const ServedGraph& sg;
  const TenantCarve& carve;
  workloads::TraceBuilder& tb;
  const QueryParams& qp;
  int t;  // stream
  Addr q0, q1;  // ping-pong frontier queues (meta scratch)
  QueryFootprint fp;

  bool Budget(std::uint64_t cost) {
    if (fp.ops + cost > qp.op_budget) return false;
    fp.ops += cost;
    return true;
  }
  Addr Slot(Addr q, std::size_t i) const {
    return q + (i % ServedGraph::kQueueSlots) * 4;
  }
};

void EmitBfsQuery(QueryCtx& cx, VertexId root) {
  const graph::CsrGraph& g = cx.sg.graph();
  std::vector<std::uint8_t> visited(g.num_vertices(), 0);
  std::vector<VertexId> frontier{root};
  visited[root] = 1;
  ++cx.fp.vertices;
  Addr qa = cx.q0, qb = cx.q1;
  for (int hop = 0; hop < cx.qp.max_hops && !frontier.empty(); ++hop) {
    std::vector<VertexId> next;
    for (std::size_t i = 0; i < frontier.size(); ++i) {
      VertexId u = frontier[i];
      if (!cx.Budget(2)) return;
      cx.tb.Load(cx.t, cx.Slot(qa, i), 4);                   // meta: pop
      cx.tb.Load(cx.t, g.OffsetAddr(u), 8, /*dep=*/true);    // structure
      EdgeId e = g.OffsetOf(u);
      for (VertexId v : g.Neighbors(u)) {
        if (!cx.Budget(5)) return;
        cx.tb.Load(cx.t, g.NeighborAddr(e), 4);
        cx.tb.Compute(cx.t, 1, /*dep=*/true);
        cx.tb.Compute(cx.t, 1);
        cx.tb.Atomic(cx.t, cx.carve.PropAddr(v), hmc::AtomicOp::kCasEqual8,
                     8, /*want_return=*/true, /*dep=*/true);
        cx.tb.Branch(cx.t, /*dep=*/true);
        ++cx.fp.edges;
        if (!visited[v] && next.size() < cx.qp.max_frontier) {
          visited[v] = 1;
          ++cx.fp.vertices;
          if (!cx.Budget(1)) return;
          cx.tb.Store(cx.t, cx.Slot(qb, next.size()), 4);    // meta: push
          next.push_back(v);
        }
        ++e;
      }
    }
    frontier.swap(next);
    std::swap(qa, qb);
  }
}

void EmitSsspQuery(QueryCtx& cx, VertexId root) {
  const graph::CsrGraph& g = cx.sg.graph();
  constexpr std::int64_t kInf = (1LL << 60);
  std::vector<std::int64_t> dist(g.num_vertices(), kInf);
  std::vector<VertexId> frontier{root};
  dist[root] = 0;
  ++cx.fp.vertices;
  Addr qa = cx.q0, qb = cx.q1;
  for (int hop = 0; hop < cx.qp.max_hops && !frontier.empty(); ++hop) {
    std::vector<VertexId> next;
    for (std::size_t i = 0; i < frontier.size(); ++i) {
      VertexId u = frontier[i];
      if (!cx.Budget(3)) return;
      cx.tb.Load(cx.t, cx.Slot(qa, i), 4);                      // meta: pop
      cx.tb.Load(cx.t, cx.carve.PropAddr(u), 8, /*dep=*/true);  // my distance
      cx.tb.Load(cx.t, g.OffsetAddr(u), 8);                     // structure
      const std::int64_t du = dist[u];
      EdgeId e = g.OffsetOf(u);
      auto neighbors = g.Neighbors(u);
      auto weights = g.Weights(u);
      for (std::size_t j = 0; j < neighbors.size(); ++j) {
        VertexId v = neighbors[j];
        if (!cx.Budget(6)) return;
        cx.tb.Load(cx.t, g.NeighborAddr(e), 4);
        cx.tb.Load(cx.t, g.WeightAddr(e), 4);
        cx.tb.Compute(cx.t, 1, /*dep=*/true);  // nd = du + w
        cx.tb.Compute(cx.t, 1);
        cx.tb.Load(cx.t, cx.carve.PropAddr(v), 8, /*dep=*/true,
                   /*fusable_cmp=*/true);      // relax compare block
        cx.tb.Branch(cx.t, /*dep=*/true);
        ++cx.fp.edges;
        const std::int64_t nd = du + weights[j];
        if (nd < dist[v]) {
          if (!cx.Budget(3)) return;
          cx.tb.Atomic(cx.t, cx.carve.PropAddr(v), hmc::AtomicOp::kCasEqual8,
                       8, /*want_return=*/true, /*dep=*/true);
          cx.tb.Branch(cx.t, /*dep=*/true);
          const bool fresh = dist[v] == kInf;
          dist[v] = nd;
          if (fresh && next.size() < cx.qp.max_frontier) {
            ++cx.fp.vertices;
            cx.tb.Store(cx.t, cx.Slot(qb, next.size()), 4);  // meta: push
            next.push_back(v);
          }
        }
        ++e;
      }
    }
    frontier.swap(next);
    std::swap(qa, qb);
  }
}

// Personalized PageRank, push style: scatter damped mass from the root's
// bounded neighborhood into the tenant's accumulator array. The per-vertex
// body is the batch scatter phase (load rank, load row ptr, fp compute,
// per-edge neighbor load + FP-add atomic); the rooted frontier replaces
// the whole-graph sweep.
void EmitPrankQuery(QueryCtx& cx, VertexId root) {
  const graph::CsrGraph& g = cx.sg.graph();
  std::vector<std::uint8_t> visited(g.num_vertices(), 0);
  std::vector<VertexId> frontier{root};
  visited[root] = 1;
  ++cx.fp.vertices;
  Addr qa = cx.q0, qb = cx.q1;
  for (int hop = 0; hop < cx.qp.max_hops && !frontier.empty(); ++hop) {
    std::vector<VertexId> next;
    for (std::size_t i = 0; i < frontier.size(); ++i) {
      VertexId u = frontier[i];
      if (g.OutDegree(u) == 0) continue;
      if (!cx.Budget(4)) return;
      cx.tb.Load(cx.t, cx.Slot(qa, i), 4);                 // meta: pop
      cx.tb.Load(cx.t, cx.carve.PropAddr(u), 8);           // my rank
      cx.tb.Load(cx.t, g.OffsetAddr(u), 8);                // structure
      cx.tb.Compute(cx.t, 1, /*dep=*/true, /*fp=*/true);   // contrib
      EdgeId e = g.OffsetOf(u);
      for (VertexId v : g.Neighbors(u)) {
        if (!cx.Budget(2)) return;
        cx.tb.Load(cx.t, g.NeighborAddr(e), 4);
        cx.tb.Atomic(cx.t, cx.carve.AuxAddr(v), hmc::AtomicOp::kFpAdd64, 8,
                     /*want_return=*/false, /*dep=*/true);
        ++cx.fp.edges;
        if (!visited[v] && next.size() < cx.qp.max_frontier) {
          visited[v] = 1;
          ++cx.fp.vertices;
          if (!cx.Budget(1)) return;
          cx.tb.Store(cx.t, cx.Slot(qb, next.size()), 4);  // meta: push
          next.push_back(v);
        }
        ++e;
      }
    }
    frontier.swap(next);
    std::swap(qa, qb);
  }
}

}  // namespace

QueryFootprint EmitQuery(const ServedGraph& sg, const ServeRequest& req,
                         const QueryParams& qp, workloads::TraceBuilder& tb,
                         int stream) {
  GP_CHECK(req.tenant < sg.num_tenants(), "request tenant out of range");
  const VertexId n = sg.graph().num_vertices();
  const VertexId root = req.root < n ? req.root : 0;
  QueryCtx cx{sg,
              sg.carve(req.tenant),
              tb,
              qp,
              stream,
              sg.QueueAddr(req.tenant, 0),
              sg.QueueAddr(req.tenant, 1),
              QueryFootprint{}};
  switch (req.kind) {
    case QueryKind::kBfs:
      EmitBfsQuery(cx, root);
      break;
    case QueryKind::kSssp:
      EmitSsspQuery(cx, root);
      break;
    case QueryKind::kPageRank:
      EmitPrankQuery(cx, root);
      break;
    case QueryKind::kCount:
      GP_THROW("invalid query kind");
  }
  return cx.fp;
}

}  // namespace graphpim::serve
