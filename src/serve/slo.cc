#include "serve/slo.h"

#include <algorithm>
#include <cmath>

#include "common/string_util.h"

namespace graphpim::serve {

double QuantileSorted(const std::vector<double>& sorted, double q) {
  if (sorted.empty()) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  const double pos = q * static_cast<double>(sorted.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(pos);
  if (lo + 1 >= sorted.size()) return sorted.back();
  const double frac = pos - static_cast<double>(lo);
  return sorted[lo] + (sorted[lo + 1] - sorted[lo]) * frac;
}

void FoldServeStats(const ServePoint& pt, StatRegistry* reg) {
  if (reg == nullptr) return;
  reg->Set("serve.offered", static_cast<double>(pt.offered));
  reg->Set("serve.served", static_cast<double>(pt.served));
  reg->Set("serve.dropped", static_cast<double>(pt.dropped));
  reg->Set("serve.drop_rate", pt.drop_rate);
  reg->Set("serve.batches", static_cast<double>(pt.batches));
  reg->Set("serve.replayed_ops", static_cast<double>(pt.replayed_ops));
  reg->Set("serve.latency.p50_ns", pt.p50_ns);
  reg->Set("serve.latency.p95_ns", pt.p95_ns);
  reg->Set("serve.latency.p99_ns", pt.p99_ns);
  reg->Set("serve.latency.mean_ns", pt.mean_ns);
  reg->Set("serve.latency.max_ns", pt.max_ns);
  reg->Set("serve.queue.mean_depth", pt.queue_mean);
  reg->Set("serve.queue.peak_depth", static_cast<double>(pt.queue_peak));
  reg->Set("serve.queue.limit_depth", static_cast<double>(pt.queue_limit));
  reg->Set("serve.util", pt.util);
  reg->Set("serve.achieved_qps", pt.achieved_qps);
  reg->Set("serve.horizon_ns", pt.horizon_ns);
  for (std::size_t t = 0; t < pt.tenants.size(); ++t) {
    const TenantSlo& slo = pt.tenants[t];
    const std::string base = StrFormat("serve.tenant%zu.", t);
    reg->Set(base + "offered", static_cast<double>(slo.offered));
    reg->Set(base + "served", static_cast<double>(slo.served));
    reg->Set(base + "dropped", static_cast<double>(slo.dropped));
    reg->Set(base + "p50_ns", slo.p50_ns);
    reg->Set(base + "p95_ns", slo.p95_ns);
    reg->Set(base + "p99_ns", slo.p99_ns);
  }
}

std::string FormatSaturationTable(const std::vector<ServePoint>& points) {
  std::string out =
      StrFormat("%-14s %10s %7s %7s %6s %9s %9s %9s %6s %6s %5s %12s\n",
                "config", "qps", "offered", "served", "drop%", "p50_us",
                "p95_us", "p99_us", "qmean", "qpeak", "util", "achieved_qps");
  for (const ServePoint& p : points) {
    out += StrFormat(
        "%-14s %10.0f %7llu %7llu %5.1f%% %9.2f %9.2f %9.2f %6.2f %6llu "
        "%5.2f %12.0f\n",
        p.config_name.c_str(), p.qps,
        static_cast<unsigned long long>(p.offered),
        static_cast<unsigned long long>(p.served), 100.0 * p.drop_rate,
        p.p50_ns / 1e3, p.p95_ns / 1e3, p.p99_ns / 1e3, p.queue_mean,
        static_cast<unsigned long long>(p.queue_peak), p.util,
        p.achieved_qps);
  }
  return out;
}

KneeSummary FindKnee(const std::vector<ServePoint>& series, double latency_x,
                     double max_drop) {
  KneeSummary k;
  if (series.empty()) return k;
  k.config_name = series.front().config_name;
  // The light-load reference: p99 of the series' lowest-qps point. The
  // knee is where the latency curve departs that floor, which on a short
  // open-loop run bends well before drops show up.
  const ServePoint* lightest = &series.front();
  for (const ServePoint& p : series) {
    if (p.qps < lightest->qps) lightest = &p;
  }
  const double p99_budget = latency_x * lightest->p99_ns;
  for (const ServePoint& p : series) {
    const bool queue_filled =
        p.queue_limit > 0 && p.queue_peak >= p.queue_limit;
    const bool keeps_up = p.qps > 0.0 && p.drop_rate <= max_drop &&
                          !queue_filled && p.p99_ns <= p99_budget;
    if (keeps_up) {
      if (p.qps > k.knee_qps) k.knee_qps = p.qps;
    } else {
      k.saturated = true;
    }
  }
  return k;
}

std::string FormatKneeSummary(const std::vector<ServePoint>& points) {
  // Group by config in first-appearance order (the grid's config-major
  // layout already clusters them; this stays correct regardless).
  std::vector<std::string> order;
  std::string out;
  for (const ServePoint& p : points) {
    if (std::find(order.begin(), order.end(), p.config_name) != order.end()) {
      continue;
    }
    order.push_back(p.config_name);
    std::vector<ServePoint> series;
    for (const ServePoint& q : points) {
      if (q.config_name == p.config_name) series.push_back(q);
    }
    const KneeSummary k = FindKnee(series);
    if (k.knee_qps <= 0.0) {
      out += StrFormat("%-14s saturated at every grid point\n",
                       k.config_name.c_str());
    } else if (k.saturated) {
      out += StrFormat("%-14s knee at %.0f qps\n", k.config_name.c_str(),
                       k.knee_qps);
    } else {
      out += StrFormat("%-14s knee >= %.0f qps (grid never saturated it)\n",
                       k.config_name.c_str(), k.knee_qps);
    }
  }
  return out;
}

namespace {

// Gauge lookup by name; windows carry a small fixed list, linear scan.
double GaugeOr(const telemetry::TimelineWindow& w, const char* name,
               double fallback = 0.0) {
  for (const auto& [k, v] : w.gauges) {
    if (k == name) return v;
  }
  return fallback;
}

}  // namespace

std::string TimelineNote(const telemetry::Timeline& tl) {
  if (tl.windows.empty()) return "";
  const telemetry::TimelineWindow& w = tl.windows.back();
  return StrFormat("qps=%.3g p99=%.0fus q=%.0f",
                   GaugeOr(w, "serve.achieved_qps"),
                   GaugeOr(w, "serve.p99_ns") / 1e3,
                   GaugeOr(w, "serve.queue_depth"));
}

std::string FormatServeTimeline(const std::vector<ServePoint>& points) {
  bool any = false;
  for (const ServePoint& p : points) any = any || !p.timeline.empty();
  if (!any) return "";
  std::string out = StrFormat(
      "%-24s %4s %10s %5s %5s %5s %5s %9s %9s %4s %4s  %s\n", "point", "win",
      "t0_us", "arr", "adm", "drop", "done", "p50_us", "p99_us", "q", "fly",
      "tenant burn");
  for (const ServePoint& p : points) {
    const std::string name =
        StrFormat("%s@qps=%.0f", p.config_name.c_str(), p.qps);
    for (const telemetry::TimelineWindow& w : p.timeline.windows) {
      std::string burn;
      for (const auto& [k, v] : w.gauges) {
        if (k.size() > 9 && k.compare(k.size() - 9, 9, ".slo_burn") == 0) {
          if (!burn.empty()) burn += ' ';
          burn += StrFormat("%.2f", v);
        }
      }
      out += StrFormat(
          "%-24s %4llu %10.1f %5.0f %5.0f %5.0f %5.0f %9.2f %9.2f %4.0f "
          "%4.0f  %s\n",
          name.c_str(), static_cast<unsigned long long>(w.index),
          static_cast<double>(w.start) / (1e3 * kTicksPerNs),
          GaugeOr(w, "serve.arrivals"), GaugeOr(w, "serve.admitted"),
          GaugeOr(w, "serve.dropped"), GaugeOr(w, "serve.completed"),
          GaugeOr(w, "serve.p50_ns") / 1e3, GaugeOr(w, "serve.p99_ns") / 1e3,
          GaugeOr(w, "serve.queue_depth"), GaugeOr(w, "serve.inflight"),
          burn.c_str());
    }
    if (p.timeline.dropped_windows > 0) {
      out += StrFormat("%-24s ... %llu windows past telemetry.max_windows "
                       "dropped\n",
                       name.c_str(),
                       static_cast<unsigned long long>(
                           p.timeline.dropped_windows));
    }
  }
  return out;
}

trace::PhaseLog BuildServePhases(const std::vector<ServePoint>& points) {
  trace::PhaseLog log;
  // Cut() records deltas against the previous cut, so feed it a running
  // accumulation of the points' registries: each phase's deltas are then
  // exactly that point's own contribution. Phases tile a synthetic
  // timeline where each point occupies its simulated horizon.
  StatRegistry cum;
  Tick clock = 0;
  for (const ServePoint& p : points) {
    cum.Merge(p.raw);
    const Tick dur = NsToTicks(p.horizon_ns);
    log.Cut(StrFormat("%s@qps=%.0f", p.config_name.c_str(), p.qps), clock,
            clock + dur, cum);
    clock += dur;
  }
  return log;
}

}  // namespace graphpim::serve
