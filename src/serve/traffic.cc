#include "serve/traffic.h"

#include <cmath>

#include "common/log.h"
#include "common/random.h"
#include "common/string_util.h"
#include "serve/query.h"

namespace graphpim::serve {

namespace {

// Stream tags keep the per-purpose draw streams decorrelated while staying
// pure functions of the spec seed (same discipline as span.cc's kSpanSalt).
constexpr std::uint64_t kArrivalStream = 0x7365727665'41'5252ULL;  // "serve ARR"
constexpr std::uint64_t kKindStream = 0x7365727665'4b'4e44ULL;     // "serve KND"
constexpr std::uint64_t kTenantStream = 0x7365727665'54'4e54ULL;   // "serve TNT"
constexpr std::uint64_t kRootStream = 0x7365727665'52'4f54ULL;     // "serve ROT"
constexpr std::uint64_t kBurstStream = 0x7365727665'42'5354ULL;    // "serve BST"

std::uint64_t DrawU64(std::uint64_t seed, std::uint64_t stream_tag,
                      std::uint64_t index) {
  // Two rounds: one to fold the user seed into the stream tag, one to fold
  // in the counter. Purely value-dependent — no sequential generator state
  // — so any draw can be recomputed in isolation.
  const std::uint64_t stream_seed = SplitMix64(seed ^ stream_tag).Next();
  return SplitMix64(stream_seed ^ (index * 0x9e3779b97f4a7c15ULL)).Next();
}

std::string RegisteredKindNames() {
  std::string names;
  for (const QueryEmitter& e : QueryEmitters()) {
    if (!names.empty()) names += "|";
    names += e.name;
  }
  return names;
}

}  // namespace

const char* ToString(ArrivalModel m) {
  return m == ArrivalModel::kPoisson ? "poisson" : "bursty";
}

ArrivalModel ParseArrivalModel(const std::string& s) {
  if (s == "poisson") return ArrivalModel::kPoisson;
  if (s == "bursty" || s == "mmpp") return ArrivalModel::kBursty;
  GP_THROW("unknown arrival model '", s, "' (want poisson|bursty)");
}

std::vector<MixEntry> ParseMixSpec(const std::string& s) {
  std::vector<MixEntry> mix;
  for (const std::string& part : Split(s, ',')) {
    const std::string piece = Trim(part);
    if (piece.empty()) continue;
    const std::size_t eq = piece.find('=');
    if (eq == std::string::npos) {
      mix.emplace_back(piece, 1.0);  // bare name: weight 1
      continue;
    }
    const std::string name = Trim(piece.substr(0, eq));
    const std::string val = Trim(piece.substr(eq + 1));
    if (name.empty()) GP_THROW("empty kind name in mix spec '", s, "'");
    try {
      mix.emplace_back(name, std::stod(val));
    } catch (const std::exception&) {
      GP_THROW("bad weight '", val, "' for kind '", name, "' in mix spec");
    }
  }
  if (mix.empty()) GP_THROW("mix spec '", s, "' names no query kinds");
  return mix;
}

double UniformDraw(std::uint64_t seed, std::uint64_t stream_tag,
                   std::uint64_t index) {
  return static_cast<double>(DrawU64(seed, stream_tag, index) >> 11) *
         0x1.0p-53;
}

std::vector<ServeRequest> GenerateSchedule(const TrafficSpec& spec) {
  if (spec.num_vertices == 0) GP_THROW("traffic spec needs num_vertices > 0");
  if (spec.num_requests == 0) GP_THROW("traffic spec needs num_requests > 0");
  if (!(spec.qps > 0.0)) GP_THROW("traffic spec needs qps > 0");
  if (spec.num_tenants == 0) GP_THROW("traffic spec needs num_tenants > 0");
  if (spec.burst_mult < 1.0) {
    GP_THROW("traffic spec burst_mult must be >= 1, got ", spec.burst_mult);
  }
  if (spec.p_enter_burst <= 0.0 || spec.p_enter_burst >= 1.0 ||
      spec.p_exit_burst <= 0.0 || spec.p_exit_burst >= 1.0) {
    GP_THROW("traffic spec burst transition probabilities must lie in (0,1)");
  }
  if (spec.mix.empty()) GP_THROW("traffic spec needs a non-empty query mix");

  // Resolve the named mix against the registry once, in mix order. The
  // cumulative-threshold walk below then reproduces the historical
  // hard-coded comparisons exactly for the classic {bfs,sssp,prank} mix.
  const std::vector<QueryEmitter>& emitters = QueryEmitters();
  std::vector<QueryKindId> kinds;
  std::vector<double> weights;
  kinds.reserve(spec.mix.size());
  weights.reserve(spec.mix.size());
  double wsum = 0.0;
  for (const MixEntry& me : spec.mix) {
    const int k = FindQueryKind(me.first);
    if (k < 0) {
      GP_THROW("unknown query kind '", me.first, "' in traffic mix (want ",
               RegisteredKindNames(), ")");
    }
    if (me.second < 0.0) {
      GP_THROW("traffic mix weight for '", me.first, "' must be >= 0, got ",
               me.second);
    }
    kinds.push_back(static_cast<QueryKindId>(k));
    weights.push_back(me.second);
    wsum += me.second;
  }
  if (wsum <= 0.0) {
    weights[0] = wsum = 1.0;  // degenerate mix: everything the first kind
  }

  // Bursty normalization: with per-arrival transition probabilities the
  // state chain's stationary burst share is p_enter/(p_enter+p_exit). The
  // long-run throughput is N / sum(interarrivals), so the constraint is on
  // the MEAN INTERARRIVAL (harmonic in the rates), not the mean rate:
  //   pi_slow/slow_mult + pi_burst/burst_mult = 1
  // keeps it exactly 1/qps, so the offered-load axis stays honest. For
  // burst_mult >= 1 and pi_burst in (0,1) the solution always lies in
  // (0, 1] — no clamping needed.
  const double pi_burst =
      spec.p_enter_burst / (spec.p_enter_burst + spec.p_exit_burst);
  double slow_mult = 1.0;
  if (spec.model == ArrivalModel::kBursty) {
    slow_mult = (1.0 - pi_burst) / (1.0 - pi_burst / spec.burst_mult);
  }

  std::vector<ServeRequest> sched;
  sched.reserve(spec.num_requests);
  double clock_ns = 0.0;
  bool burst = false;
  for (std::uint64_t i = 0; i < spec.num_requests; ++i) {
    double rate = spec.qps;
    if (spec.model == ArrivalModel::kBursty) {
      // State transition between arrival i-1 and i (request 0 starts slow).
      if (i > 0) {
        const double u = UniformDraw(spec.seed, kBurstStream, i);
        if (burst ? (u < spec.p_exit_burst) : (u < spec.p_enter_burst)) {
          burst = !burst;
        }
      }
      rate *= burst ? spec.burst_mult : slow_mult;
    }
    // Exponential interarrival by inverse CDF; 1-u keeps the argument of
    // log strictly positive for u in [0,1).
    const double u = UniformDraw(spec.seed, kArrivalStream, i);
    clock_ns += -std::log(1.0 - u) / rate * 1e9;

    ServeRequest r;
    r.id = i;
    r.arrival = NsToTicks(clock_ns);
    r.tenant = static_cast<std::uint32_t>(DrawU64(spec.seed, kTenantStream, i) %
                                          spec.num_tenants);
    // Cumulative-weight kind draw in mix order; the fallthrough (possible
    // only by FP rounding at the top edge) lands on the last entry, which
    // is what the historical ternary chain did too.
    const double uk = UniformDraw(spec.seed, kKindStream, i) * wsum;
    std::size_t pick = kinds.size() - 1;
    double acc = 0.0;
    for (std::size_t j = 0; j < kinds.size(); ++j) {
      acc += weights[j];
      if (uk < acc) {
        pick = j;
        break;
      }
    }
    r.kind = kinds[pick];
    r.root = emitters[r.kind].sample_root(DrawU64(spec.seed, kRootStream, i),
                                          spec.num_vertices);
    sched.push_back(r);
  }
  return sched;
}

}  // namespace graphpim::serve
