// The serving engine: admission, batching, dispatch, and the qps grid.
//
// A serve *point* is one steady-state experiment: replay one traffic
// schedule against one machine config at one offered load, through an
// admission queue and a fixed number of batch-dispatch slots. Service
// times come from real RunSimulation replays of the batched query traces
// (one trace stream per query, so batched queries genuinely contend for
// the machine's cubes/links/FUs), stitched into a virtual-time queueing
// simulation. Latency = completion − arrival in simulated time.
//
// DETERMINISM CONTRACT (same shape as src/exec/sweep.h): RunServePoint is
// a pure function of (graph, params) — the schedule is value-derived, the
// queueing simulation advances virtual time only, and every replay is the
// deterministic core simulator. RunServeGrid parallelizes over *points*
// on the shared ThreadPool and harvests futures in grid order, so the
// result table is bit-identical for --jobs=1 and --jobs=N. Only wall-time
// metadata and pool.* occupancy counters may differ between runs.
#ifndef GRAPHPIM_SERVE_ENGINE_H_
#define GRAPHPIM_SERVE_ENGINE_H_

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "common/stats.h"
#include "core/sim_config.h"
#include "exec/sweep.h"
#include "exec/thread_pool.h"
#include "serve/query.h"
#include "serve/traffic.h"
#include "telemetry/timeline.h"

namespace graphpim::serve {

// What happens when a request arrives and the admission queue is full.
//   kTail — reject the arriving request (classic tail drop).
//   kHead — drop the oldest queued request and admit the new one (the
//           queued one is stalest and most likely to miss its SLO anyway).
enum class DropPolicy : std::uint8_t { kTail = 0, kHead };

const char* ToString(DropPolicy p);
DropPolicy ParseDropPolicy(const std::string& s);

// Everything one serve point needs besides the resident graph.
struct ServeParams {
  core::SimConfig cfg;          // machine under test
  TrafficSpec traffic;          // qps/model/length; num_vertices is filled
                                // from the graph by RunServePoint
  QueryParams query;
  std::size_t queue_depth = 64; // admission queue capacity
  DropPolicy drop = DropPolicy::kTail;
  int slots = 2;                // concurrent batch-dispatch slots
  std::size_t batch_max = 4;    // queries per batch == trace streams;
                                // must be <= cfg.num_cores
  double dispatch_ns = 500.0;   // host-side batch assembly/dispatch cost

  // Per-request latency SLO target in simulated ns; feeds the per-window
  // per-tenant SLO burn-rate gauge (fraction of a tenant's completions in
  // the window over target). 0 = no target (burn gauge reads 0).
  double slo_ns = 0.0;
};

// Per-tenant slice of a point's SLO accounting.
struct TenantSlo {
  std::uint64_t offered = 0;
  std::uint64_t served = 0;
  std::uint64_t dropped = 0;
  double p50_ns = 0.0, p95_ns = 0.0, p99_ns = 0.0;
  double mean_ns = 0.0, max_ns = 0.0;
};

// One finished serve point (one row of the saturation table).
struct ServePoint {
  std::string config_name;  // e.g. "GraphPIM-c4" (set by the grid caller)
  double qps = 0.0;         // nominal offered load

  std::uint64_t offered = 0;
  std::uint64_t served = 0;
  std::uint64_t dropped = 0;
  double drop_rate = 0.0;       // dropped / offered

  // Request latency (admission to batch completion), simulated ns.
  double p50_ns = 0.0, p95_ns = 0.0, p99_ns = 0.0;
  double mean_ns = 0.0, max_ns = 0.0;

  double queue_mean = 0.0;       // queue depth sampled at each arrival
  std::uint64_t queue_peak = 0;
  std::size_t queue_limit = 0;   // configured admission-queue depth

  double util = 0.0;            // busy slot-time / (horizon x slots)
  double achieved_qps = 0.0;    // served / simulated horizon
  double horizon_ns = 0.0;      // first arrival to last completion

  std::uint64_t batches = 0;
  std::uint64_t replayed_ops = 0;  // micro-ops across all batch replays

  std::vector<TenantSlo> tenants;

  // serve.* SLO counters plus the merged machine registries of every
  // batch replay (cache/cube/link counters aggregate across the point).
  StatRegistry raw;

  // Virtual-time telemetry windows (DESIGN.md §17): filled only when
  // cfg.telemetry_window_ns > 0. Windows carry gauges only (serve.*
  // per-window arrivals/drops/latency quantiles/queue depth and per-tenant
  // SLO burn); the batch replays inside a point never build samplers.
  telemetry::Timeline timeline;
};

// Runs one point to completion. Pure function; safe to call concurrently
// on a shared ServedGraph. Throws SimError on inconsistent params
// (batch_max > cfg.num_cores, zero slots/batch, empty schedule).
ServePoint RunServePoint(const ServedGraph& sg, const ServeParams& params);

// A (config x qps) grid, run in parallel over a ThreadPool and harvested
// in grid order (config-major, then qps — the determinism contract).
struct ServeGridResult {
  std::vector<ServePoint> points;  // configs.size() * qps_grid.size() rows
  double total_wall_ms = 0.0;      // metadata, not part of the contract
  exec::PoolStats pool;            // metadata: pool occupancy of the run
  StatRegistry pool_stats;         // pool.* export (metadata)
};

// `base` supplies everything except cfg (taken per config) and qps (taken
// per grid column). on_progress (optional) is invoked serially under a
// lock as each point retires, completion-ordered — reuse
// exec::StderrHeartbeat for the standard --progress output.
ServeGridResult RunServeGrid(
    const ServedGraph& sg, const ServeParams& base,
    const std::vector<std::pair<std::string, core::SimConfig>>& configs,
    const std::vector<double>& qps_grid, int jobs,
    const std::function<void(const exec::SweepProgress&)>& on_progress = {});

}  // namespace graphpim::serve

#endif  // GRAPHPIM_SERVE_ENGINE_H_
