// Synthetic query traffic for the serving engine (DESIGN.md §13).
//
// A traffic schedule is a time-ordered list of graph point-queries
// against the resident graph, drawn from the name-keyed QueryEmitter
// registry (serve/query.h): bfs, sssp, prank, knn. Generation is open
// loop: arrival times do not depend on how fast the machine under test
// serves, which is what makes a saturation sweep meaningful (offered
// load is an independent variable).
//
// DETERMINISM CONTRACT: every draw is value-derived — a counter-based
// SplitMix64 hash of (seed, stream tag, request index), the same
// discipline the span recorder uses for sampling. The schedule for a
// given spec is therefore bit-identical across --jobs counts, platforms,
// and reruns. Request identity (tenant, kind, root) depends only on the
// request index, NOT on the arrival rate, so every point of a --qps-grid
// sweep serves the same request population and differs only in arrival
// spacing — offered load stays a paired comparison.
#ifndef GRAPHPIM_SERVE_TRAFFIC_H_
#define GRAPHPIM_SERVE_TRAFFIC_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "common/types.h"

namespace graphpim::serve {

// Index into the QueryEmitter registry (serve/query.h). There is no kind
// enum and no kCount sentinel: the registry IS the set of kinds, and its
// size is the kind count. Requests carry the id; names exist only at the
// spec boundary (mix parsing, reports).
using QueryKindId = std::uint8_t;

// Arrival process shapes.
//   kPoisson — open-loop Poisson: i.i.d. exponential interarrivals.
//   kBursty  — two-state Markov-modulated Poisson (MMPP-style): a slow
//              and a burst state with hashed state transitions between
//              consecutive arrivals; rates are normalized so the long-run
//              offered load still equals the nominal qps.
enum class ArrivalModel : std::uint8_t { kPoisson = 0, kBursty };

const char* ToString(ArrivalModel m);

// "poisson" | "bursty" -> model; throws SimError on anything else.
ArrivalModel ParseArrivalModel(const std::string& s);

// One admitted unit of work.
struct ServeRequest {
  std::uint64_t id = 0;        // == request index in the schedule
  std::uint32_t tenant = 0;
  QueryKindId kind = 0;        // registry index (0 == first registered: bfs)
  VertexId root = 0;
  Tick arrival = 0;            // open-loop arrival time (simulated)
};

// Per-kind named weight of the traffic mix, in draw order. Order matters
// for bit-identity: the kind draw walks the cumulative weights in mix
// order, so {bfs,sssp,prank} with weights {.5,.3,.2} reproduces the
// historical three-kind threshold comparisons exactly.
using MixEntry = std::pair<std::string, double>;

// "--mix=knn=1" / "--mix=bfs=0.5,sssp=0.3,prank=0.2" -> entries in flag
// order. A bare name means weight 1. Throws SimError on malformed pieces;
// kind names are validated later, by GenerateSchedule, against the
// registry (so this parser has no registry dependency).
std::vector<MixEntry> ParseMixSpec(const std::string& s);

struct TrafficSpec {
  ArrivalModel model = ArrivalModel::kPoisson;
  double qps = 1e6;                 // nominal offered load (queries/s,
                                    // simulated time)
  std::size_t num_requests = 48;    // schedule length
  std::uint32_t num_tenants = 2;
  VertexId num_vertices = 0;        // root domain; must be > 0
  // Query-kind mix: (registered kind name, weight), normalized internally.
  // An unknown name is a SimError naming the offender; an all-zero mix
  // degenerates to the first entry's kind only.
  std::vector<MixEntry> mix{{"bfs", 0.5}, {"sssp", 0.3}, {"prank", 0.2}};
  // Bursty-model shape: burst-state rate multiplier and per-arrival
  // transition probabilities (slow->burst, burst->slow).
  double burst_mult = 8.0;
  double p_enter_burst = 0.10;
  double p_exit_burst = 0.30;
  std::uint64_t seed = 1;
};

// A uniform double in [0, 1) that is a pure function of
// (seed, stream tag, index) — the value-derived SplitMix64 stream the
// schedule generator draws from. Exposed for tests.
double UniformDraw(std::uint64_t seed, std::uint64_t stream_tag,
                   std::uint64_t index);

// Expands `spec` into its full arrival schedule, sorted by arrival time
// (arrivals are generated as a cumulative sum, so the order is inherent).
// Kind names resolve through the QueryEmitter registry; roots come from
// each kind's registered root sampler. Throws SimError on a degenerate
// spec (no vertices, no requests, non-positive qps, out-of-range burst
// parameters, empty mix, unknown kind name, negative weight).
std::vector<ServeRequest> GenerateSchedule(const TrafficSpec& spec);

}  // namespace graphpim::serve

#endif  // GRAPHPIM_SERVE_TRAFFIC_H_
