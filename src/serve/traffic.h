// Synthetic query traffic for the serving engine (DESIGN.md §13).
//
// A traffic schedule is a time-ordered list of graph point-queries
// (BFS/SSSP/personalized-PageRank requests) against the resident graph.
// Generation is open loop: arrival times do not depend on how fast the
// machine under test serves, which is what makes a saturation sweep
// meaningful (offered load is an independent variable).
//
// DETERMINISM CONTRACT: every draw is value-derived — a counter-based
// SplitMix64 hash of (seed, stream tag, request index), the same
// discipline the span recorder uses for sampling. The schedule for a
// given spec is therefore bit-identical across --jobs counts, platforms,
// and reruns. Request identity (tenant, kind, root) depends only on the
// request index, NOT on the arrival rate, so every point of a --qps-grid
// sweep serves the same request population and differs only in arrival
// spacing — offered load stays a paired comparison.
#ifndef GRAPHPIM_SERVE_TRAFFIC_H_
#define GRAPHPIM_SERVE_TRAFFIC_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/types.h"

namespace graphpim::serve {

// The point-query classes the engine serves. Each maps onto the memory
// behavior of its batch workload (bfs/sssp/prank) restricted to a bounded
// neighborhood of the root vertex.
enum class QueryKind : std::uint8_t { kBfs = 0, kSssp, kPageRank, kCount };

const char* ToString(QueryKind k);

// Arrival process shapes.
//   kPoisson — open-loop Poisson: i.i.d. exponential interarrivals.
//   kBursty  — two-state Markov-modulated Poisson (MMPP-style): a slow
//              and a burst state with hashed state transitions between
//              consecutive arrivals; rates are normalized so the long-run
//              offered load still equals the nominal qps.
enum class ArrivalModel : std::uint8_t { kPoisson = 0, kBursty };

const char* ToString(ArrivalModel m);

// "poisson" | "bursty" -> model; throws SimError on anything else.
ArrivalModel ParseArrivalModel(const std::string& s);

// One admitted unit of work.
struct ServeRequest {
  std::uint64_t id = 0;        // == request index in the schedule
  std::uint32_t tenant = 0;
  QueryKind kind = QueryKind::kBfs;
  VertexId root = 0;
  Tick arrival = 0;            // open-loop arrival time (simulated)
};

struct TrafficSpec {
  ArrivalModel model = ArrivalModel::kPoisson;
  double qps = 1e6;                 // nominal offered load (queries/s,
                                    // simulated time)
  std::size_t num_requests = 48;    // schedule length
  std::uint32_t num_tenants = 2;
  VertexId num_vertices = 0;        // root domain; must be > 0
  // Query-kind mix (weights; normalized internally, all-zero = BFS only).
  double mix_bfs = 0.5;
  double mix_sssp = 0.3;
  double mix_prank = 0.2;
  // Bursty-model shape: burst-state rate multiplier and per-arrival
  // transition probabilities (slow->burst, burst->slow).
  double burst_mult = 8.0;
  double p_enter_burst = 0.10;
  double p_exit_burst = 0.30;
  std::uint64_t seed = 1;
};

// A uniform double in [0, 1) that is a pure function of
// (seed, stream tag, index) — the value-derived SplitMix64 stream the
// schedule generator draws from. Exposed for tests.
double UniformDraw(std::uint64_t seed, std::uint64_t stream_tag,
                   std::uint64_t index);

// Expands `spec` into its full arrival schedule, sorted by arrival time
// (arrivals are generated as a cumulative sum, so the order is inherent).
// Throws SimError on a degenerate spec (no vertices, no requests,
// non-positive qps, out-of-range burst parameters).
std::vector<ServeRequest> GenerateSchedule(const TrafficSpec& spec);

}  // namespace graphpim::serve

#endif  // GRAPHPIM_SERVE_TRAFFIC_H_
