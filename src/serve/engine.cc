#include "serve/engine.h"

#include <algorithm>
#include <chrono>
#include <deque>
#include <mutex>

#include "common/log.h"
#include "common/random.h"
#include "common/string_util.h"
#include "core/runner.h"
#include "serve/slo.h"

namespace graphpim::serve {

namespace {

// Salt for the per-batch TraceBuilder seed (branch-mispredict sampling):
// value-derived from the traffic seed and the batch's first request id, so
// batch composition — not scheduling — decides the stream.
constexpr std::uint64_t kBatchSalt = 0x5365727665426174ULL;  // "ServeBat"

double TicksToNsD(Tick t) {
  return static_cast<double>(t) / static_cast<double>(kTicksPerNs);
}

// A kind can be in the mix only if the resident graph can serve it: knn
// needs the shared ANN index, which is a graph-build-time decision. Caught
// here (orchestrating thread) rather than deep inside an emitter on a
// pool worker.
void CheckMixServable(const ServedGraph& sg, const TrafficSpec& ts) {
  for (const MixEntry& me : ts.mix) {
    if (me.second > 0.0 && me.first == "knn" && !sg.has_ann()) {
      GP_THROW("traffic mix includes knn but the served graph has no ANN "
               "index: build the ServedGraph with enable_ann");
    }
  }
}

}  // namespace

const char* ToString(DropPolicy p) {
  return p == DropPolicy::kTail ? "tail" : "head";
}

DropPolicy ParseDropPolicy(const std::string& s) {
  if (s == "tail") return DropPolicy::kTail;
  if (s == "head") return DropPolicy::kHead;
  GP_THROW("unknown drop policy '", s, "' (want tail|head)");
}

ServePoint RunServePoint(const ServedGraph& sg, const ServeParams& params) {
  // Flag-reachable parameters throw SimError (caught at the tool's main),
  // never GP_CHECK-panic.
  if (params.slots < 1) GP_THROW("serve needs at least one dispatch slot");
  if (params.batch_max < 1) GP_THROW("serve needs batch_max >= 1");
  if (params.batch_max > static_cast<std::size_t>(params.cfg.num_cores)) {
    GP_THROW("batch_max ", params.batch_max, " exceeds the config's ",
             params.cfg.num_cores, " cores: a batch maps one query per core");
  }
  if (params.queue_depth < 1) GP_THROW("serve needs queue_depth >= 1");
  if (params.slo_ns < 0.0) {
    GP_THROW("serve slo_ns must be >= 0 (got ", params.slo_ns, ")");
  }
  CheckMixServable(sg, params.traffic);

  TrafficSpec ts = params.traffic;
  ts.num_vertices = sg.graph().num_vertices();
  const std::vector<ServeRequest> sched = GenerateSchedule(ts);

  ServePoint pt;
  pt.qps = ts.qps;
  pt.offered = sched.size();
  pt.tenants.resize(sg.num_tenants());

  // --- virtual-time queueing simulation -------------------------------
  struct Flight {
    Tick done = 0;
    std::vector<std::size_t> reqs;  // indices into sched
  };
  std::vector<Flight> flights;  // <= slots entries, unsorted (slots small)
  std::deque<std::size_t> queue;
  std::vector<double> lat_ns;           // all served latencies
  std::vector<std::vector<double>> tenant_lat(sg.num_tenants());
  std::uint64_t depth_sum = 0;          // queue depth sampled per arrival
  double busy_ns = 0.0;                 // summed batch service time
  Tick last_completion = 0;

  // --- telemetry windows (DESIGN.md §17) ------------------------------
  // Half-open [k*W, (k+1)*W) windows over the point's virtual time. Cuts
  // happen before the first event at-or-past a boundary, so the queue /
  // in-flight gauges sample the state the machine held as the boundary
  // passed. Purely value-derived: bit-identical across reruns and --jobs.
  const Tick win_ticks = params.cfg.telemetry_window_ns > 0.0
                             ? NsToTicks(params.cfg.telemetry_window_ns)
                             : 0;
  struct WinAcc {
    std::uint64_t arrivals = 0, admitted = 0, dropped = 0, completed = 0;
    std::vector<double> lat_ns;
    std::vector<std::uint64_t> served, drops, viol;  // per tenant
  };
  WinAcc acc;
  auto reset_acc = [&]() {
    acc = WinAcc{};
    acc.served.resize(sg.num_tenants());
    acc.drops.resize(sg.num_tenants());
    acc.viol.resize(sg.num_tenants());
  };
  reset_acc();
  pt.timeline.window_ticks = win_ticks;
  Tick next_cut = win_ticks;
  auto cut_window = [&](Tick start, Tick end) {
    WinAcc a = std::move(acc);
    reset_acc();
    if (pt.timeline.windows.size() >= params.cfg.telemetry_max_windows) {
      ++pt.timeline.dropped_windows;
      return;
    }
    telemetry::TimelineWindow w;
    w.index = pt.timeline.windows.size();
    w.start = start;
    w.end = end;
    std::sort(a.lat_ns.begin(), a.lat_ns.end());
    const double span_s = TicksToNsD(end - start) * 1e-9;
    auto& g = w.gauges;
    g.emplace_back("serve.arrivals", static_cast<double>(a.arrivals));
    g.emplace_back("serve.admitted", static_cast<double>(a.admitted));
    g.emplace_back("serve.dropped", static_cast<double>(a.dropped));
    g.emplace_back("serve.completed", static_cast<double>(a.completed));
    g.emplace_back("serve.p50_ns", QuantileSorted(a.lat_ns, 0.50));
    g.emplace_back("serve.p99_ns", QuantileSorted(a.lat_ns, 0.99));
    g.emplace_back("serve.achieved_qps",
                   span_s > 0.0
                       ? static_cast<double>(a.completed) / span_s
                       : 0.0);
    g.emplace_back("serve.queue_depth", static_cast<double>(queue.size()));
    g.emplace_back("serve.inflight", static_cast<double>(flights.size()));
    for (std::uint32_t t = 0; t < sg.num_tenants(); ++t) {
      g.emplace_back(StrFormat("serve.tenant%u.served", t),
                     static_cast<double>(a.served[t]));
      g.emplace_back(StrFormat("serve.tenant%u.dropped", t),
                     static_cast<double>(a.drops[t]));
      g.emplace_back(StrFormat("serve.tenant%u.slo_burn", t),
                     a.served[t] == 0
                         ? 0.0
                         : static_cast<double>(a.viol[t]) /
                               static_cast<double>(a.served[t]));
    }
    pt.timeline.windows.push_back(std::move(w));
  };
  auto cut_until = [&](Tick t) {
    while (win_ticks != 0 && next_cut <= t) {
      cut_window(next_cut - win_ticks, next_cut);
      next_cut += win_ticks;
    }
  };

  auto start_batches = [&](Tick now) {
    while (flights.size() < static_cast<std::size_t>(params.slots) &&
           !queue.empty()) {
      Flight fl;
      while (fl.reqs.size() < params.batch_max && !queue.empty()) {
        fl.reqs.push_back(queue.front());
        queue.pop_front();
      }
      // One stream per query: batched queries contend inside one replay.
      const std::uint64_t batch_seed =
          SplitMix64(ts.seed ^ kBatchSalt ^ sched[fl.reqs[0]].id).Next();
      workloads::TraceBuilder tb(static_cast<int>(fl.reqs.size()), &sg.space(),
                                 /*mispredict_rate=*/0.06, batch_seed);
      for (std::size_t j = 0; j < fl.reqs.size(); ++j) {
        EmitQuery(sg, sched[fl.reqs[j]], params.query, tb,
                  static_cast<int>(j));
      }
      const workloads::Trace tr = tb.Take();
      pt.replayed_ops += tr.TotalOps();
      core::SimResults res = core::RunSimulation(
          tr, params.cfg, sg.pmr_base(), sg.pmr_end(), core::RunOptions{});
      pt.raw.Merge(res.raw);
      const double service_ns = res.seconds * 1e9 + params.dispatch_ns;
      busy_ns += service_ns;
      fl.done = now + NsToTicks(service_ns);
      if (fl.done > last_completion) last_completion = fl.done;
      flights.push_back(std::move(fl));
      ++pt.batches;
    }
  };

  std::size_t next_arrival = 0;
  while (next_arrival < sched.size() || !flights.empty()) {
    // Earliest in-flight completion (if any).
    std::size_t done_idx = flights.size();
    for (std::size_t f = 0; f < flights.size(); ++f) {
      if (done_idx == flights.size() || flights[f].done < flights[done_idx].done) {
        done_idx = f;
      }
    }
    const bool have_arrival = next_arrival < sched.size();
    const bool have_done = done_idx < flights.size();
    // Ties retire the completion first: the freed slot is available to
    // the simultaneously-arriving request.
    if (have_done &&
        (!have_arrival || flights[done_idx].done <= sched[next_arrival].arrival)) {
      cut_until(flights[done_idx].done);
      const Flight fl = flights[done_idx];
      flights.erase(flights.begin() + static_cast<std::ptrdiff_t>(done_idx));
      for (std::size_t idx : fl.reqs) {
        const ServeRequest& r = sched[idx];
        const double ns = TicksToNsD(fl.done - r.arrival);
        lat_ns.push_back(ns);
        tenant_lat[r.tenant].push_back(ns);
        ++pt.served;
        ++pt.tenants[r.tenant].served;
        if (win_ticks != 0) {
          ++acc.completed;
          acc.lat_ns.push_back(ns);
          ++acc.served[r.tenant];
          if (params.slo_ns > 0.0 && ns > params.slo_ns) ++acc.viol[r.tenant];
        }
      }
      start_batches(fl.done);
      continue;
    }
    // Arrival event.
    const ServeRequest& r = sched[next_arrival];
    cut_until(r.arrival);
    ++pt.tenants[r.tenant].offered;
    if (win_ticks != 0) ++acc.arrivals;
    depth_sum += queue.size();
    if (queue.size() > pt.queue_peak) pt.queue_peak = queue.size();
    if (queue.size() >= params.queue_depth) {
      if (params.drop == DropPolicy::kTail) {
        ++pt.dropped;
        ++pt.tenants[r.tenant].dropped;
        if (win_ticks != 0) ++acc.dropped;
        if (win_ticks != 0) ++acc.drops[r.tenant];
      } else {  // head drop: evict the stalest queued request, admit new
        const ServeRequest& victim = sched[queue.front()];
        queue.pop_front();
        ++pt.dropped;
        ++pt.tenants[victim.tenant].dropped;
        if (win_ticks != 0) {
          ++acc.dropped;
          ++acc.drops[victim.tenant];
          ++acc.admitted;
        }
        queue.push_back(next_arrival);
      }
    } else {
      queue.push_back(next_arrival);
      if (win_ticks != 0) ++acc.admitted;
    }
    ++next_arrival;
    start_batches(r.arrival);
  }
  GP_CHECK(queue.empty(), "serve loop ended with queued requests");
  if (win_ticks != 0) {
    // Trailing partial window up to the final completion; a run shorter
    // than one window still yields one (possibly degenerate) window.
    cut_until(last_completion);
    const Tick tail_start = next_cut - win_ticks;
    if (last_completion > tail_start || pt.timeline.windows.empty()) {
      cut_window(tail_start, last_completion);
    }
  }

  // --- SLO accounting -------------------------------------------------
  pt.drop_rate = pt.offered == 0
                     ? 0.0
                     : static_cast<double>(pt.dropped) /
                           static_cast<double>(pt.offered);
  std::sort(lat_ns.begin(), lat_ns.end());
  pt.p50_ns = QuantileSorted(lat_ns, 0.50);
  pt.p95_ns = QuantileSorted(lat_ns, 0.95);
  pt.p99_ns = QuantileSorted(lat_ns, 0.99);
  pt.max_ns = lat_ns.empty() ? 0.0 : lat_ns.back();
  double sum = 0.0;
  for (double v : lat_ns) sum += v;
  pt.mean_ns = lat_ns.empty() ? 0.0 : sum / static_cast<double>(lat_ns.size());
  pt.queue_mean = pt.offered == 0 ? 0.0
                                  : static_cast<double>(depth_sum) /
                                        static_cast<double>(pt.offered);
  pt.queue_limit = params.queue_depth;
  pt.horizon_ns = TicksToNsD(last_completion);
  if (pt.horizon_ns > 0.0) {
    pt.achieved_qps = static_cast<double>(pt.served) / (pt.horizon_ns / 1e9);
    pt.util = busy_ns /
              (pt.horizon_ns * static_cast<double>(params.slots));
  }
  for (std::uint32_t t = 0; t < sg.num_tenants(); ++t) {
    TenantSlo& slo = pt.tenants[t];
    std::vector<double>& v = tenant_lat[t];
    std::sort(v.begin(), v.end());
    slo.p50_ns = QuantileSorted(v, 0.50);
    slo.p95_ns = QuantileSorted(v, 0.95);
    slo.p99_ns = QuantileSorted(v, 0.99);
    slo.max_ns = v.empty() ? 0.0 : v.back();
    double tsum = 0.0;
    for (double x : v) tsum += x;
    slo.mean_ns = v.empty() ? 0.0 : tsum / static_cast<double>(v.size());
  }
  FoldServeStats(pt, &pt.raw);
  return pt;
}

ServeGridResult RunServeGrid(
    const ServedGraph& sg, const ServeParams& base,
    const std::vector<std::pair<std::string, core::SimConfig>>& configs,
    const std::vector<double>& qps_grid, int jobs,
    const std::function<void(const exec::SweepProgress&)>& on_progress) {
  if (configs.empty()) GP_THROW("serve grid needs at least one config");
  if (qps_grid.empty()) GP_THROW("serve grid needs at least one qps");
  // Fail fast on the orchestrating thread: a throw inside a pool worker
  // would terminate the process, so surface param errors before submit.
  if (base.slots < 1) GP_THROW("serve needs at least one dispatch slot");
  if (base.batch_max < 1) GP_THROW("serve needs batch_max >= 1");
  if (base.queue_depth < 1) GP_THROW("serve needs queue_depth >= 1");
  if (base.slo_ns < 0.0) {
    GP_THROW("serve slo_ns must be >= 0 (got ", base.slo_ns, ")");
  }
  CheckMixServable(sg, base.traffic);
  for (const auto& [name, cfg] : configs) {
    if (base.batch_max > static_cast<std::size_t>(cfg.num_cores)) {
      GP_THROW("batch_max ", base.batch_max, " exceeds the ", cfg.num_cores,
               " cores of config ", name);
    }
  }
  {
    TrafficSpec probe = base.traffic;
    probe.num_vertices = sg.graph().num_vertices();
    probe.qps = qps_grid.front();
    (void)GenerateSchedule(probe);  // validates the traffic spec
  }
  const auto t0 = std::chrono::steady_clock::now();

  ServeGridResult out;
  const std::size_t total = configs.size() * qps_grid.size();
  exec::ThreadPool pool(jobs);
  std::mutex progress_mu;
  std::size_t completed = 0;

  std::vector<exec::TaskFuture<ServePoint>> futures;
  futures.reserve(total);
  for (const auto& [name, cfg] : configs) {
    for (double qps : qps_grid) {
      ServeParams p = base;
      p.cfg = cfg;
      p.traffic.qps = qps;
      futures.push_back(pool.Submit(
          [&sg, p = std::move(p), name = name, qps, total, &progress_mu,
           &completed, &on_progress, t0]() {
            const auto s0 = std::chrono::steady_clock::now();
            ServePoint pt = RunServePoint(sg, p);
            pt.config_name = name;
            if (on_progress) {
              const double wall_ms =
                  std::chrono::duration<double, std::milli>(
                      std::chrono::steady_clock::now() - s0)
                      .count();
              std::lock_guard<std::mutex> lk(progress_mu);
              exec::SweepProgress prog;
              prog.completed = ++completed;
              prog.total = total;
              prog.workload = "serve";
              prog.profile = name;
              prog.config_name = StrFormat("qps=%g", qps);
              prog.wall_ms = wall_ms;
              prog.note = TimelineNote(pt.timeline);
              on_progress(prog);
            }
            return pt;
          }));
    }
  }
  // Harvest in submission (grid) order — the determinism contract.
  for (auto& f : futures) {
    auto v = f.Get();
    GP_CHECK(v.has_value(), "serve point task was cancelled");
    out.points.push_back(std::move(*v));
  }
  out.pool = pool.stats();
  pool.ExportStats(&out.pool_stats);
  out.total_wall_ms = std::chrono::duration<double, std::milli>(
                          std::chrono::steady_clock::now() - t0)
                          .count();
  return out;
}

}  // namespace graphpim::serve
