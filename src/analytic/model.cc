#include "analytic/model.h"

#include <algorithm>

#include "common/log.h"

namespace graphpim::analytic {

double AtomicOverheadBaseline(const ModelInputs& in) {
  return in.lat_cache + in.miss_atomic * in.lat_mem + in.c_incore;
}

double CpiBaseline(const ModelInputs& in) {
  return in.cpi_other * (1.0 - in.overlap) + in.r_atomic * AtomicOverheadBaseline(in);
}

double CpiGraphPim(const ModelInputs& in) {
  // Offloaded atomics are non-blocking: only the un-hidden fraction of the
  // PIM round trip reaches the critical path.
  double aio_pim = in.lat_pim * (1.0 - in.pim_overlap);
  return in.cpi_other * (1.0 - in.overlap) + in.r_atomic * aio_pim;
}

double PredictSpeedup(const ModelInputs& in) {
  double base = CpiBaseline(in);
  double pim = CpiGraphPim(in);
  GP_CHECK(pim > 0.0);
  return base / pim;
}

RealWorldEstimate EstimateRealWorld(const RealWorldApp& app) {
  RealWorldEstimate out;
  // GraphPIM removes the host atomic overhead (in-core + coherence) and the
  // cache-checking time of offloading candidates; the remaining execution
  // time is unchanged. Both fractions are of baseline execution time.
  double removed = std::min(0.9, app.host_overhead);
  double remaining = 1.0 - removed;
  // A small residual: offloaded atomics still occupy issue slots.
  remaining += app.pim_atomic_pct * 0.1;
  out.speedup = 1.0 / remaining;

  // Uncore energy: static portion scales with runtime; dynamic portion
  // scales with traffic, which the cache bypass reduces for the PIM-atomic
  // share of accesses (exact-size packets instead of full-line fills).
  double static_frac = 0.6;
  double dynamic_frac = 1.0 - static_frac;
  double traffic_scale =
      1.0 - app.pim_atomic_pct * 8.0 * (1.0 - app.llc_hit_rate);  // line->FLIT savings
  traffic_scale = std::clamp(traffic_scale, 0.3, 1.0);
  out.energy_norm = static_frac * remaining + dynamic_frac * traffic_scale;
  return out;
}

}  // namespace graphpim::analytic
