// Analytical performance model (Section IV-B5, equations (1) and (2)).
//
// The paper splits CPI into atomic and non-atomic components:
//
//   CPI_total = CPI_other * (1 - P_overlap) + R_atomic * AIO          (1)
//   AIO_base  = Lat_cache + Miss_atomic * Lat_mem + C_incore          (2)
//   AIO_pim   = Lat_pim  (dependents wait only for the PIM round trip)
//
// with R_atomic the atomic-instruction rate, Miss_atomic the atomic cache
// miss rate, and C_incore the pipeline-freeze/write-buffer-drain overhead.
// The model predicts GraphPIM speedup from hardware-counter-style inputs
// and is validated against the simulator (Fig 16) before being applied to
// the large real-world applications (Tables VII/VIII, Fig 17).
#ifndef GRAPHPIM_ANALYTIC_MODEL_H_
#define GRAPHPIM_ANALYTIC_MODEL_H_

#include <string>

namespace graphpim::analytic {

struct ModelInputs {
  double cpi_other = 1.0;     // CPI of non-atomic instructions
  double overlap = 0.1;       // P_overlap: cycles hidden under other work
  double r_atomic = 0.01;     // atomic instructions per instruction
  double lat_cache = 30.0;    // average cache-checking latency (cycles)
  double miss_atomic = 0.9;   // atomic LLC miss rate
  double lat_mem = 160.0;     // average memory latency (cycles)
  double c_incore = 60.0;     // in-core atomic overhead (cycles)
  double lat_pim = 90.0;      // PIM-atomic round trip (cycles)
  double pim_overlap = 0.85;  // fraction of PIM latency hidden (non-blocking)
};

// Equation (2): atomic instruction overhead on the host.
double AtomicOverheadBaseline(const ModelInputs& in);

// Equation (1) under each machine.
double CpiBaseline(const ModelInputs& in);
double CpiGraphPim(const ModelInputs& in);

// Predicted GraphPIM speedup over the baseline.
double PredictSpeedup(const ModelInputs& in);

// Real-world application estimation (Section IV-B5).
//
// Inputs mirror Table VIII's measured events; outputs reproduce Fig 17.
struct RealWorldApp {
  std::string name;
  double ipc = 0.1;              // measured baseline IPC
  double llc_mpki = 20.0;
  double llc_hit_rate = 0.05;
  double uncore_time = 0.6;      // fraction of time in the uncore
  double backend_stall = 0.85;   // fraction of backend-stall cycles
  double pim_atomic_pct = 0.02;  // fraction of instructions offloadable
  double host_overhead = 0.2;    // total host atomic overhead (model output)
  double cache_checking = 0.1;   // total cache-checking overhead
};

struct RealWorldEstimate {
  double speedup = 1.0;
  double energy_norm = 1.0;  // uncore energy normalized to baseline
};

// Estimates GraphPIM benefit for a profiled application: the avoided host
// overhead and cache-checking time shorten execution; energy follows the
// runtime plus the traffic reduction implied by the LLC behavior.
RealWorldEstimate EstimateRealWorld(const RealWorldApp& app);

}  // namespace graphpim::analytic

#endif  // GRAPHPIM_ANALYTIC_MODEL_H_
