#include "pmem/pmem.h"

#include <algorithm>

#include "common/log.h"

namespace graphpim::pmem {

namespace {

constexpr Addr kLineMask = ~static_cast<Addr>(63);

}  // namespace

PersistDomain::PersistDomain(const PmemParams& params, Addr pmr_base,
                             Addr pmr_end, StatRegistry* stats)
    : params_(params),
      pmr_base_(pmr_base),
      pmr_end_(pmr_end),
      flush_ticks_(NsToTicks(params.flush_ns)),
      fence_ticks_(NsToTicks(params.fence_ns)),
      stats_(stats),
      sid_stores_(stats->Intern("pmem.pmr_stores")),
      sid_flushes_(stats->Intern("pmem.flushes")),
      sid_redundant_flushes_(stats->Intern("pmem.redundant_flushes")),
      sid_fences_(stats->Intern("pmem.fences")),
      sid_flush_ns_(stats->Intern("pmem.flush_ns")),
      sid_fence_ns_(stats->Intern("pmem.fence_ns")),
      sid_persisted_(stats->Intern("pmem.persisted_stores")),
      sid_unpersisted_(stats->Intern("pmem.unpersisted_at_end")) {
  GP_CHECK(stats != nullptr);
  GP_CHECK(pmr_end > pmr_base);
  // Touch every pmem.* counter so a persistent run always carries the full
  // family (the report section keys off pmem.flushes being present). The
  // domain only exists when pmem.enable=1, so passthrough runs never see
  // these names.
  for (StatId id : {sid_stores_, sid_flushes_, sid_redundant_flushes_,
                    sid_fences_, sid_flush_ns_, sid_fence_ns_, sid_persisted_,
                    sid_unpersisted_}) {
    stats_->Add(id, 0.0);
  }
}

void PersistDomain::OnStore(int core, Addr addr, std::uint8_t size, Tick when) {
  GP_CHECK(InPmr(addr), "non-PMR store reached the persist domain");
  const auto c = static_cast<std::size_t>(core);
  if (c >= lines_.size()) {
    lines_.resize(c + 1);
    pending_lines_.resize(c + 1);
    pending_flush_done_.resize(c + 1, 0);
  }
  if (c >= store_seq_.size()) store_seq_.resize(c + 1, 0);
  PersistStoreEvent ev;
  ev.core = core;
  ev.line = addr & kLineMask;
  ev.size = size;
  ev.issue = when;
  // Per-core PMR-store ordinal: mirrors TraceBuilder::PmrStoreCount, which
  // is how UpdateRecords address these events.
  ev.ordinal = store_seq_[c]++;
  lines_[c][ev.line].dirty.push_back(log_.stores.size());
  log_.stores.push_back(ev);
  stats_->Inc(sid_stores_);
}

Tick PersistDomain::OnFlush(int core, Addr addr, Tick when) {
  const auto c = static_cast<std::size_t>(core);
  if (c >= lines_.size()) {
    lines_.resize(c + 1);
    pending_lines_.resize(c + 1);
    pending_flush_done_.resize(c + 1, 0);
  }
  stats_->Inc(sid_flushes_);
  stats_->Add(sid_flush_ns_, params_.flush_ns);
  const Tick done = when + flush_ticks_;
  const Addr line = addr & kLineMask;
  LineState& st = lines_[c][line];
  if (st.dirty.empty()) {
    // Nothing new to write back: a clean-line or double flush. Still costs
    // flush_ns (the instruction executes) but is flagged — the static
    // checker reports the same condition as a redundant-flush violation.
    stats_->Inc(sid_redundant_flushes_);
  } else {
    if (st.flushed.empty()) pending_lines_[c].push_back(line);
    st.flushed.insert(st.flushed.end(), st.dirty.begin(), st.dirty.end());
    st.dirty.clear();
  }
  st.flush_done = std::max(st.flush_done, done);
  pending_flush_done_[c] = std::max(pending_flush_done_[c], done);
  return done;
}

Tick PersistDomain::OnFence(int core, Tick when) {
  const auto c = static_cast<std::size_t>(core);
  stats_->Inc(sid_fences_);
  stats_->Add(sid_fence_ns_, params_.fence_ns);
  Tick start = when;
  if (c < pending_flush_done_.size()) {
    start = std::max(start, pending_flush_done_[c]);
  }
  const Tick done = start + fence_ticks_;
  if (c < pending_lines_.size()) {
    for (Addr line : pending_lines_[c]) {
      LineState& st = lines_[c][line];
      for (std::size_t idx : st.flushed) {
        log_.stores[idx].persist = done;
        stats_->Inc(sid_persisted_);
      }
      st.flushed.clear();
    }
    pending_lines_[c].clear();
    pending_flush_done_[c] = 0;
  }
  return done;
}

void PersistDomain::Finish(Tick end_tick) {
  log_.end_tick = end_tick;
  std::uint64_t unpersisted = 0;
  for (const PersistStoreEvent& ev : log_.stores) {
    if (ev.persist == kNeverPersisted) ++unpersisted;
  }
  stats_->Add(sid_unpersisted_, static_cast<double>(unpersisted));
}

}  // namespace graphpim::pmem
