// Persistent PMR (DESIGN.md §14): a PMEM-backed variant of the PIM Memory
// Region.
//
// The PMR is uncacheable host memory (Section III-A/B) — one flush/fence
// discipline away from behaving like persistent memory. This subsystem
// models that variant behind pmem.enable:
//
//   - PmemParams / the pmem.* KnobRow rows: flush and fence costs, plus an
//     optional single-shot crash tick.
//   - PersistDomain: the timing layer. It charges flush_ns per line
//     writeback and fence_ns per persist barrier in the micro-op replay
//     loop, tracks which PMR stores each fence made durable, and exports
//     pmem.* stats through the StatRegistry.
//   - PersistLog: the per-run record of every PMR store with its issue and
//     persist ticks — the input to the crash/recovery harness (crash.h)
//     and the ground truth the persist-ordering checker (checker.h) is
//     validated against.
//
// Contract: with pmem.enable=0 no PersistDomain is constructed, no pmem.*
// counters are interned, and persist micro-ops cost nothing — the
// passthrough is byte-identical and gated in scripts/golden_identity.sh.
#ifndef GRAPHPIM_PMEM_PMEM_H_
#define GRAPHPIM_PMEM_PMEM_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/stats.h"
#include "common/types.h"

namespace graphpim::pmem {

// The pmem.* machine knobs (bound in core/sim_config.cc's field table).
struct PmemParams {
  // Master switch. Off: the PMR is ordinary (volatile) HMC memory and the
  // whole subsystem is a strict no-op.
  bool enable = false;

  // Cost of one clwb-style line writeback into the persist queue, ns.
  double flush_ns = 40.0;

  // Cost of one sfence-style persist barrier (write-pending-queue drain
  // on top of waiting out in-flight flushes), ns.
  double fence_ns = 20.0;

  // Single-shot crash point in simulated ns; < 0 disables. Requires
  // enable=1 (Validate cross-check names pmem.crash_tick otherwise).
  double crash_tick_ns = -1.0;
};

// A store's persist tick before any fence covered it.
inline constexpr Tick kNeverPersisted = ~Tick{0};

// One PMR store as the persist domain saw it. `ordinal` counts the PMR
// stores of `core` in stream order — the same numbering
// TraceBuilder::PmrStoreCount exposes to workloads, which is what lets an
// UpdateRecord name payload/publish stores without carrying addresses.
struct PersistStoreEvent {
  int core = 0;
  std::uint64_t ordinal = 0;  // per-core PMR-store ordinal
  Addr line = 0;              // 64B-aligned line address
  std::uint8_t size = 0;      // store width (8B stores are powerfail-atomic)
  Tick issue = 0;             // when the store entered the memory system
  Tick persist = kNeverPersisted;  // first fence that made it durable
};

// The per-run persist record consumed by the crash/recovery harness.
struct PersistLog {
  std::vector<PersistStoreEvent> stores;
  Tick end_tick = 0;  // run completion (crash ticks are sampled in [0, end])
  bool empty() const { return stores.empty(); }
};

// The timing layer. Owned by core::MemorySystem when cfg.pmem.enable; one
// domain per run (runs are single-threaded, like the SpanRecorder).
//
// Per-core persist semantics mirror x86 + eADR-less PMEM: a flush enqueues
// the line's pending stores toward the media, and a fence completes no
// earlier than every prior flush of that core, charges fence_ns, and makes
// everything those flushes covered durable (sfence orders ALL prior
// flushes of the thread, not just the last).
class PersistDomain {
 public:
  PersistDomain(const PmemParams& params, Addr pmr_base, Addr pmr_end,
                StatRegistry* stats);

  // A store to [pmr_base, pmr_end) issued at `when`; records a
  // PersistStoreEvent and dirties the line. Non-PMR stores must not be
  // passed in.
  void OnStore(int core, Addr addr, std::uint8_t size, Tick when);

  // A kFlush of addr's line issued at `when`; returns the writeback
  // completion tick (when + flush_ns). Flushing a clean or already-flushed
  // line still costs flush_ns but counts as redundant.
  Tick OnFlush(int core, Addr addr, Tick when);

  // A kFence issued at `when`; returns its completion tick
  // (max(when, latest pending flush) + fence_ns) and stamps the persist
  // tick of every store a prior flush of this core covered.
  Tick OnFence(int core, Tick when);

  // Seals the run: counts stores never covered by a flush+fence
  // (pmem.unpersisted_at_end) and stamps the log's end tick.
  void Finish(Tick end_tick);

  PersistLog TakeLog() { return std::move(log_); }
  const PersistLog& log() const { return log_; }

  bool InPmr(Addr a) const { return a >= pmr_base_ && a < pmr_end_; }

 private:
  // Per-core, per-line persist state.
  struct LineState {
    std::vector<std::size_t> dirty;    // log indices stored since last flush
    std::vector<std::size_t> flushed;  // flushed, awaiting a fence
    Tick flush_done = 0;               // latest writeback completion
  };

  PmemParams params_;
  Addr pmr_base_;
  Addr pmr_end_;
  Tick flush_ticks_;
  Tick fence_ticks_;

  StatRegistry* stats_;
  StatId sid_stores_;
  StatId sid_flushes_;
  StatId sid_redundant_flushes_;
  StatId sid_fences_;
  StatId sid_flush_ns_;
  StatId sid_fence_ns_;
  StatId sid_persisted_;
  StatId sid_unpersisted_;

  std::vector<std::unordered_map<Addr, LineState>> lines_;  // per core
  std::vector<std::uint64_t> store_seq_;  // per-core PMR-store ordinals
  // Lines of each core holding flushed-but-unfenced stores, and the latest
  // pending writeback completion the next fence must wait out.
  std::vector<std::vector<Addr>> pending_lines_;
  std::vector<Tick> pending_flush_done_;

  PersistLog log_;
};

}  // namespace graphpim::pmem

#endif  // GRAPHPIM_PMEM_PMEM_H_
