#include "pmem/checker.h"

#include <unordered_map>
#include <vector>

#include "common/string_util.h"

namespace graphpim::pmem {

namespace {

constexpr Addr kLineMask = ~static_cast<Addr>(63);

// Persist state of one PMR store while scanning its thread's stream.
enum class StoreState : std::uint8_t { kDirty, kFlushed, kPersisted };

// Everything needed to emit a violation about a store after the fact.
struct StoreInfo {
  std::size_t op_index = 0;
  Addr addr = 0;
  std::uint64_t mem_ordinal = 0;
};

}  // namespace

const char* ToString(ViolationKind k) {
  switch (k) {
    case ViolationKind::kUnpersistedStore: return "unpersisted-store";
    case ViolationKind::kMissingFence: return "missing-fence";
    case ViolationKind::kRedundantFlush: return "redundant-flush";
    case ViolationKind::kUnorderedPublish: return "unordered-publish";
  }
  return "?";
}

CheckReport CheckPersistOrdering(
    const std::vector<cpu::UopStream>& streams, Addr pmr_base,
    Addr pmr_end, const UpdateLog* updates) {
  CheckReport rep;

  // Publish-ordinal index: per thread, which PMR-store ordinal commits
  // which update. Built once; consulted at every publish store.
  std::unordered_map<std::uint64_t, std::size_t> publish_of;
  const auto pub_key = [](int t, std::uint64_t ord) {
    return (static_cast<std::uint64_t>(t) << 48) | ord;
  };
  if (updates != nullptr) {
    for (std::size_t i = 0; i < updates->updates.size(); ++i) {
      const UpdateRecord& u = updates->updates[i];
      publish_of[pub_key(u.thread, u.publish)] = i;
    }
  }

  for (std::size_t ti = 0; ti < streams.size(); ++ti) {
    const int t = static_cast<int>(ti);
    const cpu::UopStream& ops = streams[ti];

    std::vector<StoreState> state;     // by PMR-store ordinal
    std::vector<StoreInfo> info;       // by PMR-store ordinal
    // Per line: ordinals stored since the last flush / flushed awaiting a
    // fence. Mirrors PersistDomain::LineState exactly.
    std::unordered_map<Addr, std::vector<std::uint64_t>> dirty, flushed;
    std::uint64_t mem_ordinal = 0;  // load/store/atomic requests only —
                                    // matches span ids, since flush/fence
                                    // never enter the span path

    for (std::size_t oi = 0; oi < ops.size(); ++oi) {
      const cpu::MicroOp op = ops[oi];
      switch (op.type) {
        case cpu::OpType::kLoad:
        case cpu::OpType::kAtomic:
          ++mem_ordinal;
          break;
        case cpu::OpType::kStore: {
          const std::uint64_t mo = mem_ordinal++;
          if (op.addr < pmr_base || op.addr >= pmr_end) break;
          const std::uint64_t ord = state.size();
          ++rep.pmr_stores;
          state.push_back(StoreState::kDirty);
          info.push_back({oi, op.addr, mo});
          dirty[op.addr & kLineMask].push_back(ord);
          // Publish rule: a commit store must not issue until every payload
          // store it covers has been fence-persisted.
          if (updates != nullptr) {
            auto it = publish_of.find(pub_key(t, ord));
            if (it != publish_of.end()) {
              const UpdateRecord& u = updates->updates[it->second];
              for (std::uint64_t p : u.payload) {
                if (p < state.size() && state[p] == StoreState::kPersisted) {
                  continue;
                }
                ++rep.unordered_publishes;
                rep.violations.push_back(
                    {ViolationKind::kUnorderedPublish, t, oi, op.addr,
                     op.addr & kLineMask, mo,
                     StrFormat("publish store #%llu issued before payload "
                               "store #%llu was persisted (%s)",
                               static_cast<unsigned long long>(ord),
                               static_cast<unsigned long long>(p),
                               p < state.size()
                                   ? (state[p] == StoreState::kFlushed
                                          ? "flushed but unfenced"
                                          : "not even flushed")
                                   : "not yet issued")});
              }
            }
          }
          break;
        }
        case cpu::OpType::kFlush: {
          ++rep.flushes;
          const Addr line = op.addr & kLineMask;
          auto it = dirty.find(line);
          if (it == dirty.end() || it->second.empty()) {
            ++rep.redundant_flushes;
            auto fit = flushed.find(line);
            const bool doubled = fit != flushed.end() && !fit->second.empty();
            rep.violations.push_back(
                {ViolationKind::kRedundantFlush, t, oi, op.addr, line,
                 mem_ordinal,
                 doubled ? std::string("line already flushed, nothing new "
                                       "written since")
                         : std::string("line is clean (no store to write "
                                       "back)")});
            break;
          }
          std::vector<std::uint64_t>& fl = flushed[line];
          for (std::uint64_t ord : it->second) {
            state[ord] = StoreState::kFlushed;
            fl.push_back(ord);
          }
          it->second.clear();
          break;
        }
        case cpu::OpType::kFence:
          // sfence persists everything any prior flush of this thread
          // covered, across all lines.
          ++rep.fences;
          for (auto& [line, ords] : flushed) {
            for (std::uint64_t ord : ords) state[ord] = StoreState::kPersisted;
            ords.clear();
          }
          break;
        case cpu::OpType::kCompute:
        case cpu::OpType::kBranch:
        case cpu::OpType::kBarrier:
          break;
      }
    }

    // End of stream: anything short of persisted is crash-reachable.
    // Emitted in store order for a deterministic report.
    for (std::uint64_t ord = 0; ord < state.size(); ++ord) {
      if (state[ord] == StoreState::kDirty) {
        ++rep.unpersisted_stores;
        rep.violations.push_back(
            {ViolationKind::kUnpersistedStore, t, info[ord].op_index,
             info[ord].addr, info[ord].addr & kLineMask, info[ord].mem_ordinal,
             StrFormat("store #%llu never flushed",
                       static_cast<unsigned long long>(ord))});
      } else if (state[ord] == StoreState::kFlushed) {
        ++rep.missing_fences;
        rep.violations.push_back(
            {ViolationKind::kMissingFence, t, info[ord].op_index,
             info[ord].addr, info[ord].addr & kLineMask, info[ord].mem_ordinal,
             StrFormat("store #%llu flushed but no later fence drains it",
                       static_cast<unsigned long long>(ord))});
      }
    }
  }
  return rep;
}

std::string FormatCheckReport(const CheckReport& report,
                              const trace::SpanLog* spans) {
  std::string s = StrFormat(
      "persist check: %s — %llu PMR stores, %llu flushes, %llu fences; "
      "%llu unpersisted, %llu missing-fence, %llu redundant-flush, "
      "%llu unordered-publish",
      report.ok() ? "OK" : "VIOLATIONS",
      static_cast<unsigned long long>(report.pmr_stores),
      static_cast<unsigned long long>(report.flushes),
      static_cast<unsigned long long>(report.fences),
      static_cast<unsigned long long>(report.unpersisted_stores),
      static_cast<unsigned long long>(report.missing_fences),
      static_cast<unsigned long long>(report.redundant_flushes),
      static_cast<unsigned long long>(report.unordered_publishes));
  for (const PersistViolation& v : report.violations) {
    s += StrFormat("\n  [%s] t%d op#%zu addr=0x%llx line=0x%llx: %s",
                   ToString(v.kind), v.thread, v.op_index,
                   static_cast<unsigned long long>(v.addr),
                   static_cast<unsigned long long>(v.line), v.detail.c_str());
    if (spans != nullptr) {
      const trace::SpanRecord* sp = trace::FindSpan(
          *spans, trace::SpanRequestId(v.thread, v.mem_ordinal));
      if (sp != nullptr) {
        s += "\n      witness ";
        s += trace::FormatSpanChain(*sp);
      }
    }
  }
  return s;
}

}  // namespace graphpim::pmem
